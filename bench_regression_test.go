// Tier-2 benchmark-regression harness. Recomputes the headline metrics
// in-process at benchSeed and checks two things:
//
//  1. Shape invariants — the paper's qualitative claims (who wins, which
//     direction) hold regardless of cost-model retuning.
//  2. Drift against every committed BENCH_*.json — a PR can't silently
//     flip a winner or move a headline factor by more than driftBand
//     without regenerating the artifact (make bench) and committing it.
//
// Guarded by testing.Short: `go test -short` skips it, tier-1 runs it.
package repro_test

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// driftBand is the generous factor within which a headline metric may
// move against a committed artifact before the test demands the artifact
// be regenerated. Shapes, not absolute numbers, are the contract.
const driftBand = 3.0

// allocsBand bounds allocs-per-run drift against artifacts that record
// it. Allocation counts are near-deterministic (map growth contributes
// small wobble), so the band is tighter than the metric driftBand: a
// regression that doubles allocations on a hot path must regenerate the
// artifact deliberately.
const allocsBand = 1.5

// shapeChecks encodes the qualitative claim behind each headline metric
// as a closed interval [lo, hi] the value must fall in (math.Inf(1) for
// unbounded above).
var shapeChecks = map[string]map[string][2]float64{
	"FIG1": {
		"hpc-slowdown-at-16-nodes": {1, math.Inf(1)}, // shared storage loses
		"locality-%":               {0, 100},
	},
	"E1": {
		"completed-fraction": {0, 1}, // meltdown: some but not all jobs finish
		"recovery-minutes":   {0, math.Inf(1)},
		"dead-datanodes":     {1, math.Inf(1)},
	},
	"E2": {
		"shuffle-reduction-x": {1, math.Inf(1)}, // combiner shrinks the shuffle
		"map-phase-ratio":     {1, math.Inf(1)}, // ...at some map-side cost
	},
	"E3": {
		"plain-vs-imc-shuffle-x": {1, math.Inf(1)}, // in-mapper combining wins
		"imc-memory-bytes":       {1, math.Inf(1)}, // ...by spending memory
	},
	"E4": {"naive-vs-cached-x": {1, math.Inf(1)}}, // caching side data wins
	"E5": {"cluster-speedup-x": {1, math.Inf(1)}}, // cluster beats serial
	"E6": {"failure-rate-at-30m": {0, 1}},         // a rate
	"E7": {"trace-staging-minutes": {0, math.Inf(1)}},
	"E8": {"under-replicated-after-kill": {1, math.Inf(1)}}, // fsck sees the kill
	"E9": {
		"speedup-at-16-nodes": {1, math.Inf(1)}, // scaling helps
		"speculation-gain-x":  {1, math.Inf(1)}, // speculation helps stragglers
	},
	"E10": {
		"gz-map-tasks":          {1, 1},             // whole-stream gzip: one map, always
		"seq-parallelism-x":     {4, math.Inf(1)},   // seq keeps splitting
		"seq-storage-savings-x": {1, math.Inf(1)},   // compression shrinks storage
		"gz-vs-seq-makespan-x":  {1, math.Inf(1)},   // parallel decompression wins
		"seq-read-reduction-x":  {1, math.Inf(1)},   // fewer simulated disk bytes
		"shuffle-compression-x": {1.5, math.Inf(1)}, // wire bytes shrink measurably
	},
	"E11": {
		"audit-events":       {1, math.Inf(1)}, // the run leaves an audit trail
		"job-events":         {4, math.Inf(1)}, // at least submit/init/.../finish
		"history-bytes":      {1, math.Inf(1)}, // history reached HDFS
		"critical-path-len":  {1, math.Inf(1)}, // something bounds completion
		"path-work-fraction": {0, 1},           // a fraction of the makespan
	},
	"E12": {
		"apps":                      {1000, math.Inf(1)}, // the replay is at trace scale
		"students-p99-reduction-x":  {2, math.Inf(1)},    // fair share flattens the deadline queue
		"students-p99-fifo-minutes": {5, math.Inf(1)},    // FIFO melts down at 10x enrollment
		"students-p99-cap-minutes":  {0, 10},             // capacity keeps students interactive
		"preemptions":               {1, math.Inf(1)},    // preemption actually fired
		"node-hours-saved-x":        {1, math.Inf(1)},    // autoscaling returns idle capacity
		"cap-makespan-minutes":      {1, math.Inf(1)},
	},
	"E13": {
		"workloada-ops-per-sec":     {1, math.Inf(1)},
		"workloadc-ops-per-sec":     {1, math.Inf(1)},
		"workloade-ops-per-sec":     {1, math.Inf(1)},
		"workloada-p99-ms":          {0, math.Inf(1)},
		"workloadc-p99-ms":          {0, math.Inf(1)},
		"workloadc-cache-speedup-x": {1, math.Inf(1)}, // cache wins the read-only mix
		"workloadb-cache-speedup-x": {1, math.Inf(1)}, // ...and the 95/5 mix
		"cache-hit-rate":            {0.3, 1},         // Zipf skew makes the cache earn its keep
		"region-splits":             {1, math.Inf(1)}, // the hot region actually split
		"recovery-seconds":          {0, 60},          // crash detected + replayed promptly
		"reassigned-regions":        {1, math.Inf(1)}, // the dead server's regions moved
		"lost-acked-writes":         {0, 0},           // WAL durability: nothing acked is lost
	},
}

func TestBenchRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("tier-2: benchmark regression skipped in -short mode")
	}
	rep, err := experiments.Headlines(benchSeed)
	if err != nil {
		t.Fatal(err)
	}

	// 1. Shape invariants.
	for id, checks := range shapeChecks {
		got, ok := rep.Experiments[id]
		if !ok {
			t.Errorf("%s: missing from headline report", id)
			continue
		}
		for name, bounds := range checks {
			v, ok := got[name]
			switch {
			case !ok:
				t.Errorf("%s: missing headline metric %q", id, name)
			case math.IsNaN(v) || math.IsInf(v, 0):
				t.Errorf("%s/%s = %v: not finite", id, name, v)
			case v < bounds[0] || v > bounds[1]:
				t.Errorf("%s/%s = %v: outside shape bounds [%v, %v]", id, name, v, bounds[0], bounds[1])
			}
		}
	}

	// 2. Drift against every committed artifact.
	arts, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(arts)
	for _, path := range arts {
		diffArtifact(t, path, rep)
	}
	if len(arts) == 0 {
		t.Log("no committed BENCH_*.json artifacts; drift check skipped (run make bench)")
	}
}

func diffArtifact(t *testing.T, path string, cur *experiments.HeadlineReport) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Errorf("%s: %v", path, err)
		return
	}
	var prev experiments.HeadlineReport
	if err := json.Unmarshal(data, &prev); err != nil {
		t.Errorf("%s: %v", path, err)
		return
	}
	// Allocation gate: allocs per experiment run must stay within
	// allocsBand of any committed artifact that records them. A speed PR
	// that reintroduces per-record allocations fails here before it shows
	// up as wall-clock drift.
	for id, pa := range prev.AllocsPerOp {
		ca, ok := cur.AllocsPerOp[id]
		if !ok {
			t.Errorf("%s: %s allocs/op disappeared from the headline report", path, id)
			continue
		}
		if pa > 0 && ca > 0 {
			ratio := ca / pa
			if ratio > allocsBand || ratio < 1/allocsBand {
				t.Errorf("%s: %s allocs/op drifted %.2fx (artifact %.0f, current %.0f): regenerate with `make bench` if intended",
					path, id, ratio, pa, ca)
			}
		}
	}
	for id, prevMetrics := range prev.Experiments {
		curMetrics, ok := cur.Experiments[id]
		if !ok {
			t.Errorf("%s: experiment %s disappeared from the headline report", path, id)
			continue
		}
		for name, pv := range prevMetrics {
			cv, ok := curMetrics[name]
			if !ok {
				t.Errorf("%s: %s/%s disappeared from the headline report", path, id, name)
				continue
			}
			// Direction: a "-x" metric is a who-wins ratio; the winner
			// (which side of 1 it sits on) must not flip.
			if strings.HasSuffix(name, "-x") && (pv > 1) != (cv > 1) {
				t.Errorf("%s: %s/%s flipped winner: artifact %v, current %v", path, id, name, pv, cv)
				continue
			}
			// Factor: stay within driftBand of the committed value.
			if pv != 0 && cv != 0 && (pv > 0) == (cv > 0) {
				ratio := math.Abs(cv) / math.Abs(pv)
				if ratio > driftBand || ratio < 1/driftBand {
					t.Errorf("%s: %s/%s drifted %.2fx (artifact %v, current %v): regenerate with `make bench` if intended",
						path, id, name, ratio, pv, cv)
				}
			}
		}
	}
}

// End-to-end smoke tests for the command-line tools, exercising the real
// binaries the way docs/LABS.md tells students to.
package repro_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runCmd runs `go run ./cmd/<name> args...` with optional stdin.
func runCmd(t *testing.T, stdin string, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "./cmd/" + name}, args...)...)
	cmd.Dir = "."
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v failed: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestCLIExperimentsList(t *testing.T) {
	out := runCmd(t, "", "experiments", "-list")
	for _, want := range []string{"FIG1", "T1", "E9"} {
		if !strings.Contains(out, want) {
			t.Fatalf("experiments -list missing %s:\n%s", want, out)
		}
	}
}

func TestCLIExperimentsRunE7(t *testing.T) {
	out := runCmd(t, "", "experiments", "-run", "E7")
	if !strings.Contains(out, "Google cluster trace") || !strings.Contains(out, "1h") {
		t.Fatalf("E7 output:\n%s", out)
	}
}

func TestCLIDatagenAndMrrun(t *testing.T) {
	dir := t.TempDir()
	out := runCmd(t, "", "datagen", "-out", dir, "-only", "corpus", "-scale", "0.01")
	if !strings.Contains(out, "top word") {
		t.Fatalf("datagen output:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "corpus", "shakespeare.txt")); err != nil {
		t.Fatal(err)
	}
	outDir := filepath.Join(dir, "wc-out")
	out = runCmd(t, "", "mrrun", "-job", "wordcount", "-in", filepath.Join(dir, "corpus"), "-out", outDir)
	if !strings.Contains(out, "completed successfully") {
		t.Fatalf("mrrun output:\n%s", out)
	}
	data, err := os.ReadFile(filepath.Join(outDir, "part-r-00000"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "the\t") {
		t.Fatalf("wordcount output:\n%.200s", data)
	}
}

func TestCLIMrrunClusterMode(t *testing.T) {
	dir := t.TempDir()
	runCmd(t, "", "datagen", "-out", dir, "-only", "airline", "-scale", "0.02")
	outDir := filepath.Join(dir, "air-out")
	out := runCmd(t, "", "mrrun", "-job", "airline-avg-combiner", "-mode", "cluster",
		"-in", filepath.Join(dir, "airline"), "-out", outDir)
	if !strings.Contains(out, "Data-local maps") {
		t.Fatalf("cluster mode report:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(outDir, "part-r-00000")); err != nil {
		t.Fatal(err)
	}
}

func TestCLIMinihdfsSession(t *testing.T) {
	script := "-mkdir /user/student\n-ls /\n-fsck /\n"
	out := runCmd(t, script, "minihdfs", "-nodes", "4")
	for _, want := range []string{"$ hadoop fs -mkdir", "is HEALTHY"} {
		if !strings.Contains(out, want) {
			t.Fatalf("minihdfs session missing %q:\n%s", want, out)
		}
	}
}

func TestCLIMyhadoopFlow(t *testing.T) {
	out := runCmd(t, "", "myhadoop", "-nodes", "4", "-pool", "8")
	for _, want := range []string{"reservation granted", "wordcount", "released cleanly"} {
		if !strings.Contains(out, want) {
			t.Fatalf("myhadoop flow missing %q:\n%s", want, out)
		}
	}
}

func TestCLIMrhistory(t *testing.T) {
	// The committed golden history file doubles as the CLI fixture: lay it
	// out the way an `hadoop fs -get /history` export would look.
	const jobID = "job_wordcount_combiner_0001"
	events, err := os.ReadFile(filepath.Join("internal", "jobs", "testdata", "golden_history_events.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, jobID), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, jobID, "events.jsonl"), events, 0o644); err != nil {
		t.Fatal(err)
	}

	out := runCmd(t, "", "mrhistory", "-dir", dir, "-list")
	if strings.TrimSpace(out) != jobID {
		t.Fatalf("-list output:\n%s", out)
	}
	out = runCmd(t, "", "mrhistory", "-dir", dir, "-job", jobID)
	for _, want := range []string{"Job " + jobID + " (wordcount-combiner) SUCCEEDED", "attempt_task_", "Counters:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	out = runCmd(t, "", "mrhistory", "-dir", dir, "-job", jobID, "-analyze")
	for _, want := range []string{"Critical path", "Slowest", "Shuffle:", "Per-node successful attempts"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-analyze missing %q:\n%s", want, out)
		}
	}
	want, err := os.ReadFile(filepath.Join("internal", "jobs", "testdata", "golden_history_report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Fatalf("-analyze drifted from the pinned report:\ngot:\n%s\nwant:\n%s", out, want)
	}
}

func TestCLIMyhadoopShowScript(t *testing.T) {
	out := runCmd(t, "", "myhadoop", "-show-script")
	if !strings.Contains(out, "#PBS -l select=") {
		t.Fatalf("script:\n%s", out)
	}
}

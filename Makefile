GO ?= go

.PHONY: build test short check race chaos bench bench-smoke ci

build:
	$(GO) build ./...

# Tier-1: what CI gates on.
test: build
	$(GO) test ./...

# Fast loop: skips the tier-2 chaos sweeps and benchmark regression
# (testing.Short guards).
short:
	$(GO) test -short ./...

# Full verification: vet + the entire suite under the race detector
# (includes the obs registry, whose counters are read concurrently by the
# web UI while hot paths write them).
check:
	$(GO) vet ./...
	$(GO) test -race ./...

# Just the concurrency-sensitive surface, race-checked.
race:
	$(GO) test -race ./internal/obs/... ./internal/faultinject/... ./internal/hdfs/... ./internal/mrcluster/... ./internal/iofmt/...

chaos: race

# Full benchmark pass, then regenerate the committed headline-metrics
# artifact the tier-2 regression test (TestBenchRegression) diffs against.
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
	$(GO) run ./cmd/benchreport -out BENCH_pr3.json

# One-iteration benchmark smoke pass — proves every experiment still runs
# without paying for steady-state timing.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem -run=^$$ .

# The gate a PR must pass end to end: vet, build, tier-1 tests, the
# race-checked obs + fault-injection subset, and a benchmark smoke run.
ci: build
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/obs/... ./internal/faultinject/... ./internal/iofmt/...
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

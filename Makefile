GO ?= go

# Where `make bench` writes the committed headline-metrics artifact.
# Each PR that re-baselines benchmarks bumps the default.
BENCH_OUT ?= BENCH_pr10.json

.PHONY: build test short check race chaos bench bench-smoke ci lint lint-fast

build:
	$(GO) build ./...

# Tier-1: what CI gates on.
test: build
	$(GO) test ./...

# Fast loop: skips the tier-2 chaos sweeps and benchmark regression
# (testing.Short guards).
short:
	$(GO) test -short ./...

# Determinism & concurrency lint (see docs/LINT.md): wall-clock reads,
# shared rand, order-dependent map iteration, lock misuse, library
# hygiene — plus the interprocedural call-graph rules (dettaint,
# lockorder, commiterr). Runs after vet — vet catches what the compiler
# misses, lint catches what vet can't know (the repo's own
# sim-clock/seeded-rand contracts). -trace prints the call chain behind
# each interprocedural finding.
lint:
	$(GO) run ./cmd/minilint -trace ./internal/... ./cmd/...

# Inner-dev-loop lint: per-package rules only, skipping the whole-program
# call graph construction the interprocedural rules need.
lint-fast:
	$(GO) run ./cmd/minilint -fast ./internal/... ./cmd/...

# Full verification: vet, then the repo lint suite, then the entire test
# suite under the race detector (includes the obs registry, whose
# counters are read concurrently by the web UI while hot paths write
# them). Gate order is cheapest-first: vet and lint fail in seconds,
# -race takes minutes.
check:
	$(GO) vet ./...
	$(GO) run ./cmd/minilint ./internal/... ./cmd/...
	$(GO) test -race ./...

# Just the concurrency-sensitive surface, race-checked. internal/sim is
# single-threaded by contract but included so the detector verifies the
# engine's free-list never leaks events across goroutines in tests.
race:
	$(GO) test -race ./internal/sim/... ./internal/obs/... ./internal/trace/... ./internal/faultinject/... ./internal/hdfs/... ./internal/mrcluster/... ./internal/iofmt/... ./internal/history/... ./internal/yarn/... ./internal/kvstore/... ./internal/regionserver/...

chaos: race

# Full benchmark pass, then regenerate the committed headline-metrics
# artifact the tier-2 regression test (TestBenchRegression) diffs against.
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
	$(GO) run ./cmd/benchreport -out $(BENCH_OUT)

# One-iteration benchmark smoke pass — proves every experiment still runs
# without paying for steady-state timing.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem -run=^$$ .

# The gate a PR must pass end to end: vet, lint, build, tier-1 tests,
# the race-checked obs + fault-injection subset, and a benchmark smoke
# run. Static gates (vet, lint) come before tests so a determinism
# violation fails the build even when no test happens to exercise it.
ci: build
	$(GO) vet ./...
	$(GO) run ./cmd/minilint ./internal/... ./cmd/...
	$(GO) test ./...
	$(GO) test -race ./internal/sim/... ./internal/obs/... ./internal/trace/... ./internal/faultinject/... ./internal/iofmt/... ./internal/history/... ./internal/yarn/... ./internal/kvstore/... ./internal/regionserver/...
	$(GO) test -run 'TestGoldenJobHistory|TestGoldenTrace' ./internal/jobs/
	$(GO) run ./cmd/benchreport -trend
	$(GO) test -run 'TestE12Smoke|TestE13Smoke' ./internal/experiments/
	$(GO) test -run '^$$' -fuzz FuzzSeqSplit -fuzztime 5s ./internal/iofmt/
	$(GO) test -run '^$$' -fuzz FuzzSeqReadCorrupt -fuzztime 5s ./internal/iofmt/
	$(GO) test -run '^$$' -fuzz FuzzCodecRoundTrip -fuzztime 5s ./internal/iofmt/
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

GO ?= go

.PHONY: build test short check race chaos bench

build:
	$(GO) build ./...

# Tier-1: what CI gates on.
test: build
	$(GO) test ./...

# Fast loop: skips the tier-2 chaos sweeps (testing.Short guards).
short:
	$(GO) test -short ./...

# Full verification: vet + the entire suite under the race detector.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

# Just the fault-injection / chaos surface, race-checked.
race:
	$(GO) test -race ./internal/faultinject/... ./internal/hdfs/... ./internal/mrcluster/...

chaos: race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

// Benchmarks regenerating every table and figure of the paper (plus the
// per-claim experiments E1–E10 of DESIGN.md). Each benchmark runs the full
// experiment and reports its headline metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's evaluation in one command. Absolute numbers come
// from the deterministic cost model (see EXPERIMENTS.md for the
// paper-vs-measured discussion); the asserted *shapes* — who wins, by
// what factor, where saturation sets in — are the reproduction targets.
//
// The reported metrics are extracted by experiments.HeadlineMetrics, the
// same code path cmd/benchreport uses to write the BENCH_<pr>.json
// regression artifact (diffed by TestBenchRegression).
package repro_test

import (
	"sort"
	"testing"

	"repro/internal/experiments"
)

const benchSeed = 1234

func runExperiment(b *testing.B, id string, report func(b *testing.B, r *experiments.Result)) {
	b.Helper()
	b.ReportAllocs()
	spec, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		r, err := spec.Run(benchSeed)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 && report != nil {
			report(b, r)
		}
	}
}

// headlines reports id's headline metrics (sorted for stable output).
func headlines(id string) func(b *testing.B, r *experiments.Result) {
	return func(b *testing.B, r *experiments.Result) {
		m := experiments.HeadlineMetrics(id, r)
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b.ReportMetric(m[k], k)
		}
	}
}

// BenchmarkFig1ArchitectureComparison regenerates Figure 1's point: the
// HPC compute/storage split versus the Hadoop data-local layout.
func BenchmarkFig1ArchitectureComparison(b *testing.B) {
	runExperiment(b, "FIG1", headlines("FIG1"))
}

// BenchmarkFig2TopologyRender regenerates Figure 2 from live state.
func BenchmarkFig2TopologyRender(b *testing.B) {
	runExperiment(b, "FIG2", func(b *testing.B, r *experiments.Result) {
		b.ReportMetric(float64(len(r.Text)), "diagram-bytes")
	})
}

// BenchmarkTable1Proficiency regenerates Table I.
func BenchmarkTable1Proficiency(b *testing.B) { runExperiment(b, "T1", nil) }

// BenchmarkTable2TimeToComplete regenerates Table II.
func BenchmarkTable2TimeToComplete(b *testing.B) { runExperiment(b, "T2", nil) }

// BenchmarkTable3Helpfulness regenerates Table III.
func BenchmarkTable3Helpfulness(b *testing.B) { runExperiment(b, "T3", nil) }

// BenchmarkTable4YearToTeach regenerates Table IV.
func BenchmarkTable4YearToTeach(b *testing.B) { runExperiment(b, "T4", nil) }

// BenchmarkTable5Curriculum regenerates Table V.
func BenchmarkTable5Curriculum(b *testing.B) { runExperiment(b, "T5", nil) }

// BenchmarkE1DeadlineMeltdown replays the Fall 2012 meltdown.
func BenchmarkE1DeadlineMeltdown(b *testing.B) { runExperiment(b, "E1", headlines("E1")) }

// BenchmarkE2CombinerTradeoff measures the combiner's shuffle/map-time trade.
func BenchmarkE2CombinerTradeoff(b *testing.B) { runExperiment(b, "E2", headlines("E2")) }

// BenchmarkE3AirlineVariants compares the three delay-average designs.
func BenchmarkE3AirlineVariants(b *testing.B) { runExperiment(b, "E3", headlines("E3")) }

// BenchmarkE4SideDataAccess measures naive vs cached side-file access.
func BenchmarkE4SideDataAccess(b *testing.B) { runExperiment(b, "E4", headlines("E4")) }

// BenchmarkE5SerialVsCluster measures the same-jar cluster speedup.
func BenchmarkE5SerialVsCluster(b *testing.B) { runExperiment(b, "E5", headlines("E5")) }

// BenchmarkE6GhostDaemons sweeps the scheduler cleanup interval.
func BenchmarkE6GhostDaemons(b *testing.B) { runExperiment(b, "E6", headlines("E6")) }

// BenchmarkE7StagingTime evaluates staging cost at paper scale.
func BenchmarkE7StagingTime(b *testing.B) { runExperiment(b, "E7", headlines("E7")) }

// BenchmarkE8FsckRecovery replays the shell observation exercise.
func BenchmarkE8FsckRecovery(b *testing.B) { runExperiment(b, "E8", headlines("E8")) }

// BenchmarkE9Scalability measures the 1–16 node speedup curve.
func BenchmarkE9Scalability(b *testing.B) { runExperiment(b, "E9", headlines("E9")) }

// BenchmarkE10FileFormats compares the same corpus as text, whole-stream
// gzip and block-compressed SequenceFile, plus the shuffle-compression
// ablation.
func BenchmarkE10FileFormats(b *testing.B) { runExperiment(b, "E10", headlines("E10")) }

// BenchmarkE11JobHistory measures the history subsystem: event volumes,
// persisted bytes, and the critical path rebuilt from the event log.
func BenchmarkE11JobHistory(b *testing.B) { runExperiment(b, "E11", headlines("E11")) }

// BenchmarkE12Multitenant replays the 1,200-app Google-trace workload —
// the deadline meltdown at 10x enrollment — through FIFO and capacity
// scheduling and reports the fairness/cost headline metrics.
func BenchmarkE12Multitenant(b *testing.B) { runExperiment(b, "E12", headlines("E12")) }

// BenchmarkE13Serving sweeps the YCSB core mixes against the region
// server tier with and without the front-line cache, plus the
// crash-recovery scenario, and reports ops/sec, tail latency, cache
// speedup, and recovery headline metrics.
func BenchmarkE13Serving(b *testing.B) { runExperiment(b, "E13", headlines("E13")) }

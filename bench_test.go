// Benchmarks regenerating every table and figure of the paper (plus the
// per-claim experiments E1–E9 of DESIGN.md). Each benchmark runs the full
// experiment and reports its headline metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's evaluation in one command. Absolute numbers come
// from the deterministic cost model (see EXPERIMENTS.md for the
// paper-vs-measured discussion); the asserted *shapes* — who wins, by
// what factor, where saturation sets in — are the reproduction targets.
package repro_test

import (
	"testing"

	"repro/internal/experiments"
)

const benchSeed = 1234

func runExperiment(b *testing.B, id string, report func(b *testing.B, r *experiments.Result)) {
	b.Helper()
	spec, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		r, err := spec.Run(benchSeed)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 && report != nil {
			report(b, r)
		}
	}
}

// BenchmarkFig1ArchitectureComparison regenerates Figure 1's point: the
// HPC compute/storage split versus the Hadoop data-local layout.
func BenchmarkFig1ArchitectureComparison(b *testing.B) {
	runExperiment(b, "FIG1", func(b *testing.B, r *experiments.Result) {
		res := r.Raw.(*experiments.Fig1Result)
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.Slowdown, "hpc-slowdown-at-16-nodes")
		b.ReportMetric(last.LocalityPercent, "locality-%")
	})
}

// BenchmarkFig2TopologyRender regenerates Figure 2 from live state.
func BenchmarkFig2TopologyRender(b *testing.B) {
	runExperiment(b, "FIG2", func(b *testing.B, r *experiments.Result) {
		b.ReportMetric(float64(len(r.Text)), "diagram-bytes")
	})
}

// BenchmarkTable1Proficiency regenerates Table I.
func BenchmarkTable1Proficiency(b *testing.B) { runExperiment(b, "T1", nil) }

// BenchmarkTable2TimeToComplete regenerates Table II.
func BenchmarkTable2TimeToComplete(b *testing.B) { runExperiment(b, "T2", nil) }

// BenchmarkTable3Helpfulness regenerates Table III.
func BenchmarkTable3Helpfulness(b *testing.B) { runExperiment(b, "T3", nil) }

// BenchmarkTable4YearToTeach regenerates Table IV.
func BenchmarkTable4YearToTeach(b *testing.B) { runExperiment(b, "T4", nil) }

// BenchmarkTable5Curriculum regenerates Table V.
func BenchmarkTable5Curriculum(b *testing.B) { runExperiment(b, "T5", nil) }

// BenchmarkE1DeadlineMeltdown replays the Fall 2012 meltdown.
func BenchmarkE1DeadlineMeltdown(b *testing.B) {
	runExperiment(b, "E1", func(b *testing.B, r *experiments.Result) {
		res := r.Raw.(*experiments.MeltdownResult)
		b.ReportMetric(res.CompletedFraction(), "completed-fraction")
		b.ReportMetric(res.RecoveryTime.Minutes(), "recovery-minutes")
		b.ReportMetric(float64(res.DeadDataNodes), "dead-datanodes")
	})
}

// BenchmarkE2CombinerTradeoff measures the combiner's shuffle/map-time trade.
func BenchmarkE2CombinerTradeoff(b *testing.B) {
	runExperiment(b, "E2", func(b *testing.B, r *experiments.Result) {
		res := r.Raw.(*experiments.E2Result)
		b.ReportMetric(float64(res.Plain.ShuffleBytes)/float64(res.Combiner.ShuffleBytes), "shuffle-reduction-x")
		b.ReportMetric(float64(res.Combiner.MapPhase)/float64(res.Plain.MapPhase), "map-phase-ratio")
	})
}

// BenchmarkE3AirlineVariants compares the three delay-average designs.
func BenchmarkE3AirlineVariants(b *testing.B) {
	runExperiment(b, "E3", func(b *testing.B, r *experiments.Result) {
		res := r.Raw.(*experiments.E3Result)
		b.ReportMetric(float64(res.Plain.ShuffleBytes)/float64(res.InMapper.ShuffleBytes), "plain-vs-imc-shuffle-x")
		b.ReportMetric(float64(res.InMapper.MemoryPeak), "imc-memory-bytes")
	})
}

// BenchmarkE4SideDataAccess measures naive vs cached side-file access.
func BenchmarkE4SideDataAccess(b *testing.B) {
	runExperiment(b, "E4", func(b *testing.B, r *experiments.Result) {
		res := r.Raw.(*experiments.E4Result)
		b.ReportMetric(res.Ratio, "naive-vs-cached-x")
	})
}

// BenchmarkE5SerialVsCluster measures the same-jar cluster speedup.
func BenchmarkE5SerialVsCluster(b *testing.B) {
	runExperiment(b, "E5", func(b *testing.B, r *experiments.Result) {
		res := r.Raw.(*experiments.E5Result)
		b.ReportMetric(res.Speedup, "cluster-speedup-x")
	})
}

// BenchmarkE6GhostDaemons sweeps the scheduler cleanup interval.
func BenchmarkE6GhostDaemons(b *testing.B) {
	runExperiment(b, "E6", func(b *testing.B, r *experiments.Result) {
		res := r.Raw.(*experiments.E6Result)
		b.ReportMetric(res.Points[len(res.Points)-1].FailureRate, "failure-rate-at-30m")
	})
}

// BenchmarkE7StagingTime evaluates staging cost at paper scale.
func BenchmarkE7StagingTime(b *testing.B) {
	runExperiment(b, "E7", func(b *testing.B, r *experiments.Result) {
		res := r.Raw.(*experiments.E7Result)
		for _, p := range res.Points {
			if p.Size == 171<<30 {
				b.ReportMetric(p.Staging.Minutes(), "trace-staging-minutes")
			}
		}
	})
}

// BenchmarkE8FsckRecovery replays the shell observation exercise.
func BenchmarkE8FsckRecovery(b *testing.B) {
	runExperiment(b, "E8", func(b *testing.B, r *experiments.Result) {
		res := r.Raw.(*experiments.E8Result)
		b.ReportMetric(float64(res.UnderReplicatedAfterKill), "under-replicated-after-kill")
	})
}

// BenchmarkE9Scalability measures the 1–16 node speedup curve.
func BenchmarkE9Scalability(b *testing.B) {
	runExperiment(b, "E9", func(b *testing.B, r *experiments.Result) {
		res := r.Raw.(*experiments.E9Result)
		b.ReportMetric(res.Points[len(res.Points)-1].Speedup, "speedup-at-16-nodes")
		b.ReportMetric(res.SpeculationGain, "speculation-gain-x")
	})
}

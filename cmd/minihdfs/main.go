// Command minihdfs runs `hadoop fs`-style commands against an in-process
// simulated HDFS cluster, optionally staging a host directory first and
// injecting a DataNode failure mid-session — the second assignment's
// "observe how HDFS transforms, stores, replicates, and abstracts the
// actual data" exercise in one binary.
//
// Usage:
//
//	minihdfs [-nodes 8] [-racks 1] [-block 2097152] [-repl 3]
//	         [-stage hostdir=/dfs/path] [-kill-node 2]
//	         -- <script of fs commands on stdin, or -c "cmds">
//
// Example:
//
//	echo '-ls /
//	-put /data/corpus.txt /corpus.txt
//	-locations /corpus.txt
//	-fsck /' | minihdfs -stage ./testdata=/data
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hdfs"
	"repro/internal/vfs"
	"repro/internal/webui"
)

func main() {
	nodes := flag.Int("nodes", 8, "cluster size")
	racks := flag.Int("racks", 1, "rack count")
	block := flag.Int64("block", 2<<20, "HDFS block size in bytes")
	repl := flag.Int("repl", 3, "default replication factor")
	seed := flag.Int64("seed", 1, "deterministic seed")
	stage := flag.String("stage", "", "hostdir=/dfs/path to pre-stage")
	killNode := flag.Int("kill-node", -1, "kill this DataNode after staging")
	script := flag.String("c", "", "commands to run (newline separated); default reads stdin")
	topology := flag.Bool("topology", false, "print the component topology (Figure 2) after the session")
	serve := flag.String("serve", "", "after the session, serve the web UI on this address (e.g. :50070)")
	metrics := flag.String("metrics", "", "write the obs metrics/spans snapshot to this JSON file after the session")
	flag.Parse()

	c, err := core.New(core.Options{
		Nodes: *nodes,
		Racks: *racks,
		Seed:  *seed,
		HDFS: hdfs.Config{
			BlockSize:         *block,
			Replication:       *repl,
			HeartbeatInterval: time.Second,
			HeartbeatExpiry:   10 * time.Second,
		},
	})
	if err != nil {
		fatal(err)
	}
	local, err := vfs.NewOsFS("/")
	if err != nil {
		fatal(err)
	}
	sh := c.Shell(local, os.Stdout)
	sh.Local = local

	if *stage != "" {
		parts := strings.SplitN(*stage, "=", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf("-stage wants hostdir=/dfs/path, got %q", *stage))
		}
		hostAbs, err := absPath(parts[0])
		if err != nil {
			fatal(err)
		}
		n, err := vfs.CopyTree(local, hostAbs, c.FS(), parts[1])
		if err != nil {
			fatal(fmt.Errorf("staging: %w", err))
		}
		fmt.Printf("staged %d bytes from %s to %s\n", n, parts[0], parts[1])
	}
	if *killNode >= 0 {
		dn := c.DFS.DataNode(cluster.NodeID(*killNode))
		if dn == nil {
			fatal(fmt.Errorf("no DataNode %d", *killNode))
		}
		dn.Kill()
		c.Engine.Advance(15 * time.Second)
		fmt.Printf("killed DataNode on node %d; heartbeats expired\n", *killNode)
	}

	text := *script
	if text == "" {
		data, err := readAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		text = data
	}
	if strings.TrimSpace(text) != "" {
		if err := sh.RunScript(text); err != nil {
			fatal(err)
		}
	}
	if *topology {
		fmt.Println(c.RenderTopology())
	}
	if *metrics != "" {
		data, err := c.Obs.SnapshotJSON()
		if err == nil {
			err = os.WriteFile(*metrics, data, 0o644)
		}
		if err != nil {
			fatal(fmt.Errorf("writing metrics: %w", err))
		}
		fmt.Printf("metrics snapshot written to %s\n", *metrics)
	}
	if *serve != "" {
		fmt.Printf("serving web UI on http://%s (dfshealth, jobtracker, fsck, topology)\n", *serve)
		if err := http.ListenAndServe(*serve, webui.Handler(c)); err != nil {
			fatal(err)
		}
	}
}

func absPath(p string) (string, error) {
	if strings.HasPrefix(p, "/") {
		return p, nil
	}
	wd, err := os.Getwd()
	if err != nil {
		return "", err
	}
	return vfs.Join(wd, p), nil
}

func readAll(f *os.File) (string, error) {
	var b strings.Builder
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		b.WriteString(sc.Text())
		b.WriteByte('\n')
	}
	return b.String(), sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minihdfs:", err)
	os.Exit(1)
}

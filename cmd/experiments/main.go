// Command experiments regenerates the paper's tables and figures and the
// per-claim experiments of DESIGN.md.
//
// Usage:
//
//	experiments -list
//	experiments -run FIG1
//	experiments -run all [-seed 1234]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "", "experiment ID to run, or 'all'")
	seed := flag.Int64("seed", 1234, "deterministic seed")
	flag.Parse()

	switch {
	case *list:
		for _, s := range experiments.Registry() {
			fmt.Printf("%-5s %s\n", s.ID, s.Title)
		}
	case strings.EqualFold(*run, "all"):
		for _, s := range experiments.Registry() {
			res, err := s.Run(*seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", s.ID, err)
				os.Exit(1)
			}
			fmt.Println(res)
		}
	case *run != "":
		s, ok := experiments.Lookup(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *run)
			os.Exit(2)
		}
		res, err := s.Run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", s.ID, err)
			os.Exit(1)
		}
		fmt.Println(res)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// Command benchreport runs the headline experiments (Figure 1 plus
// E1–E9) at a fixed seed and writes the machine-readable benchmark
// artifact (BENCH_<pr>.json) that the tier-2 regression test diffs
// against. Commit the artifact alongside the PR that changed the
// numbers; see docs/OBSERVABILITY.md for the workflow.
//
// Usage:
//
//	benchreport [-seed 1234] [-out BENCH_pr2.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1234, "deterministic seed (matches the bench suite's benchSeed)")
	out := flag.String("out", "BENCH_pr2.json", "output path for the headline-metrics artifact")
	flag.Parse()

	rep, err := experiments.Headlines(*seed)
	if err != nil {
		fatal(err)
	}
	data, err := rep.JSON()
	if err == nil {
		err = os.WriteFile(*out, data, 0o644)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d experiments, seed %d)\n", *out, len(rep.Experiments), rep.Seed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchreport:", err)
	os.Exit(1)
}

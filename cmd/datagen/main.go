// Command datagen writes the course's synthetic datasets to a host
// directory, printing the ground truth of each assignment's question so
// results can be checked by hand.
//
// Usage:
//
//	datagen -out ./data [-scale 1.0] [-seed 1] [-only corpus,airline,movies,music,trace]
//	        [-format text|gz|lzs|seq|seq-gzip|seq-lzs]
//
// -format re-encodes the text corpus into another container so labs can
// compare splittable and non-splittable inputs built from the identical
// seed-for-seed word stream.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/datagen"
	"repro/internal/vfs"
)

func main() {
	out := flag.String("out", "./data", "output directory on the host")
	scale := flag.Float64("scale", 1.0, "size multiplier for all datasets")
	seed := flag.Int64("seed", 1, "deterministic seed")
	only := flag.String("only", "", "comma-separated subset (corpus,airline,movies,music,trace)")
	format := flag.String("format", "text",
		"corpus container: "+strings.Join(datagen.TextFormats(), "|"))
	flag.Parse()

	fs, err := vfs.NewOsFS(*out)
	if err != nil {
		fatal(err)
	}
	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			want[strings.TrimSpace(s)] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }
	sc := func(n int) int {
		v := int(float64(n) * *scale)
		if v < 1 {
			v = 1
		}
		return v
	}

	if sel("corpus") {
		path := datagen.TextPathFor("/corpus/shakespeare.txt", *format)
		truth, n, err := datagen.TextAs(fs, path,
			datagen.TextOpts{Lines: sc(100000), Seed: *seed}, *format)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("corpus (%s): %d bytes; top word %q x%d\n", *format, n, truth.TopWord, truth.TopWordCount)
	}
	if sel("airline") {
		truth, n, err := datagen.Airline(fs, "/airline/ontime.csv",
			datagen.AirlineOpts{Rows: sc(200000), Seed: *seed})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("airline: %d bytes; lowest average delay: %s (%.2f min)\n",
			n, truth.BestCode, truth.Avg(truth.BestCode))
	}
	if sel("movies") {
		truth, n, err := datagen.Movies(fs, "/movielens",
			datagen.MovieOpts{Movies: sc(1000), Users: sc(2000), Ratings: sc(100000), Seed: *seed})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("movies: %d bytes; most active user %d (%d ratings, favourite %s)\n",
			n, truth.TopUser, truth.TopUserCount, truth.FavGenre)
	}
	if sel("music") {
		truth, n, err := datagen.Music(fs, "/yahoomusic",
			datagen.MusicOpts{Songs: sc(2000), Albums: sc(200), Users: sc(1500), Ratings: sc(150000), Seed: *seed})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("music: %d bytes; best album %d (avg %.2f)\n", n, truth.BestAlbum, truth.BestAvg)
	}
	if sel("trace") {
		truth, n, err := datagen.Trace(fs, "/googletrace/task_events.csv",
			datagen.TraceOpts{Jobs: sc(200), MeanTasks: 25, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trace: %d bytes (%d events); job %d has most resubmissions (%d)\n",
			n, truth.Events, truth.MaxJob, truth.MaxResub)
	}
	fmt.Printf("datasets written under %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}

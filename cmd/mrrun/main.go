// Command mrrun runs any registered course job either standalone (the
// first assignment's no-HDFS mode, against the host filesystem) or on a
// simulated HDFS cluster (the second assignment's mode), printing the
// job report students were asked to study.
//
// Usage:
//
//	mrrun -list
//	mrrun -job wordcount -in ./data -out ./out
//	mrrun -job top-album -mode cluster -in ./ym/ratings.tsv -side ./ym/songs.tsv -out ./out
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hdfs"
	"repro/internal/history"
	"repro/internal/jobs"
	"repro/internal/mrcluster"
	"repro/internal/obs"
	"repro/internal/serial"
	"repro/internal/vfs"
	"repro/internal/yarn"
)

func main() {
	list := flag.Bool("list", false, "list registered jobs")
	jobName := flag.String("job", "", "job to run (see -list)")
	mode := flag.String("mode", "standalone", "standalone | cluster")
	in := flag.String("in", "", "input file or directory (host path)")
	out := flag.String("out", "", "output directory (host path; must not exist)")
	side := flag.String("side", "", "side file for join jobs (host path)")
	nodes := flag.Int("nodes", 8, "cluster mode: node count")
	blockSize := flag.Int64("block", 1<<20, "cluster mode: HDFS block size")
	seed := flag.Int64("seed", 1, "deterministic seed")
	metrics := flag.String("metrics", "", "write the obs metrics/spans snapshot to this JSON file")
	histDir := flag.String("history", "", "cluster mode: export the /history job-history tree to this host directory (read it with mrhistory)")
	slowNode := flag.Int("slow-node", -1, "cluster mode: make this node a straggler (task durations multiplied by -slow-factor)")
	slowDisk := flag.Int("slow-disk", -1, "cluster mode: make this node's DISK a straggler (block read/write times multiplied by -slow-factor; find it with mrtrace)")
	slowFactor := flag.Float64("slow-factor", 8, "cluster mode: straggler slowdown factor for -slow-node / -slow-disk")
	speculative := flag.Bool("speculative", false, "cluster mode: enable speculative execution of straggling tasks")
	yarnMode := flag.Bool("yarn", false, "cluster mode: run the JobTracker as a YARN application (containers negotiated from the ResourceManager)")
	queue := flag.String("queue", "", "cluster mode with -yarn: capacity queue to submit the job to")
	user := flag.String("user", "", "cluster mode with -yarn: submitting user (for capacity-queue user limits)")
	flag.Parse()

	if *list {
		for _, s := range jobs.Registry() {
			needs := ""
			if s.NeedsSide {
				needs = " (needs -side)"
			}
			fmt.Printf("%-26s %s%s\n", s.Name, s.Description, needs)
		}
		return
	}
	if *jobName == "" || *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	spec, ok := jobs.Lookup(*jobName)
	if !ok {
		fatal(fmt.Errorf("unknown job %q (use -list)", *jobName))
	}

	host, err := vfs.NewOsFS("/")
	if err != nil {
		fatal(err)
	}
	inAbs, outAbs := mustAbs(*in), mustAbs(*out)
	sideAbs := ""
	if *side != "" {
		sideAbs = mustAbs(*side)
	}

	switch *mode {
	case "standalone":
		job, err := spec.Build(jobs.Params{Input: inAbs, Output: outAbs, Side: sideAbs})
		if err != nil {
			fatal(err)
		}
		reg := obs.NewRegistry()
		rep, err := (&serial.Runner{FS: host, Parallelism: 4, Obs: reg}).Run(job)
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep)
		fmt.Printf("Output written to %s\n", outAbs)
		writeMetrics(reg, *metrics)
	case "cluster":
		mrCfg := mrcluster.Config{Speculative: *speculative}
		if *slowNode >= 0 {
			mrCfg.NodeSlowdown = map[cluster.NodeID]float64{cluster.NodeID(*slowNode): *slowFactor}
		}
		copts := core.Options{
			Nodes: *nodes,
			Seed:  *seed,
			HDFS:  hdfs.Config{BlockSize: *blockSize},
			MR:    mrCfg,
		}
		if *yarnMode {
			copts.YARN = &yarn.CapacityOptions{}
		} else if *queue != "" || *user != "" {
			fatal(fmt.Errorf("-queue/-user require -yarn"))
		}
		c, err := core.New(copts)
		if err != nil {
			fatal(err)
		}
		if *slowDisk >= 0 {
			dn := c.DFS.DataNode(cluster.NodeID(*slowDisk))
			if dn == nil {
				fatal(fmt.Errorf("-slow-disk %d: no such node (cluster has %d)", *slowDisk, *nodes))
			}
			dn.SetDiskSlowdown(*slowFactor)
		}
		// Stage inputs into HDFS, run, export results back — the myHadoop
		// submission-script flow.
		if _, err := vfs.CopyTree(host, inAbs, c.FS(), "/in"); err != nil {
			fatal(fmt.Errorf("staging input: %w", err))
		}
		p := jobs.Params{Input: "/in", Output: "/out"}
		if sideAbs != "" {
			if _, err := vfs.CopyTree(host, sideAbs, c.FS(), "/side"+filepath.Ext(sideAbs)); err != nil {
				fatal(fmt.Errorf("staging side file: %w", err))
			}
			p.Side = "/side" + filepath.Ext(sideAbs)
		}
		job, err := spec.Build(p)
		if err != nil {
			fatal(err)
		}
		job.Queue, job.User = *queue, *user
		rep, err := c.Run(job)
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep)
		if c.RM != nil {
			fmt.Printf("YARN: %d containers launched, %d preemptions, %.2f node-hours\n",
				c.RM.ContainersLaunched, c.RM.Preemptions(), c.RM.NodeHours())
		}
		if _, err := vfs.CopyTree(c.FS(), "/out", host, outAbs); err != nil {
			fatal(fmt.Errorf("exporting output: %w", err))
		}
		fmt.Printf("Output copied to local filesystem at %s\n", outAbs)
		if *histDir != "" {
			histAbs := mustAbs(*histDir)
			if _, err := vfs.CopyTree(c.FS(), history.Root, host, histAbs); err != nil {
				fatal(fmt.Errorf("exporting job history: %w", err))
			}
			fmt.Printf("Job history copied to %s (inspect with: go run ./cmd/mrhistory -dir %s -list)\n", histAbs, *histDir)
			fmt.Printf("Trace exports are beside each job's events: go run ./cmd/mrtrace -file %s/<jobid>/trace.jsonl -list\n", *histDir)
		}
		writeMetrics(c.Obs, *metrics)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

// writeMetrics dumps the registry snapshot to path (no-op when empty).
func writeMetrics(reg *obs.Registry, path string) {
	if path == "" {
		return
	}
	data, err := reg.SnapshotJSON()
	if err == nil {
		err = os.WriteFile(path, data, 0o644)
	}
	if err != nil {
		fatal(fmt.Errorf("writing metrics: %w", err))
	}
	fmt.Printf("Metrics snapshot written to %s\n", path)
}

func mustAbs(p string) string {
	abs, err := filepath.Abs(p)
	if err != nil {
		fatal(err)
	}
	return filepath.ToSlash(abs)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mrrun:", err)
	os.Exit(1)
}

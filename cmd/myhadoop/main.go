// Command myhadoop simulates the course's dynamic Hadoop-on-PBS workflow:
// reserve nodes from the shared pool, provision a private Hadoop cluster,
// run a WordCount, export results and tear down. Flags demonstrate the
// ghost-daemon failure mode the paper describes.
//
// Usage:
//
//	myhadoop [-pool 16] [-nodes 8] [-walltime 2h] [-unclean-previous]
//	         [-cleanup 15m] [-wait-cleanup] [-show-script]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/hdfs"
	"repro/internal/jobs"
	"repro/internal/myhadoop"
	"repro/internal/sim"
	"repro/internal/vfs"
)

func main() {
	pool := flag.Int("pool", 16, "supercomputer pool size (nodes)")
	nodes := flag.Int("nodes", 8, "nodes to reserve")
	walltime := flag.Duration("walltime", 2*time.Hour, "reservation walltime")
	cleanup := flag.Duration("cleanup", 15*time.Minute, "scheduler cleanup interval")
	uncleanPrev := flag.Bool("unclean-previous", false, "a previous student exited without stopping Hadoop")
	waitCleanup := flag.Bool("wait-cleanup", false, "wait for the cleanup script when blocked by ghosts")
	showScript := flag.Bool("show-script", false, "print the PBS submission script and exit")
	seed := flag.Int64("seed", 1, "deterministic seed")
	flag.Parse()

	if *showScript {
		fmt.Print(myhadoop.DefaultScript("student", *nodes, *walltime).Render())
		return
	}

	eng := sim.NewEngine()
	topo := cluster.NewTopology(cluster.PaperNodeConfig(*pool, 1))
	pbs := myhadoop.NewPBS(eng, topo, *cleanup)

	if *uncleanPrev {
		prev, err := pbs.Submit("previous-student", *nodes, time.Hour)
		if err != nil {
			fatal(err)
		}
		run, err := myhadoop.Provision(pbs, prev, myhadoop.ProvisionOptions{Seed: *seed})
		if err != nil {
			fatal(err)
		}
		run.ExitWithoutStopping()
		pbs.Release(prev)
		fmt.Println("[scenario] previous student exited without stop-all.sh; daemons orphaned")
	}

	res, err := pbs.Submit("student", *nodes, *walltime)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("[pbs] reservation granted: %d nodes, walltime %v\n", len(res.Allocated), *walltime)

	run, err := myhadoop.Provision(pbs, res, myhadoop.ProvisionOptions{
		HDFS: hdfs.Config{BlockSize: 256 << 10},
		Seed: *seed,
	})
	var ghost *myhadoop.GhostDaemonError
	if errors.As(err, &ghost) {
		fmt.Printf("[myhadoop] provisioning FAILED: %v\n", ghost)
		if !*waitCleanup {
			fmt.Println("[myhadoop] rerun with -wait-cleanup to wait for the scheduler's cleanup script")
			os.Exit(1)
		}
		fmt.Printf("[myhadoop] waiting %v for the cleanup script...\n", *cleanup)
		eng.Advance(*cleanup + time.Minute)
		run, err = myhadoop.Provision(pbs, res, myhadoop.ProvisionOptions{
			HDFS: hdfs.Config{BlockSize: 256 << 10},
			Seed: *seed,
		})
	}
	if err != nil {
		fatal(err)
	}
	fmt.Println("[myhadoop] Hadoop daemons started; HDFS healthy")

	client := run.DFS.Client(hdfs.GatewayNode)
	if _, _, err := datagen.Text(client, "/user/student/input/corpus.txt",
		datagen.TextOpts{Lines: 20000, Seed: *seed}); err != nil {
		fatal(err)
	}
	fmt.Println("[job] staged corpus into HDFS; running wordcount")
	rep, err := run.MR.Run(jobs.WordCount("/user/student/input", "/user/student/out", true))
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep)

	local := vfs.NewMemFS()
	n, err := vfs.CopyTree(client, "/user/student/out", local, "/home/student/out")
	if err != nil {
		fatal(err)
	}
	fmt.Printf("[job] copied %d bytes of results back to the home directory\n", n)

	run.StopDaemons()
	pbs.Release(res)
	fmt.Println("[myhadoop] stop-all.sh + myhadoop-cleanup.sh done; nodes released cleanly")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "myhadoop:", err)
	os.Exit(1)
}

// Command mrtrace reads exported trace files (the JSONL span logs the
// JobTracker writes beside each job's history under /history/<jobid>/
// in HDFS) and reprints a trace's causal structure without the cluster
// that recorded it: the span tree, the cross-layer critical path, and
// the blame table.
//
// Export the file first (hadoop fs -get /history/<jobid>/trace.jsonl),
// or point -file at any JSONL span export.
//
// Usage:
//
//	mrtrace -file trace.jsonl -list            list trace ids, slowest first
//	mrtrace -file trace.jsonl -trace <id>      one trace's span tree
//	mrtrace -file trace.jsonl -critical-path   critical path of the slowest trace
//	mrtrace -file trace.jsonl -blame           blame table of the slowest trace
//
// -trace combines with -critical-path/-blame to analyze a specific id.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

func main() {
	file := flag.String("file", "", "trace.jsonl export to read")
	traceID := flag.String("trace", "", "trace id to print (default: the slowest)")
	list := flag.Bool("list", false, "list trace ids, slowest first")
	critPath := flag.Bool("critical-path", false, "print the trace's critical path")
	blame := flag.Bool("blame", false, "print the trace's blame table")
	flag.Parse()

	if *file == "" {
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(*file)
	if err != nil {
		fatal(err)
	}
	spans, err := trace.Parse(data)
	if err != nil {
		fatal(err)
	}
	sums := trace.Slowest(trace.Summaries(spans), 0)
	if len(sums) == 0 {
		fmt.Println("no traced spans in", *file)
		return
	}

	if *list {
		for _, s := range sums {
			name := s.Root.Name
			if name == "" {
				name = "(root span not recorded)"
			}
			fmt.Printf("%-22s %-20s %10v  %3d span(s)\n",
				s.ID, name, s.Duration.Round(time.Microsecond), s.Spans)
		}
		return
	}

	id := obs.TraceID(*traceID)
	if id == "" {
		id = sums[0].ID // the slowest
	}
	var picked []obs.Span
	for _, s := range spans {
		if s.Trace == id {
			picked = append(picked, s)
		}
	}
	if len(picked) == 0 {
		fatal(fmt.Errorf("no trace %q in %s (try -list)", id, *file))
	}
	roots := trace.Build(picked)
	best := roots[0]
	for _, r := range roots {
		if r.Span.Duration() > best.Span.Duration() {
			best = r
		}
	}
	if !*critPath && !*blame {
		fmt.Printf("trace %s — %d span(s)\n", id, len(picked))
		for _, r := range roots {
			fmt.Print(trace.RenderTree(r))
		}
		return
	}
	steps := trace.CriticalPath(best)
	if *critPath {
		fmt.Print(trace.RenderCriticalPath(steps))
	}
	if *blame {
		fmt.Print(trace.RenderBlame(trace.BlameTable(steps)))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mrtrace:", err)
	os.Exit(1)
}

// Command kvbench drives the online-serving tier through one YCSB-style
// workload mix and prints the throughput/latency report — the
// command-line face of experiment E13. Everything runs on the virtual
// clock, so a "12,000-op benchmark against 4 region servers" finishes in
// well under a second of wall time and is reproducible from its seed.
//
// Usage:
//
//	kvbench [-mix a|b|c|e|f] [-records 4000] [-ops 12000] [-clients 32]
//	        [-servers 4] [-cache] [-shards 16] [-capacity 128]
//	        [-crash] [-seed 1234] [-json]
//
// Examples:
//
//	kvbench -mix c -cache          # read-only mix through the cache tier
//	kvbench -mix a -cache -crash   # kill the hottest server mid-run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/regionserver"
)

func main() {
	mix := flag.String("mix", "a", "YCSB core workload mix: a, b, c, e, or f")
	records := flag.Int("records", 4000, "rows loaded before the run")
	ops := flag.Int("ops", 12000, "operations to execute")
	clients := flag.Int("clients", 32, "closed-loop client count")
	servers := flag.Int("servers", 4, "region servers")
	cache := flag.Bool("cache", false, "route reads through the front-line cache tier")
	shards := flag.Int("shards", 16, "cache shards (with -cache)")
	capacity := flag.Int("capacity", 128, "entries per cache shard (with -cache)")
	crash := flag.Bool("crash", false, "kill the hottest region's server mid-run and measure recovery")
	seed := flag.Int64("seed", 1234, "deterministic seed")
	asJSON := flag.Bool("json", false, "emit the result as JSON instead of text")
	flag.Parse()

	br, err := regionserver.BenchRun(regionserver.BenchOpts{
		Mix:           *mix,
		Records:       *records,
		Ops:           *ops,
		Clients:       *clients,
		Servers:       *servers,
		Cache:         *cache,
		CacheShards:   *shards,
		CacheCapacity: *capacity,
		Crash:         *crash,
		Seed:          *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvbench:", err)
		os.Exit(1)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(br); err != nil {
			fmt.Fprintln(os.Stderr, "kvbench:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("workload %s: %d ops, %d clients, %d region servers, seed %d\n",
		br.Mix, br.Ops, *clients, *servers, *seed)
	fmt.Printf("  throughput  %.0f ops/sec (virtual time)\n", br.OpsPerSec)
	fmt.Printf("  latency     p50 %v   p99 %v   p999 %v\n", br.P50, br.P99, br.P999)
	fmt.Printf("  errors      %d\n", br.Errors)
	if br.Cache {
		fmt.Printf("  cache       hit rate %.0f%% (%d shards x %d entries)\n",
			100*br.CacheHitRate, *shards, *capacity)
	}
	fmt.Printf("  regions     %d final (%d splits)\n", br.RegionsFinal, br.Splits)
	if *crash {
		fmt.Printf("  recovery    %d regions reassigned after WAL replay in %.2fs\n",
			br.Reassigns, br.RecoverySeconds)
		fmt.Printf("  durability  %d acked writes verified, %d lost\n",
			br.VerifiedWrites, br.LostAckedWrites)
	}
}

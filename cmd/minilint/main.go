// Command minilint runs the repo's determinism and hygiene lint suite
// (internal/lint) over package patterns and exits nonzero on findings.
//
// Usage:
//
//	minilint [-list] [-fast] [-trace] [pattern ...]
//
// Patterns are directories, with "dir/..." walking recursively (testdata
// and vendor trees are skipped, like the go tool). With no patterns it
// checks ./internal/... and ./cmd/... — the CI gate:
//
//	go run ./cmd/minilint ./internal/... ./cmd/...
//
// -fast runs only the per-package analyzers, skipping the whole-program
// call graph the interprocedural rules (dettaint, lockorder, commiterr)
// need — the inner-dev-loop mode behind make lint-fast. -trace prints
// each interprocedural finding's call chain, one frame per indented
// line, under the diagnostic.
//
// Findings print as "file:line: [rule] message". A finding is either a
// bug to fix or, rarely, an intentional exception to suppress with
// "//lint:ignore RULE reason" on or directly above the flagged line;
// stale suppressions are themselves reported as unused-ignore.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("minilint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	fast := fs.Bool("fast", false, "run only the per-package analyzers (skip the call-graph rules)")
	trace := fs.Bool("trace", false, "print the call chain under each interprocedural finding")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./internal/...", "./cmd/..."}
	}
	dirs, err := lint.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "minilint:", err)
		return 2
	}
	modRoot, err := lint.FindModRoot(".")
	if err != nil {
		fmt.Fprintln(stderr, "minilint:", err)
		return 2
	}
	loader, err := lint.NewLoader(modRoot)
	if err != nil {
		fmt.Fprintln(stderr, "minilint:", err)
		return 2
	}
	var pkgs []*lint.Package
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintln(stderr, "minilint:", err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}
	analyzers := lint.Analyzers()
	if *fast {
		analyzers = lint.FastAnalyzers()
	}
	diags := lint.Run(pkgs, analyzers)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		name := d.Pos.Filename
		if rel, err := filepath.Rel(cwd, name); err == nil && len(rel) < len(name) {
			name = rel
		}
		fmt.Fprintf(stdout, "%s:%d: [%s] %s\n", name, d.Pos.Line, d.Rule, d.Message)
		if *trace && len(d.Trace) > 0 {
			for i, frame := range d.Trace {
				fmt.Fprintf(stdout, "\t%s%s\n", strings.Repeat("  ", i), frame)
			}
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "minilint: %d findings in %d packages\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

const (
	cleanDir = "../../internal/lint/testdata/clean"
	dirtyDir = "../../internal/lint/testdata/dirty"
)

// TestSelfCheckClean: the driver run against the clean fixture package
// prints nothing and exits 0 — the shape of a passing `make lint`.
func TestSelfCheckClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{cleanDir}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("want empty stdout, got:\n%s", stdout.String())
	}
}

// TestSelfCheckDirty pins the driver's findings for the dirty fixture:
// exit 1 and exactly this diagnostic list (file:line and rule; messages
// are free to evolve). The list doubles as a read-out of what the suite
// currently catches — update it deliberately when adding cases.
func TestSelfCheckDirty(t *testing.T) {
	want := []string{
		"commiterr.go:15 commiterr",
		"commiterr.go:16 commiterr",
		"commiterr.go:17 commiterr",
		"commiterr.go:18 commiterr",
		"dettaint.go:13 wallclock",
		"dettaint.go:17 dettaint",
		"dettaint.go:21 dettaint",
		"dettaint.go:25 globalrand",
		"dettaint.go:29 dettaint",
		"dettaint.go:38 dettaint",
		"dettaint.go:44 dettaint",
		"dettaint.go:53 wallclock",
		"dettaint.go:57 dettaint",
		"dettaint.go:61 globalrand",
		"dettaint.go:65 dettaint",
		"globalrand.go:10 globalrand",
		"globalrand.go:11 globalrand",
		"globalrand.go:12 globalrand",
		"globalrand.go:13 globalrand",
		"globalrand.go:18 globalrand",
		"ignore.go:18 wallclock",
		"ignore.go:22 unused-ignore",
		"ignore.go:23 wallclock",
		"ignore.go:26 unused-ignore",
		"libhygiene.go:13 libhygiene",
		"libhygiene.go:14 libhygiene",
		"libhygiene.go:15 libhygiene",
		"libhygiene.go:16 libhygiene",
		"lockguard.go:27 lockguard",
		"lockguard.go:35 lockguard",
		"lockguard.go:66 lockguard",
		"lockorder.go:16 lockorder",
		"lockorder.go:48 lockorder",
		"lockorder.go:60 lockorder",
		"maporder.go:11 maporder",
		"maporder.go:43 maporder",
		"maporder.go:49 maporder",
		"maporder.go:55 maporder",
		"maporder.go:71 maporder",
		"wallclock.go:10 wallclock",
		"wallclock.go:11 wallclock",
		"wallclock.go:12 wallclock",
		"wallclock.go:13 wallclock",
		"wallclock.go:15 wallclock",
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{dirtyDir}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	var got []string
	for _, line := range strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n") {
		// "path/file.go:NN: [rule] message" -> "file.go:NN rule"
		loc, rest, ok := strings.Cut(line, ": [")
		if !ok {
			t.Fatalf("unparseable output line %q", line)
		}
		rule, _, ok := strings.Cut(rest, "]")
		if !ok {
			t.Fatalf("unparseable output line %q", line)
		}
		got = append(got, filepath.Base(loc)+" "+rule)
	}
	if len(got) != len(want) {
		t.Errorf("got %d findings, want %d", len(got), len(want))
	}
	for i := 0; i < len(got) || i < len(want); i++ {
		w, g := "", ""
		if i < len(want) {
			w = want[i]
		}
		if i < len(got) {
			g = got[i]
		}
		if w != g {
			t.Errorf("finding %d: got %q, want %q", i, g, w)
		}
	}
}

// TestListAnalyzers: -list names every rule, one per line.
func TestListAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, rule := range []string{"wallclock", "globalrand", "maporder", "libhygiene", "lockguard",
		"dettaint", "lockorder", "commiterr"} {
		if !strings.Contains(stdout.String(), rule) {
			t.Errorf("-list output missing %s:\n%s", rule, stdout.String())
		}
	}
}

// TestFastSkipsInterprocedural: -fast runs only the per-package rules,
// so the dirty fixture's call-graph findings disappear while the
// per-package ones remain.
func TestFastSkipsInterprocedural(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-fast", dirtyDir}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, rule := range []string{"[dettaint]", "[lockorder]", "[commiterr]"} {
		if strings.Contains(out, rule) {
			t.Errorf("-fast output contains %s finding:\n%s", rule, out)
		}
	}
	if !strings.Contains(out, "[wallclock]") {
		t.Errorf("-fast output lost the per-package wallclock findings:\n%s", out)
	}
	// The interprocedural fixtures' suppressions-free lines must not leak
	// unused-ignore noise either: the only ignores live in ignore.go.
	if got := strings.Count(out, "[unused-ignore]"); got != 2 {
		t.Errorf("-fast output has %d unused-ignore findings, want 2:\n%s", got, out)
	}
}

// TestTraceOutput: -trace prints the call chain, one indented frame per
// line, under an interprocedural finding.
func TestTraceOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-trace", dirtyDir}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, frame := range []string{"\tdirty.viaTwoHops\n", "\t  dirty.viaHelper\n", "\t    dirty.readClock\n", "\t      time.Now\n"} {
		if !strings.Contains(out, frame) {
			t.Errorf("-trace output missing frame %q:\n%s", frame, out)
		}
	}
}

// BenchmarkLintRepo times the full suite (call graph included) over the
// whole repository — the make-ci path. Budget: well under ten seconds
// per run, so the gate stays cheap enough to run on every change.
func BenchmarkLintRepo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"../../internal/...", "../../cmd/..."}, &stdout, &stderr); code != 0 {
			b.Fatalf("exit %d\n%s\n%s", code, stdout.String(), stderr.String())
		}
	}
}

// Command mrhistory reads persisted job-history files (the JSONL event
// logs the JobTracker writes under /history/<jobid>/ in HDFS) and
// reprints a job's lifecycle the way `hadoop job -history` did —
// without needing the cluster that ran it.
//
// Export the file first (hadoop fs -get /history/<jobid>/events.jsonl),
// or point -dir at a directory tree laid out like /history.
//
// Usage:
//
//	mrhistory -file events.jsonl            job summary + attempt table
//	mrhistory -file events.jsonl -analyze   critical path, slowest attempts,
//	                                        shuffle + per-node attribution
//	mrhistory -dir ./hist -list             list job ids under ./hist
//	mrhistory -dir ./hist -job job_x_0001 -analyze
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/history"
)

func main() {
	file := flag.String("file", "", "history events.jsonl file to read")
	dir := flag.String("dir", ".", "history directory tree (<jobid>/events.jsonl)")
	jobID := flag.String("job", "", "job id to read from -dir")
	list := flag.Bool("list", false, "list job ids under -dir")
	analyze := flag.Bool("analyze", false, "print critical-path analysis instead of the summary")
	flag.Parse()

	if *list {
		entries, err := os.ReadDir(*dir)
		if err != nil {
			fatal(err)
		}
		var ids []string
		for _, e := range entries {
			if _, statErr := os.Stat(filepath.Join(*dir, e.Name(), "events.jsonl")); statErr == nil {
				ids = append(ids, e.Name())
			}
		}
		sort.Strings(ids)
		if len(ids) == 0 {
			fmt.Println("no job histories found")
			return
		}
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	path := *file
	if path == "" {
		if *jobID == "" {
			flag.Usage()
			os.Exit(2)
		}
		path = filepath.Join(*dir, *jobID, "events.jsonl")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	events, err := history.Parse(data)
	if err != nil {
		fatal(err)
	}
	rep, err := history.BuildJobReport(events)
	if err != nil {
		fatal(err)
	}
	if *analyze {
		fmt.Print(rep.AnalysisString())
	} else {
		fmt.Print(rep.SummaryString())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mrhistory:", err)
	os.Exit(1)
}

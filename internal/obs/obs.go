// Package obs is the unified observability layer of the minihadoop
// stack: a deterministic metrics registry (counters, gauges, sim-time
// histograms) and a span tracer keyed on the virtual clock. Every
// subsystem — NameNode, DataNodes, HDFS clients, JobTracker,
// TaskTrackers, the serial runner — emits through one Registry, so a
// whole run condenses into a single Snapshot.
//
// Because the simulation is deterministic, a snapshot is a replayable
// artifact: the same seed produces a byte-identical WriteJSON export,
// which is what makes golden-trace testing possible (see
// internal/jobs/golden_trace_test.go).
//
// Hot paths allocate nothing: call sites intern *Counter / *Gauge /
// *Histogram handles once at construction and then Add/Set/Observe on
// plain atomics (histograms take a short mutex). The registry is safe
// for concurrent use — the serial runner's parallel map tasks hit it
// from real goroutines.
package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically accumulating int64 metric.
type Counter struct {
	v atomic.Int64
}

// Add adds delta to the counter.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins int64 metric.
type Gauge struct {
	v atomic.Int64
}

// Set overwrites the gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of exponential histogram buckets: bucket i
// holds observations with d <= 1µs<<i; the final bucket is +Inf.
const histBuckets = 33

// histBound returns the inclusive upper bound of bucket i in
// nanoseconds, or -1 for the overflow bucket.
func histBound(i int) int64 {
	if i >= histBuckets-1 {
		return -1
	}
	return int64(time.Microsecond) << uint(i)
}

// Histogram accumulates virtual-time durations into exponential
// power-of-two buckets from 1µs to ~1.2h, plus an overflow bucket.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     time.Duration
	buckets [histBuckets]int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	i := 0
	for i < histBuckets-1 && int64(d) > histBound(i) {
		i++
	}
	h.mu.Lock()
	h.count++
	h.sum += d
	h.buckets[i]++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Span is one completed operation on the virtual clock. Start and End
// are instants on the sim engine's clock (durations since engine start).
// Trace/ID/Parent carry the causal identity of spans recorded through an
// obs.Ctx (see trace.go); spans recorded without a context leave all
// three zero and serialize exactly as they always did (omitempty).
type Span struct {
	Name   string            `json:"name"`
	Start  time.Duration     `json:"start_ns"`
	End    time.Duration     `json:"end_ns"`
	Trace  TraceID           `json:"trace,omitempty"`
	ID     SpanID            `json:"span,omitempty"`
	Parent SpanID            `json:"parent,omitempty"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// Duration returns the span's extent.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// Registry holds every metric and span of one cluster (or one
// standalone run). The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    []Span

	// byName indexes spans by name (positions into spans), so the webui
	// timeline's per-job lookups don't re-scan every span on every request.
	byName map[string][]int

	// Causal-tracing state (see trace.go): per-registry sequence counters
	// — never wall clock, never math/rand — so trace and span IDs replay
	// byte-identically, plus the head-sampling modulus.
	traceSeq    uint64
	spanSeq     uint64
	sampleEvery uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		byName:   map[string][]int{},
	}
}

// Counter interns and returns the named counter. Call once at
// construction and keep the handle; Add on the handle is the hot path.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge interns and returns the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram interns and returns the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Span records a completed span. Callers pass explicit virtual-clock
// instants — the natural fit for a discrete-event simulation, where the
// modelled end time of an operation is known when it is scheduled.
func (r *Registry) Span(name string, start, end time.Duration, attrs map[string]string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.record(Span{Name: name, Start: start, End: end, Attrs: attrs})
	r.mu.Unlock()
}

// record appends a span and maintains the by-name index. Callers hold r.mu.
func (r *Registry) record(s Span) {
	r.byName[s.Name] = append(r.byName[s.Name], len(r.spans))
	r.spans = append(r.spans, s)
}

// Spans returns a copy of all recorded spans in record order.
func (r *Registry) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// SpansNamed returns the recorded spans with the given name, in order.
// Served from the by-name index: cost is proportional to the matches,
// not to every span ever recorded (the webui timeline calls this per
// request on registries holding thousands of pipeline spans).
func (r *Registry) SpansNamed(name string) []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := r.byName[name]
	if len(idx) == 0 {
		return nil
	}
	out := make([]Span, len(idx))
	for i, j := range idx {
		out[i] = r.spans[j]
	}
	return out
}

// spansNamedScan is the pre-index implementation, kept as the benchmark
// baseline for BenchmarkSpansNamed.
func (r *Registry) spansNamedScan(name string) []Span {
	var out []Span
	for _, s := range r.Spans() {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// CounterValue returns the named counter's value (0 if never interned).
func (r *Registry) CounterValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.counters[name]
	r.mu.Unlock()
	return c.Value()
}

// GaugeValue returns the named gauge's value (0 if never interned).
func (r *Registry) GaugeValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	g := r.gauges[name]
	r.mu.Unlock()
	return g.Value()
}

// --- snapshot / export ---

// CounterSnap is one counter in a Snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnap is one gauge in a Snapshot.
type GaugeSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// BucketSnap is one non-empty histogram bucket: observations with
// duration <= Le nanoseconds (Le = -1 marks the overflow bucket).
type BucketSnap struct {
	Le    int64 `json:"le_ns"`
	Count int64 `json:"count"`
}

// HistSnap is one histogram in a Snapshot.
type HistSnap struct {
	Name    string       `json:"name"`
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum_ns"`
	Buckets []BucketSnap `json:"buckets,omitempty"`
}

// Snapshot is the full, deterministic state of a registry: metrics in
// sorted name order, spans in record order. Marshalling a Snapshot with
// encoding/json is byte-stable (attr maps render with sorted keys).
type Snapshot struct {
	Counters   []CounterSnap `json:"counters"`
	Gauges     []GaugeSnap   `json:"gauges"`
	Histograms []HistSnap    `json:"histograms"`
	Spans      []Span        `json:"spans"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{
		Counters:   make([]CounterSnap, 0, len(r.counters)),
		Gauges:     make([]GaugeSnap, 0, len(r.gauges)),
		Histograms: make([]HistSnap, 0, len(r.hists)),
		Spans:      append([]Span(nil), r.spans...),
	}
	for name, c := range r.counters {
		snap.Counters = append(snap.Counters, CounterSnap{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		snap.Gauges = append(snap.Gauges, GaugeSnap{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		h.mu.Lock()
		hs := HistSnap{Name: name, Count: h.count, Sum: int64(h.sum)}
		for i, n := range h.buckets {
			if n > 0 {
				hs.Buckets = append(hs.Buckets, BucketSnap{Le: histBound(i), Count: n})
			}
		}
		h.mu.Unlock()
		snap.Histograms = append(snap.Histograms, hs)
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	return snap
}

// MarshalJSON is not customised; Snapshot's field order plus sorted
// metric slices make the default encoding stable.

// WriteJSON writes the snapshot as indented JSON. The output is
// byte-identical across replays of the same seed.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := r.SnapshotJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// SnapshotJSON returns the indented JSON export of the snapshot, with a
// trailing newline.
func (r *Registry) SnapshotJSON() ([]byte, error) {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Causal tracing: deterministic trace/span identity over the existing
// span recorder, in the shape of Dapper/X-Trace scaled to the teaching
// cluster. A subsystem starts a trace at a causal root (job submission,
// serving request, re-replication decision), threads the returned Ctx
// down its call chain, and derives one child Ctx per logical operation.
// Recording stays where it always was — explicit virtual-clock instants
// — so a parent (the job) can record *after* its children (the attempts)
// and still sit above them in the tree: identity is allocated when the
// Ctx is created, not when the span is recorded.
//
// Determinism contract: trace IDs derive from the per-registry trace
// sequence counter plus the sim-clock instant the trace started; span
// IDs are the registry-wide span sequence. No wall clock, no math/rand
// (the dettaint lint fixtures pin the dirty versions of both), so the
// same seed replays byte-identical trace exports — the property the
// golden-trace tests in internal/jobs pin.
package obs

import (
	"fmt"
	"time"
)

// TraceID identifies one causal trace. The empty string is the invalid
// (unsampled) ID.
type TraceID string

// SpanID identifies one span within a registry; 0 means "none" (an
// untraced span, or a root's parent).
type SpanID uint64

// Ctx is the trace context threaded through a call chain: which trace
// the caller belongs to, the caller's own span identity, and its
// parent's. The zero Ctx is invalid and every operation on it is a
// no-op, so unsampled traces cost nothing downstream.
type Ctx struct {
	r      *Registry
	trace  TraceID
	span   SpanID
	parent SpanID
}

// Valid reports whether the context carries a sampled trace.
func (c Ctx) Valid() bool { return c.r != nil && c.trace != "" }

// Trace returns the context's trace ID ("" when invalid).
func (c Ctx) Trace() TraceID { return c.trace }

// Span returns the span ID allocated to this context (0 when invalid).
func (c Ctx) Span() SpanID { return c.span }

// SetTraceSampling sets head-based sampling: keep 1 trace in every n
// (the first of each window, deterministically). n <= 1 keeps all — the
// default, and what the teaching flows want; high-rate producers like
// the serving tier pass their own client-side stride on top.
func (r *Registry) SetTraceSampling(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if n <= 1 {
		r.sampleEvery = 0
	} else {
		r.sampleEvery = uint64(n)
	}
	r.mu.Unlock()
}

// NewTrace starts a trace at the given virtual-clock instant and returns
// its root context. The head-sampling decision happens here: an
// unsampled trace returns the invalid Ctx (every downstream NewChild /
// End is then a no-op). The trace ID embeds the registry's trace
// sequence number and the start instant — both replay-deterministic.
func (r *Registry) NewTrace(now time.Duration) Ctx {
	if r == nil {
		return Ctx{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.traceSeq++
	if r.sampleEvery > 1 && (r.traceSeq-1)%r.sampleEvery != 0 {
		return Ctx{}
	}
	r.spanSeq++
	return Ctx{
		r:     r,
		trace: TraceID(fmt.Sprintf("t%06d-%d", r.traceSeq, now.Nanoseconds())),
		span:  SpanID(r.spanSeq),
	}
}

// NewChild allocates a child context under c: same trace, fresh span ID,
// parented on c's span. Invalid in, invalid out.
func (c Ctx) NewChild() Ctx {
	if !c.Valid() {
		return Ctx{}
	}
	c.r.mu.Lock()
	c.r.spanSeq++
	child := Ctx{r: c.r, trace: c.trace, span: SpanID(c.r.spanSeq), parent: c.span}
	c.r.mu.Unlock()
	return child
}

// End records the span this context identifies. No-op when invalid —
// callers that must record regardless of sampling use Registry.SpanCtx.
func (c Ctx) End(name string, start, end time.Duration, attrs map[string]string) {
	if !c.Valid() {
		return
	}
	c.r.mu.Lock()
	c.r.record(Span{
		Name: name, Start: start, End: end,
		Trace: c.trace, ID: c.span, Parent: c.parent,
		Attrs: attrs,
	})
	c.r.mu.Unlock()
}

// SpanCtx records a span that must exist either way: with c's identity
// when c is a sampled context of this registry, as a plain orphan span
// otherwise. This is how the pre-tracing span sites (attempt spans,
// pipeline writes, splits) keep their flat /timeline behaviour while
// gaining causal identity whenever a context reaches them.
func (r *Registry) SpanCtx(c Ctx, name string, start, end time.Duration, attrs map[string]string) {
	if r == nil {
		return
	}
	if c.Valid() && c.r == r {
		c.End(name, start, end, attrs)
		return
	}
	r.Span(name, start, end, attrs)
}

// ChildSpan allocates a child of parent, records it over [start, end],
// and returns the child context for deeper nesting. When parent is
// invalid the span is recorded as a plain orphan (via SpanCtx semantics)
// and the returned context is invalid.
func (r *Registry) ChildSpan(parent Ctx, name string, start, end time.Duration, attrs map[string]string) Ctx {
	child := parent.NewChild()
	r.SpanCtx(child, name, start, end, attrs)
	return child
}

// SpansTraced returns every span of one trace, in record order.
func (r *Registry) SpansTraced(id TraceID) []Span {
	if r == nil || id == "" {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Span
	for _, s := range r.spans {
		if s.Trace == id {
			out = append(out, s)
		}
	}
	return out
}

package obs

import (
	"testing"
	"time"
)

// spanFixture fills a registry the way a real run does: a handful of job
// spans buried under thousands of pipeline/attempt spans — the shape the
// webui timeline queries against.
func spanFixture(total, jobs int) *Registry {
	r := NewRegistry()
	for i := 0; i < total; i++ {
		name := "hdfs.write_pipeline"
		switch {
		case i%(total/max(jobs, 1)) == 0:
			name = "mr.job"
		case i%3 == 1:
			name = "mr.map_attempt"
		case i%3 == 2:
			name = "mr.reduce_attempt"
		}
		r.Span(name, time.Duration(i), time.Duration(i+1), nil)
	}
	return r
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestSpansNamedIndexMatchesScan pins the index against the original
// linear scan on a mixed fixture.
func TestSpansNamedIndexMatchesScan(t *testing.T) {
	r := spanFixture(5000, 4)
	for _, name := range []string{"mr.job", "mr.map_attempt", "hdfs.write_pipeline", "absent"} {
		got, want := r.SpansNamed(name), r.spansNamedScan(name)
		if len(got) != len(want) {
			t.Fatalf("%s: index %d spans, scan %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i].Name != want[i].Name || got[i].Start != want[i].Start || got[i].End != want[i].End {
				t.Fatalf("%s[%d]: index %+v, scan %+v", name, i, got[i], want[i])
			}
		}
	}
}

// BenchmarkSpansNamed compares the by-name index with the full linear
// scan it replaced for the webui's hottest query: the few mr.job spans
// out of thousands recorded.
func BenchmarkSpansNamed(b *testing.B) {
	r := spanFixture(20000, 4)
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := r.SpansNamed("mr.job"); len(got) == 0 {
				b.Fatal("no job spans")
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := r.spansNamedScan("mr.job"); len(got) == 0 {
				b.Fatal("no job spans")
			}
		}
	})
}

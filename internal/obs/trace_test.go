package obs_test

import (
	"testing"
	"time"

	"repro/internal/obs"
)

func TestTraceIdentity(t *testing.T) {
	r := obs.NewRegistry()
	root := r.NewTrace(5 * time.Millisecond)
	if !root.Valid() {
		t.Fatal("root ctx invalid with sampling off")
	}
	child := root.NewChild()
	grand := child.NewChild()
	// Record out of order: leaf first, root last — identity was allocated
	// at Ctx creation, so the tree still hangs together.
	grand.End("leaf.op", 10, 20, nil)
	child.End("mid.op", 5, 25, map[string]string{"k": "v"})
	root.End("root.op", 0, 30, nil)

	spans := r.SpansTraced(root.Trace())
	if len(spans) != 3 {
		t.Fatalf("SpansTraced = %d spans, want 3", len(spans))
	}
	byName := map[string]obs.Span{}
	for _, s := range spans {
		if s.Trace != root.Trace() {
			t.Fatalf("span %s trace = %q, want %q", s.Name, s.Trace, root.Trace())
		}
		byName[s.Name] = s
	}
	if byName["root.op"].Parent != 0 {
		t.Fatalf("root parent = %d, want 0", byName["root.op"].Parent)
	}
	if byName["mid.op"].Parent != byName["root.op"].ID {
		t.Fatalf("mid parent = %d, want root %d", byName["mid.op"].Parent, byName["root.op"].ID)
	}
	if byName["leaf.op"].Parent != byName["mid.op"].ID {
		t.Fatalf("leaf parent = %d, want mid %d", byName["leaf.op"].Parent, byName["mid.op"].ID)
	}
}

func TestTraceInvalidCtxNoops(t *testing.T) {
	var zero obs.Ctx
	if zero.Valid() {
		t.Fatal("zero Ctx reports valid")
	}
	zero.End("nope", 0, 1, nil) // must not panic
	if c := zero.NewChild(); c.Valid() {
		t.Fatal("child of invalid ctx reports valid")
	}
	var nilReg *obs.Registry
	if c := nilReg.NewTrace(0); c.Valid() {
		t.Fatal("nil registry produced a valid ctx")
	}
	nilReg.SpanCtx(obs.Ctx{}, "nope", 0, 1, nil) // nil-safe
}

func TestTraceHeadSampling(t *testing.T) {
	r := obs.NewRegistry()
	r.SetTraceSampling(3)
	var kept int
	for i := 0; i < 9; i++ {
		ctx := r.NewTrace(time.Duration(i))
		if ctx.Valid() {
			kept++
			ctx.End("sampled.op", 0, 1, nil)
		}
	}
	if kept != 3 {
		t.Fatalf("kept %d of 9 traces at 1-in-3 sampling, want 3", kept)
	}
	if got := len(r.SpansNamed("sampled.op")); got != 3 {
		t.Fatalf("recorded %d sampled spans, want 3", got)
	}
}

func TestSpanCtxFallsBackToOrphan(t *testing.T) {
	r := obs.NewRegistry()
	r.SpanCtx(obs.Ctx{}, "flat.op", 1, 2, nil)
	spans := r.SpansNamed("flat.op")
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	if spans[0].Trace != "" || spans[0].ID != 0 || spans[0].Parent != 0 {
		t.Fatalf("orphan span carries identity: %+v", spans[0])
	}
	// ChildSpan under an invalid parent also degrades to an orphan.
	if c := r.ChildSpan(obs.Ctx{}, "flat.child", 2, 3, nil); c.Valid() {
		t.Fatal("ChildSpan of invalid parent returned valid ctx")
	}
	if got := len(r.SpansNamed("flat.child")); got != 1 {
		t.Fatalf("orphan child spans = %d, want 1", got)
	}
}

// TestTraceDeterministicIDs replays the same allocation sequence on two
// registries and expects byte-identical identity — the contract the
// golden trace exports rely on.
func TestTraceDeterministicIDs(t *testing.T) {
	build := func() []obs.Span {
		r := obs.NewRegistry()
		for i := 0; i < 4; i++ {
			root := r.NewTrace(time.Duration(i) * time.Second)
			c := root.NewChild()
			c.End("child.op", 0, 1, nil)
			root.End("root.op", 0, 2, nil)
		}
		return r.Spans()
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Trace != b[i].Trace || a[i].ID != b[i].ID || a[i].Parent != b[i].Parent {
			t.Fatalf("replay diverged at span %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

package obs_test

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("x.count")
	c.Add(2)
	c.Inc()
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if r.Counter("x.count") != c {
		t.Fatal("counter not interned")
	}
	g := r.Gauge("x.gauge")
	g.Set(7)
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Fatalf("gauge = %d, want -1", got)
	}
	h := r.Histogram("x.hist")
	h.Observe(time.Millisecond)
	h.Observe(3 * time.Millisecond)
	if h.Count() != 2 || h.Sum() != 4*time.Millisecond {
		t.Fatalf("hist count=%d sum=%v", h.Count(), h.Sum())
	}
	if r.CounterValue("x.count") != 3 || r.GaugeValue("x.gauge") != -1 {
		t.Fatal("value lookup by name failed")
	}
	if r.CounterValue("never.seen") != 0 {
		t.Fatal("unknown counter should read 0")
	}
}

func TestNilHandlesAreSafe(t *testing.T) {
	var r *obs.Registry
	r.Counter("a").Add(1)
	r.Gauge("b").Set(1)
	r.Histogram("c").Observe(time.Second)
	r.Span("d", 0, 1, nil)
	if r.CounterValue("a") != 0 || len(r.Spans()) != 0 {
		t.Fatal("nil registry must be inert")
	}
	if got := r.Snapshot(); len(got.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestSpansKeepRecordOrder(t *testing.T) {
	r := obs.NewRegistry()
	r.Span("b", 10, 20, map[string]string{"k": "1"})
	r.Span("a", 5, 15, nil)
	r.Span("b", 30, 40, nil)
	spans := r.Spans()
	if len(spans) != 3 || spans[0].Name != "b" || spans[1].Name != "a" {
		t.Fatalf("spans out of record order: %+v", spans)
	}
	if got := r.SpansNamed("b"); len(got) != 2 || got[1].Start != 30 {
		t.Fatalf("SpansNamed(b) = %+v", got)
	}
	if d := spans[0].Duration(); d != 10 {
		t.Fatalf("duration = %v", d)
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("h")
	h.Observe(0)                    // first bucket (<= 1µs)
	h.Observe(time.Microsecond)     // still first bucket (inclusive bound)
	h.Observe(3 * time.Microsecond) // third bucket (<= 4µs)
	h.Observe(100 * time.Hour)      // overflow
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %+v", snap.Histograms)
	}
	hs := snap.Histograms[0]
	if hs.Count != 4 {
		t.Fatalf("count = %d", hs.Count)
	}
	var first, overflow int64
	for _, b := range hs.Buckets {
		switch b.Le {
		case int64(time.Microsecond):
			first = b.Count
		case -1:
			overflow = b.Count
		}
	}
	if first != 2 || overflow != 1 {
		t.Fatalf("buckets = %+v (first=%d overflow=%d)", hs.Buckets, first, overflow)
	}
}

// TestSnapshotJSONDeterministic builds the same registry twice through
// different interleavings and expects byte-identical exports — the
// property the golden-trace harness rests on.
func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func(reverse bool) []byte {
		r := obs.NewRegistry()
		names := []string{"z.last", "a.first", "m.mid"}
		if reverse {
			names = []string{"m.mid", "a.first", "z.last"}
		}
		for _, n := range names {
			r.Counter(n).Add(int64(len(n)))
			r.Gauge("g." + n).Set(42)
			r.Histogram("h." + n).Observe(time.Duration(len(n)) * time.Millisecond)
		}
		r.Span("op", 100, 200, map[string]string{"zz": "2", "aa": "1"})
		data, err := r.SnapshotJSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if !bytes.Equal(build(false), build(true)) {
		t.Fatal("snapshot JSON depends on interning order")
	}
}

// TestConcurrentUse hammers one registry from many goroutines; run
// under -race (make check / make race) this proves the hot paths are
// race-clean, which the serial runner's parallel mappers require.
func TestConcurrentUse(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("par.count")
	h := r.Histogram("par.hist")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(1)
				h.Observe(time.Duration(j) * time.Microsecond)
				r.Counter("par.shared").Inc()
				if j%100 == 0 {
					r.Span("par.op", time.Duration(i), time.Duration(j), nil)
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8000 || r.CounterValue("par.shared") != 8000 {
		t.Fatalf("lost updates: %d / %d", c.Value(), r.CounterValue("par.shared"))
	}
	if h.Count() != 8000 {
		t.Fatalf("hist count = %d", h.Count())
	}
	if got := len(r.SpansNamed("par.op")); got != 80 {
		t.Fatalf("spans = %d", got)
	}
}

package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// loadFixture loads one testdata package through the real loader.
func loadFixture(t *testing.T, dir string) *Package {
	t.Helper()
	modRoot, err := FindModRoot(".")
	if err != nil {
		t.Fatalf("finding module root: %v", err)
	}
	loader, err := NewLoader(modRoot)
	if err != nil {
		t.Fatalf("creating loader: %v", err)
	}
	pkg, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	return pkg
}

// wantRules parses the "want: rule [rule...]" annotations of a fixture
// package into base-filename:line -> sorted expected rules.
func wantRules(pkg *Package) map[string][]string {
	wants := map[string][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				_, rest, ok := strings.Cut(c.Text, "want:")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, field := range strings.Fields(rest) {
					rule := strings.TrimFunc(field, func(r rune) bool {
						return !(r == '-' || (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9'))
					})
					if rule != "" {
						wants[key] = append(wants[key], rule)
					}
				}
			}
		}
	}
	for k := range wants {
		sort.Strings(wants[k])
	}
	return wants
}

// byLine groups diagnostics as base-filename:line -> sorted rules.
func byLine(diags []Diagnostic) map[string][]string {
	got := map[string][]string{}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		got[key] = append(got[key], d.Rule)
	}
	for k := range got {
		sort.Strings(got[k])
	}
	return got
}

func diffWantGot(t *testing.T, want, got map[string][]string) {
	t.Helper()
	keys := map[string]bool{}
	for k := range want {
		keys[k] = true
	}
	for k := range got {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		if !reflect.DeepEqual(want[k], got[k]) {
			t.Errorf("%s: want %v, got %v", k, want[k], got[k])
		}
	}
}

// TestAnalyzersAgainstFixtures table-tests each analyzer in isolation:
// it must produce exactly the dirty-fixture findings annotated with its
// rule (positive cases) and nothing else (negative cases live on the
// unannotated lines of the same files).
func TestAnalyzersAgainstFixtures(t *testing.T) {
	pkg := loadFixture(t, filepath.Join("testdata", "dirty"))
	allWants := wantRules(pkg)
	for _, a := range Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			diags := Run([]*Package{pkg}, []*Analyzer{a})
			var mine []Diagnostic
			for _, d := range diags {
				// Stale-suppression findings are exercised separately in
				// TestIgnoreDirectives; a single-analyzer run leaves every
				// other rule's directives trivially unused.
				if d.Rule == a.Name {
					mine = append(mine, d)
				}
			}
			want := map[string][]string{}
			for key, rules := range allWants {
				for _, r := range rules {
					if r == a.Name {
						want[key] = append(want[key], r)
					}
				}
			}
			diffWantGot(t, want, byLine(mine))
		})
	}
}

// TestFullSuiteDirty runs the whole suite, including suppression
// handling and unused-ignore reporting, and compares against every
// annotation in the dirty fixture.
func TestFullSuiteDirty(t *testing.T) {
	pkg := loadFixture(t, filepath.Join("testdata", "dirty"))
	diags := Run([]*Package{pkg}, Analyzers())
	diffWantGot(t, wantRules(pkg), byLine(diags))
}

// TestCleanFixture: deterministic, hygienic code produces zero findings.
func TestCleanFixture(t *testing.T) {
	pkg := loadFixture(t, filepath.Join("testdata", "clean"))
	if diags := Run([]*Package{pkg}, Analyzers()); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("unexpected: %s", d)
		}
	}
}

// TestIgnoreDirectives pins the suppression semantics: a matching
// directive silences exactly the one diagnostic on its target line
// (preceding-line and trailing forms), identical violations elsewhere
// still fire, and a directive matching nothing is reported as
// unused-ignore at its own line.
func TestIgnoreDirectives(t *testing.T) {
	pkg := loadFixture(t, filepath.Join("testdata", "dirty"))
	diags := Run([]*Package{pkg}, Analyzers())
	var wallclockLines, unusedLines []int
	for _, d := range diags {
		if filepath.Base(d.Pos.Filename) != "ignore.go" {
			continue
		}
		switch d.Rule {
		case "wallclock":
			wallclockLines = append(wallclockLines, d.Pos.Line)
		case RuleUnusedIgnore:
			unusedLines = append(unusedLines, d.Pos.Line)
		default:
			t.Errorf("unexpected rule %s at ignore.go:%d", d.Rule, d.Pos.Line)
		}
	}
	// ignore.go holds four time.Now calls; the two suppressed ones must
	// not appear, the other two must.
	if len(wallclockLines) != 2 {
		t.Errorf("want exactly 2 unsuppressed wallclock findings in ignore.go, got %d at lines %v",
			len(wallclockLines), wallclockLines)
	}
	// Two directives match nothing: the wrong-rule one and the stale one.
	if len(unusedLines) != 2 {
		t.Errorf("want exactly 2 unused-ignore findings in ignore.go, got %d at lines %v",
			len(unusedLines), unusedLines)
	}
}

// TestMalformedIgnore: a directive missing its rule or reason is
// reported rather than silently dropped (or worse, silently honored).
func TestMalformedIgnore(t *testing.T) {
	src := `package p

func f() {
	//lint:ignore wallclock
	_ = 1
	//lint:ignore
	_ = 2
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "malformed.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Dir: ".", ImportPath: "p", Fset: fset, Files: []*ast.File{f}}
	diags := Run([]*Package{pkg}, nil)
	if len(diags) != 2 {
		t.Fatalf("want 2 malformed-directive findings, got %d: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Rule != RuleUnusedIgnore || !strings.Contains(d.Message, "malformed") {
			t.Errorf("want malformed %s finding, got %s", RuleUnusedIgnore, d)
		}
	}
}

// TestDiagnosticFormat pins the "file:line: [rule] message" rendering
// the Makefile gate and editors rely on.
func TestDiagnosticFormat(t *testing.T) {
	d := Diagnostic{
		Pos:     token.Position{Filename: "internal/serial/serial.go", Line: 61},
		Rule:    "wallclock",
		Message: "time.Now reads the wall clock",
	}
	want := "internal/serial/serial.go:61: [wallclock] time.Now reads the wall clock"
	if d.String() != want {
		t.Errorf("got %q, want %q", d.String(), want)
	}
}

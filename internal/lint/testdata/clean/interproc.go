// Interprocedural negatives: the shapes dettaint, lockorder and
// commiterr must accept — deterministic helpers, a consistent lock
// order, and commit errors that are always observed.
package clean

import (
	"sync"

	"repro/internal/vfs"
)

// firstKey picks deterministically: sorted keys, then the first. No
// map-order taint for callers to inherit.
func firstKey(m map[string]int) string {
	keys := sortedKeys(m)
	if len(keys) == 0 {
		return ""
	}
	return keys[0]
}

func chooseEntry(m map[string]int) string {
	return firstKey(m)
}

// front → back is the one lock order every path takes: the lock graph
// is acyclic, so no ABBA edge exists.
type front struct {
	mu   sync.Mutex
	back *back
}

type back struct {
	mu sync.Mutex
	n  int
}

func (f *front) poke() {
	f.mu.Lock()
	f.back.bump()
	f.mu.Unlock()
}

func (f *front) drain() {
	f.mu.Lock()
	f.back.bump()
	f.mu.Unlock()
}

func (b *back) bump() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

// persist returns the sink's error; checkAndPersist observes it. Every
// commit on this path is accounted for.
func persist(fs vfs.FileSystem, data []byte) error {
	return vfs.WriteFile(fs, "/state", data)
}

func checkAndPersist(fs vfs.FileSystem, data []byte) error {
	if err := persist(fs, data); err != nil {
		return err
	}
	return nil
}

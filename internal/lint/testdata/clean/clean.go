// Package clean is a lint fixture the suite must pass with zero
// findings: deterministic, hygienic code written the way the repo's
// sim-facing packages are supposed to be written.
package clean

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// Durations and virtual instants are plain time.Duration values; no
// wall-clock reads anywhere.
const heartbeat = 3 * time.Second

// seededDraw takes an explicit seed, the only sanctioned source of
// randomness outside internal/sim.
func seededDraw(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(100)
}

// sortedKeys is the canonical deterministic map walk: collect, sort,
// then iterate.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// render emits map entries in key order, returning the string rather
// than printing it.
func render(m map[string]int) string {
	var b strings.Builder
	for _, k := range sortedKeys(m) {
		fmt.Fprintf(&b, "%s=%d\n", k, m[k])
	}
	return b.String()
}

// tally only does commutative work in its map range.
func tally(m map[string]int) (total int) {
	for _, v := range m {
		total += v
	}
	return total
}

type store struct {
	mu sync.Mutex
	v  map[string]int
}

func (s *store) Get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.v[k]
}

func (s *store) Put(k string, n int) {
	s.mu.Lock()
	s.v[k] = n
	s.mu.Unlock()
}

// failable returns its error instead of printing or exiting.
func failable(ok bool) error {
	if !ok {
		return fmt.Errorf("clean: condition not met")
	}
	return nil
}

type eventLog struct{ lines []string }

func (l *eventLog) Append(line string) { l.lines = append(l.lines, line) }

// audit emits one event per map entry in key order: the canonical shape
// for event-log writes driven by a map.
func audit(l *eventLog, m map[string]int) {
	for _, k := range sortedKeys(m) {
		l.Append(k)
	}
}

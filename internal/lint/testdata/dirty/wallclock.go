// Package dirty is a lint fixture: every construct the suite must flag,
// with each flagged line annotated by an expected-diagnostic comment
// naming the rule. The lint tests compare the suite's output against
// these annotations in both directions.
package dirty

import "time"

func wallNow() time.Duration {
	start := time.Now()          // want: wallclock
	time.Sleep(time.Millisecond) // want: wallclock
	<-time.After(time.Second)    // want: wallclock
	t := time.NewTimer(0)        // want: wallclock
	t.Stop()
	return time.Since(start) // want: wallclock
}

func durationsAllowed() time.Duration {
	// Duration arithmetic and constants never touch the wall clock; the
	// sim engine's instants are durations themselves.
	d := 3 * time.Second
	return d.Round(time.Millisecond)
}

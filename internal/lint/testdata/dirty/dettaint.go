package dirty

import (
	"math/rand"
	"time"
)

// Direct wall-clock and global-rand calls are the per-package rules'
// findings; dettaint stays silent at depth 1 and picks up every caller
// from depth 2 on, naming the chain.

func readClock() time.Time {
	return time.Now() // want: wallclock
}

func viaHelper() time.Time {
	return readClock() // want: dettaint
}

func viaTwoHops() int64 {
	return viaHelper().UnixNano() // want: dettaint
}

func drawGlobal() int {
	return rand.Intn(6) // want: globalrand
}

func viaDraw() int {
	return drawGlobal() + 1 // want: dettaint
}

// anyKey returns from inside a range over a map: the returned element is
// chosen by Go's randomized iteration order. The helper itself is the
// taint source (no per-package rule covers this shape), and callers are
// flagged at their call sites.
func anyKey(m map[string]int) string {
	for k := range m {
		return k // want: dettaint
	}
	return ""
}

func pickVictim(m map[string]int) string {
	return anyKey(m) // want: dettaint
}

// Trace identity must derive from the sim clock and registry sequence
// counters (internal/obs mints TraceID/SpanID that way): IDs minted from
// the wall clock or the process-global rand differ on every replay and
// break the byte-stable trace-export goldens.

func wallClockTraceID() int64 {
	return time.Now().UnixNano() // want: wallclock
}

func traceIDFromClock() int64 {
	return wallClockTraceID() // want: dettaint
}

func randSpanID() int64 {
	return rand.Int63() // want: globalrand
}

func spanIDFromRand() int64 {
	return randSpanID() | 1 // want: dettaint
}

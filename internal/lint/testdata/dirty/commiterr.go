package dirty

import (
	"repro/internal/vfs"
)

// saveMeta is commit-critical by propagation: it returns the error of a
// durability sink (vfs.WriteFile). Dropping its error anywhere is a
// lost acked write.
func saveMeta(fs vfs.FileSystem, data []byte) error {
	return vfs.WriteFile(fs, "/meta", data)
}

func commitDropped(fs vfs.FileSystem, data []byte) {
	vfs.WriteFile(fs, "/wal", data) // want: commiterr
	_ = saveMeta(fs, data)          // want: commiterr
	defer saveMeta(fs, data)        // want: commiterr
	go saveMeta(fs, data)           // want: commiterr
}

// cleanupOnError drops a secondary commit error inside a branch guarded
// by err != nil: the cleanup-after-failure idiom, which is exempt — the
// original error is already on its way to the caller.
func cleanupOnError(fs vfs.FileSystem, data []byte) error {
	if err := saveMeta(fs, data); err != nil {
		_ = vfs.WriteFile(fs, "/meta.bak", data)
		return err
	}
	return nil
}

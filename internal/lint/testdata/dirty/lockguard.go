package dirty

import (
	"errors"
	"sync"
)

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) bumpAllowed() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) doubleLock() int {
	c.mu.Lock()
	v := c.get() // want: lockguard
	c.mu.Unlock()
	return v
}

func (c *counter) leakyReturn(fail bool) error {
	c.mu.Lock()
	if fail {
		return errors.New("left holding the lock") // want: lockguard
	}
	c.mu.Unlock()
	return nil
}

func (c *counter) deferWrapperAllowed() int {
	c.mu.Lock()
	defer func() { c.mu.Unlock() }()
	return c.n
}

type shared struct {
	sync.RWMutex
	m map[string]int
}

func (s *shared) lookup(k string) int {
	s.RLock()
	defer s.RUnlock()
	return s.m[k]
}

func (s *shared) set(k string, v int) {
	s.Lock()
	defer s.Unlock()
	s.m[k] = v
}

func (s *shared) writeThenRead(k string) int {
	s.Lock()
	v := s.lookup(k) // want: lockguard
	s.Unlock()
	return v
}

func (s *shared) readChainAllowed(k string) int {
	s.RLock()
	v := s.lookup(k) // RLock while RLocked: shared locks nest
	s.RUnlock()
	return v
}

package dirty

import "time"

// suppressedPreceding shows a directive on the line above the finding:
// the wallclock diagnostic for its time.Now is silenced, and exactly
// that one — notSuppressed below still fires.
func suppressedPreceding() time.Time {
	//lint:ignore wallclock fixture: demonstrates a justified suppression
	return time.Now()
}

func suppressedTrailing() time.Time {
	return time.Now() //lint:ignore wallclock fixture: trailing directive on the flagged line
}

func notSuppressed() time.Time {
	return time.Now() // want: wallclock
}

func wrongRule() time.Time {
	//lint:ignore maporder this names the wrong rule, so both fire (want: unused-ignore)
	return time.Now() // want: wallclock
}

//lint:ignore wallclock stale: nothing on the next line reads the clock (want: unused-ignore)
func staleDirective() {}

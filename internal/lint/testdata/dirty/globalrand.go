package dirty

import (
	"math/rand"

	mrand "math/rand"
)

func globalDraws() int {
	x := rand.Intn(10)  // want: globalrand
	f := rand.Float64() // want: globalrand
	rand.Shuffle(3, func(i, j int) {}) // want: globalrand
	y := mrand.Int63() // want: globalrand
	return x + int(f) + int(y)
}

func opaqueSource(src rand.Source) *rand.Rand {
	return rand.New(src) // want: globalrand
}

func seededAllowed(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(100)
}

package dirty

import "sync"

// Deep self-deadlock: outer holds mu and calls middle, which calls
// inner, which re-acquires mu — two calls down, past lockguard's
// single-method horizon.

type deepLocker struct {
	mu sync.Mutex
	n  int
}

func (d *deepLocker) outer() {
	d.mu.Lock()
	d.middle() // want: lockorder
	d.mu.Unlock()
}

func (d *deepLocker) middle() {
	d.inner()
}

func (d *deepLocker) inner() {
	d.mu.Lock()
	d.n++
	d.mu.Unlock()
}

// ABBA: nodeA.poke acquires nodeB.mu while holding nodeA.mu; nodeB.poke
// takes the opposite order. Each edge of the cycle is flagged at its
// witness call site.

type nodeA struct {
	mu   sync.Mutex
	n    int
	peer *nodeB
}

type nodeB struct {
	mu   sync.Mutex
	n    int
	peer *nodeA
}

func (a *nodeA) poke() {
	a.mu.Lock()
	a.peer.touch() // want: lockorder
	a.mu.Unlock()
}

func (a *nodeA) touch() {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
}

func (b *nodeB) poke() {
	b.mu.Lock()
	b.peer.touch() // want: lockorder
	b.mu.Unlock()
}

func (b *nodeB) touch() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

// Read-read chains on one RWMutex nest safely and must stay silent,
// matching lockguard's exemption.

type rwPair struct {
	mu sync.RWMutex
	v  int
}

func (p *rwPair) readOuter() int {
	p.mu.RLock()
	v := p.readMiddle()
	p.mu.RUnlock()
	return v
}

func (p *rwPair) readMiddle() int {
	return p.readInner()
}

func (p *rwPair) readInner() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.v
}

package dirty

import (
	"fmt"
	"io"
	"sort"
)

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want: maporder
		keys = append(keys, k)
	}
	return keys
}

func collectThenSortAllowed(m map[string]int) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func sumAllowed(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func deleteAllowed(m map[string]int) {
	for k := range m {
		if m[k] == 0 {
			delete(m, k)
		}
	}
}

func dump(w io.Writer, m map[string]int) {
	for k, v := range m { // want: maporder
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func spawnWork(m map[string]int, ch chan int) {
	for _, v := range m { // want: maporder
		ch <- v
	}
}

func spawnGoroutines(m map[string]int) {
	for _, v := range m { // want: maporder
		go func(n int) { _ = n }(v)
	}
}

func sliceRangeAllowed(keys []string, w io.Writer) {
	for _, k := range keys {
		fmt.Fprintln(w, k)
	}
}

type eventLog struct{ lines []string }

func (l *eventLog) Append(line string) { l.lines = append(l.lines, line) }

func auditInMapOrder(l *eventLog, m map[string]int) {
	for k := range m { // want: maporder
		l.Append(k)
	}
}


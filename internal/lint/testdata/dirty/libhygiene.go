package dirty

import (
	"errors"
	"fmt"
	"io"
	"log"
	"os"
)

func noisyFailure(err error) error {
	if err != nil {
		fmt.Println("failed:", err)  // want: libhygiene
		fmt.Printf("err: %v\n", err) // want: libhygiene
		log.Fatalf("fatal: %v", err) // want: libhygiene
		os.Exit(1)                   // want: libhygiene
	}
	return errors.New("wrapped")
}

func writerAllowed(w io.Writer) {
	// Writing to a caller-supplied stream is the sanctioned way for a
	// library to produce output.
	fmt.Fprintln(w, "progress")
}

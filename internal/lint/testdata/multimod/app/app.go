// Package app is the caller half of the synthetic module: it exercises
// cross-package calls, method resolution and function-literal edges.
package app

import "example.com/mm/util"

type Runner struct {
	last int64
}

// Tick is a method whose body calls across packages.
func (r *Runner) Tick() int64 {
	r.last = util.Stamp()
	return r.last
}

// Run calls a method statically and a cross-package function from
// inside a function literal.
func Run() int64 {
	r := &Runner{}
	f := func() int64 { return util.Stamp() }
	return r.Tick() + f()
}

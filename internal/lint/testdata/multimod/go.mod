module example.com/mm

go 1.22

// Package util is half of the synthetic two-package module the
// callgraph tests load: a leaf helper whose only call is an external
// stdlib function.
package util

import "time"

// Stamp reaches the wall clock, giving the graph an external leaf.
func Stamp() int64 {
	return time.Now().UnixNano()
}

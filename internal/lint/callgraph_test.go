package lint

import (
	"path/filepath"
	"testing"
)

// loadMultimod loads the synthetic two-package module under
// testdata/multimod through its own go.mod, the way the driver loads
// the real repo.
func loadMultimod(t *testing.T) []*Package {
	t.Helper()
	root := filepath.Join("testdata", "multimod")
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("creating loader: %v", err)
	}
	var pkgs []*Package
	for _, dir := range []string{"app", "util"} {
		pkg, err := loader.Load(filepath.Join(root, dir))
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

// edgeTo returns the first edge from the node to callee, or nil.
func edgeTo(node *FuncNode, callee FuncID) *CallEdge {
	for i := range node.Calls {
		if node.Calls[i].Callee == callee {
			return &node.Calls[i]
		}
	}
	return nil
}

// TestCallGraphMultiPackage pins the graph's resolution across package
// boundaries of one module: plain cross-package calls, method calls on
// concrete receivers, calls inside function literals, and external
// stdlib leaves.
func TestCallGraphMultiPackage(t *testing.T) {
	g := BuildCallGraph(loadMultimod(t))

	const (
		run   = FuncID("example.com/mm/app.Run")
		tick  = FuncID("(*example.com/mm/app.Runner).Tick")
		stamp = FuncID("example.com/mm/util.Stamp")
		now   = FuncID("time.Now")
	)

	for _, id := range []FuncID{run, tick, stamp} {
		node := g.Node(id)
		if node == nil {
			t.Fatalf("missing internal node %s; have %v", id, g.SortedIDs())
		}
		if node.Decl == nil || node.Pkg == nil {
			t.Errorf("node %s should be internal (have Decl and Pkg)", id)
		}
	}

	// Run calls the method statically (outside any literal) and the
	// cross-package function from inside a closure.
	if e := edgeTo(g.Node(run), tick); e == nil {
		t.Errorf("no edge %s -> %s", run, tick)
	} else if e.InFuncLit {
		t.Errorf("edge %s -> %s wrongly marked InFuncLit", run, tick)
	}
	if e := edgeTo(g.Node(run), stamp); e == nil {
		t.Errorf("no edge %s -> %s", run, stamp)
	} else if !e.InFuncLit {
		t.Errorf("edge %s -> %s should be marked InFuncLit", run, stamp)
	}

	// Tick's cross-package call resolves through the import.
	if e := edgeTo(g.Node(tick), stamp); e == nil {
		t.Errorf("no edge %s -> %s", tick, stamp)
	} else if e.InFuncLit {
		t.Errorf("edge %s -> %s wrongly marked InFuncLit", tick, stamp)
	}

	// util.Stamp's stdlib callee appears as a body-less external leaf.
	if e := edgeTo(g.Node(stamp), now); e == nil {
		t.Errorf("no edge %s -> %s", stamp, now)
	}
	ext := g.Node(now)
	if ext == nil {
		t.Fatalf("missing external node %s", now)
	}
	if ext.Decl != nil || ext.Pkg != nil || len(ext.Calls) != 0 {
		t.Errorf("external node %s should be a bare leaf", now)
	}
}

// TestDettaintAcrossPackages runs the taint analyzer over the synthetic
// module: the wallclock taint entering through util.Stamp must surface
// in the other package at depth >= 2 with the full chain, while the
// direct caller (depth 1) is left to the per-package wallclock rule.
func TestDettaintAcrossPackages(t *testing.T) {
	pkgs := loadMultimod(t)
	diags := Run(pkgs, []*Analyzer{Dettaint})
	var got []string
	for _, d := range diags {
		got = append(got, filepath.Base(d.Pos.Filename)+" "+d.Rule+" "+d.Message)
	}
	if len(diags) != 2 {
		t.Fatalf("want 2 dettaint findings (Run and Tick at depth 2), got %d:\n%v", len(diags), got)
	}
	for _, d := range diags {
		if filepath.Base(d.Pos.Filename) != "app.go" {
			t.Errorf("finding in %s, want app.go: %s", d.Pos.Filename, d)
		}
		if len(d.Trace) != 3 || d.Trace[1] != "util.Stamp" || d.Trace[2] != "time.Now" {
			t.Errorf("trace %v, want [caller, util.Stamp, time.Now]", d.Trace)
		}
	}
}

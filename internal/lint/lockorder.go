package lint

import (
	"cmp"
	"go/ast"
	"go/token"
	"path/filepath"
	"slices"
	"sort"
	"strconv"
	"strings"
)

// Lockorder extends lockguard's held-set tracking across static calls.
// It builds a whole-program lock graph over the sync.Mutex/RWMutex
// fields of guarded types (the NameNode, JobTracker, Master,
// RegionServer discipline: a struct locks its own state through
// recv.field.Lock()) and reports two interprocedural shapes lockguard's
// single-method view cannot see:
//
//   - Deep self-deadlock: a method that, while holding a field, calls a
//     sibling method on the same receiver that re-acquires the field two
//     or more calls down the chain (one call deep is lockguard's
//     finding). Chains follow same-receiver calls only, so the held and
//     re-acquired mutex are provably the same instance.
//
//   - Lock-order (ABBA) cycles: one code path acquires lock B while
//     holding lock A — directly, or anywhere down a static call chain —
//     while another path acquires A while holding B. Locks here are
//     type-level (pkg.Type.field): two instances of the same pair can
//     interleave to deadlock, so a type-level cycle is reported as
//     *potential* and each edge of the cycle is flagged at its witness
//     acquisition site with the full call chain.
//
// The analysis is conservative where the graph is: calls through
// interfaces and function values are not followed, and acquisitions
// inside nested function literals are ignored (the closure does not run
// under the caller's held set). A read-read chain on one RWMutex is
// allowed, matching lockguard.
var Lockorder = &Analyzer{
	Name:       "lockorder",
	Doc:        "flag cross-function lock-order cycles (ABBA) and call chains that re-acquire a held mutex",
	RunProgram: runLockorder,
}

// A lockID names a mutex at type level: "pkg/path.Type.field".
type lockID string

// sortedMapKeys returns a map's keys in ascending order, so the
// analysis never leaks Go's randomized map iteration order into its own
// diagnostics — the exact property it polices.
func sortedMapKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

func makeLockID(pkg *Package, typeName, field string) lockID {
	return lockID(pkg.ImportPath + "." + typeName + "." + printableField(field))
}

// shortLockID compresses "repro/internal/hdfs.NameNode.mu" to
// "hdfs.NameNode.mu" for diagnostics.
func shortLockID(l lockID) string {
	s := string(l)
	if i := strings.LastIndex(s, "/"); i >= 0 {
		return s[i+1:]
	}
	return s
}

// methodLocks is the lock summary of one guarded-type method.
type methodLocks struct {
	node     *FuncNode
	pkg      *Package
	typeName string
	recv     string
	events   []lockEvent // lock/rlock/unlock/runlock/defer-*/return/call, source order
}

// acqInfo records one (transitively) reachable acquisition.
type acqInfo struct {
	kind  string   // "lock" or "rlock"
	chain []FuncID // callee chain from the summarized function to the acquirer
	pos   token.Pos
}

func runLockorder(pass *ProgramPass) {
	g := pass.Graph

	// Summarize every method of every guarded type.
	summaries := map[FuncID]*methodLocks{}
	byType := map[string]map[string]*methodLocks{} // pkgpath.Type -> method name -> summary
	for _, pkg := range pass.Pkgs {
		fields := mutexFieldsOf(pkg)
		if len(fields) == 0 {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
					continue
				}
				tname := recvTypeName(fd.Recv.List[0].Type)
				if fields[tname] == nil {
					continue
				}
				recv := ""
				if len(fd.Recv.List[0].Names) > 0 {
					recv = fd.Recv.List[0].Names[0].Name
				}
				if recv == "" || recv == "_" {
					continue
				}
				id := declID(pkg, fd)
				node := g.Funcs[id]
				if node == nil || node.Decl == nil {
					continue
				}
				ml := &methodLocks{node: node, pkg: pkg, typeName: tname, recv: recv,
					events: collectLockEvents(fd.Body, recv, fields[tname])}
				summaries[id] = ml
				tkey := pkg.ImportPath + "." + tname
				if byType[tkey] == nil {
					byType[tkey] = map[string]*methodLocks{}
				}
				byType[tkey][fd.Name.Name] = ml
			}
		}
	}
	if len(summaries) == 0 {
		return
	}

	reportDeepSelfDeadlock(pass, byType)
	reportABBACycles(pass, g, summaries)
}

// --- deep self-deadlock: same-receiver call chains ---

// sameRecvAcquires computes, per guarded type, the mutex fields each
// method acquires transitively through same-receiver sibling calls,
// remembering the shortest method-name chain ending at the acquirer.
type fieldAcq struct {
	kind  string
	chain []string // method names from (exclusive) caller down to the acquirer
}

func reportDeepSelfDeadlock(pass *ProgramPass, byType map[string]map[string]*methodLocks) {
	tkeys := make([]string, 0, len(byType))
	for t := range byType {
		tkeys = append(tkeys, t)
	}
	sort.Strings(tkeys)
	for _, tkey := range tkeys {
		methods := byType[tkey]
		memo := map[string]map[string]fieldAcq{}
		var inProgress map[string]bool
		var reach func(name string) map[string]fieldAcq
		reach = func(name string) map[string]fieldAcq {
			if r, ok := memo[name]; ok {
				return r
			}
			if inProgress[name] {
				return nil // recursion: cut the cycle conservatively
			}
			m := methods[name]
			if m == nil {
				return nil
			}
			inProgress[name] = true
			out := map[string]fieldAcq{}
			for _, e := range m.events {
				switch e.kind {
				case "lock", "rlock":
					if _, ok := out[e.field]; !ok {
						out[e.field] = fieldAcq{kind: e.kind, chain: []string{name}}
					}
				case "call":
					sub := reach(e.field)
					for _, f := range sortedMapKeys(sub) {
						if _, ok := out[f]; !ok {
							acq := sub[f]
							out[f] = fieldAcq{kind: acq.kind, chain: append([]string{name}, acq.chain...)}
						}
					}
				}
			}
			delete(inProgress, name)
			memo[name] = out
			return out
		}
		inProgress = map[string]bool{}

		mnames := make([]string, 0, len(methods))
		for n := range methods {
			mnames = append(mnames, n)
		}
		sort.Strings(mnames)
		for _, mname := range mnames {
			m := methods[mname]
			held := map[string]string{} // field -> kind
			for _, e := range m.events {
				switch e.kind {
				case "lock", "rlock":
					held[e.field] = e.kind
				case "unlock", "runlock":
					delete(held, e.field)
				case "call":
					if len(held) == 0 {
						continue
					}
					sub := reach(e.field)
					for _, f := range sortedMapKeys(sub) {
						acq := sub[f]
						heldKind, isHeld := held[f]
						if !isHeld || len(acq.chain) < 2 {
							continue // depth 1 is lockguard's finding
						}
						if heldKind == "rlock" && acq.kind == "rlock" {
							continue // read-read nests
						}
						chain := append([]string{mname}, acq.chain...)
						trace := make([]string, len(chain))
						for i, c := range chain {
							trace[i] = shortLockTypeName(tkey) + "." + c
						}
						pass.Report(e.pos, trace,
							"%s re-acquires %s.%s already held here: %s; self-deadlock through the call chain",
							m.recv+"."+e.field+"()", m.recv, printableField(f), strings.Join(trace, " → "))
					}
				}
			}
		}
	}
}

// shortLockTypeName compresses "repro/internal/hdfs.NameNode" to
// "hdfs.NameNode".
func shortLockTypeName(tkey string) string {
	if i := strings.LastIndex(tkey, "/"); i >= 0 {
		return tkey[i+1:]
	}
	return tkey
}

// --- ABBA lock-order cycles ---

// orderEdge is one observed ordering: some path acquires To while
// holding From.
type orderEdge struct {
	from, to lockID
	pos      token.Pos // witness acquisition (or call) site
	chain    []FuncID  // call chain from the holder to the acquirer
}

func reportABBACycles(pass *ProgramPass, g *CallGraph, summaries map[FuncID]*methodLocks) {
	// reachAcq: lock acquisitions reachable from a function through
	// static calls (any receiver), type-level.
	memo := map[FuncID]map[lockID]acqInfo{}
	inProgress := map[FuncID]bool{}
	var reachAcq func(id FuncID) map[lockID]acqInfo
	reachAcq = func(id FuncID) map[lockID]acqInfo {
		if r, ok := memo[id]; ok {
			return r
		}
		if inProgress[id] {
			return nil
		}
		node := g.Funcs[id]
		if node == nil || node.Decl == nil {
			return nil
		}
		inProgress[id] = true
		out := map[lockID]acqInfo{}
		if ml := summaries[id]; ml != nil {
			for _, e := range ml.events {
				if e.kind != "lock" && e.kind != "rlock" {
					continue
				}
				l := makeLockID(ml.pkg, ml.typeName, e.field)
				if _, ok := out[l]; !ok {
					out[l] = acqInfo{kind: e.kind, chain: []FuncID{id}, pos: e.pos}
				}
			}
		}
		for _, e := range node.Calls {
			if e.InFuncLit {
				continue
			}
			sub := reachAcq(e.Callee)
			for _, l := range sortedMapKeys(sub) {
				if _, ok := out[l]; !ok {
					acq := sub[l]
					out[l] = acqInfo{kind: acq.kind, chain: append([]FuncID{id}, acq.chain...), pos: acq.pos}
				}
			}
		}
		delete(inProgress, id)
		memo[id] = out
		return out
	}

	// Walk every summarized method in deterministic order, replaying the
	// held set against its lock events and outgoing calls, recording
	// ordering edges. First witness per (from, to) pair wins.
	edges := map[[2]lockID]*orderEdge{}
	addEdge := func(from, to lockID, pos token.Pos, chain []FuncID) {
		key := [2]lockID{from, to}
		if edges[key] == nil {
			edges[key] = &orderEdge{from: from, to: to, pos: pos, chain: chain}
		}
	}
	ids := make([]FuncID, 0, len(summaries))
	for id := range summaries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ml := summaries[id]
		// Merge lock events and call edges by source position.
		type step struct {
			pos  token.Pos
			ev   *lockEvent
			call *CallEdge
		}
		var steps []step
		for i := range ml.events {
			e := &ml.events[i]
			switch e.kind {
			case "lock", "rlock", "unlock", "runlock":
				steps = append(steps, step{pos: e.pos, ev: e})
			}
		}
		for i := range ml.node.Calls {
			c := &ml.node.Calls[i]
			if !c.InFuncLit {
				steps = append(steps, step{pos: c.Pos, call: c})
			}
		}
		sort.SliceStable(steps, func(i, j int) bool { return steps[i].pos < steps[j].pos })

		held := map[string]string{} // own field -> kind
		for _, s := range steps {
			if s.ev != nil {
				switch s.ev.kind {
				case "lock", "rlock":
					newLock := makeLockID(ml.pkg, ml.typeName, s.ev.field)
					for f := range held {
						if f != s.ev.field {
							addEdge(makeLockID(ml.pkg, ml.typeName, f), newLock, s.ev.pos, []FuncID{id})
						}
					}
					held[s.ev.field] = s.ev.kind
				case "unlock", "runlock":
					delete(held, s.ev.field)
				}
				continue
			}
			if len(held) == 0 {
				continue
			}
			acqs := reachAcq(s.call.Callee)
			if len(acqs) == 0 {
				continue
			}
			locks := sortedMapKeys(acqs)
			for _, f := range sortedMapKeys(held) {
				from := makeLockID(ml.pkg, ml.typeName, f)
				for _, l := range locks {
					if l == from {
						continue // self re-acquisition is the deep-self-deadlock pass's job
					}
					acq := acqs[l]
					addEdge(from, l, s.call.Pos, append([]FuncID{id}, acq.chain...))
				}
			}
		}
	}

	// Cycle detection: any edge whose endpoints are in one strongly
	// connected component is part of an ordering cycle.
	scc := lockSCCs(edges)
	for _, k := range sortedEdgeKeys(edges) {
		e := edges[k]
		if scc[e.from] == 0 || scc[e.from] != scc[e.to] {
			continue
		}
		trace := make([]string, len(e.chain))
		for i, c := range e.chain {
			trace[i] = shortFuncID(c)
		}
		msg := ""
		if rev := edges[[2]lockID{e.to, e.from}]; rev != nil {
			p := pass.Fset.Position(rev.pos)
			msg = "the opposite order is taken at " + filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line)
		} else {
			msg = "part of a larger ordering cycle"
		}
		pass.Report(e.pos, trace,
			"acquires %s while holding %s (via %s); %s — potential ABBA deadlock, acquire in one consistent order",
			shortLockID(e.to), shortLockID(e.from), strings.Join(trace, " → "), msg)
	}
}

// sortedEdgeKeys returns the ordering-edge keys sorted by (from, to),
// the deterministic walk order for reporting and SCC numbering.
func sortedEdgeKeys(edges map[[2]lockID]*orderEdge) [][2]lockID {
	keys := make([][2]lockID, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys
}

// lockSCCs assigns each lock a strongly-connected-component number,
// leaving locks in trivial components (no cycle through them) at 0.
func lockSCCs(edges map[[2]lockID]*orderEdge) map[lockID]int {
	adj := map[lockID][]lockID{}
	nodes := map[lockID]bool{}
	for _, k := range sortedEdgeKeys(edges) {
		adj[k[0]] = append(adj[k[0]], k[1])
		nodes[k[0]], nodes[k[1]] = true, true
	}
	sorted := sortedMapKeys(nodes)

	// Tarjan's algorithm, recursive (lock graphs are tiny).
	index := map[lockID]int{}
	low := map[lockID]int{}
	onStack := map[lockID]bool{}
	var stack []lockID
	comp := map[lockID]int{}
	next, compNum := 1, 0
	var strong func(v lockID)
	strong = func(v lockID) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] == 0 {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var members []lockID
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				members = append(members, w)
				if w == v {
					break
				}
			}
			if len(members) > 1 {
				compNum++
				for _, m := range members {
					comp[m] = compNum
				}
			}
		}
	}
	for _, n := range sorted {
		if index[n] == 0 {
			strong(n)
		}
	}
	return comp
}

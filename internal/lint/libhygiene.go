package lint

// Libhygiene keeps internal/ library packages silent and killable: no
// printing to stdout, no process exits, no log.Fatal. Library errors
// must flow up as error values so the CLIs decide presentation and exit
// codes — and so a failing simulation surfaces as a test failure, not a
// dead test process. Writing to an io.Writer handed in by the caller
// (fmt.Fprintf) stays legal.
var Libhygiene = &Analyzer{
	Name: "libhygiene",
	Doc:  "forbid fmt.Print*/os.Exit/log.Fatal* in internal/ libraries; return errors instead",
	Skip: func(pkg *Package) bool { return !isInternalPackage(pkg) },
	Run:  runLibhygiene,
}

var libhygieneFmt = map[string]bool{"Print": true, "Printf": true, "Println": true}

var libhygieneLog = map[string]bool{
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"Panic": true, "Panicf": true, "Panicln": true,
}

func runLibhygiene(pass *Pass) {
	forEachPkgCall(pass, "fmt", func(call callSite) {
		if libhygieneFmt[call.fn] {
			pass.Report(call.pos, "fmt.%s writes to stdout from a library; return the string or take an io.Writer", call.fn)
		}
	})
	forEachPkgCall(pass, "os", func(call callSite) {
		if call.fn == "Exit" {
			pass.Report(call.pos, "os.Exit kills the process from a library; return an error and let cmd/ decide")
		}
	})
	forEachPkgCall(pass, "log", func(call callSite) {
		if libhygieneLog[call.fn] {
			pass.Report(call.pos, "log.%s aborts the process from a library; return an error instead", call.fn)
		}
	})
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Maporder flags range loops over maps whose bodies have order-dependent
// effects: appending to a slice, writing formatted output, or spawning
// work. Go randomizes map iteration order per run, so any such loop is a
// golden-trace killer — the fix is to collect the keys, sort them, and
// range over the sorted slice. The collection step of that very fix
// (append keys, then sort) is recognized: an append whose slice is
// passed to a sort or slices call later in the same file is not flagged.
// Loops whose bodies only do commutative work (summing, counting,
// deleting, writing distinct keys into another map) are left alone.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc:  "forbid order-dependent effects (append/output/spawn) inside range-over-map loops without a subsequent sort",
	Run:  runMaporder,
}

// maporderWriteMethods are method names whose calls make loop-body order
// observable: stream/buffer writes, last-write-wins setters and event
// scheduling. Calls on any receiver count — the analyzer cannot prove
// the receiver is loop-local, and a write that happens per element in
// map order is suspect regardless.
var maporderWriteMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Printf": true, "Print": true, "Println": true, "Set": true,
	"Schedule": true, "After": true, "Every": true,
	// Event-log appends (history.Log and friends): emission order is the
	// record, so it must never follow map order.
	"Append": true,
}

// maporderFmtFuncs are fmt functions that emit directly to a stream.
var maporderFmtFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func runMaporder(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(node ast.Node) bool {
			rs, ok := node.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Pkg.Info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true // type unknown: stay silent rather than guess
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			effect, slice := orderDependentEffect(pass.Pkg, rs.Body)
			if effect == "" {
				return true
			}
			if slice != "" && sortedAfter(pass.Pkg, file, slice, rs.End()) {
				return true // collect-then-sort: the canonical deterministic pattern
			}
			pass.Report(rs.Pos(), "range over map has order-dependent effect (%s); iterate over sorted keys", effect)
			return true
		})
	}
}

// orderDependentEffect scans a range body for the first construct whose
// outcome depends on iteration order, returning a short description of
// it ("" if none) and, for appends, the name of the target slice.
// Appends to slices declared inside the body are skipped: a loop-local
// collection is rebuilt per element and never observes map order.
func orderDependentEffect(pkg *Package, body *ast.BlockStmt) (effect, slice string) {
	local := localNames(body)
	ast.Inspect(body, func(node ast.Node) bool {
		if effect != "" {
			return false
		}
		switch n := node.(type) {
		case *ast.GoStmt:
			effect = "spawns a goroutine per element"
		case *ast.SendStmt:
			effect = "sends on a channel per element"
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				// The builtin (or an unresolved ident, which in practice
				// is the builtin under a failed check): slice order now
				// mirrors map order.
				obj := pkg.Info.Uses[id]
				if _, shadowed := obj.(*types.Func); obj == nil || !shadowed {
					target, base := "", ""
					if len(n.Args) > 0 {
						switch t := n.Args[0].(type) {
						case *ast.Ident:
							target, base = t.Name, t.Name
						case *ast.SelectorExpr:
							target = t.Sel.Name
							if x, ok := t.X.(*ast.Ident); ok {
								base = x.Name
							}
						}
					}
					if local[base] {
						return true // loop-local slice: per-element, order-free
					}
					effect = "appends to a slice"
					slice = target
					return false
				}
			}
			if path, fn, ok := pkgFuncCall(pkg, n); ok {
				if path == "fmt" && maporderFmtFuncs[fn] {
					effect = "writes fmt output"
				}
				return effect == ""
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && maporderWriteMethods[sel.Sel.Name] {
				effect = "calls ." + sel.Sel.Name + " per element"
			}
		}
		return effect == ""
	})
	return effect, slice
}

// sortedAfter reports whether a sorting call mentioning the named slice
// appears in the file after pos: any sort/slices package call, or a
// call to a local helper whose name contains "sort" (sortNodeIDs,
// sortStrings — this codebase's idiom). Matching by name within the
// file is a deliberate over-approximation: a same-named slice sorted in
// a different function suppresses the finding, which is the cheap side
// of the trade for never flagging the canonical fix.
func sortedAfter(pkg *Package, file *ast.File, slice string, pos token.Pos) bool {
	found := false
	ast.Inspect(file, func(node ast.Node) bool {
		if found {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		if !isSortCall(pkg, call) {
			return true
		}
		for _, arg := range call.Args {
			if mentionsIdent(arg, slice) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortCall recognizes stdlib sorting (sort.*, slices.Sort*) and local
// sort helpers by name.
func isSortCall(pkg *Package, call *ast.CallExpr) bool {
	if path, _, ok := pkgFuncCall(pkg, call); ok {
		return path == "sort" || path == "slices"
	}
	name := ""
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	return strings.Contains(strings.ToLower(name), "sort")
}

// localNames returns the identifiers declared (:= or var) directly
// within the block, including in nested statements.
func localNames(body *ast.BlockStmt) map[string]bool {
	names := map[string]bool{}
	ast.Inspect(body, func(node ast.Node) bool {
		switch n := node.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						names[id.Name] = true
					}
				}
			}
		case *ast.ValueSpec:
			for _, id := range n.Names {
				names[id.Name] = true
			}
		}
		return true
	})
	return names
}

// mentionsIdent reports whether the identifier appears anywhere in expr.
func mentionsIdent(expr ast.Expr, name string) bool {
	found := false
	ast.Inspect(expr, func(node ast.Node) bool {
		if id, ok := node.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

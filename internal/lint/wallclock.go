package lint

// wallclockFuncs are the time functions that read or wait on the real
// clock. time.Duration arithmetic and constants stay legal: the sim
// engine's virtual instants are themselves durations.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Wallclock forbids reading the wall clock in library packages. Every
// timed behavior (heartbeats, timeouts, task durations) must run on the
// sim engine's virtual clock, or identical seeds stop producing
// identical golden traces. Binaries under cmd/ are exempt — a CLI may
// measure real elapsed time for its user.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid time.Now/Since/Sleep/After/... in sim-facing library packages; use the sim clock",
	Skip: func(pkg *Package) bool { return isCmdPackage(pkg) },
	Run:  runWallclock,
}

func runWallclock(pass *Pass) {
	forEachPkgCall(pass, "time", func(call callSite) {
		if wallclockFuncs[call.fn] {
			pass.Report(call.pos, "time.%s reads the wall clock; use the sim engine's virtual clock (sim.Engine.Now/After/Every)", call.fn)
		}
	})
}

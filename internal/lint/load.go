package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package directory. Only non-test
// files are loaded: tests may freely use wall-clock time, global rand and
// printing — the determinism rules protect the simulated system, not the
// harness around it.
type Package struct {
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// ImportPath is the module-relative import path (e.g. repro/internal/sim).
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	// Types and Info come from a tolerant go/types pass: check errors are
	// swallowed so analyzers see best-effort type information. Analyzers
	// must treat missing entries in Info as "unknown", never as proof.
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks package directories inside one module.
// Imports of sibling module packages are resolved recursively; standard
// library imports go through go/importer's source importer. Results are
// cached, so loading all of ./internal/... type-checks each package once.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string // absolute module root (directory holding go.mod)
	ModPath string // module path from go.mod

	std     types.Importer
	pkgs    map[string]*Package       // by absolute dir
	tpkgs   map[string]*types.Package // by import path
	loading map[string]bool           // cycle guard, by import path
}

// NewLoader returns a loader for the module rooted at modRoot.
func NewLoader(modRoot string) (*Loader, error) {
	abs, err := filepath.Abs(modRoot)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModRoot: abs,
		ModPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		tpkgs:   map[string]*types.Package{},
		loading: map[string]bool{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// FindModRoot walks up from dir to the nearest directory containing go.mod.
func FindModRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		abs = parent
	}
}

// Load parses and type-checks the package in dir.
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[abs]; ok {
		return pkg, nil
	}
	importPath, err := l.importPathFor(abs)
	if err != nil {
		return nil, err
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	files, err := l.parseDir(abs)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	// Tolerant check: analyzers work from whatever resolved; a missing
	// dependency must not make the whole lint run fall over.
	conf := types.Config{Importer: l, Error: func(error) {}}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	pkg := &Package{
		Dir:        abs,
		ImportPath: importPath,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[abs] = pkg
	if tpkg != nil {
		l.tpkgs[importPath] = tpkg
	}
	return pkg, nil
}

func (l *Loader) importPathFor(abs string) (string, error) {
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", abs, l.ModRoot)
	}
	if rel == "." {
		return l.ModPath, nil
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// parseDir parses the non-test .go files of dir in name order.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Import implements types.Importer over module-internal packages and the
// standard library, so cross-package types (map fields, mutex embeds)
// resolve during analysis.
func (l *Loader) Import(path string) (*types.Package, error) {
	if tp, ok := l.tpkgs[path]; ok {
		return tp, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		dir := filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModPath)))
		pkg, err := l.Load(dir)
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: no type information for %s", path)
		}
		return pkg.Types, nil
	}
	tp, err := l.std.Import(path)
	if err != nil {
		return nil, err
	}
	l.tpkgs[path] = tp
	return tp, nil
}

// ExpandPatterns resolves driver arguments into package directories.
// "dir/..." walks recursively; plain paths name a single directory.
// Directories named testdata, vendored trees and dot/underscore dirs are
// skipped during expansion (matching the go tool), but an explicit plain
// argument always resolves — that is how the self-check test points the
// driver at internal/lint/testdata fixtures.
func ExpandPatterns(args []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, arg := range args {
		root, recursive := strings.CutSuffix(arg, "/...")
		if !recursive {
			if !hasGoFiles(arg) {
				return nil, fmt.Errorf("lint: no Go files in %s", arg)
			}
			add(filepath.Clean(arg))
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(filepath.Clean(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains non-test Go files.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

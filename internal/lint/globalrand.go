package lint

import "go/ast"

// Globalrand forbids math/rand's package-level functions and opaque
// rand.New sources outside internal/sim. The package-level source is
// shared mutable state: any call order change anywhere in the process
// perturbs every later draw, which silently breaks seed-for-seed
// reproducibility. Components must take a seeded sim.Rand (usually
// derived per component with Derive) so randomness is scoped and
// replayable. internal/sim itself is the one place allowed to touch
// math/rand — it is the wrapper.
var Globalrand = &Analyzer{
	Name: "globalrand",
	Doc:  "forbid package-level math/rand and unseeded rand.New outside internal/sim; use sim.Rand",
	Skip: func(pkg *Package) bool { return hasPathSegment(pkg.ImportPath, "sim") },
	Run:  runGlobalrand,
}

func runGlobalrand(pass *Pass) {
	for _, path := range []string{"math/rand", "math/rand/v2"} {
		forEachPkgCall(pass, path, func(call callSite) {
			switch call.fn {
			case "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
				// Constructing a source from an explicit seed is exactly
				// what deterministic code should do.
				return
			case "New":
				// rand.New(rand.NewSource(seed)) is seeded and fine; any
				// other argument hides where the seed comes from.
				if len(call.call.Args) == 1 && isSeededSource(pass.Pkg, call.call.Args[0]) {
					return
				}
				pass.Report(call.pos, "rand.New without an inline rand.NewSource(seed) hides the seed; use sim.NewRand or rand.New(rand.NewSource(seed))")
			default:
				pass.Report(call.pos, "rand.%s uses the package-level shared source; draw from a seeded sim.Rand instead", call.fn)
			}
		})
	}
}

// isSeededSource reports whether the expression is a direct
// rand.NewSource(...) / rand.NewPCG(...) call.
func isSeededSource(pkg *Package, expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	path, fn, ok := pkgFuncCall(pkg, call)
	if !ok || (path != "math/rand" && path != "math/rand/v2") {
		return false
	}
	return fn == "NewSource" || fn == "NewPCG"
}

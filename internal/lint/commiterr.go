package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Commiterr is an unchecked-error analyzer scoped to durability-critical
// call paths. The repo's two hardest guarantees — zero lost acked writes
// (kvstore WAL replay) and byte-stable audit/history logs — hold only if
// every error on a commit path is observed: a dropped error from a WAL
// append, a store-file flush, a history persist or an edit-log write
// silently acks data that was never made durable.
//
// A callee is commit-critical if it is one of the durability sinks
// (kvstore WAL append/truncate, iofmt sequence-writer flush/close, the
// vfs whole-file writer every journal and history persist path funnels
// through) or if it returns an error and transitively calls one through
// static calls. Dropping the error of a commit-critical call — calling
// it as a bare statement, blanking the error with _, or deferring it —
// is reported with the chain that makes it critical
// (journal → vfs.WriteFile).
//
// One idiom is exempt: a drop inside an if-block whose condition tests
// an error against nil (the cleanup-after-failure shape, where the
// original error is already being returned and a secondary close error
// has nowhere better to go).
var Commiterr = &Analyzer{
	Name:       "commiterr",
	Doc:        "forbid dropping errors from durability-critical calls (WAL append, flush, persist paths)",
	RunProgram: runCommiterr,
}

// commitSinks are the durability primitives, matched by package-path
// suffix, receiver and name so the list survives module renames and
// works for fixture packages importing the real ones.
var commitSinks = []struct {
	pathSuffix string // import path or suffix starting at a path boundary
	recv       string // "" for package functions
	name       string
}{
	{"internal/vfs", "", "WriteFile"},
	{"internal/kvstore", "*Table", "appendWAL"},
	{"internal/kvstore", "*Table", "truncateWAL"},
	{"internal/iofmt", "*SeqWriter", "flushBlock"},
	{"internal/iofmt", "*SeqWriter", "Close"},
}

func isCommitSink(id FuncID) bool {
	pkgPath, recv, name := splitFuncID(id)
	for _, s := range commitSinks {
		if s.recv != recv || s.name != name {
			continue
		}
		if pkgPath == s.pathSuffix || strings.HasSuffix(pkgPath, "/"+s.pathSuffix) {
			return true
		}
	}
	return false
}

func runCommiterr(pass *ProgramPass) {
	g := pass.Graph

	// critical maps each commit-critical function to the call chain that
	// reaches a sink (the function itself first). Non-sink functions are
	// critical only if they return an error: a function that swallows
	// the sink's error internally is reported at the swallow site, not
	// at its callers (there is nothing the caller could check).
	memo := map[FuncID][]FuncID{}
	inProgress := map[FuncID]bool{}
	var critical func(id FuncID) []FuncID
	critical = func(id FuncID) []FuncID {
		if c, ok := memo[id]; ok {
			return c
		}
		if isCommitSink(id) {
			memo[id] = []FuncID{id}
			return memo[id]
		}
		node := g.Funcs[id]
		if node == nil || node.Decl == nil || inProgress[id] {
			return nil
		}
		if !returnsError(node) {
			memo[id] = nil
			return nil
		}
		inProgress[id] = true
		var chain []FuncID
		for _, e := range node.Calls {
			if e.InFuncLit {
				continue
			}
			if sub := critical(e.Callee); sub != nil {
				chain = append([]FuncID{id}, sub...)
				break
			}
		}
		delete(inProgress, id)
		memo[id] = chain
		return chain
	}

	for _, id := range g.SortedIDs() {
		node := g.Funcs[id]
		if node == nil || node.Decl == nil {
			continue
		}
		reportDrops(pass, node, critical)
	}
}

// returnsError reports whether the function's last result is an error.
func returnsError(node *FuncNode) bool {
	obj, ok := node.Pkg.Info.Defs[node.Decl.Name].(*types.Func)
	if ok {
		sig, ok := obj.Type().(*types.Signature)
		if ok && sig.Results().Len() > 0 {
			last := sig.Results().At(sig.Results().Len() - 1).Type()
			return isErrorType(last)
		}
		return false
	}
	// Syntactic fallback when the tolerant check resolved nothing.
	res := node.Decl.Type.Results
	if res == nil || len(res.List) == 0 {
		return false
	}
	last, ok := res.List[len(res.List)-1].Type.(*ast.Ident)
	return ok && last.Name == "error"
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// reportDrops scans one function body for dropped errors of
// commit-critical calls.
func reportDrops(pass *ProgramPass, node *FuncNode, critical func(FuncID) []FuncID) {
	pkg := node.Pkg

	report := func(call *ast.CallExpr, how string) {
		callee, ok := resolveCallee(pkg, call)
		if !ok {
			return
		}
		chain := critical(callee)
		if chain == nil || !calleeReturnsError(pkg, call) {
			return
		}
		short := make([]string, len(chain))
		for i, c := range chain {
			short[i] = shortFuncID(c)
		}
		pass.Report(call.Pos(), short,
			"%s the error from %s, which commits durable state (%s); a silent failure here loses acked writes",
			how, short[0], strings.Join(short, " → "))
	}

	// Walk with an error-branch context flag: drops inside a block
	// guarded by `err != nil` are the cleanup-after-failure idiom.
	var walk func(n ast.Node, inErrBranch bool)
	walk = func(n ast.Node, inErrBranch bool) {
		ast.Inspect(n, func(nd ast.Node) bool {
			switch s := nd.(type) {
			case *ast.IfStmt:
				if s.Init != nil {
					walk(s.Init, inErrBranch)
				}
				errCond := condTestsError(pkg, s.Cond)
				walk(s.Body, inErrBranch || errCond)
				if s.Else != nil {
					walk(s.Else, inErrBranch)
				}
				return false
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok && !inErrBranch {
					report(call, "drops")
				}
				// Keep walking: the call's arguments may contain literals.
				return true
			case *ast.AssignStmt:
				if inErrBranch {
					return true
				}
				if len(s.Rhs) == 1 {
					if call, ok := s.Rhs[0].(*ast.CallExpr); ok && lastLHSBlank(s.Lhs) {
						report(call, "discards")
					}
				}
				return true
			case *ast.DeferStmt:
				if !inErrBranch {
					report(s.Call, "defers and drops")
				}
				return true
			case *ast.GoStmt:
				if !inErrBranch {
					report(s.Call, "spawns and drops")
				}
				return true
			}
			return true
		})
	}
	walk(node.Decl.Body, false)
}

// lastLHSBlank reports whether the error position (last assignee) of a
// call assignment is the blank identifier.
func lastLHSBlank(lhs []ast.Expr) bool {
	if len(lhs) == 0 {
		return false
	}
	id, ok := lhs[len(lhs)-1].(*ast.Ident)
	return ok && id.Name == "_"
}

// calleeReturnsError reports whether the call produces an error as its
// last result (single error or trailing error of a tuple).
func calleeReturnsError(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return true // unknown: trust the critical-chain resolution
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		return isErrorType(t)
	}
}

// condTestsError reports whether a condition compares an error value
// against nil (err != nil, err == nil with the drop in either branch is
// not distinguished — only != nil guards count, the failure-path shape).
func condTestsError(pkg *Package, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op.String() != "!=" {
			return true
		}
		var other ast.Expr
		if isNilIdent(be.X) {
			other = be.Y
		} else if isNilIdent(be.Y) {
			other = be.X
		} else {
			return true
		}
		if tv, ok := pkg.Info.Types[other]; ok && tv.Type != nil {
			if isErrorType(tv.Type) {
				found = true
			}
			return !found
		}
		// Fallback without type info: identifiers that look like errors.
		if id, ok := other.(*ast.Ident); ok {
			low := strings.ToLower(id.Name)
			if low == "err" || strings.HasSuffix(low, "err") {
				found = true
			}
		}
		return !found
	})
	return found
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

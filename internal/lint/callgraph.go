package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The call graph is the shared substrate of the interprocedural
// analyzers (dettaint, lockorder, commiterr). It is built once per lint
// run over every loaded package, resolving *static* calls only:
// package-level functions and methods whose receiver type the checker
// resolved. Calls through interfaces, function values and reflection are
// not resolved — the graph under-approximates, so interprocedural rules
// can miss through dynamic dispatch but never follow an edge that cannot
// happen. Stdlib callees (time.Now, math/rand.Intn) appear as body-less
// leaf nodes so taint sources exist in the graph.

// A FuncID names a function the way types.Func.FullName does:
// "pkg/path.Name" for package functions, "(pkg/path.T).Name" or
// "(*pkg/path.T).Name" for methods. IDs are stable across runs and
// human-readable enough to print in diagnostics traces.
type FuncID string

// A CallEdge is one static call site.
type CallEdge struct {
	Callee FuncID
	Pos    token.Pos
	// InFuncLit marks calls made inside a function literal nested in the
	// caller's body. The closure may run later (or never), but whatever
	// nondeterminism or lock activity it performs is still attributed to
	// the function that created it — dettaint follows these edges,
	// lockorder does not (the closure does not run under the caller's
	// held set).
	InFuncLit bool
}

// A FuncNode is one function in the graph. Nodes with a nil Decl are
// external: imported functions whose bodies were not loaded.
type FuncNode struct {
	ID   FuncID
	Pkg  *Package      // package the body lives in; nil for external
	Decl *ast.FuncDecl // nil for external
	// Calls lists the static call sites of the body in source order.
	Calls []CallEdge
}

// A CallGraph maps every reached FuncID to its node.
type CallGraph struct {
	Funcs map[FuncID]*FuncNode
}

// Node returns the node for id, or nil.
func (g *CallGraph) Node(id FuncID) *FuncNode {
	return g.Funcs[id]
}

// SortedIDs returns every FuncID in lexical order, for deterministic
// iteration by analyzers.
func (g *CallGraph) SortedIDs() []FuncID {
	ids := make([]FuncID, 0, len(g.Funcs))
	for id := range g.Funcs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// BuildCallGraph constructs the static call graph of the loaded
// packages. Every function declaration with a body becomes an internal
// node; every resolved callee without a loaded body becomes an external
// node the first time it is called.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Funcs: map[FuncID]*FuncNode{}}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				id := declID(pkg, fd)
				if id == "" {
					continue
				}
				node := &FuncNode{ID: id, Pkg: pkg, Decl: fd}
				node.Calls = collectCalls(pkg, fd.Body)
				g.Funcs[id] = node
			}
		}
	}
	// Materialize external leaf nodes for callees without bodies.
	for _, node := range g.Funcs {
		for _, e := range node.Calls {
			if g.Funcs[e.Callee] == nil {
				g.Funcs[e.Callee] = &FuncNode{ID: e.Callee}
			}
		}
	}
	return g
}

// declID computes the FuncID of a declaration, preferring the checker's
// object (whose FullName handles receivers) and falling back to a
// syntactic rendering when type information is missing.
func declID(pkg *Package, fd *ast.FuncDecl) FuncID {
	if obj, ok := pkg.Info.Defs[fd.Name]; ok {
		if fn, ok := obj.(*types.Func); ok {
			return FuncID(fn.FullName())
		}
	}
	// Fallback: "<pkg>.name" or "(<pkg>.T).name"; good enough to keep the
	// node addressable when the tolerant check failed.
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if t := recvTypeName(fd.Recv.List[0].Type); t != "" {
			return FuncID("(" + pkg.ImportPath + "." + t + ")." + fd.Name.Name)
		}
		return ""
	}
	return FuncID(pkg.ImportPath + "." + fd.Name.Name)
}

// collectCalls walks a body collecting resolved static call sites in
// source order.
func collectCalls(pkg *Package, body *ast.BlockStmt) []CallEdge {
	var edges []CallEdge
	var walk func(n ast.Node, inLit bool)
	walk = func(n ast.Node, inLit bool) {
		ast.Inspect(n, func(node ast.Node) bool {
			switch e := node.(type) {
			case *ast.FuncLit:
				walk(e.Body, true)
				return false
			case *ast.CallExpr:
				if callee, ok := resolveCallee(pkg, e); ok {
					edges = append(edges, CallEdge{Callee: callee, Pos: e.Pos(), InFuncLit: inLit})
				}
			}
			return true
		})
	}
	walk(body, false)
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].Pos < edges[j].Pos })
	return edges
}

// resolveCallee resolves a call expression to a static callee. Three
// shapes resolve: plain identifiers bound to functions (same-package
// calls), qualified package functions (pkg.Fn), and method selections
// whose receiver type is concrete. Interface method calls resolve to a
// *types.Func whose receiver is the interface — those are kept as
// external nodes (no body, so nothing propagates through them), which is
// the conservative choice.
func resolveCallee(pkg *Package, call *ast.CallExpr) (FuncID, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return FuncID(fn.FullName()), true
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return FuncID(fn.FullName()), true
			}
			return "", false
		}
		// Not a selection: a qualified identifier (pkg.Fn).
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return FuncID(fn.FullName()), true
		}
	}
	return "", false
}

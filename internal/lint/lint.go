// Package lint is a small, stdlib-only static-analysis framework with
// analyzers enforcing the repo's determinism and hygiene invariants:
// no wall-clock time or global randomness in sim-facing packages, no
// order-dependent iteration over maps, no printing or exiting from
// library code, and no self-deadlocking lock usage. Every subsystem's
// testability (golden traces, seed sweeps, fault-injection replays)
// rests on bit-for-bit reproducibility; these rules make that a
// machine-checked property of the build instead of a convention.
//
// The framework loads packages with go/parser and type-checks them with
// go/types (see load.go), runs each Analyzer over each package, applies
// "//lint:ignore RULE reason" suppression directives, and reports stale
// directives as unused-ignore findings. cmd/minilint is the CLI driver.
//
// On top of the per-package analyzers sits a whole-program layer: a
// module-aware static call graph (callgraph.go) shared by the
// interprocedural analyzers — dettaint (transitive determinism taint
// with per-edge traces), lockorder (cross-function lock-order cycles)
// and commiterr (dropped errors on durability-critical commit paths).
// These see through helper functions the single-function rules cannot.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// A Diagnostic is one finding, rendered as "file:line: [rule] message".
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
	// Trace, set by interprocedural analyzers, is the call chain behind
	// the finding, outermost caller first (e.g. ["a", "b", "time.Now"]).
	// The driver prints it under the diagnostic when run with -trace.
	Trace []string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// An Analyzer checks one property over one package at a time.
type Analyzer struct {
	// Name is the rule name used in diagnostics and ignore directives.
	Name string
	// Doc is a one-line description for -help output and docs.
	Doc string
	// Skip, when set, exempts whole packages (e.g. cmd/ binaries may use
	// wall-clock time). Test files are never analyzed; see load.go.
	Skip func(pkg *Package) bool
	// Run reports findings through pass.Report. Per-package analyzers
	// set Run; whole-program analyzers set RunProgram instead.
	Run func(pass *Pass)
	// RunProgram, when set, runs once over all loaded packages with the
	// shared call graph. Exactly one of Run and RunProgram is set.
	RunProgram func(pass *ProgramPass)
}

// A Pass is one (analyzer, package) execution.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    []Diagnostic
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// A ProgramPass is one whole-program analyzer execution: every loaded
// package plus the shared call graph.
type ProgramPass struct {
	Analyzer *Analyzer
	Pkgs     []*Package
	Graph    *CallGraph
	Fset     *token.FileSet
	diags    []Diagnostic
}

// Report records a finding at pos with an optional call-chain trace
// (outermost caller first; nil for trace-less findings).
func (p *ProgramPass) Report(pos token.Pos, trace []string, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
		Trace:   trace,
	})
}

// Analyzers returns the full suite in stable order: the five
// per-package analyzers first, then the three interprocedural ones that
// need the whole-program call graph.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Wallclock,
		Globalrand,
		Maporder,
		Libhygiene,
		Lockguard,
		Dettaint,
		Lockorder,
		Commiterr,
	}
}

// FastAnalyzers returns only the per-package analyzers — the subset
// that runs without building the call graph, for the inner dev loop
// (minilint -fast, make lint-fast).
func FastAnalyzers() []*Analyzer {
	var fast []*Analyzer
	for _, a := range Analyzers() {
		if a.Run != nil {
			fast = append(fast, a)
		}
	}
	return fast
}

// RuleUnusedIgnore is the pseudo-rule under which stale or malformed
// //lint:ignore directives are reported. A suppression that matches
// nothing is itself a defect: it hides future regressions.
const RuleUnusedIgnore = "unused-ignore"

// ignoreDirective is one parsed "//lint:ignore RULE reason" comment. A
// directive suppresses diagnostics of the named rule on its own line
// (trailing comment) or on the line directly below (own-line comment).
type ignoreDirective struct {
	pos       token.Position
	rule      string
	reason    string
	malformed bool
	used      bool
}

const ignorePrefix = "//lint:ignore"

func parseIgnores(fset *token.FileSet, files []*ast.File) []*ignoreDirective {
	var out []*ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				d := &ignoreDirective{pos: fset.Position(c.Pos())}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				rule, reason, _ := strings.Cut(rest, " ")
				d.rule = rule
				d.reason = strings.TrimSpace(reason)
				if d.rule == "" || d.reason == "" {
					d.malformed = true
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// matches reports whether the directive suppresses a diagnostic at pos.
func (d *ignoreDirective) matches(diag Diagnostic) bool {
	if d.malformed || d.rule != diag.Rule || d.pos.Filename != diag.Pos.Filename {
		return false
	}
	return diag.Pos.Line == d.pos.Line || diag.Pos.Line == d.pos.Line+1
}

// Run executes every analyzer over every package (per-package analyzers
// per package, whole-program analyzers once over the shared call graph),
// applies suppression directives, reports stale ones, and returns the
// findings sorted by position then rule. The call graph is built only
// when an interprocedural analyzer is selected, so -fast runs skip its
// cost entirely.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	var programAnalyzers []*Analyzer
	for _, a := range analyzers {
		if a.RunProgram != nil {
			programAnalyzers = append(programAnalyzers, a)
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil || (a.Skip != nil && a.Skip(pkg)) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg}
			a.Run(pass)
			raw = append(raw, pass.diags...)
		}
	}
	if len(programAnalyzers) > 0 && len(pkgs) > 0 {
		graph := BuildCallGraph(pkgs)
		for _, a := range programAnalyzers {
			pass := &ProgramPass{Analyzer: a, Pkgs: pkgs, Graph: graph, Fset: pkgs[0].Fset}
			a.RunProgram(pass)
			raw = append(raw, pass.diags...)
		}
	}
	// Suppression directives match diagnostics by filename and line, so
	// they are gathered from every package and applied globally —
	// interprocedural findings land in whichever package the position
	// falls in, not necessarily the package that triggered the analyzer.
	var all []Diagnostic
	var ignores []*ignoreDirective
	for _, pkg := range pkgs {
		ignores = append(ignores, parseIgnores(pkg.Fset, pkg.Files)...)
	}
	for _, diag := range raw {
		suppressed := false
		for _, ig := range ignores {
			if ig.matches(diag) {
				ig.used = true
				suppressed = true
			}
		}
		if !suppressed {
			all = append(all, diag)
		}
	}
	// A directive is stale only if its rule actually ran this invocation:
	// under -fast, suppressions for the call-graph rules cannot match
	// anything, and reporting them would make the fast loop cry wolf.
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, ig := range ignores {
		switch {
		case ig.malformed:
			all = append(all, Diagnostic{Pos: ig.pos, Rule: RuleUnusedIgnore,
				Message: "malformed directive; want //lint:ignore RULE reason"})
		case !ig.used && ran[ig.rule]:
			all = append(all, Diagnostic{Pos: ig.pos, Rule: RuleUnusedIgnore,
				Message: fmt.Sprintf("ignore directive for %q matches no diagnostic; delete it", ig.rule)})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return all
}

// Package lint is a small, stdlib-only static-analysis framework with
// analyzers enforcing the repo's determinism and hygiene invariants:
// no wall-clock time or global randomness in sim-facing packages, no
// order-dependent iteration over maps, no printing or exiting from
// library code, and no self-deadlocking lock usage. Every subsystem's
// testability (golden traces, seed sweeps, fault-injection replays)
// rests on bit-for-bit reproducibility; these rules make that a
// machine-checked property of the build instead of a convention.
//
// The framework loads packages with go/parser and type-checks them with
// go/types (see load.go), runs each Analyzer over each package, applies
// "//lint:ignore RULE reason" suppression directives, and reports stale
// directives as unused-ignore findings. cmd/minilint is the CLI driver.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// A Diagnostic is one finding, rendered as "file:line: [rule] message".
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// An Analyzer checks one property over one package at a time.
type Analyzer struct {
	// Name is the rule name used in diagnostics and ignore directives.
	Name string
	// Doc is a one-line description for -help output and docs.
	Doc string
	// Skip, when set, exempts whole packages (e.g. cmd/ binaries may use
	// wall-clock time). Test files are never analyzed; see load.go.
	Skip func(pkg *Package) bool
	// Run reports findings through pass.Report.
	Run func(pass *Pass)
}

// A Pass is one (analyzer, package) execution.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    []Diagnostic
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Wallclock,
		Globalrand,
		Maporder,
		Libhygiene,
		Lockguard,
	}
}

// RuleUnusedIgnore is the pseudo-rule under which stale or malformed
// //lint:ignore directives are reported. A suppression that matches
// nothing is itself a defect: it hides future regressions.
const RuleUnusedIgnore = "unused-ignore"

// ignoreDirective is one parsed "//lint:ignore RULE reason" comment. A
// directive suppresses diagnostics of the named rule on its own line
// (trailing comment) or on the line directly below (own-line comment).
type ignoreDirective struct {
	pos       token.Position
	rule      string
	reason    string
	malformed bool
	used      bool
}

const ignorePrefix = "//lint:ignore"

func parseIgnores(fset *token.FileSet, files []*ast.File) []*ignoreDirective {
	var out []*ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				d := &ignoreDirective{pos: fset.Position(c.Pos())}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				rule, reason, _ := strings.Cut(rest, " ")
				d.rule = rule
				d.reason = strings.TrimSpace(reason)
				if d.rule == "" || d.reason == "" {
					d.malformed = true
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// matches reports whether the directive suppresses a diagnostic at pos.
func (d *ignoreDirective) matches(diag Diagnostic) bool {
	if d.malformed || d.rule != diag.Rule || d.pos.Filename != diag.Pos.Filename {
		return false
	}
	return diag.Pos.Line == d.pos.Line || diag.Pos.Line == d.pos.Line+1
}

// Run executes every analyzer over every package, applies suppression
// directives, reports stale ones, and returns the findings sorted by
// position then rule.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var all []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			if a.Skip != nil && a.Skip(pkg) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg}
			a.Run(pass)
			raw = append(raw, pass.diags...)
		}
		ignores := parseIgnores(pkg.Fset, pkg.Files)
		for _, diag := range raw {
			suppressed := false
			for _, ig := range ignores {
				if ig.matches(diag) {
					ig.used = true
					suppressed = true
				}
			}
			if !suppressed {
				all = append(all, diag)
			}
		}
		for _, ig := range ignores {
			switch {
			case ig.malformed:
				all = append(all, Diagnostic{Pos: ig.pos, Rule: RuleUnusedIgnore,
					Message: "malformed directive; want //lint:ignore RULE reason"})
			case !ig.used:
				all = append(all, Diagnostic{Pos: ig.pos, Rule: RuleUnusedIgnore,
					Message: fmt.Sprintf("ignore directive for %q matches no diagnostic; delete it", ig.rule)})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return all
}

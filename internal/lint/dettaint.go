package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Dettaint is the interprocedural extension of wallclock, globalrand and
// maporder: it propagates determinism taint across the static call
// graph, so a sim-visible function that reaches time.Now, the shared
// math/rand source, or a map-order-dependent helper through any depth of
// calls is flagged at its own call site with the full chain in the
// diagnostic (a → b → time.Now). Direct calls to wall-clock or global
// rand functions are left to the per-package rules (one finding per
// site, not one per chain level is still one per site — each function on
// the chain gets exactly one diagnostic naming its route).
//
// A third taint source has no per-package counterpart: a function that
// returns from inside a range over a map, with the returned value
// mentioning the iteration variables, picks an arbitrary element —
// Go randomizes map order per run, so both the helper and every caller
// are nondeterministic. Dettaint reports the helper at the return and
// each (transitive) caller at its call site.
//
// Exemptions mirror the per-package rules: cmd/ packages may read the
// wall clock (reports of wallclock taint are suppressed there), and
// internal/sim is the sanctioned randomness wrapper (globalrand taint
// neither propagates out of sim nor is reported inside it).
var Dettaint = &Analyzer{
	Name:       "dettaint",
	Doc:        "flag call chains that transitively reach the wall clock, global rand, or map-order-dependent helpers",
	RunProgram: runDettaint,
}

// Taint kinds, in reporting order.
const (
	taintWallclock  = "wallclock"
	taintGlobalrand = "globalrand"
	taintMaporder   = "maporder"
)

var taintKinds = []string{taintWallclock, taintGlobalrand, taintMaporder}

// randConstructors are the math/rand functions that build seeded
// sources — exactly what deterministic code should call. rand.New is
// excluded here too: the per-package globalrand rule performs the
// seeded-argument check dettaint cannot do at graph level.
var randConstructors = map[string]bool{
	"NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true, "New": true,
}

func runDettaint(pass *ProgramPass) {
	g := pass.Graph
	ids := g.SortedIDs()

	// Classify sources. External leaves give wallclock/globalrand taint;
	// loaded functions that return map-order-dependent values are
	// maporder sources, remembered with the offending return position.
	sources := map[FuncID]map[string]bool{}
	maporderPos := map[FuncID]token.Pos{}
	addSource := func(id FuncID, kind string) {
		if sources[id] == nil {
			sources[id] = map[string]bool{}
		}
		sources[id][kind] = true
	}
	for _, id := range ids {
		node := g.Funcs[id]
		if node.Decl == nil {
			pkgPath, recv, name := splitFuncID(id)
			if recv != "" {
				continue // methods (e.g. (*rand.Rand).Intn on a seeded instance) are fine
			}
			if pkgPath == "time" && wallclockFuncs[name] {
				addSource(id, taintWallclock)
			}
			if (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !randConstructors[name] {
				addSource(id, taintGlobalrand)
			}
			continue
		}
		if pos := mapOrderReturnPos(node.Pkg, node.Decl); pos != token.NoPos {
			addSource(id, taintMaporder)
			maporderPos[id] = pos
		}
	}

	// Reverse adjacency for the taint BFS, deterministic order.
	callers := map[FuncID][]FuncID{}
	for _, id := range ids {
		seen := map[FuncID]bool{}
		for _, e := range g.Funcs[id].Calls {
			if !seen[e.Callee] {
				seen[e.Callee] = true
				callers[e.Callee] = append(callers[e.Callee], id)
			}
		}
	}
	for _, cs := range callers {
		sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	}

	// BFS per kind from the sources, respecting propagation barriers.
	dist := map[string]map[FuncID]int{}
	for _, kind := range taintKinds {
		d := map[FuncID]int{}
		var frontier []FuncID
		for _, id := range ids {
			if sources[id][kind] {
				d[id] = 0
				frontier = append(frontier, id)
			}
		}
		for len(frontier) > 0 {
			var next []FuncID
			for _, u := range frontier {
				if taintBarrier(g.Funcs[u], kind) {
					continue
				}
				for _, c := range callers[u] {
					if _, ok := d[c]; !ok {
						d[c] = d[u] + 1
						next = append(next, c)
					}
				}
			}
			frontier = next
		}
		dist[kind] = d
	}

	for _, id := range ids {
		node := g.Funcs[id]
		if node.Decl == nil {
			continue
		}
		for _, kind := range taintKinds {
			d, tainted := dist[kind][id]
			if !tainted || skipTaintReport(node.Pkg, kind) {
				continue
			}
			if d == 0 {
				// A maporder source reports itself; wallclock/globalrand
				// sources are external and never reach this loop.
				pass.Report(maporderPos[id], []string{shortFuncID(id)},
					"returned value is chosen by map iteration order; collect and sort keys before choosing")
				continue
			}
			if d == 1 && kind != taintMaporder {
				continue // a direct time.Now / rand.Intn call: the per-package rule's finding
			}
			edge, chain := taintChain(g, dist[kind], id)
			short := make([]string, len(chain))
			for i, c := range chain {
				short[i] = shortFuncID(c)
			}
			switch kind {
			case taintWallclock:
				pass.Report(edge.Pos, short,
					"call chain reaches the wall clock: %s; thread the sim engine's virtual clock instead",
					strings.Join(short, " → "))
			case taintGlobalrand:
				pass.Report(edge.Pos, short,
					"call chain reaches the shared math/rand source: %s; draw from a seeded sim.Rand",
					strings.Join(short, " → "))
			case taintMaporder:
				pass.Report(edge.Pos, short,
					"call chain reaches a map-order-dependent value: %s; make the helper deterministic first",
					strings.Join(short, " → "))
			}
		}
	}
}

// taintBarrier reports whether taint of the given kind stops at node:
// its own use is sanctioned, so callers do not inherit it.
func taintBarrier(node *FuncNode, kind string) bool {
	if node.Pkg == nil {
		return false
	}
	switch kind {
	case taintGlobalrand:
		return hasPathSegment(node.Pkg.ImportPath, "sim")
	case taintWallclock:
		return isCmdPackage(node.Pkg)
	}
	return false
}

// skipTaintReport mirrors the per-package Skip exemptions.
func skipTaintReport(pkg *Package, kind string) bool {
	switch kind {
	case taintWallclock:
		return isCmdPackage(pkg)
	case taintGlobalrand:
		return hasPathSegment(pkg.ImportPath, "sim")
	}
	return false
}

// taintChain reconstructs the shortest tainted call chain from id down
// to a source, returning the first edge taken (for the report position)
// and the full chain including id and the source. Ties between equally
// short callees break on source position, so the chain is deterministic.
func taintChain(g *CallGraph, dist map[FuncID]int, id FuncID) (CallEdge, []FuncID) {
	chain := []FuncID{id}
	var first CallEdge
	cur := id
	for dist[cur] > 0 {
		node := g.Funcs[cur]
		var best *CallEdge
		for i := range node.Calls {
			e := &node.Calls[i]
			if d, ok := dist[e.Callee]; ok && d == dist[cur]-1 {
				best = e
				break // Calls are in source order; first hit is the earliest site
			}
		}
		if best == nil {
			break // should not happen: BFS distance guarantees a step down
		}
		if cur == id {
			first = *best
		}
		chain = append(chain, best.Callee)
		cur = best.Callee
	}
	return first, chain
}

// mapOrderReturnPos scans a function body for a return statement inside
// a range-over-map loop whose results mention the loop variables — the
// "pick an arbitrary element" shape. Returns the position of the first
// such return, or NoPos. Function literals are skipped (their returns
// leave the closure, not the function).
func mapOrderReturnPos(pkg *Package, fd *ast.FuncDecl) token.Pos {
	found := token.NoPos
	var walk func(n ast.Node, loopVars map[string]bool)
	walk = func(n ast.Node, loopVars map[string]bool) {
		ast.Inspect(n, func(node ast.Node) bool {
			if found != token.NoPos {
				return false
			}
			switch s := node.(type) {
			case *ast.FuncLit:
				return false
			case *ast.RangeStmt:
				tv, ok := pkg.Info.Types[s.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				vars := map[string]bool{}
				for k, v := range loopVars {
					vars[k] = v
				}
				for _, e := range []ast.Expr{s.Key, s.Value} {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						vars[id.Name] = true
					}
				}
				walk(s.Body, vars)
				return false
			case *ast.ReturnStmt:
				if len(loopVars) == 0 {
					return true
				}
				for _, res := range s.Results {
					for name := range loopVars {
						if mentionsIdent(res, name) {
							found = s.Pos()
							return false
						}
					}
				}
			}
			return true
		})
	}
	walk(fd.Body, map[string]bool{})
	return found
}

// shortFuncID compresses a FuncID's package path to its base for
// readable traces: "(*repro/internal/hdfs.NameNode).journal" becomes
// "(*hdfs.NameNode).journal", "repro/internal/vfs.WriteFile" becomes
// "vfs.WriteFile"; stdlib names like "time.Now" are already short.
func shortFuncID(id FuncID) string {
	s := string(id)
	slash := strings.LastIndex(s, "/")
	if slash < 0 {
		return s
	}
	prefix := ""
	if strings.HasPrefix(s, "(*") {
		prefix = "(*"
	} else if strings.HasPrefix(s, "(") {
		prefix = "("
	}
	return prefix + s[slash+1:]
}

// splitFuncID decomposes a FuncID into package path, receiver ("" for
// package functions, "T" or "*T" for methods) and name, inverting the
// types.Func.FullName rendering.
func splitFuncID(id FuncID) (pkgPath, recv, name string) {
	s := string(id)
	if strings.HasPrefix(s, "(") {
		inner, after, ok := strings.Cut(s[1:], ").")
		if !ok {
			return "", "", s
		}
		star := ""
		if strings.HasPrefix(inner, "*") {
			star, inner = "*", inner[1:]
		}
		dot := strings.LastIndex(inner, ".")
		if dot < 0 {
			return "", star + inner, after
		}
		return inner[:dot], star + inner[dot+1:], after
	}
	slash := strings.LastIndex(s, "/")
	dot := strings.Index(s[slash+1:], ".")
	if dot < 0 {
		return "", "", s
	}
	return s[:slash+1+dot], "", s[slash+1+dot+1:]
}

package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// Lockguard is a heuristic self-deadlock and leaked-lock detector for
// the simple mutex discipline this codebase uses (a struct guards its
// state with a sync.Mutex/RWMutex field). It flags two shapes, scanning
// each method's statements in source order:
//
//   - a method that acquires a mutex field and, while still holding it,
//     calls a sibling method that acquires the same field (instant
//     self-deadlock for sync.Mutex; undefined for RWMutex write locks);
//   - a method that acquires without an immediate deferred release and
//     returns on a path before the unlock — the classic leaked lock on
//     an early error return.
//
// It is deliberately conservative: lock operations inside nested
// function literals are ignored except for "defer func() { unlock }"
// wrappers, and a pure RLock→RLock chain is allowed.
var Lockguard = &Analyzer{
	Name: "lockguard",
	Doc:  "flag methods that re-acquire a held mutex via a sibling call or return while holding it",
	Run:  runLockguard,
}

// lockEvent is one ordered occurrence inside a method body.
type lockEvent struct {
	pos   token.Pos
	kind  string // "lock", "rlock", "unlock", "runlock", "defer-unlock", "defer-runlock", "return", "call"
	field string // mutex field for lock ops; method name for calls
}

const embeddedMutex = "(embedded)"

// mutexFieldsOf scans a package for struct types guarding state with
// sync.Mutex/RWMutex fields, returning type name -> mutex field names
// (embeddedMutex for embedded ones). Shared by lockguard (per-method
// discipline) and lockorder (cross-function ordering).
func mutexFieldsOf(pkg *Package) map[string]map[string]bool {
	mutexFields := map[string]map[string]bool{}
	inspectAll(pkg, func(node ast.Node) bool {
		ts, ok := node.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		for _, f := range st.Fields.List {
			if !isSyncMutexType(pkg, f.Type) {
				continue
			}
			if mutexFields[ts.Name.Name] == nil {
				mutexFields[ts.Name.Name] = map[string]bool{}
			}
			if len(f.Names) == 0 {
				mutexFields[ts.Name.Name][embeddedMutex] = true
			}
			for _, n := range f.Names {
				mutexFields[ts.Name.Name][n.Name] = true
			}
		}
		return true
	})
	return mutexFields
}

func runLockguard(pass *Pass) {
	mutexFields := mutexFieldsOf(pass.Pkg)
	if len(mutexFields) == 0 {
		return
	}

	// Gather methods per guarded type and which fields each one locks.
	type method struct {
		decl   *ast.FuncDecl
		recv   string
		events []lockEvent
	}
	methods := map[string]map[string]*method{} // type -> name -> method
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			tname := recvTypeName(fd.Recv.List[0].Type)
			if mutexFields[tname] == nil {
				continue
			}
			recv := ""
			if len(fd.Recv.List[0].Names) > 0 {
				recv = fd.Recv.List[0].Names[0].Name
			}
			if recv == "" || recv == "_" {
				continue
			}
			m := &method{decl: fd, recv: recv}
			m.events = collectLockEvents(fd.Body, recv, mutexFields[tname])
			if methods[tname] == nil {
				methods[tname] = map[string]*method{}
			}
			methods[tname][fd.Name.Name] = m
		}
	}

	// locksOf reports the fields a method write-locks / read-locks.
	locksOf := func(m *method) (write, read map[string]bool) {
		write, read = map[string]bool{}, map[string]bool{}
		for _, e := range m.events {
			switch e.kind {
			case "lock":
				write[e.field] = true
			case "rlock":
				read[e.field] = true
			}
		}
		return
	}

	tnames := make([]string, 0, len(methods))
	for t := range methods {
		tnames = append(tnames, t)
	}
	sort.Strings(tnames)
	for _, tname := range tnames {
		mnames := make([]string, 0, len(methods[tname]))
		for mn := range methods[tname] {
			mnames = append(mnames, mn)
		}
		sort.Strings(mnames)
		for _, mname := range mnames {
			m := methods[tname][mname]
			held := ""       // mutex field currently held ("" = none)
			heldKind := ""   // "lock" or "rlock"
			deferred := false // a deferred release protects returns
			for _, e := range m.events {
				switch e.kind {
				case "lock", "rlock":
					held, heldKind = e.field, e.kind
					deferred = false
				case "unlock", "runlock":
					if e.field == held {
						held = ""
					}
				case "defer-unlock", "defer-runlock":
					if e.field == held {
						deferred = true
					}
				case "return":
					if held != "" && !deferred {
						pass.Report(e.pos, "return while holding %s.%s with no deferred unlock; the lock leaks on this path", m.recv, printableField(held))
					}
				case "call":
					if held == "" {
						continue
					}
					callee := methods[tname][e.field]
					if callee == nil {
						continue
					}
					w, r := locksOf(callee)
					if w[held] || (r[held] && heldKind == "lock") {
						pass.Report(e.pos, "%s.%s() also acquires %s.%s, which is still held here; self-deadlock", m.recv, e.field, m.recv, printableField(held))
					}
				}
			}
		}
	}
}

func printableField(field string) string {
	if field == embeddedMutex {
		return "Mutex"
	}
	return field
}

// isSyncMutexType reports whether a field type is sync.Mutex/RWMutex,
// by import resolution (handles renamed imports via the file fallback).
func isSyncMutexType(pkg *Package, expr ast.Expr) bool {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "Mutex" && sel.Sel.Name != "RWMutex" {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if x.Name == "sync" {
		return true
	}
	f := fileOf(pkg, expr)
	if f == nil {
		return false
	}
	for _, imp := range f.Imports {
		if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == "sync" &&
			imp.Name != nil && imp.Name.Name == x.Name {
			return true
		}
	}
	return false
}

// recvTypeName returns the named type of a method receiver ("T" for
// both T and *T, including generic receivers).
func recvTypeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	}
	return ""
}

// collectLockEvents walks a method body in source order, recording lock
// operations on recv's mutex fields, returns, and same-receiver method
// calls. Nested function literals are skipped (they run later, if at
// all) except as "defer func() { recv.mu.Unlock() }()" wrappers.
func collectLockEvents(body *ast.BlockStmt, recv string, fields map[string]bool) []lockEvent {
	var events []lockEvent
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(node ast.Node) bool {
			switch s := node.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				if field, op, ok := lockOp(s.Call, recv, fields); ok {
					if op == "unlock" || op == "runlock" {
						events = append(events, lockEvent{pos: s.Pos(), kind: "defer-" + op, field: field})
					}
					return false
				}
				if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
					ast.Inspect(lit.Body, func(inner ast.Node) bool {
						if call, ok := inner.(*ast.CallExpr); ok {
							if field, op, ok := lockOp(call, recv, fields); ok && strings.HasSuffix(op, "unlock") {
								events = append(events, lockEvent{pos: s.Pos(), kind: "defer-" + op, field: field})
							}
						}
						return true
					})
					return false
				}
				return false
			case *ast.ReturnStmt:
				events = append(events, lockEvent{pos: s.Pos(), kind: "return"})
			case *ast.CallExpr:
				if field, op, ok := lockOp(s, recv, fields); ok {
					events = append(events, lockEvent{pos: s.Pos(), kind: op, field: field})
					return false
				}
				if sel, ok := s.Fun.(*ast.SelectorExpr); ok {
					if x, ok := sel.X.(*ast.Ident); ok && x.Name == recv {
						events = append(events, lockEvent{pos: s.Pos(), kind: "call", field: sel.Sel.Name})
					}
				}
			}
			return true
		})
	}
	walk(body)
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	return events
}

// lockOp matches recv.field.Lock()-shaped calls (and recv.Lock() for an
// embedded mutex), returning the field and the operation.
func lockOp(call *ast.CallExpr, recv string, fields map[string]bool) (field, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock":
		op = "lock"
	case "RLock":
		op = "rlock"
	case "Unlock":
		op = "unlock"
	case "RUnlock":
		op = "runlock"
	default:
		return "", "", false
	}
	switch x := sel.X.(type) {
	case *ast.Ident:
		// recv.Lock(): embedded mutex.
		if x.Name == recv && fields[embeddedMutex] {
			return embeddedMutex, op, true
		}
	case *ast.SelectorExpr:
		// recv.field.Lock().
		if base, isIdent := x.X.(*ast.Ident); isIdent && base.Name == recv && fields[x.Sel.Name] {
			return x.Sel.Name, op, true
		}
	}
	return "", "", false
}

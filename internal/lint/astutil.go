package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// hasPathSegment reports whether the import path contains the given
// element (e.g. "internal", "cmd", "sim") as a whole path segment.
func hasPathSegment(importPath, segment string) bool {
	for _, s := range strings.Split(importPath, "/") {
		if s == segment {
			return true
		}
	}
	return false
}

// isCmdPackage reports whether the package is a binary under cmd/.
func isCmdPackage(pkg *Package) bool { return hasPathSegment(pkg.ImportPath, "cmd") }

// isInternalPackage reports whether the package is a library under internal/.
func isInternalPackage(pkg *Package) bool { return hasPathSegment(pkg.ImportPath, "internal") }

// fileOf returns the file containing the node, for import-table fallbacks.
func fileOf(pkg *Package, node ast.Node) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= node.Pos() && node.Pos() <= f.FileEnd {
			return f
		}
	}
	return nil
}

// pkgFuncCall resolves a call of the form pkgname.Func(...) to the
// imported package's path and the function name. It prefers type
// information (which sees through import renames and shadowing) and
// falls back to the file's import table when the checker could not
// resolve the identifier.
func pkgFuncCall(pkg *Package, call *ast.CallExpr) (path, fn string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	x, okX := sel.X.(*ast.Ident)
	if !okX {
		return "", "", false
	}
	if obj, okU := pkg.Info.Uses[x]; okU {
		pn, okP := obj.(*types.PkgName)
		if !okP {
			return "", "", false // a variable or field, not a package qualifier
		}
		return pn.Imported().Path(), sel.Sel.Name, true
	}
	// Fallback: match x against the file's imports by local or base name.
	f := fileOf(pkg, call)
	if f == nil {
		return "", "", false
	}
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		local := p[strings.LastIndex(p, "/")+1:]
		if imp.Name != nil {
			local = imp.Name.Name
		}
		if local == x.Name {
			return p, sel.Sel.Name, true
		}
	}
	return "", "", false
}

// inspectAll walks every file of the package.
func inspectAll(pkg *Package, fn func(ast.Node) bool) {
	for _, f := range pkg.Files {
		ast.Inspect(f, fn)
	}
}

// callSite is one resolved package-level function call.
type callSite struct {
	call *ast.CallExpr
	fn   string
	pos  token.Pos
}

// forEachPkgCall invokes fn for every call to a package-level function
// of the package with the given import path.
func forEachPkgCall(pass *Pass, pkgPath string, fn func(callSite)) {
	inspectAll(pass.Pkg, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if path, name, ok := pkgFuncCall(pass.Pkg, call); ok && path == pkgPath {
			fn(callSite{call: call, fn: name, pos: call.Pos()})
		}
		return true
	})
}

package webui_test

import (
	"net/http"
	"strings"
	"testing"
)

// TestTraceEndpoints mirrors TestEndpoints for the causal-tracing pages:
// the slowest-first index, the bare /trace/ alias, and the unknown-id 404.
func TestTraceEndpoints(t *testing.T) {
	srv := setup(t)
	cases := []struct {
		path        string
		status      int
		contentType string
		wants       []string
	}{
		{"/", http.StatusOK, textPlain, []string{"/traces", "/trace/<id>"}},
		{"/traces", http.StatusOK, textPlain, []string{
			"traces, slowest first", "mr.job", "job=job_wordcount_combiner_0001",
		}},
		{"/trace/", http.StatusOK, textPlain, []string{"traces, slowest first"}},
		{"/trace/t999999-12345", http.StatusNotFound, "", nil},
		{"/trace/not-a-trace", http.StatusNotFound, "", nil},
	}
	for _, tc := range cases {
		code, ct, body := get(t, srv, tc.path)
		if code != tc.status {
			t.Fatalf("%s -> %d, want %d", tc.path, code, tc.status)
		}
		if tc.contentType != "" && ct != tc.contentType {
			t.Fatalf("%s content-type = %q, want %q", tc.path, ct, tc.contentType)
		}
		for _, want := range tc.wants {
			if !strings.Contains(body, want) {
				t.Fatalf("%s missing %q:\n%s", tc.path, want, body)
			}
		}
	}
}

// TestTraceWaterfall opens the job's trace from the index and checks the
// waterfall nests the full causal chain — job, task, attempt, and the
// HDFS spans under it — plus the critical path and blame sections.
func TestTraceWaterfall(t *testing.T) {
	srv := setup(t)
	_, _, index := get(t, srv, "/traces")
	var id string
	for _, line := range strings.Split(index, "\n") {
		f := strings.Fields(line)
		if len(f) > 0 && strings.HasPrefix(f[0], "t") && strings.Contains(line, "mr.job") {
			id = f[0]
			break
		}
	}
	if id == "" {
		t.Fatalf("no mr.job trace on the index:\n%s", index)
	}
	code, ct, body := get(t, srv, "/trace/"+id)
	if code != http.StatusOK || ct != textPlain {
		t.Fatalf("/trace/%s -> %d %q", id, code, ct)
	}
	for _, want := range []string{
		"trace " + id,
		"mr.job",
		"  mr.task",           // nested one level under the job
		"    mr.map_attempt",  // nested under its task
		"hdfs.write_pipeline", // the cross-layer leaves
		"mr.shuffle",
		"Critical path",
		"Blame",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/trace/%s missing %q:\n%s", id, want, body)
		}
	}
}

package webui

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// TracesPage lists every recorded trace, slowest first — the index the
// "trace the straggler" lab starts from.
func TracesPage(reg *obs.Registry) string {
	sums := trace.Slowest(trace.Summaries(trace.Collect(reg)), 0)
	if len(sums) == 0 {
		return "no traces recorded yet\n"
	}
	var b strings.Builder
	b.WriteString("traces, slowest first (open /trace/<id>):\n")
	for _, s := range sums {
		name := s.Root.Name
		if name == "" {
			name = "(root span not recorded)"
		}
		fmt.Fprintf(&b, "  %-22s %-20s %10v  %3d span(s)%s\n",
			s.ID, name, s.Duration.Round(time.Millisecond), s.Spans,
			attrSummary(s.Root.Attrs))
	}
	return b.String()
}

// attrSummary picks the identity attr worth showing on an index line.
func attrSummary(attrs map[string]string) string {
	for _, k := range []string{"job", "op", "block", "region", "app"} {
		if v, ok := attrs[k]; ok && v != "" {
			return "  " + k + "=" + v
		}
	}
	return ""
}

// TraceWaterfallPage renders one trace: a gantt waterfall of its span
// tree (same bar renderer as /timeline and /history), then the
// cross-layer critical path and blame table. Unknown IDs error — the
// handler turns that into a 404.
func TraceWaterfallPage(reg *obs.Registry, id string) (string, error) {
	spans := reg.SpansTraced(obs.TraceID(id))
	if len(spans) == 0 {
		return "", fmt.Errorf("webui: unknown trace %q", id)
	}
	origin, last := spans[0].Start, spans[0].End
	for _, s := range spans {
		if s.Start < origin {
			origin = s.Start
		}
		if s.End > last {
			last = s.End
		}
	}
	width := last - origin
	if width <= 0 {
		width = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s — %d span(s), %v\n\n", id, len(spans),
		width.Round(time.Millisecond))
	roots := trace.Build(spans)
	var walk func(n *trace.Node, depth int)
	walk = func(n *trace.Node, depth int) {
		s := n.Span
		label := strings.Repeat("  ", depth) + s.Name
		node := s.Attrs["node"]
		fmt.Fprintf(&b, "|%s| %-34s %-10s %v\n",
			ganttBar(s.Start, s.End, origin, width), label, node,
			s.Duration().Round(time.Millisecond))
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	// The critical path descends from the longest root (a trace whose
	// parent spans never recorded can have several).
	best := roots[0]
	for _, r := range roots {
		if r.Span.Duration() > best.Span.Duration() {
			best = r
		}
	}
	steps := trace.CriticalPath(best)
	b.WriteByte('\n')
	b.WriteString(trace.RenderCriticalPath(steps))
	b.WriteByte('\n')
	b.WriteString(trace.RenderBlame(trace.BlameTable(steps)))
	return b.String(), nil
}

// Package webui serves the cluster's status pages over HTTP — the
// NameNode and JobTracker "web interfaces" the paper's students tunneled
// SSH connections to reach in Fall 2012. Pages are plain text renders of
// live cluster state:
//
//	/            index
//	/dfshealth   NameNode status (live/dead nodes, blocks, safe mode)
//	/jobtracker  JobTracker status (slots, jobs, per-tracker state)
//	/fsck        filesystem audit
//	/topology    the Figure-2 component diagram
//	/counters    counters of the most recently completed job
package webui

import (
	"fmt"
	"net/http"

	"repro/internal/core"
)

// Handler returns an http.Handler exposing the cluster's status pages.
//
// Concurrency note: the simulation is single-threaded; serve from the
// same goroutine that drives the engine (or a quiesced cluster, as the
// teaching flows do — run the job, then browse the aftermath).
func Handler(c *core.MiniCluster) http.Handler {
	mux := http.NewServeMux()
	text := func(fn func() (string, error)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			body, err := fn()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, body)
		}
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, `minihadoop cluster
  /dfshealth   NameNode status
  /jobtracker  JobTracker status
  /fsck        filesystem audit
  /topology    component diagram (Figure 2)
  /counters    last completed job's counters
`)
	})
	mux.Handle("/dfshealth", text(func() (string, error) { return c.DFS.StatusPage(), nil }))
	mux.Handle("/jobtracker", text(func() (string, error) { return c.MR.StatusPage(), nil }))
	mux.Handle("/topology", text(func() (string, error) { return c.RenderTopology(), nil }))
	mux.Handle("/fsck", text(func() (string, error) {
		rep, err := c.Fsck()
		if err != nil {
			return "", err
		}
		return rep.String(), nil
	}))
	mux.Handle("/counters", text(func() (string, error) {
		ctrs := c.MR.JT.CompletedJobCounters()
		if ctrs == nil {
			return "no completed jobs yet\n", nil
		}
		return ctrs.String(), nil
	}))
	return mux
}

// Package webui serves the cluster's status pages over HTTP — the
// NameNode and JobTracker "web interfaces" the paper's students tunneled
// SSH connections to reach in Fall 2012. Pages are plain text renders of
// live cluster state:
//
//	/            index
//	/dfshealth   NameNode status (live/dead nodes, blocks, safe mode)
//	/jobtracker  JobTracker status (slots, jobs, per-tracker state)
//	/fsck        filesystem audit
//	/topology    the Figure-2 component diagram
//	/scheduler   YARN ResourceManager status (queues, apps, node pool)
//	/serving     region-server tier status (regions, heat, cache, recovery)
//	/counters    counters of the most recently completed job
//	/metrics     the full obs snapshot as JSON (counters, gauges, spans)
//	/timeline    per-job task-attempt timeline from the recorded spans
//	/history     persisted job histories (the history server)
//	/traces      recorded traces, slowest first
//	/trace/<id>  one trace's waterfall, critical path and blame
package webui

import (
	"fmt"
	"net/http"
	"path"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/mrcluster"
	"repro/internal/obs"
	"repro/internal/vfs"
)

// Handler returns an http.Handler exposing the cluster's status pages.
//
// Concurrency note: the simulation is single-threaded; serve from the
// same goroutine that drives the engine (or a quiesced cluster, as the
// teaching flows do — run the job, then browse the aftermath).
func Handler(c *core.MiniCluster) http.Handler {
	mux := http.NewServeMux()
	text := func(fn func() (string, error)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			body, err := fn()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, body)
		}
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, `minihadoop cluster
  /dfshealth   NameNode status
  /jobtracker  JobTracker status
  /fsck        filesystem audit
  /topology    component diagram (Figure 2)
  /scheduler   YARN ResourceManager status (queues, apps, node pool)
  /serving     region-server tier status (regions, heat, cache, recovery)
  /counters    last completed job's counters
  /metrics     cluster metrics + spans (JSON snapshot)
  /timeline    per-job task-attempt timeline
  /history     persisted job histories (history server)
  /traces      recorded traces, slowest first
  /trace/<id>  one trace's waterfall, critical path and blame
`)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := c.Obs.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/timeline", text(func() (string, error) { return TimelinePage(c.Obs), nil }))
	mux.Handle("/dfshealth", text(func() (string, error) { return c.DFS.StatusPage(), nil }))
	mux.Handle("/jobtracker", text(func() (string, error) { return c.MR.StatusPage(), nil }))
	mux.Handle("/topology", text(func() (string, error) { return c.RenderTopology(), nil }))
	mux.Handle("/scheduler", text(func() (string, error) {
		if c.RM == nil {
			return "YARN is not enabled on this cluster (set Options.YARN)\n", nil
		}
		return c.RM.StatusPage(), nil
	}))
	mux.Handle("/serving", text(func() (string, error) {
		if c.Serving == nil {
			return "the serving tier is not enabled on this cluster (set Options.Serving)\n", nil
		}
		return c.Serving.StatusPage(), nil
	}))
	mux.Handle("/fsck", text(func() (string, error) {
		rep, err := c.Fsck()
		if err != nil {
			return "", err
		}
		return rep.String(), nil
	}))
	mux.Handle("/counters", text(func() (string, error) {
		ctrs := c.MR.JT.CompletedJobCounters()
		if ctrs == nil {
			return "no completed jobs yet\n", nil
		}
		return ctrs.String(), nil
	}))
	mux.Handle("/traces", text(func() (string, error) { return TracesPage(c.Obs), nil }))
	mux.HandleFunc("/trace/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/trace/")
		if id == "" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, TracesPage(c.Obs))
			return
		}
		body, err := TraceWaterfallPage(c.Obs, id)
		if err != nil {
			// No trace with that id — mirror the history server's 404.
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, body)
	})
	mux.Handle("/history", text(func() (string, error) { return HistoryIndexPage(c.FS()), nil }))
	mux.HandleFunc("/history/", func(w http.ResponseWriter, r *http.Request) {
		jobID := strings.TrimPrefix(r.URL.Path, "/history/")
		if jobID == "" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, HistoryIndexPage(c.FS()))
			return
		}
		body, err := HistoryJobPage(c.FS(), jobID)
		if err != nil {
			// No history file for that id — the history-server 404.
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, body)
	})
	return mux
}

// HistoryIndexPage lists the job histories persisted under /history in
// HDFS — the history server's front page.
func HistoryIndexPage(fs vfs.FileSystem) string {
	infos, err := fs.List(history.Root)
	if err != nil || len(infos) == 0 {
		return "no job history yet\n"
	}
	var b strings.Builder
	b.WriteString("job history (open /history/<jobid>):\n")
	for _, fi := range infos {
		if fi.IsDir {
			fmt.Fprintf(&b, "  %s\n", path.Base(fi.Path))
		}
	}
	return b.String()
}

// HistoryJobPage renders one persisted job history: the critical-path
// analysis followed by a per-attempt gantt on the job's own time axis
// (the same renderer as /timeline, but rebuilt from the durable file
// rather than live spans).
func HistoryJobPage(fs vfs.FileSystem, jobID string) (string, error) {
	data, err := vfs.ReadFile(fs, history.EventsPath(jobID))
	if err != nil {
		return "", err
	}
	evs, err := history.Parse(data)
	if err != nil {
		return "", err
	}
	rep, err := history.BuildJobReport(evs)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(rep.AnalysisString())
	b.WriteString("\nTimeline (rebuilt from the history file):\n")
	span := rep.Makespan()
	if span <= 0 {
		span = 1
	}
	for _, a := range rep.Attempts {
		end := a.End
		if end < a.Start {
			end = a.Start
		}
		kind := a.Kind
		if kind == "map" {
			kind = "map   "
		}
		tags := a.Outcome
		if a.Speculative {
			tags += ",speculative"
		}
		if a.Locality >= 0 {
			tags += fmt.Sprintf(",locality=%d", a.Locality)
		}
		fmt.Fprintf(&b, "%s |%s| %-34s %-8s %v %s\n",
			kind, ganttBar(a.Start, end, rep.Submitted, span), a.ID, a.Node,
			a.Duration().Round(time.Millisecond), tags)
	}
	return b.String(), nil
}

// timelineWidth is the character width of the rendered span bars.
const timelineWidth = 60

// ganttBar renders one timelineWidth-character bar for [start, end] on a
// time axis beginning at origin and spanning span. Shared by /timeline
// (live spans) and /history/<jobid> (rebuilt from the history file).
func ganttBar(start, end, origin, span time.Duration) string {
	lo := int(timelineWidth * (start - origin) / span)
	hi := int(timelineWidth * (end - origin) / span)
	if lo < 0 {
		lo = 0
	}
	if lo > timelineWidth-1 {
		lo = timelineWidth - 1
	}
	if hi > timelineWidth {
		hi = timelineWidth
	}
	if hi <= lo {
		hi = lo + 1
	}
	return strings.Repeat(" ", lo) + strings.Repeat("#", hi-lo) +
		strings.Repeat(" ", timelineWidth-hi)
}

// TimelinePage renders a per-job gantt view of the recorded task-attempt
// spans: one section per finished job, one bar per attempt, positioned on
// the job's own time axis. This is the page lab exercises read to see
// where a job's time went (see docs/OBSERVABILITY.md).
func TimelinePage(reg *obs.Registry) string {
	jobs := reg.SpansNamed(mrcluster.SpanJob)
	if len(jobs) == 0 {
		return "no completed jobs yet\n"
	}
	// Index attempt spans by the job id they carry in their attrs.
	attempts := map[string][]obs.Span{}
	for _, s := range reg.Spans() {
		if s.Name == mrcluster.SpanMapAttempt || s.Name == mrcluster.SpanReduceAttempt {
			attempts[s.Attrs["job"]] = append(attempts[s.Attrs["job"]], s)
		}
	}
	var b strings.Builder
	for _, job := range jobs {
		id := job.Attrs["job"]
		fmt.Fprintf(&b, "=== %s (%s) %s — start %v, ran %v ===\n",
			id, job.Attrs["name"], job.Attrs["outcome"],
			job.Start.Round(time.Millisecond), job.Duration().Round(time.Millisecond))
		spans := append([]obs.Span(nil), attempts[id]...)
		sort.SliceStable(spans, func(i, j int) bool {
			if spans[i].Start != spans[j].Start {
				return spans[i].Start < spans[j].Start
			}
			return spans[i].Attrs["attempt"] < spans[j].Attrs["attempt"]
		})
		span := job.Duration()
		if span <= 0 {
			span = 1
		}
		for _, s := range spans {
			bar := ganttBar(s.Start, s.End, job.Start, span)
			kind := "reduce"
			if s.Name == mrcluster.SpanMapAttempt {
				kind = "map   "
			}
			tags := s.Attrs["outcome"]
			if s.Attrs["speculative"] == "true" {
				tags += ",speculative"
			}
			if l, ok := s.Attrs["locality"]; ok {
				tags += ",locality=" + l
			}
			fmt.Fprintf(&b, "%s |%s| %-28s %-8s %v %s\n",
				kind, bar, s.Attrs["attempt"], s.Attrs["node"],
				s.Duration().Round(time.Millisecond), tags)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Package webui serves the cluster's status pages over HTTP — the
// NameNode and JobTracker "web interfaces" the paper's students tunneled
// SSH connections to reach in Fall 2012. Pages are plain text renders of
// live cluster state:
//
//	/            index
//	/dfshealth   NameNode status (live/dead nodes, blocks, safe mode)
//	/jobtracker  JobTracker status (slots, jobs, per-tracker state)
//	/fsck        filesystem audit
//	/topology    the Figure-2 component diagram
//	/counters    counters of the most recently completed job
//	/metrics     the full obs snapshot as JSON (counters, gauges, spans)
//	/timeline    per-job task-attempt timeline from the recorded spans
package webui

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/mrcluster"
	"repro/internal/obs"
)

// Handler returns an http.Handler exposing the cluster's status pages.
//
// Concurrency note: the simulation is single-threaded; serve from the
// same goroutine that drives the engine (or a quiesced cluster, as the
// teaching flows do — run the job, then browse the aftermath).
func Handler(c *core.MiniCluster) http.Handler {
	mux := http.NewServeMux()
	text := func(fn func() (string, error)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			body, err := fn()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, body)
		}
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, `minihadoop cluster
  /dfshealth   NameNode status
  /jobtracker  JobTracker status
  /fsck        filesystem audit
  /topology    component diagram (Figure 2)
  /counters    last completed job's counters
  /metrics     cluster metrics + spans (JSON snapshot)
  /timeline    per-job task-attempt timeline
`)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := c.Obs.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/timeline", text(func() (string, error) { return TimelinePage(c.Obs), nil }))
	mux.Handle("/dfshealth", text(func() (string, error) { return c.DFS.StatusPage(), nil }))
	mux.Handle("/jobtracker", text(func() (string, error) { return c.MR.StatusPage(), nil }))
	mux.Handle("/topology", text(func() (string, error) { return c.RenderTopology(), nil }))
	mux.Handle("/fsck", text(func() (string, error) {
		rep, err := c.Fsck()
		if err != nil {
			return "", err
		}
		return rep.String(), nil
	}))
	mux.Handle("/counters", text(func() (string, error) {
		ctrs := c.MR.JT.CompletedJobCounters()
		if ctrs == nil {
			return "no completed jobs yet\n", nil
		}
		return ctrs.String(), nil
	}))
	return mux
}

// timelineWidth is the character width of the rendered span bars.
const timelineWidth = 60

// TimelinePage renders a per-job gantt view of the recorded task-attempt
// spans: one section per finished job, one bar per attempt, positioned on
// the job's own time axis. This is the page lab exercises read to see
// where a job's time went (see docs/OBSERVABILITY.md).
func TimelinePage(reg *obs.Registry) string {
	jobs := reg.SpansNamed(mrcluster.SpanJob)
	if len(jobs) == 0 {
		return "no completed jobs yet\n"
	}
	// Index attempt spans by the job id they carry in their attrs.
	attempts := map[string][]obs.Span{}
	for _, s := range reg.Spans() {
		if s.Name == mrcluster.SpanMapAttempt || s.Name == mrcluster.SpanReduceAttempt {
			attempts[s.Attrs["job"]] = append(attempts[s.Attrs["job"]], s)
		}
	}
	var b strings.Builder
	for _, job := range jobs {
		id := job.Attrs["job"]
		fmt.Fprintf(&b, "=== %s (%s) %s — start %v, ran %v ===\n",
			id, job.Attrs["name"], job.Attrs["outcome"],
			job.Start.Round(time.Millisecond), job.Duration().Round(time.Millisecond))
		spans := append([]obs.Span(nil), attempts[id]...)
		sort.SliceStable(spans, func(i, j int) bool {
			if spans[i].Start != spans[j].Start {
				return spans[i].Start < spans[j].Start
			}
			return spans[i].Attrs["attempt"] < spans[j].Attrs["attempt"]
		})
		span := job.Duration()
		if span <= 0 {
			span = 1
		}
		for _, s := range spans {
			lo := int(timelineWidth * (s.Start - job.Start) / span)
			hi := int(timelineWidth * (s.End - job.Start) / span)
			if lo < 0 {
				lo = 0
			}
			if hi > timelineWidth {
				hi = timelineWidth
			}
			if hi <= lo {
				hi = lo + 1
			}
			bar := strings.Repeat(" ", lo) + strings.Repeat("#", hi-lo) +
				strings.Repeat(" ", timelineWidth-hi)
			kind := "reduce"
			if s.Name == mrcluster.SpanMapAttempt {
				kind = "map   "
			}
			tags := s.Attrs["outcome"]
			if s.Attrs["speculative"] == "true" {
				tags += ",speculative"
			}
			if l, ok := s.Attrs["locality"]; ok {
				tags += ",locality=" + l
			}
			fmt.Fprintf(&b, "%s |%s| %-28s %-8s %v %s\n",
				kind, bar, s.Attrs["attempt"], s.Attrs["node"],
				s.Duration().Round(time.Millisecond), tags)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

package webui_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/hdfs"
	"repro/internal/jobs"
	"repro/internal/webui"
)

func setup(t *testing.T) *httptest.Server {
	t.Helper()
	c, err := core.New(core.Options{Nodes: 4, Seed: 6, HDFS: hdfs.Config{BlockSize: 64 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := datagen.Text(c.FS(), "/in/corpus.txt", datagen.TextOpts{Lines: 500, Seed: 6}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(jobs.WordCount("/in", "/out", true)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(webui.Handler(c))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestPages(t *testing.T) {
	srv := setup(t)
	cases := map[string][]string{
		"/":           {"/dfshealth", "/jobtracker"},
		"/dfshealth":  {"Live nodes: 4", "Blocks:"},
		"/jobtracker": {"SUCCEEDED", "TaskTrackers: 4/4 alive"},
		"/fsck":       {"is HEALTHY"},
		"/topology":   {"[NameNode]", "blk_"},
		"/counters":   {"MAP_INPUT_RECORDS", "SHUFFLE_BYTES"},
		"/metrics":    {`"hdfs.nn.blocks_allocated"`, `"mr.jt.jobs_succeeded"`, `"mr.job"`},
		"/timeline":   {"job_wordcount", "succeeded", "map    |", "locality="},
	}
	for path, wants := range cases {
		code, body := get(t, srv, path)
		if code != http.StatusOK {
			t.Fatalf("%s -> %d", path, code)
		}
		for _, want := range wants {
			if !strings.Contains(body, want) {
				t.Fatalf("%s missing %q:\n%s", path, want, body)
			}
		}
	}
}

func TestNotFound(t *testing.T) {
	srv := setup(t)
	code, _ := get(t, srv, "/nope")
	if code != http.StatusNotFound {
		t.Fatalf("unknown path -> %d", code)
	}
}

func TestCountersBeforeAnyJob(t *testing.T) {
	c, err := core.New(core.Options{Nodes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(webui.Handler(c))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/counters")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "no completed jobs") {
		t.Fatalf("counters page: %s", body)
	}
}

package webui_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/hdfs"
	"repro/internal/jobs"
	"repro/internal/regionserver"
	"repro/internal/webui"
	"repro/internal/yarn"
)

func setup(t *testing.T) *httptest.Server {
	t.Helper()
	c, err := core.New(core.Options{Nodes: 4, Seed: 6, HDFS: hdfs.Config{BlockSize: 64 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := datagen.Text(c.FS(), "/in/corpus.txt", datagen.TextOpts{Lines: 500, Seed: 6}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(jobs.WordCount("/in", "/out", true)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(webui.Handler(c))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, srv *httptest.Server, path string) (code int, contentType, body string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(b)
}

const (
	textPlain = "text/plain; charset=utf-8"
	appJSON   = "application/json; charset=utf-8"
)

func TestEndpoints(t *testing.T) {
	srv := setup(t)
	cases := []struct {
		path        string
		status      int
		contentType string
		wants       []string
	}{
		{"/", http.StatusOK, textPlain, []string{"/dfshealth", "/jobtracker", "/history"}},
		{"/dfshealth", http.StatusOK, textPlain, []string{"Live nodes: 4", "Blocks:"}},
		{"/jobtracker", http.StatusOK, textPlain, []string{"SUCCEEDED", "TaskTrackers: 4/4 alive"}},
		{"/fsck", http.StatusOK, textPlain, []string{"is HEALTHY"}},
		{"/topology", http.StatusOK, textPlain, []string{"[NameNode]", "blk_"}},
		{"/counters", http.StatusOK, textPlain, []string{"MAP_INPUT_RECORDS", "SHUFFLE_BYTES"}},
		{"/metrics", http.StatusOK, appJSON, []string{
			`"hdfs.nn.blocks_allocated"`, `"mr.jt.jobs_succeeded"`, `"mr.job"`,
			`"history.audit_events"`, `"history.job_events"`, `"history.files_persisted"`,
		}},
		{"/timeline", http.StatusOK, textPlain, []string{"job_wordcount", "succeeded", "map    |", "locality="}},
		{"/history", http.StatusOK, textPlain, []string{"job_wordcount_combiner_0001"}},
		{"/history/", http.StatusOK, textPlain, []string{"job_wordcount_combiner_0001"}},
		{"/history/job_wordcount_combiner_0001", http.StatusOK, textPlain, []string{
			"Job job_wordcount_combiner_0001 (wordcount-combiner) SUCCEEDED",
			"Critical path",
			"Slowest",
			"Per-node successful attempts",
			"Timeline (rebuilt from the history file)",
		}},
		{"/scheduler", http.StatusOK, textPlain, []string{"YARN is not enabled"}},
		{"/serving", http.StatusOK, textPlain, []string{"serving tier is not enabled"}},
		{"/history/job_missing_9999", http.StatusNotFound, "", nil},
		{"/nope", http.StatusNotFound, "", nil},
	}
	for _, tc := range cases {
		code, ct, body := get(t, srv, tc.path)
		if code != tc.status {
			t.Fatalf("%s -> %d, want %d", tc.path, code, tc.status)
		}
		if tc.contentType != "" && ct != tc.contentType {
			t.Fatalf("%s content-type = %q, want %q", tc.path, ct, tc.contentType)
		}
		for _, want := range tc.wants {
			if !strings.Contains(body, want) {
				t.Fatalf("%s missing %q:\n%s", tc.path, want, body)
			}
		}
	}
}

// TestSchedulerPage runs a job on a YARN-backed cluster and checks the
// ResourceManager status page renders the queue table and RM counters.
func TestSchedulerPage(t *testing.T) {
	c, err := core.New(core.Options{
		Nodes: 4, Seed: 6,
		HDFS: hdfs.Config{BlockSize: 64 << 10},
		YARN: &yarn.CapacityOptions{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := datagen.Text(c.FS(), "/in/corpus.txt", datagen.TextOpts{Lines: 500, Seed: 6}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(jobs.WordCount("/in", "/out", true)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(webui.Handler(c))
	defer srv.Close()
	code, ct, body := get(t, srv, "/scheduler")
	if code != http.StatusOK || ct != textPlain {
		t.Fatalf("/scheduler -> %d %q", code, ct)
	}
	for _, want := range []string{"Resource Manager", "Node pool: 4/4 nodes active", "root.default", "Containers launched:"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/scheduler missing %q:\n%s", want, body)
		}
	}
}

// TestServingPage enables the region-server tier, serves a little
// traffic, and checks the /serving status page renders the server table,
// region layout and cache counters.
func TestServingPage(t *testing.T) {
	c, err := core.New(core.Options{
		Nodes: 6, Seed: 6,
		Serving: &regionserver.Options{Servers: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Serving.Stop()
	if err := c.Serving.Master.CreateTable("usertable", []string{"g", "n"}); err != nil {
		t.Fatal(err)
	}
	cl := c.Serving.NewCachedClient(4, 64)
	now := c.Engine.Now()
	for _, k := range []string{"alpha", "golf", "zulu"} {
		if _, err := cl.Put(now, "usertable", k, []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ { // misses then hits
		if _, _, err := cl.Get(now, "usertable", "alpha"); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(webui.Handler(c))
	defer srv.Close()
	code, ct, body := get(t, srv, "/serving")
	if code != http.StatusOK || ct != textPlain {
		t.Fatalf("/serving -> %d %q", code, ct)
	}
	for _, want := range []string{"rs1", "Table usertable (3 regions)", "META check: ok", "Hottest regions"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/serving missing %q:\n%s", want, body)
		}
	}
}

func TestPagesBeforeAnyJob(t *testing.T) {
	c, err := core.New(core.Options{Nodes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(webui.Handler(c))
	defer srv.Close()
	for path, want := range map[string]string{
		"/counters": "no completed jobs",
		"/history":  "no job history yet",
	} {
		code, _, body := get(t, srv, path)
		if code != http.StatusOK {
			t.Fatalf("%s -> %d", path, code)
		}
		if !strings.Contains(body, want) {
			t.Fatalf("%s: %s", path, body)
		}
	}
}

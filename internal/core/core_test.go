package core_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/hdfs"
	"repro/internal/jobs"
	"repro/internal/vfs"
)

func TestQuickstartFlow(t *testing.T) {
	c, err := core.New(core.Options{Nodes: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	truth, _, err := datagen.Text(c.FS(), "/user/student/input/corpus.txt", datagen.TextOpts{Lines: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(jobs.WordCount("/user/student/input", "/user/student/out", true))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Fatal("job failed")
	}
	out, err := c.Output("/user/student/out")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "the\t") {
		t.Fatalf("output missing 'the':\n%.300s", out)
	}
	_ = truth
}

func TestShellIntegration(t *testing.T) {
	c, err := core.New(core.Options{Nodes: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	local := vfs.NewMemFS()
	if err := vfs.WriteFile(local, "/data.txt", []byte("x y z\n")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sh := c.Shell(local, &buf)
	if err := sh.RunScript("-mkdir /user\n-put /data.txt /user/data.txt\n-fsck /"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "is HEALTHY") {
		t.Fatalf("shell transcript:\n%s", buf.String())
	}
}

func TestRenderTopologyShowsComponents(t *testing.T) {
	c, err := core.New(core.Options{Nodes: 4, Seed: 5, HDFS: coreHDFSSmallBlocks()})
	if err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(c.FS(), "/data/f.txt", make([]byte, 3000)); err != nil {
		t.Fatal(err)
	}
	top := c.RenderTopology()
	for _, want := range []string{
		"[NameNode]", "[JobTracker]",
		"f.txt (3000 bytes, 3 block(s)",
		"DataNode[up] TaskTracker[up]",
		"blk_", "node000",
	} {
		if !strings.Contains(top, want) {
			t.Fatalf("topology missing %q:\n%s", want, top)
		}
	}
}

func TestDefaultsMatchPaperCluster(t *testing.T) {
	c, err := core.New(core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Topology.Len() != 8 {
		t.Fatalf("default nodes = %d", c.Topology.Len())
	}
	n := c.Topology.Node(0)
	if n.Cores != 16 || n.RAMBytes != 64<<30 || n.DiskBytes != 850<<30 {
		t.Fatalf("node resources: %+v", n)
	}
	if c.DFS.NN.Config().Replication != 3 {
		t.Fatalf("default replication = %d", c.DFS.NN.Config().Replication)
	}
}

func coreHDFSSmallBlocks() hdfs.Config { return hdfs.Config{BlockSize: 1024} }

func TestMetadataPersistenceThroughFacade(t *testing.T) {
	meta := vfs.NewMemFS()
	c, err := core.New(core.Options{Nodes: 4, Seed: 9, MetadataFS: meta})
	if err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(c.FS(), "/data/f.txt", []byte("persist me")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DFS.NN.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if !vfs.Exists(meta, "/dfs/name/current/fsimage") {
		t.Fatal("fsimage not written through the facade")
	}
}

package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/vfs"
)

// Example shows the whole teaching flow: build a cluster, stage data into
// HDFS, run a job, read the answer.
func Example() {
	c, err := core.New(core.Options{Nodes: 4, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if err := vfs.WriteFile(c.FS(), "/in/f.txt", []byte("hdfs mapreduce hdfs\n")); err != nil {
		log.Fatal(err)
	}
	rep, err := c.Run(jobs.WordCount("/in", "/out", true))
	if err != nil {
		log.Fatal(err)
	}
	out, err := c.Output("/out")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failed=%v\n%s", rep.Failed, out)
	// Output:
	// failed=false
	// hdfs	2
	// mapreduce	1
}

// ExampleMiniCluster_Shell drives the hadoop-fs command set.
func ExampleMiniCluster_Shell() {
	c, err := core.New(core.Options{Nodes: 4, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	local := vfs.NewMemFS()
	if err := vfs.WriteFile(local, "/home/data.txt", []byte("abc")); err != nil {
		log.Fatal(err)
	}
	sh := c.Shell(local, printfWriter{})
	if err := sh.RunScript("-mkdir /user\n-put /home/data.txt /user/data.txt\n-stat /user/data.txt"); err != nil {
		log.Fatal(err)
	}
	// Output:
	// $ hadoop fs -mkdir /user
	// $ hadoop fs -put /home/data.txt /user/data.txt
	// copied 3 bytes: /home/data.txt -> /user/data.txt
	// $ hadoop fs -stat /user/data.txt
	// /user/data.txt: regular file, 3 bytes, replication 3, block size 2097152
}

type printfWriter struct{}

func (printfWriter) Write(p []byte) (int, error) {
	fmt.Print(string(p))
	return len(p), nil
}

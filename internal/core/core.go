// Package core is the public facade of the minihadoop teaching stack: one
// call builds a complete simulated Hadoop cluster — topology, HDFS,
// MapReduce runtime — ready for data staging and job submission. It is
// the API the examples, the command-line tools and the experiment harness
// all build on.
package core

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/mapreduce"
	"repro/internal/mrcluster"
	"repro/internal/obs"
	"repro/internal/regionserver"
	"repro/internal/shell"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/yarn"
)

// Options configures a MiniCluster. The zero value gives the paper's
// dedicated teaching cluster: 8 nodes in one rack, dual 8-core CPUs,
// 64 GB RAM, 850 GB local disk, 3-way replication.
type Options struct {
	Nodes int
	Racks int
	Seed  int64
	HDFS  hdfs.Config
	MR    mrcluster.Config
	// Cost overrides the default hardware cost model.
	Cost *cluster.CostModel
	// MetadataFS, when set, persists the NameNode namespace (fsimage +
	// edit log) for cold-start recovery.
	MetadataFS vfs.FileSystem
	// YARN, when set, builds a capacity ResourceManager over the cluster
	// and runs the JobTracker as a YARN application: jobs negotiate task
	// containers through capacity queues instead of per-node slots.
	YARN *yarn.CapacityOptions
	// Serving, when set, starts the online-serving tier (region servers +
	// master) on the cluster nodes, sharing the engine and obs registry.
	// Region data lives on its own in-memory store, standing in for the
	// serving tier's HDFS-backed store files.
	Serving *regionserver.Options
}

// MiniCluster is a fully assembled simulated Hadoop deployment.
type MiniCluster struct {
	Engine   *sim.Engine
	Topology *cluster.Topology
	DFS      *hdfs.MiniDFS
	MR       *mrcluster.MRCluster
	// RM is the YARN capacity ResourceManager (nil unless Options.YARN).
	RM *yarn.ResourceManager
	// Serving is the online region-server tier (nil unless
	// Options.Serving).
	Serving *regionserver.Cluster
	// Obs is the cluster-wide observability registry: every metric and
	// span the HDFS and MapReduce layers emit lands here.
	Obs *obs.Registry
}

// New builds and starts a cluster.
func New(opts Options) (*MiniCluster, error) {
	if opts.Nodes <= 0 {
		opts.Nodes = 8
	}
	if opts.Racks <= 0 {
		opts.Racks = 1
	}
	eng := sim.NewEngine()
	topo := cluster.NewTopology(cluster.PaperNodeConfig(opts.Nodes, opts.Racks))
	dfs, err := hdfs.NewMiniDFS(eng, topo, hdfs.Options{
		Config:     opts.HDFS,
		Seed:       opts.Seed,
		Cost:       opts.Cost,
		MetadataFS: opts.MetadataFS,
	})
	if err != nil {
		return nil, err
	}
	var rm *yarn.ResourceManager
	if opts.YARN != nil {
		yopts := *opts.YARN
		if yopts.Obs == nil {
			yopts.Obs = dfs.Obs
		}
		rm, err = yarn.NewCapacityResourceManager(eng, topo, yopts)
		if err != nil {
			return nil, err
		}
		opts.MR.YARN = rm
	}
	mc := mrcluster.NewMRCluster(dfs, opts.MR, opts.Seed+1)
	var serving *regionserver.Cluster
	if opts.Serving != nil {
		sopts := *opts.Serving
		if sopts.Obs == nil {
			sopts.Obs = dfs.Obs
		}
		serving, err = regionserver.New(eng, vfs.NewMemFS(), topo, sopts)
		if err != nil {
			return nil, err
		}
	}
	return &MiniCluster{Engine: eng, Topology: topo, DFS: dfs, MR: mc, RM: rm, Serving: serving, Obs: dfs.Obs}, nil
}

// FS returns a gateway (off-cluster) HDFS client — the login node view.
func (c *MiniCluster) FS() *hdfs.Client { return c.DFS.Client(hdfs.GatewayNode) }

// NodeFS returns an HDFS client located on a cluster node.
func (c *MiniCluster) NodeFS(id cluster.NodeID) *hdfs.Client { return c.DFS.Client(id) }

// Run submits a job and drives the simulation to completion.
func (c *MiniCluster) Run(job *mapreduce.Job) (*mrcluster.Report, error) {
	return c.MR.Run(job)
}

// Shell returns an fs-command shell over the cluster, with local as the
// other side of put/get.
func (c *MiniCluster) Shell(local vfs.FileSystem, out io.Writer) *shell.Shell {
	return &shell.Shell{FS: c.FS(), Local: local, Out: out, User: "student"}
}

// Fsck audits the whole filesystem.
func (c *MiniCluster) Fsck() (*hdfs.FsckReport, error) { return c.DFS.Fsck() }

// Output reads back a completed job's concatenated part files.
func (c *MiniCluster) Output(outputPath string) (string, error) {
	infos, err := c.FS().List(outputPath)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, fi := range infos {
		if fi.IsDir || fi.Name() == "_SUCCESS" {
			continue
		}
		data, err := vfs.ReadFile(c.FS(), fi.Path)
		if err != nil {
			return "", err
		}
		b.Write(data)
	}
	return b.String(), nil
}

// RenderTopology regenerates the paper's Figure 2 from live cluster
// state: the NameNode/JobTracker pair, the DataNode/TaskTracker daemons
// on every machine, and the mapping from HDFS files through blocks to
// the physical blk_ files on each node's local filesystem.
func (c *MiniCluster) RenderTopology() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== HDFS / MapReduce component topology (Figure 2) ===\n\n")
	fmt.Fprintf(&b, "[NameNode]    block metadata lives in memory; %d live DataNodes report blocks\n",
		len(c.DFS.NN.LiveDataNodes()))
	fmt.Fprintf(&b, "[JobTracker]  receives block locations from NameNode; assigns tasks by locality\n\n")

	// Namespace → blocks → nodes.
	fmt.Fprintf(&b, "HDFS abstraction (directories/files -> blocks):\n")
	var walk func(path string, depth int)
	walk = func(path string, depth int) {
		infos, err := c.FS().List(path)
		if err != nil {
			return
		}
		for _, fi := range infos {
			indent := strings.Repeat("  ", depth+1)
			if fi.IsDir {
				fmt.Fprintf(&b, "%s%s/\n", indent, fi.Name())
				walk(fi.Path, depth+1)
				continue
			}
			locs, err := c.FS().BlockLocations(fi.Path)
			if err != nil {
				continue
			}
			fmt.Fprintf(&b, "%s%s (%d bytes, %d block(s), repl=%d)\n",
				indent, fi.Name(), fi.Size, len(locs), fi.Replication)
			for _, loc := range locs {
				fmt.Fprintf(&b, "%s  %v -> %s\n", indent, loc.Block, strings.Join(loc.Hosts, ", "))
			}
		}
	}
	walk("/", 0)

	fmt.Fprintf(&b, "\nPhysical view (per machine: daemons + blk_ files on the Linux FS):\n")
	for _, n := range c.Topology.Nodes() {
		dn := c.DFS.DataNode(n.ID)
		tt := c.MR.TaskTracker(n.ID)
		dnState, ttState := "DOWN", "DOWN"
		if dn != nil && dn.Alive() {
			dnState = "up"
		}
		if tt != nil && tt.Alive() {
			ttState = "up"
		}
		fmt.Fprintf(&b, "  %s (rack %d): DataNode[%s] TaskTracker[%s]", n.Hostname, n.Rack, dnState, ttState)
		if dn != nil {
			fmt.Fprintf(&b, "  %d block(s), %d bytes used", dn.NumBlocks(), dn.UsedBytes())
		}
		b.WriteByte('\n')
		if dn != nil {
			for _, bid := range dn.BlockIDs() {
				fmt.Fprintf(&b, "      /hadoop/dfs/data/current/%v\n", bid)
			}
		}
	}
	fmt.Fprintf(&b, "\nTaskTrackers report progress to JobTracker; DataNodes heartbeat to NameNode.\n")
	return b.String()
}

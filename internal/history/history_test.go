package history

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Append(0, EvAuditCreate, nil)
	if l.Len() != 0 || l.Events() != nil {
		t.Fatalf("nil log recorded something")
	}
}

func TestLogAppendAndCounter(t *testing.T) {
	reg := obs.NewRegistry()
	l := NewLog(reg.Counter(MetricAuditEvents))
	l.Append(ms(1), EvAuditCreate, map[string]string{"src": "/a", "user": "student"})
	l.Append(ms(2), EvAuditDelete, map[string]string{"src": "/a"})
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	if got := reg.Counter(MetricAuditEvents).Value(); got != 2 {
		t.Fatalf("counter = %d, want 2", got)
	}
	evs := l.Events()
	if evs[0].Type != EvAuditCreate || evs[1].Type != EvAuditDelete {
		t.Fatalf("unexpected events: %+v", evs)
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	in := []Event{
		{TS: ms(1), Type: EvAuditCreate, Attrs: map[string]string{"src": "/a", "user": "student", "result": "ok"}},
		{TS: ms(2), Type: EvAuditOpen, Attrs: map[string]string{"src": "/a", "user": "student", "result": "ok"}},
		{TS: ms(3), Type: EvAuditSafemodeExit},
	}
	b1, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Parse(b1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("round trip not byte-stable:\n%s\nvs\n%s", b1, b2)
	}
	if len(out) != 3 || out[2].Type != EvAuditSafemodeExit || out[0].Attrs["src"] != "/a" {
		t.Fatalf("parsed: %+v", out)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("{\"ts_ns\":1}\nnot json\n")); err == nil {
		t.Fatal("want error for malformed line")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error should name the line: %v", err)
	}
}

// sampleJob builds a synthetic two-map one-reduce history: map m_000001
// fails once and its retry is the gating map; the reduce's shuffle is
// recorded. Exercises every branch of the report layer.
func sampleJob() []Event {
	j := "job_wc_0001"
	a := func(task, seq string) string { return "attempt_" + task + "_" + seq }
	m0, m1 := "task_"+j+"_m_000000", "task_"+j+"_m_000001"
	r0 := "task_"+j+"_r_000000"
	return []Event{
		{TS: ms(0), Type: EvJobSubmit, Attrs: map[string]string{"job": j, "name": "wc", "user": "student"}},
		{TS: ms(0), Type: EvJobInit, Attrs: map[string]string{"job": j, "maps": "2", "reduces": "1"}},
		{TS: ms(10), Type: EvAttemptStart, Attrs: map[string]string{"attempt": a(m0, "0"), "job": j, "task": m0, "kind": "map", "node": "node0", "locality": "0"}},
		{TS: ms(10), Type: EvAttemptStart, Attrs: map[string]string{"attempt": a(m1, "0"), "job": j, "task": m1, "kind": "map", "node": "node1", "locality": "2"}},
		{TS: ms(60), Type: EvAttemptFinish, Attrs: map[string]string{"attempt": a(m0, "0"), "job": j}},
		{TS: ms(80), Type: EvAttemptFail, Attrs: map[string]string{"attempt": a(m1, "0"), "job": j, "error": "task fault"}},
		{TS: ms(90), Type: EvAttemptStart, Attrs: map[string]string{"attempt": a(m1, "1"), "job": j, "task": m1, "kind": "map", "node": "node2", "locality": "1"}},
		{TS: ms(200), Type: EvAttemptFinish, Attrs: map[string]string{"attempt": a(m1, "1"), "job": j}},
		{TS: ms(210), Type: EvAttemptStart, Attrs: map[string]string{"attempt": a(r0, "0"), "job": j, "task": r0, "kind": "reduce", "node": "node0", "shuffle_ns": "30000000"}},
		{TS: ms(300), Type: EvAttemptFinish, Attrs: map[string]string{"attempt": a(r0, "0"), "job": j}},
		{TS: ms(310), Type: EvJobFinish, Attrs: map[string]string{"job": j, "outcome": "succeeded", "ctr.MAP_INPUT_RECORDS": "42"}},
	}
}

func TestBuildJobReport(t *testing.T) {
	r, err := BuildJobReport(sampleJob())
	if err != nil {
		t.Fatal(err)
	}
	if r.JobID != "job_wc_0001" || r.Name != "wc" || r.User != "student" || r.Outcome != "succeeded" {
		t.Fatalf("header: %+v", r)
	}
	if r.MapTasks != 2 || r.Reduces != 1 || len(r.Attempts) != 4 {
		t.Fatalf("tasks/attempts: maps=%d reduces=%d attempts=%d", r.MapTasks, r.Reduces, len(r.Attempts))
	}
	if r.Makespan() != ms(310) {
		t.Fatalf("makespan = %v", r.Makespan())
	}
	if r.Counters["MAP_INPUT_RECORDS"] != 42 {
		t.Fatalf("counters: %v", r.Counters)
	}
	// Attempts sorted by start, ties by ID.
	if r.Attempts[0].Node != "node0" || r.Attempts[1].Node != "node1" {
		t.Fatalf("attempt order: %+v", r.Attempts)
	}
	if got := r.Attempts[1]; got.Outcome != "failed" || got.Reason != "task fault" {
		t.Fatalf("failed attempt: %+v", got)
	}
}

func TestCriticalPath(t *testing.T) {
	r, err := BuildJobReport(sampleJob())
	if err != nil {
		t.Fatal(err)
	}
	path := r.CriticalPath()
	// Expected: failed first attempt of m_000001, its winning retry, then
	// the terminal reduce.
	if len(path) != 3 {
		t.Fatalf("path length = %d: %+v", len(path), path)
	}
	if path[0].Outcome != "failed" || !strings.Contains(path[0].ID, "_m_000001_0") {
		t.Fatalf("path[0]: %+v", path[0])
	}
	if path[1].Outcome != "succeeded" || !strings.Contains(path[1].ID, "_m_000001_1") {
		t.Fatalf("path[1]: %+v", path[1])
	}
	if path[2].Kind != "reduce" || path[2].Outcome != "succeeded" {
		t.Fatalf("path[2]: %+v", path[2])
	}
}

func TestSlowestAndNodeStatsAndShuffle(t *testing.T) {
	r, err := BuildJobReport(sampleJob())
	if err != nil {
		t.Fatal(err)
	}
	slow := r.SlowestAttempts(2)
	if len(slow) != 2 || slow[0].Duration() != ms(110) {
		t.Fatalf("slowest: %+v", slow)
	}
	stats := r.NodeStats()
	if len(stats) != 2 || stats[0].Node != "node0" || stats[0].Attempts != 2 {
		t.Fatalf("node stats: %+v", stats)
	}
	sh, total := r.ShuffleTotal()
	if sh != ms(30) || total != ms(90) {
		t.Fatalf("shuffle %v of %v", sh, total)
	}
}

func TestAnalysisStringMentionsEverything(t *testing.T) {
	r, err := BuildJobReport(sampleJob())
	if err != nil {
		t.Fatal(err)
	}
	s := r.AnalysisString()
	for _, want := range []string{
		"Job job_wc_0001 (wc) SUCCEEDED",
		"Critical path (3 attempts bound completion)",
		"Slowest 3 attempts",
		"Shuffle: 30ms of 90ms total reduce time (33.3%)",
		"Per-node successful attempts",
		"node2",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("analysis missing %q:\n%s", want, s)
		}
	}
	if s != r.AnalysisString() {
		t.Fatal("AnalysisString not deterministic")
	}
}

func TestBuildJobReportErrors(t *testing.T) {
	if _, err := BuildJobReport(nil); err == nil {
		t.Fatal("want error for empty log")
	}
	bad := []Event{
		{TS: 0, Type: EvJobSubmit, Attrs: map[string]string{"job": "j"}},
		{TS: 1, Type: EvAttemptFinish, Attrs: map[string]string{"attempt": "ghost"}},
	}
	if _, err := BuildJobReport(bad); err == nil {
		t.Fatal("want error for finish without start")
	}
}

func TestEventsFromSpans(t *testing.T) {
	spans := []obs.Span{
		{Name: "mr.job", Start: ms(0), End: ms(300), Attrs: map[string]string{"job": "job_wc_0001", "name": "wc", "outcome": "succeeded"}},
		{Name: "mr.map_attempt", Start: ms(10), End: ms(60), Attrs: map[string]string{"attempt": "attempt_task_job_wc_0001_m_000000_0", "job": "job_wc_0001", "node": "node0", "locality": "0", "outcome": "succeeded"}},
		{Name: "mr.map_attempt", Start: ms(10), End: ms(80), Attrs: map[string]string{"attempt": "attempt_task_job_wc_0001_m_000001_0", "job": "job_wc_0001", "node": "node1", "locality": "2", "outcome": "failed"}},
		{Name: "mr.reduce_attempt", Start: ms(90), End: ms(200), Attrs: map[string]string{"attempt": "attempt_task_job_wc_0001_r_000000_0", "job": "job_wc_0001", "node": "node0", "outcome": "killed:speculative loser"}},
	}
	evs := EventsFromSpans(spans)
	var types []string
	for _, e := range evs {
		types = append(types, e.Type)
	}
	want := []string{
		EvJobSubmit, EvAttemptStart, EvAttemptStart,
		EvAttemptFinish, EvAttemptFail, EvAttemptStart, EvAttemptKill, EvJobFinish,
	}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Fatalf("types = %v, want %v", types, want)
	}
	// Task ID recovered from attempt ID.
	if evs[1].Attrs["task"] != "task_job_wc_0001_m_000000" {
		t.Fatalf("task attr: %v", evs[1].Attrs)
	}
	// Kill reason parsed from "killed:<reason>" outcome.
	if evs[6].Attrs["reason"] != "speculative loser" {
		t.Fatalf("kill reason: %v", evs[6].Attrs)
	}
}

package history

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// AttemptInfo is one task attempt reconstructed from a job-history file.
type AttemptInfo struct {
	ID          string
	Task        string
	Kind        string // "map" or "reduce"
	Node        string
	Locality    int // 0 data-local, 1 rack-local, 2 remote; -1 unknown (reduces)
	Speculative bool
	Start       time.Duration
	End         time.Duration
	Outcome     string // "succeeded", "failed", "killed"; "running" if no terminal event
	Reason      string // kill reason / failure error, when recorded
	Shuffle     time.Duration
}

// Duration returns the attempt's extent (zero while running).
func (a AttemptInfo) Duration() time.Duration {
	if a.End < a.Start {
		return 0
	}
	return a.End - a.Start
}

// NodeStat aggregates the successful attempts that ran on one host —
// the per-node table straggler hunts start from.
type NodeStat struct {
	Node     string
	Attempts int
	Total    time.Duration
}

// Mean returns the average successful-attempt duration on the node.
func (s NodeStat) Mean() time.Duration {
	if s.Attempts == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Attempts)
}

// JobReport is a job's history file reconstructed into timelines — the
// analysis layer over Parse, mirroring what `hadoop job -history` and
// the JobTracker history pages computed from the raw files.
type JobReport struct {
	JobID     string
	Name      string
	User      string
	Outcome   string
	Submitted time.Duration
	Finished  time.Duration
	MapTasks  int
	Reduces   int
	// Attempts holds every attempt in (start, id) order.
	Attempts []AttemptInfo
	// Counters is the job's final counter snapshot (from job.finish).
	Counters map[string]int64
}

// Makespan returns submit-to-finish time.
func (r *JobReport) Makespan() time.Duration { return r.Finished - r.Submitted }

// BuildJobReport reconstructs a report from one job's parsed events.
func BuildJobReport(events []Event) (*JobReport, error) {
	r := &JobReport{Counters: map[string]int64{}}
	attempts := map[string]*AttemptInfo{}
	var order []string
	for _, e := range events {
		switch e.Type {
		case EvJobSubmit:
			r.JobID = e.Attrs["job"]
			r.Name = e.Attrs["name"]
			r.User = e.Attrs["user"]
			r.Submitted = e.TS
		case EvJobInit:
			r.MapTasks, _ = strconv.Atoi(e.Attrs["maps"])
			r.Reduces, _ = strconv.Atoi(e.Attrs["reduces"])
		case EvJobFinish:
			r.Finished = e.TS
			r.Outcome = e.Attrs["outcome"]
			for k, v := range e.Attrs {
				if name, ok := strings.CutPrefix(k, "ctr."); ok {
					n, err := strconv.ParseInt(v, 10, 64)
					if err == nil {
						r.Counters[name] = n
					}
				}
			}
		case EvAttemptStart:
			id := e.Attrs["attempt"]
			a := &AttemptInfo{
				ID:          id,
				Task:        e.Attrs["task"],
				Kind:        e.Attrs["kind"],
				Node:        e.Attrs["node"],
				Locality:    -1,
				Speculative: e.Attrs["speculative"] == "true",
				Start:       e.TS,
				Outcome:     "running",
			}
			if l, ok := e.Attrs["locality"]; ok {
				a.Locality, _ = strconv.Atoi(l)
			}
			if s, ok := e.Attrs["shuffle_ns"]; ok {
				ns, _ := strconv.ParseInt(s, 10, 64)
				a.Shuffle = time.Duration(ns)
			}
			attempts[id] = a
			order = append(order, id)
		case EvAttemptFinish, EvAttemptFail, EvAttemptKill:
			a := attempts[e.Attrs["attempt"]]
			if a == nil {
				return nil, fmt.Errorf("history: %s for unknown attempt %q", e.Type, e.Attrs["attempt"])
			}
			a.End = e.TS
			switch e.Type {
			case EvAttemptFinish:
				a.Outcome = "succeeded"
			case EvAttemptFail:
				a.Outcome = "failed"
				a.Reason = e.Attrs["error"]
			case EvAttemptKill:
				a.Outcome = "killed"
				a.Reason = e.Attrs["reason"]
			}
		}
	}
	if r.JobID == "" {
		return nil, fmt.Errorf("history: no %s event in log", EvJobSubmit)
	}
	for _, id := range order {
		r.Attempts = append(r.Attempts, *attempts[id])
	}
	sort.SliceStable(r.Attempts, func(i, j int) bool {
		if r.Attempts[i].Start != r.Attempts[j].Start {
			return r.Attempts[i].Start < r.Attempts[j].Start
		}
		return r.Attempts[i].ID < r.Attempts[j].ID
	})
	return r, nil
}

// lastSucceeded returns the successful attempt of the given kind with
// the latest end time (ties broken by smallest ID), or nil.
func lastSucceeded(attempts []AttemptInfo, kind string) *AttemptInfo {
	var best *AttemptInfo
	for i := range attempts {
		a := &attempts[i]
		if a.Kind != kind || a.Outcome != "succeeded" {
			continue
		}
		if best == nil || a.End > best.End || (a.End == best.End && a.ID < best.ID) {
			best = a
		}
	}
	return best
}

// priorAttemptsOf returns the non-successful attempts of a task that
// ended before the winning attempt started — the retries that pushed the
// winner later, hence part of the path that bounds completion.
func priorAttemptsOf(attempts []AttemptInfo, task, winner string, before time.Duration) []AttemptInfo {
	var out []AttemptInfo
	for _, a := range attempts {
		if a.Task == task && a.ID != winner && a.Outcome != "succeeded" && a.End <= before {
			out = append(out, a)
		}
	}
	return out
}

// CriticalPath returns the attempt chain that bounds the job's
// completion time: the retries and winning attempt of the last map task
// to finish (no reduce can start earlier), then the retries and winning
// attempt of the last reduce task to finish. Map-only jobs end at the
// gating map.
func (r *JobReport) CriticalPath() []AttemptInfo {
	term := lastSucceeded(r.Attempts, "reduce")
	var path []AttemptInfo
	if term != nil {
		if gate := lastSucceeded(r.Attempts, "map"); gate != nil {
			path = append(path, priorAttemptsOf(r.Attempts, gate.Task, gate.ID, gate.Start)...)
			path = append(path, *gate)
		}
	} else if term = lastSucceeded(r.Attempts, "map"); term == nil {
		return nil
	}
	path = append(path, priorAttemptsOf(r.Attempts, term.Task, term.ID, term.Start)...)
	path = append(path, *term)
	return path
}

// SlowestAttempts returns the n longest successful attempts, longest
// first (ties broken by ID).
func (r *JobReport) SlowestAttempts(n int) []AttemptInfo {
	var done []AttemptInfo
	for _, a := range r.Attempts {
		if a.Outcome == "succeeded" {
			done = append(done, a)
		}
	}
	sort.SliceStable(done, func(i, j int) bool {
		if done[i].Duration() != done[j].Duration() {
			return done[i].Duration() > done[j].Duration()
		}
		return done[i].ID < done[j].ID
	})
	if len(done) > n {
		done = done[:n]
	}
	return done
}

// NodeStats aggregates successful attempts per host, sorted by host —
// a node whose mean sits far above the rest is the straggler.
func (r *JobReport) NodeStats() []NodeStat {
	byNode := map[string]*NodeStat{}
	for _, a := range r.Attempts {
		if a.Outcome != "succeeded" {
			continue
		}
		s := byNode[a.Node]
		if s == nil {
			s = &NodeStat{Node: a.Node}
			byNode[a.Node] = s
		}
		s.Attempts++
		s.Total += a.Duration()
	}
	nodes := make([]string, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	out := make([]NodeStat, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, *byNode[n])
	}
	return out
}

// ShuffleTotal sums the recorded shuffle time of successful reduce
// attempts; reduceTotal is those attempts' full durations, so the ratio
// is the fraction of reduce time spent fetching map output.
func (r *JobReport) ShuffleTotal() (shuffle, reduceTotal time.Duration) {
	for _, a := range r.Attempts {
		if a.Kind == "reduce" && a.Outcome == "succeeded" {
			shuffle += a.Shuffle
			reduceTotal += a.Duration()
		}
	}
	return shuffle, reduceTotal
}

func pct(part, whole time.Duration) float64 {
	if whole <= 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

func fmtD(d time.Duration) string { return d.Round(time.Millisecond).String() }

// attemptLine renders one attempt row for the analysis report.
func attemptLine(b *strings.Builder, a AttemptInfo, makespan time.Duration) {
	tags := a.Outcome
	if a.Speculative {
		tags += ",speculative"
	}
	if a.Locality >= 0 {
		tags += fmt.Sprintf(",locality=%d", a.Locality)
	}
	fmt.Fprintf(b, "  %-6s %-34s %-8s start=%-12s dur=%-12s %4.1f%%  %s\n",
		a.Kind, a.ID, a.Node, fmtD(a.Start), fmtD(a.Duration()), pct(a.Duration(), makespan), tags)
}

// AnalysisString renders the critical-path report `mrhistory -analyze`
// prints: job summary, the attempt chain bounding completion, the
// slowest attempts, shuffle attribution and the per-node table.
func (r *JobReport) AnalysisString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Job %s (%s) %s\n", r.JobID, r.Name, strings.ToUpper(r.Outcome))
	var failed, killed, spec int
	for _, a := range r.Attempts {
		switch a.Outcome {
		case "failed":
			failed++
		case "killed":
			killed++
		}
		if a.Speculative {
			spec++
		}
	}
	fmt.Fprintf(&b, "  submitted %s, finished %s, makespan %s\n", fmtD(r.Submitted), fmtD(r.Finished), fmtD(r.Makespan()))
	fmt.Fprintf(&b, "  tasks: %d maps, %d reduces; attempts: %d (%d failed, %d killed, %d speculative)\n",
		r.MapTasks, r.Reduces, len(r.Attempts), failed, killed, spec)
	path := r.CriticalPath()
	fmt.Fprintf(&b, "Critical path (%d attempts bound completion):\n", len(path))
	var covered time.Duration
	for _, a := range path {
		attemptLine(&b, a, r.Makespan())
		covered += a.Duration()
	}
	fmt.Fprintf(&b, "  path work %s of %s makespan (%.1f%%); the rest is scheduling and heartbeat latency\n",
		fmtD(covered), fmtD(r.Makespan()), pct(covered, r.Makespan()))
	slow := r.SlowestAttempts(5)
	fmt.Fprintf(&b, "Slowest %d attempts:\n", len(slow))
	for _, a := range slow {
		attemptLine(&b, a, r.Makespan())
	}
	if shuffle, reduceTotal := r.ShuffleTotal(); reduceTotal > 0 {
		fmt.Fprintf(&b, "Shuffle: %s of %s total reduce time (%.1f%%)\n",
			fmtD(shuffle), fmtD(reduceTotal), pct(shuffle, reduceTotal))
	}
	b.WriteString("Per-node successful attempts:\n")
	for _, s := range r.NodeStats() {
		fmt.Fprintf(&b, "  %-8s attempts=%-3d mean=%s\n", s.Node, s.Attempts, fmtD(s.Mean()))
	}
	return b.String()
}

// SummaryString renders the plain (non -analyze) view: the job overview
// and every attempt in start order, like `hadoop job -history`.
func (r *JobReport) SummaryString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Job %s (%s) %s\n", r.JobID, r.Name, strings.ToUpper(r.Outcome))
	fmt.Fprintf(&b, "  user=%s submitted=%s finished=%s makespan=%s\n",
		r.User, fmtD(r.Submitted), fmtD(r.Finished), fmtD(r.Makespan()))
	fmt.Fprintf(&b, "  %d maps, %d reduces, %d attempts\n", r.MapTasks, r.Reduces, len(r.Attempts))
	for _, a := range r.Attempts {
		attemptLine(&b, a, r.Makespan())
	}
	if len(r.Counters) > 0 {
		b.WriteString("Counters:\n")
		names := make([]string, 0, len(r.Counters))
		for n := range r.Counters {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "    %s=%d\n", n, r.Counters[n])
		}
	}
	return b.String()
}

// EventsFromSpans bridges the live obs span tracer into history events:
// mr.job and mr.*_attempt spans become the same job.*/attempt.* records
// the JobTracker's history producer persists. The bridge lets a registry
// snapshot be analyzed with the same JobReport tooling when no history
// file was written (e.g. a run that died before job completion), and the
// golden-history test uses it to prove the two pipelines agree.
func EventsFromSpans(spans []obs.Span) []Event {
	var out []Event
	for _, s := range spans {
		switch s.Name {
		case "mr.job":
			out = append(out,
				Event{TS: s.Start, Type: EvJobSubmit, Attrs: map[string]string{
					"job": s.Attrs["job"], "name": s.Attrs["name"],
				}},
				Event{TS: s.End, Type: EvJobFinish, Attrs: map[string]string{
					"job": s.Attrs["job"], "outcome": s.Attrs["outcome"],
				}})
		case "mr.map_attempt", "mr.reduce_attempt":
			kind := "reduce"
			if s.Name == "mr.map_attempt" {
				kind = "map"
			}
			start := map[string]string{
				"attempt": s.Attrs["attempt"],
				"job":     s.Attrs["job"],
				"task":    taskOfAttempt(s.Attrs["attempt"]),
				"kind":    kind,
				"node":    s.Attrs["node"],
			}
			if l, ok := s.Attrs["locality"]; ok {
				start["locality"] = l
			}
			if s.Attrs["speculative"] == "true" {
				start["speculative"] = "true"
			}
			out = append(out, Event{TS: s.Start, Type: EvAttemptStart, Attrs: start})
			end := map[string]string{"attempt": s.Attrs["attempt"], "job": s.Attrs["job"]}
			typ := EvAttemptFinish
			switch outcome := s.Attrs["outcome"]; {
			case outcome == "failed":
				typ = EvAttemptFail
			case strings.HasPrefix(outcome, "killed"):
				typ = EvAttemptKill
				if _, reason, ok := strings.Cut(outcome, ":"); ok {
					end["reason"] = reason
				}
			}
			out = append(out, Event{TS: s.End, Type: typ, Attrs: end})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// taskOfAttempt strips the "attempt_" prefix and "_<seq>" suffix from an
// attempt ID, recovering its task ID.
func taskOfAttempt(id string) string {
	s, _ := strings.CutPrefix(id, "attempt_")
	if i := strings.LastIndex(s, "_"); i > 0 {
		s = s[:i]
	}
	return s
}

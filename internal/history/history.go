// Package history is the durable evidence trail of the minihadoop
// stack: a deterministic, append-only structured event log modelled on
// the two post-hoc artifacts real Hadoop operators read — the NameNode
// audit log (every namespace and block decision, with principal, path
// and result) and the JobTracker job-history files (job and task-attempt
// lifecycle, persisted into HDFS itself under /history/<jobid>/).
//
// Records are JSONL: one JSON object per line, keyed on the sim clock.
// Because attr maps marshal with sorted keys and every value comes off
// the virtual clock or the seeded scheduler, the serialized log is
// byte-identical across replays of the same seed — the property the
// golden-history test (internal/jobs) pins. On top of the log, report.go
// reconstructs per-task timelines, the job critical path and straggler
// attribution; cmd/mrhistory and the webui /history pages render it.
package history

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Event is one record of the log: a virtual-clock timestamp, a type tag,
// and a flat string attribute map. Marshalling an Event with
// encoding/json is byte-stable (attrs render with sorted keys).
type Event struct {
	TS    time.Duration     `json:"ts_ns"`
	Type  string            `json:"type"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Event types emitted by the NameNode audit producer (internal/hdfs).
// Client-facing namespace operations carry the caller's principal in the
// "user" attr and an "ok"/"error" result; control-plane decisions the
// NameNode takes on its own run as principal "hdfs".
const (
	EvAuditCreate        = "audit.create"
	EvAuditOpen          = "audit.open"
	EvAuditDelete        = "audit.delete"
	EvAuditRename        = "audit.rename"
	EvAuditMkdir         = "audit.mkdir"
	EvAuditSetrep        = "audit.setrep"
	EvAuditBlockAllocate = "audit.block_allocate"
	EvAuditRereplicate   = "audit.rereplicate"
	EvAuditCorrupt       = "audit.corrupt_replica"
	EvAuditReplicaDrop   = "audit.replica_drop"
	EvAuditDatanodeDead  = "audit.datanode_dead"
	EvAuditSafemodeExit  = "audit.safemode_exit"
)

// Event types emitted by the JobTracker job-history producer
// (internal/mrcluster).
const (
	EvJobSubmit     = "job.submit"
	EvJobInit       = "job.init"
	EvJobFinish     = "job.finish"
	EvAttemptStart  = "attempt.start"
	EvAttemptFinish = "attempt.finish"
	EvAttemptFail   = "attempt.fail"
	EvAttemptKill   = "attempt.kill"
)

// PrincipalNameNode is the principal audit events carry when the
// NameNode itself (not a client) made the decision.
const PrincipalNameNode = "hdfs"

// Metric names the history subsystem adds to the obs registry. The full
// taxonomy is documented in docs/OBSERVABILITY.md.
const (
	MetricAuditEvents    = "history.audit_events"
	MetricJobEvents      = "history.job_events"
	MetricFilesPersisted = "history.files_persisted"
	MetricBytesPersisted = "history.bytes_persisted"
)

// Root is the HDFS directory job-history files persist under.
const Root = "/history"

// Dir returns the HDFS history directory of a job.
func Dir(jobID string) string { return Root + "/" + jobID }

// EventsPath returns the HDFS path of a job's history file.
func EventsPath(jobID string) string { return Dir(jobID) + "/events.jsonl" }

// Log is an append-only event log. The zero value of *Log (nil) is
// usable and drops everything, so producers need no nil checks; the
// mutex makes Append safe from the serial runner's real goroutines.
type Log struct {
	mu     sync.Mutex
	events []Event
	ctr    *obs.Counter
}

// NewLog returns an empty log. ctr, when non-nil, is incremented once
// per appended event (the history.* emission metrics).
func NewLog(ctr *obs.Counter) *Log {
	return &Log{ctr: ctr}
}

// Append records one event.
func (l *Log) Append(ts time.Duration, typ string, attrs map[string]string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.events = append(l.events, Event{TS: ts, Type: typ, Attrs: attrs})
	l.mu.Unlock()
	l.ctr.Inc()
}

// Len returns the number of recorded events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Events returns a copy of all recorded events in append order.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// Bytes serializes the log as JSONL. Byte-identical across replays of
// the same seed.
func (l *Log) Bytes() ([]byte, error) {
	return Marshal(l.Events())
}

// Marshal renders events as JSONL: one compact JSON object per line.
func Marshal(events []Event) ([]byte, error) {
	var buf bytes.Buffer
	for _, e := range events {
		b, err := json.Marshal(e)
		if err != nil {
			return nil, err
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}

// Parse decodes a JSONL event log (the inverse of Marshal; blank lines
// are skipped, so a trailing newline is fine).
func Parse(data []byte) ([]Event, error) {
	var out []Event
	for i, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("history: line %d: %w", i+1, err)
		}
		out = append(out, e)
	}
	return out, nil
}

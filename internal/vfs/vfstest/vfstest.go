// Package vfstest provides the FileSystem conformance suite. Every
// backend — MemFS, OsFS and the HDFS client — must pass it, which is the
// mechanical guarantee behind the course's claim that a MapReduce program
// reruns on HDFS without modification.
package vfstest

import (
	"errors"
	"testing"

	"repro/internal/vfs"
)

// Run exercises the FileSystem contract against the implementation built
// by mk (called once per subtest, so each subtest gets a fresh tree).
func Run(t *testing.T, name string, mk func(t *testing.T) vfs.FileSystem) {
	t.Run(name+"/CreateReadBack", func(t *testing.T) {
		fs := mk(t)
		if err := vfs.WriteFile(fs, "/a/b/c.txt", []byte("hello")); err != nil {
			t.Fatal(err)
		}
		got, err := vfs.ReadFile(fs, "/a/b/c.txt")
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "hello" {
			t.Fatalf("read %q", got)
		}
	})
	t.Run(name+"/CreateExistingFails", func(t *testing.T) {
		fs := mk(t)
		if err := vfs.WriteFile(fs, "/x.txt", []byte("1")); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Create("/x.txt"); !errors.Is(err, vfs.ErrExist) {
			t.Fatalf("want ErrExist, got %v", err)
		}
	})
	t.Run(name+"/CreateWithoutParentFails", func(t *testing.T) {
		fs := mk(t)
		if _, err := fs.Create("/no/parent.txt"); err == nil {
			t.Fatal("create without parent succeeded")
		}
	})
	t.Run(name+"/OpenMissing", func(t *testing.T) {
		fs := mk(t)
		if _, err := fs.Open("/ghost"); !errors.Is(err, vfs.ErrNotExist) {
			t.Fatalf("want ErrNotExist, got %v", err)
		}
	})
	t.Run(name+"/OpenDirFails", func(t *testing.T) {
		fs := mk(t)
		if err := fs.Mkdir("/d"); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Open("/d"); !errors.Is(err, vfs.ErrIsDir) {
			t.Fatalf("want ErrIsDir, got %v", err)
		}
	})
	t.Run(name+"/StatFileAndDir", func(t *testing.T) {
		fs := mk(t)
		if err := vfs.WriteFile(fs, "/d/f", []byte("abc")); err != nil {
			t.Fatal(err)
		}
		fi, err := fs.Stat("/d/f")
		if err != nil || fi.IsDir || fi.Size != 3 {
			t.Fatalf("stat file: %+v err=%v", fi, err)
		}
		di, err := fs.Stat("/d")
		if err != nil || !di.IsDir {
			t.Fatalf("stat dir: %+v err=%v", di, err)
		}
	})
	t.Run(name+"/ListSorted", func(t *testing.T) {
		fs := mk(t)
		for _, p := range []string{"/dir/c", "/dir/a", "/dir/b"} {
			if err := vfs.WriteFile(fs, p, []byte("x")); err != nil {
				t.Fatal(err)
			}
		}
		if err := fs.Mkdir("/dir/sub"); err != nil {
			t.Fatal(err)
		}
		infos, err := fs.List("/dir")
		if err != nil {
			t.Fatal(err)
		}
		if len(infos) != 4 {
			t.Fatalf("list returned %d entries", len(infos))
		}
		for i := 1; i < len(infos); i++ {
			if infos[i-1].Path >= infos[i].Path {
				t.Fatalf("unsorted list: %v", infos)
			}
		}
	})
	t.Run(name+"/ListFileFails", func(t *testing.T) {
		fs := mk(t)
		if err := vfs.WriteFile(fs, "/f", []byte("x")); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.List("/f"); !errors.Is(err, vfs.ErrNotDir) {
			t.Fatalf("want ErrNotDir, got %v", err)
		}
	})
	t.Run(name+"/MkdirIdempotent", func(t *testing.T) {
		fs := mk(t)
		if err := fs.Mkdir("/a/b"); err != nil {
			t.Fatal(err)
		}
		if err := fs.Mkdir("/a/b"); err != nil {
			t.Fatal(err)
		}
	})
	t.Run(name+"/RemoveFile", func(t *testing.T) {
		fs := mk(t)
		if err := vfs.WriteFile(fs, "/f", []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := fs.Remove("/f", false); err != nil {
			t.Fatal(err)
		}
		if vfs.Exists(fs, "/f") {
			t.Fatal("file still exists after remove")
		}
	})
	t.Run(name+"/RemoveNonEmptyDirNeedsRecursive", func(t *testing.T) {
		fs := mk(t)
		if err := vfs.WriteFile(fs, "/d/f", []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := fs.Remove("/d", false); err == nil {
			t.Fatal("non-recursive remove of non-empty dir succeeded")
		}
		if err := fs.Remove("/d", true); err != nil {
			t.Fatal(err)
		}
		if vfs.Exists(fs, "/d") || vfs.Exists(fs, "/d/f") {
			t.Fatal("dir contents survived recursive remove")
		}
	})
	t.Run(name+"/RemoveRootFails", func(t *testing.T) {
		fs := mk(t)
		if err := fs.Remove("/", true); err == nil {
			t.Fatal("removing root succeeded")
		}
	})
	t.Run(name+"/RenameFile", func(t *testing.T) {
		fs := mk(t)
		if err := vfs.WriteFile(fs, "/a/f", []byte("data")); err != nil {
			t.Fatal(err)
		}
		if err := fs.Rename("/a/f", "/a/g"); err != nil {
			t.Fatal(err)
		}
		if vfs.Exists(fs, "/a/f") {
			t.Fatal("old path still exists")
		}
		got, err := vfs.ReadFile(fs, "/a/g")
		if err != nil || string(got) != "data" {
			t.Fatalf("renamed contents = %q err=%v", got, err)
		}
	})
	t.Run(name+"/RenameOntoExistingFails", func(t *testing.T) {
		fs := mk(t)
		if err := vfs.WriteFile(fs, "/a", []byte("1")); err != nil {
			t.Fatal(err)
		}
		if err := vfs.WriteFile(fs, "/b", []byte("2")); err != nil {
			t.Fatal(err)
		}
		if err := fs.Rename("/a", "/b"); !errors.Is(err, vfs.ErrExist) {
			t.Fatalf("want ErrExist, got %v", err)
		}
	})
	t.Run(name+"/WalkAndDiskUsage", func(t *testing.T) {
		fs := mk(t)
		if err := vfs.WriteFile(fs, "/data/one", make([]byte, 10)); err != nil {
			t.Fatal(err)
		}
		if err := vfs.WriteFile(fs, "/data/sub/two", make([]byte, 32)); err != nil {
			t.Fatal(err)
		}
		du, err := vfs.DiskUsage(fs, "/data")
		if err != nil || du != 42 {
			t.Fatalf("du = %d err=%v, want 42", du, err)
		}
		var seen []string
		if err := vfs.Walk(fs, "/data", func(fi vfs.FileInfo) error {
			seen = append(seen, fi.Path)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(seen) != 2 || seen[0] != "/data/one" || seen[1] != "/data/sub/two" {
			t.Fatalf("walk saw %v", seen)
		}
	})
	t.Run(name+"/CopyTreeBetweenFilesystems", func(t *testing.T) {
		src := mk(t)
		dst := vfs.NewMemFS()
		if err := vfs.WriteFile(src, "/in/a.txt", []byte("aa")); err != nil {
			t.Fatal(err)
		}
		if err := vfs.WriteFile(src, "/in/deep/b.txt", []byte("bbb")); err != nil {
			t.Fatal(err)
		}
		n, err := vfs.CopyTree(src, "/in", dst, "/out")
		if err != nil || n != 5 {
			t.Fatalf("copied %d bytes err=%v, want 5", n, err)
		}
		got, err := vfs.ReadFile(dst, "/out/deep/b.txt")
		if err != nil || string(got) != "bbb" {
			t.Fatalf("copied contents = %q err=%v", got, err)
		}
	})
	t.Run(name+"/EmptyFile", func(t *testing.T) {
		fs := mk(t)
		if err := vfs.WriteFile(fs, "/empty", nil); err != nil {
			t.Fatal(err)
		}
		fi, err := fs.Stat("/empty")
		if err != nil || fi.Size != 0 || fi.IsDir {
			t.Fatalf("stat empty: %+v err=%v", fi, err)
		}
		data, err := vfs.ReadFile(fs, "/empty")
		if err != nil || len(data) != 0 {
			t.Fatalf("read empty: %d bytes err=%v", len(data), err)
		}
	})
}

package vfs

import (
	"bytes"
	"io"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory FileSystem. It is safe for concurrent use, which
// lets the serial runner execute mappers in parallel against it.
type MemFS struct {
	mu    sync.RWMutex
	files map[string][]byte // cleaned path -> contents
	dirs  map[string]bool   // cleaned path -> exists
}

var _ FileSystem = (*MemFS)(nil)

// NewMemFS returns an empty in-memory filesystem containing only "/".
func NewMemFS() *MemFS {
	return &MemFS{
		files: make(map[string][]byte),
		dirs:  map[string]bool{"/": true},
	}
}

func (m *MemFS) Create(path string) (io.WriteCloser, error) {
	p := Clean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dirs[p] {
		return nil, &PathError{Op: "create", Path: p, Err: ErrIsDir}
	}
	if _, ok := m.files[p]; ok {
		return nil, &PathError{Op: "create", Path: p, Err: ErrExist}
	}
	dir, _ := Split(p)
	if !m.dirs[dir] {
		return nil, &PathError{Op: "create", Path: p, Err: ErrNotExist}
	}
	return &memWriter{fs: m, path: p}, nil
}

type memWriter struct {
	fs     *MemFS
	path   string
	buf    bytes.Buffer
	closed bool
}

func (w *memWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, io.ErrClosedPipe
	}
	return w.buf.Write(p)
}

func (w *memWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	w.fs.files[w.path] = append([]byte(nil), w.buf.Bytes()...)
	return nil
}

func (m *MemFS) Open(path string) (io.ReadCloser, error) {
	p := Clean(path)
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.dirs[p] {
		return nil, &PathError{Op: "open", Path: p, Err: ErrIsDir}
	}
	data, ok := m.files[p]
	if !ok {
		return nil, &PathError{Op: "open", Path: p, Err: ErrNotExist}
	}
	return io.NopCloser(bytes.NewReader(data)), nil
}

func (m *MemFS) Stat(path string) (FileInfo, error) {
	p := Clean(path)
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.dirs[p] {
		return FileInfo{Path: p, IsDir: true}, nil
	}
	if data, ok := m.files[p]; ok {
		return FileInfo{Path: p, Size: int64(len(data))}, nil
	}
	return FileInfo{}, &PathError{Op: "stat", Path: p, Err: ErrNotExist}
}

func (m *MemFS) List(path string) ([]FileInfo, error) {
	p := Clean(path)
	m.mu.RLock()
	defer m.mu.RUnlock()
	if _, ok := m.files[p]; ok {
		return nil, &PathError{Op: "list", Path: p, Err: ErrNotDir}
	}
	if !m.dirs[p] {
		return nil, &PathError{Op: "list", Path: p, Err: ErrNotExist}
	}
	var out []FileInfo
	for fp, data := range m.files {
		if dir, _ := Split(fp); dir == p {
			out = append(out, FileInfo{Path: fp, Size: int64(len(data))})
		}
	}
	for dp := range m.dirs {
		if dp == "/" {
			continue
		}
		if dir, _ := Split(dp); dir == p {
			out = append(out, FileInfo{Path: dp, IsDir: true})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

func (m *MemFS) Mkdir(path string) error {
	p := Clean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.mkdirLocked(p)
}

func (m *MemFS) mkdirLocked(p string) error {
	if m.dirs[p] {
		return nil
	}
	if _, ok := m.files[p]; ok {
		return &PathError{Op: "mkdir", Path: p, Err: ErrNotDir}
	}
	if p != "/" {
		dir, _ := Split(p)
		if err := m.mkdirLocked(dir); err != nil {
			return err
		}
	}
	m.dirs[p] = true
	return nil
}

func (m *MemFS) Remove(path string, recursive bool) error {
	p := Clean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[p]; ok {
		delete(m.files, p)
		return nil
	}
	if !m.dirs[p] {
		return &PathError{Op: "remove", Path: p, Err: ErrNotExist}
	}
	if p == "/" {
		return &PathError{Op: "remove", Path: p, Err: ErrInvalid}
	}
	prefix := p + "/"
	// Sorted so the removal sequence is reproducible, not map-ordered —
	// deletes commute today, but anything metering or tracing them must
	// not inherit map iteration order.
	var children []string
	for fp := range m.files {
		if strings.HasPrefix(fp, prefix) {
			children = append(children, fp)
		}
	}
	sort.Strings(children)
	var childDirs []string
	for dp := range m.dirs {
		if strings.HasPrefix(dp, prefix) {
			childDirs = append(childDirs, dp)
		}
	}
	sort.Strings(childDirs)
	if !recursive && (len(children) > 0 || len(childDirs) > 0) {
		return &PathError{Op: "remove", Path: p, Err: ErrNotEmpty}
	}
	for _, fp := range children {
		delete(m.files, fp)
	}
	for _, dp := range childDirs {
		delete(m.dirs, dp)
	}
	delete(m.dirs, p)
	return nil
}

func (m *MemFS) Rename(oldPath, newPath string) error {
	op, np := Clean(oldPath), Clean(newPath)
	m.mu.Lock()
	defer m.mu.Unlock()
	if data, ok := m.files[op]; ok {
		if _, exists := m.files[np]; exists || m.dirs[np] {
			return &PathError{Op: "rename", Path: np, Err: ErrExist}
		}
		dir, _ := Split(np)
		if !m.dirs[dir] {
			return &PathError{Op: "rename", Path: np, Err: ErrNotExist}
		}
		m.files[np] = data
		delete(m.files, op)
		return nil
	}
	if m.dirs[op] {
		if _, exists := m.files[np]; exists || m.dirs[np] {
			return &PathError{Op: "rename", Path: np, Err: ErrExist}
		}
		prefix := op + "/"
		moved := map[string][]byte{}
		for fp, data := range m.files {
			if strings.HasPrefix(fp, prefix) {
				moved[np+"/"+fp[len(prefix):]] = data
				delete(m.files, fp)
			}
		}
		for fp, data := range moved {
			m.files[fp] = data
		}
		movedDirs := []string{}
		for dp := range m.dirs {
			if strings.HasPrefix(dp, prefix) {
				movedDirs = append(movedDirs, dp)
			}
		}
		sort.Strings(movedDirs)
		for _, dp := range movedDirs {
			delete(m.dirs, dp)
			m.dirs[np+"/"+dp[len(prefix):]] = true
		}
		delete(m.dirs, op)
		m.dirs[np] = true
		return nil
	}
	return &PathError{Op: "rename", Path: op, Err: ErrNotExist}
}

// TotalBytes returns the sum of all file sizes (for quota-style tests).
func (m *MemFS) TotalBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var n int64
	for _, data := range m.files {
		n += int64(len(data))
	}
	return n
}

package vfs

import (
	"io"
	"testing"
	"testing/quick"
)

func TestClean(t *testing.T) {
	cases := map[string]string{
		"":              "/",
		"/":             "/",
		"a/b":           "/a/b",
		"/a//b/":        "/a/b",
		"/a/./b":        "/a/b",
		"/a/../b":       "/b",
		"/../..":        "/",
		"/a/b/c/../../": "/a",
	}
	for in, want := range cases {
		if got := Clean(in); got != want {
			t.Errorf("Clean(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSplit(t *testing.T) {
	cases := []struct{ in, dir, name string }{
		{"/", "/", ""},
		{"/a", "/", "a"},
		{"/a/b/c", "/a/b", "c"},
	}
	for _, c := range cases {
		dir, name := Split(c.in)
		if dir != c.dir || name != c.name {
			t.Errorf("Split(%q) = (%q,%q), want (%q,%q)", c.in, dir, name, c.dir, c.name)
		}
	}
}

func TestCleanIdempotent(t *testing.T) {
	if err := quick.Check(func(s string) bool {
		c := Clean(s)
		return Clean(c) == c
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJoinSplitRoundTrip(t *testing.T) {
	if err := quick.Check(func(a, b string) bool {
		// For simple single-segment names, Join then Split recovers them.
		if a == "" || b == "" {
			return true
		}
		for _, r := range a + b {
			if r == '/' || r == '.' || r == 0 {
				return true
			}
		}
		dir, name := Split(Join("/", a, b))
		return dir == Clean("/"+a) && name == b
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemFSTotalBytes(t *testing.T) {
	fs := NewMemFS()
	if err := WriteFile(fs, "/a", make([]byte, 7)); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(fs, "/b", make([]byte, 5)); err != nil {
		t.Fatal(err)
	}
	if fs.TotalBytes() != 12 {
		t.Fatalf("TotalBytes = %d", fs.TotalBytes())
	}
}

func TestMemFSRenameDirMovesChildren(t *testing.T) {
	fs := NewMemFS()
	if err := WriteFile(fs, "/old/sub/f", []byte("z")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/old", "/new"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(fs, "/new/sub/f")
	if err != nil || string(got) != "z" {
		t.Fatalf("moved child = %q err=%v", got, err)
	}
	if Exists(fs, "/old/sub/f") {
		t.Fatal("old child still exists")
	}
}

func TestWriterAfterCloseFails(t *testing.T) {
	fs := NewMemFS()
	w, err := fs.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); err != io.ErrClosedPipe {
		t.Fatalf("write after close: %v", err)
	}
}

// Package vfs defines the filesystem interface shared by every storage
// backend in the stack: the plain in-memory filesystem used by tests, an
// OS-backed filesystem rooted at a directory (the "Linux file system" of
// the paper's serial assignments), and the HDFS client, which implements
// the same interface so that a MapReduce program written against the
// serial runner reruns unchanged on a cluster — the exact point of the
// course's second assignment.
package vfs

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Sentinel errors returned by all FileSystem implementations.
var (
	ErrNotExist  = errors.New("vfs: file does not exist")
	ErrExist     = errors.New("vfs: file already exists")
	ErrIsDir     = errors.New("vfs: is a directory")
	ErrNotDir    = errors.New("vfs: not a directory")
	ErrNotEmpty  = errors.New("vfs: directory not empty")
	ErrInvalid   = errors.New("vfs: invalid path")
	ErrReadOnly  = errors.New("vfs: read-only filesystem")
	ErrCorrupt   = errors.New("vfs: data corrupt")
	ErrUnhealthy = errors.New("vfs: filesystem unhealthy")
)

// FileInfo describes a file or directory.
type FileInfo struct {
	Path        string
	Size        int64
	IsDir       bool
	Replication int   // 0 for non-replicated filesystems
	BlockSize   int64 // 0 for non-block filesystems
	ModTime     time.Duration
}

// Name returns the final path element.
func (fi FileInfo) Name() string {
	_, name := Split(fi.Path)
	return name
}

// FileSystem is the storage contract. Paths are slash-separated and
// absolute ("/data/input.txt"). Implementations must be safe for
// sequential use; concurrency guarantees are implementation-specific.
type FileSystem interface {
	// Create opens a new file for writing. It fails if the file exists or
	// the parent directory is missing.
	Create(path string) (io.WriteCloser, error)
	// Open opens an existing file for reading.
	Open(path string) (io.ReadCloser, error)
	// Stat describes a file or directory.
	Stat(path string) (FileInfo, error)
	// List returns the direct children of a directory, sorted by path.
	List(path string) ([]FileInfo, error)
	// Mkdir creates a directory and any missing parents.
	Mkdir(path string) error
	// Remove deletes a file, or a directory (recursively when recursive).
	Remove(path string, recursive bool) error
	// Rename moves a file or directory to a new path.
	Rename(oldPath, newPath string) error
}

// Clean normalises a path to absolute slash form with no trailing slash
// (except root itself) and no empty or dot segments.
func Clean(path string) string {
	segs := strings.Split(path, "/")
	out := make([]string, 0, len(segs))
	for _, s := range segs {
		switch s {
		case "", ".":
		case "..":
			if len(out) > 0 {
				out = out[:len(out)-1]
			}
		default:
			out = append(out, s)
		}
	}
	return "/" + strings.Join(out, "/")
}

// Join joins path elements with slashes and cleans the result.
func Join(elem ...string) string {
	return Clean(strings.Join(elem, "/"))
}

// Split returns the parent directory and the base name of a cleaned path.
// Split("/") returns ("/", "").
func Split(path string) (dir, name string) {
	p := Clean(path)
	if p == "/" {
		return "/", ""
	}
	i := strings.LastIndexByte(p, '/')
	dir = p[:i]
	if dir == "" {
		dir = "/"
	}
	return dir, p[i+1:]
}

// Valid reports whether a path is usable (non-empty after cleaning, no NUL).
func Valid(path string) bool {
	return !strings.ContainsRune(path, 0) && Clean(path) != ""
}

// ReadFile reads the whole file at path.
func ReadFile(fs FileSystem, path string) ([]byte, error) {
	r, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}

// WriteFile creates path with the given contents, creating parents.
func WriteFile(fs FileSystem, path string, data []byte) error {
	dir, _ := Split(path)
	if err := fs.Mkdir(dir); err != nil {
		return err
	}
	w, err := fs.Create(path)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// Exists reports whether path names a file or directory.
func Exists(fs FileSystem, path string) bool {
	_, err := fs.Stat(path)
	return err == nil
}

// Walk visits every file (not directory) under root in sorted order.
func Walk(fs FileSystem, root string, fn func(FileInfo) error) error {
	info, err := fs.Stat(root)
	if err != nil {
		return err
	}
	if !info.IsDir {
		return fn(info)
	}
	children, err := fs.List(root)
	if err != nil {
		return err
	}
	sort.Slice(children, func(i, j int) bool { return children[i].Path < children[j].Path })
	for _, c := range children {
		if err := Walk(fs, c.Path, fn); err != nil {
			return err
		}
	}
	return nil
}

// CopyFile copies a single file between (possibly different) filesystems,
// returning the bytes moved. This is the engine under the shell's -put,
// -get and -copyToLocal commands.
func CopyFile(src FileSystem, srcPath string, dst FileSystem, dstPath string) (int64, error) {
	r, err := src.Open(srcPath)
	if err != nil {
		return 0, err
	}
	defer r.Close()
	dir, _ := Split(dstPath)
	if err := dst.Mkdir(dir); err != nil {
		return 0, err
	}
	w, err := dst.Create(dstPath)
	if err != nil {
		return 0, err
	}
	n, err := io.Copy(w, r)
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	return n, err
}

// CopyTree copies a file, or a directory recursively, returning total bytes.
func CopyTree(src FileSystem, srcPath string, dst FileSystem, dstPath string) (int64, error) {
	info, err := src.Stat(srcPath)
	if err != nil {
		return 0, err
	}
	if !info.IsDir {
		return CopyFile(src, srcPath, dst, dstPath)
	}
	if err := dst.Mkdir(dstPath); err != nil {
		return 0, err
	}
	children, err := src.List(srcPath)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, c := range children {
		n, err := CopyTree(src, c.Path, dst, Join(dstPath, c.Name()))
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// DiskUsage returns the total size in bytes of all files under root.
func DiskUsage(fs FileSystem, root string) (int64, error) {
	var total int64
	err := Walk(fs, root, func(fi FileInfo) error {
		total += fi.Size
		return nil
	})
	return total, err
}

// PathError decorates an error with the operation and path, in the style
// of os.PathError.
type PathError struct {
	Op   string
	Path string
	Err  error
}

func (e *PathError) Error() string {
	return fmt.Sprintf("%s %s: %v", e.Op, e.Path, e.Err)
}

func (e *PathError) Unwrap() error { return e.Err }

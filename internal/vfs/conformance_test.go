package vfs_test

import (
	"testing"

	"repro/internal/vfs"
	"repro/internal/vfs/vfstest"
)

func TestMemFSConformance(t *testing.T) {
	vfstest.Run(t, "mem", func(t *testing.T) vfs.FileSystem { return vfs.NewMemFS() })
}

func TestOsFSConformance(t *testing.T) {
	vfstest.Run(t, "os", func(t *testing.T) vfs.FileSystem {
		fs, err := vfs.NewOsFS(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return fs
	})
}

package vfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// OsFS is a FileSystem rooted at a directory on the host filesystem. It is
// the "plain Linux file system" of the paper's serial assignments: the
// first assignment runs MapReduce jars against it directly, with no HDFS.
// All vfs paths are confined beneath the root.
type OsFS struct {
	root string
}

var _ FileSystem = (*OsFS)(nil)

// NewOsFS returns a filesystem rooted at dir, creating it if needed.
func NewOsFS(dir string) (*OsFS, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(abs, 0o755); err != nil {
		return nil, err
	}
	return &OsFS{root: abs}, nil
}

// Root returns the host directory backing this filesystem.
func (o *OsFS) Root() string { return o.root }

func (o *OsFS) hostPath(path string) (string, error) {
	p := Clean(path)
	if !Valid(p) {
		return "", &PathError{Op: "resolve", Path: path, Err: ErrInvalid}
	}
	return filepath.Join(o.root, filepath.FromSlash(strings.TrimPrefix(p, "/"))), nil
}

func mapOsErr(op, path string, err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, fs.ErrNotExist):
		return &PathError{Op: op, Path: path, Err: ErrNotExist}
	case errors.Is(err, fs.ErrExist):
		return &PathError{Op: op, Path: path, Err: ErrExist}
	default:
		return &PathError{Op: op, Path: path, Err: err}
	}
}

func (o *OsFS) Create(path string) (io.WriteCloser, error) {
	hp, err := o.hostPath(path)
	if err != nil {
		return nil, err
	}
	if fi, err := os.Stat(hp); err == nil {
		if fi.IsDir() {
			return nil, &PathError{Op: "create", Path: path, Err: ErrIsDir}
		}
		return nil, &PathError{Op: "create", Path: path, Err: ErrExist}
	}
	f, err := os.OpenFile(hp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, mapOsErr("create", path, err)
	}
	return f, nil
}

func (o *OsFS) Open(path string) (io.ReadCloser, error) {
	hp, err := o.hostPath(path)
	if err != nil {
		return nil, err
	}
	fi, err := os.Stat(hp)
	if err != nil {
		return nil, mapOsErr("open", path, err)
	}
	if fi.IsDir() {
		return nil, &PathError{Op: "open", Path: path, Err: ErrIsDir}
	}
	f, err := os.Open(hp)
	if err != nil {
		return nil, mapOsErr("open", path, err)
	}
	return f, nil
}

func (o *OsFS) Stat(path string) (FileInfo, error) {
	hp, err := o.hostPath(path)
	if err != nil {
		return FileInfo{}, err
	}
	fi, err := os.Stat(hp)
	if err != nil {
		return FileInfo{}, mapOsErr("stat", path, err)
	}
	return FileInfo{Path: Clean(path), Size: fi.Size(), IsDir: fi.IsDir()}, nil
}

func (o *OsFS) List(path string) ([]FileInfo, error) {
	hp, err := o.hostPath(path)
	if err != nil {
		return nil, err
	}
	fi, err := os.Stat(hp)
	if err != nil {
		return nil, mapOsErr("list", path, err)
	}
	if !fi.IsDir() {
		return nil, &PathError{Op: "list", Path: path, Err: ErrNotDir}
	}
	entries, err := os.ReadDir(hp)
	if err != nil {
		return nil, mapOsErr("list", path, err)
	}
	out := make([]FileInfo, 0, len(entries))
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			continue
		}
		out = append(out, FileInfo{
			Path:  Join(path, e.Name()),
			Size:  info.Size(),
			IsDir: e.IsDir(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

func (o *OsFS) Mkdir(path string) error {
	hp, err := o.hostPath(path)
	if err != nil {
		return err
	}
	return mapOsErr("mkdir", path, os.MkdirAll(hp, 0o755))
}

func (o *OsFS) Remove(path string, recursive bool) error {
	p := Clean(path)
	if p == "/" {
		return &PathError{Op: "remove", Path: p, Err: ErrInvalid}
	}
	hp, err := o.hostPath(p)
	if err != nil {
		return err
	}
	if _, err := os.Stat(hp); err != nil {
		return mapOsErr("remove", p, err)
	}
	if recursive {
		return mapOsErr("remove", p, os.RemoveAll(hp))
	}
	if err := os.Remove(hp); err != nil {
		var pe *os.PathError
		if errors.As(err, &pe) {
			return &PathError{Op: "remove", Path: p, Err: ErrNotEmpty}
		}
		return mapOsErr("remove", p, err)
	}
	return nil
}

func (o *OsFS) Rename(oldPath, newPath string) error {
	op, err := o.hostPath(oldPath)
	if err != nil {
		return err
	}
	np, err := o.hostPath(newPath)
	if err != nil {
		return err
	}
	if _, err := os.Stat(np); err == nil {
		return &PathError{Op: "rename", Path: newPath, Err: ErrExist}
	}
	return mapOsErr("rename", oldPath, os.Rename(op, np))
}

package trace_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// fixture builds a two-trace registry: a fast trace, and a slow trace
// whose critical path runs job -> attempt -> pipeline (the slow leaf).
func fixture() *obs.Registry {
	r := obs.NewRegistry()

	slow := r.NewTrace(0)
	att := slow.NewChild()
	pipe := att.NewChild()
	shuf := att.NewChild()
	shuf.End("mr.shuffle", 10, 40, map[string]string{"attempt": "a1"})
	pipe.End("hdfs.write_pipeline", 10, 90, map[string]string{"node": "node3"})
	att.End("mr.reduce_attempt", 10, 100, map[string]string{"node": "node1"})
	slow.End("mr.job", 0, 120, map[string]string{"job": "job_x"})

	fast := r.NewTrace(time.Second)
	fast.End("serving.request", 0, 5, map[string]string{"op": "get"})
	return r
}

func TestBuildAndCriticalPath(t *testing.T) {
	r := fixture()
	spans := trace.Collect(r)
	if len(spans) != 5 {
		t.Fatalf("Collect = %d spans, want 5", len(spans))
	}
	roots := trace.Build(spans)
	if len(roots) != 2 {
		t.Fatalf("Build = %d roots, want 2", len(roots))
	}
	if roots[0].Span.Name != "mr.job" {
		t.Fatalf("first root = %s, want mr.job (record order)", roots[0].Span.Name)
	}
	steps := trace.CriticalPath(roots[0])
	var names []string
	for _, s := range steps {
		names = append(names, s.Span.Name)
	}
	want := []string{"mr.job", "mr.reduce_attempt", "hdfs.write_pipeline"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("critical path = %v, want %v", names, want)
	}
	// Self times: leaf keeps its duration; parents keep the rest.
	if steps[2].Self != 80 {
		t.Fatalf("pipeline self = %v, want 80ns", steps[2].Self)
	}
	if steps[1].Self != 10 { // 90 - 80
		t.Fatalf("attempt self = %v, want 10ns", steps[1].Self)
	}
	if steps[0].Self != 30 { // 120 - 90
		t.Fatalf("job self = %v, want 30ns", steps[0].Self)
	}
}

func TestBlameTable(t *testing.T) {
	r := fixture()
	roots := trace.Build(trace.Collect(r))
	blames := trace.BlameTable(trace.CriticalPath(roots[0]))
	if len(blames) != 3 {
		t.Fatalf("blame rows = %d, want 3", len(blames))
	}
	top := blames[0]
	if top.Kind != "hdfs.write_pipeline" || top.Layer != "hdfs" || top.Node != "node3" {
		t.Fatalf("top blame = %+v, want hdfs.write_pipeline on node3", top)
	}
}

func TestSummariesAndSlowest(t *testing.T) {
	r := fixture()
	sums := trace.Summaries(trace.Collect(r))
	if len(sums) != 2 {
		t.Fatalf("summaries = %d, want 2", len(sums))
	}
	slowest := trace.Slowest(sums, 1)
	if len(slowest) != 1 || slowest[0].Root.Name != "mr.job" {
		t.Fatalf("slowest = %+v, want the mr.job trace", slowest)
	}
	if slowest[0].Spans != 4 {
		t.Fatalf("slow trace spans = %d, want 4", slowest[0].Spans)
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	r := fixture()
	spans := trace.Collect(r)
	data, err := trace.Marshal(spans)
	if err != nil {
		t.Fatal(err)
	}
	back, err := trace.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(spans) {
		t.Fatalf("round trip = %d spans, want %d", len(back), len(spans))
	}
	for i := range back {
		if back[i].Trace != spans[i].Trace || back[i].ID != spans[i].ID ||
			back[i].Parent != spans[i].Parent || back[i].Name != spans[i].Name {
			t.Fatalf("span %d changed across round trip: %+v vs %+v", i, back[i], spans[i])
		}
	}
	data2, err := trace.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("Marshal not byte-stable across a Parse round trip")
	}
}

func TestRenderers(t *testing.T) {
	r := fixture()
	roots := trace.Build(trace.Collect(r))
	steps := trace.CriticalPath(roots[0])
	tree := trace.RenderTree(roots[0])
	for _, want := range []string{"mr.job", "  mr.reduce_attempt", "    hdfs.write_pipeline", "node=node3"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}
	cp := trace.RenderCriticalPath(steps)
	if !strings.Contains(cp, "hdfs.write_pipeline") || !strings.Contains(cp, "self") {
		t.Fatalf("critical path render:\n%s", cp)
	}
	bl := trace.RenderBlame(trace.BlameTable(steps))
	if !strings.Contains(bl, "node3") {
		t.Fatalf("blame render:\n%s", bl)
	}
}

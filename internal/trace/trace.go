// Package trace is the read side of the causal-tracing subsystem
// (internal/obs trace.go): byte-stable JSONL export/import of traced
// spans, per-trace tree reconstruction, the cross-layer critical path,
// and blame attribution. Where internal/history's report answers "where
// did this *job's* time go" from lifecycle events alone, this package
// answers it causally and across layers: a reduce attempt's critical
// path can bottom out in the HDFS write pipeline of one slow DataNode,
// and the blame table says so — node, layer and span kind.
//
// Exports are JSONL (one compact span object per line), persisted into
// HDFS next to the job-history file, and byte-identical across replays
// of the same seed — pinned by the golden-trace tests in internal/jobs.
package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/history"
	"repro/internal/obs"
)

// Path returns the HDFS path a job's trace export persists at, beside
// the job's history file.
func Path(jobID string) string { return history.Dir(jobID) + "/trace.jsonl" }

// Marshal renders spans as JSONL: one compact JSON object per line.
// Byte-stable: attr maps marshal with sorted keys and span order is the
// deterministic record order.
func Marshal(spans []obs.Span) ([]byte, error) {
	var buf bytes.Buffer
	for _, s := range spans {
		b, err := json.Marshal(s)
		if err != nil {
			return nil, err
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}

// Parse decodes a JSONL trace export (the inverse of Marshal; blank
// lines are skipped).
func Parse(data []byte) ([]obs.Span, error) {
	var out []obs.Span
	for i, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var s obs.Span
		if err := json.Unmarshal(line, &s); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", i+1, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// Node is one span in a reconstructed trace tree, children in record
// order.
type Node struct {
	Span     obs.Span
	Children []*Node
}

// Build reconstructs the trees of one or more traces from a flat span
// list: spans with no parent — or whose parent never recorded — become
// roots, in record order. Untraced spans (no identity) are ignored.
func Build(spans []obs.Span) []*Node {
	byID := map[obs.SpanID]*Node{}
	var nodes []*Node
	for _, s := range spans {
		if s.ID == 0 {
			continue
		}
		n := &Node{Span: s}
		byID[s.ID] = n
		nodes = append(nodes, n)
	}
	var roots []*Node
	for _, n := range nodes {
		if p := byID[n.Span.Parent]; p != nil && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// Step is one hop of a critical path: the span, and the self time blamed
// on it — the part of its extent not covered by its critical child (the
// leaf keeps its whole duration).
type Step struct {
	Span obs.Span
	Self time.Duration
}

// CriticalPath walks root to leaf, at each node descending into the
// child whose End is latest (ties break on record order, which is
// deterministic), and attributes to each step the time its critical
// child does not explain. This unifies internal/history's job-only
// critical path with the HDFS and serving spans hanging below attempts.
func CriticalPath(root *Node) []Step {
	var path []Step
	for n := root; n != nil; {
		var next *Node
		for _, c := range n.Children {
			if next == nil || c.Span.End > next.Span.End {
				next = c
			}
		}
		self := n.Span.Duration()
		if next != nil {
			self -= next.Span.Duration()
			if self < 0 {
				self = 0
			}
		}
		path = append(path, Step{Span: n.Span, Self: self})
		n = next
	}
	return path
}

// Layer returns the layer a span name belongs to: the dotted prefix
// ("mr", "hdfs", "yarn", "serving").
func Layer(name string) string {
	if i := strings.IndexByte(name, '.'); i > 0 {
		return name[:i]
	}
	return name
}

// Blame is self time aggregated over critical-path steps sharing a
// (layer, span kind, node) signature — the "who do I go yell at" table.
type Blame struct {
	Layer string
	Kind  string
	Node  string
	Self  time.Duration
	Steps int
}

// BlameTable aggregates critical-path steps into blame rows, largest
// self time first (ties by layer, kind, node for determinism).
func BlameTable(steps []Step) []Blame {
	type key struct{ layer, kind, node string }
	agg := map[key]*Blame{}
	var order []key
	for _, st := range steps {
		k := key{Layer(st.Span.Name), st.Span.Name, st.Span.Attrs["node"]}
		b := agg[k]
		if b == nil {
			b = &Blame{Layer: k.layer, Kind: k.kind, Node: k.node}
			agg[k] = b
			order = append(order, k)
		}
		b.Self += st.Self
		b.Steps++
	}
	out := make([]Blame, 0, len(order))
	for _, k := range order {
		out = append(out, *agg[k])
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Self != out[j].Self {
			return out[i].Self > out[j].Self
		}
		if out[i].Layer != out[j].Layer {
			return out[i].Layer < out[j].Layer
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// Summary describes one trace: its root span, extent and population.
type Summary struct {
	ID       obs.TraceID
	Root     obs.Span
	Spans    int
	Duration time.Duration
}

// Summaries groups a flat span list by trace and summarizes each: the
// root is the first recorded parentless span of the trace (its extent is
// the trace's duration). Order is first-recorded order.
func Summaries(spans []obs.Span) []Summary {
	idx := map[obs.TraceID]int{}
	var out []Summary
	for _, s := range spans {
		if s.Trace == "" {
			continue
		}
		i, ok := idx[s.Trace]
		if !ok {
			i = len(out)
			idx[s.Trace] = i
			out = append(out, Summary{ID: s.Trace})
		}
		out[i].Spans++
		if s.Parent == 0 && out[i].Root.ID == 0 {
			out[i].Root = s
			out[i].Duration = s.Duration()
		}
	}
	return out
}

// Slowest returns the n slowest traces, longest first (ties keep
// first-recorded order). n <= 0 returns all.
func Slowest(sums []Summary, n int) []Summary {
	out := append([]Summary(nil), sums...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Duration > out[j].Duration })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Collect returns every traced span in the registry, in record order —
// the whole-run export the webui trace pages read.
func Collect(reg *obs.Registry) []obs.Span {
	var out []obs.Span
	for _, s := range reg.Spans() {
		if s.Trace != "" {
			out = append(out, s)
		}
	}
	return out
}

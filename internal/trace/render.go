package trace

import (
	"fmt"
	"strings"
	"time"
)

// RenderTree renders one trace tree as an indented span listing —
// cmd/mrtrace's offline view of the webui waterfall.
func RenderTree(root *Node) string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		fmt.Fprintf(&b, "%s%-24s %10v  start %v%s\n",
			strings.Repeat("  ", depth), n.Span.Name,
			n.Span.Duration().Round(time.Microsecond),
			n.Span.Start.Round(time.Microsecond), attrSuffix(n.Span.Attrs))
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return b.String()
}

// renderAttrKeys is the attr subset worth a line of terminal: identity
// and blame, not raw sizes.
var renderAttrKeys = []string{"job", "task", "attempt", "node", "block", "op", "table", "region", "server", "app", "container", "outcome", "result", "reason"}

func attrSuffix(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	var parts []string
	for _, k := range renderAttrKeys {
		if v, ok := attrs[k]; ok {
			parts = append(parts, k+"="+v)
		}
	}
	if len(parts) == 0 {
		return ""
	}
	return "  [" + strings.Join(parts, " ") + "]"
}

// RenderCriticalPath renders the root-to-leaf critical path with per-step
// self time.
func RenderCriticalPath(steps []Step) string {
	var b strings.Builder
	b.WriteString("Critical path (root -> leaf, self = time not explained by the critical child):\n")
	for i, st := range steps {
		node := st.Span.Attrs["node"]
		if node == "" {
			node = "-"
		}
		fmt.Fprintf(&b, "  %d. %-24s %-10s span %10v  self %10v%s\n",
			i+1, st.Span.Name, node,
			st.Span.Duration().Round(time.Microsecond), st.Self.Round(time.Microsecond),
			attrSuffix(st.Span.Attrs))
	}
	return b.String()
}

// RenderBlame renders the aggregated blame table, biggest debtor first.
func RenderBlame(blames []Blame) string {
	var b strings.Builder
	b.WriteString("Blame (critical-path self time by layer/kind/node):\n")
	for _, bl := range blames {
		node := bl.Node
		if node == "" {
			node = "-"
		}
		fmt.Fprintf(&b, "  %-8s %-24s %-10s %10v  (%d step(s))\n",
			bl.Layer, bl.Kind, node, bl.Self.Round(time.Microsecond), bl.Steps)
	}
	return b.String()
}

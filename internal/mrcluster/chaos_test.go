package mrcluster_test

import (
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/faultinject/invariant"
	"repro/internal/hdfs"
	"repro/internal/mapreduce"
	"repro/internal/mrcluster"
	"repro/internal/serial"
	"repro/internal/vfs"
)

// serialWordCount computes the fault-free reference output for a corpus.
func serialWordCount(t *testing.T, data []byte, reducers int) string {
	t.Helper()
	local := vfs.NewMemFS()
	if err := vfs.WriteFile(local, "/in/data.txt", data); err != nil {
		t.Fatal(err)
	}
	j := wordCountJob("/in", "/out")
	j.NumReducers = reducers
	if _, err := (&serial.Runner{FS: local}).Run(j); err != nil {
		t.Fatal(err)
	}
	out, err := serial.ReadOutput(local, "/out")
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// chaosRig builds the 6-node cluster the MR chaos plans run against.
func chaosRig(t *testing.T, data []byte, mcfg mrcluster.Config) *testRig {
	t.Helper()
	mcfg.HeartbeatInterval = time.Second
	mcfg.TrackerExpiry = 5 * time.Second
	rig := newRig(t, 6, 2, hdfs.Config{
		BlockSize:           8 << 10,
		Replication:         3,
		HeartbeatInterval:   time.Second,
		HeartbeatExpiry:     5 * time.Second,
		ReplMonitorInterval: 2 * time.Second,
	}, mcfg)
	rig.stage(t, "/in/data.txt", data)
	return rig
}

// TestChaosJobSurvivesNodeFailures is the MapReduce half of the chaos
// harness: with at most replication-1 concurrent node failures (each
// taking down a DataNode and a TaskTracker together), a seeded random
// fault plan must not stop wordcount from completing with exactly the
// serial runner's output, and the filesystem must settle clean after.
func TestChaosJobSurvivesNodeFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("tier-2 chaos test")
	}
	data := corpus(3000)
	want := serialWordCount(t, data, 3)
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		rig := chaosRig(t, data, mrcluster.Config{})
		plan := faultinject.RandomPlan(seed, faultinject.PlanOpts{
			Nodes: 6, Racks: 2, Events: 8,
			Horizon:           45 * time.Second,
			MaxConcurrentDown: 2,
			Kinds: []faultinject.Kind{
				faultinject.NodeCrash, faultinject.NodeRestart, faultinject.HeartbeatDrop,
			},
		})
		in, err := faultinject.New(faultinject.Target{Engine: rig.eng, DFS: rig.dfs, MR: rig.mc}, plan)
		if err != nil {
			t.Fatal(err)
		}
		base := rig.eng.Now()
		in.Install()
		job := wordCountJob("/in", "/out")
		job.NumReducers = 3
		rep, err := rig.mc.Run(job)
		if err != nil {
			t.Fatalf("seed %d: job failed under plan:\n%s\n%v", seed, in.LogString(), err)
		}
		if err := invariant.CountersConsistent(rep); err != nil {
			t.Fatalf("seed %d: %v\nlog:\n%s", seed, err, in.LogString())
		}
		got, err := serial.ReadOutput(rig.dfs.Client(hdfs.GatewayNode), "/out")
		if err != nil {
			t.Fatal(err)
		}
		if err := invariant.OutputsEqual(want, got); err != nil {
			t.Fatalf("seed %d: %v\nlog:\n%s", seed, err, in.LogString())
		}
		rig.eng.RunUntil(base + plan.Horizon() + time.Second)
		if _, err := invariant.FsckSettled(rig.dfs, 3*time.Minute); err != nil {
			t.Fatalf("seed %d: %v\nlog:\n%s", seed, err, in.LogString())
		}
	}
}

// TestChaosSpeculationFiresUnderSlowNode plants a straggler through the
// harness (SlowNode, factor 8) and checks that speculative execution
// launches backup attempts and the output still matches the serial run.
func TestChaosSpeculationFiresUnderSlowNode(t *testing.T) {
	data := corpus(3000)
	want := serialWordCount(t, data, 3)
	rig := chaosRig(t, data, mrcluster.Config{Speculative: true})
	plan := faultinject.Plan{Seed: 9, Faults: []faultinject.Fault{
		{At: 0, Kind: faultinject.SlowNode, Node: 2, Factor: 8},
	}}
	in, err := faultinject.New(faultinject.Target{Engine: rig.eng, DFS: rig.dfs, MR: rig.mc}, plan)
	if err != nil {
		t.Fatal(err)
	}
	in.Install()
	job := wordCountJob("/in", "/out")
	job.NumReducers = 3
	rep, err := rig.mc.Run(job)
	if err != nil {
		t.Fatalf("job failed: %v", err)
	}
	if launched := rep.Counters.Get(mapreduce.CtrSpeculativeLaunch); launched == 0 {
		t.Fatalf("no speculative attempts launched against a x8 straggler:\n%s", rep)
	}
	if err := invariant.CountersConsistent(rep); err != nil {
		t.Fatal(err)
	}
	got, err := serial.ReadOutput(rig.dfs.Client(hdfs.GatewayNode), "/out")
	if err != nil {
		t.Fatal(err)
	}
	if err := invariant.OutputsEqual(want, got); err != nil {
		t.Fatal(err)
	}
}

// TestChaosTaskErrorsAllScopes arms map, reduce and shuffle faults at
// once (below the retry budget) and requires the job to grind through
// retries to the correct answer.
func TestChaosTaskErrorsAllScopes(t *testing.T) {
	data := corpus(2000)
	want := serialWordCount(t, data, 3)
	rig := chaosRig(t, data, mrcluster.Config{MaxAttempts: 6})
	plan := faultinject.Plan{Seed: 4, Faults: []faultinject.Fault{
		{At: 0, Kind: faultinject.TaskError, Task: mrcluster.TaskFault{
			JobName: "wordcount", Scope: mrcluster.ScopeMap, Probability: 0.3, AfterFraction: 0.5}},
		{At: 0, Kind: faultinject.TaskError, Task: mrcluster.TaskFault{
			JobName: "wordcount", Scope: mrcluster.ScopeShuffle, Probability: 0.3, AfterFraction: 0.4}},
		{At: 0, Kind: faultinject.TaskError, Task: mrcluster.TaskFault{
			JobName: "wordcount", Scope: mrcluster.ScopeReduce, Probability: 0.3, AfterFraction: 0.6}},
	}}
	in, err := faultinject.New(faultinject.Target{Engine: rig.eng, DFS: rig.dfs, MR: rig.mc}, plan)
	if err != nil {
		t.Fatal(err)
	}
	in.Install()
	job := wordCountJob("/in", "/out")
	job.NumReducers = 3
	rep, err := rig.mc.Run(job)
	if err != nil {
		t.Fatalf("job failed: %v\n%s", err, in.LogString())
	}
	if rep.Counters.Get(mapreduce.CtrTaskRetries) == 0 {
		t.Fatalf("expected injected task errors to force retries:\n%s", rep)
	}
	if err := invariant.CountersConsistent(rep); err != nil {
		t.Fatal(err)
	}
	got, err := serial.ReadOutput(rig.dfs.Client(hdfs.GatewayNode), "/out")
	if err != nil {
		t.Fatal(err)
	}
	if err := invariant.OutputsEqual(want, got); err != nil {
		t.Fatal(err)
	}
}

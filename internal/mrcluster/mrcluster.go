// Package mrcluster is the distributed MapReduce runtime (Hadoop MRv1
// architecture): a JobTracker that schedules map tasks for data locality
// using block locations from the NameNode, TaskTrackers with map/reduce
// slots that heartbeat and can crash, a shuffle whose cost is modelled on
// the cluster network, task retries, speculative execution and job
// reports. It runs entirely on the sim engine: user map/reduce code
// executes for real over real HDFS bytes, while durations come from the
// cost model — so results are exact and performance is deterministic.
package mrcluster

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/yarn"
)

// Config tunes the runtime. Zero values take Hadoop-1.x-flavoured defaults.
type Config struct {
	MapSlotsPerNode    int
	ReduceSlotsPerNode int
	MaxAttempts        int
	// Speculative enables speculative execution of straggling tasks.
	Speculative bool
	// SpeculativeThreshold is the slowdown versus the median completed
	// task duration beyond which a backup attempt launches (default 1.5).
	SpeculativeThreshold float64
	// MapWork / ReduceWork model per-task CPU cost. CombineWork is the
	// extra map-side cost per map-output record when a combiner runs —
	// the "increased map task run time" half of the combiner trade-off.
	MapWork     cluster.CPUWork
	ReduceWork  cluster.CPUWork
	CombineWork cluster.CPUWork
	// SharedStorage models the paper's Figure 1(a) HPC layout: compute
	// nodes read input from a shared parallel filesystem across the
	// interconnect instead of from local HDFS replicas. Reads contend for
	// the array's aggregate bandwidth; data locality cannot exist.
	SharedStorage bool
	// DistributedCache localises each job's side files once per
	// TaskTracker (Hadoop's DistributedCache): the first task on a node
	// pays the HDFS read; subsequent tasks read the local copy for free.
	DistributedCache bool
	// CompressShuffle compresses map outputs before the shuffle
	// (mapred.compress.map.output): network bytes drop to the real
	// compressed size, at a CPU cost per uncompressed byte on both sides.
	CompressShuffle bool
	// ShuffleCodec names the iofmt codec the compressed shuffle uses
	// (default "gzip"; "lzs" trades ratio for the cheaper LZ class).
	ShuffleCodec string
	// CompressWork is the per-byte CPU cost of compression +
	// decompression — shuffle, compressed inputs and compressed outputs
	// all charge it (default 6ns/B).
	CompressWork cluster.CPUWork
	// ShuffleParallelism is the number of concurrent fetch streams per
	// reduce task (Hadoop's parallel copies, default 5).
	ShuffleParallelism int
	// HeartbeatInterval and TrackerExpiry govern TaskTracker liveness.
	HeartbeatInterval time.Duration
	TrackerExpiry     time.Duration
	// NodeSlowdown multiplies task durations on specific nodes (straggler
	// injection for the speculative-execution experiments).
	NodeSlowdown map[cluster.NodeID]float64
	// YARN, when set, runs the JobTracker as a YARN application: jobs
	// become managed apps on this capacity ResourceManager (which must be
	// built over the same engine and topology) and every task attempt
	// runs inside a negotiated container instead of a per-node slot. See
	// yarnbridge.go for the semantic differences (speculation disabled,
	// slot caps replaced by container sizes).
	YARN *yarn.ResourceManager
	// DefaultQueue is the capacity queue jobs land in when Job.Queue is
	// empty (YARN mode only).
	DefaultQueue string
	// MapContainer / ReduceContainer size task containers in YARN mode
	// (defaults 1vc/1024MB and 1vc/2048MB).
	MapContainer    yarn.Resource
	ReduceContainer yarn.Resource
}

func (c Config) withDefaults() Config {
	if c.MapSlotsPerNode <= 0 {
		c.MapSlotsPerNode = 2
	}
	if c.ReduceSlotsPerNode <= 0 {
		c.ReduceSlotsPerNode = 1
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.SpeculativeThreshold <= 0 {
		c.SpeculativeThreshold = 1.5
	}
	if c.MapWork == (cluster.CPUWork{}) {
		c.MapWork = cluster.DefaultMapWork()
	}
	if c.ReduceWork == (cluster.CPUWork{}) {
		c.ReduceWork = cluster.DefaultReduceWork()
	}
	if c.ShuffleParallelism <= 0 {
		c.ShuffleParallelism = 5
	}
	if c.CombineWork == (cluster.CPUWork{}) {
		c.CombineWork = cluster.CPUWork{PerRecord: 150}
	}
	if c.CompressWork == (cluster.CPUWork{}) {
		c.CompressWork = cluster.CPUWork{PerByte: 6}
	}
	if c.ShuffleCodec == "" {
		c.ShuffleCodec = "gzip"
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 3 * time.Second
	}
	if c.TrackerExpiry <= 0 {
		c.TrackerExpiry = 30 * time.Second
	}
	if c.YARN != nil {
		// Preemption is the RM's rebalancing mechanism; a speculative
		// backup attempt would fight it for containers.
		c.Speculative = false
		if c.MapContainer == (yarn.Resource{}) {
			c.MapContainer = yarn.Resource{VCores: 1, MemoryMB: 1024}
		}
		if c.ReduceContainer == (yarn.Resource{}) {
			c.ReduceContainer = yarn.Resource{VCores: 1, MemoryMB: 2048}
		}
	}
	return c
}

// TaskTracker runs task attempts on one node. Its map outputs live on the
// node's local disk: if the tracker dies, completed map work is lost and
// must be re-executed elsewhere — the failure mode behind the paper's
// first-semester meltdown.
type TaskTracker struct {
	id   cluster.NodeID
	node *cluster.Node

	alive           bool
	lossHandled     bool
	mapSlotsUsed    int
	reduceSlotsUsed int
	lastHeartbeat   sim.Time

	// muteUntil suppresses heartbeats before this instant (fault
	// injection); past TrackerExpiry the JobTracker declares the node lost.
	muteUntil sim.Time

	// mapOutputs holds completed map outputs keyed by (job, mapIndex).
	mapOutputs map[outputKey]*mapreduce.MapOutput

	// sideCache holds side files localised by the DistributedCache,
	// keyed by path. Lost when the tracker dies.
	sideCache map[string][]byte

	hbTicker *sim.Ticker
}

type outputKey struct {
	job string
	m   int
}

// ID returns the node the tracker runs on.
func (tt *TaskTracker) ID() cluster.NodeID { return tt.id }

// Hostname returns the tracker's machine name.
func (tt *TaskTracker) Hostname() string { return tt.node.Hostname }

// Alive reports whether the daemon is running.
func (tt *TaskTracker) Alive() bool { return tt.alive }

// TaskScope selects which part of a job's execution a TaskFault strikes.
type TaskScope int

const (
	// ScopeMap strikes map attempts — the "run time errors that created
	// memory leaks ... and consequently crashed the task tracker and data
	// node daemons" of the paper's Fall 2012 story.
	ScopeMap TaskScope = iota
	// ScopeReduce strikes reduce attempts after the shuffle completes.
	ScopeReduce
	// ScopeShuffle strikes the fetch phase feeding a reduce attempt.
	ScopeShuffle
)

// String names the scope for fault logs.
func (s TaskScope) String() string {
	switch s {
	case ScopeReduce:
		return "reduce"
	case ScopeShuffle:
		return "shuffle"
	default:
		return "map"
	}
}

// TaskFault injects runtime errors into a job's task attempts. It is the
// runtime's task-level injection point, driven directly or through a
// faultinject.Plan (fault kind TaskError).
type TaskFault struct {
	// JobName selects the job whose attempts misbehave.
	JobName string
	// Scope selects map attempts (default), reduce attempts or shuffle
	// fetches.
	Scope TaskScope
	// Probability is the chance each in-scope attempt hits the fault.
	Probability float64
	// CrashDaemons, when set, kills the TaskTracker (and the co-located
	// DataNode) instead of merely failing the attempt.
	CrashDaemons bool
	// AfterFraction is how far through the attempt the fault strikes.
	AfterFraction float64
}

// MRCluster bundles the JobTracker and one TaskTracker per node over an
// existing MiniDFS.
type MRCluster struct {
	Engine   *sim.Engine
	Topology *cluster.Topology
	Cost     cluster.CostModel
	DFS      *hdfs.MiniDFS
	Net      *cluster.Network
	JT       *JobTracker
	// Obs is the cluster-wide observability registry, shared with the
	// underlying MiniDFS so one snapshot covers storage and compute.
	Obs *obs.Registry

	trackers []*TaskTracker
	cfg      Config
	// started flips after construction: tracker (re)starts from then on
	// also return the node to the YARN pool (initial starts must not, or
	// they would override the autoscaler's initial pool size).
	started bool

	// slow holds the current per-node straggler factors; seeded from
	// Config.NodeSlowdown and mutable at runtime via SetNodeSlowdown.
	slow map[cluster.NodeID]float64
}

// NewMRCluster starts TaskTrackers on every node of the DFS topology.
func NewMRCluster(dfs *hdfs.MiniDFS, cfg Config, seed int64) *MRCluster {
	cfg = cfg.withDefaults()
	mc := &MRCluster{
		Engine:   dfs.Engine,
		Topology: dfs.Topology,
		Cost:     dfs.Cost,
		DFS:      dfs,
		Net:      dfs.Net,
		Obs:      dfs.Obs,
		cfg:      cfg,
		slow:     map[cluster.NodeID]float64{},
	}
	for id, f := range cfg.NodeSlowdown {
		mc.slow[id] = f
	}
	jt := newJobTracker(mc, sim.NewRand(seed).Derive("jobtracker"))
	mc.JT = jt
	for _, n := range dfs.Topology.Nodes() {
		tt := &TaskTracker{
			id:         n.ID,
			node:       n,
			mapOutputs: map[outputKey]*mapreduce.MapOutput{},
		}
		mc.trackers = append(mc.trackers, tt)
		mc.StartTaskTracker(n.ID)
	}
	mc.started = true
	jt.start()
	return mc
}

// Config returns the effective runtime configuration.
func (mc *MRCluster) Config() Config { return mc.cfg }

// TaskTrackers returns the trackers in node order.
func (mc *MRCluster) TaskTrackers() []*TaskTracker { return mc.trackers }

// TaskTracker returns the tracker on a node, or nil.
func (mc *MRCluster) TaskTracker(id cluster.NodeID) *TaskTracker {
	if int(id) < 0 || int(id) >= len(mc.trackers) {
		return nil
	}
	return mc.trackers[id]
}

// StartTaskTracker (re)starts the tracker daemon on a node.
func (mc *MRCluster) StartTaskTracker(id cluster.NodeID) {
	tt := mc.TaskTracker(id)
	if tt == nil || tt.alive {
		return
	}
	tt.alive = true
	tt.lossHandled = false
	tt.lastHeartbeat = mc.Engine.Now()
	tt.muteUntil = 0
	tt.mapSlotsUsed, tt.reduceSlotsUsed = 0, 0
	tt.mapOutputs = map[outputKey]*mapreduce.MapOutput{}
	tt.sideCache = map[string][]byte{}
	tt.hbTicker = mc.Engine.Every(mc.cfg.HeartbeatInterval, func() {
		if tt.alive && mc.Engine.Now() >= tt.muteUntil {
			mc.JT.heartbeat(tt)
		}
	})
	if mc.cfg.YARN != nil && mc.started {
		// A rejoined tracker returns its node to the allocatable pool.
		mc.cfg.YARN.SetNodeActive(id, true)
	}
}

// KillTaskTracker crashes the tracker daemon on a node. Map outputs on the
// node become unreachable; the JobTracker notices via heartbeat expiry.
func (mc *MRCluster) KillTaskTracker(id cluster.NodeID) {
	tt := mc.TaskTracker(id)
	if tt == nil || !tt.alive {
		return
	}
	tt.alive = false
	if tt.hbTicker != nil {
		tt.hbTicker.Stop()
	}
}

// InjectTaskFault arms a fault for future attempts of a job.
func (mc *MRCluster) InjectTaskFault(f TaskFault) { mc.JT.faults = append(mc.JT.faults, f) }

// ClearTaskFaults disarms every injected task fault.
func (mc *MRCluster) ClearTaskFaults() { mc.JT.faults = nil }

// SetNodeSlowdown sets (or, with factor <= 0, clears) the straggler
// multiplier applied to task attempts that start on a node from now on;
// attempts already running keep their original modelled duration.
func (mc *MRCluster) SetNodeSlowdown(id cluster.NodeID, factor float64) {
	if factor <= 0 {
		delete(mc.slow, id)
		return
	}
	mc.slow[id] = factor
}

// DropTrackerHeartbeatsFor mutes a TaskTracker's heartbeats for the next d
// of virtual time without stopping its work. Past TrackerExpiry the
// JobTracker declares the node lost and reschedules everything it held —
// the rejoin path afterwards is StartTaskTracker (Hadoop reinitialises a
// returning tracker from scratch).
func (mc *MRCluster) DropTrackerHeartbeatsFor(id cluster.NodeID, d time.Duration) {
	tt := mc.TaskTracker(id)
	if tt == nil {
		return
	}
	until := mc.Engine.Now() + d
	if until > tt.muteUntil {
		tt.muteUntil = until
	}
}

// Submit queues a job for execution and returns its handle.
func (mc *MRCluster) Submit(job *mapreduce.Job) (*JobHandle, error) {
	return mc.JT.submit(job)
}

// Run submits a job and drives the simulation until it finishes.
func (mc *MRCluster) Run(job *mapreduce.Job) (*Report, error) {
	h, err := mc.Submit(job)
	if err != nil {
		return nil, err
	}
	guard := 0
	for !h.Done() {
		if !mc.Engine.Step() {
			return nil, fmt.Errorf("mrcluster: simulation stalled with job %q incomplete", job.Name)
		}
		guard++
		if guard > 50_000_000 {
			return nil, fmt.Errorf("mrcluster: job %q exceeded event budget", job.Name)
		}
	}
	return h.Report(), h.Err()
}

package mrcluster

import (
	"repro/internal/yarn"
)

// This file runs the JobTracker as a YARN application — the MRv2 shape
// the paper's future-work section points at. With Config.YARN set, the
// JobTracker stops owning per-node map/reduce slots: each submitted job
// becomes a managed application on the capacity ResourceManager, and
// every task attempt runs inside a container negotiated from it. Jobs,
// faults, metrics and history all keep flowing through the JobTracker
// unchanged; only the "where may work run, and how much of it" decision
// moves into the RM's capacity queues — one scheduling path shared with
// every other tenant of the cluster.
//
// Differences from slot mode, by design:
//   - Speculative execution is disabled (the RM's preemption is the
//     resource-rebalancing mechanism; speculation would fight it for
//     containers).
//   - Slot counters remain as informational gauges of per-node
//     concurrency but no longer cap anything; container sizes do.
//   - A preempted attempt is killed without a failure charge and its
//     task re-requests a container — exactly the tracker-loss re-attempt
//     path, but surgical.

// Container request tags: the RM echoes them on granted containers so
// the JobTracker knows which kind of work it asked for.
const (
	tagMap    = "map"
	tagReduce = "reduce"
)

// yarnMode reports whether the JobTracker negotiates containers from a
// YARN ResourceManager instead of owning per-node slots.
func (jt *JobTracker) yarnMode() bool { return jt.mc.cfg.YARN != nil }

// jtAppMaster adapts one job run to the yarn.AppMaster interface.
type jtAppMaster struct {
	jt *JobTracker
	jr *jobRun
}

func (am *jtAppMaster) OnAllocated(c *yarn.Container) { am.jt.onContainerAllocated(am.jr, c) }
func (am *jtAppMaster) OnPreempted(c *yarn.Container) { am.jt.onContainerPreempted(am.jr, c) }

// submitApp registers a job as a managed YARN application in its queue.
func (jt *JobTracker) submitApp(jr *jobRun) error {
	queue := jr.job.Queue
	if queue == "" {
		queue = jt.mc.cfg.DefaultQueue
	}
	user := jr.job.User
	if user == "" {
		user = "hdfs"
	}
	app, err := jt.mc.cfg.YARN.SubmitManaged(yarn.AppSpec{
		Name:  jr.id,
		User:  user,
		Queue: queue,
	}, &jtAppMaster{jt: jt, jr: jr})
	if err != nil {
		return err
	}
	jr.app = app
	return nil
}

// syncRequests reconciles each running job's outstanding container
// requests with its runnable tasks: one map request per pending map
// (carrying the split's replica hosts as locality hints), one reduce
// request per pending reduce once the maps are done, and cancellations
// when demand shrank (a task got done another way). Called from every
// schedule() pass, so demand converges within a heartbeat.
func (jt *JobTracker) syncRequests() {
	rm := jt.mc.cfg.YARN
	for _, jr := range jt.jobs {
		if jr.state != jobRunning || jr.app == nil || jr.app.State != yarn.AppRunning {
			continue
		}
		var pend []*task
		for _, t := range jr.maps {
			if t.state == taskPending {
				pend = append(pend, t)
			}
		}
		if d := len(pend) - jr.mapReqs; d > 0 {
			for _, t := range pend[len(pend)-d:] {
				jr.mapReqs++
				rm.Request(jr.app, yarn.ContainerRequest{
					Resource: jt.mc.cfg.MapContainer,
					Hosts:    t.split.Hosts,
					Tag:      tagMap,
				})
			}
		} else if d < 0 {
			jr.mapReqs -= rm.CancelRequests(jr.app, tagMap, -d)
		}
		rPend := 0
		if jr.mapsDone == len(jr.maps) {
			for _, t := range jr.reduces {
				if t.state == taskPending {
					rPend++
				}
			}
		}
		if d := rPend - jr.reduceReqs; d > 0 {
			for i := 0; i < d; i++ {
				jr.reduceReqs++
				rm.Request(jr.app, yarn.ContainerRequest{
					Resource: jt.mc.cfg.ReduceContainer,
					Tag:      tagReduce,
				})
			}
		} else if d < 0 {
			jr.reduceReqs -= rm.CancelRequests(jr.app, tagReduce, -d)
		}
	}
}

// onContainerAllocated matches a granted container to the best runnable
// task. Allocations can go stale (the task finished or failed between
// request and grant, or the tracker died); stale containers go straight
// back to the RM.
func (jt *JobTracker) onContainerAllocated(jr *jobRun, c *yarn.Container) {
	rm := jt.mc.cfg.YARN
	if c.Tag == tagReduce {
		jr.reduceReqs--
	} else {
		jr.mapReqs--
	}
	if jr.state != jobRunning {
		rm.Release(c, "job_done")
		return
	}
	tt := jt.mc.TaskTracker(c.Node)
	if tt == nil || !tt.alive {
		rm.Release(c, "tracker_dead")
		return
	}
	switch c.Tag {
	case tagMap:
		t := jt.pickMapTaskFor(jr, tt)
		if t == nil {
			rm.Release(c, "stale")
			return
		}
		jt.startMapAttempt(t, tt, false, c)
	case tagReduce:
		var pick *task
		for _, t := range jr.reduces {
			if t.state == taskPending {
				pick = t
				break
			}
		}
		if pick == nil {
			rm.Release(c, "stale")
			return
		}
		if !jt.startReduceAttempt(pick, tt, false, c) {
			rm.Release(c, "unfetchable")
		}
	default:
		rm.Release(c, "bad_tag")
	}
}

// pickMapTaskFor returns the pending map task with the best locality for
// the container's node (first data-local, then rack-local, then any),
// walking tasks in index order for determinism.
func (jt *JobTracker) pickMapTaskFor(jr *jobRun, tt *TaskTracker) *task {
	var best *task
	bestRank := 3
	for _, t := range jr.maps {
		if t.state != taskPending {
			continue
		}
		if r := jt.localityRank(t, tt); r < bestRank {
			best, bestRank = t, r
			if r == 0 {
				break
			}
		}
	}
	return best
}

// onContainerPreempted kills the attempt running inside a preempted
// container — without a failure charge, exactly like the tracker-loss
// path — and lets the next schedule pass re-request a replacement.
func (jt *JobTracker) onContainerPreempted(jr *jobRun, c *yarn.Container) {
	if a := jt.containerAttempts[c.ID]; a != nil {
		jt.killAttempt(a, "preempted")
	}
	if jr.state == jobRunning {
		jt.schedule()
	}
}

// releaseContainer returns an attempt's container to the RM (no-op in
// slot mode or when the RM already took it back by preemption).
func (jt *JobTracker) releaseContainer(a *attempt, reason string) {
	if a.container == nil {
		return
	}
	delete(jt.containerAttempts, a.container.ID)
	if !a.container.Released() {
		jt.mc.cfg.YARN.Release(a.container, reason)
	}
}

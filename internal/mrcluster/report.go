package mrcluster

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/sim"
)

// Report is the job summary the students studied after each run — phase
// times on the virtual clock, task counts, locality breakdown, and the
// full counter set (shuffle bytes, HDFS bytes, combiner activity).
type Report struct {
	JobID   string
	JobName string
	Failed  bool
	Err     error

	SubmittedAt sim.Time
	MapsDoneAt  sim.Time
	FinishedAt  sim.Time

	MapTasks    int
	ReduceTasks int

	MedianMapTime    time.Duration
	MedianReduceTime time.Duration

	Counters *mapreduce.Counters
}

// Makespan returns the job's total virtual duration.
func (r *Report) Makespan() time.Duration { return r.FinishedAt - r.SubmittedAt }

// MapPhase returns the duration of the map phase.
func (r *Report) MapPhase() time.Duration {
	if r.MapsDoneAt == 0 {
		return 0
	}
	return r.MapsDoneAt - r.SubmittedAt
}

// ReducePhase returns the duration of the shuffle+reduce phase.
func (r *Report) ReducePhase() time.Duration {
	if r.MapsDoneAt == 0 {
		return 0
	}
	return r.FinishedAt - r.MapsDoneAt
}

// ShuffleBytes returns the bytes moved in the shuffle.
func (r *Report) ShuffleBytes() int64 { return r.Counters.Get(mapreduce.CtrShuffleBytes) }

// LocalityFraction returns the fraction of map tasks that ran data-local.
func (r *Report) LocalityFraction() float64 {
	local := r.Counters.Get(mapreduce.CtrDataLocalMaps)
	total := local + r.Counters.Get(mapreduce.CtrRackLocalMaps) + r.Counters.Get(mapreduce.CtrRemoteMaps)
	if total == 0 {
		return 0
	}
	return float64(local) / float64(total)
}

// String renders the report in the style of a Hadoop job summary.
func (r *Report) String() string {
	var b strings.Builder
	status := "completed successfully"
	if r.Failed {
		status = fmt.Sprintf("FAILED: %v", r.Err)
	}
	fmt.Fprintf(&b, "Job %s (%s) %s\n", r.JobID, r.JobName, status)
	fmt.Fprintf(&b, "  Map tasks=%d  Reduce tasks=%d\n", r.MapTasks, r.ReduceTasks)
	fmt.Fprintf(&b, "  Map phase=%v  Reduce phase=%v  Makespan=%v\n",
		r.MapPhase().Round(time.Millisecond),
		r.ReducePhase().Round(time.Millisecond),
		r.Makespan().Round(time.Millisecond))
	fmt.Fprintf(&b, "  Data-local maps=%d/%d (%.0f%%)\n",
		r.Counters.Get(mapreduce.CtrDataLocalMaps), int64(r.MapTasks), 100*r.LocalityFraction())
	fmt.Fprintf(&b, "  Counters:\n%s", r.Counters)
	return b.String()
}

func buildReport(jr *jobRun) *Report {
	return &Report{
		JobID:            jr.id,
		JobName:          jr.job.Name,
		Failed:           jr.state == jobFailed,
		Err:              jr.err,
		SubmittedAt:      jr.submittedAt,
		MapsDoneAt:       jr.mapsDoneAt,
		FinishedAt:       jr.finishedAt,
		MapTasks:         len(jr.maps),
		ReduceTasks:      len(jr.reduces),
		MedianMapTime:    median(jr.mapDurations),
		MedianReduceTime: median(jr.reduceDurations),
		Counters:         jr.counters,
	}
}

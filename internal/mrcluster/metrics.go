package mrcluster

import (
	"repro/internal/history"
	"repro/internal/obs"
)

// Metric names emitted by the MapReduce runtime. The full taxonomy is
// documented in docs/OBSERVABILITY.md.
const (
	MetricJTJobsSubmitted     = "mr.jt.jobs_submitted"
	MetricJTJobsSucceeded     = "mr.jt.jobs_succeeded"
	MetricJTJobsFailed        = "mr.jt.jobs_failed"
	MetricJTMapsLaunched      = "mr.jt.maps_launched"
	MetricJTReducesLaunched   = "mr.jt.reduces_launched"
	MetricJTSpeculativeLaunch = "mr.jt.speculative_launched"
	MetricJTMapsFailed        = "mr.jt.maps_failed"
	MetricJTReducesFailed     = "mr.jt.reduces_failed"
	MetricJTAttemptsKilled    = "mr.jt.attempts_killed"
	MetricJTTrackerLosses     = "mr.jt.tracker_losses"
	MetricJTSchedulePasses    = "mr.jt.schedule_passes"
	MetricJTShuffleBytes      = "mr.jt.shuffle_bytes"
	MetricJTInputDecodedBytes = "mr.jt.input_decoded_bytes"
	MetricJTOutputFileBytes   = "mr.jt.output_file_bytes"
	MetricJTMapsDataLocal     = "mr.jt.maps_data_local"
	MetricJTMapsRackLocal     = "mr.jt.maps_rack_local"
	MetricJTMapsRemote        = "mr.jt.maps_remote"
	MetricMapAttemptTime      = "mr.map_attempt_time"
	MetricReduceAttemptTime   = "mr.reduce_attempt_time"
	MetricShuffleTime         = "mr.shuffle_time"
	MetricJTTracesPersisted   = "mr.jt.traces_persisted"

	// Span names.
	SpanMapAttempt    = "mr.map_attempt"
	SpanReduceAttempt = "mr.reduce_attempt"
	SpanJob           = "mr.job"
	SpanTask          = "mr.task"
	SpanShuffle       = "mr.shuffle"
)

// jtMetrics holds the JobTracker's interned metric handles.
type jtMetrics struct {
	jobsSubmitted     *obs.Counter
	jobsSucceeded     *obs.Counter
	jobsFailed        *obs.Counter
	mapsLaunched      *obs.Counter
	reducesLaunched   *obs.Counter
	speculativeLaunch *obs.Counter
	mapsFailed        *obs.Counter
	reducesFailed     *obs.Counter
	attemptsKilled    *obs.Counter
	trackerLosses     *obs.Counter
	schedulePasses    *obs.Counter
	shuffleBytes      *obs.Counter
	inputDecodedBytes *obs.Counter
	outputFileBytes   *obs.Counter
	mapsDataLocal     *obs.Counter
	mapsRackLocal     *obs.Counter
	mapsRemote        *obs.Counter
	mapAttemptTime    *obs.Histogram
	reduceAttemptTime *obs.Histogram
	shuffleTime       *obs.Histogram

	// Job-history emission/persistence counters (names owned by
	// internal/history so the webui and experiments read the same keys).
	historyEvents         *obs.Counter
	historyFilesPersisted *obs.Counter
	historyBytesPersisted *obs.Counter
	tracesPersisted       *obs.Counter
}

func newJTMetrics(r *obs.Registry) jtMetrics {
	return jtMetrics{
		jobsSubmitted:     r.Counter(MetricJTJobsSubmitted),
		jobsSucceeded:     r.Counter(MetricJTJobsSucceeded),
		jobsFailed:        r.Counter(MetricJTJobsFailed),
		mapsLaunched:      r.Counter(MetricJTMapsLaunched),
		reducesLaunched:   r.Counter(MetricJTReducesLaunched),
		speculativeLaunch: r.Counter(MetricJTSpeculativeLaunch),
		mapsFailed:        r.Counter(MetricJTMapsFailed),
		reducesFailed:     r.Counter(MetricJTReducesFailed),
		attemptsKilled:    r.Counter(MetricJTAttemptsKilled),
		trackerLosses:     r.Counter(MetricJTTrackerLosses),
		schedulePasses:    r.Counter(MetricJTSchedulePasses),
		shuffleBytes:      r.Counter(MetricJTShuffleBytes),
		inputDecodedBytes: r.Counter(MetricJTInputDecodedBytes),
		outputFileBytes:   r.Counter(MetricJTOutputFileBytes),
		mapsDataLocal:     r.Counter(MetricJTMapsDataLocal),
		mapsRackLocal:     r.Counter(MetricJTMapsRackLocal),
		mapsRemote:        r.Counter(MetricJTMapsRemote),
		mapAttemptTime:    r.Histogram(MetricMapAttemptTime),
		reduceAttemptTime: r.Histogram(MetricReduceAttemptTime),
		shuffleTime:       r.Histogram(MetricShuffleTime),

		historyEvents:         r.Counter(history.MetricJobEvents),
		historyFilesPersisted: r.Counter(history.MetricFilesPersisted),
		historyBytesPersisted: r.Counter(history.MetricBytesPersisted),
		tracesPersisted:       r.Counter(MetricJTTracesPersisted),
	}
}

package mrcluster

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/history"
	"repro/internal/iofmt"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vfs"
	"repro/internal/yarn"
)

type taskState int

const (
	taskPending taskState = iota
	taskRunning
	taskDone
)

type task struct {
	jr    *jobRun
	isMap bool
	idx   int
	split mapreduce.FileSplit // map tasks only

	state      taskState
	failures   int
	attemptSeq int
	attempts   []*attempt // currently running attempts

	output   *mapreduce.MapOutput // completed map output
	outputOn cluster.NodeID

	// ctx parents every attempt of this task in the job's trace; it is
	// allocated lazily at the first attempt launch (firstStart), and its
	// span records when the task completes.
	ctx        obs.Ctx
	firstStart sim.Time

	cachedID string // interned id(): built once, reused by every event
}

func (t *task) id() string {
	if t.cachedID == "" {
		kind := "r"
		if t.isMap {
			kind = "m"
		}
		t.cachedID = fmt.Sprintf("task_%s_%s_%06d", t.jr.id, kind, t.idx)
	}
	return t.cachedID
}

type attempt struct {
	t           *task
	tt          *TaskTracker
	seq         int
	speculative bool
	locality    int // 0 data-local, 1 rack-local, 2 remote (maps)
	startedAt   sim.Time
	expectedEnd sim.Time
	timer       sim.Timer
	dead        bool
	tempPath    string // reduce attempts: uncommitted output
	// ctx is the attempt's node in the job trace: a child of the task
	// span, parent of the attempt's shuffle and HDFS spans.
	ctx obs.Ctx
	// container hosts the attempt in YARN mode (nil in slot mode).
	container *yarn.Container

	cachedID string // interned id(), same pattern as task.cachedID
}

func (a *attempt) id() string {
	if a.cachedID == "" {
		a.cachedID = fmt.Sprintf("attempt_%s_%d", a.t.id(), a.seq)
	}
	return a.cachedID
}

type jobState int

const (
	jobRunning jobState = iota
	jobSucceeded
	jobFailed
)

type jobRun struct {
	id  string
	job *mapreduce.Job

	maps    []*task
	reduces []*task

	mapsDone    int
	reducesDone int
	state       jobState
	err         error

	counters    *mapreduce.Counters
	submittedAt sim.Time
	mapsDoneAt  sim.Time
	finishedAt  sim.Time

	mapDurations    []time.Duration
	reduceDurations []time.Duration

	// hist is the job's history file in the making: every lifecycle event
	// from submit to finish, persisted into HDFS when the job completes.
	hist *history.Log

	// ctx roots the job's trace (invalid when head sampling dropped it:
	// every downstream span then records flat, exactly as before tracing).
	ctx obs.Ctx

	// YARN mode: the job's application handle plus the outstanding
	// (unserved) container-request counts syncRequests reconciles.
	app        *yarn.Application
	mapReqs    int
	reduceReqs int

	handle *JobHandle
}

// JobHandle tracks an in-flight job.
type JobHandle struct {
	jr *jobRun
}

// Done reports whether the job reached a terminal state.
func (h *JobHandle) Done() bool { return h.jr.state != jobRunning }

// Err returns the terminal error, if the job failed.
func (h *JobHandle) Err() error {
	if h.jr.state == jobFailed {
		return h.jr.err
	}
	return nil
}

// Report returns the job report (nil until Done).
func (h *JobHandle) Report() *Report {
	if !h.Done() {
		return nil
	}
	return buildReport(h.jr)
}

// JobTracker schedules tasks onto TaskTrackers, preferring data-local
// assignments using the NameNode's block locations, and handles retries,
// tracker loss and speculative execution.
type JobTracker struct {
	mc  *MRCluster
	rng *sim.Rand

	// hostToNode is lookup-only (never ranged): map iteration order must
	// not reach scheduling, so every decision loop below walks the
	// node-ordered mc.trackers slice or the submission-ordered jobs
	// slice instead of a map.
	hostToNode map[string]cluster.NodeID

	jobs   []*jobRun
	jobSeq int
	faults []TaskFault

	// containerAttempts maps a live container's ID to the attempt running
	// inside it (YARN mode; lookup-only, never ranged).
	containerAttempts map[int]*attempt

	// m holds the JobTracker's interned metric handles (see metrics.go);
	// spans land on the cluster's shared registry.
	m jtMetrics
}

// TotalTrackerLosses reports how many TaskTracker losses the JobTracker
// has processed.
func (jt *JobTracker) TotalTrackerLosses() int { return int(jt.m.trackerLosses.Value()) }

func newJobTracker(mc *MRCluster, rng *sim.Rand) *JobTracker {
	jt := &JobTracker{
		mc:                mc,
		rng:               rng,
		hostToNode:        map[string]cluster.NodeID{},
		containerAttempts: map[int]*attempt{},
		m:                 newJTMetrics(mc.Obs),
	}
	for _, n := range mc.Topology.Nodes() {
		jt.hostToNode[n.Hostname] = n.ID
	}
	return jt
}

func (jt *JobTracker) start() {
	jt.mc.Engine.Every(jt.mc.cfg.HeartbeatInterval, func() {
		jt.checkTrackerLiveness()
		jt.schedule()
	})
}

func (jt *JobTracker) heartbeat(tt *TaskTracker) {
	tt.lastHeartbeat = jt.mc.Engine.Now()
	jt.schedule()
}

func (jt *JobTracker) checkTrackerLiveness() {
	now := jt.mc.Engine.Now()
	for _, tt := range jt.mc.trackers {
		stale := now-tt.lastHeartbeat > jt.mc.cfg.TrackerExpiry
		if (stale || !tt.alive) && !tt.lostProcessed() {
			jt.handleTrackerLoss(tt)
		}
	}
}

// lostProcessed reports whether this tracker's loss has been handled since
// it last started. A live, fresh tracker is trivially "processed".
func (tt *TaskTracker) lostProcessed() bool { return tt.lossHandled }

// handleTrackerLoss reschedules everything the lost tracker was doing or
// holding: running attempts die, completed map outputs evaporate, and any
// reduce attempt that would shuffle from the node must restart.
func (jt *JobTracker) handleTrackerLoss(tt *TaskTracker) {
	tt.lossHandled = true
	tt.alive = false
	if tt.hbTicker != nil {
		tt.hbTicker.Stop()
	}
	jt.m.trackerLosses.Inc()
	if jt.yarnMode() {
		// Drain the node from the RM pool before rescheduling: its
		// containers are preempted (killing the attempts inside via
		// OnPreempted) and nothing new lands on the dead node.
		jt.mc.cfg.YARN.SetNodeActive(tt.id, false)
	}
	for _, jr := range jt.jobs {
		if jr.state != jobRunning {
			continue
		}
		lostOutputs := false
		for _, t := range jr.maps {
			// Kill running attempts on the lost tracker.
			for _, a := range append([]*attempt(nil), t.attempts...) {
				if a.tt == tt {
					jt.killAttempt(a, "tracker lost")
				}
			}
			// Completed map output on the lost node must be recomputed.
			if t.state == taskDone && t.outputOn == tt.id {
				t.state = taskPending
				t.output = nil
				jr.mapsDone--
				lostOutputs = true
			}
		}
		for _, t := range jr.reduces {
			for _, a := range append([]*attempt(nil), t.attempts...) {
				if a.tt == tt || lostOutputs {
					jt.killAttempt(a, "shuffle source lost")
				}
			}
		}
	}
	jt.schedule()
}

// killAttempt cancels a running attempt without charging a failure.
func (jt *JobTracker) killAttempt(a *attempt, reason string) {
	if a.dead {
		return
	}
	a.dead = true
	a.timer.Cancel()
	jt.releaseSlot(a)
	jt.releaseContainer(a, "killed")
	a.t.removeAttempt(a)
	if a.tempPath != "" {
		// Best-effort GC of a killed attempt's temp output: nothing was
		// acked from it, so a failed delete costs only disk, not data.
		//lint:ignore commiterr killed-attempt temp output is unacked; delete is best-effort
		_ = jt.mc.DFS.Client(a.tt.id).Remove(a.tempPath, false)
	}
	a.t.jr.counters.Inc(mapreduce.CtrKilledTaskAttempts, 1)
	jt.m.attemptsKilled.Inc()
	jt.attemptSpan(a, "killed:"+reason)
	jt.histAttemptEnd(a, history.EvAttemptKill, map[string]string{"reason": reason})
	if a.t.state == taskRunning && len(a.t.attempts) == 0 {
		a.t.state = taskPending
	}
}

// --- job history (internal/history) ---

// histEv appends one event to a job's history log at the current sim time.
func (jt *JobTracker) histEv(jr *jobRun, typ string, attrs map[string]string) {
	jr.hist.Append(time.Duration(jt.mc.Engine.Now()), typ, attrs)
}

// histAttemptStart records an attempt launch. shuffle is the modelled
// shuffle time (reduces only; pass <0 for maps).
func (jt *JobTracker) histAttemptStart(a *attempt, shuffle time.Duration) {
	attrs := map[string]string{
		"attempt": a.id(),
		"job":     a.t.jr.id,
		"task":    a.t.id(),
		"node":    a.tt.node.Hostname,
	}
	if a.t.isMap {
		attrs["kind"] = "map"
		attrs["locality"] = fmt.Sprint(a.locality)
	} else {
		attrs["kind"] = "reduce"
		if shuffle >= 0 {
			attrs["shuffle_ns"] = fmt.Sprint(int64(shuffle))
		}
	}
	if a.speculative {
		attrs["speculative"] = "true"
	}
	jt.histEv(a.t.jr, history.EvAttemptStart, attrs)
}

// histAttemptEnd records an attempt's terminal event (finish/fail/kill).
func (jt *JobTracker) histAttemptEnd(a *attempt, typ string, extra map[string]string) {
	attrs := map[string]string{"attempt": a.id(), "job": a.t.jr.id}
	for k, v := range extra {
		attrs[k] = v
	}
	jt.histEv(a.t.jr, typ, attrs)
}

// histFinish records the job's terminal event with its final counter
// snapshot flattened into ctr.<NAME> attrs — the numbers `mrhistory`
// reprints without the cluster object.
func (jt *JobTracker) histFinish(jr *jobRun, outcome string) {
	attrs := map[string]string{"job": jr.id, "outcome": outcome}
	for name, v := range jr.counters.Snapshot() {
		attrs["ctr."+name] = fmt.Sprint(v)
	}
	jr.hist.Append(time.Duration(jr.finishedAt), history.EvJobFinish, attrs)
}

// persistHistory writes the finished job's history file into HDFS under
// /history/<jobid>/, as real Hadoop's JobHistory does. Best effort: a
// cluster too degraded to store history still reports the job's outcome.
func (jt *JobTracker) persistHistory(jr *jobRun) {
	data, err := jr.hist.Bytes()
	if err != nil {
		return
	}
	client := jt.mc.DFS.Client(GatewayForSubmit)
	if err := client.Mkdir(history.Dir(jr.id)); err != nil {
		return
	}
	if err := vfs.WriteFile(client, history.EventsPath(jr.id), data); err != nil {
		return
	}
	jt.m.historyFilesPersisted.Inc()
	jt.m.historyBytesPersisted.Add(int64(len(data)))
	// The job's trace export lands beside the history file — same dir,
	// same lifecycle, same byte-stability contract.
	if spans := jt.mc.Obs.SpansTraced(jr.ctx.Trace()); len(spans) > 0 {
		tdata, err := trace.Marshal(spans)
		if err != nil {
			return
		}
		if err := vfs.WriteFile(client, trace.Path(jr.id), tdata); err != nil {
			return
		}
		jt.m.tracesPersisted.Inc()
	}
}

// traceAttempt hangs a freshly launched attempt in the job trace:
// the task node is allocated lazily on its first attempt (that launch
// instant is what the eventual mr.task span starts at), and the attempt
// becomes its child.
func (jt *JobTracker) traceAttempt(a *attempt) {
	t := a.t
	if !t.ctx.Valid() {
		t.ctx = t.jr.ctx.NewChild()
		t.firstStart = a.startedAt
	}
	a.ctx = t.ctx.NewChild()
}

// taskSpan records a task's first-launch-to-completion span — the parent
// of its attempt spans in the trace tree.
func (jt *JobTracker) taskSpan(t *task) {
	kind := "reduce"
	if t.isMap {
		kind = "map"
	}
	jt.mc.Obs.SpanCtx(t.ctx, SpanTask, time.Duration(t.firstStart), time.Duration(jt.mc.Engine.Now()), map[string]string{
		"task": t.id(),
		"job":  t.jr.id,
		"kind": kind,
	})
}

// attemptSpan records a task attempt's lifetime span with its outcome.
func (jt *JobTracker) attemptSpan(a *attempt, outcome string) {
	name := SpanReduceAttempt
	if a.t.isMap {
		name = SpanMapAttempt
	}
	attrs := map[string]string{
		"attempt": a.id(),
		"job":     a.t.jr.id,
		"node":    a.tt.node.Hostname,
		"outcome": outcome,
	}
	if a.t.isMap {
		attrs["locality"] = fmt.Sprint(a.locality)
	}
	if a.speculative {
		attrs["speculative"] = "true"
	}
	jt.mc.Obs.SpanCtx(a.ctx, name, time.Duration(a.startedAt), time.Duration(jt.mc.Engine.Now()), attrs)
}

func (t *task) removeAttempt(a *attempt) {
	for i, x := range t.attempts {
		if x == a {
			t.attempts = append(t.attempts[:i], t.attempts[i+1:]...)
			return
		}
	}
}

func (jt *JobTracker) releaseSlot(a *attempt) {
	if !a.tt.alive {
		return // slots reset when the tracker restarts
	}
	if a.t.isMap {
		a.tt.mapSlotsUsed--
	} else {
		a.tt.reduceSlotsUsed--
	}
}

// --- submission ---

func (jt *JobTracker) submit(job *mapreduce.Job) (*JobHandle, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	gw := jt.mc.DFS.Client(GatewayForSubmit)
	if vfs.Exists(gw, job.OutputPath) {
		return nil, &vfs.PathError{Op: "submit", Path: job.OutputPath, Err: vfs.ErrExist}
	}
	splits, err := jt.computeSplits(job)
	if err != nil {
		return nil, err
	}
	if len(splits) == 0 {
		return nil, fmt.Errorf("mrcluster: no input data under %v", job.InputPaths)
	}
	jt.jobSeq++
	jr := &jobRun{
		id:          fmt.Sprintf("job_%s_%04d", sanitize(job.Name), jt.jobSeq),
		job:         job,
		counters:    mapreduce.NewCounters(),
		submittedAt: jt.mc.Engine.Now(),
		hist:        history.NewLog(jt.m.historyEvents),
	}
	jr.ctx = jt.mc.Obs.NewTrace(time.Duration(jr.submittedAt))
	for i, s := range splits {
		jr.maps = append(jr.maps, &task{jr: jr, isMap: true, idx: i, split: s})
	}
	for r := 0; r < job.Reducers(); r++ {
		jr.reduces = append(jr.reduces, &task{jr: jr, idx: r})
	}
	jr.handle = &JobHandle{jr: jr}
	if jt.yarnMode() {
		if err := jt.submitApp(jr); err != nil {
			return nil, err
		}
	}
	jt.jobs = append(jt.jobs, jr)
	jt.m.jobsSubmitted.Inc()
	jt.histEv(jr, history.EvJobSubmit, map[string]string{
		"job": jr.id, "name": job.Name, "user": hdfs.DefaultUser,
	})
	jt.histEv(jr, history.EvJobInit, map[string]string{
		"job":     jr.id,
		"maps":    fmt.Sprint(len(jr.maps)),
		"reduces": fmt.Sprint(len(jr.reduces)),
	})
	jt.schedule()
	return jr.handle, nil
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// GatewayForSubmit is where job submission runs (the login node).
const GatewayForSubmit = cluster.NodeID(-1)

// cacheFS overlays a TaskTracker's localised side files on the HDFS
// client: cached paths are served from node-local memory, everything else
// passes through (and is metered as usual).
type cacheFS struct {
	vfs.FileSystem
	cache map[string][]byte
}

func (c *cacheFS) Open(path string) (io.ReadCloser, error) {
	if data, ok := c.cache[vfs.Clean(path)]; ok {
		return io.NopCloser(bytes.NewReader(data)), nil
	}
	return c.FileSystem.Open(path)
}

// computeSplits builds one split per HDFS block of each input file, with
// the block's replica hostnames attached for locality scheduling. Files
// whose format cannot be split — whole-stream compressed text — become
// exactly one split spanning every block: gzipping a big input silently
// caps the job at one map task however many blocks HDFS stores.
func (jt *JobTracker) computeSplits(job *mapreduce.Job) ([]mapreduce.FileSplit, error) {
	client := jt.mc.DFS.Client(GatewayForSubmit)
	var files []vfs.FileInfo
	for _, in := range job.InputPaths {
		if err := vfs.Walk(client, in, func(fi vfs.FileInfo) error {
			files = append(files, fi)
			return nil
		}); err != nil {
			return nil, err
		}
	}
	sort.Slice(files, func(i, j int) bool { return files[i].Path < files[j].Path })
	var splits []mapreduce.FileSplit
	for _, f := range files {
		if f.Size == 0 {
			continue
		}
		locs, err := client.BlockLocations(f.Path)
		if err != nil {
			return nil, err
		}
		if !iofmt.SplittablePath(f.Path) {
			// Locality can only target the first block; the task streams
			// the rest across the network regardless.
			var hosts []string
			if len(locs) > 0 {
				hosts = locs[0].Hosts
			}
			splits = append(splits, mapreduce.FileSplit{
				Path: f.Path, Offset: 0, Length: f.Size, FileSize: f.Size, Hosts: hosts,
			})
			continue
		}
		for _, loc := range locs {
			splits = append(splits, mapreduce.FileSplit{
				Path:     f.Path,
				Offset:   loc.Offset,
				Length:   loc.Length,
				FileSize: f.Size,
				Hosts:    loc.Hosts,
			})
		}
	}
	return splits, nil
}

// --- scheduling ---

func (jt *JobTracker) orderedTrackers() []*TaskTracker {
	return jt.mc.trackers // already in node order
}

// runningMapAttempts counts map attempts currently occupying slots —
// the concurrent-reader count for the shared-storage contention model.
func (jt *JobTracker) runningMapAttempts() int {
	n := 0
	for _, tt := range jt.mc.trackers {
		if tt.alive {
			n += tt.mapSlotsUsed
		}
	}
	return n
}

// localityRank scores a map task for a tracker: 0 data-local, 1 rack-local,
// 2 remote.
func (jt *JobTracker) localityRank(t *task, tt *TaskTracker) int {
	rank := 2
	for _, h := range t.split.Hosts {
		id, ok := jt.hostToNode[h]
		if !ok {
			continue
		}
		if id == tt.id {
			return 0
		}
		if jt.mc.Topology.RackOf(id) == jt.mc.Topology.RackOf(tt.id) {
			rank = 1
		}
	}
	return rank
}

func (jt *JobTracker) schedule() {
	jt.m.schedulePasses.Inc()
	if jt.yarnMode() {
		// YARN mode: no slot loops — reconcile container demand with the
		// RM; allocations arrive via jtAppMaster.OnAllocated.
		jt.syncRequests()
		return
	}
	// Map assignment in three locality rounds: first give every free slot
	// its data-local tasks, then rack-local, then anything. Assigning
	// strictly by rank keeps a slot from greedily stealing a task that is
	// local to another node — the matching that makes HDFS data locality
	// pay off.
	for rank := 0; rank <= 2; rank++ {
		for _, tt := range jt.orderedTrackers() {
			if !tt.alive {
				continue
			}
			for tt.mapSlotsUsed < jt.mc.cfg.MapSlotsPerNode {
				best := jt.pickMapTaskAtRank(tt, rank)
				if best == nil {
					break
				}
				jt.startMapAttempt(best, tt, false, nil)
			}
		}
	}
	// Reduce assignment: only once a job's maps are all complete.
	for _, tt := range jt.orderedTrackers() {
		if !tt.alive {
			continue
		}
		for tt.reduceSlotsUsed < jt.mc.cfg.ReduceSlotsPerNode {
			var pick *task
			for _, jr := range jt.jobs {
				if jr.state != jobRunning || jr.mapsDone < len(jr.maps) {
					continue
				}
				for _, t := range jr.reduces {
					if t.state == taskPending {
						pick = t
						break
					}
				}
				if pick != nil {
					break
				}
			}
			if pick == nil {
				break
			}
			if !jt.startReduceAttempt(pick, tt, false, nil) {
				break
			}
		}
	}
	if jt.mc.cfg.Speculative {
		jt.speculate()
	}
}

func (jt *JobTracker) pickMapTaskAtRank(tt *TaskTracker, rank int) *task {
	for _, jr := range jt.jobs {
		if jr.state != jobRunning {
			continue
		}
		for _, t := range jr.maps {
			if t.state != taskPending {
				continue
			}
			if jt.localityRank(t, tt) <= rank {
				return t
			}
		}
	}
	return nil
}

// slowdown returns the straggler multiplier for a node.
func (jt *JobTracker) slowdown(id cluster.NodeID) float64 {
	if f, ok := jt.mc.slow[id]; ok && f > 0 {
		return f
	}
	return 1
}

// reachable reports whether a data transfer between the two nodes can
// currently proceed on the (possibly partitioned) network.
func (jt *JobTracker) reachable(a, b cluster.NodeID) bool {
	return jt.mc.Net.Reachable(a, b)
}

// pickFault returns the armed fault for a job attempt in the given scope,
// if it fires. The random draw happens only for matching faults, so arming
// a fault for one job/scope never perturbs another's schedule.
func (jt *JobTracker) pickFault(jr *jobRun, scope TaskScope) *TaskFault {
	for i := range jt.faults {
		f := &jt.faults[i]
		if f.JobName == jr.job.Name && f.Scope == scope && jt.rng.Bernoulli(f.Probability) {
			return f
		}
	}
	return nil
}

// --- map attempts ---

func (jt *JobTracker) startMapAttempt(t *task, tt *TaskTracker, speculative bool, c *yarn.Container) {
	jr := t.jr
	tt.mapSlotsUsed++
	t.attemptSeq++
	a := &attempt{
		t: t, tt: tt, seq: t.attemptSeq,
		speculative: speculative,
		locality:    jt.localityRank(t, tt),
		startedAt:   jt.mc.Engine.Now(),
		container:   c,
	}
	if c != nil {
		jt.containerAttempts[c.ID] = a
	}
	t.attempts = append(t.attempts, a)
	t.state = taskRunning
	jr.counters.Inc(mapreduce.CtrLaunchedMaps, 1)
	jt.m.mapsLaunched.Inc()
	if speculative {
		jr.counters.Inc(mapreduce.CtrSpeculativeLaunch, 1)
		jt.m.speculativeLaunch.Inc()
	}
	jt.traceAttempt(a)
	jt.histAttemptStart(a, -1)

	// Execute the user code now (real data, exact results); the modelled
	// duration decides when the completion event lands.
	client := jt.mc.DFS.Client(tt.id)
	client.Trace = a.ctx
	var taskFS vfs.FileSystem = client
	if jt.mc.cfg.DistributedCache && len(jr.job.SideFiles) > 0 {
		// Localise side files once per tracker; tasks then read the node-
		// local copy without touching HDFS.
		for _, p := range jr.job.SideFiles {
			cp := vfs.Clean(p)
			if _, ok := tt.sideCache[cp]; ok {
				continue
			}
			data, err := vfs.ReadFile(client, cp) // charged to this attempt
			if err != nil {
				continue // the task will surface the error itself
			}
			tt.sideCache[cp] = data
		}
		taskFS = &cacheFS{FileSystem: client, cache: tt.sideCache}
	}
	ctx := mapreduce.NewTaskContext(jr.id, a.id(), taskFS, jr.job)
	split := t.split
	records, rstats, err := mapreduce.ReadSplit(func(off, length int64) ([]byte, error) {
		return client.ReadRange(split.Path, off, length)
	}, split)
	var out *mapreduce.MapOutput
	if err == nil {
		ctx.Counters.Inc(mapreduce.CtrInputDecodedBytes, rstats.BytesDecoded)
		jt.m.inputDecodedBytes.Add(rstats.BytesDecoded)
		out, err = mapreduce.ExecuteMap(ctx, jr.job, records)
	}

	readCost := client.Meter.ReadTime
	if jt.mc.cfg.SharedStorage {
		// HPC layout: the bytes come from the shared parallel filesystem,
		// contended by every map task running right now.
		readCost = jt.mc.Cost.ParallelStorageRead(
			client.Meter.BytesRead(), jt.runningMapAttempts())
	}
	// The mapper's CPU runs over logical (decoded) bytes; for plain text
	// that is the split length it always was.
	mapBytes := split.Length
	if rstats.Compressed {
		mapBytes = rstats.BytesDecoded
	}
	duration := readCost +
		jt.mc.cfg.MapWork.Cost(mapBytes, ctx.Counters.Get(mapreduce.CtrMapInputRecords)) +
		// Parsing side data costs CPU every time it is read, whether the
		// bytes came from HDFS or from the DistributedCache copy.
		jt.mc.cfg.MapWork.Cost(ctx.Counters.Get(mapreduce.CtrSideFileBytesRead), 0)
	if rstats.Compressed {
		// Inflating the input costs CPU per decoded byte.
		duration += jt.mc.cfg.CompressWork.Cost(rstats.BytesDecoded, 0)
	}
	if jr.job.NewCombiner != nil {
		duration += jt.mc.cfg.CombineWork.Cost(0, ctx.Counters.Get(mapreduce.CtrCombineInputRecords))
	}
	if out != nil {
		duration += jt.mc.Cost.DiskWrite(out.Bytes())
	}
	duration = time.Duration(float64(duration) * jt.slowdown(tt.id))
	a.expectedEnd = a.startedAt + duration

	if fault := jt.pickFault(jr, ScopeMap); fault != nil && err == nil {
		at := time.Duration(float64(duration) * fault.AfterFraction)
		crash := fault.CrashDaemons
		a.timer = jt.mc.Engine.After(at, func() {
			jt.failMapAttempt(a, errors.New("injected task error (heap exhaustion)"), crash)
		})
		return
	}
	if err != nil {
		a.timer = jt.mc.Engine.After(duration/2, func() {
			jt.failMapAttempt(a, err, false)
		})
		return
	}
	meter := client.Meter
	a.timer = jt.mc.Engine.After(duration, func() {
		jt.completeMapAttempt(a, out, ctx, meter, duration)
	})
}

func (jt *JobTracker) completeMapAttempt(a *attempt, out *mapreduce.MapOutput, ctx *mapreduce.TaskContext, meter interface{ BytesRead() int64 }, dur time.Duration) {
	t, jr := a.t, a.t.jr
	if a.dead || !a.tt.alive || t.state == taskDone || jr.state != jobRunning {
		return
	}
	a.dead = true
	jt.releaseSlot(a)
	t.removeAttempt(a)
	// First finisher wins; kill the sibling attempt.
	for _, sib := range append([]*attempt(nil), t.attempts...) {
		jt.killAttempt(sib, "sibling finished first")
	}
	t.state = taskDone
	t.output = out
	t.outputOn = a.tt.id
	a.tt.mapOutputs[outputKey{job: jr.id, m: t.idx}] = out
	jr.mapsDone++
	jr.mapDurations = append(jr.mapDurations, dur)
	jr.counters.Merge(ctx.Counters)
	jr.counters.Inc(mapreduce.CtrHDFSBytesRead, meter.BytesRead())
	jt.m.mapAttemptTime.Observe(dur)
	jt.attemptSpan(a, "succeeded")
	jt.taskSpan(t)
	jt.histAttemptEnd(a, history.EvAttemptFinish, nil)
	if a.speculative {
		jr.counters.Inc(mapreduce.CtrSpeculativeWon, 1)
	}
	switch a.locality {
	case 0:
		jr.counters.Inc(mapreduce.CtrDataLocalMaps, 1)
		jt.m.mapsDataLocal.Inc()
	case 1:
		jr.counters.Inc(mapreduce.CtrRackLocalMaps, 1)
		jt.m.mapsRackLocal.Inc()
	default:
		jr.counters.Inc(mapreduce.CtrRemoteMaps, 1)
		jt.m.mapsRemote.Inc()
	}
	if jr.mapsDone == len(jr.maps) && jr.mapsDoneAt == 0 {
		jr.mapsDoneAt = jt.mc.Engine.Now()
	}
	jt.releaseContainer(a, "complete")
	jt.schedule()
}

func (jt *JobTracker) failMapAttempt(a *attempt, cause error, crashDaemons bool) {
	t, jr := a.t, a.t.jr
	if a.dead || jr.state != jobRunning {
		return
	}
	a.dead = true
	jt.releaseSlot(a)
	jt.releaseContainer(a, "failed")
	t.removeAttempt(a)
	jr.counters.Inc(mapreduce.CtrFailedMaps, 1)
	jr.counters.Inc(mapreduce.CtrTaskRetries, 1)
	jt.m.mapsFailed.Inc()
	jt.attemptSpan(a, "failed")
	jt.histAttemptEnd(a, history.EvAttemptFail, map[string]string{"error": cause.Error()})
	t.failures++
	if len(t.attempts) == 0 && t.state != taskDone {
		t.state = taskPending
	}
	if crashDaemons {
		// The leaky attempt takes the daemons with it: the TaskTracker
		// dies now; the co-located DataNode follows.
		jt.mc.KillTaskTracker(a.tt.id)
		if dn := jt.mc.DFS.DataNode(a.tt.id); dn != nil {
			dn.Kill()
		}
	}
	if t.failures >= jt.mc.cfg.MaxAttempts {
		jt.failJob(jr, fmt.Errorf("task %s failed %d times: %w", t.id(), t.failures, cause))
		return
	}
	jt.schedule()
}

// --- reduce attempts ---

// startReduceAttempt launches a reduce attempt on tt, reporting whether it
// actually started (false when map outputs are gone or unfetchable, so the
// scheduler does not spin re-picking the same task for the same slot).
func (jt *JobTracker) startReduceAttempt(t *task, tt *TaskTracker, speculative bool, c *yarn.Container) bool {
	jr := t.jr
	// Verify every map output is still reachable; a lost tracker between
	// map completion and now sends those maps back to pending. An output
	// that survives but sits across a network partition does not re-run
	// the map — this reducer simply cannot start here until the partition
	// heals or a tracker on the right side picks the task up.
	missing, unfetchable := false, false
	for _, m := range jr.maps {
		if m.state != taskDone {
			missing = true
			continue
		}
		holder := jt.mc.TaskTracker(m.outputOn)
		if holder == nil || !holder.alive || m.output == nil {
			m.state = taskPending
			m.output = nil
			jr.mapsDone--
			missing = true
			continue
		}
		if !jt.reachable(m.outputOn, tt.id) {
			unfetchable = true
		}
	}
	if missing {
		jt.schedule()
		return false
	}
	if unfetchable {
		return false
	}

	tt.reduceSlotsUsed++
	t.attemptSeq++
	a := &attempt{
		t: t, tt: tt, seq: t.attemptSeq,
		speculative: speculative,
		startedAt:   jt.mc.Engine.Now(),
		container:   c,
	}
	if c != nil {
		jt.containerAttempts[c.ID] = a
	}
	t.attempts = append(t.attempts, a)
	t.state = taskRunning
	jr.counters.Inc(mapreduce.CtrLaunchedReduces, 1)
	jt.m.reducesLaunched.Inc()
	if speculative {
		jr.counters.Inc(mapreduce.CtrSpeculativeLaunch, 1)
		jt.m.speculativeLaunch.Inc()
	}
	jt.traceAttempt(a)

	// Shuffle cost: fetch this reducer's partition from every map node,
	// ShuffleParallelism streams at a time. With CompressShuffle the wire
	// (and map-side disk) carries the real compressed size under the
	// configured shuffle codec instead of raw bytes, and both ends pay
	// compression CPU.
	var shufCodec iofmt.Codec
	if jt.mc.cfg.CompressShuffle {
		shufCodec, _ = iofmt.ByName(jt.mc.cfg.ShuffleCodec)
	}
	var runs [][]mapreduce.Pair
	var perSource []time.Duration
	var shuffleBytes, rawBytes, shuffleRecords int64
	for _, m := range jr.maps {
		part := m.output.Partitions[t.idx]
		runs = append(runs, part)
		var b int64
		for _, p := range part {
			b += p.Bytes()
		}
		rawBytes += b
		wire := b
		if shufCodec != nil && b > 0 {
			wire = shuffleWireSize(shufCodec, part)
		}
		shuffleBytes += wire
		shuffleRecords += int64(len(part))
		if wire > 0 {
			src := m.outputOn
			perSource = append(perSource,
				jt.mc.Cost.DiskRead(wire)+jt.mc.Cost.Transfer(jt.mc.Topology.Distance(src, tt.id), wire))
		}
	}
	shuffleTime := parallelTime(perSource, jt.mc.cfg.ShuffleParallelism)
	if jt.mc.cfg.CompressShuffle {
		// Compress at the map side, decompress at the reduce side.
		shuffleTime += jt.mc.cfg.CompressWork.Cost(2*rawBytes, 0)
	}
	jt.m.shuffleBytes.Add(shuffleBytes)
	jt.m.shuffleTime.Observe(shuffleTime)
	if a.ctx.Valid() {
		jt.mc.Obs.ChildSpan(a.ctx, SpanShuffle, time.Duration(a.startedAt), time.Duration(a.startedAt)+shuffleTime, map[string]string{
			"attempt": a.id(),
			"bytes":   fmt.Sprint(shuffleBytes),
			"node":    tt.node.Hostname,
		})
	}
	jt.histAttemptStart(a, shuffleTime)

	client := jt.mc.DFS.Client(tt.id)
	client.Trace = a.ctx
	ctx := mapreduce.NewTaskContext(jr.id, a.id(), client, jr.job)
	ctx.Counters.Inc(mapreduce.CtrShuffleBytes, shuffleBytes)
	ow, err := mapreduce.NewOutputWriter(jr.job)
	if err == nil {
		_, err = mapreduce.ExecuteReduce(ctx, jr.job, runs, ow)
	}
	var data []byte
	var ostats mapreduce.OutputStats
	if err == nil {
		data, ostats, err = ow.Finish()
	}
	if err != nil {
		a.timer = jt.mc.Engine.After(shuffleTime, func() {
			jt.failReduceAttempt(a, err, false)
		})
		return true
	}
	ctx.Counters.Inc(mapreduce.CtrOutputRawBytes, ostats.RawBytes)
	jt.m.outputFileBytes.Add(ostats.FileBytes)
	// Commit protocol: write to a temporary attempt file now, rename to
	// the final part file at completion (Hadoop's OutputCommitter).
	a.tempPath = vfs.Join(jr.job.OutputPath, "_temporary", a.id())
	if werr := vfs.WriteFile(client, a.tempPath, data); werr != nil {
		a.timer = jt.mc.Engine.After(shuffleTime, func() {
			jt.failReduceAttempt(a, werr, false)
		})
		return true
	}
	duration := shuffleTime +
		jt.mc.cfg.ReduceWork.Cost(shuffleBytes, shuffleRecords) +
		client.Meter.WriteTime
	if c, cerr := iofmt.ByName(jr.job.OutputCodec); cerr == nil && c != nil {
		// Compressing the committed output costs CPU per raw byte.
		duration += jt.mc.cfg.CompressWork.Cost(ostats.RawBytes, 0)
	}
	duration = time.Duration(float64(duration) * jt.slowdown(tt.id))
	a.expectedEnd = a.startedAt + duration
	if fault := jt.pickFault(jr, ScopeShuffle); fault != nil {
		at := time.Duration(float64(shuffleTime) * fault.AfterFraction)
		crash := fault.CrashDaemons
		a.timer = jt.mc.Engine.After(at, func() {
			jt.failReduceAttempt(a, errors.New("injected shuffle fetch failure"), crash)
		})
		return true
	}
	if fault := jt.pickFault(jr, ScopeReduce); fault != nil {
		at := time.Duration(float64(duration) * fault.AfterFraction)
		crash := fault.CrashDaemons
		a.timer = jt.mc.Engine.After(at, func() {
			jt.failReduceAttempt(a, errors.New("injected task error (heap exhaustion)"), crash)
		})
		return true
	}
	written := client.Meter.BytesWritten
	a.timer = jt.mc.Engine.After(duration, func() {
		jt.completeReduceAttempt(a, ctx, written, duration)
	})
	return true
}

// shuffleWireSize returns the real compressed size of a partition's
// pairs under the shuffle codec — the wire bytes a compressed shuffle
// actually moves.
func shuffleWireSize(c iofmt.Codec, pairs []mapreduce.Pair) int64 {
	var buf bytes.Buffer
	for _, p := range pairs {
		buf.WriteString(p.Key)
		buf.Write(p.Val)
	}
	n, err := iofmt.CompressedSize(c, buf.Bytes())
	if err != nil {
		return int64(buf.Len())
	}
	return n
}

// parallelTime models n transfers served k at a time: total work divided
// by effective parallelism, but never less than the longest single fetch.
func parallelTime(costs []time.Duration, k int) time.Duration {
	if len(costs) == 0 {
		return 0
	}
	var sum, max time.Duration
	for _, c := range costs {
		sum += c
		if c > max {
			max = c
		}
	}
	if k > len(costs) {
		k = len(costs)
	}
	if k < 1 {
		k = 1
	}
	t := sum / time.Duration(k)
	if t < max {
		t = max
	}
	return t
}

func (jt *JobTracker) completeReduceAttempt(a *attempt, ctx *mapreduce.TaskContext, bytesWritten int64, dur time.Duration) {
	t, jr := a.t, a.t.jr
	if a.dead || !a.tt.alive || t.state == taskDone || jr.state != jobRunning {
		return
	}
	a.dead = true
	jt.releaseSlot(a)
	t.removeAttempt(a)
	for _, sib := range append([]*attempt(nil), t.attempts...) {
		jt.killAttempt(sib, "sibling finished first")
	}
	// Commit: rename the attempt file to the final part file.
	client := jt.mc.DFS.Client(a.tt.id)
	final := vfs.Join(jr.job.OutputPath, jr.job.OutputPartName(t.idx))
	if err := client.Rename(a.tempPath, final); err != nil {
		jt.failJob(jr, fmt.Errorf("commit of %s: %w", a.id(), err))
		return
	}
	a.tempPath = ""
	t.state = taskDone
	jr.reducesDone++
	jr.reduceDurations = append(jr.reduceDurations, dur)
	jr.counters.Merge(ctx.Counters)
	jr.counters.Inc(mapreduce.CtrHDFSBytesWritten, bytesWritten)
	jt.m.reduceAttemptTime.Observe(dur)
	jt.attemptSpan(a, "succeeded")
	jt.taskSpan(t)
	jt.histAttemptEnd(a, history.EvAttemptFinish, nil)
	if a.speculative {
		jr.counters.Inc(mapreduce.CtrSpeculativeWon, 1)
	}
	jt.releaseContainer(a, "complete")
	if jr.reducesDone == len(jr.reduces) {
		jt.finishJob(jr)
	} else {
		jt.schedule()
	}
}

func (jt *JobTracker) failReduceAttempt(a *attempt, cause error, crashDaemons bool) {
	t, jr := a.t, a.t.jr
	if a.dead || jr.state != jobRunning {
		return
	}
	a.dead = true
	jt.releaseSlot(a)
	jt.releaseContainer(a, "failed")
	t.removeAttempt(a)
	if a.tempPath != "" {
		// Same best-effort GC as killAttempt: the failed attempt's output
		// was never acked, so its delete may fail silently.
		//lint:ignore commiterr failed-attempt temp output is unacked; delete is best-effort
		_ = jt.mc.DFS.Client(a.tt.id).Remove(a.tempPath, false)
		a.tempPath = ""
	}
	jr.counters.Inc(mapreduce.CtrFailedReduces, 1)
	jr.counters.Inc(mapreduce.CtrTaskRetries, 1)
	jt.m.reducesFailed.Inc()
	jt.attemptSpan(a, "failed")
	jt.histAttemptEnd(a, history.EvAttemptFail, map[string]string{"error": cause.Error()})
	t.failures++
	if len(t.attempts) == 0 && t.state != taskDone {
		t.state = taskPending
	}
	if crashDaemons {
		jt.mc.KillTaskTracker(a.tt.id)
		if dn := jt.mc.DFS.DataNode(a.tt.id); dn != nil {
			dn.Kill()
		}
	}
	if t.failures >= jt.mc.cfg.MaxAttempts {
		jt.failJob(jr, fmt.Errorf("task %s failed %d times: %w", t.id(), t.failures, cause))
		return
	}
	jt.schedule()
}

// --- speculation ---

func median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

func (jt *JobTracker) speculate() {
	now := jt.mc.Engine.Now()
	for _, jr := range jt.jobs {
		if jr.state != jobRunning {
			continue
		}
		launch := func(tasks []*task, completed []time.Duration, isMap bool) {
			if len(completed) < 3 {
				return
			}
			med := median(completed)
			if med == 0 {
				return
			}
			threshold := time.Duration(float64(med) * jt.mc.cfg.SpeculativeThreshold)
			for _, t := range tasks {
				if t.state != taskRunning || len(t.attempts) != 1 {
					continue
				}
				a := t.attempts[0]
				if now-a.startedAt < threshold {
					continue
				}
				// Find a free slot on a different node.
				for _, tt := range jt.orderedTrackers() {
					if !tt.alive || tt.id == a.tt.id {
						continue
					}
					if isMap && tt.mapSlotsUsed < jt.mc.cfg.MapSlotsPerNode {
						jt.startMapAttempt(t, tt, true, nil)
						break
					}
					if !isMap && tt.reduceSlotsUsed < jt.mc.cfg.ReduceSlotsPerNode {
						jt.startReduceAttempt(t, tt, true, nil)
						break
					}
				}
			}
		}
		launch(jr.maps, jr.mapDurations, true)
		launch(jr.reduces, jr.reduceDurations, false)
	}
}

// --- terminal states ---

func (jt *JobTracker) finishJob(jr *jobRun) {
	// Map outputs are intermediate data; drop them from tracker disks.
	// The inner loop is the JobTracker's only range over a map: it just
	// deletes matching keys, which commutes, so iteration order cannot
	// reach scheduling, metrics or traces (the maporder lint rule guards
	// against anything order-sensitive creeping in).
	for _, tt := range jt.mc.trackers {
		for k := range tt.mapOutputs {
			if k.job == jr.id {
				delete(tt.mapOutputs, k)
			}
		}
	}
	client := jt.mc.DFS.Client(GatewayForSubmit)
	// The _temporary dir only exists for jobs whose reducers staged
	// output; removing it is cosmetic cleanup, not a commit.
	//lint:ignore commiterr _temporary may not exist; cleanup is best-effort by design
	_ = client.Remove(vfs.Join(jr.job.OutputPath, "_temporary"), true)
	// The _SUCCESS marker is the job's commit record: downstream readers
	// treat its presence as "output complete". If it cannot be written
	// the job must not report success.
	if err := vfs.WriteFile(client, vfs.Join(jr.job.OutputPath, "_SUCCESS"), nil); err != nil {
		jt.failJob(jr, fmt.Errorf("mrcluster: writing _SUCCESS marker: %w", err))
		return
	}
	jr.state = jobSucceeded
	jr.finishedAt = jt.mc.Engine.Now()
	jt.m.jobsSucceeded.Inc()
	jt.jobSpan(jr, "succeeded")
	jt.histFinish(jr, "succeeded")
	jt.persistHistory(jr)
	if jt.yarnMode() && jr.app != nil {
		jt.mc.cfg.YARN.FinishApp(jr.app)
	}
	jt.schedule()
}

// jobSpan records a job's submit-to-finish span with its outcome.
func (jt *JobTracker) jobSpan(jr *jobRun, outcome string) {
	jt.mc.Obs.SpanCtx(jr.ctx, SpanJob, time.Duration(jr.submittedAt), time.Duration(jr.finishedAt), map[string]string{
		"job":     jr.id,
		"name":    jr.job.Name,
		"outcome": outcome,
	})
}

func (jt *JobTracker) failJob(jr *jobRun, cause error) {
	jr.state = jobFailed
	jr.err = cause
	jr.finishedAt = jt.mc.Engine.Now()
	jt.m.jobsFailed.Inc()
	jt.jobSpan(jr, "failed")
	// Kill leftover attempts before sealing the history file, so their
	// attempt.kill events precede the job.finish record.
	for _, t := range append(append([]*task(nil), jr.maps...), jr.reduces...) {
		for _, a := range append([]*attempt(nil), t.attempts...) {
			jt.killAttempt(a, "job failed")
		}
	}
	jt.histFinish(jr, "failed")
	jt.persistHistory(jr)
	if jt.yarnMode() && jr.app != nil {
		jt.mc.cfg.YARN.FinishApp(jr.app)
	}
	jt.schedule()
}

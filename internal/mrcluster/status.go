package mrcluster

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/mapreduce"
)

// JobStatus is one row of the JobTracker status page.
type JobStatus struct {
	JobID       string
	Name        string
	State       string
	MapProgress float64
	RedProgress float64
	Submitted   time.Duration
}

// Jobs returns the status of every job ever submitted, in order.
func (jt *JobTracker) Jobs() []JobStatus {
	var out []JobStatus
	for _, jr := range jt.jobs {
		st := "RUNNING"
		switch jr.state {
		case jobSucceeded:
			st = "SUCCEEDED"
		case jobFailed:
			st = "FAILED"
		}
		js := JobStatus{
			JobID:     jr.id,
			Name:      jr.job.Name,
			State:     st,
			Submitted: jr.submittedAt,
		}
		if len(jr.maps) > 0 {
			js.MapProgress = float64(jr.mapsDone) / float64(len(jr.maps))
		}
		if len(jr.reduces) > 0 {
			js.RedProgress = float64(jr.reducesDone) / float64(len(jr.reduces))
		}
		out = append(out, js)
	}
	return out
}

// StatusPage renders the JobTracker web interface as text: the cluster
// summary and job table students watched to observe map task run times
// ("observed through Hadoop's JobTracker's web interface").
func (mc *MRCluster) StatusPage() string {
	var b strings.Builder
	now := mc.Engine.Now()
	fmt.Fprintf(&b, "=== JobTracker 'web interface' (virtual time %v) ===\n", now)
	live, mapSlots, mapUsed, redSlots, redUsed := 0, 0, 0, 0, 0
	for _, tt := range mc.trackers {
		if tt.alive {
			live++
			mapSlots += mc.cfg.MapSlotsPerNode
			redSlots += mc.cfg.ReduceSlotsPerNode
			mapUsed += tt.mapSlotsUsed
			redUsed += tt.reduceSlotsUsed
		}
	}
	fmt.Fprintf(&b, "TaskTrackers: %d/%d alive   Map slots: %d/%d busy   Reduce slots: %d/%d busy\n",
		live, len(mc.trackers), mapUsed, mapSlots, redUsed, redSlots)
	fmt.Fprintf(&b, "\n%-24s %-26s %-10s %8s %8s\n", "Job ID", "Name", "State", "Maps", "Reduces")
	for _, js := range mc.JT.Jobs() {
		fmt.Fprintf(&b, "%-24s %-26s %-10s %7.0f%% %7.0f%%\n",
			js.JobID, js.Name, js.State, 100*js.MapProgress, 100*js.RedProgress)
	}
	fmt.Fprintf(&b, "\nPer-tracker state:\n")
	for _, tt := range mc.trackers {
		state := "dead"
		if tt.alive {
			state = fmt.Sprintf("alive, %d map + %d reduce task(s) running",
				tt.mapSlotsUsed, tt.reduceSlotsUsed)
		}
		fmt.Fprintf(&b, "  %-10s %s\n", tt.node.Hostname, state)
	}
	return b.String()
}

// CompletedJobCounters returns the counters of the most recently finished
// job, if any (convenience for UIs).
func (jt *JobTracker) CompletedJobCounters() *mapreduce.Counters {
	for i := len(jt.jobs) - 1; i >= 0; i-- {
		if jt.jobs[i].state == jobSucceeded {
			return jt.jobs[i].counters
		}
	}
	return nil
}

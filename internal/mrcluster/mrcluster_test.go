package mrcluster_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/mapreduce"
	"repro/internal/mrcluster"
	"repro/internal/serial"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// testRig bundles a DFS + MR cluster with data staged.
type testRig struct {
	eng *sim.Engine
	dfs *hdfs.MiniDFS
	mc  *mrcluster.MRCluster
}

func newRig(t *testing.T, nodes, racks int, dcfg hdfs.Config, mcfg mrcluster.Config) *testRig {
	t.Helper()
	eng := sim.NewEngine()
	topo := cluster.NewTopology(cluster.PaperNodeConfig(nodes, racks))
	dfs, err := hdfs.NewMiniDFS(eng, topo, hdfs.Options{Config: dcfg, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	mc := mrcluster.NewMRCluster(dfs, mcfg, 13)
	return &testRig{eng: eng, dfs: dfs, mc: mc}
}

func (r *testRig) stage(t *testing.T, path string, data []byte) {
	t.Helper()
	c := r.dfs.Client(hdfs.GatewayNode)
	if err := vfs.WriteFile(c, path, data); err != nil {
		t.Fatal(err)
	}
}

func wordCountJob(in, out string) *mapreduce.Job {
	return &mapreduce.Job{
		Name: "wordcount",
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFunc(func(ctx *mapreduce.TaskContext, off int64, line string, emit mapreduce.Emitter) error {
				for _, w := range strings.Fields(line) {
					if err := emit.Emit(w, mapreduce.Int64(1)); err != nil {
						return err
					}
				}
				return nil
			})
		},
		NewReducer: func() mapreduce.Reducer {
			return mapreduce.ReducerFunc(func(ctx *mapreduce.TaskContext, key string, values *mapreduce.Values, emit mapreduce.Emitter) error {
				var sum int64
				if err := values.Each(func(v mapreduce.Value) error {
					sum += int64(v.(mapreduce.Int64))
					return nil
				}); err != nil {
					return err
				}
				return emit.Emit(key, mapreduce.Int64(sum))
			})
		},
		DecodeValue: mapreduce.DecodeInt64,
		InputPaths:  []string{in},
		OutputPath:  out,
	}
}

func corpus(lines int) []byte {
	var b strings.Builder
	words := []string{"the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog", "hadoop", "hdfs"}
	for i := 0; i < lines; i++ {
		for j := 0; j < 8; j++ {
			b.WriteString(words[(i*7+j*3)%len(words)])
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

func TestDistributedMatchesSerial(t *testing.T) {
	// The course's central claim: the same job, unchanged, produces the
	// same answer standalone and on the cluster.
	data := corpus(2000)

	local := vfs.NewMemFS()
	if err := vfs.WriteFile(local, "/in/data.txt", data); err != nil {
		t.Fatal(err)
	}
	sj := wordCountJob("/in", "/out")
	sj.NumReducers = 3
	srep, err := (&serial.Runner{FS: local}).Run(sj)
	if err != nil {
		t.Fatal(err)
	}
	serialOut, err := serial.ReadOutput(local, "/out")
	if err != nil {
		t.Fatal(err)
	}

	rig := newRig(t, 8, 2, hdfs.Config{BlockSize: 16 << 10}, mrcluster.Config{})
	rig.stage(t, "/in/data.txt", data)
	dj := wordCountJob("/in", "/out")
	dj.NumReducers = 3
	drep, err := rig.mc.Run(dj)
	if err != nil {
		t.Fatal(err)
	}
	clusterOut, err := serial.ReadOutput(rig.dfs.Client(hdfs.GatewayNode), "/out")
	if err != nil {
		t.Fatal(err)
	}
	if clusterOut != serialOut {
		t.Fatalf("distributed output differs from serial:\nserial %d bytes, cluster %d bytes", len(serialOut), len(clusterOut))
	}
	// Same logical record counts through both runtimes.
	for _, ctr := range []string{mapreduce.CtrMapInputRecords, mapreduce.CtrMapOutputRecords, mapreduce.CtrReduceOutputRecords} {
		if srep.Counters.Get(ctr) != drep.Counters.Get(ctr) {
			t.Fatalf("%s: serial=%d cluster=%d", ctr, srep.Counters.Get(ctr), drep.Counters.Get(ctr))
		}
	}
	if drep.MapTasks < 2 {
		t.Fatalf("expected multiple map tasks, got %d", drep.MapTasks)
	}
	if !vfs.Exists(rig.dfs.Client(hdfs.GatewayNode), "/out/_SUCCESS") {
		t.Fatal("_SUCCESS missing")
	}
	if vfs.Exists(rig.dfs.Client(hdfs.GatewayNode), "/out/_temporary") {
		t.Fatal("_temporary not cleaned up")
	}
}

func TestDataLocalScheduling(t *testing.T) {
	rig := newRig(t, 8, 2, hdfs.Config{BlockSize: 32 << 10, Replication: 3}, mrcluster.Config{})
	rig.stage(t, "/in/data.txt", corpus(5000))
	rep, err := rig.mc.Run(wordCountJob("/in", "/out"))
	if err != nil {
		t.Fatal(err)
	}
	if f := rep.LocalityFraction(); f < 0.9 {
		t.Fatalf("locality fraction = %.2f, want >= 0.9 with 3x replication on 8 nodes\n%s", f, rep)
	}
	if rep.Counters.Get(mapreduce.CtrHDFSBytesRead) == 0 {
		t.Fatal("no HDFS bytes metered")
	}
}

func TestCombinerCutsShuffle(t *testing.T) {
	data := corpus(4000)
	run := func(withCombiner bool) *mrcluster.Report {
		rig := newRig(t, 4, 1, hdfs.Config{BlockSize: 32 << 10}, mrcluster.Config{})
		rig.stage(t, "/in/data.txt", data)
		job := wordCountJob("/in", "/out")
		if withCombiner {
			job.NewCombiner = job.NewReducer
		}
		rep, err := rig.mc.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plain := run(false)
	comb := run(true)
	if comb.ShuffleBytes() >= plain.ShuffleBytes() {
		t.Fatalf("combiner did not cut shuffle: %d vs %d", comb.ShuffleBytes(), plain.ShuffleBytes())
	}
	if comb.ShuffleBytes() > plain.ShuffleBytes()/10 {
		t.Fatalf("tiny key space should shrink shuffle >10x: %d vs %d", comb.ShuffleBytes(), plain.ShuffleBytes())
	}
	// Same answers either way.
	if plain.Counters.Get(mapreduce.CtrReduceOutputRecords) != comb.Counters.Get(mapreduce.CtrReduceOutputRecords) {
		t.Fatal("combiner changed the number of result records")
	}
}

func TestTaskTrackerCrashMidJobRecovers(t *testing.T) {
	rig := newRig(t, 6, 1, hdfs.Config{BlockSize: 16 << 10, Replication: 3},
		mrcluster.Config{HeartbeatInterval: time.Second, TrackerExpiry: 5 * time.Second})
	data := corpus(20000)
	rig.stage(t, "/in/data.txt", data)
	h, err := rig.mc.Submit(wordCountJob("/in", "/out"))
	if err != nil {
		t.Fatal(err)
	}
	// Let some maps finish, then crash a tracker holding outputs while
	// the job is still running.
	rig.eng.Advance(4 * time.Second)
	if h.Done() {
		t.Fatal("job finished too early for the crash to matter")
	}
	rig.mc.KillTaskTracker(2)
	guard := 0
	for !h.Done() {
		if !rig.eng.Step() {
			t.Fatal("simulation stalled")
		}
		if guard++; guard > 10_000_000 {
			t.Fatal("job did not finish")
		}
	}
	if h.Err() != nil {
		t.Fatalf("job failed after tracker crash: %v", h.Err())
	}
	rep := h.Report()
	if rep.Counters.Get(mapreduce.CtrKilledTaskAttempts) == 0 &&
		rep.Counters.Get(mapreduce.CtrLaunchedMaps) <= int64(rep.MapTasks) {
		t.Fatalf("crash left no trace in counters:\n%s", rep)
	}
	// Results still exact.
	out, err := serial.ReadOutput(rig.dfs.Client(hdfs.GatewayNode), "/out")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "hadoop\t") {
		t.Fatalf("output incomplete:\n%.200s", out)
	}
}

func TestFaultyJobFailsAfterMaxAttempts(t *testing.T) {
	rig := newRig(t, 4, 1, hdfs.Config{BlockSize: 64 << 10}, mrcluster.Config{MaxAttempts: 3})
	rig.stage(t, "/in/data.txt", corpus(100))
	rig.mc.InjectTaskFault(mrcluster.TaskFault{JobName: "wordcount", Probability: 1, AfterFraction: 0.5})
	_, err := rig.mc.Run(wordCountJob("/in", "/out"))
	if err == nil {
		t.Fatal("always-faulty job succeeded")
	}
	if !strings.Contains(err.Error(), "failed 3 times") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCrashingJobKillsDaemons(t *testing.T) {
	// The paper's meltdown mechanism: a leaky job crashes the TaskTracker
	// AND the co-located DataNode, leaving blocks under-replicated.
	rig := newRig(t, 8, 1, hdfs.Config{BlockSize: 64 << 10, Replication: 3,
		HeartbeatInterval: time.Second, HeartbeatExpiry: 5 * time.Second},
		mrcluster.Config{MaxAttempts: 4, HeartbeatInterval: time.Second, TrackerExpiry: 5 * time.Second})
	rig.stage(t, "/in/data.txt", corpus(500))
	rig.mc.InjectTaskFault(mrcluster.TaskFault{JobName: "wordcount", Probability: 1, AfterFraction: 0.9, CrashDaemons: true})
	_, err := rig.mc.Run(wordCountJob("/in", "/out"))
	if err == nil {
		t.Fatal("daemon-crashing job succeeded")
	}
	deadTT := 0
	for _, tt := range rig.mc.TaskTrackers() {
		if !tt.Alive() {
			deadTT++
		}
	}
	if deadTT == 0 {
		t.Fatal("no TaskTrackers died")
	}
	deadDN := 0
	for _, dn := range rig.dfs.DataNodes() {
		if !dn.Alive() {
			deadDN++
		}
	}
	if deadDN == 0 {
		t.Fatal("no DataNodes died")
	}
}

func TestSpeculativeExecutionBeatsStraggler(t *testing.T) {
	data := corpus(4000)
	run := func(spec bool) *mrcluster.Report {
		eng := sim.NewEngine()
		topo := cluster.NewTopology(cluster.PaperNodeConfig(6, 1))
		dfs, err := hdfs.NewMiniDFS(eng, topo, hdfs.Options{Config: hdfs.Config{BlockSize: 16 << 10}, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		mc := mrcluster.NewMRCluster(dfs, mrcluster.Config{
			Speculative:  spec,
			NodeSlowdown: map[cluster.NodeID]float64{3: 8.0},
		}, 13)
		c := dfs.Client(hdfs.GatewayNode)
		if err := vfs.WriteFile(c, "/in/data.txt", data); err != nil {
			t.Fatal(err)
		}
		rep, err := mc.Run(wordCountJob("/in", "/out"))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	without := run(false)
	with := run(true)
	if with.Makespan() >= without.Makespan() {
		t.Fatalf("speculation did not help: with=%v without=%v", with.Makespan(), without.Makespan())
	}
	if with.Counters.Get(mapreduce.CtrSpeculativeLaunch) == 0 {
		t.Fatal("no speculative attempts launched")
	}
}

func TestOutputExistsRefused(t *testing.T) {
	rig := newRig(t, 4, 1, hdfs.Config{}, mrcluster.Config{})
	rig.stage(t, "/in/data.txt", corpus(10))
	rig.stage(t, "/out/old", []byte("x"))
	_, err := rig.mc.Submit(wordCountJob("/in", "/out"))
	if !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("want ErrExist, got %v", err)
	}
}

func TestNoInputRefused(t *testing.T) {
	rig := newRig(t, 4, 1, hdfs.Config{}, mrcluster.Config{})
	if err := rig.dfs.Client(hdfs.GatewayNode).Mkdir("/in"); err != nil {
		t.Fatal(err)
	}
	if _, err := rig.mc.Submit(wordCountJob("/in", "/out")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestClusterSpeedup(t *testing.T) {
	// More nodes → shorter modelled makespan for the same data.
	data := corpus(20000)
	mk := func(nodes int) time.Duration {
		eng := sim.NewEngine()
		topo := cluster.NewTopology(cluster.PaperNodeConfig(nodes, 1))
		dfs, err := hdfs.NewMiniDFS(eng, topo, hdfs.Options{Config: hdfs.Config{BlockSize: 64 << 10}, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		mc := mrcluster.NewMRCluster(dfs, mrcluster.Config{}, 5)
		if err := vfs.WriteFile(dfs.Client(hdfs.GatewayNode), "/in/data.txt", data); err != nil {
			t.Fatal(err)
		}
		rep, err := mc.Run(wordCountJob("/in", "/out"))
		if err != nil {
			t.Fatal(err)
		}
		return rep.Makespan()
	}
	one := mk(1)
	eight := mk(8)
	if eight >= one {
		t.Fatalf("8 nodes (%v) not faster than 1 node (%v)", eight, one)
	}
	speedup := float64(one) / float64(eight)
	if speedup < 2 {
		t.Fatalf("speedup on 8 nodes only %.2fx", speedup)
	}
}

func TestReportPhases(t *testing.T) {
	rig := newRig(t, 4, 1, hdfs.Config{BlockSize: 32 << 10}, mrcluster.Config{})
	rig.stage(t, "/in/data.txt", corpus(1000))
	rep, err := rig.mc.Run(wordCountJob("/in", "/out"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.MapPhase() <= 0 || rep.ReducePhase() <= 0 {
		t.Fatalf("phases: map=%v reduce=%v", rep.MapPhase(), rep.ReducePhase())
	}
	if rep.MapPhase()+rep.ReducePhase() != rep.Makespan() {
		t.Fatalf("phases don't sum: %v + %v != %v", rep.MapPhase(), rep.ReducePhase(), rep.Makespan())
	}
	s := rep.String()
	if !strings.Contains(s, "Data-local maps") || !strings.Contains(s, "SHUFFLE_BYTES") {
		t.Fatalf("report missing fields:\n%s", s)
	}
}

func TestDeterministicMakespan(t *testing.T) {
	data := corpus(2000)
	run := func() time.Duration {
		eng := sim.NewEngine()
		topo := cluster.NewTopology(cluster.PaperNodeConfig(8, 2))
		dfs, err := hdfs.NewMiniDFS(eng, topo, hdfs.Options{Config: hdfs.Config{BlockSize: 16 << 10}, Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		mc := mrcluster.NewMRCluster(dfs, mrcluster.Config{}, 22)
		if err := vfs.WriteFile(dfs.Client(hdfs.GatewayNode), "/in/data.txt", data); err != nil {
			t.Fatal(err)
		}
		rep, err := mc.Run(wordCountJob("/in", "/out"))
		if err != nil {
			t.Fatal(err)
		}
		return rep.Makespan()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different makespan: %v vs %v", a, b)
	}
}

func TestSequentialJobsOnOneCluster(t *testing.T) {
	// Students rerun jobs repeatedly on their myHadoop clusters; the
	// runtime must handle many jobs back to back.
	rig := newRig(t, 4, 1, hdfs.Config{BlockSize: 32 << 10}, mrcluster.Config{})
	rig.stage(t, "/in/data.txt", corpus(500))
	for i := 0; i < 3; i++ {
		job := wordCountJob("/in", fmt.Sprintf("/out%d", i))
		rep, err := rig.mc.Run(job)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if rep.Failed {
			t.Fatalf("job %d reported failure", i)
		}
	}
}

func TestDistributedCacheSameAnswerFewerReads(t *testing.T) {
	// The DistributedCache must be invisible to results and visible in
	// I/O: side files are localised once per tracker instead of read from
	// HDFS by every task.
	run := func(distCache bool) (string, *mrcluster.Report) {
		eng := sim.NewEngine()
		topo := cluster.NewTopology(cluster.PaperNodeConfig(4, 1))
		dfs, err := hdfs.NewMiniDFS(eng, topo, hdfs.Options{Seed: 31, Config: hdfs.Config{BlockSize: 8 << 10}})
		if err != nil {
			t.Fatal(err)
		}
		mc := mrcluster.NewMRCluster(dfs, mrcluster.Config{DistributedCache: distCache}, 32)
		client := dfs.Client(hdfs.GatewayNode)
		if err := vfs.WriteFile(client, "/side/table.txt", []byte("lookup data\n")); err != nil {
			t.Fatal(err)
		}
		rig := corpus(2000)
		if err := vfs.WriteFile(client, "/in/data.txt", rig); err != nil {
			t.Fatal(err)
		}
		job := wordCountJob("/in", "/out")
		job.SideFiles = []string{"/side/table.txt"}
		base := job.NewMapper
		job.NewMapper = func() mapreduce.Mapper {
			inner := base()
			return mapreduce.MapperFunc(func(ctx *mapreduce.TaskContext, off int64, line string, emit mapreduce.Emitter) error {
				if _, err := ctx.ReadSideFile("/side/table.txt"); err != nil {
					return err
				}
				return inner.Map(ctx, off, line, emit)
			})
		}
		rep, err := mc.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		out, err := serial.ReadOutput(client, "/out")
		if err != nil {
			t.Fatal(err)
		}
		return out, rep
	}
	plainOut, plainRep := run(false)
	cacheOut, cacheRep := run(true)
	if plainOut != cacheOut {
		t.Fatal("DistributedCache changed the results")
	}
	if cacheRep.Makespan() >= plainRep.Makespan() {
		t.Fatalf("DistributedCache did not cut modelled time: %v vs %v",
			cacheRep.Makespan(), plainRep.Makespan())
	}
	// Side opens are unchanged (the mapper still reads per record)...
	if cacheRep.Counters.Get(mapreduce.CtrSideFileOpens) != plainRep.Counters.Get(mapreduce.CtrSideFileOpens) {
		t.Fatal("cache changed the observed access pattern")
	}
}

func TestCompressedShuffleCutsWireBytes(t *testing.T) {
	data := corpus(4000) // highly compressible text keys
	run := func(compress bool) *mrcluster.Report {
		rig := newRig(t, 4, 1, hdfs.Config{BlockSize: 32 << 10}, mrcluster.Config{CompressShuffle: compress})
		rig.stage(t, "/in/data.txt", data)
		rep, err := rig.mc.Run(wordCountJob("/in", "/out"))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plain := run(false)
	gz := run(true)
	if gz.ShuffleBytes()*2 > plain.ShuffleBytes() {
		t.Fatalf("compression saved too little: %d vs %d", gz.ShuffleBytes(), plain.ShuffleBytes())
	}
	// Results unchanged.
	if plain.Counters.Get(mapreduce.CtrReduceOutputRecords) != gz.Counters.Get(mapreduce.CtrReduceOutputRecords) {
		t.Fatal("compression changed results")
	}
}

func TestConcurrentJobsShareCluster(t *testing.T) {
	// Three students submit at once; every job completes and the answers
	// are independent.
	rig := newRig(t, 6, 1, hdfs.Config{BlockSize: 32 << 10}, mrcluster.Config{})
	rig.stage(t, "/in/data.txt", corpus(3000))
	var handles []*mrcluster.JobHandle
	for i := 0; i < 3; i++ {
		job := wordCountJob("/in", fmt.Sprintf("/out%d", i))
		job.Name = fmt.Sprintf("wc-%d", i)
		h, err := rig.mc.Submit(job)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	guard := 0
	for {
		done := true
		for _, h := range handles {
			if !h.Done() {
				done = false
			}
		}
		if done {
			break
		}
		if !rig.eng.Step() {
			t.Fatal("stalled")
		}
		if guard++; guard > 10_000_000 {
			t.Fatal("jobs did not finish")
		}
	}
	var outs []string
	for i := range handles {
		if handles[i].Err() != nil {
			t.Fatalf("job %d failed: %v", i, handles[i].Err())
		}
		out, err := serial.ReadOutput(rig.dfs.Client(hdfs.GatewayNode), fmt.Sprintf("/out%d", i))
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, out)
	}
	if outs[0] != outs[1] || outs[1] != outs[2] {
		t.Fatal("concurrent jobs produced different answers for the same input")
	}
}

func TestChaosTrackerKillsNeverCorruptResults(t *testing.T) {
	// Property: whatever single-tracker crash/restart schedule plays out
	// mid-job, the job completes with byte-identical results, as long as
	// data replicas survive (replication 3, one node down at a time).
	var reference string
	for trial := 0; trial < 4; trial++ {
		rig := newRig(t, 6, 1, hdfs.Config{BlockSize: 16 << 10, Replication: 3,
			HeartbeatInterval: time.Second, HeartbeatExpiry: 4 * time.Second},
			mrcluster.Config{HeartbeatInterval: time.Second, TrackerExpiry: 4 * time.Second})
		rig.stage(t, "/in/data.txt", corpus(15000))
		h, err := rig.mc.Submit(wordCountJob("/in", "/out"))
		if err != nil {
			t.Fatal(err)
		}
		chaos := sim.NewRand(int64(500 + trial)).Derive("chaos")
		guard := 0
		for !h.Done() {
			if !rig.eng.Step() {
				t.Fatal("stalled")
			}
			if guard++; guard > 5_000_000 {
				t.Fatal("job did not finish")
			}
			// Occasionally crash a tracker and restart it a bit later.
			if trial > 0 && guard%2000 == 0 && chaos.Bernoulli(0.5) {
				victim := cluster.NodeID(chaos.Intn(6))
				rig.mc.KillTaskTracker(victim)
				v := victim
				rig.eng.After(8*time.Second, func() { rig.mc.StartTaskTracker(v) })
			}
		}
		if h.Err() != nil {
			t.Fatalf("trial %d failed: %v", trial, h.Err())
		}
		out, err := serial.ReadOutput(rig.dfs.Client(hdfs.GatewayNode), "/out")
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			reference = out
		} else if out != reference {
			t.Fatalf("trial %d: crash schedule changed the results", trial)
		}
	}
}

package mrcluster_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/hdfs"
	"repro/internal/mrcluster"
)

func TestStatusPageDuringAndAfterJob(t *testing.T) {
	rig := newRig(t, 4, 1, hdfs.Config{BlockSize: 16 << 10}, mrcluster.Config{})
	rig.stage(t, "/in/data.txt", corpus(8000))
	h, err := rig.mc.Submit(wordCountJob("/in", "/out"))
	if err != nil {
		t.Fatal(err)
	}
	rig.eng.Advance(2 * time.Second)
	mid := rig.mc.StatusPage()
	if !strings.Contains(mid, "RUNNING") {
		t.Fatalf("status page should show a running job:\n%s", mid)
	}
	if !strings.Contains(mid, "TaskTrackers: 4/4 alive") {
		t.Fatalf("tracker summary wrong:\n%s", mid)
	}
	for !h.Done() {
		if !rig.eng.Step() {
			t.Fatal("stalled")
		}
	}
	done := rig.mc.StatusPage()
	if !strings.Contains(done, "SUCCEEDED") || !strings.Contains(done, "100%") {
		t.Fatalf("status page after completion:\n%s", done)
	}
	if rig.mc.JT.CompletedJobCounters() == nil {
		t.Fatal("no completed-job counters")
	}
}

func TestStatusPageShowsDeadTracker(t *testing.T) {
	rig := newRig(t, 3, 1, hdfs.Config{}, mrcluster.Config{})
	rig.mc.KillTaskTracker(1)
	page := rig.mc.StatusPage()
	if !strings.Contains(page, "TaskTrackers: 2/3 alive") || !strings.Contains(page, "dead") {
		t.Fatalf("dead tracker not visible:\n%s", page)
	}
}

func TestJobsListStates(t *testing.T) {
	rig := newRig(t, 4, 1, hdfs.Config{BlockSize: 64 << 10}, mrcluster.Config{MaxAttempts: 2})
	rig.stage(t, "/in/data.txt", corpus(50))
	// One job fails, one succeeds.
	rig.mc.InjectTaskFault(mrcluster.TaskFault{JobName: "wordcount", Probability: 1, AfterFraction: 0.5})
	_, _ = rig.mc.Run(wordCountJob("/in", "/out-fail"))
	okJob := wordCountJob("/in", "/out-ok")
	okJob.Name = "wordcount-ok"
	if _, err := rig.mc.Run(okJob); err != nil {
		t.Fatal(err)
	}
	states := map[string]string{}
	for _, js := range rig.mc.JT.Jobs() {
		states[js.Name] = js.State
	}
	if states["wordcount"] != "FAILED" || states["wordcount-ok"] != "SUCCEEDED" {
		t.Fatalf("states = %v", states)
	}
}

package datagen

import (
	"bufio"
	"fmt"
	"strconv"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// Carriers are the airline codes of the synthetic on-time database, with
// a per-carrier mean arrival delay (minutes) so "average delay per
// airline" has a meaningful, distinct answer.
var carriers = []struct {
	Code      string
	MeanDelay float64
	SD        float64
}{
	{"AA", 8.2, 20}, {"AS", 2.1, 12}, {"B6", 11.7, 26}, {"CO", 7.4, 19},
	{"DL", 5.9, 17}, {"EV", 14.3, 30}, {"F9", 9.8, 22}, {"FL", 6.6, 18},
	{"HA", -1.2, 9}, {"MQ", 12.5, 27}, {"NW", 4.8, 15}, {"OH", 10.9, 24},
	{"OO", 7.7, 20}, {"UA", 9.1, 23}, {"US", 6.2, 18}, {"WN", 3.4, 13},
	{"XE", 13.1, 28}, {"YV", 11.2, 25}, {"9E", 8.8, 21}, {"AQ", 0.3, 8},
}

// AirlineOpts sizes the on-time database generator.
type AirlineOpts struct {
	Rows int
	Seed int64
}

// AirlineTruth is the ground truth for the airline-delay assignment.
type AirlineTruth struct {
	Rows     int64
	Sums     map[string]float64
	Counts   map[string]int64
	BestCode string // carrier with the lowest average delay
}

// Avg returns the true average delay for a carrier.
func (t *AirlineTruth) Avg(code string) float64 {
	if t.Counts[code] == 0 {
		return 0
	}
	return t.Sums[code] / float64(t.Counts[code])
}

// airports used for origin/destination columns.
var airports = []string{"ATL", "ORD", "DFW", "LAX", "CLT", "PHX", "IAH", "DEN", "DTW", "MSP", "SFO", "EWR", "GSP", "CAE", "CHS"}

// Airline writes the on-time CSV (header + rows) in the Data Expo 2009
// column layout subset the course used, and returns per-carrier truth.
func Airline(fs vfs.FileSystem, path string, opts AirlineOpts) (*AirlineTruth, int64, error) {
	if opts.Rows <= 0 {
		opts.Rows = 10000
	}
	rng := sim.NewRand(opts.Seed).Derive("airline")
	truth := &AirlineTruth{Sums: map[string]float64{}, Counts: map[string]int64{}}
	n, err := writeLines(fs, path, func(w *bufio.Writer) error {
		fmt.Fprintln(w, "Year,Month,DayofMonth,DayOfWeek,DepTime,UniqueCarrier,FlightNum,Origin,Dest,Distance,ArrDelay,DepDelay,Cancelled")
		// Rows are assembled with strconv appends into a reused buffer:
		// byte-identical to the fmt.Fprintf formatting this replaces, at a
		// fraction of the cost — row generation is the hot loop of E5.
		row := make([]byte, 0, 64)
		for i := 0; i < opts.Rows; i++ {
			c := carriers[rng.Intn(len(carriers))]
			cancelled := rng.Bernoulli(0.02)
			var arrDelay int
			if !cancelled {
				arrDelay = int(rng.Normal(c.MeanDelay, c.SD))
				truth.Sums[c.Code] += float64(arrDelay)
				truth.Counts[c.Code]++
				truth.Rows++
			}
			row = strconv.AppendInt(row[:0], int64(2003+rng.Intn(6)), 10) // year
			row = append(row, ',')
			row = strconv.AppendInt(row, int64(1+rng.Intn(12)), 10) // month
			row = append(row, ',')
			row = strconv.AppendInt(row, int64(1+rng.Intn(28)), 10) // day
			row = append(row, ',')
			row = strconv.AppendInt(row, int64(1+rng.Intn(7)), 10) // day of week
			row = append(row, ',')
			row = strconv.AppendInt(row, int64(600+rng.Intn(1500)), 10) // dep time
			row = append(row, ',')
			row = append(row, c.Code...)
			row = append(row, ',')
			row = strconv.AppendInt(row, int64(100+rng.Intn(4900)), 10) // flight
			row = append(row, ',')
			row = append(row, airports[rng.Intn(len(airports))]...) // origin
			row = append(row, ',')
			row = append(row, airports[rng.Intn(len(airports))]...) // dest
			row = append(row, ',')
			row = strconv.AppendInt(row, int64(150+rng.Intn(2400)), 10) // distance
			row = append(row, ',')
			if cancelled {
				row = append(row, "NA"...) // the real dataset uses NA for cancelled flights
			} else {
				row = strconv.AppendInt(row, int64(arrDelay), 10)
			}
			row = append(row, ',')
			row = strconv.AppendInt(row, int64(arrDelay/2), 10) // dep delay
			row = append(row, ',')
			if cancelled {
				row = append(row, '1')
			} else {
				row = append(row, '0')
			}
			row = append(row, '\n')
			if _, err := w.Write(row); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, n, err
	}
	best := ""
	bestAvg := 0.0
	for _, c := range carriers {
		if truth.Counts[c.Code] == 0 {
			continue
		}
		avg := truth.Avg(c.Code)
		if best == "" || avg < bestAvg {
			best, bestAvg = c.Code, avg
		}
	}
	truth.BestCode = best
	return truth, n, nil
}

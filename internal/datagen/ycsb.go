package datagen

import (
	"fmt"

	"repro/internal/sim"
)

// YCSB-style workload generator for the online-serving tier (see
// docs/SERVING.md and experiment E13). The op mixes follow the standard
// YCSB core workloads the HiBench/Cassandra benchmarking literature
// reports against:
//
//	A  50% read / 50% update     (session store)
//	B  95% read /  5% update     (photo tagging)
//	C 100% read                  (user-profile cache)
//	E  95% scan /  5% insert     (threaded conversations)
//	F  50% read / 50% read-modify-write
//
// Key popularity is Zipf-distributed over the initial record space, and
// ranks map to sequential row keys — so the head of the key range is
// hot, which gives the "find the hot region" lab an unambiguous answer.

// YCSB op types.
const (
	YCSBRead   = "read"
	YCSBUpdate = "update"
	YCSBInsert = "insert"
	YCSBScan   = "scan"
	YCSBRMW    = "rmw"
)

// YCSBOp is one generated operation. Value is set for update/insert/rmw;
// ScanLen for scan.
type YCSBOp struct {
	Type    string
	Key     string
	Value   []byte
	ScanLen int
}

// YCSBOpts sizes a workload.
type YCSBOpts struct {
	Mix        string // "a", "b", "c", "e", or "f"
	Records    int    // initial loaded keyspace (default 1000)
	Ops        int    // operations to generate (default 10000)
	ValueSize  int    // value bytes (default 100)
	ZipfS      float64
	MaxScanLen int // default 100
	Seed       int64
}

func (o *YCSBOpts) defaults() {
	if o.Records <= 0 {
		o.Records = 1000
	}
	if o.Ops <= 0 {
		o.Ops = 10000
	}
	if o.ValueSize <= 0 {
		o.ValueSize = 100
	}
	if o.ZipfS <= 0 {
		o.ZipfS = 1.1
	}
	if o.MaxScanLen <= 0 {
		o.MaxScanLen = 100
	}
}

// ycsbMix is the op-type probability split of one core workload.
type ycsbMix struct{ read, update, insert, scan, rmw float64 }

var ycsbMixes = map[string]ycsbMix{
	"a": {read: 0.5, update: 0.5},
	"b": {read: 0.95, update: 0.05},
	"c": {read: 1.0},
	"e": {scan: 0.95, insert: 0.05},
	"f": {read: 0.5, rmw: 0.5},
}

// YCSBKey returns the i-th row key. Keys sort by index, so Zipf rank 0 —
// the hottest key — is the smallest row key.
func YCSBKey(i int) string { return fmt.Sprintf("user%08d", i) }

// YCSBValue builds the deterministic payload for a key: size bytes of the
// key repeated, so any byte of any value is checkable without stored
// state (and replays are byte-identical without burning RNG draws).
func YCSBValue(key string, size int) []byte {
	v := make([]byte, size)
	for i := range v {
		v[i] = key[i%len(key)]
	}
	return v
}

// YCSBLoad generates the initial dataset: one insert per record, in key
// order (bulk-loadable).
func YCSBLoad(records, valueSize int) []YCSBOp {
	if valueSize <= 0 {
		valueSize = 100
	}
	ops := make([]YCSBOp, records)
	for i := range ops {
		k := YCSBKey(i)
		ops[i] = YCSBOp{Type: YCSBInsert, Key: k, Value: YCSBValue(k, valueSize)}
	}
	return ops
}

// YCSB generates the op stream for one core workload mix.
func YCSB(opts YCSBOpts) ([]YCSBOp, error) {
	opts.defaults()
	mix, ok := ycsbMixes[opts.Mix]
	if !ok {
		return nil, fmt.Errorf("datagen: unknown YCSB mix %q (want a, b, c, e, or f)", opts.Mix)
	}
	rng := sim.NewRand(opts.Seed).Derive("ycsb-" + opts.Mix)
	zipf := rng.Zipf(opts.ZipfS, uint64(opts.Records))
	nextInsert := opts.Records
	ops := make([]YCSBOp, 0, opts.Ops)
	for i := 0; i < opts.Ops; i++ {
		p := rng.Float64()
		op := YCSBOp{Key: YCSBKey(int(zipf.Uint64()))}
		switch {
		case p < mix.read:
			op.Type = YCSBRead
		case p < mix.read+mix.update:
			op.Type = YCSBUpdate
			op.Value = YCSBValue(op.Key, opts.ValueSize)
		case p < mix.read+mix.update+mix.insert:
			op.Type = YCSBInsert
			op.Key = YCSBKey(nextInsert)
			op.Value = YCSBValue(op.Key, opts.ValueSize)
			nextInsert++
		case p < mix.read+mix.update+mix.insert+mix.scan:
			op.Type = YCSBScan
			op.ScanLen = 1 + rng.Intn(opts.MaxScanLen)
		default:
			op.Type = YCSBRMW
			op.Value = YCSBValue(op.Key, opts.ValueSize)
		}
		ops = append(ops, op)
	}
	return ops, nil
}

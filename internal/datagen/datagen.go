// Package datagen synthesises the course's datasets. The originals
// (complete Shakespeare, the 12 GB Airline on-time database, the 250 MB
// MovieLens 10M ratings, the 10 GB Yahoo! Music ratings, the 171 GB
// Google cluster trace) are external downloads; these generators produce
// files with the same schemas and the statistical structure the
// assignments depend on — Zipf word frequencies, per-carrier delay
// distributions, movies with multiple genres, album/song join tables, and
// task resubmission events — at any size, deterministically from a seed.
//
// Every generator also returns the ground truth of its assignment's
// question, so tests can assert that MapReduce answers are exact.
package datagen

import (
	"bufio"
	"io"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// writeLines is a small helper: open path on fs, buffer, run the emit
// function, and return bytes written.
func writeLines(fs vfs.FileSystem, path string, emit func(w *bufio.Writer) error) (int64, error) {
	dir, _ := vfs.Split(path)
	if err := fs.Mkdir(dir); err != nil {
		return 0, err
	}
	f, err := fs.Create(path)
	if err != nil {
		return 0, err
	}
	cw := &countingWriter{w: f}
	bw := bufio.NewWriter(cw)
	if err := emit(bw); err != nil {
		f.Close()
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return cw.n, err
	}
	return cw.n, f.Close()
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// --- text corpus (WordCount, "complete Shakespeare collection") ---

// textVocabulary is the word stock for the synthetic corpus; ordered by
// intended frequency rank (Zipf head first).
var textVocabulary = []string{
	"the", "and", "to", "of", "i", "you", "a", "my", "in", "that",
	"is", "not", "with", "me", "it", "for", "be", "his", "your", "this",
	"but", "he", "have", "as", "thou", "him", "so", "will", "what", "thy",
	"all", "her", "no", "by", "do", "shall", "if", "are", "we", "thee",
	"on", "lord", "our", "king", "good", "now", "sir", "from", "come", "at",
	"they", "she", "o", "let", "enter", "would", "more", "was", "love", "their",
	"hath", "man", "one", "go", "upon", "like", "say", "know", "may", "us",
	"make", "did", "yet", "should", "must", "why", "had", "out", "then", "see",
	"such", "where", "give", "these", "am", "speak", "or", "too", "can", "how",
	"there", "than", "think", "well", "who", "most", "heart", "death", "night", "life",
	"time", "day", "world", "father", "blood", "eyes", "honour", "sweet", "noble", "crown",
	"sword", "battle", "soldier", "prince", "queen", "duke", "heaven", "soul", "grace", "fortune",
}

// TextOpts sizes the corpus generator.
type TextOpts struct {
	Lines        int
	WordsPerLine int
	Seed         int64
}

// TextTruth is the ground truth for the WordCount assignments.
type TextTruth struct {
	TotalWords   int64
	TopWord      string
	TopWordCount int64
	Counts       map[string]int64
}

// Text writes a Zipf-distributed corpus and returns its truth.
func Text(fs vfs.FileSystem, path string, opts TextOpts) (*TextTruth, int64, error) {
	if opts.Lines <= 0 {
		opts.Lines = 1000
	}
	if opts.WordsPerLine <= 0 {
		opts.WordsPerLine = 10
	}
	rng := sim.NewRand(opts.Seed).Derive("text")
	zipf := rng.Zipf(1.1, uint64(len(textVocabulary)))
	truth := &TextTruth{Counts: map[string]int64{}}
	n, err := writeLines(fs, path, func(w *bufio.Writer) error {
		for i := 0; i < opts.Lines; i++ {
			for j := 0; j < opts.WordsPerLine; j++ {
				word := textVocabulary[zipf.Uint64()]
				truth.Counts[word]++
				truth.TotalWords++
				if j > 0 {
					w.WriteByte(' ')
				}
				w.WriteString(word)
			}
			if _, err := w.WriteString("\n"); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, n, err
	}
	for word, c := range truth.Counts {
		if c > truth.TopWordCount || (c == truth.TopWordCount && word < truth.TopWord) {
			truth.TopWord, truth.TopWordCount = word, c
		}
	}
	return truth, n, nil
}

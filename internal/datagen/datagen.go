// Package datagen synthesises the course's datasets. The originals
// (complete Shakespeare, the 12 GB Airline on-time database, the 250 MB
// MovieLens 10M ratings, the 10 GB Yahoo! Music ratings, the 171 GB
// Google cluster trace) are external downloads; these generators produce
// files with the same schemas and the statistical structure the
// assignments depend on — Zipf word frequencies, per-carrier delay
// distributions, movies with multiple genres, album/song join tables, and
// task resubmission events — at any size, deterministically from a seed.
//
// Every generator also returns the ground truth of its assignment's
// question, so tests can assert that MapReduce answers are exact.
package datagen

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"

	"repro/internal/iofmt"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// writeLines is a small helper: open path on fs, buffer, run the emit
// function, and return bytes written.
func writeLines(fs vfs.FileSystem, path string, emit func(w *bufio.Writer) error) (int64, error) {
	dir, _ := vfs.Split(path)
	if err := fs.Mkdir(dir); err != nil {
		return 0, err
	}
	f, err := fs.Create(path)
	if err != nil {
		return 0, err
	}
	cw := &countingWriter{w: f}
	bw := bufio.NewWriter(cw)
	if err := emit(bw); err != nil {
		f.Close()
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return cw.n, err
	}
	return cw.n, f.Close()
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// --- text corpus (WordCount, "complete Shakespeare collection") ---

// textVocabulary is the word stock for the synthetic corpus; ordered by
// intended frequency rank (Zipf head first).
var textVocabulary = []string{
	"the", "and", "to", "of", "i", "you", "a", "my", "in", "that",
	"is", "not", "with", "me", "it", "for", "be", "his", "your", "this",
	"but", "he", "have", "as", "thou", "him", "so", "will", "what", "thy",
	"all", "her", "no", "by", "do", "shall", "if", "are", "we", "thee",
	"on", "lord", "our", "king", "good", "now", "sir", "from", "come", "at",
	"they", "she", "o", "let", "enter", "would", "more", "was", "love", "their",
	"hath", "man", "one", "go", "upon", "like", "say", "know", "may", "us",
	"make", "did", "yet", "should", "must", "why", "had", "out", "then", "see",
	"such", "where", "give", "these", "am", "speak", "or", "too", "can", "how",
	"there", "than", "think", "well", "who", "most", "heart", "death", "night", "life",
	"time", "day", "world", "father", "blood", "eyes", "honour", "sweet", "noble", "crown",
	"sword", "battle", "soldier", "prince", "queen", "duke", "heaven", "soul", "grace", "fortune",
}

// TextOpts sizes the corpus generator.
type TextOpts struct {
	Lines        int
	WordsPerLine int
	Seed         int64
	// SeqBlockBytes caps raw bytes per SequenceFile block for the seq
	// formats (default 8 KiB — small blocks mean many sync points, so
	// even lab-sized corpora split several ways).
	SeqBlockBytes int
}

// TextTruth is the ground truth for the WordCount assignments.
type TextTruth struct {
	TotalWords   int64
	TopWord      string
	TopWordCount int64
	Counts       map[string]int64
}

// textStream generates the corpus lines and their ground truth — the
// single deterministic token stream every Text* format shares, so the
// same seed yields the same words whatever container they land in.
func textStream(opts TextOpts) ([]string, *TextTruth) {
	if opts.Lines <= 0 {
		opts.Lines = 1000
	}
	if opts.WordsPerLine <= 0 {
		opts.WordsPerLine = 10
	}
	rng := sim.NewRand(opts.Seed).Derive("text")
	zipf := rng.Zipf(1.1, uint64(len(textVocabulary)))
	truth := &TextTruth{Counts: map[string]int64{}}
	lines := make([]string, opts.Lines)
	var b strings.Builder
	for i := 0; i < opts.Lines; i++ {
		b.Reset()
		for j := 0; j < opts.WordsPerLine; j++ {
			word := textVocabulary[zipf.Uint64()]
			truth.Counts[word]++
			truth.TotalWords++
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(word)
		}
		lines[i] = b.String()
	}
	for word, c := range truth.Counts {
		if c > truth.TopWordCount || (c == truth.TopWordCount && word < truth.TopWord) {
			truth.TopWord, truth.TopWordCount = word, c
		}
	}
	return lines, truth
}

// Text writes a Zipf-distributed corpus and returns its truth.
func Text(fs vfs.FileSystem, path string, opts TextOpts) (*TextTruth, int64, error) {
	return TextAs(fs, path, opts, "text")
}

// TextAs writes the same seed-for-seed corpus as Text in the named
// container format, so labs and benches can compare formats on
// identical data:
//
//	"text"              plain newline-delimited lines
//	"gz", "lzs"         the whole stream compressed with that codec —
//	                    not splittable, so jobs get exactly one map task
//	"seq"               an uncompressed SequenceFile, one record per
//	                    line (empty key), splittable at sync markers
//	"seq-gzip","seq-lzs" a block-compressed SequenceFile — compressed
//	                    AND splittable, the format lesson in one file
//
// The caller chooses the path; TextPathFor builds the conventional one.
func TextAs(fs vfs.FileSystem, path string, opts TextOpts, format string) (*TextTruth, int64, error) {
	lines, truth := textStream(opts)
	switch format {
	case "", "text":
		n, err := writeLines(fs, path, func(w *bufio.Writer) error {
			for _, line := range lines {
				if _, err := w.WriteString(line); err != nil {
					return err
				}
				if err := w.WriteByte('\n'); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, n, err
		}
		return truth, n, nil
	case "gz", "lzs":
		codec, err := iofmt.ByName(map[string]string{"gz": "gzip", "lzs": "lzs"}[format])
		if err != nil {
			return nil, 0, err
		}
		var raw bytes.Buffer
		for _, line := range lines {
			raw.WriteString(line)
			raw.WriteByte('\n')
		}
		enc, err := codec.Compress(raw.Bytes())
		if err != nil {
			return nil, 0, err
		}
		n, err := writeBytes(fs, path, enc)
		return truth, n, err
	case "seq", "seq-gzip", "seq-lzs":
		codecName := strings.TrimPrefix(format, "seq")
		codecName = strings.TrimPrefix(codecName, "-")
		codec, err := iofmt.ByName(codecName)
		if err != nil {
			return nil, 0, err
		}
		blockBytes := opts.SeqBlockBytes
		if blockBytes <= 0 {
			blockBytes = 8 << 10
		}
		var buf bytes.Buffer
		sw, err := iofmt.NewSeqWriter(&buf, iofmt.SeqWriterOptions{Codec: codec, BlockBytes: blockBytes})
		if err != nil {
			return nil, 0, err
		}
		for _, line := range lines {
			if err := sw.Append(nil, []byte(line)); err != nil {
				return nil, 0, err
			}
		}
		if err := sw.Close(); err != nil {
			return nil, 0, err
		}
		n, err := writeBytes(fs, path, buf.Bytes())
		return truth, n, err
	default:
		return nil, 0, fmt.Errorf("datagen: unknown text format %q", format)
	}
}

// TextFormats lists the containers TextAs understands.
func TextFormats() []string {
	return []string{"text", "gz", "lzs", "seq", "seq-gzip", "seq-lzs"}
}

// TextPathFor names a corpus file conventionally for a format: the base
// path as-is for text, with the codec suffix appended for compressed
// text, and with the extension swapped for ".seq" for the SequenceFile
// formats.
func TextPathFor(base, format string) string {
	switch format {
	case "gz", "lzs":
		return base + "." + format
	case "seq", "seq-gzip", "seq-lzs":
		return strings.TrimSuffix(base, ".txt") + ".seq"
	default:
		return base
	}
}

// writeBytes writes an already-encoded file under path, creating the
// parent directory.
func writeBytes(fs vfs.FileSystem, path string, data []byte) (int64, error) {
	dir, _ := vfs.Split(path)
	if err := fs.Mkdir(dir); err != nil {
		return 0, err
	}
	if err := vfs.WriteFile(fs, path, data); err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}

package datagen

import (
	"bufio"
	"strconv"
	"strings"
	"testing"

	"repro/internal/iofmt"
	"repro/internal/vfs"
)

func TestTextDeterministic(t *testing.T) {
	a := vfs.NewMemFS()
	b := vfs.NewMemFS()
	ta, na, err := Text(a, "/c.txt", TextOpts{Lines: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	tb, nb, err := Text(b, "/c.txt", TextOpts{Lines: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	da, _ := vfs.ReadFile(a, "/c.txt")
	db, _ := vfs.ReadFile(b, "/c.txt")
	if string(da) != string(db) || na != nb {
		t.Fatal("same seed produced different corpora")
	}
	if ta.TopWord != tb.TopWord {
		t.Fatal("truth differs across identical runs")
	}
}

func TestTextFormatsCarrySameStream(t *testing.T) {
	opts := TextOpts{Lines: 300, Seed: 9, SeqBlockBytes: 2 << 10}
	fs := vfs.NewMemFS()
	baseTruth, _, err := TextAs(fs, "/c.txt", opts, "text")
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := vfs.ReadFile(fs, "/c.txt")
	for _, format := range TextFormats() {
		if format == "text" {
			continue
		}
		ffs := vfs.NewMemFS()
		path := TextPathFor("/c.txt", format)
		truth, n, err := TextAs(ffs, path, opts, format)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		data, _ := vfs.ReadFile(ffs, path)
		if int64(len(data)) != n {
			t.Fatalf("%s: reported %d bytes, file has %d", format, n, len(data))
		}
		decoded, err := iofmt.DecodeToText(path, data)
		if err != nil {
			t.Fatalf("%s: decode: %v", format, err)
		}
		if string(decoded) != string(plain) {
			t.Fatalf("%s: decoded stream differs from plain text (%d vs %d bytes)",
				format, len(decoded), len(plain))
		}
		if truth.TopWord != baseTruth.TopWord || truth.TotalWords != baseTruth.TotalWords {
			t.Fatalf("%s: truth differs from plain text", format)
		}
	}
	if _, _, err := TextAs(vfs.NewMemFS(), "/c.bin", opts, "zip"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestTextTruthMatchesFile(t *testing.T) {
	fs := vfs.NewMemFS()
	truth, _, err := Text(fs, "/c.txt", TextOpts{Lines: 200, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	data, _ := vfs.ReadFile(fs, "/c.txt")
	counts := map[string]int64{}
	var total int64
	for _, w := range strings.Fields(string(data)) {
		counts[w]++
		total++
	}
	if total != truth.TotalWords {
		t.Fatalf("total words %d != truth %d", total, truth.TotalWords)
	}
	for w, c := range truth.Counts {
		if counts[w] != c {
			t.Fatalf("count[%s]=%d truth=%d", w, counts[w], c)
		}
	}
	if counts[truth.TopWord] != truth.TopWordCount {
		t.Fatal("top word count mismatch")
	}
	// Zipf head: "the" should dominate.
	if truth.TopWord != "the" {
		t.Logf("top word is %q (acceptable but unusual)", truth.TopWord)
	}
}

func TestAirlineTruthMatchesFile(t *testing.T) {
	fs := vfs.NewMemFS()
	truth, _, err := Airline(fs, "/airline.csv", AirlineOpts{Rows: 3000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	data, _ := vfs.ReadFile(fs, "/airline.csv")
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if !strings.HasPrefix(lines[0], "Year,Month") {
		t.Fatalf("missing header: %q", lines[0])
	}
	sums := map[string]float64{}
	counts := map[string]int64{}
	for _, line := range lines[1:] {
		f := strings.Split(line, ",")
		if len(f) != 13 {
			t.Fatalf("bad column count in %q", line)
		}
		if f[10] == "NA" {
			continue // cancelled
		}
		d, err := strconv.ParseFloat(f[10], 64)
		if err != nil {
			t.Fatalf("bad delay %q", f[10])
		}
		sums[f[5]] += d
		counts[f[5]]++
	}
	for code, c := range truth.Counts {
		if counts[code] != c {
			t.Fatalf("counts[%s]=%d truth=%d", code, counts[code], c)
		}
		if diff := sums[code] - truth.Sums[code]; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("sums[%s]=%f truth=%f", code, sums[code], truth.Sums[code])
		}
	}
	if truth.BestCode == "" {
		t.Fatal("no best carrier computed")
	}
}

func TestMoviesTruthConsistent(t *testing.T) {
	fs := vfs.NewMemFS()
	truth, _, err := Movies(fs, "/ml", MovieOpts{Movies: 50, Users: 100, Ratings: 3000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// movies.dat: every movie present with 1–3 genres.
	data, _ := vfs.ReadFile(fs, "/ml/movies.dat")
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 50 {
		t.Fatalf("movies.dat has %d lines", len(lines))
	}
	for _, line := range lines {
		parts := strings.Split(line, "::")
		if len(parts) != 3 {
			t.Fatalf("bad movie line %q", line)
		}
		ngen := len(strings.Split(parts[2], "|"))
		if ngen < 1 || ngen > 3 {
			t.Fatalf("movie has %d genres", ngen)
		}
	}
	// ratings.dat row count and user totals agree with truth.
	rdata, _ := vfs.ReadFile(fs, "/ml/ratings.dat")
	rlines := strings.Split(strings.TrimSpace(string(rdata)), "\n")
	if len(rlines) != 3000 {
		t.Fatalf("ratings.dat has %d lines", len(rlines))
	}
	var totalUser int64
	for _, c := range truth.UserRatings {
		totalUser += c
	}
	if totalUser != 3000 {
		t.Fatalf("truth user totals = %d", totalUser)
	}
	if truth.TopUser == 0 || truth.TopUserCount == 0 || truth.FavGenre == "" {
		t.Fatalf("incomplete truth: %+v", truth)
	}
	// The Zipf head user should clearly dominate.
	if truth.TopUserCount < 3000/20 {
		t.Fatalf("top user only has %d ratings; Zipf skew too weak", truth.TopUserCount)
	}
}

func TestMusicTruthConsistent(t *testing.T) {
	fs := vfs.NewMemFS()
	truth, _, err := Music(fs, "/ym", MusicOpts{Songs: 100, Albums: 10, Users: 50, Ratings: 5000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if truth.BestAlbum == 0 {
		t.Fatal("no best album")
	}
	// Recompute from the files.
	songs, _ := vfs.ReadFile(fs, "/ym/songs.tsv")
	songAlbum := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(string(songs)), "\n") {
		f := strings.Split(line, "\t")
		songAlbum[f[0]] = f[1]
	}
	if len(songAlbum) != 100 {
		t.Fatalf("songs.tsv rows = %d", len(songAlbum))
	}
	ratings, _ := vfs.ReadFile(fs, "/ym/ratings.tsv")
	sum := map[string]float64{}
	count := map[string]int64{}
	sc := bufio.NewScanner(strings.NewReader(string(ratings)))
	for sc.Scan() {
		f := strings.Split(sc.Text(), "\t")
		r, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		a := songAlbum[f[1]]
		sum[a] += r
		count[a]++
	}
	best, bestAvg := "", -1.0
	for a, s := range sum {
		if avg := s / float64(count[a]); avg > bestAvg {
			best, bestAvg = a, avg
		}
	}
	wantBest := strconv.Itoa(truth.BestAlbum)
	if best != wantBest {
		t.Fatalf("recomputed best album %s != truth %s", best, wantBest)
	}
}

func TestTraceTruthConsistent(t *testing.T) {
	fs := vfs.NewMemFS()
	truth, _, err := Trace(fs, "/trace.csv", TraceOpts{Jobs: 20, MeanTasks: 10, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if truth.MaxJob == 0 || truth.MaxResub == 0 {
		t.Fatalf("no flaky job found: %+v", truth)
	}
	// Recompute resubmissions: SUBMIT events per (job,task) minus one.
	data, _ := vfs.ReadFile(fs, "/trace.csv")
	submits := map[string]int64{}
	var lastTS int64 = -1
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		f := strings.Split(line, ",")
		if len(f) != 5 {
			t.Fatalf("bad event line %q", line)
		}
		ts, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		if ts < lastTS {
			t.Fatal("events not sorted by timestamp")
		}
		lastTS = ts
		if f[4] == "0" {
			submits[f[1]+"#"+f[2]]++
		}
	}
	resub := map[string]int64{}
	for k, n := range submits {
		job := strings.SplitN(k, "#", 2)[0]
		resub[job] += n - 1
	}
	var maxJob string
	var maxN int64
	for j, n := range resub {
		if n > maxN || (n == maxN && j < maxJob) {
			maxJob, maxN = j, n
		}
	}
	if maxN != truth.MaxResub {
		t.Fatalf("recomputed max resubmissions %d != truth %d", maxN, truth.MaxResub)
	}
}

func TestGeneratorsOnOsFS(t *testing.T) {
	fs, err := vfs.NewOsFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, n, err := Text(fs, "/corpus/shakespeare.txt", TextOpts{Lines: 50}); err != nil || n == 0 {
		t.Fatalf("text on osfs: n=%d err=%v", n, err)
	}
	if _, n, err := Airline(fs, "/airline/ontime.csv", AirlineOpts{Rows: 50}); err != nil || n == 0 {
		t.Fatalf("airline on osfs: n=%d err=%v", n, err)
	}
}

func TestSortableFormat(t *testing.T) {
	fs := vfs.NewMemFS()
	rows, n, err := Sortable(fs, "/r.txt", SortableOpts{Rows: 100, Seed: 1})
	if err != nil || rows != 100 || n == 0 {
		t.Fatalf("rows=%d n=%d err=%v", rows, n, err)
	}
	data, _ := vfs.ReadFile(fs, "/r.txt")
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 100 {
		t.Fatalf("lines = %d", len(lines))
	}
	for _, line := range lines {
		key, payload, ok := strings.Cut(line, "\t")
		if !ok || len(key) != 10 || len(payload) != 64 {
			t.Fatalf("bad record %q", line)
		}
	}
}

func TestGraphEveryNodeHasOutEdge(t *testing.T) {
	fs := vfs.NewMemFS()
	truth, _, err := Graph(fs, "/g.txt", GraphOpts{Nodes: 80, AvgEdges: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < truth.Nodes; v++ {
		if len(truth.Out[v]) == 0 {
			t.Fatalf("node %d is dangling", v)
		}
		for _, w := range truth.Out[v] {
			if w == v {
				t.Fatalf("node %d has a self-loop", v)
			}
			if w < 0 || w >= truth.Nodes {
				t.Fatalf("edge %d->%d out of range", v, w)
			}
		}
	}
	// Rank sums to 1 at any iteration count.
	for _, it := range []int{0, 1, 7} {
		ranks := truth.PageRank(it, 0.85)
		var sum float64
		for _, r := range ranks {
			sum += r
		}
		if sum < 0.999999 || sum > 1.000001 {
			t.Fatalf("iter %d: rank mass %f", it, sum)
		}
	}
}

package datagen

import (
	"bufio"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// Google cluster trace event types (subset of the 2011 trace schema).
const (
	EvSubmit   = 0
	EvSchedule = 1
	EvEvict    = 2
	EvFail     = 3
	EvFinish   = 4
	EvKill     = 5
)

// TraceOpts sizes the Google cluster trace generator.
type TraceOpts struct {
	Jobs      int
	MeanTasks int
	Seed      int64
	// FlakyJobBias boosts one job's failure probability so "the job with
	// the most task resubmissions" has an unambiguous answer.
	FlakyJobBias float64
}

// TraceTruth is the ground truth for the Fall 2012 second assignment:
// the job with the largest number of task resubmissions. A resubmission
// is a SUBMIT event for a (job, task) pair beyond its first.
type TraceTruth struct {
	Events        int64
	Resubmissions map[int64]int64
	MaxJob        int64
	MaxResub      int64
}

// Trace writes task_events.csv lines of the form
// "timestamp,jobID,taskIndex,machineID,eventType" and returns the truth.
func Trace(fs vfs.FileSystem, path string, opts TraceOpts) (*TraceTruth, int64, error) {
	if opts.Jobs <= 0 {
		opts.Jobs = 50
	}
	if opts.MeanTasks <= 0 {
		opts.MeanTasks = 20
	}
	if opts.FlakyJobBias <= 0 {
		opts.FlakyJobBias = 6
	}
	rng := sim.NewRand(opts.Seed).Derive("trace")
	truth := &TraceTruth{Resubmissions: map[int64]int64{}}

	type event struct {
		ts   int64
		job  int64
		task int
		mach int
		typ  int
	}
	var events []event
	flaky := rng.Intn(opts.Jobs) // the deliberately crash-looping job
	for j := 0; j < opts.Jobs; j++ {
		jobID := int64(6200000000 + j*1000 + rng.Intn(999))
		tasks := 1 + rng.Intn(2*opts.MeanTasks)
		failP := 0.05 + rng.Float64()*0.1
		if j == flaky {
			failP *= opts.FlakyJobBias
			if failP > 0.9 {
				failP = 0.9
			}
		}
		base := int64(rng.Intn(1_000_000)) * 1000
		for t := 0; t < tasks; t++ {
			ts := base + int64(t)*17
			attempts := 0
			for {
				mach := 1 + rng.Intn(5000)
				events = append(events, event{ts, jobID, t, mach, EvSubmit})
				if attempts > 0 {
					truth.Resubmissions[jobID]++
				}
				ts += int64(1 + rng.Intn(500))
				events = append(events, event{ts, jobID, t, mach, EvSchedule})
				ts += int64(10 + rng.Intn(100000))
				attempts++
				if attempts < 12 && rng.Bernoulli(failP) {
					typ := EvFail
					if rng.Bernoulli(0.3) {
						typ = EvEvict
					}
					events = append(events, event{ts, jobID, t, mach, typ})
					ts += int64(1 + rng.Intn(1000))
					continue // resubmit
				}
				events = append(events, event{ts, jobID, t, mach, EvFinish})
				break
			}
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].ts != events[j].ts {
			return events[i].ts < events[j].ts
		}
		if events[i].job != events[j].job {
			return events[i].job < events[j].job
		}
		return events[i].task < events[j].task
	})
	n, err := writeLines(fs, path, func(w *bufio.Writer) error {
		for _, e := range events {
			if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d\n", e.ts, e.job, e.task, e.mach, e.typ); err != nil {
				return err
			}
			truth.Events++
		}
		return nil
	})
	if err != nil {
		return nil, n, err
	}
	for job, r := range truth.Resubmissions {
		if r > truth.MaxResub || (r == truth.MaxResub && job < truth.MaxJob) {
			truth.MaxJob, truth.MaxResub = job, r
		}
	}
	return truth, n, nil
}

// --- Google-trace-style multi-tenant workload ---
//
// TraceWorkload generates the arrival schedule the multi-tenant YARN
// experiments replay: thousands of applications in the shape of the 2011
// Google cluster trace — a heavy-tailed mix of short service pings and
// long batch sweeps — plus the paper's deadline meltdown scaled up: a
// cohort of student jobs whose submissions bunch at the end of the
// window (sqrt-procrastination, as in E1). The output is pure data so
// the scheduler under test sees an identical workload however it is
// configured.

// Tenant queue names used by the generated workload.
const (
	QueueProd     = "prod"
	QueueBatch    = "batch"
	QueueStudents = "students"
)

// TraceTask is one container's worth of work inside a workload app.
type TraceTask struct {
	VCores   int
	MemoryMB int64
	Duration time.Duration
}

// TraceApp is one application arrival in the replayed trace.
type TraceApp struct {
	Name   string
	User   string
	Queue  string
	Submit time.Duration // offset from replay start
	Tasks  []TraceTask
}

// TraceWorkloadOpts sizes the workload generator.
type TraceWorkloadOpts struct {
	// Apps is the total application count (default 1200); Students of
	// them form the deadline cohort, the rest split ~40/60 between prod
	// and batch tenants.
	Apps int
	// Students is the deadline-cohort size (default 350 — the paper's 35
	// at 10x enrollment).
	Students int
	// Window is the replay horizon arrivals spread over (default 4h, the
	// E1 deadline window).
	Window time.Duration
	Seed   int64
}

func (o TraceWorkloadOpts) withDefaults() TraceWorkloadOpts {
	if o.Apps <= 0 {
		o.Apps = 1200
	}
	if o.Students <= 0 {
		o.Students = 350
	}
	if o.Students > o.Apps {
		o.Students = o.Apps
	}
	if o.Window <= 0 {
		o.Window = 4 * time.Hour
	}
	return o
}

// TraceWorkload builds the app arrival schedule, sorted by submit time
// (ties by name). Deterministic in opts.
func TraceWorkload(opts TraceWorkloadOpts) []TraceApp {
	opts = opts.withDefaults()
	rng := sim.NewRand(opts.Seed).Derive("trace-workload")
	var apps []TraceApp

	background := opts.Apps - opts.Students
	prodN := background * 2 / 5
	batchN := background - prodN

	// Prod: many short, small service-style apps, uniform arrivals.
	for i := 0; i < prodN; i++ {
		tasks := 2 + rng.Intn(5)
		app := TraceApp{
			Name:   fmt.Sprintf("prod-%04d", i),
			User:   fmt.Sprintf("svc-%d", rng.Intn(4)),
			Queue:  QueueProd,
			Submit: time.Duration(rng.Float64() * float64(opts.Window)),
		}
		for t := 0; t < tasks; t++ {
			app.Tasks = append(app.Tasks, TraceTask{
				VCores:   1,
				MemoryMB: 1024,
				Duration: 20*time.Second + time.Duration(rng.Intn(100))*time.Second,
			})
		}
		apps = append(apps, app)
	}

	// Batch: fewer, fatter ETL-style apps with a heavy tail. Arrivals
	// ramp toward the end of the window (sqrt skew, like the trace's
	// diurnal build-up), so the first half runs light — the autoscaler's
	// harvest — and the second half carries a standing backlog: the
	// queue the deadline cohort lands behind.
	for i := 0; i < batchN; i++ {
		tasks := 6 + rng.Intn(20)
		app := TraceApp{
			Name:   fmt.Sprintf("batch-%04d", i),
			User:   fmt.Sprintf("etl-%d", rng.Intn(6)),
			Queue:  QueueBatch,
			Submit: time.Duration(float64(opts.Window) * math.Sqrt(rng.Float64())),
		}
		for t := 0; t < tasks; t++ {
			d := time.Duration(90+rng.Intn(300)) * time.Second
			if rng.Bernoulli(0.12) { // the trace's long tail
				d *= 3
			}
			app.Tasks = append(app.Tasks, TraceTask{
				VCores:   1,
				MemoryMB: 2048,
				Duration: d,
			})
		}
		apps = append(apps, app)
	}

	// Students: the deadline meltdown at scale. sqrt(u) bunches the
	// cohort against the end of the window, as in E1.
	for i := 0; i < opts.Students; i++ {
		tasks := 3 + rng.Intn(7)
		app := TraceApp{
			Name:   fmt.Sprintf("student-%04d", i),
			User:   fmt.Sprintf("s%04d", i),
			Queue:  QueueStudents,
			Submit: time.Duration(float64(opts.Window) * math.Sqrt(rng.Float64())),
		}
		for t := 0; t < tasks; t++ {
			app.Tasks = append(app.Tasks, TraceTask{
				VCores:   1,
				MemoryMB: 1024,
				Duration: 30*time.Second + time.Duration(rng.Intn(90))*time.Second,
			})
		}
		apps = append(apps, app)
	}

	sort.Slice(apps, func(i, j int) bool {
		if apps[i].Submit != apps[j].Submit {
			return apps[i].Submit < apps[j].Submit
		}
		return apps[i].Name < apps[j].Name
	})
	return apps
}

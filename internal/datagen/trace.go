package datagen

import (
	"bufio"
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// Google cluster trace event types (subset of the 2011 trace schema).
const (
	EvSubmit   = 0
	EvSchedule = 1
	EvEvict    = 2
	EvFail     = 3
	EvFinish   = 4
	EvKill     = 5
)

// TraceOpts sizes the Google cluster trace generator.
type TraceOpts struct {
	Jobs      int
	MeanTasks int
	Seed      int64
	// FlakyJobBias boosts one job's failure probability so "the job with
	// the most task resubmissions" has an unambiguous answer.
	FlakyJobBias float64
}

// TraceTruth is the ground truth for the Fall 2012 second assignment:
// the job with the largest number of task resubmissions. A resubmission
// is a SUBMIT event for a (job, task) pair beyond its first.
type TraceTruth struct {
	Events        int64
	Resubmissions map[int64]int64
	MaxJob        int64
	MaxResub      int64
}

// Trace writes task_events.csv lines of the form
// "timestamp,jobID,taskIndex,machineID,eventType" and returns the truth.
func Trace(fs vfs.FileSystem, path string, opts TraceOpts) (*TraceTruth, int64, error) {
	if opts.Jobs <= 0 {
		opts.Jobs = 50
	}
	if opts.MeanTasks <= 0 {
		opts.MeanTasks = 20
	}
	if opts.FlakyJobBias <= 0 {
		opts.FlakyJobBias = 6
	}
	rng := sim.NewRand(opts.Seed).Derive("trace")
	truth := &TraceTruth{Resubmissions: map[int64]int64{}}

	type event struct {
		ts   int64
		job  int64
		task int
		mach int
		typ  int
	}
	var events []event
	flaky := rng.Intn(opts.Jobs) // the deliberately crash-looping job
	for j := 0; j < opts.Jobs; j++ {
		jobID := int64(6200000000 + j*1000 + rng.Intn(999))
		tasks := 1 + rng.Intn(2*opts.MeanTasks)
		failP := 0.05 + rng.Float64()*0.1
		if j == flaky {
			failP *= opts.FlakyJobBias
			if failP > 0.9 {
				failP = 0.9
			}
		}
		base := int64(rng.Intn(1_000_000)) * 1000
		for t := 0; t < tasks; t++ {
			ts := base + int64(t)*17
			attempts := 0
			for {
				mach := 1 + rng.Intn(5000)
				events = append(events, event{ts, jobID, t, mach, EvSubmit})
				if attempts > 0 {
					truth.Resubmissions[jobID]++
				}
				ts += int64(1 + rng.Intn(500))
				events = append(events, event{ts, jobID, t, mach, EvSchedule})
				ts += int64(10 + rng.Intn(100000))
				attempts++
				if attempts < 12 && rng.Bernoulli(failP) {
					typ := EvFail
					if rng.Bernoulli(0.3) {
						typ = EvEvict
					}
					events = append(events, event{ts, jobID, t, mach, typ})
					ts += int64(1 + rng.Intn(1000))
					continue // resubmit
				}
				events = append(events, event{ts, jobID, t, mach, EvFinish})
				break
			}
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].ts != events[j].ts {
			return events[i].ts < events[j].ts
		}
		if events[i].job != events[j].job {
			return events[i].job < events[j].job
		}
		return events[i].task < events[j].task
	})
	n, err := writeLines(fs, path, func(w *bufio.Writer) error {
		for _, e := range events {
			if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d\n", e.ts, e.job, e.task, e.mach, e.typ); err != nil {
				return err
			}
			truth.Events++
		}
		return nil
	})
	if err != nil {
		return nil, n, err
	}
	for job, r := range truth.Resubmissions {
		if r > truth.MaxResub || (r == truth.MaxResub && job < truth.MaxJob) {
			truth.MaxJob, truth.MaxResub = job, r
		}
	}
	return truth, n, nil
}

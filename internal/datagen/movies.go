package datagen

import (
	"bufio"
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// Genres are the MovieLens genre labels.
var Genres = []string{
	"Action", "Adventure", "Animation", "Children", "Comedy", "Crime",
	"Documentary", "Drama", "Fantasy", "Film-Noir", "Horror", "Musical",
	"Mystery", "Romance", "Sci-Fi", "Thriller", "War", "Western",
}

// MovieOpts sizes the movie-rating generator.
type MovieOpts struct {
	Movies  int
	Users   int
	Ratings int
	Seed    int64
}

// MovieTruth is the ground truth for the first assignment: descriptive
// statistics per genre, plus the most-active user and their favourite
// genre.
type MovieTruth struct {
	GenreSum     map[string]float64
	GenreCount   map[string]int64
	UserRatings  map[int]int64
	TopUser      int
	TopUserCount int64
	FavGenre     string
	MovieGenres  map[int][]string
}

// GenreAvg returns the true mean rating for a genre.
func (t *MovieTruth) GenreAvg(g string) float64 {
	if t.GenreCount[g] == 0 {
		return 0
	}
	return t.GenreSum[g] / float64(t.GenreCount[g])
}

// Movies writes movies.dat ("MovieID::Title::Genre|Genre") and
// ratings.dat ("UserID::MovieID::Rating::Timestamp") in MovieLens 10M
// format and returns the truth. movies.dat is the side file whose access
// pattern the assignment's optimisation lesson is about.
func Movies(fs vfs.FileSystem, dir string, opts MovieOpts) (*MovieTruth, int64, error) {
	if opts.Movies <= 0 {
		opts.Movies = 200
	}
	if opts.Users <= 0 {
		opts.Users = 500
	}
	if opts.Ratings <= 0 {
		opts.Ratings = 20000
	}
	rng := sim.NewRand(opts.Seed).Derive("movies")
	truth := &MovieTruth{
		GenreSum:    map[string]float64{},
		GenreCount:  map[string]int64{},
		UserRatings: map[int]int64{},
		MovieGenres: map[int][]string{},
	}
	// Assign 1–3 genres per movie.
	for m := 1; m <= opts.Movies; m++ {
		k := 1 + rng.Intn(3)
		seen := map[string]bool{}
		for len(seen) < k {
			seen[Genres[rng.Intn(len(Genres))]] = true
		}
		var gs []string
		for _, g := range Genres { // canonical order
			if seen[g] {
				gs = append(gs, g)
			}
		}
		truth.MovieGenres[m] = gs
	}
	nMovies, err := writeLines(fs, vfs.Join(dir, "movies.dat"), func(w *bufio.Writer) error {
		for m := 1; m <= opts.Movies; m++ {
			year := 1950 + rng.Intn(60)
			if _, err := fmt.Fprintf(w, "%d::Movie %04d (%d)::%s\n",
				m, m, year, strings.Join(truth.MovieGenres[m], "|")); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, nMovies, err
	}
	// Zipf user activity and movie popularity: one user clearly rates most.
	userZipf := rng.Zipf(1.3, uint64(opts.Users))
	movieZipf := rng.Zipf(1.15, uint64(opts.Movies))
	// Per-user genre taste: each user favours one genre cluster.
	userFav := make([]string, opts.Users+1)
	for u := 1; u <= opts.Users; u++ {
		userFav[u] = Genres[rng.Intn(len(Genres))]
	}
	userGenreCount := map[int]map[string]int64{}
	nRatings, err := writeLines(fs, vfs.Join(dir, "ratings.dat"), func(w *bufio.Writer) error {
		for i := 0; i < opts.Ratings; i++ {
			u := int(userZipf.Uint64()) + 1
			m := int(movieZipf.Uint64()) + 1
			// Bias movie choice toward the user's favourite genre.
			if rng.Bernoulli(0.3) {
				for try := 0; try < 4; try++ {
					cand := int(movieZipf.Uint64()) + 1
					match := false
					for _, g := range truth.MovieGenres[cand] {
						if g == userFav[u] {
							match = true
						}
					}
					if match {
						m = cand
						break
					}
				}
			}
			rating := 1 + rng.Intn(5)
			ts := 789652000 + rng.Intn(300000000)
			if _, err := fmt.Fprintf(w, "%d::%d::%d::%d\n", u, m, rating, ts); err != nil {
				return err
			}
			truth.UserRatings[u]++
			if userGenreCount[u] == nil {
				userGenreCount[u] = map[string]int64{}
			}
			for _, g := range truth.MovieGenres[m] {
				truth.GenreSum[g] += float64(rating)
				truth.GenreCount[g]++
				userGenreCount[u][g]++
			}
		}
		return nil
	})
	if err != nil {
		return nil, nMovies + nRatings, err
	}
	for u, c := range truth.UserRatings {
		if c > truth.TopUserCount || (c == truth.TopUserCount && u < truth.TopUser) {
			truth.TopUser, truth.TopUserCount = u, c
		}
	}
	var fav string
	var favN int64 = -1
	for _, g := range Genres {
		if n := userGenreCount[truth.TopUser][g]; n > favN {
			fav, favN = g, n
		}
	}
	truth.FavGenre = fav
	return truth, nMovies + nRatings, nil
}

package datagen

import (
	"bytes"
	"strings"
	"testing"
)

func TestYCSBDeterministic(t *testing.T) {
	for _, mix := range []string{"a", "b", "c", "e", "f"} {
		opts := YCSBOpts{Mix: mix, Records: 200, Ops: 500, Seed: 42}
		a, err := YCSB(opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := YCSB(opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("mix %s: lengths differ", mix)
		}
		for i := range a {
			if a[i].Type != b[i].Type || a[i].Key != b[i].Key ||
				a[i].ScanLen != b[i].ScanLen || !bytes.Equal(a[i].Value, b[i].Value) {
				t.Fatalf("mix %s: op %d differs: %+v vs %+v", mix, i, a[i], b[i])
			}
		}
	}
}

func TestYCSBMixRatios(t *testing.T) {
	for mix, want := range ycsbMixes {
		ops, err := YCSB(YCSBOpts{Mix: mix, Records: 500, Ops: 5000, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		counts := map[string]float64{}
		for _, op := range ops {
			counts[op.Type]++
		}
		n := float64(len(ops))
		for typ, frac := range map[string]float64{
			YCSBRead: want.read, YCSBUpdate: want.update,
			YCSBInsert: want.insert, YCSBScan: want.scan, YCSBRMW: want.rmw,
		} {
			got := counts[typ] / n
			if got < frac-0.03 || got > frac+0.03 {
				t.Errorf("mix %s: %s fraction %.3f, want %.2f±0.03", mix, typ, got, frac)
			}
		}
	}
}

func TestYCSBInsertsExtendKeyspace(t *testing.T) {
	const records = 100
	ops, err := YCSB(YCSBOpts{Mix: "e", Records: records, Ops: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	next := records
	scans := 0
	for _, op := range ops {
		switch op.Type {
		case YCSBInsert:
			if op.Key != YCSBKey(next) {
				t.Fatalf("insert key %s, want %s", op.Key, YCSBKey(next))
			}
			if seen[op.Key] {
				t.Fatalf("duplicate insert key %s", op.Key)
			}
			seen[op.Key] = true
			next++
		case YCSBScan:
			scans++
			if op.ScanLen < 1 || op.ScanLen > 100 {
				t.Fatalf("scan len %d out of [1,100]", op.ScanLen)
			}
		}
	}
	if scans == 0 || next == records {
		t.Fatalf("workload e produced %d scans, %d inserts", scans, next-records)
	}
}

func TestYCSBZipfSkewAndLoad(t *testing.T) {
	ops, err := YCSB(YCSBOpts{Mix: "c", Records: 1000, Ops: 5000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Zipf over sequential keys: the head of the key range dominates.
	head := 0
	for _, op := range ops {
		if strings.Compare(op.Key, YCSBKey(100)) < 0 {
			head++
		}
	}
	if frac := float64(head) / float64(len(ops)); frac < 0.5 {
		t.Errorf("head-100 keys got %.2f of reads, want skew > 0.5", frac)
	}
	load := YCSBLoad(50, 64)
	if len(load) != 50 {
		t.Fatalf("load size %d", len(load))
	}
	for i, op := range load {
		if op.Type != YCSBInsert || op.Key != YCSBKey(i) || len(op.Value) != 64 {
			t.Fatalf("load op %d = %+v", i, op)
		}
	}
	if _, err := YCSB(YCSBOpts{Mix: "z"}); err == nil {
		t.Fatal("unknown mix accepted")
	}
}

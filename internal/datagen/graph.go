package datagen

import (
	"bufio"
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// GraphOpts sizes the synthetic web-graph generator.
type GraphOpts struct {
	Nodes    int
	AvgEdges int
	Seed     int64
}

// GraphTruth carries the adjacency list and reference PageRank values
// (computed by plain power iteration with the same update rule the
// MapReduce job applies, so results can be compared iteration for
// iteration).
type GraphTruth struct {
	Nodes int
	Out   map[int][]int
}

// PageRank returns the reference ranks after the given number of
// iterations with the given damping factor.
func (g *GraphTruth) PageRank(iterations int, damping float64) map[int]float64 {
	n := float64(g.Nodes)
	ranks := make(map[int]float64, g.Nodes)
	for v := 0; v < g.Nodes; v++ {
		ranks[v] = 1.0 / n
	}
	for it := 0; it < iterations; it++ {
		contrib := make(map[int]float64, g.Nodes)
		for v := 0; v < g.Nodes; v++ {
			outs := g.Out[v]
			share := ranks[v] / float64(len(outs))
			for _, w := range outs {
				contrib[w] += share
			}
		}
		next := make(map[int]float64, g.Nodes)
		for v := 0; v < g.Nodes; v++ {
			next[v] = (1-damping)/n + damping*contrib[v]
		}
		ranks = next
	}
	return ranks
}

// Graph writes a web graph in the PageRank job's line format
// ("node<TAB>rank<TAB>neighbor,neighbor,...") with uniform initial ranks.
// Every node has at least one out-edge (no dangling mass). In-degree is
// Zipf-skewed so a clear rank ordering emerges.
func Graph(fs vfs.FileSystem, path string, opts GraphOpts) (*GraphTruth, int64, error) {
	if opts.Nodes <= 0 {
		opts.Nodes = 100
	}
	if opts.AvgEdges <= 0 {
		opts.AvgEdges = 4
	}
	rng := sim.NewRand(opts.Seed).Derive("graph")
	zipf := rng.Zipf(1.2, uint64(opts.Nodes))
	truth := &GraphTruth{Nodes: opts.Nodes, Out: map[int][]int{}}
	for v := 0; v < opts.Nodes; v++ {
		k := 1 + rng.Intn(2*opts.AvgEdges-1)
		seen := map[int]bool{v: true}
		for len(seen)-1 < k && len(seen) < opts.Nodes {
			w := int(zipf.Uint64())
			if !seen[w] {
				seen[w] = true
				truth.Out[v] = append(truth.Out[v], w)
			}
		}
		sort.Ints(truth.Out[v])
	}
	init := 1.0 / float64(opts.Nodes)
	n, err := writeLines(fs, path, func(w *bufio.Writer) error {
		for v := 0; v < opts.Nodes; v++ {
			nbrs := make([]string, len(truth.Out[v]))
			for i, x := range truth.Out[v] {
				nbrs[i] = fmt.Sprintf("%d", x)
			}
			if _, err := fmt.Fprintf(w, "%d\t%.17g\t%s\n", v, init, strings.Join(nbrs, ",")); err != nil {
				return err
			}
		}
		return nil
	})
	return truth, n, err
}

package datagen

import (
	"bufio"
	"fmt"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// SortableOpts sizes the TeraSort-style record generator.
type SortableOpts struct {
	Rows int
	Seed int64
}

// Sortable writes TeraGen-style records ("10-hex-char-key<TAB>payload"),
// uniformly random keys with duplicates possible, and returns the row
// count written.
func Sortable(fs vfs.FileSystem, path string, opts SortableOpts) (int, int64, error) {
	if opts.Rows <= 0 {
		opts.Rows = 10000
	}
	rng := sim.NewRand(opts.Seed).Derive("sortable")
	n, err := writeLines(fs, path, func(w *bufio.Writer) error {
		for i := 0; i < opts.Rows; i++ {
			if _, err := fmt.Fprintf(w, "%010x\t%032x%032x\n",
				rng.Int63n(1<<40), rng.Uint64(), rng.Uint64()); err != nil {
				return err
			}
		}
		return nil
	})
	return opts.Rows, n, err
}

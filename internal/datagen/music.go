package datagen

import (
	"bufio"
	"fmt"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// MusicOpts sizes the Yahoo! Music generator.
type MusicOpts struct {
	Songs   int
	Albums  int
	Users   int
	Ratings int
	Seed    int64
}

// MusicTruth is the ground truth for the second assignment: the album
// with the highest average rating.
type MusicTruth struct {
	SongAlbum  map[int]int
	AlbumSum   map[int]float64
	AlbumCount map[int]int64
	BestAlbum  int
	BestAvg    float64
}

// AlbumAvg returns the true mean rating of an album.
func (t *MusicTruth) AlbumAvg(a int) float64 {
	if t.AlbumCount[a] == 0 {
		return 0
	}
	return t.AlbumSum[a] / float64(t.AlbumCount[a])
}

// Music writes songs.tsv ("SongID<TAB>AlbumID<TAB>ArtistID") — the side
// join table — and ratings.tsv ("UserID<TAB>SongID<TAB>Rating", ratings
// 0–100 as in the Yahoo! Music Webscope data) and returns the truth.
func Music(fs vfs.FileSystem, dir string, opts MusicOpts) (*MusicTruth, int64, error) {
	if opts.Songs <= 0 {
		opts.Songs = 500
	}
	if opts.Albums <= 0 {
		opts.Albums = 60
	}
	if opts.Users <= 0 {
		opts.Users = 400
	}
	if opts.Ratings <= 0 {
		opts.Ratings = 20000
	}
	rng := sim.NewRand(opts.Seed).Derive("music")
	truth := &MusicTruth{
		SongAlbum:  map[int]int{},
		AlbumSum:   map[int]float64{},
		AlbumCount: map[int]int64{},
	}
	// Album quality: each album has a latent mean rating.
	quality := make([]float64, opts.Albums+1)
	for a := 1; a <= opts.Albums; a++ {
		quality[a] = 30 + rng.Float64()*55 // 30..85
	}
	for s := 1; s <= opts.Songs; s++ {
		truth.SongAlbum[s] = 1 + rng.Intn(opts.Albums)
	}
	nSongs, err := writeLines(fs, vfs.Join(dir, "songs.tsv"), func(w *bufio.Writer) error {
		for s := 1; s <= opts.Songs; s++ {
			artist := 1 + truth.SongAlbum[s]%97
			if _, err := fmt.Fprintf(w, "%d\t%d\t%d\n", s, truth.SongAlbum[s], artist); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, nSongs, err
	}
	songZipf := rng.Zipf(1.1, uint64(opts.Songs))
	nRatings, err := writeLines(fs, vfs.Join(dir, "ratings.tsv"), func(w *bufio.Writer) error {
		for i := 0; i < opts.Ratings; i++ {
			u := 1 + rng.Intn(opts.Users)
			s := int(songZipf.Uint64()) + 1
			album := truth.SongAlbum[s]
			r := int(rng.Normal(quality[album], 15))
			if r < 0 {
				r = 0
			}
			if r > 100 {
				r = 100
			}
			if _, err := fmt.Fprintf(w, "%d\t%d\t%d\n", u, s, r); err != nil {
				return err
			}
			truth.AlbumSum[album] += float64(r)
			truth.AlbumCount[album]++
		}
		return nil
	})
	if err != nil {
		return nil, nSongs + nRatings, err
	}
	for a := 1; a <= opts.Albums; a++ {
		if truth.AlbumCount[a] == 0 {
			continue
		}
		avg := truth.AlbumAvg(a)
		if avg > truth.BestAvg {
			truth.BestAlbum, truth.BestAvg = a, avg
		}
	}
	return truth, nSongs + nRatings, nil
}

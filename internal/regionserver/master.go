package regionserver

import (
	"fmt"
	"sort"

	"repro/internal/history"
	"repro/internal/kvstore"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// META log event types. The log is the serving tier's determinism
// fingerprint: two runs from the same seed produce byte-identical logs.
const (
	EvRegionCreate   = "region.create"
	EvRegionAssign   = "region.assign"
	EvRegionSplit    = "region.split"
	EvRegionMerge    = "region.merge"
	EvRegionReassign = "region.reassign"
	EvServerDead     = "server.dead"
	EvServerJoin     = "server.join"
	EvMergeFail      = "region.merge_fail"
)

// Master owns META — the authoritative (table, rowkey) → region → server
// map — and the region lifecycle: create, assign, split hot regions,
// merge cold ones, and reassign everything a dead server was hosting.
type Master struct {
	eng  *sim.Engine
	fs   vfs.FileSystem
	cost CostModel
	opts Options
	m    *metrics

	servers []*Server // stable name order
	byName  map[string]*Server

	meta       map[string][]RegionInfo // per table, sorted by Start
	metaLog    *history.Log
	nextRegion int
	nextEpoch  int

	lastBeat map[string]sim.Time
	dead     map[string]bool
	ticker   *sim.Ticker

	recoverStart, recoverEnd sim.Time
	recovered                int
}

// newMaster wires the master over an existing server set.
func newMaster(eng *sim.Engine, fs vfs.FileSystem, servers []*Server, opts Options, m *metrics) *Master {
	ma := &Master{
		eng:      eng,
		fs:       fs,
		cost:     *opts.Cost,
		opts:     opts,
		m:        m,
		servers:  servers,
		byName:   map[string]*Server{},
		meta:     map[string][]RegionInfo{},
		metaLog:  history.NewLog(m.reg.Counter(MetricMetaEvents)),
		lastBeat: map[string]sim.Time{},
		dead:     map[string]bool{},
	}
	for _, s := range servers {
		ma.byName[s.name] = s
		ma.lastBeat[s.name] = eng.Now()
		s.askSplit = ma.requestSplit
		s.splitMaxBytes = opts.SplitMaxBytes
		s.splitMaxOps = opts.SplitMaxOps
	}
	ma.ticker = eng.Every(opts.HeartbeatInterval, ma.tick)
	return ma
}

// Stop cancels the heartbeat ticker (tests and benches that reuse an
// engine after the cluster is done).
func (ma *Master) Stop() { ma.ticker.Stop() }

func (ma *Master) logEvent(typ string, attrs map[string]string) {
	ma.metaLog.Append(ma.eng.Now(), typ, attrs)
}

// MetaLogBytes marshals the META log — the byte-comparable determinism
// artifact.
func (ma *Master) MetaLogBytes() ([]byte, error) { return ma.metaLog.Bytes() }

// MetaLogLen returns the number of META events so far.
func (ma *Master) MetaLogLen() int { return ma.metaLog.Len() }

// Tables returns the sorted table names.
func (ma *Master) Tables() []string {
	names := make([]string, 0, len(ma.meta))
	for name := range ma.meta {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Regions returns a copy of the table's sorted region list (what a
// client caches on a META refresh).
func (ma *Master) Regions(table string) ([]RegionInfo, error) {
	regions, ok := ma.meta[table]
	if !ok {
		return nil, ErrNoTable
	}
	return append([]RegionInfo(nil), regions...), nil
}

// Server returns the named region server (nil if unknown).
func (ma *Master) Server(name string) *Server { return ma.byName[name] }

// Servers returns the region servers in stable name order.
func (ma *Master) Servers() []*Server { return append([]*Server(nil), ma.servers...) }

// aliveServers returns the live servers in stable name order.
func (ma *Master) aliveServers() []*Server {
	var out []*Server
	for _, s := range ma.servers {
		if s.alive {
			out = append(out, s)
		}
	}
	return out
}

// leastLoaded picks the live server hosting the fewest regions (name
// order breaks ties) — the assignment heuristic for daughters and
// recovered regions. exclude may be nil.
func (ma *Master) leastLoaded(exclude *Server) *Server {
	var best *Server
	for _, s := range ma.aliveServers() {
		if s == exclude {
			continue
		}
		if best == nil || s.RegionCount() < best.RegionCount() {
			best = s
		}
	}
	if best == nil && exclude != nil && exclude.alive {
		return exclude
	}
	return best
}

// newRegionInfo mints a region with a fresh ID and epoch.
func (ma *Master) newRegionInfo(table, start, end string) RegionInfo {
	id := fmt.Sprintf("r%04d", ma.nextRegion)
	ma.nextRegion++
	ma.nextEpoch++
	return RegionInfo{
		ID:    id,
		Table: table,
		Start: start,
		End:   end,
		Epoch: ma.nextEpoch,
		Path:  regionPath(table, id),
	}
}

// CreateTable creates a table pre-split at the given keys (sorted,
// deduplicated; empty means one region spanning everything) and assigns
// the regions round-robin over the live servers.
func (ma *Master) CreateTable(table string, splitKeys []string) error {
	if _, ok := ma.meta[table]; ok {
		return fmt.Errorf("regionserver: table %q exists", table)
	}
	alive := ma.aliveServers()
	if len(alive) == 0 {
		return ErrNoLiveServer
	}
	keys := append([]string(nil), splitKeys...)
	sort.Strings(keys)
	keys = compactKeys(keys)
	bounds := append([]string{""}, keys...)
	var regions []RegionInfo
	for i, start := range bounds {
		end := ""
		if i+1 < len(bounds) {
			end = bounds[i+1]
		}
		info := ma.newRegionInfo(table, start, end)
		srv := alive[i%len(alive)]
		info.Srv = srv.name
		if _, err := srv.openRegion(info); err != nil {
			return err
		}
		regions = append(regions, info)
		ma.logEvent(EvRegionCreate, map[string]string{
			"region": info.ID, "table": table, "range": info.RangeString(),
		})
		ma.logEvent(EvRegionAssign, map[string]string{
			"region": info.ID, "server": srv.name, "epoch": fmt.Sprint(info.Epoch),
		})
	}
	ma.meta[table] = regions
	return nil
}

func compactKeys(sorted []string) []string {
	var out []string
	for _, k := range sorted {
		if k == "" || (len(out) > 0 && out[len(out)-1] == k) {
			continue
		}
		out = append(out, k)
	}
	return out
}

// BulkLoadTable loads sorted rows straight into the regions' store
// files, bypassing WAL and MemStore — the setup path experiments use to
// install the initial dataset without burning virtual time.
func (ma *Master) BulkLoadTable(table string, kvs []kvstore.KV) error {
	regions, ok := ma.meta[table]
	if !ok {
		return ErrNoTable
	}
	sorted := append([]kvstore.KV(nil), kvs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	for _, info := range regions {
		lo := sort.Search(len(sorted), func(i int) bool { return sorted[i].Key >= info.Start })
		hi := len(sorted)
		if info.End != "" {
			hi = sort.Search(len(sorted), func(i int) bool { return sorted[i].Key >= info.End })
		}
		if lo >= hi {
			continue
		}
		srv := ma.byName[info.Srv]
		hr := srv.regions[info.ID]
		if hr == nil {
			return fmt.Errorf("regionserver: %s not open on %s", info.ID, info.Srv)
		}
		if err := hr.tbl.BulkLoad(sorted[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

// updateMeta replaces the META rows for the given region IDs with the
// replacement set (which may be empty — a merge removes rows).
func (ma *Master) updateMeta(table string, removeIDs []string, add []RegionInfo) {
	regions := ma.meta[table]
	var next []RegionInfo
	for _, r := range regions {
		removed := false
		for _, id := range removeIDs {
			if r.ID == id {
				removed = true
				break
			}
		}
		if !removed {
			next = append(next, r)
		}
	}
	next = append(next, add...)
	sortRegions(next)
	ma.meta[table] = next
}

// findRegion locates a region row by ID across all tables.
func (ma *Master) findRegion(regionID string) (RegionInfo, bool) {
	for _, table := range ma.Tables() {
		for _, r := range ma.meta[table] {
			if r.ID == regionID {
				return r, true
			}
		}
	}
	return RegionInfo{}, false
}

// requestSplit is the hot-region hook servers fire (deferred through the
// engine) when a region crosses the size/ops thresholds.
func (ma *Master) requestSplit(regionID string) {
	info, ok := ma.findRegion(regionID)
	if !ok {
		return // already split or merged away
	}
	srv := ma.byName[info.Srv]
	if srv == nil || !srv.alive {
		return // crash recovery owns this region now
	}
	hr := srv.regions[info.ID]
	if hr == nil || hr.info.Epoch != info.Epoch {
		return
	}
	if err := ma.splitRegion(info, srv, hr); err != nil {
		// Unsplittable (single hot key, midkey at a bound): re-arm the
		// trigger so growth can ask again later.
		hr.ops = 0
		hr.splitAsked = false
	}
}

// splitRegion divides a region at its data midpoint: flush the parent,
// bulk-copy each half into a fresh daughter region, keep the low
// daughter local, hand the high daughter to the least-loaded server, and
// drop the parent. Clients holding the parent's location get
// ErrNotServing and refresh.
func (ma *Master) splitRegion(info RegionInfo, srv *Server, hr *hostedRegion) error {
	mid, err := hr.tbl.MidKey()
	if err != nil {
		return err
	}
	if mid == "" || mid <= info.Start || (info.End != "" && mid >= info.End) {
		return fmt.Errorf("regionserver: %s has no usable midkey", info.ID)
	}
	if err := hr.tbl.Flush(); err != nil {
		return err
	}
	parentBytes := hr.tbl.SizeBytes()
	low := ma.newRegionInfo(info.Table, info.Start, mid)
	high := ma.newRegionInfo(info.Table, mid, info.End)
	target := ma.leastLoaded(nil)
	if target == nil {
		return ErrNoLiveServer
	}
	low.Srv = srv.name
	high.Srv = target.name
	if err := ma.copyRange(hr.tbl, low, srv); err != nil {
		return err
	}
	if err := ma.copyRange(hr.tbl, high, target); err != nil {
		return err
	}
	srv.closeRegion(info.ID)
	if err := ma.fs.Remove(info.Path, true); err != nil {
		return err
	}
	ma.updateMeta(info.Table, []string{info.ID}, []RegionInfo{low, high})

	// Virtual-time cost: the parent server does the full split, the
	// daughter target absorbs its half.
	now := ma.eng.Now()
	cost := ma.cost.SplitBase + sim.Time(parentBytes/1024)*ma.cost.SplitPerKB
	done := srv.occupy(now, cost)
	if target != srv {
		target.occupy(now, cost/2)
	}
	ma.m.splits.Inc()
	ma.m.reg.SpanCtx(ma.m.reg.NewTrace(now), SpanSplit, now, done, map[string]string{
		"region": info.ID, "mid": mid, "low": low.ID, "high": high.ID,
	})
	ma.logEvent(EvRegionSplit, map[string]string{
		"region": info.ID, "mid": mid, "low": low.ID, "high": high.ID,
	})
	ma.logEvent(EvRegionAssign, map[string]string{
		"region": low.ID, "server": low.Srv, "epoch": fmt.Sprint(low.Epoch),
	})
	ma.logEvent(EvRegionAssign, map[string]string{
		"region": high.ID, "server": high.Srv, "epoch": fmt.Sprint(high.Epoch),
	})
	return nil
}

// copyRange streams the daughter's half of the parent table into a
// fresh region on dst, in bounded chunks (the resumable-scan satellite
// at work: no whole-range materialization).
func (ma *Master) copyRange(parent *kvstore.Table, daughter RegionInfo, dst *Server) error {
	tbl, err := kvstore.Open(ma.fs, daughter.Path, dst.kv)
	if err != nil {
		return err
	}
	cursor := daughter.Start
	for {
		kvs, next, err := parent.ScanRange(cursor, daughter.End, 256)
		if err != nil {
			return err
		}
		if len(kvs) > 0 {
			if err := tbl.BulkLoad(kvs); err != nil {
				return err
			}
		}
		if next == "" {
			break
		}
		cursor = next
	}
	dst.regions[daughter.ID] = &hostedRegion{info: daughter, tbl: tbl}
	return nil
}

// MergeAdjacent merges the first adjacent cold pair of the table —
// both sides under MergeMaxOps ops in the current window and combined
// size under maxBytes — into one region on the low side's server.
// Returns whether a merge happened.
func (ma *Master) MergeAdjacent(table string, maxBytes int64) (bool, error) {
	regions, ok := ma.meta[table]
	if !ok {
		return false, ErrNoTable
	}
	for i := 0; i+1 < len(regions); i++ {
		a, b := regions[i], regions[i+1]
		sa, sb := ma.byName[a.Srv], ma.byName[b.Srv]
		if sa == nil || sb == nil || !sa.alive || !sb.alive {
			continue
		}
		ha, hb := sa.regions[a.ID], sb.regions[b.ID]
		if ha == nil || hb == nil {
			continue
		}
		if ha.ops >= ma.opts.MergeMaxOps || hb.ops >= ma.opts.MergeMaxOps {
			continue
		}
		if ha.tbl.SizeBytes()+hb.tbl.SizeBytes() > maxBytes {
			continue
		}
		return true, ma.mergeRegions(a, b, sa, sb, ha, hb)
	}
	return false, nil
}

func (ma *Master) mergeRegions(a, b RegionInfo, sa, sb *Server, ha, hb *hostedRegion) error {
	merged := ma.newRegionInfo(a.Table, a.Start, b.End)
	merged.Srv = sa.name
	if err := ha.tbl.Flush(); err != nil {
		return err
	}
	if err := hb.tbl.Flush(); err != nil {
		return err
	}
	if err := ma.copyRange(ha.tbl, mergedHalf(merged, a.Start, a.End), sa); err != nil {
		return err
	}
	// copyRange installed the region; stream the second half into the
	// same table.
	tbl := sa.regions[merged.ID].tbl
	cursor := b.Start
	for {
		kvs, next, err := hb.tbl.ScanRange(cursor, b.End, 256)
		if err != nil {
			return err
		}
		if len(kvs) > 0 {
			if err := tbl.BulkLoad(kvs); err != nil {
				return err
			}
		}
		if next == "" {
			break
		}
		cursor = next
	}
	// copyRange installed the clamped low half; restore the full range.
	sa.regions[merged.ID].info = merged
	sa.closeRegion(a.ID)
	sb.closeRegion(b.ID)
	if err := ma.fs.Remove(a.Path, true); err != nil {
		return err
	}
	if err := ma.fs.Remove(b.Path, true); err != nil {
		return err
	}
	ma.updateMeta(a.Table, []string{a.ID, b.ID}, []RegionInfo{merged})
	ma.m.merges.Inc()
	ma.logEvent(EvRegionMerge, map[string]string{
		"low": a.ID, "high": b.ID, "merged": merged.ID,
	})
	ma.logEvent(EvRegionAssign, map[string]string{
		"region": merged.ID, "server": merged.Srv, "epoch": fmt.Sprint(merged.Epoch),
	})
	return nil
}

// mergedHalf clamps the merged region info to the low parent's range so
// copyRange streams only that half (the second half is streamed after).
func mergedHalf(merged RegionInfo, start, end string) RegionInfo {
	merged.Start = start
	merged.End = end
	return merged
}

// tick is the master's heartbeat pass: live servers refresh their beat,
// silent servers past the expiry are declared dead and their regions
// reassigned, restarted servers rejoin, and (when enabled) one cold
// adjacent pair per table merges.
func (ma *Master) tick() {
	now := ma.eng.Now()
	for _, s := range ma.servers {
		switch {
		case s.alive && ma.dead[s.name]:
			ma.dead[s.name] = false
			ma.lastBeat[s.name] = now
			ma.logEvent(EvServerJoin, map[string]string{"server": s.name})
		case s.alive:
			ma.lastBeat[s.name] = now
		case !ma.dead[s.name] && now-ma.lastBeat[s.name] >= ma.opts.HeartbeatExpiry:
			ma.declareDead(s)
		}
	}
	if ma.opts.MergeMaxBytes > 0 {
		for _, table := range ma.Tables() {
			// A merge flushes both source regions to store files; if that
			// commit fails the merge is abandoned, which is safe, but the
			// failure must land in the event log rather than vanish.
			if _, err := ma.MergeAdjacent(table, ma.opts.MergeMaxBytes); err != nil {
				ma.logEvent(EvMergeFail, map[string]string{"table": table, "error": err.Error()})
			}
		}
	}
}

// declareDead reassigns every region the dead server was hosting to the
// least-loaded survivors. Each new owner reopens the region's kvstore —
// a real WAL replay off the shared filesystem — and is charged
// replay-proportional virtual time.
func (ma *Master) declareDead(s *Server) {
	now := ma.eng.Now()
	ma.dead[s.name] = true
	ma.recoverStart = now
	ma.recoverEnd = now
	ma.logEvent(EvServerDead, map[string]string{"server": s.name})
	for _, table := range ma.Tables() {
		regions := append([]RegionInfo(nil), ma.meta[table]...)
		for _, info := range regions {
			if info.Srv != s.name {
				continue
			}
			target := ma.leastLoaded(nil)
			if target == nil {
				continue // nobody left; regions stay dark until a restart
			}
			ma.nextEpoch++
			next := info
			next.Srv = target.name
			next.Epoch = ma.nextEpoch
			replayed, err := target.openRegion(next)
			if err != nil {
				continue
			}
			done := target.occupy(now, ma.cost.ReplayBase+sim.Time(replayed)*ma.cost.ReplayPerOp)
			if done > ma.recoverEnd {
				ma.recoverEnd = done
			}
			ma.updateMeta(table, []string{info.ID}, []RegionInfo{next})
			ma.recovered++
			ma.m.reassigns.Inc()
			ma.m.reg.SpanCtx(ma.m.reg.NewTrace(now), SpanRecover, now, done, map[string]string{
				"region": info.ID, "from": s.name, "to": target.name,
				"replayed": fmt.Sprint(replayed),
			})
			ma.logEvent(EvRegionReassign, map[string]string{
				"region": info.ID, "from": s.name, "to": target.name,
				"epoch": fmt.Sprint(next.Epoch), "replayed": fmt.Sprint(replayed),
			})
		}
	}
}

// LastRecovery reports the most recent crash-recovery window (declare
// dead → last region replayed) and the total regions recovered so far.
func (ma *Master) LastRecovery() (start, end sim.Time, regions int) {
	return ma.recoverStart, ma.recoverEnd, ma.recovered
}

// ResetLoadWindows zeroes every hosted region's op window (the merge
// coldness signal); callers running phased workloads use it between
// phases.
func (ma *Master) ResetLoadWindows() {
	for _, s := range ma.servers {
		for _, id := range s.regionIDs() {
			s.regions[id].ops = 0
		}
	}
}

// CheckMeta verifies every table's regions tile the key space with no
// gaps or overlaps — the serving tier's fsck.
func (ma *Master) CheckMeta() error {
	for _, table := range ma.Tables() {
		if err := checkContiguous(ma.meta[table]); err != nil {
			return fmt.Errorf("table %s: %w", table, err)
		}
	}
	return nil
}

package regionserver

import (
	"container/list"
	"fmt"
	"hash/fnv"

	"repro/internal/obs"
	"repro/internal/sim"
)

// CacheTier is the front-line cache: N independent shards, keys routed
// by hash, each shard an LRU with its own service queue and hit/miss
// counters. Clients read through it (miss → region server → fill) and
// invalidate on write, so a single shared tier stays coherent. It caches
// presence only — a read miss for an absent row still hits the server
// (no negative caching).
type CacheTier struct {
	shards []*cacheShard
	cost   CostModel
	m      *metrics
}

type cacheEntry struct {
	key string
	val []byte
}

type cacheShard struct {
	busyUntil sim.Time
	capacity  int
	items     map[string]*list.Element
	lru       *list.List // front = most recently used
	hits      *obs.Counter
	misses    *obs.Counter
}

// NewCacheTier builds a tier of `shards` LRU shards holding up to
// `capacity` entries each. Per-shard hit/miss counters are published as
// serving.cache.sNN.{hits,misses} alongside the aggregate counters.
func NewCacheTier(reg *obs.Registry, cost CostModel, shards, capacity int, m *metrics) *CacheTier {
	if shards <= 0 {
		shards = 16
	}
	if capacity <= 0 {
		capacity = 128
	}
	ct := &CacheTier{cost: cost, m: m}
	for i := 0; i < shards; i++ {
		ct.shards = append(ct.shards, &cacheShard{
			capacity: capacity,
			items:    map[string]*list.Element{},
			lru:      list.New(),
			hits:     reg.Counter(fmt.Sprintf("serving.cache.s%02d.hits", i)),
			misses:   reg.Counter(fmt.Sprintf("serving.cache.s%02d.misses", i)),
		})
	}
	return ct
}

// Shards returns the shard count.
func (ct *CacheTier) Shards() int { return len(ct.shards) }

// shardOf routes a key to its shard by FNV-32 hash.
func (ct *CacheTier) shardOf(table, key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(table))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return ct.shards[int(h.Sum32())%len(ct.shards)]
}

func (sh *cacheShard) occupy(at, service sim.Time) sim.Time {
	start := at
	if sh.busyUntil > start {
		start = sh.busyUntil
	}
	done := start + service
	sh.busyUntil = done
	return done
}

// Get probes the key's shard. On a hit the value and completion time
// come back with ok=true; a miss only charges the probe.
func (ct *CacheTier) Get(at sim.Time, table, key string) ([]byte, bool, sim.Time) {
	sh := ct.shardOf(table, key)
	done := sh.occupy(at, ct.cost.CacheOp)
	el, ok := sh.items[cacheKey(table, key)]
	if !ok {
		sh.misses.Inc()
		ct.m.cacheMisses.Inc()
		return nil, false, done
	}
	sh.hits.Inc()
	ct.m.cacheHits.Inc()
	sh.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true, done
}

// Fill installs a value after a read-through miss, evicting the shard's
// LRU tail when full.
func (ct *CacheTier) Fill(at sim.Time, table, key string, val []byte) sim.Time {
	sh := ct.shardOf(table, key)
	done := sh.occupy(at, ct.cost.CacheOp)
	ck := cacheKey(table, key)
	if el, ok := sh.items[ck]; ok {
		el.Value.(*cacheEntry).val = val
		sh.lru.MoveToFront(el)
		return done
	}
	if sh.lru.Len() >= sh.capacity {
		tail := sh.lru.Back()
		sh.lru.Remove(tail)
		delete(sh.items, tail.Value.(*cacheEntry).key)
		ct.m.cacheEvict.Inc()
	}
	sh.items[ck] = sh.lru.PushFront(&cacheEntry{key: ck, val: val})
	return done
}

// Invalidate drops the key after a write (write-invalidate coherence:
// the next read re-fills from the region server).
func (ct *CacheTier) Invalidate(at sim.Time, table, key string) sim.Time {
	sh := ct.shardOf(table, key)
	done := sh.occupy(at, ct.cost.CacheOp)
	ck := cacheKey(table, key)
	if el, ok := sh.items[ck]; ok {
		sh.lru.Remove(el)
		delete(sh.items, ck)
		ct.m.cacheInval.Inc()
	}
	return done
}

// Len returns the total cached entries across shards.
func (ct *CacheTier) Len() int {
	n := 0
	for _, sh := range ct.shards {
		n += sh.lru.Len()
	}
	return n
}

func cacheKey(table, key string) string { return table + "\x00" + key }

// Package regionserver is the online-serving tier: a range-partitioned
// key-value service over internal/kvstore, in the shape of HBase on the
// paper's teaching cluster. A table is split into regions — contiguous
// row-key ranges, each backed by one kvstore Table persisted through vfs
// — and regions are spread across RegionServers. A master process keeps
// the META map (table, rowkey) → region → server, detects dead servers
// by missed heartbeats, reassigns their regions (the new owner replays
// the region's WAL), auto-splits hot regions, and merges cold adjacent
// ones. Clients cache region locations and retry through moves; an
// optional shard-by-key-hash cache tier absorbs read traffic before it
// reaches the servers.
//
// Everything runs on the deterministic sim clock: server work is modeled
// by a per-server busy-until horizon (ops queue behind each other), and
// every decision draws from seeded randomness only — the same seed
// yields a byte-identical META log. See docs/SERVING.md.
package regionserver

import (
	"errors"
	"time"

	"repro/internal/kvstore"
	"repro/internal/obs"
)

// Sentinel errors the client retry loop distinguishes.
var (
	// ErrNotServing: the contacted server does not host that region (it
	// moved or split). The client refreshes META and retries.
	ErrNotServing = errors.New("regionserver: region not serving on this server")
	// ErrServerDown: the contacted server is crashed. The client backs
	// off and retries; the master will reassign the region.
	ErrServerDown = errors.New("regionserver: server down")
	// ErrNoTable: the table does not exist in META.
	ErrNoTable = errors.New("regionserver: no such table")
	// ErrNoLiveServer: every region server is dead.
	ErrNoLiveServer = errors.New("regionserver: no live region server")
)

// Metric names published into internal/obs.
const (
	MetricGets        = "serving.gets"
	MetricPuts        = "serving.puts"
	MetricDeletes     = "serving.deletes"
	MetricScans       = "serving.scans"
	MetricNotServing  = "serving.not_serving"
	MetricServerDown  = "serving.server_down"
	MetricSplits      = "serving.splits"
	MetricMerges      = "serving.merges"
	MetricReassigns   = "serving.reassigns"
	MetricMetaRefresh = "serving.meta_refreshes"
	MetricRetries     = "serving.client_retries"
	MetricMetaEvents  = "serving.meta_events"
	MetricCacheHits   = "serving.cache.hits"
	MetricCacheMisses = "serving.cache.misses"
	MetricCacheInval  = "serving.cache.invalidations"
	MetricCacheEvict  = "serving.cache.evictions"

	// HistOpLatency is the histogram of end-to-end client op latencies.
	HistOpLatency = "serving.op_latency"

	// Span names recorded on splits and crash recoveries, plus the
	// sampled client request path (request → cache lookup → region call).
	SpanSplit       = "serving.split"
	SpanRecover     = "serving.recover"
	SpanRequest     = "serving.request"
	SpanCacheLookup = "serving.cache_lookup"
	SpanRegionCall  = "serving.region_call"
)

// CostModel holds the virtual-time charges for the serving data path.
// The absolute values are teaching-cluster scale (sub-millisecond RPCs,
// millisecond writes); what matters is their ratios — cache ops an order
// of magnitude cheaper than server reads, writes costlier than reads,
// splits and WAL replay visibly expensive.
type CostModel struct {
	RTT         time.Duration // client <-> server network round trip
	MetaLookup  time.Duration // master META lookup service time
	CacheOp     time.Duration // cache shard hit / fill / invalidate
	ServerRead  time.Duration // region server point-read service time
	ServerWrite time.Duration // region server put/delete service time
	ScanBase    time.Duration // region server scan setup
	ScanPerRow  time.Duration // per returned row
	SplitBase   time.Duration // region split fixed cost
	SplitPerKB  time.Duration // per KiB moved into daughters
	ReplayBase  time.Duration // WAL replay fixed cost on reassignment
	ReplayPerOp time.Duration // per replayed WAL record
}

// DefaultCosts returns the standard teaching-cluster cost model.
func DefaultCosts() CostModel {
	return CostModel{
		RTT:         200 * time.Microsecond,
		MetaLookup:  300 * time.Microsecond,
		CacheOp:     60 * time.Microsecond,
		ServerRead:  600 * time.Microsecond,
		ServerWrite: 1 * time.Millisecond,
		ScanBase:    1 * time.Millisecond,
		ScanPerRow:  20 * time.Microsecond,
		SplitBase:   40 * time.Millisecond,
		SplitPerKB:  100 * time.Microsecond,
		ReplayBase:  20 * time.Millisecond,
		ReplayPerOp: 30 * time.Microsecond,
	}
}

// Options configures a serving cluster.
type Options struct {
	// Servers is the number of region servers (default 4). Server i runs
	// on cluster node i+1 (node 0 is the master/gateway) unless Nodes
	// overrides the placement.
	Servers int
	// Cost overrides the virtual-time cost model.
	Cost *CostModel
	// Obs receives metrics and spans; nil disables (handles are nil-safe).
	Obs *obs.Registry
	// KV tunes each region's kvstore (flush threshold, WAL segments, ...).
	// KV.Obs is overridden with Obs so kv.* metrics land in one registry.
	KV kvstore.Config
	// SplitMaxBytes splits a region when its on-disk+memstore size
	// crosses this (default 256 KiB).
	SplitMaxBytes int64
	// SplitMaxOps splits a region when it has absorbed this many ops
	// since its last split check window (default 4000) — the hot-region
	// trigger even when data fits.
	SplitMaxOps int
	// MergeMaxBytes merges two adjacent regions when both are colder
	// than MergeMaxOps and their combined size is below this. 0 disables
	// auto-merge (the default; Master.MergeAdjacent is always available).
	MergeMaxBytes int64
	// MergeMaxOps is the per-window op count under which a region counts
	// as cold (default 16, only meaningful with MergeMaxBytes > 0).
	MergeMaxOps int
	// HeartbeatInterval is the server heartbeat period (default 500ms);
	// HeartbeatExpiry the silence after which the master declares a
	// server dead and reassigns its regions (default 2s).
	HeartbeatInterval time.Duration
	HeartbeatExpiry   time.Duration
}

func (o *Options) defaults() {
	if o.Servers <= 0 {
		o.Servers = 4
	}
	if o.SplitMaxBytes <= 0 {
		o.SplitMaxBytes = 256 << 10
	}
	if o.SplitMaxOps <= 0 {
		o.SplitMaxOps = 4000
	}
	if o.MergeMaxOps <= 0 {
		o.MergeMaxOps = 16
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 500 * time.Millisecond
	}
	if o.HeartbeatExpiry <= 0 {
		o.HeartbeatExpiry = 2 * time.Second
	}
}

package regionserver

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/history"
	"repro/internal/kvstore"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/vfs"
)

func newTestCluster(t *testing.T, servers int, opts Options) (*Cluster, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	fs := vfs.NewMemFS()
	topo := cluster.NewTopology(cluster.PaperNodeConfig(servers+1, 1))
	opts.Servers = servers
	if opts.Obs == nil {
		opts.Obs = obs.NewRegistry()
	}
	c, err := New(eng, fs, topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c, eng
}

func TestServeBasicOps(t *testing.T) {
	c, eng := newTestCluster(t, 4, Options{})
	if err := c.Master.CreateTable("t", []string{"g", "n", "t"}); err != nil {
		t.Fatal(err)
	}
	regions, _ := c.Master.Regions("t")
	if len(regions) != 4 {
		t.Fatalf("%d regions, want 4", len(regions))
	}
	if err := c.Master.CheckMeta(); err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient()
	now := eng.Now()
	for _, k := range []string{"alpha", "golf", "mike", "november", "zulu"} {
		done, err := cl.Put(now, "t", k, []byte("v-"+k))
		if err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
		now = done
	}
	v, now, err := cl.Get(now, "t", "november")
	if err != nil || string(v) != "v-november" {
		t.Fatalf("get november = %q, %v", v, err)
	}
	if _, _, err := cl.Get(now, "t", "missing"); !errors.Is(err, kvstore.ErrNotFound) {
		t.Fatalf("missing row: %v", err)
	}
	// Cross-region scan stitches all four regions.
	kvs, now, err := cl.Scan(now, "t", "", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 5 {
		t.Fatalf("scan returned %d rows, want 5", len(kvs))
	}
	for i := 1; i < len(kvs); i++ {
		if kvs[i-1].Key >= kvs[i].Key {
			t.Fatalf("scan out of order: %s >= %s", kvs[i-1].Key, kvs[i].Key)
		}
	}
	// Bounded scan honors the limit across region boundaries.
	kvs, _, err = cl.Scan(now, "t", "a", "", 3)
	if err != nil || len(kvs) != 3 {
		t.Fatalf("limited scan: %d rows, %v", len(kvs), err)
	}
	if done, err := cl.Delete(eng.Now(), "t", "alpha"); err != nil {
		t.Fatal(err)
	} else if _, _, err := cl.Get(done, "t", "alpha"); !errors.Is(err, kvstore.ErrNotFound) {
		t.Fatalf("deleted row: %v", err)
	}
}

func TestServerQueueingAddsLatency(t *testing.T) {
	c, eng := newTestCluster(t, 1, Options{})
	if err := c.Master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient()
	now := eng.Now()
	// Two reads arriving at the same instant: the second queues behind
	// the first on the single server.
	cl.Put(now, "t", "k", []byte("v"))
	_, d1, err := cl.Get(now, "t", "k")
	if err != nil {
		t.Fatal(err)
	}
	_, d2, err := cl.Get(now, "t", "k")
	if err != nil {
		t.Fatal(err)
	}
	if d2 <= d1 {
		t.Fatalf("no queueing: first done %v, second done %v", d1, d2)
	}
}

func TestHotRegionSplits(t *testing.T) {
	reg := obs.NewRegistry()
	c, eng := newTestCluster(t, 2, Options{
		Obs:           reg,
		SplitMaxOps:   1 << 30, // only the size trigger
		SplitMaxBytes: 4 << 10,
	})
	if err := c.Master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient()
	now := eng.Now()
	for i := 0; i < 200; i++ {
		done, err := cl.Put(now, "t", fmt.Sprintf("row%04d", i), bytes.Repeat([]byte("x"), 64))
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		now = done
		// Let the deferred split request fire between ops.
		eng.RunUntil(now)
	}
	if got := reg.CounterValue(MetricSplits); got == 0 {
		t.Fatal("no splits fired")
	}
	regions, _ := c.Master.Regions("t")
	if len(regions) < 2 {
		t.Fatalf("%d regions after splits", len(regions))
	}
	if err := c.Master.CheckMeta(); err != nil {
		t.Fatal(err)
	}
	// Both servers ended up hosting something.
	for _, s := range c.Master.Servers() {
		if s.RegionCount() == 0 {
			t.Fatalf("%s hosts nothing after splits", s.Name())
		}
	}
	// All rows still readable through the moves, stale locations healed
	// by the NotServing retry path.
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("row%04d", i)
		v, done, err := cl.Get(now, "t", k)
		if err != nil || len(v) != 64 {
			t.Fatalf("get %s after splits: %v", k, err)
		}
		now = done
	}
	// Scan sees every row exactly once across the new region map.
	kvs, _, err := cl.Scan(now, "t", "", "", 0)
	if err != nil || len(kvs) != 200 {
		t.Fatalf("scan after splits: %d rows, %v", len(kvs), err)
	}
}

func TestMergeAdjacentColdRegions(t *testing.T) {
	reg := obs.NewRegistry()
	c, eng := newTestCluster(t, 2, Options{Obs: reg})
	if err := c.Master.CreateTable("t", []string{"m"}); err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient()
	now := eng.Now()
	for _, k := range []string{"a", "b", "x", "y"} {
		done, err := cl.Put(now, "t", k, []byte("v"))
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	c.Master.ResetLoadWindows() // everything cold
	merged, err := c.Master.MergeAdjacent("t", 1<<20)
	if err != nil || !merged {
		t.Fatalf("merge: %v %v", merged, err)
	}
	regions, _ := c.Master.Regions("t")
	if len(regions) != 1 {
		t.Fatalf("%d regions after merge, want 1", len(regions))
	}
	if err := c.Master.CheckMeta(); err != nil {
		t.Fatal(err)
	}
	kvs, _, err := cl.Scan(now, "t", "", "", 0)
	if err != nil || len(kvs) != 4 {
		t.Fatalf("scan after merge: %d rows, %v", len(kvs), err)
	}
	if reg.CounterValue(MetricMerges) != 1 {
		t.Fatal("merge counter not bumped")
	}
}

func TestCrashRecoveryReassignsWithWALReplay(t *testing.T) {
	reg := obs.NewRegistry()
	c, eng := newTestCluster(t, 3, Options{Obs: reg})
	if err := c.Master.CreateTable("t", []string{"h", "p"}); err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient()
	now := eng.Now()
	model := map[string]string{}
	for i := 0; i < 60; i++ {
		k := fmt.Sprintf("key%02d", i)
		v := fmt.Sprintf("v%d", i)
		done, err := cl.Put(now, "t", k, []byte(v))
		if err != nil {
			t.Fatal(err)
		}
		model[k] = v
		now = done
	}
	// Kill the server hosting the written keys' region: its MemStores
	// die with it; the WALs survive on the shared filesystem.
	regions, _ := c.Master.Regions("t")
	hot, ok := locate(regions, "key00")
	if !ok {
		t.Fatal("no region for key00")
	}
	victim := c.Master.Server(hot.Srv)
	if !c.CrashServerOn(victim.Node()) {
		t.Fatal("crash did not land")
	}
	// Reads against the dead server fail until the master reassigns.
	if _, _, err := cl.Get(eng.Now(), "t", "key00"); !errors.Is(err, ErrServerDown) {
		t.Fatalf("read against dead server: %v", err)
	}
	eng.Advance(5 * time.Second) // heartbeat expiry + replay
	if reg.CounterValue(MetricReassigns) == 0 {
		t.Fatal("no reassignment happened")
	}
	regions, _ = c.Master.Regions("t")
	for _, r := range regions {
		if r.Srv == victim.Name() {
			t.Fatalf("region %s still on the dead server", r.ID)
		}
	}
	// Every acknowledged write is back, served by the new owners after
	// WAL replay.
	now = eng.Now()
	for i := 0; i < 60; i++ {
		k := fmt.Sprintf("key%02d", i)
		v, done, err := cl.Get(now, "t", k)
		if err != nil || string(v) != model[k] {
			t.Fatalf("after recovery, %s = %q, %v", k, v, err)
		}
		now = done
	}
	if reg.CounterValue(kvstore.MetricWALReplayed) == 0 {
		t.Fatal("recovery did not replay any WAL records")
	}
	start, end, n := c.Master.LastRecovery()
	if n == 0 || end <= start {
		t.Fatalf("recovery window not recorded: %v..%v n=%d", start, end, n)
	}
	// Restart: the server rejoins empty and the master logs it.
	if !c.RestartServerOn(victim.Node()) {
		t.Fatal("restart did not land")
	}
	eng.Advance(time.Second)
	found := false
	for _, ev := range mustEvents(t, c) {
		if ev.Type == EvServerJoin && ev.Attrs["server"] == victim.Name() {
			found = true
		}
	}
	if !found {
		t.Fatal("no server.join event after restart")
	}
}

func mustEvents(t *testing.T, c *Cluster) []history.Event {
	t.Helper()
	data, err := c.Master.MetaLogBytes()
	if err != nil {
		t.Fatal(err)
	}
	evs, err := history.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

func TestCacheTierHitsAndCoherence(t *testing.T) {
	reg := obs.NewRegistry()
	c, eng := newTestCluster(t, 2, Options{Obs: reg})
	if err := c.Master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	cl := c.NewCachedClient(4, 8)
	now := eng.Now()
	done, err := cl.Put(now, "t", "k", []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	// First read misses and fills; second hits.
	_, done, err = cl.Get(done, "t", "k")
	if err != nil {
		t.Fatal(err)
	}
	v, hitDone, err := cl.Get(done, "t", "k")
	if err != nil || string(v) != "v1" {
		t.Fatalf("cached read: %q %v", v, err)
	}
	if hitDone-done >= c.cost.ServerRead {
		t.Fatalf("cache hit took a server read: %v", hitDone-done)
	}
	if reg.CounterValue(MetricCacheHits) != 1 || reg.CounterValue(MetricCacheMisses) != 1 {
		t.Fatalf("hits=%d misses=%d", reg.CounterValue(MetricCacheHits), reg.CounterValue(MetricCacheMisses))
	}
	// Write-invalidate: the next read sees the new value, via the server.
	done, err = cl.Put(hitDone, "t", "k", []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	v, _, err = cl.Get(done, "t", "k")
	if err != nil || string(v) != "v2" {
		t.Fatalf("after invalidate: %q %v", v, err)
	}
	if reg.CounterValue(MetricCacheInval) != 1 {
		t.Fatal("invalidate counter not bumped")
	}
	// Per-shard counters landed too.
	total := int64(0)
	for i := 0; i < cl.Cache().Shards(); i++ {
		total += reg.CounterValue(fmt.Sprintf("serving.cache.s%02d.hits", i))
	}
	if total != reg.CounterValue(MetricCacheHits) {
		t.Fatalf("per-shard hits %d != aggregate %d", total, reg.CounterValue(MetricCacheHits))
	}
	// Eviction under capacity pressure (4 shards × 8 entries = 32 max).
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("fill%03d", i)
		d, err := cl.Put(eng.Now(), "t", k, []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := cl.Get(d, "t", k); err != nil {
			t.Fatal(err)
		}
	}
	if got := cl.Cache().Len(); got > 32 {
		t.Fatalf("cache holds %d entries, cap 32", got)
	}
	if reg.CounterValue(MetricCacheEvict) == 0 {
		t.Fatal("no evictions under pressure")
	}
}

// TestSplitMergeDeterminism is the satellite determinism gate: the same
// seed must produce a byte-identical META log through create, splits,
// crash reassignment, and merges.
func TestSplitMergeDeterminism(t *testing.T) {
	run := func(seed int64) []byte {
		res, err := BenchRun(BenchOpts{
			Mix: "a", Records: 800, Ops: 3000, Clients: 16, Servers: 3,
			PreSplit: 4, Seed: seed, Crash: true, CrashAt: 300 * time.Millisecond,
			SplitMaxOps: 600,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Splits == 0 {
			t.Fatal("determinism run produced no splits")
		}
		if res.Reassigns == 0 {
			t.Fatal("determinism run produced no reassignments")
		}
		return res.MetaLog
	}
	for _, seed := range []int64{1, 42} {
		a, b := run(seed), run(seed)
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: META logs differ:\n--- run1\n%s\n--- run2\n%s", seed, a, b)
		}
	}
	if bytes.Equal(run(1), run(2)) {
		t.Fatal("different seeds produced identical META logs — seed not threaded")
	}
}

// TestMergeDeterminism drives an explicit split-then-merge cycle twice
// and compares META logs byte for byte.
func TestMergeDeterminism(t *testing.T) {
	run := func() []byte {
		reg := obs.NewRegistry()
		c, eng := newTestCluster(t, 2, Options{
			Obs: reg, SplitMaxOps: 1 << 30, SplitMaxBytes: 4 << 10,
		})
		if err := c.Master.CreateTable("t", nil); err != nil {
			t.Fatal(err)
		}
		cl := c.NewClient()
		now := eng.Now()
		for i := 0; i < 150; i++ {
			done, err := cl.Put(now, "t", fmt.Sprintf("row%04d", i), bytes.Repeat([]byte("x"), 64))
			if err != nil {
				t.Fatal(err)
			}
			now = done
			eng.RunUntil(now)
		}
		c.Master.ResetLoadWindows()
		for {
			merged, err := c.Master.MergeAdjacent("t", 1<<30)
			if err != nil {
				t.Fatal(err)
			}
			if !merged {
				break
			}
		}
		if err := c.Master.CheckMeta(); err != nil {
			t.Fatal(err)
		}
		data, err := c.Master.MetaLogBytes()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatalf("split+merge META logs differ:\n--- run1\n%s\n--- run2\n%s", a, b)
	}
}

func TestBenchRunRecoversAckedWrites(t *testing.T) {
	res, err := BenchRun(BenchOpts{
		Mix: "a", Records: 600, Ops: 2400, Clients: 16, Servers: 4,
		PreSplit: 4, Seed: 7, Crash: true, CrashAt: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reassigns == 0 {
		t.Fatal("crash run did not reassign any regions")
	}
	if res.LostAckedWrites != 0 {
		t.Fatalf("%d acknowledged writes lost (verified %d)", res.LostAckedWrites, res.VerifiedWrites)
	}
	if res.VerifiedWrites == 0 {
		t.Fatal("nothing verified — workload produced no acked writes?")
	}
	if res.RecoverySeconds <= 0 {
		t.Fatalf("recovery window %v", res.RecoverySeconds)
	}
	if res.Errors > res.Ops/10 {
		t.Fatalf("%d/%d ops failed outright; retries should have ridden out recovery", res.Errors, res.Ops)
	}
	if res.FaultLog == "" {
		t.Fatal("no fault-injector log recorded")
	}
}

func TestCacheSpeedsUpReadHeavy(t *testing.T) {
	base := BenchOpts{Mix: "c", Records: 1000, Ops: 4000, Clients: 16, Servers: 4, PreSplit: 4, Seed: 3}
	withOpts := base
	withOpts.Cache = true
	without, err := BenchRun(base)
	if err != nil {
		t.Fatal(err)
	}
	with, err := BenchRun(withOpts)
	if err != nil {
		t.Fatal(err)
	}
	if with.CacheHitRate <= 0.3 {
		t.Fatalf("cache hit rate %.2f too low for zipf reads", with.CacheHitRate)
	}
	if with.OpsPerSec <= without.OpsPerSec {
		t.Fatalf("cache did not speed up workload C: %.0f vs %.0f ops/s", with.OpsPerSec, without.OpsPerSec)
	}
}

func TestWorkloadMixesRun(t *testing.T) {
	for _, mix := range []string{"b", "e", "f"} {
		res, err := BenchRun(BenchOpts{
			Mix: mix, Records: 500, Ops: 1500, Clients: 8, Servers: 4, PreSplit: 4, Seed: 5,
		})
		if err != nil {
			t.Fatalf("mix %s: %v", mix, err)
		}
		if res.Errors > 0 {
			t.Fatalf("mix %s: %d errors", mix, res.Errors)
		}
		if res.Ops != 1500 {
			t.Fatalf("mix %s: %d ops completed", mix, res.Ops)
		}
		if res.OpsPerSec <= 0 || res.P99 <= 0 || res.P50 > res.P99 || res.P99 > res.P999 {
			t.Fatalf("mix %s: bad stats %+v", mix, res.WorkloadResult)
		}
	}
}

package regionserver

import (
	"errors"

	"repro/internal/kvstore"
	"repro/internal/sim"
)

// Client is the serving-tier client library: it caches region locations
// per table, routes ops to the hosting server, transparently refreshes
// from META and retries when a region moved or split (ErrNotServing),
// and reads through the optional cache tier. ErrServerDown surfaces to
// the caller after one refresh — recovering from a crash takes real
// (virtual) time, so the caller owns that backoff.
type Client struct {
	eng    *sim.Engine
	master *Master
	cost   CostModel
	m      *metrics
	cache  *CacheTier // nil = no cache tier

	locs        map[string][]RegionInfo // per-table location cache
	maxAttempts int
}

func newClient(ma *Master, cache *CacheTier) *Client {
	return &Client{
		eng:         ma.eng,
		master:      ma,
		cost:        ma.cost,
		m:           ma.m,
		cache:       cache,
		locs:        map[string][]RegionInfo{},
		maxAttempts: 4,
	}
}

// Cache returns the client's cache tier (nil when uncached).
func (cl *Client) Cache() *CacheTier { return cl.cache }

// refresh re-reads the table's region list from META, charging the
// lookup plus a round trip.
func (cl *Client) refresh(at sim.Time, table string) (sim.Time, error) {
	regions, err := cl.master.Regions(table)
	if err != nil {
		return at, err
	}
	cl.locs[table] = regions
	cl.m.metaRefresh.Inc()
	return at + cl.cost.MetaLookup + cl.cost.RTT, nil
}

// route resolves key → (region, server) from the location cache,
// refreshing when stale is set or nothing is cached.
func (cl *Client) route(at sim.Time, table, key string, stale bool) (RegionInfo, *Server, sim.Time, error) {
	now := at
	regions, ok := cl.locs[table]
	if stale || !ok {
		var err error
		if now, err = cl.refresh(now, table); err != nil {
			return RegionInfo{}, nil, now, err
		}
		regions = cl.locs[table]
	}
	info, ok := locate(regions, key)
	if !ok {
		return RegionInfo{}, nil, now, ErrNoTable
	}
	srv := cl.master.Server(info.Srv)
	if srv == nil {
		return RegionInfo{}, nil, now, ErrNoLiveServer
	}
	return info, srv, now, nil
}

// retryable reports whether the op should re-route and try again.
func retryable(err error) bool {
	return errors.Is(err, ErrNotServing) || errors.Is(err, ErrServerDown)
}

// do runs one routed op with the NotServing retry loop: attempt, and on
// a stale-location error refresh META and go again (bounded). The op
// callback performs the server call at the given arrival time.
func (cl *Client) do(at sim.Time, table, key string,
	op func(info RegionInfo, srv *Server, at sim.Time) (sim.Time, error)) (sim.Time, error) {
	now := at
	stale := false
	var lastErr error
	for attempt := 0; attempt < cl.maxAttempts; attempt++ {
		if attempt > 0 {
			cl.m.retries.Inc()
		}
		info, srv, t, err := cl.route(now, table, key, stale)
		now = t
		if err != nil {
			return now, err
		}
		done, err := op(info, srv, now)
		if err == nil || !retryable(err) {
			return done + cl.cost.RTT, err
		}
		lastErr = err
		now = done
		stale = true
		if errors.Is(err, ErrServerDown) && attempt > 0 {
			// Refreshed and still down: META hasn't moved the region yet.
			// Recovery takes virtual time; hand the backoff to the caller.
			break
		}
	}
	return now, lastErr
}

// Get reads one row, through the cache tier when present (hit: served
// from the shard; miss: read through and fill). kvstore.ErrNotFound is
// the absent-row result, not a failure.
func (cl *Client) Get(at sim.Time, table, key string) ([]byte, sim.Time, error) {
	now := at
	if cl.cache != nil {
		v, ok, done := cl.cache.Get(now, table, key)
		if ok {
			return v, done, nil
		}
		now = done
	}
	var val []byte
	done, err := cl.do(now, table, key, func(info RegionInfo, srv *Server, at sim.Time) (sim.Time, error) {
		v, d, err := srv.Get(at, info.ID, info.Epoch, key)
		val = v
		return d, err
	})
	if err == nil && cl.cache != nil {
		done = cl.cache.Fill(done, table, key, val)
	}
	return val, done, err
}

// Put writes one row and invalidates its cache entry after the ack
// (write-invalidate coherence).
func (cl *Client) Put(at sim.Time, table, key string, value []byte) (sim.Time, error) {
	done, err := cl.do(at, table, key, func(info RegionInfo, srv *Server, at sim.Time) (sim.Time, error) {
		return srv.Put(at, info.ID, info.Epoch, key, value)
	})
	if err == nil && cl.cache != nil {
		done = cl.cache.Invalidate(done, table, key)
	}
	return done, err
}

// Delete removes one row (tombstone) and invalidates its cache entry.
func (cl *Client) Delete(at sim.Time, table, key string) (sim.Time, error) {
	done, err := cl.do(at, table, key, func(info RegionInfo, srv *Server, at sim.Time) (sim.Time, error) {
		return srv.Delete(at, info.ID, info.Epoch, key)
	})
	if err == nil && cl.cache != nil {
		done = cl.cache.Invalidate(done, table, key)
	}
	return done, err
}

// ReadModifyWrite reads the row then writes the new value — the YCSB
// workload-F op. The read goes through the cache like any Get.
func (cl *Client) ReadModifyWrite(at sim.Time, table, key string, value []byte) (sim.Time, error) {
	_, done, err := cl.Get(at, table, key)
	if err != nil && !errors.Is(err, kvstore.ErrNotFound) {
		return done, err
	}
	return cl.Put(done, table, key, value)
}

// Scan reads up to limit rows of [start, end) (end "" = to the table's
// end; limit <= 0 = unlimited), stitching bounded per-region scans
// together across region boundaries. Scans bypass the cache tier.
func (cl *Client) Scan(at sim.Time, table, start, end string, limit int) ([]kvstore.KV, sim.Time, error) {
	now := at
	var out []kvstore.KV
	cursor := start
	for {
		if limit > 0 && len(out) >= limit {
			break
		}
		rem := 0
		if limit > 0 {
			rem = limit - len(out)
		}
		var (
			kvs      []kvstore.KV
			next     string
			regEnd   string
			moreTail bool
		)
		done, err := cl.do(now, table, cursor, func(info RegionInfo, srv *Server, at sim.Time) (sim.Time, error) {
			k, n, d, err := srv.Scan(at, info.ID, info.Epoch, cursor, end, rem)
			kvs, next = k, n
			regEnd = info.End
			moreTail = info.End != "" && (end == "" || info.End < end)
			return d, err
		})
		now = done
		if err != nil {
			return out, now, err
		}
		out = append(out, kvs...)
		if next != "" {
			cursor = next
			continue
		}
		if !moreTail {
			break
		}
		cursor = regEnd
	}
	return out, now, nil
}

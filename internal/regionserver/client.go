package regionserver

import (
	"errors"
	"fmt"

	"repro/internal/kvstore"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Client is the serving-tier client library: it caches region locations
// per table, routes ops to the hosting server, transparently refreshes
// from META and retries when a region moved or split (ErrNotServing),
// and reads through the optional cache tier. ErrServerDown surfaces to
// the caller after one refresh — recovering from a crash takes real
// (virtual) time, so the caller owns that backoff.
type Client struct {
	eng    *sim.Engine
	master *Master
	cost   CostModel
	m      *metrics
	cache  *CacheTier // nil = no cache tier

	locs        map[string][]RegionInfo // per-table location cache
	maxAttempts int

	// TraceEvery is the client-side trace stride: every TraceEvery-th
	// request roots a serving.request trace (cache lookup and per-attempt
	// region calls hang below it). The serving data path is far too hot to
	// trace every op — the default keeps the E13 benchmark's allocation
	// profile flat. Set to 1 to trace everything (tests, labs); <= 0
	// disables request tracing entirely.
	TraceEvery int
	reqSeq     uint64
}

func newClient(ma *Master, cache *CacheTier) *Client {
	return &Client{
		eng:         ma.eng,
		master:      ma,
		cost:        ma.cost,
		m:           ma.m,
		cache:       cache,
		locs:        map[string][]RegionInfo{},
		maxAttempts: 4,
		TraceEvery:  64,
	}
}

// reqCtx applies the client-side stride and roots a trace for sampled
// requests (invalid Ctx otherwise — every downstream span then no-ops).
func (cl *Client) reqCtx(at sim.Time) obs.Ctx {
	if cl.TraceEvery <= 0 {
		return obs.Ctx{}
	}
	cl.reqSeq++
	if (cl.reqSeq-1)%uint64(cl.TraceEvery) != 0 {
		return obs.Ctx{}
	}
	return cl.m.reg.NewTrace(at)
}

// requestSpan closes a sampled request's root span.
func (cl *Client) requestSpan(ctx obs.Ctx, op, table string, at, done sim.Time, err error) {
	if !ctx.Valid() {
		return
	}
	result := "ok"
	if err != nil && !errors.Is(err, kvstore.ErrNotFound) {
		result = "error"
	}
	ctx.End(SpanRequest, at, done, map[string]string{
		"op": op, "table": table, "result": result,
	})
}

// Cache returns the client's cache tier (nil when uncached).
func (cl *Client) Cache() *CacheTier { return cl.cache }

// refresh re-reads the table's region list from META, charging the
// lookup plus a round trip.
func (cl *Client) refresh(at sim.Time, table string) (sim.Time, error) {
	regions, err := cl.master.Regions(table)
	if err != nil {
		return at, err
	}
	cl.locs[table] = regions
	cl.m.metaRefresh.Inc()
	return at + cl.cost.MetaLookup + cl.cost.RTT, nil
}

// route resolves key → (region, server) from the location cache,
// refreshing when stale is set or nothing is cached.
func (cl *Client) route(at sim.Time, table, key string, stale bool) (RegionInfo, *Server, sim.Time, error) {
	now := at
	regions, ok := cl.locs[table]
	if stale || !ok {
		var err error
		if now, err = cl.refresh(now, table); err != nil {
			return RegionInfo{}, nil, now, err
		}
		regions = cl.locs[table]
	}
	info, ok := locate(regions, key)
	if !ok {
		return RegionInfo{}, nil, now, ErrNoTable
	}
	srv := cl.master.Server(info.Srv)
	if srv == nil {
		return RegionInfo{}, nil, now, ErrNoLiveServer
	}
	return info, srv, now, nil
}

// retryable reports whether the op should re-route and try again.
func retryable(err error) bool {
	return errors.Is(err, ErrNotServing) || errors.Is(err, ErrServerDown)
}

// do runs one routed op with the NotServing retry loop: attempt, and on
// a stale-location error refresh META and go again (bounded). The op
// callback performs the server call at the given arrival time. When ctx
// is a sampled trace, every attempt — including the retries that used to
// be a bare counter — records a serving.region_call span under it.
func (cl *Client) do(ctx obs.Ctx, at sim.Time, table, key string,
	op func(info RegionInfo, srv *Server, at sim.Time) (sim.Time, error)) (sim.Time, error) {
	now := at
	stale := false
	var lastErr error
	for attempt := 0; attempt < cl.maxAttempts; attempt++ {
		if attempt > 0 {
			cl.m.retries.Inc()
		}
		callStart := now
		info, srv, t, err := cl.route(now, table, key, stale)
		now = t
		if err != nil {
			cl.regionCallSpan(ctx, RegionInfo{}, attempt, callStart, now, err)
			return now, err
		}
		done, err := op(info, srv, now)
		if err == nil || !retryable(err) {
			cl.regionCallSpan(ctx, info, attempt, callStart, done+cl.cost.RTT, err)
			return done + cl.cost.RTT, err
		}
		lastErr = err
		now = done
		stale = true
		cl.regionCallSpan(ctx, info, attempt, callStart, now, err)
		if errors.Is(err, ErrServerDown) && attempt > 0 {
			// Refreshed and still down: META hasn't moved the region yet.
			// Recovery takes virtual time; hand the backoff to the caller.
			break
		}
	}
	return now, lastErr
}

// regionCallSpan records one routed attempt under a sampled request.
func (cl *Client) regionCallSpan(ctx obs.Ctx, info RegionInfo, attempt int, start, end sim.Time, err error) {
	if !ctx.Valid() {
		return
	}
	result := "ok"
	switch {
	case errors.Is(err, ErrNotServing):
		result = "not_serving"
	case errors.Is(err, ErrServerDown):
		result = "server_down"
	case err != nil && !errors.Is(err, kvstore.ErrNotFound):
		result = "error"
	}
	cl.m.reg.ChildSpan(ctx, SpanRegionCall, start, end, map[string]string{
		"region":  info.ID,
		"server":  info.Srv,
		"attempt": fmt.Sprint(attempt),
		"result":  result,
	})
}

// Get reads one row, through the cache tier when present (hit: served
// from the shard; miss: read through and fill). kvstore.ErrNotFound is
// the absent-row result, not a failure.
func (cl *Client) Get(at sim.Time, table, key string) ([]byte, sim.Time, error) {
	ctx := cl.reqCtx(at)
	v, done, err := cl.get(ctx, at, table, key)
	cl.requestSpan(ctx, "get", table, at, done, err)
	return v, done, err
}

func (cl *Client) get(ctx obs.Ctx, at sim.Time, table, key string) ([]byte, sim.Time, error) {
	now := at
	if cl.cache != nil {
		v, ok, done := cl.cache.Get(now, table, key)
		if ctx.Valid() {
			result := "miss"
			if ok {
				result = "hit"
			}
			cl.m.reg.ChildSpan(ctx, SpanCacheLookup, now, done, map[string]string{
				"table": table, "result": result,
			})
		}
		if ok {
			return v, done, nil
		}
		now = done
	}
	var val []byte
	done, err := cl.do(ctx, now, table, key, func(info RegionInfo, srv *Server, at sim.Time) (sim.Time, error) {
		v, d, err := srv.Get(at, info.ID, info.Epoch, key)
		val = v
		return d, err
	})
	if err == nil && cl.cache != nil {
		done = cl.cache.Fill(done, table, key, val)
	}
	return val, done, err
}

// Put writes one row and invalidates its cache entry after the ack
// (write-invalidate coherence).
func (cl *Client) Put(at sim.Time, table, key string, value []byte) (sim.Time, error) {
	ctx := cl.reqCtx(at)
	done, err := cl.put(ctx, at, table, key, value)
	cl.requestSpan(ctx, "put", table, at, done, err)
	return done, err
}

func (cl *Client) put(ctx obs.Ctx, at sim.Time, table, key string, value []byte) (sim.Time, error) {
	done, err := cl.do(ctx, at, table, key, func(info RegionInfo, srv *Server, at sim.Time) (sim.Time, error) {
		return srv.Put(at, info.ID, info.Epoch, key, value)
	})
	if err == nil && cl.cache != nil {
		done = cl.cache.Invalidate(done, table, key)
	}
	return done, err
}

// Delete removes one row (tombstone) and invalidates its cache entry.
func (cl *Client) Delete(at sim.Time, table, key string) (sim.Time, error) {
	ctx := cl.reqCtx(at)
	done, err := cl.do(ctx, at, table, key, func(info RegionInfo, srv *Server, at sim.Time) (sim.Time, error) {
		return srv.Delete(at, info.ID, info.Epoch, key)
	})
	if err == nil && cl.cache != nil {
		done = cl.cache.Invalidate(done, table, key)
	}
	cl.requestSpan(ctx, "delete", table, at, done, err)
	return done, err
}

// ReadModifyWrite reads the row then writes the new value — the YCSB
// workload-F op. The read goes through the cache like any Get; both
// halves nest under one serving.request span.
func (cl *Client) ReadModifyWrite(at sim.Time, table, key string, value []byte) (sim.Time, error) {
	ctx := cl.reqCtx(at)
	_, done, err := cl.get(ctx, at, table, key)
	if err != nil && !errors.Is(err, kvstore.ErrNotFound) {
		cl.requestSpan(ctx, "rmw", table, at, done, err)
		return done, err
	}
	done, err = cl.put(ctx, done, table, key, value)
	cl.requestSpan(ctx, "rmw", table, at, done, err)
	return done, err
}

// Scan reads up to limit rows of [start, end) (end "" = to the table's
// end; limit <= 0 = unlimited), stitching bounded per-region scans
// together across region boundaries. Scans bypass the cache tier.
func (cl *Client) Scan(at sim.Time, table, start, end string, limit int) ([]kvstore.KV, sim.Time, error) {
	ctx := cl.reqCtx(at)
	now := at
	var out []kvstore.KV
	cursor := start
	for {
		if limit > 0 && len(out) >= limit {
			break
		}
		rem := 0
		if limit > 0 {
			rem = limit - len(out)
		}
		var (
			kvs      []kvstore.KV
			next     string
			regEnd   string
			moreTail bool
		)
		done, err := cl.do(ctx, now, table, cursor, func(info RegionInfo, srv *Server, at sim.Time) (sim.Time, error) {
			k, n, d, err := srv.Scan(at, info.ID, info.Epoch, cursor, end, rem)
			kvs, next = k, n
			regEnd = info.End
			moreTail = info.End != "" && (end == "" || info.End < end)
			return d, err
		})
		now = done
		if err != nil {
			cl.requestSpan(ctx, "scan", table, at, now, err)
			return out, now, err
		}
		out = append(out, kvs...)
		if next != "" {
			cursor = next
			continue
		}
		if !moreTail {
			break
		}
		cursor = regEnd
	}
	cl.requestSpan(ctx, "scan", table, at, now, nil)
	return out, now, nil
}

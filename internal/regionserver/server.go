package regionserver

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/kvstore"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// metrics holds the interned obs handles every layer shares. All handles
// are nil-safe, so a nil registry just disables observability.
type metrics struct {
	gets, puts, deletes, scans         *obs.Counter
	notServing, serverDown             *obs.Counter
	splits, merges, reassigns          *obs.Counter
	metaRefresh, retries               *obs.Counter
	cacheHits, cacheMisses, cacheInval *obs.Counter
	cacheEvict                         *obs.Counter
	opLatency                          *obs.Histogram
	reg                                *obs.Registry
}

func newMetrics(r *obs.Registry) *metrics {
	return &metrics{
		gets:        r.Counter(MetricGets),
		puts:        r.Counter(MetricPuts),
		deletes:     r.Counter(MetricDeletes),
		scans:       r.Counter(MetricScans),
		notServing:  r.Counter(MetricNotServing),
		serverDown:  r.Counter(MetricServerDown),
		splits:      r.Counter(MetricSplits),
		merges:      r.Counter(MetricMerges),
		reassigns:   r.Counter(MetricReassigns),
		metaRefresh: r.Counter(MetricMetaRefresh),
		retries:     r.Counter(MetricRetries),
		cacheHits:   r.Counter(MetricCacheHits),
		cacheMisses: r.Counter(MetricCacheMisses),
		cacheInval:  r.Counter(MetricCacheInval),
		cacheEvict:  r.Counter(MetricCacheEvict),
		opLatency:   r.Histogram(HistOpLatency),
		reg:         r,
	}
}

// hostedRegion is a region open on a server: the kvstore Table plus the
// load accounting the split/merge heuristics read.
type hostedRegion struct {
	info  RegionInfo
	tbl   *kvstore.Table
	ops   int // ops in the current load window (reset by the master)
	total int // ops since the region opened here
	// splitAsked dedups the split request until the master acts.
	splitAsked bool
}

// Server is one region server: it hosts kvstore-backed regions and
// serves point ops and scans with queueing — each op occupies the server
// from max(arrival, busyUntil) for its service time, so concurrent
// closed-loop clients contend for the server like they would for a real
// RPC handler thread.
type Server struct {
	name string
	node cluster.NodeID
	eng  *sim.Engine
	fs   vfs.FileSystem
	cost CostModel
	kv   kvstore.Config
	m    *metrics

	alive     bool
	busyUntil sim.Time
	regions   map[string]*hostedRegion // by region ID

	// askSplit is the master's hot-region hook; called (deferred via the
	// engine, never reentrantly) when a region crosses the thresholds.
	askSplit      func(regionID string)
	splitMaxBytes int64
	splitMaxOps   int
}

// Name returns the server's name ("rs1", ...).
func (s *Server) Name() string { return s.name }

// Node returns the cluster node the server runs on.
func (s *Server) Node() cluster.NodeID { return s.node }

// Alive reports whether the server is up.
func (s *Server) Alive() bool { return s.alive }

// RegionCount returns the number of regions currently hosted.
func (s *Server) RegionCount() int { return len(s.regions) }

// regionIDs returns the hosted region IDs, sorted (deterministic
// iteration for status pages and reassignment).
func (s *Server) regionIDs() []string {
	ids := make([]string, 0, len(s.regions))
	for id := range s.regions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// occupy models one op of the given service time: the server is busy
// from max(at, busyUntil); returns the completion instant.
func (s *Server) occupy(at sim.Time, service sim.Time) sim.Time {
	start := at
	if s.busyUntil > start {
		start = s.busyUntil
	}
	done := start + service
	s.busyUntil = done
	return done
}

// lookup resolves (regionID, epoch) to the hosted region or fails with
// ErrServerDown / ErrNotServing. The epoch check fences clients holding
// a stale location: after a move or split the region may be gone, or
// back here under a newer epoch.
func (s *Server) lookupRegion(regionID string, epoch int) (*hostedRegion, error) {
	if !s.alive {
		s.m.serverDown.Inc()
		return nil, ErrServerDown
	}
	hr, ok := s.regions[regionID]
	if !ok || hr.info.Epoch != epoch {
		s.m.notServing.Inc()
		return nil, ErrNotServing
	}
	return hr, nil
}

// noteOp does the per-op load accounting and fires the hot-region hook
// when a region crosses the split thresholds.
func (s *Server) noteOp(hr *hostedRegion) {
	hr.ops++
	hr.total++
	if hr.splitAsked || s.askSplit == nil {
		return
	}
	if (s.splitMaxOps > 0 && hr.ops >= s.splitMaxOps) ||
		(s.splitMaxBytes > 0 && hr.tbl.SizeBytes() >= s.splitMaxBytes) {
		hr.splitAsked = true
		id := hr.info.ID
		// Deferred: the split must not run inside this op's callback.
		s.eng.Schedule(s.eng.Now(), func() { s.askSplit(id) })
	}
}

// Get serves a point read arriving at `at`; returns the value and the
// virtual completion time.
func (s *Server) Get(at sim.Time, regionID string, epoch int, key string) ([]byte, sim.Time, error) {
	hr, err := s.lookupRegion(regionID, epoch)
	if err != nil {
		return nil, at, err
	}
	done := s.occupy(at, s.cost.ServerRead)
	s.m.gets.Inc()
	s.noteOp(hr)
	v, err := hr.tbl.Get(key)
	return v, done, err
}

// Put serves a write arriving at `at`. The record is on the region's WAL
// when Put returns — an acknowledged write survives a crash of this
// server via replay on the next owner.
func (s *Server) Put(at sim.Time, regionID string, epoch int, key string, value []byte) (sim.Time, error) {
	hr, err := s.lookupRegion(regionID, epoch)
	if err != nil {
		return at, err
	}
	done := s.occupy(at, s.cost.ServerWrite)
	s.m.puts.Inc()
	s.noteOp(hr)
	if err := hr.tbl.Put(key, value); err != nil {
		return done, err
	}
	return done, nil
}

// Delete serves a delete arriving at `at` (a WAL-logged tombstone, like
// Put).
func (s *Server) Delete(at sim.Time, regionID string, epoch int, key string) (sim.Time, error) {
	hr, err := s.lookupRegion(regionID, epoch)
	if err != nil {
		return at, err
	}
	done := s.occupy(at, s.cost.ServerWrite)
	s.m.deletes.Inc()
	s.noteOp(hr)
	if err := hr.tbl.Delete(key); err != nil {
		return done, err
	}
	return done, nil
}

// Scan serves a bounded range read within one region: up to limit rows
// from [start, end) clamped to the region, plus a resume cursor ("" when
// the region is exhausted). The client stitches regions together.
func (s *Server) Scan(at sim.Time, regionID string, epoch int, start, end string, limit int) ([]kvstore.KV, string, sim.Time, error) {
	hr, err := s.lookupRegion(regionID, epoch)
	if err != nil {
		return nil, "", at, err
	}
	if hr.info.Start > start {
		start = hr.info.Start
	}
	end = minEnd(end, hr.info.End)
	kvs, cursor, err := hr.tbl.ScanRange(start, end, limit)
	if err != nil {
		return nil, "", at, err
	}
	done := s.occupy(at, s.cost.ScanBase+sim.Time(len(kvs))*s.cost.ScanPerRow)
	s.m.scans.Inc()
	s.noteOp(hr)
	return kvs, cursor, done, nil
}

// openRegion opens (or reopens, replaying the WAL) the region's kvstore
// and starts serving it. Returns the count of replayed WAL records so
// the master can charge recovery time.
func (s *Server) openRegion(info RegionInfo) (int, error) {
	before := int64(0)
	if s.m.reg != nil {
		before = s.m.reg.CounterValue(kvstore.MetricWALReplayed)
	}
	tbl, err := kvstore.Open(s.fs, info.Path, s.kv)
	if err != nil {
		return 0, err
	}
	replayed := 0
	if s.m.reg != nil {
		replayed = int(s.m.reg.CounterValue(kvstore.MetricWALReplayed) - before)
	}
	s.regions[info.ID] = &hostedRegion{info: info, tbl: tbl}
	return replayed, nil
}

// closeRegion stops serving the region (its durable state stays on the
// filesystem).
func (s *Server) closeRegion(regionID string) {
	delete(s.regions, regionID)
}

// Crash kills the server: every hosted region's in-memory state is gone;
// the WALs and store files survive on the shared filesystem for the next
// owner to replay.
func (s *Server) Crash() {
	s.alive = false
	s.regions = map[string]*hostedRegion{}
}

// Restart brings a crashed server back empty; the master re-adopts it as
// a rebalance target on its next heartbeat.
func (s *Server) Restart() {
	if s.alive {
		return
	}
	s.alive = true
	s.busyUntil = s.eng.Now()
}

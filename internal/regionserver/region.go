package regionserver

import (
	"fmt"
	"sort"
	"strings"
)

// RegionInfo is one row of META: a contiguous row-key range of a table,
// the server currently hosting it, and the epoch fencing stale clients.
type RegionInfo struct {
	ID    string // "r0007" — unique per master, never reused
	Table string
	Start string // inclusive; "" = from the beginning
	End   string // exclusive; "" = to the end
	Srv   string // hosting server name
	Epoch int    // bumped on every assign/move; stale epochs get ErrNotServing
	Path  string // vfs root of the region's kvstore Table
}

// Contains reports whether the row key falls in the region's range.
func (r RegionInfo) Contains(key string) bool {
	return r.Start <= key && (r.End == "" || key < r.End)
}

// RangeString renders the range for logs and status pages.
func (r RegionInfo) RangeString() string {
	start, end := r.Start, r.End
	if start == "" {
		start = "-inf"
	}
	if end == "" {
		end = "+inf"
	}
	return fmt.Sprintf("[%s, %s)", start, end)
}

// regionPath is the vfs root for a region's kvstore Table.
func regionPath(table, regionID string) string {
	return "/serving/" + table + "/" + regionID
}

// locate finds the region covering key in a Start-sorted region list.
func locate(regions []RegionInfo, key string) (RegionInfo, bool) {
	// First region with Start > key, minus one.
	i := sort.Search(len(regions), func(i int) bool { return regions[i].Start > key })
	if i == 0 {
		return RegionInfo{}, false
	}
	r := regions[i-1]
	if !r.Contains(key) {
		return RegionInfo{}, false
	}
	return r, true
}

// sortRegions orders a region list by range start (the META invariant).
func sortRegions(regions []RegionInfo) {
	sort.Slice(regions, func(i, j int) bool {
		if regions[i].Start != regions[j].Start {
			return regions[i].Start < regions[j].Start
		}
		return regions[i].ID < regions[j].ID
	})
}

// checkContiguous verifies a sorted region list tiles the whole key
// space: starts at "", each End meets the next Start, ends open. Used by
// tests and the fsck-style consistency check on the status page.
func checkContiguous(regions []RegionInfo) error {
	if len(regions) == 0 {
		return fmt.Errorf("no regions")
	}
	if regions[0].Start != "" {
		return fmt.Errorf("first region %s starts at %q, not -inf", regions[0].ID, regions[0].Start)
	}
	for i := 0; i < len(regions)-1; i++ {
		if regions[i].End != regions[i+1].Start {
			return fmt.Errorf("gap: %s ends at %q, %s starts at %q",
				regions[i].ID, regions[i].End, regions[i+1].ID, regions[i+1].Start)
		}
	}
	if last := regions[len(regions)-1]; last.End != "" {
		return fmt.Errorf("last region %s ends at %q, not +inf", last.ID, last.End)
	}
	return nil
}

// minNonEmpty returns the smaller of two range bounds where "" means
// +inf (used for scan clamping).
func minEnd(a, b string) string {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	if strings.Compare(a, b) < 0 {
		return a
	}
	return b
}

package regionserver

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/faultinject"
	"repro/internal/kvstore"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// WorkloadResult is one closed-loop run: throughput over the virtual
// makespan and the latency distribution of successful ops (latency spans
// first attempt → completion, so crash-window retries land in the tail).
type WorkloadResult struct {
	Ops       int           `json:"ops"`
	Errors    int           `json:"errors"`
	Retried   int           `json:"retried_ops"`
	Makespan  time.Duration `json:"makespan"`
	OpsPerSec float64       `json:"ops_per_sec"`
	P50       time.Duration `json:"p50"`
	P99       time.Duration `json:"p99"`
	P999      time.Duration `json:"p999"`
	// Acked maps row key → last acknowledged written value, the model the
	// zero-lost-writes verification replays against the recovered table.
	Acked map[string]string `json:"-"`
}

// workloadRetries bounds per-op retries; with workloadBackoff between
// attempts the retry budget comfortably outlives the heartbeat expiry +
// WAL replay of a crash recovery.
const (
	workloadRetries = 16
	workloadBackoff = 250 * time.Millisecond
)

// RunWorkload drives the op stream against the table from `clients`
// closed-loop virtual clients sharing one Client (and so one location
// cache and one cache tier): each schedules its next op at the previous
// op's completion, so server queueing shapes throughput. Ops that fail
// with a retryable error back off in virtual time and retry — surviving
// a crash-recovery window — and count as Errors only when the budget is
// exhausted.
func RunWorkload(eng *sim.Engine, cl *Client, table string, ops []datagen.YCSBOp, clients int) *WorkloadResult {
	if clients <= 0 {
		clients = 32
	}
	if clients > len(ops) && len(ops) > 0 {
		clients = len(ops)
	}
	res := &WorkloadResult{Acked: map[string]string{}}
	start := eng.Now()
	var lats []time.Duration
	last := start
	remaining := 0

	runOne := func(ci int, mine []datagen.YCSBOp) {
		var step func(i int)
		step = func(i int) {
			if i == len(mine) {
				remaining--
				if eng.Now() > last {
					last = eng.Now()
				}
				return
			}
			op := mine[i]
			opStart := eng.Now()
			attempt := 0
			var exec func()
			exec = func() {
				now := eng.Now()
				var done sim.Time
				var err error
				switch op.Type {
				case datagen.YCSBRead:
					_, done, err = cl.Get(now, table, op.Key)
					if errors.Is(err, kvstore.ErrNotFound) {
						err = nil // absent row is a valid read result
					}
				case datagen.YCSBUpdate, datagen.YCSBInsert:
					done, err = cl.Put(now, table, op.Key, op.Value)
				case datagen.YCSBRMW:
					done, err = cl.ReadModifyWrite(now, table, op.Key, op.Value)
				case datagen.YCSBScan:
					_, done, err = cl.Scan(now, table, op.Key, "", op.ScanLen)
				default:
					done, err = now, fmt.Errorf("regionserver: unknown op %q", op.Type)
				}
				if err != nil && retryable(err) && attempt < workloadRetries {
					if attempt == 0 {
						res.Retried++
					}
					attempt++
					eng.Schedule(now+workloadBackoff, exec)
					return
				}
				if err != nil {
					res.Errors++
					done = now
				} else {
					res.Ops++
					lats = append(lats, time.Duration(done-opStart))
					cl.m.opLatency.Observe(time.Duration(done - opStart))
					switch op.Type {
					case datagen.YCSBUpdate, datagen.YCSBInsert, datagen.YCSBRMW:
						res.Acked[op.Key] = string(op.Value)
					}
				}
				eng.Schedule(done, func() { step(i + 1) })
			}
			exec()
		}
		remaining++
		eng.Schedule(start, func() { step(0) })
	}

	for ci := 0; ci < clients; ci++ {
		var mine []datagen.YCSBOp
		for i := ci; i < len(ops); i += clients {
			mine = append(mine, ops[i])
		}
		if len(mine) > 0 {
			runOne(ci, mine)
		}
	}
	for remaining > 0 {
		if !eng.Step() {
			break
		}
	}
	res.Makespan = time.Duration(last - start)
	if res.Makespan > 0 {
		res.OpsPerSec = float64(res.Ops) / res.Makespan.Seconds()
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	res.P50 = percentile(lats, 0.50)
	res.P99 = percentile(lats, 0.99)
	res.P999 = percentile(lats, 0.999)
	return res
}

// percentile is nearest-rank over an ascending slice.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// BenchOpts sizes one BenchRun: a fresh cluster, a bulk-loaded table,
// one YCSB mix, optionally a mid-workload server crash.
type BenchOpts struct {
	Mix           string // "a", "b", "c", "e", "f" (default "a")
	Records       int    // initial rows (default 4000)
	Ops           int    // workload ops (default 12000)
	Clients       int    // closed-loop clients (default 32)
	Servers       int    // region servers (default 4)
	PreSplit      int    // initial regions (default 8)
	ValueSize     int    // row bytes (default 100)
	Cache         bool   // front the servers with the cache tier
	CacheShards   int    // default 16
	CacheCapacity int    // per shard, default 128
	Seed          int64
	Crash         bool          // kill the hottest region's server mid-run
	CrashAt       time.Duration // default 800ms into the workload
	SplitMaxOps   int           // hot-region split trigger (default 2500)
	SplitMaxBytes int64         // size split trigger (default 1 MiB)
}

func (o *BenchOpts) defaults() {
	if o.Mix == "" {
		o.Mix = "a"
	}
	if o.Records <= 0 {
		o.Records = 4000
	}
	if o.Ops <= 0 {
		o.Ops = 12000
	}
	if o.Clients <= 0 {
		o.Clients = 32
	}
	if o.Servers <= 0 {
		o.Servers = 4
	}
	if o.PreSplit <= 0 {
		o.PreSplit = 8
	}
	if o.ValueSize <= 0 {
		o.ValueSize = 100
	}
	if o.CacheShards <= 0 {
		o.CacheShards = 16
	}
	if o.CacheCapacity <= 0 {
		o.CacheCapacity = 128
	}
	if o.CrashAt <= 0 {
		o.CrashAt = 800 * time.Millisecond
	}
	if o.SplitMaxOps <= 0 {
		o.SplitMaxOps = 2500
	}
	if o.SplitMaxBytes <= 0 {
		o.SplitMaxBytes = 1 << 20
	}
}

// BenchResult is one BenchRun's outcome plus its determinism artifacts.
type BenchResult struct {
	WorkloadResult
	Mix             string  `json:"mix"`
	Cache           bool    `json:"cache"`
	CacheHitRate    float64 `json:"cache_hit_rate"`
	Splits          int     `json:"splits"`
	Reassigns       int     `json:"reassigns"`
	RegionsFinal    int     `json:"regions_final"`
	RecoverySeconds float64 `json:"recovery_seconds"`
	LostAckedWrites int     `json:"lost_acked_writes"`
	VerifiedWrites  int     `json:"verified_writes"`

	// MetaLog is the byte-comparable META event log; FaultLog the
	// injector's executed-fault log (empty without Crash).
	MetaLog  []byte `json:"-"`
	FaultLog string `json:"-"`
	// Snap is the full obs snapshot (counters, gauges, spans) as JSON.
	Snap []byte `json:"-"`
}

// BenchTable is the table BenchRun serves.
const BenchTable = "usertable"

// BenchRun builds a fresh serving cluster on an in-memory filesystem,
// bulk-loads the YCSB dataset, runs one workload mix end to end —
// optionally crashing the hottest region's server mid-run via
// faultinject — and verifies every acknowledged write against the final
// table state.
func BenchRun(o BenchOpts) (*BenchResult, error) {
	o.defaults()
	eng := sim.NewEngine()
	fs := vfs.NewMemFS()
	reg := obs.NewRegistry()
	topo := cluster.NewTopology(cluster.PaperNodeConfig(o.Servers+1, 1))
	c, err := New(eng, fs, topo, Options{
		Servers:       o.Servers,
		Obs:           reg,
		SplitMaxOps:   o.SplitMaxOps,
		SplitMaxBytes: o.SplitMaxBytes,
		KV: kvstore.Config{
			FlushThresholdBytes: 32 << 10,
			WALSegmentBytes:     16 << 10,
		},
	})
	if err != nil {
		return nil, err
	}
	defer c.Stop()

	var splitKeys []string
	for i := 1; i < o.PreSplit; i++ {
		splitKeys = append(splitKeys, datagen.YCSBKey(i*o.Records/o.PreSplit))
	}
	if err := c.Master.CreateTable(BenchTable, splitKeys); err != nil {
		return nil, err
	}
	load := datagen.YCSBLoad(o.Records, o.ValueSize)
	kvs := make([]kvstore.KV, len(load))
	for i, op := range load {
		kvs[i] = kvstore.KV{Key: op.Key, Value: op.Value}
	}
	if err := c.Master.BulkLoadTable(BenchTable, kvs); err != nil {
		return nil, err
	}

	ops, err := datagen.YCSB(datagen.YCSBOpts{
		Mix: o.Mix, Records: o.Records, Ops: o.Ops, ValueSize: o.ValueSize, Seed: o.Seed,
	})
	if err != nil {
		return nil, err
	}
	cl := c.NewClient()
	if o.Cache {
		cl = c.NewCachedClient(o.CacheShards, o.CacheCapacity)
	}

	res := &BenchResult{Mix: o.Mix, Cache: o.Cache}
	var crashAt sim.Time
	if o.Crash {
		// At CrashAt, kill the server hosting the hottest region (the
		// head of the key range, where the Zipf mass is) through the
		// fault injector.
		eng.Schedule(eng.Now()+o.CrashAt, func() {
			crashAt = eng.Now()
			hot := c.HottestRegions(1)
			if len(hot) == 0 {
				return
			}
			srv := c.Master.Server(hot[0].Info.Srv)
			if srv == nil || !srv.alive {
				return
			}
			inj, err := faultinject.New(
				faultinject.Target{Engine: eng, Topology: topo, Serving: c},
				faultinject.Plan{Seed: o.Seed, Faults: []faultinject.Fault{
					{Kind: faultinject.NodeCrash, Node: srv.Node()},
				}},
			)
			if err != nil {
				return
			}
			inj.Install()
			eng.Schedule(eng.Now(), func() { res.FaultLog = inj.LogString() })
		})
	}

	wl := RunWorkload(eng, cl, BenchTable, ops, o.Clients)
	res.WorkloadResult = *wl

	// Verify: every acknowledged write must read back from the (possibly
	// recovered) table. A lost WAL record or bad reassignment shows up
	// here.
	keys := make([]string, 0, len(wl.Acked))
	for k := range wl.Acked {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	verify := c.NewClient() // cache-free read of the authoritative tier
	for _, k := range keys {
		v, _, err := verify.Get(eng.Now(), BenchTable, k)
		if err != nil || string(v) != wl.Acked[k] {
			res.LostAckedWrites++
			continue
		}
		res.VerifiedWrites++
	}

	hits := reg.CounterValue(MetricCacheHits)
	misses := reg.CounterValue(MetricCacheMisses)
	if hits+misses > 0 {
		res.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	res.Splits = int(reg.CounterValue(MetricSplits))
	res.Reassigns = int(reg.CounterValue(MetricReassigns))
	if regions, err := c.Master.Regions(BenchTable); err == nil {
		res.RegionsFinal = len(regions)
	}
	if o.Crash && res.Reassigns > 0 {
		_, end, _ := c.Master.LastRecovery()
		res.RecoverySeconds = time.Duration(end - crashAt).Seconds()
	}
	if res.MetaLog, err = c.Master.MetaLogBytes(); err != nil {
		return nil, err
	}
	if res.Snap, err = reg.SnapshotJSON(); err != nil {
		return nil, err
	}
	if err := c.Master.CheckMeta(); err != nil {
		return nil, fmt.Errorf("regionserver: META broken after run: %w", err)
	}
	return res, nil
}

package regionserver

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// Cluster bundles the serving tier: the master, the region servers, and
// the substrate they run on. It implements faultinject's Serving hook so
// NodeCrash/NodeRestart faults reach region servers.
type Cluster struct {
	Eng    *sim.Engine
	FS     vfs.FileSystem
	Topo   *cluster.Topology
	Master *Master
	Obs    *obs.Registry

	cost CostModel
	m    *metrics
}

// New builds a serving cluster: opts.Servers region servers named
// rs1..rsN placed on topology nodes 1..N (node 0 is the master/gateway),
// persisting regions through fs.
func New(eng *sim.Engine, fs vfs.FileSystem, topo *cluster.Topology, opts Options) (*Cluster, error) {
	opts.defaults()
	if opts.Cost == nil {
		c := DefaultCosts()
		opts.Cost = &c
	}
	if topo == nil {
		return nil, fmt.Errorf("regionserver: nil topology")
	}
	if topo.Len() < opts.Servers+1 {
		return nil, fmt.Errorf("regionserver: %d servers need %d nodes, topology has %d",
			opts.Servers, opts.Servers+1, topo.Len())
	}
	m := newMetrics(opts.Obs)
	kv := opts.KV
	kv.Obs = opts.Obs
	nodes := topo.Nodes()
	var servers []*Server
	for i := 0; i < opts.Servers; i++ {
		servers = append(servers, &Server{
			name:    fmt.Sprintf("rs%d", i+1),
			node:    nodes[i+1].ID,
			eng:     eng,
			fs:      fs,
			cost:    *opts.Cost,
			kv:      kv,
			m:       m,
			alive:   true,
			regions: map[string]*hostedRegion{},
		})
	}
	ma := newMaster(eng, fs, servers, opts, m)
	return &Cluster{
		Eng:    eng,
		FS:     fs,
		Topo:   topo,
		Master: ma,
		Obs:    opts.Obs,
		cost:   *opts.Cost,
		m:      m,
	}, nil
}

// Stop cancels the master's tickers.
func (c *Cluster) Stop() { c.Master.Stop() }

// NewClient returns an uncached client.
func (c *Cluster) NewClient() *Client { return newClient(c.Master, nil) }

// NewCachedClient returns a client reading through a fresh cache tier of
// `shards` LRU shards × `capacity` entries.
func (c *Cluster) NewCachedClient(shards, capacity int) *Client {
	return newClient(c.Master, NewCacheTier(c.Obs, c.cost, shards, capacity, c.m))
}

// NewClientWithCache returns a client sharing an existing cache tier
// (multiple front-ends behind one coherent cache).
func (c *Cluster) NewClientWithCache(ct *CacheTier) *Client {
	return newClient(c.Master, ct)
}

// serverOn finds the region server placed on the node (nil if none).
func (c *Cluster) serverOn(node cluster.NodeID) *Server {
	for _, s := range c.Master.servers {
		if s.node == node {
			return s
		}
	}
	return nil
}

// CrashServerOn implements faultinject.Serving: kill the region server
// on the node. Reports whether one was there to kill.
func (c *Cluster) CrashServerOn(node cluster.NodeID) bool {
	s := c.serverOn(node)
	if s == nil || !s.alive {
		return false
	}
	s.Crash()
	return true
}

// RestartServerOn implements faultinject.Serving: restart the region
// server on the node (empty; the master re-adopts it on heartbeat).
func (c *Cluster) RestartServerOn(node cluster.NodeID) bool {
	s := c.serverOn(node)
	if s == nil || s.alive {
		return false
	}
	s.Restart()
	return true
}

// StatusPage renders the serving tier for webui /serving: servers,
// per-table region maps, and the META consistency check.
func (c *Cluster) StatusPage() string {
	var b strings.Builder
	ma := c.Master
	fmt.Fprintf(&b, "Region servers (%d):\n", len(ma.servers))
	for _, s := range ma.servers {
		state := "live"
		if !s.alive {
			state = "DEAD"
		}
		ops := 0
		var bytes int64
		for _, id := range s.regionIDs() {
			hr := s.regions[id]
			ops += hr.total
			bytes += hr.tbl.SizeBytes()
		}
		fmt.Fprintf(&b, "  %-4s node=%-2d %-4s regions=%-3d ops=%-8d bytes=%d\n",
			s.name, s.node, state, s.RegionCount(), ops, bytes)
	}
	for _, table := range ma.Tables() {
		regions := ma.meta[table]
		fmt.Fprintf(&b, "\nTable %s (%d regions):\n", table, len(regions))
		for _, r := range regions {
			srv := ma.byName[r.Srv]
			detail := "unassigned"
			if srv != nil {
				if hr := srv.regions[r.ID]; hr != nil {
					detail = fmt.Sprintf("ops=%d bytes=%d files=%d",
						hr.total, hr.tbl.SizeBytes(), hr.tbl.StoreFileCount())
				} else if !srv.alive {
					detail = "server dead, awaiting reassignment"
				}
			}
			fmt.Fprintf(&b, "  %-6s %-28s epoch=%-4d %-4s %s\n",
				r.ID, r.RangeString(), r.Epoch, r.Srv, detail)
		}
	}
	if err := ma.CheckMeta(); err != nil {
		fmt.Fprintf(&b, "\nMETA check: BROKEN: %v\n", err)
	} else if len(ma.meta) > 0 {
		fmt.Fprintf(&b, "\nMETA check: ok (every table tiles the key space)\n")
	}
	if hot := c.HottestRegions(3); len(hot) > 0 {
		b.WriteString("\nHottest regions (by ops):\n")
		for _, h := range hot {
			fmt.Fprintf(&b, "  %-6s %-28s %-4s ops=%d\n", h.Info.ID, h.Info.RangeString(), h.Info.Srv, h.Ops)
		}
	}
	splits, merges, reassigns := int64(0), int64(0), int64(0)
	if c.Obs != nil {
		splits = c.Obs.CounterValue(MetricSplits)
		merges = c.Obs.CounterValue(MetricMerges)
		reassigns = c.Obs.CounterValue(MetricReassigns)
	}
	fmt.Fprintf(&b, "\nLifecycle: %d splits, %d merges, %d reassignments, %d META events\n",
		splits, merges, reassigns, ma.MetaLogLen())
	if start, end, n := ma.LastRecovery(); n > 0 {
		fmt.Fprintf(&b, "Last recovery: %d regions in %v (at %v)\n",
			n, (end - start).Round(time.Millisecond), start.Round(time.Millisecond))
	}
	return b.String()
}

// RegionHeat is one row of the hot-region report.
type RegionHeat struct {
	Info RegionInfo
	Ops  int
}

// HottestRegions returns the top-n hosted regions by lifetime op count —
// the answer to Lab 9's "find the hot region".
func (c *Cluster) HottestRegions(n int) []RegionHeat {
	var heats []RegionHeat
	for _, s := range c.Master.servers {
		for _, id := range s.regionIDs() {
			hr := s.regions[id]
			heats = append(heats, RegionHeat{Info: hr.info, Ops: hr.total})
		}
	}
	sort.Slice(heats, func(i, j int) bool {
		if heats[i].Ops != heats[j].Ops {
			return heats[i].Ops > heats[j].Ops
		}
		return heats[i].Info.ID < heats[j].Info.ID
	})
	if n > 0 && len(heats) > n {
		heats = heats[:n]
	}
	return heats
}

package jobs

import (
	"repro/internal/mapreduce"
)

// tokenMapper emits (word, 1) per whitespace-separated token — the
// standard WordCount mapper from the first lecture. Tokens are sliced out
// of the line directly rather than through strings.Fields, which would
// allocate a token slice per input line on the hottest mapper in the
// suite; the emitted words match Fields' ASCII-space splitting because
// the corpora contain no other whitespace.
type tokenMapper struct{}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f'
}

func (tokenMapper) Map(ctx *mapreduce.TaskContext, off int64, line string, out mapreduce.Emitter) error {
	i := 0
	for i < len(line) {
		for i < len(line) && isSpace(line[i]) {
			i++
		}
		start := i
		for i < len(line) && !isSpace(line[i]) {
			i++
		}
		if start < i {
			if err := out.Emit(line[start:i], mapreduce.Int64(1)); err != nil {
				return err
			}
		}
	}
	return nil
}

// sumReducer sums Int64 values per key.
type sumReducer struct{}

func (sumReducer) Reduce(ctx *mapreduce.TaskContext, key string, values *mapreduce.Values, out mapreduce.Emitter) error {
	var sum int64
	if err := values.Each(func(v mapreduce.Value) error {
		sum += int64(v.(mapreduce.Int64))
		return nil
	}); err != nil {
		return err
	}
	return out.Emit(key, mapreduce.Int64(sum))
}

// WordCount builds the canonical WordCount job. When withCombiner is set,
// the reducer doubles as the combiner ("another WordCount example that
// uses the reducer as a combiner"), trading map-side work for shuffle
// volume — the trade-off the students observed through the job report.
func WordCount(input, output string, withCombiner bool) *mapreduce.Job {
	j := &mapreduce.Job{
		Name:        "wordcount",
		NewMapper:   func() mapreduce.Mapper { return tokenMapper{} },
		NewReducer:  func() mapreduce.Reducer { return sumReducer{} },
		DecodeValue: mapreduce.DecodeInt64,
		InputPaths:  []string{input},
		OutputPath:  output,
	}
	if withCombiner {
		j.Name = "wordcount-combiner"
		j.NewCombiner = func() mapreduce.Reducer { return sumReducer{} }
	}
	return j
}

// topWordReducer sums counts per word and remembers the maximum; the
// answer is emitted once, from Close. It requires a single reducer.
type topWordReducer struct {
	bestWord  string
	bestCount int64
}

func (r *topWordReducer) Reduce(ctx *mapreduce.TaskContext, key string, values *mapreduce.Values, out mapreduce.Emitter) error {
	var sum int64
	if err := values.Each(func(v mapreduce.Value) error {
		sum += int64(v.(mapreduce.Int64))
		return nil
	}); err != nil {
		return err
	}
	if sum > r.bestCount || (sum == r.bestCount && key < r.bestWord) {
		r.bestWord, r.bestCount = key, sum
	}
	return nil
}

func (r *topWordReducer) Close(ctx *mapreduce.TaskContext, out mapreduce.Emitter) error {
	if r.bestCount == 0 {
		return nil
	}
	return out.Emit(r.bestWord, mapreduce.Int64(r.bestCount))
}

// TopWord builds the Fall 2012 assignment-1 job: "find the word with the
// highest count in the complete Shakespeare collection". A single reducer
// scans all word totals and emits only the winner.
func TopWord(input, output string) *mapreduce.Job {
	return &mapreduce.Job{
		Name:        "topword",
		NewMapper:   func() mapreduce.Mapper { return tokenMapper{} },
		NewReducer:  func() mapreduce.Reducer { return &topWordReducer{} },
		NewCombiner: func() mapreduce.Reducer { return sumReducer{} },
		DecodeValue: mapreduce.DecodeInt64,
		NumReducers: 1,
		InputPaths:  []string{input},
		OutputPath:  output,
	}
}

package jobs_test

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/hdfs"
	"repro/internal/jobs"
	"repro/internal/mapreduce"
	"repro/internal/serial"
	"repro/internal/vfs"
)

func TestTeraSortGlobalOrderSerial(t *testing.T) {
	fs := vfs.NewMemFS()
	rows, _, err := datagen.Sortable(fs, "/in/records.txt", datagen.SortableOpts{Rows: 5000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	job, err := jobs.TeraSort(fs, "/in", "/out", 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&serial.Runner{FS: fs, Parallelism: 3}).Run(job); err != nil {
		t.Fatal(err)
	}
	// ReadOutput concatenates parts in name order; with the range
	// partitioner the result must be globally sorted.
	out, err := serial.ReadOutput(fs, "/out")
	if err != nil {
		t.Fatal(err)
	}
	n, err := jobs.ValidateSorted(out)
	if err != nil {
		t.Fatal(err)
	}
	if n != rows {
		t.Fatalf("output rows = %d, want %d", n, rows)
	}
	// Multiset equality: sorted(input lines) == output lines.
	in, _ := vfs.ReadFile(fs, "/in/records.txt")
	inLines := strings.Split(strings.TrimSpace(string(in)), "\n")
	sort.Strings(inLines)
	outLines := strings.Split(strings.TrimSpace(out), "\n")
	if len(inLines) != len(outLines) {
		t.Fatalf("line counts differ: %d vs %d", len(inLines), len(outLines))
	}
	for i := range inLines {
		if inLines[i] != outLines[i] {
			t.Fatalf("record multiset differs at %d: %q vs %q", i, inLines[i], outLines[i])
		}
	}
}

func TestTeraSortBalancedPartitions(t *testing.T) {
	fs := vfs.NewMemFS()
	if _, _, err := datagen.Sortable(fs, "/in/r.txt", datagen.SortableOpts{Rows: 8000, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	const reducers = 8
	job, err := jobs.TeraSort(fs, "/in", "/out", reducers)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&serial.Runner{FS: fs}).Run(job); err != nil {
		t.Fatal(err)
	}
	infos, err := fs.List("/out")
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int64
	for _, fi := range infos {
		if strings.HasPrefix(fi.Name(), "part-") {
			sizes = append(sizes, fi.Size)
		}
	}
	if len(sizes) != reducers {
		t.Fatalf("parts = %d", len(sizes))
	}
	var min, max int64 = 1 << 62, 0
	for _, s := range sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	// Quantile sampling should balance partitions within ~3x.
	if min == 0 || max > 3*min {
		t.Fatalf("partitions unbalanced: min=%d max=%d", min, max)
	}
}

func TestTeraSortOnCluster(t *testing.T) {
	c, err := core.New(core.Options{Nodes: 6, Seed: 8, HDFS: hdfs.Config{BlockSize: 16 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := datagen.Sortable(c.FS(), "/in/r.txt", datagen.SortableOpts{Rows: 6000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	job, err := jobs.TeraSort(c.FS(), "/in", "/out", 5)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Output("/out")
	if err != nil {
		t.Fatal(err)
	}
	n, err := jobs.ValidateSorted(out)
	if err != nil {
		t.Fatal(err)
	}
	if n != rows {
		t.Fatalf("rows = %d, want %d", n, rows)
	}
	if rep.ReduceTasks != 5 {
		t.Fatalf("reduce tasks = %d", rep.ReduceTasks)
	}
}

func TestRangePartitionMonotone(t *testing.T) {
	splits := []string{"c", "g", "p"}
	part := jobs.RangePartition(splits)
	prev := -1
	for _, k := range []string{"a", "c", "d", "g", "h", "p", "z"} {
		p := part(k, 4)
		if p < prev {
			t.Fatalf("partition not monotone at %q: %d < %d", k, p, prev)
		}
		if p < 0 || p > 3 {
			t.Fatalf("partition out of range: %d", p)
		}
		prev = p
	}
}

func TestSecondarySortGrouping(t *testing.T) {
	// Composite keys "carrier#date" with GroupKey on the carrier: each
	// reduce group sees one carrier's records in date order — the first
	// value per group is the earliest flight.
	fs := vfs.NewMemFS()
	data := strings.Join([]string{
		"AA\t2008-03-01\t10",
		"DL\t2008-01-15\t5",
		"AA\t2008-01-02\t7",
		"DL\t2008-02-20\t9",
		"AA\t2008-02-11\t3",
	}, "\n") + "\n"
	if err := vfs.WriteFile(fs, "/in/f.tsv", []byte(data)); err != nil {
		t.Fatal(err)
	}
	job := &mapreduce.Job{
		Name: "first-flight",
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFunc(func(ctx *mapreduce.TaskContext, off int64, line string, out mapreduce.Emitter) error {
				f := strings.Split(line, "\t")
				if len(f) != 3 {
					return nil
				}
				// Composite key: natural key + sort field.
				return out.Emit(f[0]+"#"+f[1], mapreduce.Text(f[2]))
			})
		},
		NewReducer: func() mapreduce.Reducer {
			return mapreduce.ReducerFunc(func(ctx *mapreduce.TaskContext, key string, values *mapreduce.Values, out mapreduce.Emitter) error {
				// First value of the group = earliest date, by sort order.
				v, ok, err := values.Next()
				if err != nil || !ok {
					return err
				}
				carrier := strings.SplitN(key, "#", 2)[0]
				date := strings.SplitN(key, "#", 2)[1]
				return out.Emit(carrier, mapreduce.Text(date+"="+v.String()))
			})
		},
		DecodeValue: mapreduce.DecodeText,
		GroupKey: func(key string) string {
			return strings.SplitN(key, "#", 2)[0]
		},
		Partition: func(key string, n int) int {
			return mapreduce.HashPartition(strings.SplitN(key, "#", 2)[0], n)
		},
		NumReducers: 2,
		InputPaths:  []string{"/in"},
		OutputPath:  "/out",
	}
	if _, err := (&serial.Runner{FS: fs}).Run(job); err != nil {
		t.Fatal(err)
	}
	out, err := serial.ReadOutput(fs, "/out")
	if err != nil {
		t.Fatal(err)
	}
	got := parseKV(out)
	if got["AA"] != "2008-01-02=7" {
		t.Fatalf("AA first flight = %q", got["AA"])
	}
	if got["DL"] != "2008-01-15=5" {
		t.Fatalf("DL first flight = %q", got["DL"])
	}
}

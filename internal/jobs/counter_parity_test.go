package jobs_test

import (
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/hdfs"
	"repro/internal/jobs"
	"repro/internal/mapreduce"
	"repro/internal/serial"
	"repro/internal/vfs"
)

// Counters that legitimately exist in only one runtime. Everything else
// must appear in both, so a student comparing a standalone run against a
// cluster run of the same job sees the same vocabulary.
var clusterOnlyCounters = map[string]bool{
	mapreduce.CtrHDFSBytesRead:      true, // no HDFS in standalone mode
	mapreduce.CtrHDFSBytesWritten:   true,
	mapreduce.CtrDataLocalMaps:      true, // no locality without a topology
	mapreduce.CtrRackLocalMaps:      true,
	mapreduce.CtrRemoteMaps:         true,
	mapreduce.CtrFailedMaps:         true, // no fault tolerance standalone
	mapreduce.CtrFailedReduces:      true,
	mapreduce.CtrSpeculativeLaunch:  true,
	mapreduce.CtrSpeculativeWon:     true,
	mapreduce.CtrTaskRetries:        true,
	mapreduce.CtrKilledTaskAttempts: true,
}

// Of those, the ones a healthy no-fault run emits unconditionally — used
// to keep the allowlist honest without requiring injected failures here.
var clusterAlwaysCounters = []string{
	mapreduce.CtrHDFSBytesRead,
	mapreduce.CtrHDFSBytesWritten,
	mapreduce.CtrDataLocalMaps,
}

var serialOnlyCounters = map[string]bool{
	mapreduce.CtrFileBytesRead:    true, // local-filesystem traffic
	mapreduce.CtrFileBytesWritten: true,
}

// TestCounterParitySerialVsCluster runs the same wordcount standalone and
// on the cluster and checks the two counter sets agree modulo the
// runtime-specific allowlists above. This is what makes the counters
// section of a job report teachable: the names mean the same thing in
// assignment 1 (serial) and assignment 3 (cluster).
func TestCounterParitySerialVsCluster(t *testing.T) {
	job := jobs.WordCount("/in", "/out", true)

	local := vfs.NewMemFS()
	if _, _, err := datagen.Text(local, "/in/corpus.txt", datagen.TextOpts{Lines: 400, Seed: 77}); err != nil {
		t.Fatal(err)
	}
	srep, err := (&serial.Runner{FS: local}).Run(job)
	if err != nil {
		t.Fatal(err)
	}

	c, err := core.New(core.Options{Nodes: 6, Seed: 5, HDFS: hdfs.Config{BlockSize: 32 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := datagen.Text(c.FS(), "/in/corpus.txt", datagen.TextOpts{Lines: 400, Seed: 77}); err != nil {
		t.Fatal(err)
	}
	crep, err := c.Run(jobs.WordCount("/in", "/out", true))
	if err != nil {
		t.Fatal(err)
	}

	serialNames := map[string]bool{}
	for _, n := range srep.Counters.Names() {
		serialNames[n] = true
	}
	clusterNames := map[string]bool{}
	for _, n := range crep.Counters.Names() {
		clusterNames[n] = true
	}

	var missing []string
	for n := range clusterNames {
		if !serialNames[n] && !clusterOnlyCounters[n] {
			missing = append(missing, n)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		t.Errorf("cluster counters missing from serial run: %v", missing)
	}
	missing = nil
	for n := range serialNames {
		if !clusterNames[n] && !serialOnlyCounters[n] {
			missing = append(missing, n)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		t.Errorf("serial counters missing from cluster run: %v", missing)
	}

	// The allowlists must stay honest: every entry must actually occur on
	// its side, or it is dead weight hiding a real regression.
	for _, n := range clusterAlwaysCounters {
		if !clusterNames[n] {
			t.Errorf("clusterAlwaysCounters lists %s but the cluster run never emitted it", n)
		}
	}
	for n := range serialOnlyCounters {
		if !serialNames[n] {
			t.Errorf("serialOnlyCounters lists %s but the serial run never emitted it", n)
		}
	}

	// Logical record counters must agree exactly, not just exist.
	for _, n := range []string{
		mapreduce.CtrMapInputRecords, mapreduce.CtrMapOutputRecords,
		mapreduce.CtrReduceInputGroups, mapreduce.CtrReduceOutputRecords,
		mapreduce.CtrShuffleBytes,
	} {
		if s, cv := srep.Counters.Get(n), crep.Counters.Get(n); s != cv {
			t.Errorf("%s: serial=%d cluster=%d", n, s, cv)
		}
	}
}

package jobs

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/mapreduce"
	"repro/internal/vfs"
)

// PageRank as iterated MapReduce — the canonical example of the workload
// class the paper's future-work section says pushed Hadoop beyond MRv1
// (Spark's in-memory iteration). Each iteration is one MapReduce job over
// lines of the form
//
//	node <TAB> rank <TAB> neighbor,neighbor,...
//
// whose output feeds the next iteration through jobcontrol.

// prValue carries either the node's link structure or one rank
// contribution across the shuffle — a tagged custom value class.
type prValue struct {
	isStruct bool
	links    string
	contrib  float64
}

// EncodeValue implements mapreduce.Value.
func (v prValue) EncodeValue() []byte {
	if v.isStruct {
		return append([]byte{'S'}, v.links...)
	}
	b := make([]byte, 9)
	b[0] = 'C'
	binary.BigEndian.PutUint64(b[1:], math.Float64bits(v.contrib))
	return b
}

// String implements mapreduce.Value.
func (v prValue) String() string {
	if v.isStruct {
		return "links:" + v.links
	}
	return fmt.Sprintf("contrib:%g", v.contrib)
}

func decodePRValue(b []byte) (mapreduce.Value, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("jobs: empty pagerank value")
	}
	switch b[0] {
	case 'S':
		return prValue{isStruct: true, links: string(b[1:])}, nil
	case 'C':
		if len(b) != 9 {
			return nil, fmt.Errorf("jobs: contribution wants 9 bytes, got %d", len(b))
		}
		return prValue{contrib: math.Float64frombits(binary.BigEndian.Uint64(b[1:]))}, nil
	default:
		return nil, fmt.Errorf("jobs: unknown pagerank tag %q", b[0])
	}
}

// prMapper redistributes each node's rank over its out-links and forwards
// the link structure.
type prMapper struct{}

func (prMapper) Map(ctx *mapreduce.TaskContext, off int64, line string, out mapreduce.Emitter) error {
	node, rank, links, ok := parsePRLine(line)
	if !ok {
		return nil
	}
	if err := out.Emit(node, prValue{isStruct: true, links: links}); err != nil {
		return err
	}
	nbrs := splitLinks(links)
	if len(nbrs) == 0 {
		return nil
	}
	share := rank / float64(len(nbrs))
	for _, nbr := range nbrs {
		if err := out.Emit(nbr, prValue{contrib: share}); err != nil {
			return err
		}
	}
	return nil
}

func parsePRLine(line string) (node string, rank float64, links string, ok bool) {
	f := strings.SplitN(line, "\t", 3)
	if len(f) != 3 {
		return "", 0, "", false
	}
	r, err := strconv.ParseFloat(f[1], 64)
	if err != nil {
		return "", 0, "", false
	}
	return f[0], r, f[2], true
}

func splitLinks(links string) []string {
	if links == "" {
		return nil
	}
	return strings.Split(links, ",")
}

// prReducer applies the PageRank update and re-emits the node line.
type prReducer struct {
	n       float64
	damping float64
}

func (r *prReducer) Setup(ctx *mapreduce.TaskContext) error {
	n, err := strconv.ParseFloat(ctx.Config["pagerank.n"], 64)
	if err != nil || n <= 0 {
		return fmt.Errorf("jobs: bad pagerank.n %q", ctx.Config["pagerank.n"])
	}
	d, err := strconv.ParseFloat(ctx.Config["pagerank.damping"], 64)
	if err != nil || d < 0 || d > 1 {
		return fmt.Errorf("jobs: bad pagerank.damping %q", ctx.Config["pagerank.damping"])
	}
	r.n, r.damping = n, d
	return nil
}

// prLine is the output value: rank TAB links, so the reducer's text
// output line parses as next-iteration input.
type prLine struct {
	rank  float64
	links string
}

func (v prLine) EncodeValue() []byte { return []byte(v.String()) }
func (v prLine) String() string      { return fmt.Sprintf("%.17g\t%s", v.rank, v.links) }

func (r *prReducer) Reduce(ctx *mapreduce.TaskContext, key string, values *mapreduce.Values, out mapreduce.Emitter) error {
	var links string
	var sum float64
	if err := values.Each(func(v mapreduce.Value) error {
		pv := v.(prValue)
		if pv.isStruct {
			links = pv.links
		} else {
			sum += pv.contrib
		}
		return nil
	}); err != nil {
		return err
	}
	rank := (1-r.damping)/r.n + r.damping*sum
	return out.Emit(key, prLine{rank: rank, links: links})
}

// PageRankIteration builds one iteration job.
func PageRankIteration(input, output string, nodes int, damping float64) *mapreduce.Job {
	return &mapreduce.Job{
		Name:        "pagerank-iter",
		NewMapper:   func() mapreduce.Mapper { return prMapper{} },
		NewReducer:  func() mapreduce.Reducer { return &prReducer{} },
		DecodeValue: decodePRValue,
		InputPaths:  []string{input},
		OutputPath:  output,
		Config: map[string]string{
			"pagerank.n":       strconv.Itoa(nodes),
			"pagerank.damping": strconv.FormatFloat(damping, 'g', -1, 64),
		},
	}
}

// PageRankPipeline builds the iteration chain: graph -> tmp1 -> tmp2 ...
// -> output, one MapReduce job per iteration (the disk-churning pattern
// in-memory engines later removed).
func PageRankPipeline(input, workDir, output string, nodes, iterations int, damping float64) []*mapreduce.Job {
	var out []*mapreduce.Job
	in := input
	for i := 0; i < iterations; i++ {
		dst := vfs.Join(workDir, fmt.Sprintf("iter-%03d", i))
		if i == iterations-1 {
			dst = output
		}
		out = append(out, PageRankIteration(in, dst, nodes, damping))
		in = dst
	}
	return out
}

// PageRankPipelineSeq builds the same iteration chain but hands the
// intermediate outputs between jobs as block-compressed SequenceFiles
// instead of text: each reducer writes (node, "rank<TAB>links") records,
// and the next iteration's input reader renders them back to the exact
// "node<TAB>rank<TAB>links" lines the mapper parses — same ranks to the
// last bit, smaller and splittable spill between jobs. The final output
// stays text so ParsePageRanks keeps working. codec names the block
// codec ("gzip", "lzs", or "" for uncompressed blocks).
func PageRankPipelineSeq(input, workDir, output string, nodes, iterations int, damping float64, codec string) []*mapreduce.Job {
	chain := PageRankPipeline(input, workDir, output, nodes, iterations, damping)
	for _, j := range chain[:len(chain)-1] {
		j.OutputFormat = mapreduce.OutputFormatSeq
		j.OutputCodec = codec
	}
	return chain
}

// ParsePageRanks reads job output ("node\trank\tlinks" lines) into a map.
func ParsePageRanks(output string) map[int]float64 {
	ranks := map[int]float64{}
	for _, line := range strings.Split(strings.TrimSpace(output), "\n") {
		node, rank, _, ok := parsePRLine(line)
		if !ok {
			continue
		}
		if id, err := strconv.Atoi(node); err == nil {
			ranks[id] = rank
		}
	}
	return ranks
}

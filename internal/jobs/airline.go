package jobs

import (
	"strconv"
	"strings"

	"repro/internal/mapreduce"
)

// parseAirlineRow extracts (carrier, arrival delay) from one CSV row of
// the on-time database; ok is false for the header and cancelled flights.
// The columns are cut with IndexByte instead of strings.Split: the mapper
// runs once per input row, and the Split version allocated a 13-element
// field slice per call just to read columns 5 and 10.
func parseAirlineRow(line string) (carrier string, delay float64, ok bool) {
	if strings.HasPrefix(line, "Year,") || line == "" {
		return "", 0, false
	}
	rest := line
	for col := 0; ; col++ {
		i := strings.IndexByte(rest, ',')
		field := rest
		if i >= 0 {
			field = rest[:i]
			rest = rest[i+1:]
		}
		switch col {
		case 5:
			carrier = field
		case 10:
			d, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return "", 0, false // "NA" for cancelled flights
			}
			return carrier, d, true
		}
		if i < 0 {
			return "", 0, false // fewer than 11 columns
		}
	}
}

// --- variant 1: plain ---

// airlinePlainMapper emits every delay observation individually: simple,
// correct, and maximally chatty on the network.
type airlinePlainMapper struct{}

func (airlinePlainMapper) Map(ctx *mapreduce.TaskContext, off int64, line string, out mapreduce.Emitter) error {
	if carrier, d, ok := parseAirlineRow(line); ok {
		return out.Emit(carrier, mapreduce.Float64(d))
	}
	return nil
}

// airlineAvgReducer averages raw Float64 delays.
type airlineAvgReducer struct{}

func (airlineAvgReducer) Reduce(ctx *mapreduce.TaskContext, key string, values *mapreduce.Values, out mapreduce.Emitter) error {
	var sc SumCount
	if err := values.Each(func(v mapreduce.Value) error {
		sc.Add(SumCount{Sum: float64(v.(mapreduce.Float64)), Count: 1})
		return nil
	}); err != nil {
		return err
	}
	return out.Emit(key, mapreduce.Float64(sc.Avg()))
}

// AirlineAvgDelayPlain builds variant 1 of the lab's three designs: a
// standard MapReduce program whose "mappers emit the airline code and the
// delay time as a key-value pair".
func AirlineAvgDelayPlain(input, output string) *mapreduce.Job {
	return &mapreduce.Job{
		Name:        "airline-avg-plain",
		NewMapper:   func() mapreduce.Mapper { return airlinePlainMapper{} },
		NewReducer:  func() mapreduce.Reducer { return airlineAvgReducer{} },
		DecodeValue: mapreduce.DecodeFloat64,
		InputPaths:  []string{input},
		OutputPath:  output,
	}
}

// --- variant 2: combiner with custom value class ---

// airlineSCMapper emits SumCount partials so a combiner can fold them.
type airlineSCMapper struct{}

func (airlineSCMapper) Map(ctx *mapreduce.TaskContext, off int64, line string, out mapreduce.Emitter) error {
	if carrier, d, ok := parseAirlineRow(line); ok {
		return out.Emit(carrier, SumCount{Sum: d, Count: 1})
	}
	return nil
}

// sumCountCombiner folds SumCount partials; usable both as combiner and
// as final reducer building block.
type sumCountCombiner struct{}

func (sumCountCombiner) Reduce(ctx *mapreduce.TaskContext, key string, values *mapreduce.Values, out mapreduce.Emitter) error {
	var sc SumCount
	if err := values.Each(func(v mapreduce.Value) error {
		sc.Add(v.(SumCount))
		return nil
	}); err != nil {
		return err
	}
	return out.Emit(key, sc)
}

// sumCountAvgReducer folds SumCounts and emits the final average.
type sumCountAvgReducer struct{}

func (sumCountAvgReducer) Reduce(ctx *mapreduce.TaskContext, key string, values *mapreduce.Values, out mapreduce.Emitter) error {
	var sc SumCount
	if err := values.Each(func(v mapreduce.Value) error {
		sc.Add(v.(SumCount))
		return nil
	}); err != nil {
		return err
	}
	return out.Emit(key, mapreduce.Float64(sc.Avg()))
}

func decodeSumCountValue(b []byte) (mapreduce.Value, error) {
	sc, err := DecodeSumCount(b)
	if err != nil {
		return nil, err
	}
	return sc, nil
}

// AirlineAvgDelayCombiner builds variant 2: "implements a combiner, which
// also requires the implementation of a customized Hadoop Value class".
func AirlineAvgDelayCombiner(input, output string) *mapreduce.Job {
	return &mapreduce.Job{
		Name:        "airline-avg-combiner",
		NewMapper:   func() mapreduce.Mapper { return airlineSCMapper{} },
		NewReducer:  func() mapreduce.Reducer { return sumCountAvgReducer{} },
		NewCombiner: func() mapreduce.Reducer { return sumCountCombiner{} },
		DecodeValue: decodeSumCountValue,
		InputPaths:  []string{input},
		OutputPath:  output,
	}
}

// --- variant 3: in-mapper combining ---

// airlineIMCMapper aggregates per-carrier partials in task memory and
// emits them from Close — "utilizes global memory on each node to
// implement a combining mechanism without implementing a combiner class".
// The framework meters its memory high-water mark so the memory/network
// trade-off is measurable.
type airlineIMCMapper struct {
	agg map[string]*SumCount
}

func (m *airlineIMCMapper) Setup(ctx *mapreduce.TaskContext) error {
	m.agg = make(map[string]*SumCount)
	return nil
}

func (m *airlineIMCMapper) Map(ctx *mapreduce.TaskContext, off int64, line string, out mapreduce.Emitter) error {
	carrier, d, ok := parseAirlineRow(line)
	if !ok {
		return nil
	}
	sc, exists := m.agg[carrier]
	if !exists {
		sc = &SumCount{}
		m.agg[carrier] = sc
		// A map entry: key string + 16-byte aggregate + bucket overhead.
		ctx.ObserveMemory(int64(len(carrier)) + 16 + 48)
	}
	sc.Add(SumCount{Sum: d, Count: 1})
	return nil
}

func (m *airlineIMCMapper) Close(ctx *mapreduce.TaskContext, out mapreduce.Emitter) error {
	// Deterministic emission order (sorted keys).
	keys := make([]string, 0, len(m.agg))
	for k := range m.agg {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		if err := out.Emit(k, *m.agg[k]); err != nil {
			return err
		}
	}
	return nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// AirlineAvgDelayInMapper builds variant 3: in-mapper combining.
func AirlineAvgDelayInMapper(input, output string) *mapreduce.Job {
	return &mapreduce.Job{
		Name:        "airline-avg-inmapper",
		NewMapper:   func() mapreduce.Mapper { return &airlineIMCMapper{} },
		NewReducer:  func() mapreduce.Reducer { return sumCountAvgReducer{} },
		DecodeValue: decodeSumCountValue,
		InputPaths:  []string{input},
		OutputPath:  output,
	}
}

package jobs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/mapreduce"
)

// parseRating extracts (user, movie, rating) from a MovieLens
// "UserID::MovieID::Rating::Timestamp" line.
func parseRating(line string) (user, movie int, rating float64, ok bool) {
	f := strings.Split(line, "::")
	if len(f) != 4 {
		return 0, 0, 0, false
	}
	u, err1 := strconv.Atoi(f[0])
	m, err2 := strconv.Atoi(f[1])
	r, err3 := strconv.ParseFloat(f[2], 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return 0, 0, 0, false
	}
	return u, m, r, true
}

// parseGenreTable builds movieID → genres from movies.dat contents.
func parseGenreTable(data []byte) map[int][]string {
	table := map[int][]string{}
	for _, line := range strings.Split(string(data), "\n") {
		f := strings.Split(line, "::")
		if len(f) != 3 {
			continue
		}
		id, err := strconv.Atoi(f[0])
		if err != nil {
			continue
		}
		table[id] = strings.Split(f[2], "|")
	}
	return table
}

// lookupGenresInRaw scans raw movies.dat bytes for one movie's genres —
// the naive per-record access pattern.
func lookupGenresInRaw(data []byte, movie int) []string {
	prefix := strconv.Itoa(movie) + "::"
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, prefix) {
			f := strings.Split(line, "::")
			if len(f) == 3 {
				return strings.Split(f[2], "|")
			}
		}
	}
	return nil
}

// cachedGenreMapper reads movies.dat once in Setup and keeps the table in
// memory — "an alternative and more efficient approach is to implement a
// Java object that reads the additional file once and stores the content
// in memory".
type cachedGenreMapper struct {
	sideFile string
	genres   map[int][]string
}

func (m *cachedGenreMapper) Setup(ctx *mapreduce.TaskContext) error {
	data, err := ctx.ReadSideFile(m.sideFile)
	if err != nil {
		return err
	}
	m.genres = parseGenreTable(data)
	var mem int64
	for _, gs := range m.genres {
		mem += 64
		for _, g := range gs {
			mem += int64(len(g)) + 16
		}
	}
	ctx.ObserveMemory(mem)
	return nil
}

func (m *cachedGenreMapper) Map(ctx *mapreduce.TaskContext, off int64, line string, out mapreduce.Emitter) error {
	_, movie, rating, ok := parseRating(line)
	if !ok {
		return nil
	}
	for _, g := range m.genres[movie] {
		if err := out.Emit(g, NewStats(rating)); err != nil {
			return err
		}
	}
	return nil
}

// naiveGenreMapper re-reads movies.dat inside every Map call — "the
// easiest, but inefficient approach is to read the additional file from
// inside each mapper". The side-file counters expose the cost.
type naiveGenreMapper struct {
	sideFile string
}

func (m *naiveGenreMapper) Map(ctx *mapreduce.TaskContext, off int64, line string, out mapreduce.Emitter) error {
	_, movie, rating, ok := parseRating(line)
	if !ok {
		return nil
	}
	data, err := ctx.ReadSideFile(m.sideFile)
	if err != nil {
		return err
	}
	for _, g := range lookupGenresInRaw(data, movie) {
		if err := out.Emit(g, NewStats(rating)); err != nil {
			return err
		}
	}
	return nil
}

// statsCombiner folds Stats partials (combiner and reducer helper).
type statsCombiner struct{}

func (statsCombiner) Reduce(ctx *mapreduce.TaskContext, key string, values *mapreduce.Values, out mapreduce.Emitter) error {
	var agg Stats
	if err := values.Each(func(v mapreduce.Value) error {
		agg.Add(v.(Stats))
		return nil
	}); err != nil {
		return err
	}
	return out.Emit(key, agg)
}

func decodeStatsValue(b []byte) (mapreduce.Value, error) {
	s, err := DecodeStats(b)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// MovieGenreStats builds the first part of the Spring 2013 assignment 1:
// descriptive statistics (count/avg/min/max) of ratings per genre, with
// the movie→genre join done through the movies.dat side file. cached
// selects the efficient access pattern; the naive pattern can run one
// order of magnitude slower.
func MovieGenreStats(ratingsInput, moviesSide, output string, cached bool) *mapreduce.Job {
	name := "movie-genre-stats-naive"
	newMapper := func() mapreduce.Mapper { return &naiveGenreMapper{sideFile: moviesSide} }
	if cached {
		name = "movie-genre-stats-cached"
		newMapper = func() mapreduce.Mapper { return &cachedGenreMapper{sideFile: moviesSide} }
	}
	return &mapreduce.Job{
		Name:        name,
		NewMapper:   newMapper,
		NewReducer:  func() mapreduce.Reducer { return statsCombiner{} },
		NewCombiner: func() mapreduce.Reducer { return statsCombiner{} },
		DecodeValue: decodeStatsValue,
		InputPaths:  []string{ratingsInput},
		OutputPath:  output,
		SideFiles:   []string{moviesSide},
	}
}

// activeUserMapper emits (userID, genres-of-rated-movie) using the cached
// side table.
type activeUserMapper struct {
	cachedGenreMapper
}

func (m *activeUserMapper) Map(ctx *mapreduce.TaskContext, off int64, line string, out mapreduce.Emitter) error {
	user, movie, _, ok := parseRating(line)
	if !ok {
		return nil
	}
	gs := m.genres[movie]
	return out.Emit(fmt.Sprintf("%09d", user), mapreduce.Text(strings.Join(gs, "|")))
}

// mostActiveUserReducer counts each user's ratings and genre frequencies,
// tracking the global winner; the answer — a custom multi-field output
// value — is emitted from Close. Requires a single reducer.
type mostActiveUserReducer struct {
	bestUser  string
	bestStats UserStats
}

func (r *mostActiveUserReducer) Reduce(ctx *mapreduce.TaskContext, key string, values *mapreduce.Values, out mapreduce.Emitter) error {
	var count int64
	genreFreq := map[string]int64{}
	if err := values.Each(func(v mapreduce.Value) error {
		count++
		for _, g := range strings.Split(string(v.(mapreduce.Text)), "|") {
			if g != "" {
				genreFreq[g]++
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if count > r.bestStats.Ratings || (count == r.bestStats.Ratings && key < r.bestUser) {
		var fav string
		var favN int64 = -1
		genres := make([]string, 0, len(genreFreq))
		for g := range genreFreq {
			genres = append(genres, g)
		}
		sort.Strings(genres)
		for _, g := range genres {
			if genreFreq[g] > favN {
				fav, favN = g, genreFreq[g]
			}
		}
		r.bestUser = key
		r.bestStats = UserStats{Ratings: count, FavGenre: fav}
	}
	return nil
}

func (r *mostActiveUserReducer) Close(ctx *mapreduce.TaskContext, out mapreduce.Emitter) error {
	if r.bestStats.Ratings == 0 {
		return nil
	}
	user := strings.TrimLeft(r.bestUser, "0")
	return out.Emit(user, r.bestStats)
}

// MostActiveUser builds the second part of assignment 1: "identify the
// user that provides the most ratings and that user's favorite movie
// genre" — one MapReduce program with a customized output value class.
func MostActiveUser(ratingsInput, moviesSide, output string) *mapreduce.Job {
	return &mapreduce.Job{
		Name: "most-active-user",
		NewMapper: func() mapreduce.Mapper {
			return &activeUserMapper{cachedGenreMapper{sideFile: moviesSide}}
		},
		NewReducer: func() mapreduce.Reducer { return &mostActiveUserReducer{} },
		DecodeValue: func(b []byte) (mapreduce.Value, error) {
			return mapreduce.Text(b), nil
		},
		NumReducers: 1,
		InputPaths:  []string{ratingsInput},
		OutputPath:  output,
		SideFiles:   []string{moviesSide},
	}
}

package jobs

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mapreduce"
	"repro/internal/vfs"
)

// TeraSort: the classic Hadoop total-order sort benchmark. A sampled
// range partitioner (Hadoop's TotalOrderPartitioner) routes key ranges to
// reducers so that the concatenation of part-r-00000..N is globally
// sorted — the canonical exercise of the Partitioner API beyond hashing.

// teraMapper splits "key<TAB>payload" lines.
type teraMapper struct{}

func (teraMapper) Map(ctx *mapreduce.TaskContext, off int64, line string, out mapreduce.Emitter) error {
	key, payload, ok := strings.Cut(line, "\t")
	if !ok {
		return nil
	}
	return out.Emit(key, mapreduce.Text(payload))
}

// teraReducer is the identity: emit every record under its key. Values
// for equal keys arrive in deterministic (map-task) order.
type teraReducer struct{}

func (teraReducer) Reduce(ctx *mapreduce.TaskContext, key string, values *mapreduce.Values, out mapreduce.Emitter) error {
	return values.Each(func(v mapreduce.Value) error {
		return out.Emit(key, v)
	})
}

// SampleSplitPoints reads up to maxSamples keys from the input and
// returns reducers-1 quantile split points — the job-client sampling pass
// Hadoop's TeraSort runs before submission.
func SampleSplitPoints(fs vfs.FileSystem, input string, reducers, maxSamples int) ([]string, error) {
	if reducers < 2 {
		return nil, nil
	}
	if maxSamples <= 0 {
		maxSamples = 10000
	}
	var keys []string
	err := vfs.Walk(fs, input, func(fi vfs.FileInfo) error {
		if len(keys) >= maxSamples {
			return nil
		}
		data, err := vfs.ReadFile(fs, fi.Path)
		if err != nil {
			return err
		}
		for _, line := range strings.Split(string(data), "\n") {
			if len(keys) >= maxSamples {
				break
			}
			if key, _, ok := strings.Cut(line, "\t"); ok {
				keys = append(keys, key)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("jobs: no keys to sample under %s", input)
	}
	sort.Strings(keys)
	splits := make([]string, 0, reducers-1)
	for i := 1; i < reducers; i++ {
		splits = append(splits, keys[i*len(keys)/reducers])
	}
	return splits, nil
}

// RangePartition builds a PartitionFunc over sorted split points: keys
// below splits[0] go to reducer 0, and so on.
func RangePartition(splits []string) mapreduce.PartitionFunc {
	return func(key string, n int) int {
		p := sort.SearchStrings(splits, key)
		// SearchStrings puts key == split into the left bucket's boundary;
		// either side is correct as long as it is consistent.
		if p >= n {
			p = n - 1
		}
		return p
	}
}

// TeraSort builds the total-order sort job. It samples the input through
// fs at build time to derive the reducer split points.
func TeraSort(fs vfs.FileSystem, input, output string, reducers int) (*mapreduce.Job, error) {
	if reducers < 1 {
		reducers = 1
	}
	splits, err := SampleSplitPoints(fs, input, reducers, 10000)
	if err != nil {
		return nil, err
	}
	return &mapreduce.Job{
		Name:        "terasort",
		NewMapper:   func() mapreduce.Mapper { return teraMapper{} },
		NewReducer:  func() mapreduce.Reducer { return teraReducer{} },
		DecodeValue: mapreduce.DecodeText,
		NumReducers: reducers,
		Partition:   RangePartition(splits),
		InputPaths:  []string{input},
		OutputPath:  output,
	}, nil
}

// ValidateSorted checks TeraSort output (already concatenated in part
// order): every line's key must be >= its predecessor's. Returns the
// line count.
func ValidateSorted(output string) (int, error) {
	prev := ""
	n := 0
	for _, line := range strings.Split(strings.TrimSpace(output), "\n") {
		if line == "" {
			continue
		}
		key, _, ok := strings.Cut(line, "\t")
		if !ok {
			return n, fmt.Errorf("jobs: malformed output line %q", line)
		}
		if key < prev {
			return n, fmt.Errorf("jobs: order violation at line %d: %q < %q", n, key, prev)
		}
		prev = key
		n++
	}
	return n, nil
}

package jobs

import (
	"strconv"
	"strings"

	"repro/internal/mapreduce"
)

// albumMapper joins each rating to its album through the cached songs.tsv
// side table and emits SumCount partials per album.
type albumMapper struct {
	sideFile  string
	songAlbum map[string]string
}

func (m *albumMapper) Setup(ctx *mapreduce.TaskContext) error {
	data, err := ctx.ReadSideFile(m.sideFile)
	if err != nil {
		return err
	}
	m.songAlbum = map[string]string{}
	var mem int64
	for _, line := range strings.Split(string(data), "\n") {
		f := strings.Split(line, "\t")
		if len(f) >= 2 {
			m.songAlbum[f[0]] = f[1]
			mem += int64(len(f[0])+len(f[1])) + 48
		}
	}
	ctx.ObserveMemory(mem)
	return nil
}

func (m *albumMapper) Map(ctx *mapreduce.TaskContext, off int64, line string, out mapreduce.Emitter) error {
	f := strings.Split(line, "\t")
	if len(f) != 3 {
		return nil
	}
	rating, err := strconv.ParseFloat(f[2], 64)
	if err != nil {
		return nil
	}
	album, ok := m.songAlbum[f[1]]
	if !ok {
		return nil
	}
	return out.Emit(album, SumCount{Sum: rating, Count: 1})
}

// topAlbumReducer computes each album's average and keeps the best; the
// winner is emitted from Close. Requires a single reducer.
type topAlbumReducer struct {
	bestAlbum string
	bestAvg   float64
	bestCount int64
	seen      bool
	// MinRatings guards against an album with one lucky rating winning.
	MinRatings int64
}

func (r *topAlbumReducer) Reduce(ctx *mapreduce.TaskContext, key string, values *mapreduce.Values, out mapreduce.Emitter) error {
	var sc SumCount
	if err := values.Each(func(v mapreduce.Value) error {
		sc.Add(v.(SumCount))
		return nil
	}); err != nil {
		return err
	}
	if sc.Count < r.MinRatings {
		return nil
	}
	avg := sc.Avg()
	if !r.seen || avg > r.bestAvg || (avg == r.bestAvg && key < r.bestAlbum) {
		r.bestAlbum, r.bestAvg, r.bestCount = key, avg, sc.Count
		r.seen = true
	}
	return nil
}

func (r *topAlbumReducer) Close(ctx *mapreduce.TaskContext, out mapreduce.Emitter) error {
	if !r.seen {
		return nil
	}
	return out.Emit(r.bestAlbum, SumCount{Sum: r.bestAvg * float64(r.bestCount), Count: r.bestCount})
}

// TopAlbum builds the second part of assignment 2: "analyze the Yahoo
// song database and identify the album that has the highest average
// rating", joining ratings to albums through the songs side table.
func TopAlbum(ratingsInput, songsSide, output string) *mapreduce.Job {
	return &mapreduce.Job{
		Name: "top-album",
		NewMapper: func() mapreduce.Mapper {
			return &albumMapper{sideFile: songsSide}
		},
		NewReducer:  func() mapreduce.Reducer { return &topAlbumReducer{} },
		NewCombiner: func() mapreduce.Reducer { return sumCountCombiner{} },
		DecodeValue: decodeSumCountValue,
		NumReducers: 1,
		InputPaths:  []string{ratingsInput},
		OutputPath:  output,
		SideFiles:   []string{songsSide},
	}
}

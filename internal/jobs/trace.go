package jobs

import (
	"strconv"
	"strings"

	"repro/internal/mapreduce"
)

// traceSubmitMapper emits ("jobID#taskIndex", 1) for every SUBMIT event
// in the Google cluster trace.
type traceSubmitMapper struct{}

func (traceSubmitMapper) Map(ctx *mapreduce.TaskContext, off int64, line string, out mapreduce.Emitter) error {
	f := strings.Split(line, ",")
	if len(f) != 5 || f[4] != "0" {
		return nil
	}
	return out.Emit(f[1]+"#"+f[2], mapreduce.Int64(1))
}

// maxResubReducer turns per-task submit counts into per-job resubmission
// totals and tracks the maximum, emitted from Close. One reducer required.
type maxResubReducer struct {
	perJob map[string]int64
}

func (r *maxResubReducer) Setup(ctx *mapreduce.TaskContext) error {
	r.perJob = map[string]int64{}
	return nil
}

func (r *maxResubReducer) Reduce(ctx *mapreduce.TaskContext, key string, values *mapreduce.Values, out mapreduce.Emitter) error {
	var submits int64
	if err := values.Each(func(v mapreduce.Value) error {
		submits += int64(v.(mapreduce.Int64))
		return nil
	}); err != nil {
		return err
	}
	job := strings.SplitN(key, "#", 2)[0]
	r.perJob[job] += submits - 1 // first submit is not a resubmission
	return nil
}

func (r *maxResubReducer) Close(ctx *mapreduce.TaskContext, out mapreduce.Emitter) error {
	var bestJob string
	var bestN int64 = -1
	jobs := make([]string, 0, len(r.perJob))
	for j := range r.perJob {
		jobs = append(jobs, j)
	}
	sortStrings(jobs)
	for _, j := range jobs {
		if r.perJob[j] > bestN {
			bestJob, bestN = j, r.perJob[j]
		}
	}
	if bestJob == "" {
		return nil
	}
	return out.Emit(bestJob, mapreduce.Int64(bestN))
}

// TraceMaxResubmissions builds the Fall 2012 assignment 2: "analyze ...
// a Google Data Center's system log and find the computing job with
// largest number of task resubmissions".
func TraceMaxResubmissions(input, output string) *mapreduce.Job {
	return &mapreduce.Job{
		Name:        "trace-max-resubmissions",
		NewMapper:   func() mapreduce.Mapper { return traceSubmitMapper{} },
		NewReducer:  func() mapreduce.Reducer { return &maxResubReducer{} },
		NewCombiner: func() mapreduce.Reducer { return sumReducer{} },
		DecodeValue: mapreduce.DecodeInt64,
		NumReducers: 1,
		InputPaths:  []string{input},
		OutputPath:  output,
	}
}

// traceStage2Mapper parses stage-1 output lines ("jobID#task<TAB>submits")
// and emits (jobID, submits-1).
type traceStage2Mapper struct{}

func (traceStage2Mapper) Map(ctx *mapreduce.TaskContext, off int64, line string, out mapreduce.Emitter) error {
	f := strings.Split(line, "\t")
	if len(f) != 2 {
		return nil
	}
	job := strings.SplitN(f[0], "#", 2)[0]
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil || n <= 0 {
		return nil
	}
	return out.Emit(job, mapreduce.Int64(n-1))
}

// maxValueReducer sums each key's values and emits only the key with the
// largest total, from Close. One reducer required.
type maxValueReducer struct {
	bestKey string
	bestSum int64
	seen    bool
}

func (r *maxValueReducer) Reduce(ctx *mapreduce.TaskContext, key string, values *mapreduce.Values, out mapreduce.Emitter) error {
	var sum int64
	if err := values.Each(func(v mapreduce.Value) error {
		sum += int64(v.(mapreduce.Int64))
		return nil
	}); err != nil {
		return err
	}
	if !r.seen || sum > r.bestSum || (sum == r.bestSum && key < r.bestKey) {
		r.bestKey, r.bestSum, r.seen = key, sum, true
	}
	return nil
}

func (r *maxValueReducer) Close(ctx *mapreduce.TaskContext, out mapreduce.Emitter) error {
	if !r.seen {
		return nil
	}
	return out.Emit(r.bestKey, mapreduce.Int64(r.bestSum))
}

// TraceMaxResubmissionsPipeline is the scalable two-stage version of the
// assignment, suitable for many reducers in stage 1: stage 1 counts
// SUBMIT events per (job, task); stage 2 aggregates resubmissions per job
// and selects the maximum. Run the returned jobs in order (jobcontrol).
func TraceMaxResubmissionsPipeline(input, tmp, output string, stage1Reducers int) []*mapreduce.Job {
	stage1 := &mapreduce.Job{
		Name:        "trace-submits-per-task",
		NewMapper:   func() mapreduce.Mapper { return traceSubmitMapper{} },
		NewReducer:  func() mapreduce.Reducer { return sumReducer{} },
		NewCombiner: func() mapreduce.Reducer { return sumReducer{} },
		DecodeValue: mapreduce.DecodeInt64,
		NumReducers: stage1Reducers,
		InputPaths:  []string{input},
		OutputPath:  tmp,
	}
	stage2 := &mapreduce.Job{
		Name:        "trace-max-resubmissions-stage2",
		NewMapper:   func() mapreduce.Mapper { return traceStage2Mapper{} },
		NewReducer:  func() mapreduce.Reducer { return &maxValueReducer{} },
		NewCombiner: func() mapreduce.Reducer { return sumReducer{} },
		DecodeValue: mapreduce.DecodeInt64,
		NumReducers: 1,
		InputPaths:  []string{tmp},
		OutputPath:  output,
	}
	return []*mapreduce.Job{stage1, stage2}
}

// ParseTraceAnswer extracts (jobID, resubmissions) from the job's single
// output line, a convenience for examples and tests.
func ParseTraceAnswer(output string) (jobID int64, resub int64, ok bool) {
	line := strings.TrimSpace(output)
	f := strings.Split(line, "\t")
	if len(f) != 2 {
		return 0, 0, false
	}
	j, err1 := strconv.ParseInt(f[0], 10, 64)
	n, err2 := strconv.ParseInt(f[1], 10, 64)
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	return j, n, true
}

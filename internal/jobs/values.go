// Package jobs implements every example and assignment program the paper
// describes, as reusable Jobs that run unchanged on the standalone runner
// and the distributed cluster:
//
//   - WordCount, WordCount-with-combiner, and the "word with the highest
//     count" variant (Fall 2012 assignment 1);
//   - three average-airline-delay implementations — plain, combiner with
//     a custom value class, and in-mapper combining — the algorithmic
//     choices of Lin's "Monoidify!" lecture example;
//   - movie-genre statistics with a side-data join, in both the naive
//     (re-read the side file per record) and cached (read once in Setup)
//     forms whose order-of-magnitude runtime gap the assignment teaches;
//   - the most-active-user / favourite-genre job with a custom output
//     value class;
//   - the highest-average-album job over the music dataset (assignment 2);
//   - the Google-trace max-task-resubmissions job (Fall 2012 assignment 2).
package jobs

import (
	"encoding/binary"
	"fmt"
	"math"
)

// SumCount is the custom Writable value class of the airline assignment:
// a partial sum and count that make averaging associative, so it can flow
// through a combiner.
type SumCount struct {
	Sum   float64
	Count int64
}

// Add folds another partial aggregate into s.
func (s *SumCount) Add(o SumCount) {
	s.Sum += o.Sum
	s.Count += o.Count
}

// Avg returns the mean represented by the aggregate.
func (s SumCount) Avg() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// EncodeValue implements mapreduce.Value (16 bytes).
func (s SumCount) EncodeValue() []byte {
	var b [16]byte
	binary.BigEndian.PutUint64(b[0:], math.Float64bits(s.Sum))
	binary.BigEndian.PutUint64(b[8:], uint64(s.Count))
	return b[:]
}

// String implements mapreduce.Value.
func (s SumCount) String() string {
	return fmt.Sprintf("sum=%g count=%d avg=%.4f", s.Sum, s.Count, s.Avg())
}

// DecodeSumCount decodes a SumCount.
func DecodeSumCount(b []byte) (SumCount, error) {
	if len(b) != 16 {
		return SumCount{}, fmt.Errorf("jobs: SumCount wants 16 bytes, got %d", len(b))
	}
	return SumCount{
		Sum:   math.Float64frombits(binary.BigEndian.Uint64(b[0:])),
		Count: int64(binary.BigEndian.Uint64(b[8:])),
	}, nil
}

// Stats is a richer custom value for the movie assignment's descriptive
// statistics: sum, count, min and max in one Writable.
type Stats struct {
	Sum   float64
	Count int64
	Min   float64
	Max   float64
}

// NewStats returns the aggregate of a single observation.
func NewStats(v float64) Stats {
	return Stats{Sum: v, Count: 1, Min: v, Max: v}
}

// Add folds another aggregate into s.
func (s *Stats) Add(o Stats) {
	if o.Count == 0 {
		return
	}
	if s.Count == 0 {
		*s = o
		return
	}
	s.Sum += o.Sum
	s.Count += o.Count
	if o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Avg returns the mean.
func (s Stats) Avg() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// EncodeValue implements mapreduce.Value (32 bytes).
func (s Stats) EncodeValue() []byte {
	var b [32]byte
	binary.BigEndian.PutUint64(b[0:], math.Float64bits(s.Sum))
	binary.BigEndian.PutUint64(b[8:], uint64(s.Count))
	binary.BigEndian.PutUint64(b[16:], math.Float64bits(s.Min))
	binary.BigEndian.PutUint64(b[24:], math.Float64bits(s.Max))
	return b[:]
}

// String implements mapreduce.Value.
func (s Stats) String() string {
	return fmt.Sprintf("count=%d avg=%.4f min=%g max=%g", s.Count, s.Avg(), s.Min, s.Max)
}

// DecodeStats decodes a Stats value.
func DecodeStats(b []byte) (Stats, error) {
	if len(b) != 32 {
		return Stats{}, fmt.Errorf("jobs: Stats wants 32 bytes, got %d", len(b))
	}
	return Stats{
		Sum:   math.Float64frombits(binary.BigEndian.Uint64(b[0:])),
		Count: int64(binary.BigEndian.Uint64(b[8:])),
		Min:   math.Float64frombits(binary.BigEndian.Uint64(b[16:])),
		Max:   math.Float64frombits(binary.BigEndian.Uint64(b[24:])),
	}, nil
}

// UserStats is the custom output value class of the most-active-user
// question: "the information needed in the reduce step requires several
// values for each key".
type UserStats struct {
	Ratings  int64
	FavGenre string
}

// EncodeValue implements mapreduce.Value.
func (u UserStats) EncodeValue() []byte {
	b := make([]byte, 8+len(u.FavGenre))
	binary.BigEndian.PutUint64(b, uint64(u.Ratings))
	copy(b[8:], u.FavGenre)
	return b
}

// String implements mapreduce.Value.
func (u UserStats) String() string {
	return fmt.Sprintf("ratings=%d favorite=%s", u.Ratings, u.FavGenre)
}

// DecodeUserStats decodes a UserStats value.
func DecodeUserStats(b []byte) (UserStats, error) {
	if len(b) < 8 {
		return UserStats{}, fmt.Errorf("jobs: UserStats wants >=8 bytes, got %d", len(b))
	}
	return UserStats{
		Ratings:  int64(binary.BigEndian.Uint64(b)),
		FavGenre: string(b[8:]),
	}, nil
}

package jobs_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/hdfs"
	"repro/internal/iofmt"
	"repro/internal/jobcontrol"
	"repro/internal/jobs"
	"repro/internal/mapreduce"
	"repro/internal/serial"
	"repro/internal/vfs"
)

func runPageRankSerial(t *testing.T, fs vfs.FileSystem, nodes, iters int) map[int]float64 {
	t.Helper()
	runner := &serial.Runner{FS: fs}
	ctl := jobcontrol.New()
	ctl.Chain(jobs.PageRankPipeline("/graph.txt", "/work", "/out", nodes, iters, 0.85)...)
	if err := ctl.Run(func(j *mapreduce.Job) error {
		_, err := runner.Run(j)
		return err
	}, fs); err != nil {
		t.Fatal(err)
	}
	out, err := serial.ReadOutput(fs, "/out")
	if err != nil {
		t.Fatal(err)
	}
	return jobs.ParsePageRanks(out)
}

func TestPageRankMatchesPowerIteration(t *testing.T) {
	fs := vfs.NewMemFS()
	truth, _, err := datagen.Graph(fs, "/graph.txt", datagen.GraphOpts{Nodes: 120, AvgEdges: 5, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	const iters = 8
	got := runPageRankSerial(t, fs, truth.Nodes, iters)
	want := truth.PageRank(iters, 0.85)
	if len(got) != truth.Nodes {
		t.Fatalf("output has %d nodes, want %d", len(got), truth.Nodes)
	}
	for v := 0; v < truth.Nodes; v++ {
		if math.Abs(got[v]-want[v]) > 1e-9 {
			t.Fatalf("rank[%d] = %.12g, reference %.12g", v, got[v], want[v])
		}
	}
}

func TestPageRankMassConserved(t *testing.T) {
	// Property: with no dangling nodes, total rank stays 1 after every
	// iteration count.
	fs := vfs.NewMemFS()
	truth, _, err := datagen.Graph(fs, "/graph.txt", datagen.GraphOpts{Nodes: 60, AvgEdges: 3, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	got := runPageRankSerial(t, fs, truth.Nodes, 5)
	var total float64
	for _, r := range got {
		total += r
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("rank mass = %.12f, want 1", total)
	}
}

func TestPageRankZipfHeadRanksHighest(t *testing.T) {
	// The generator skews in-degree toward low node IDs; node 0 should be
	// at or near the top of the ranking.
	fs := vfs.NewMemFS()
	truth, _, err := datagen.Graph(fs, "/graph.txt", datagen.GraphOpts{Nodes: 200, AvgEdges: 5, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	got := runPageRankSerial(t, fs, truth.Nodes, 10)
	better := 0
	for v, r := range got {
		if v != 0 && r > got[0] {
			better++
		}
	}
	if better > 5 {
		t.Fatalf("node 0 outranked by %d nodes; in-degree skew not reflected", better)
	}
}

func TestPageRankOnClusterMatchesSerial(t *testing.T) {
	const nodes, iters = 80, 4
	// Serial.
	lfs := vfs.NewMemFS()
	if _, _, err := datagen.Graph(lfs, "/graph.txt", datagen.GraphOpts{Nodes: nodes, AvgEdges: 4, Seed: 41}); err != nil {
		t.Fatal(err)
	}
	serialRanks := runPageRankSerial(t, lfs, nodes, iters)

	// Distributed.
	c, err := core.New(core.Options{Nodes: 4, Seed: 2, HDFS: hdfs.Config{BlockSize: 4 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := datagen.Graph(c.FS(), "/graph.txt", datagen.GraphOpts{Nodes: nodes, AvgEdges: 4, Seed: 41}); err != nil {
		t.Fatal(err)
	}
	ctl := jobcontrol.New()
	ctl.Chain(jobs.PageRankPipeline("/graph.txt", "/work", "/out", nodes, iters, 0.85)...)
	if err := ctl.Run(func(j *mapreduce.Job) error {
		_, err := c.Run(j)
		return err
	}, c.FS()); err != nil {
		t.Fatal(err)
	}
	out, err := c.Output("/out")
	if err != nil {
		t.Fatal(err)
	}
	clusterRanks := jobs.ParsePageRanks(out)
	for v := 0; v < nodes; v++ {
		if clusterRanks[v] != serialRanks[v] {
			t.Fatalf("rank[%d]: cluster %.17g vs serial %.17g", v, clusterRanks[v], serialRanks[v])
		}
	}
}

func TestPageRankSeqIntermediatesMatchText(t *testing.T) {
	const nodes, iters = 80, 4
	lfs := vfs.NewMemFS()
	if _, _, err := datagen.Graph(lfs, "/graph.txt", datagen.GraphOpts{Nodes: nodes, AvgEdges: 4, Seed: 41}); err != nil {
		t.Fatal(err)
	}
	textRanks := runPageRankSerial(t, lfs, nodes, iters)

	// Same chain, but iterations hand off block-compressed SequenceFiles.
	// Pass nil to ctl.Run so the intermediates survive for inspection.
	sfs := vfs.NewMemFS()
	if _, _, err := datagen.Graph(sfs, "/graph.txt", datagen.GraphOpts{Nodes: nodes, AvgEdges: 4, Seed: 41}); err != nil {
		t.Fatal(err)
	}
	runner := &serial.Runner{FS: sfs}
	ctl := jobcontrol.New()
	ctl.Chain(jobs.PageRankPipelineSeq("/graph.txt", "/work", "/out", nodes, iters, 0.85, "gzip")...)
	if err := ctl.Run(func(j *mapreduce.Job) error {
		_, err := runner.Run(j)
		return err
	}, nil); err != nil {
		t.Fatal(err)
	}
	out, err := serial.ReadOutput(sfs, "/out")
	if err != nil {
		t.Fatal(err)
	}
	seqRanks := jobs.ParsePageRanks(out)
	for v := 0; v < nodes; v++ {
		if seqRanks[v] != textRanks[v] {
			t.Fatalf("rank[%d]: seq chain %.17g vs text chain %.17g", v, seqRanks[v], textRanks[v])
		}
	}

	// The handoff really was a SequenceFile: .seq part names carrying the
	// container magic.
	infos, err := sfs.List("/work/iter-000")
	if err != nil {
		t.Fatal(err)
	}
	seqParts := 0
	for _, fi := range infos {
		if fi.IsDir || fi.Name() == "_SUCCESS" {
			continue
		}
		if !strings.HasSuffix(fi.Path, ".seq") {
			t.Fatalf("intermediate part %s is not a .seq file", fi.Path)
		}
		data, err := vfs.ReadFile(sfs, fi.Path)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(data), iofmt.SeqMagic) {
			t.Fatalf("intermediate part %s missing SequenceFile magic", fi.Path)
		}
		seqParts++
	}
	if seqParts == 0 {
		t.Fatal("no intermediate parts found under /work/iter-000")
	}

	// And the cluster runtime reads the same seq handoffs to the same
	// ranks, bit for bit.
	c, err := core.New(core.Options{Nodes: 4, Seed: 2, HDFS: hdfs.Config{BlockSize: 4 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := datagen.Graph(c.FS(), "/graph.txt", datagen.GraphOpts{Nodes: nodes, AvgEdges: 4, Seed: 41}); err != nil {
		t.Fatal(err)
	}
	dctl := jobcontrol.New()
	dctl.Chain(jobs.PageRankPipelineSeq("/graph.txt", "/work", "/out", nodes, iters, 0.85, "gzip")...)
	if err := dctl.Run(func(j *mapreduce.Job) error {
		_, err := c.Run(j)
		return err
	}, c.FS()); err != nil {
		t.Fatal(err)
	}
	cout, err := c.Output("/out")
	if err != nil {
		t.Fatal(err)
	}
	clusterRanks := jobs.ParsePageRanks(cout)
	for v := 0; v < nodes; v++ {
		if clusterRanks[v] != textRanks[v] {
			t.Fatalf("rank[%d]: cluster seq chain %.17g vs text chain %.17g", v, clusterRanks[v], textRanks[v])
		}
	}
}

func TestGraphTruthDeterministic(t *testing.T) {
	a := vfs.NewMemFS()
	b := vfs.NewMemFS()
	ta, _, err := datagen.Graph(a, "/g", datagen.GraphOpts{Nodes: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tb, _, err := datagen.Graph(b, "/g", datagen.GraphOpts{Nodes: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	da, _ := vfs.ReadFile(a, "/g")
	db, _ := vfs.ReadFile(b, "/g")
	if string(da) != string(db) {
		t.Fatal("graph files differ for same seed")
	}
	ra := ta.PageRank(5, 0.85)
	rb := tb.PageRank(5, 0.85)
	for v := range ra {
		if ra[v] != rb[v] {
			t.Fatal("reference ranks differ for same seed")
		}
	}
}

package jobs_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/hdfs"
	"repro/internal/jobs"
	"repro/internal/serial"
	"repro/internal/vfs"
)

// stageCorpus writes the seed-77 corpus onto fs in the given container
// format and returns its path. Every format carries the identical word
// stream, so WordCount's answer must not depend on the container.
func stageCorpus(t *testing.T, fs vfs.FileSystem, format string) string {
	t.Helper()
	path := datagen.TextPathFor("/in/corpus.txt", format)
	_, _, err := datagen.TextAs(fs, path,
		datagen.TextOpts{Lines: 6000, Seed: 77, SeqBlockBytes: 4 << 10}, format)
	if err != nil {
		t.Fatal(err)
	}
	return path
}

// TestWordCountAcrossInputFormats is the file-format subsystem's central
// lesson, pinned as a test: the same corpus in every container yields
// byte-identical WordCount output in both runtimes, but the map-side
// parallelism differs radically — whole-stream gzip collapses the job to
// one map task, while a block-compressed SequenceFile keeps splitting at
// sync markers.
func TestWordCountAcrossInputFormats(t *testing.T) {
	spec, ok := jobs.Lookup("wordcount")
	if !ok {
		t.Fatal("wordcount not registered")
	}
	type result struct {
		maps int
		out  string
	}
	results := map[string]result{}
	for _, format := range datagen.TextFormats() {
		format := format
		t.Run(format, func(t *testing.T) {
			// Distributed: split granularity is the 16 KiB HDFS block.
			c, err := core.New(core.Options{Nodes: 6, Seed: 5, HDFS: hdfs.Config{BlockSize: 16 << 10}})
			if err != nil {
				t.Fatal(err)
			}
			path := stageCorpus(t, c.FS(), format)
			dj, err := spec.Build(jobs.Params{Input: path, Output: "/out"})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := c.Run(dj)
			if err != nil {
				t.Fatal(err)
			}
			clusterOut, err := c.Output("/out")
			if err != nil {
				t.Fatal(err)
			}

			// Standalone over the same bytes.
			local := vfs.NewMemFS()
			spath := stageCorpus(t, local, format)
			sj, err := spec.Build(jobs.Params{Input: spath, Output: "/out"})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := (&serial.Runner{FS: local, Parallelism: 3}).Run(sj); err != nil {
				t.Fatal(err)
			}
			serialOut, err := serial.ReadOutput(local, "/out")
			if err != nil {
				t.Fatal(err)
			}
			if serialOut != clusterOut {
				t.Fatalf("%s: serial (%d bytes) != cluster (%d bytes)",
					format, len(serialOut), len(clusterOut))
			}
			results[format] = result{maps: rep.MapTasks, out: clusterOut}
		})
	}
	if t.Failed() {
		t.FailNow()
	}

	base := results["text"]
	if base.out == "" {
		t.Fatal("no baseline text output")
	}
	for format, r := range results {
		if r.out != base.out {
			t.Errorf("%s output differs from text baseline (%d vs %d bytes)",
				format, len(r.out), len(base.out))
		}
	}

	// The parallelism lesson: non-splittable codecs cap the job at one
	// map task; splittable containers fan out across blocks.
	if base.maps < 4 {
		t.Errorf("plain text scheduled %d maps, want >= 4", base.maps)
	}
	for _, whole := range []string{"gz", "lzs"} {
		if got := results[whole].maps; got != 1 {
			t.Errorf("%s corpus scheduled %d maps, want exactly 1", whole, got)
		}
	}
	for _, seq := range []string{"seq", "seq-gzip", "seq-lzs"} {
		if got := results[seq].maps; got < 4 {
			t.Errorf("%s corpus scheduled %d maps, want >= 4", seq, got)
		}
	}
}

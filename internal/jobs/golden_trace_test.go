package jobs_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/hdfs"
	"repro/internal/jobs"
)

// update rewrites the golden obs snapshots under testdata/ instead of
// comparing against them:
//
//	go test ./internal/jobs -run TestGoldenTrace -update
var update = flag.Bool("update", false, "rewrite golden obs trace snapshots")

// Golden-trace tests pin the entire observable behaviour of a canonical
// run — every counter, gauge, histogram bucket and span the stack emits —
// as a byte-exact JSON artifact. Because the simulation is deterministic,
// any diff is a real behaviour change (scheduling order, placement, cost
// model, emission points), caught at the byte level.

func wordcountTrace(t *testing.T) []byte {
	t.Helper()
	c, err := core.New(core.Options{Nodes: 6, Seed: 42, HDFS: hdfs.Config{BlockSize: 32 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := datagen.Text(c.FS(), "/in/corpus.txt", datagen.TextOpts{Lines: 400, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(jobs.WordCount("/in", "/out", true)); err != nil {
		t.Fatal(err)
	}
	data, err := c.Obs.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func terasortTrace(t *testing.T) []byte {
	t.Helper()
	c, err := core.New(core.Options{Nodes: 6, Seed: 42, HDFS: hdfs.Config{BlockSize: 16 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := datagen.Sortable(c.FS(), "/in/records.txt", datagen.SortableOpts{Rows: 4000, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	job, err := jobs.TeraSort(c.FS(), "/in", "/out", 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(job); err != nil {
		t.Fatal(err)
	}
	data, err := c.Obs.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func checkGolden(t *testing.T, name string, build func(*testing.T) []byte) {
	t.Helper()
	// Two fresh in-process replays of the same seed must export the same
	// bytes — the determinism claim the golden file rests on.
	first := build(t)
	second := build(t)
	if !bytes.Equal(first, second) {
		t.Fatalf("same-seed replays produced different snapshots (%d vs %d bytes)", len(first), len(second))
	}
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, first, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(first))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with -update): %v", path, err)
	}
	if !bytes.Equal(first, want) {
		t.Fatalf("snapshot drifted from %s:\n%s\nrerun with -update if the change is intended", path, diffHint(want, first))
	}
}

// diffHint locates the first differing line of two JSON exports.
func diffHint(want, got []byte) string {
	wl, gl := bytes.Split(want, []byte("\n")), bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("first diff at line %d:\n  golden: %s\n  got:    %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: golden %d, got %d", len(wl), len(gl))
}

func TestGoldenTraceWordCount(t *testing.T) {
	checkGolden(t, "golden_wordcount.json", wordcountTrace)
}

func TestGoldenTraceTeraSort(t *testing.T) {
	if testing.Short() {
		t.Skip("terasort golden trace skipped in -short mode")
	}
	checkGolden(t, "golden_terasort.json", terasortTrace)
}

package jobs_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/hdfs"
	"repro/internal/history"
	"repro/internal/jobs"
	"repro/internal/vfs"
)

// historyJobID is the id the canonical wordcount run gets: the first job
// submitted to a fresh cluster, named "wordcount-combiner".
const historyJobID = "job_wordcount_combiner_0001"

// historyRun replays the canonical fixed-seed wordcount and returns the
// three artifacts the history subsystem produces for it: the NameNode
// audit log, the job-history event file persisted into HDFS, and the
// critical-path analysis rebuilt from that file. A fourth return carries
// the live cluster so callers can cross-check against the span store.
func historyRun(t *testing.T) (audit, events []byte, report string, c *core.MiniCluster) {
	t.Helper()
	c, err := core.New(core.Options{Nodes: 6, Seed: 42, HDFS: hdfs.Config{BlockSize: 32 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := datagen.Text(c.FS(), "/in/corpus.txt", datagen.TextOpts{Lines: 400, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(jobs.WordCount("/in", "/out", true)); err != nil {
		t.Fatal(err)
	}
	audit, err = history.Marshal(c.DFS.AuditLog().Events())
	if err != nil {
		t.Fatal(err)
	}
	events, err = vfs.ReadFile(c.FS(), history.EventsPath(historyJobID))
	if err != nil {
		t.Fatalf("job history not persisted to HDFS: %v", err)
	}
	parsed, err := history.Parse(events)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := history.BuildJobReport(parsed)
	if err != nil {
		t.Fatal(err)
	}
	return audit, events, rep.AnalysisString(), c
}

// checkGoldenBytes compares got against testdata/name, rewriting the
// file under -update (shared with the golden-trace tests).
func checkGoldenBytes(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted:\n%s\nrerun with -update if the change is intended", path, diffHint(want, got))
	}
}

// TestGoldenJobHistory pins the history subsystem's output byte-for-byte:
// the same seed must produce the identical audit log, the identical
// events.jsonl in HDFS, and the identical mrhistory -analyze report on
// every replay — and those bytes are committed as goldens.
func TestGoldenJobHistory(t *testing.T) {
	audit1, events1, report1, _ := historyRun(t)
	audit2, events2, report2, _ := historyRun(t)
	if !bytes.Equal(audit1, audit2) {
		t.Fatalf("same-seed replays produced different audit logs (%d vs %d bytes)", len(audit1), len(audit2))
	}
	if !bytes.Equal(events1, events2) {
		t.Fatalf("same-seed replays produced different job-history files (%d vs %d bytes)", len(events1), len(events2))
	}
	if report1 != report2 {
		t.Fatal("same-seed replays produced different analysis reports")
	}
	checkGoldenBytes(t, "golden_audit.jsonl", audit1)
	checkGoldenBytes(t, "golden_history_events.jsonl", events1)
	checkGoldenBytes(t, "golden_history_report.txt", []byte(report1))
}

// TestHistoryMatchesSpans cross-validates the two independent records of
// the same run: the job-history file the JobTracker wrote into HDFS and
// the span store the obs layer collected. Rebuilding attempt timelines
// from each must give the same answer.
func TestHistoryMatchesSpans(t *testing.T) {
	_, events, _, c := historyRun(t)
	parsed, err := history.Parse(events)
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := history.BuildJobReport(parsed)
	if err != nil {
		t.Fatal(err)
	}
	fromSpans, err := history.BuildJobReport(history.EventsFromSpans(c.Obs.Spans()))
	if err != nil {
		t.Fatal(err)
	}
	if len(fromSpans.Attempts) != len(fromFile.Attempts) {
		t.Fatalf("span bridge saw %d attempts, history file %d", len(fromSpans.Attempts), len(fromFile.Attempts))
	}
	for i := range fromFile.Attempts {
		hf, sp := fromFile.Attempts[i], fromSpans.Attempts[i]
		if hf.ID != sp.ID || hf.Node != sp.Node || hf.Start != sp.Start || hf.End != sp.End || hf.Outcome != sp.Outcome {
			t.Fatalf("attempt %d disagrees:\n  file: %+v\n  span: %+v", i, hf, sp)
		}
	}
	// The critical path — the chain of attempts bounding job completion —
	// must be identical however the timeline was reconstructed.
	pathIDs := func(r *history.JobReport) []string {
		var ids []string
		for _, a := range r.CriticalPath() {
			ids = append(ids, a.ID)
		}
		return ids
	}
	if !reflect.DeepEqual(pathIDs(fromFile), pathIDs(fromSpans)) {
		t.Fatalf("critical paths disagree:\n  file: %v\n  span: %v", pathIDs(fromFile), pathIDs(fromSpans))
	}
}

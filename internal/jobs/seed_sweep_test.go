package jobs_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/hdfs"
	"repro/internal/history"
	"repro/internal/jobs"
	"repro/internal/trace"
	"repro/internal/vfs"
)

// The golden-trace tests pin one seed byte-for-byte; this sweep pins the
// determinism *property* across many seeds: every (job, seed) pair, run
// twice from fresh clusters, must reproduce the identical obs snapshot,
// NameNode audit log, persisted job-history file, persisted trace export
// and job output bytes.
// It is the gate that lets hot-path rewrites (event queue, record
// framing, sort strategies) land with confidence that no code path
// smuggled in map-iteration order or pointer-identity dependence at
// seeds the goldens don't cover.

// sweepArtifacts captures everything observable about one run.
type sweepArtifacts struct {
	snapshot []byte // full obs export: counters, gauges, histograms, spans
	audit    []byte // NameNode audit log
	events   []byte // job history events.jsonl as persisted into HDFS
	traces   []byte // causal-trace export trace.jsonl as persisted into HDFS
	output   []byte // reducer output files, concatenated in sorted order
}

func captureRun(t *testing.T, seed int64, build func(c *core.MiniCluster) (jobID string)) sweepArtifacts {
	t.Helper()
	c, err := core.New(core.Options{Nodes: 6, Seed: seed, HDFS: hdfs.Config{BlockSize: 16 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	jobID := build(c)

	var a sweepArtifacts
	if a.snapshot, err = c.Obs.SnapshotJSON(); err != nil {
		t.Fatal(err)
	}
	if a.audit, err = history.Marshal(c.DFS.AuditLog().Events()); err != nil {
		t.Fatal(err)
	}
	if a.events, err = vfs.ReadFile(c.FS(), history.EventsPath(jobID)); err != nil {
		t.Fatalf("job history for %s not persisted: %v", jobID, err)
	}
	if a.traces, err = vfs.ReadFile(c.FS(), trace.Path(jobID)); err != nil {
		t.Fatalf("trace export for %s not persisted: %v", jobID, err)
	}
	infos, err := c.FS().List("/out")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	for _, fi := range infos { // List returns sorted names
		data, err := vfs.ReadFile(c.FS(), fi.Path)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&out, "== %s (%d bytes)\n", fi.Path, len(data))
		out.Write(data)
	}
	a.output = out.Bytes()
	return a
}

func wordcountSweepRun(t *testing.T, seed int64) sweepArtifacts {
	return captureRun(t, seed, func(c *core.MiniCluster) string {
		if _, _, err := datagen.Text(c.FS(), "/in/corpus.txt", datagen.TextOpts{Lines: 300, Seed: seed + 1}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Run(jobs.WordCount("/in", "/out", true)); err != nil {
			t.Fatal(err)
		}
		return "job_wordcount_combiner_0001"
	})
}

func terasortSweepRun(t *testing.T, seed int64) sweepArtifacts {
	return captureRun(t, seed, func(c *core.MiniCluster) string {
		if _, _, err := datagen.Sortable(c.FS(), "/in/records.txt", datagen.SortableOpts{Rows: 2000, Seed: seed + 1}); err != nil {
			t.Fatal(err)
		}
		job, err := jobs.TeraSort(c.FS(), "/in", "/out", 4)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Run(job); err != nil {
			t.Fatal(err)
		}
		return "job_terasort_0001"
	})
}

func diffArtifacts(t *testing.T, what string, seed int64, a, b sweepArtifacts) {
	t.Helper()
	check := func(kind string, x, y []byte) {
		if !bytes.Equal(x, y) {
			t.Errorf("%s seed %d: replays produced different %s (%d vs %d bytes):\n%s",
				what, seed, kind, len(x), len(y), diffHint(x, y))
		}
	}
	check("obs snapshots", a.snapshot, b.snapshot)
	check("audit logs", a.audit, b.audit)
	check("history event files", a.events, b.events)
	check("trace exports", a.traces, b.traces)
	check("outputs", a.output, b.output)
}

// TestSeedSweepDeterminism runs wordcount and terasort at five seeds,
// twice each, and requires byte-identical artifacts on every replay.
func TestSeedSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("tier-2: seed sweep skipped in -short mode")
	}
	for _, seed := range []int64{11, 22, 33, 42, 97} {
		seed := seed
		t.Run(fmt.Sprintf("wordcount/seed=%d", seed), func(t *testing.T) {
			diffArtifacts(t, "wordcount", seed, wordcountSweepRun(t, seed), wordcountSweepRun(t, seed))
		})
		t.Run(fmt.Sprintf("terasort/seed=%d", seed), func(t *testing.T) {
			diffArtifacts(t, "terasort", seed, terasortSweepRun(t, seed), terasortSweepRun(t, seed))
		})
	}
}

package jobs

import (
	"bufio"
	"fmt"
	"io"
	"os/exec"
	"strings"

	"repro/internal/mapreduce"
)

// Hadoop Streaming: map and reduce as external commands wired through
// pipes, the path students who preferred scripting to Java used. The
// command receives input lines on stdin and must print
// "key<TAB>value" lines on stdout; reducers receive the sorted
// "key<TAB>value" stream exactly as Hadoop streaming delivers it.

// streamCmd runs one command over the given input lines and returns its
// stdout lines.
func streamCmd(argv []string, input func(w io.Writer) error) ([]string, error) {
	if len(argv) == 0 {
		return nil, fmt.Errorf("jobs: empty streaming command")
	}
	cmd := exec.Command(argv[0], argv[1:]...)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("jobs: starting %q: %w", argv[0], err)
	}
	writeErr := make(chan error, 1)
	go func() {
		err := input(stdin)
		stdin.Close()
		writeErr <- err
	}()
	var lines []string
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	scanErr := sc.Err()
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("jobs: %q failed: %w", strings.Join(argv, " "), err)
	}
	if err := <-writeErr; err != nil && err != io.ErrClosedPipe {
		return nil, err
	}
	return lines, scanErr
}

// streamingMapper batches a task's input lines through one process
// invocation (Hadoop starts one process per task, not per record).
type streamingMapper struct {
	argv  []string
	lines []string
}

func (m *streamingMapper) Map(ctx *mapreduce.TaskContext, off int64, line string, out mapreduce.Emitter) error {
	m.lines = append(m.lines, line)
	return nil
}

func (m *streamingMapper) Close(ctx *mapreduce.TaskContext, out mapreduce.Emitter) error {
	outLines, err := streamCmd(m.argv, func(w io.Writer) error {
		for _, l := range m.lines {
			if _, err := io.WriteString(w, l+"\n"); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	for _, l := range outLines {
		key, value, found := strings.Cut(l, "\t")
		if !found {
			value = "" // keys without values are legal in streaming
		}
		if err := out.Emit(key, mapreduce.Text(value)); err != nil {
			return err
		}
	}
	return nil
}

// streamingReducer feeds each whole reduce task's sorted key/value stream
// through one process, buffering groups until Close (one process per
// reduce task, as in Hadoop streaming).
type streamingReducer struct {
	argv  []string
	lines []string
}

func (r *streamingReducer) Reduce(ctx *mapreduce.TaskContext, key string, values *mapreduce.Values, out mapreduce.Emitter) error {
	return values.Each(func(v mapreduce.Value) error {
		r.lines = append(r.lines, key+"\t"+v.String())
		return nil
	})
}

func (r *streamingReducer) Close(ctx *mapreduce.TaskContext, out mapreduce.Emitter) error {
	outLines, err := streamCmd(r.argv, func(w io.Writer) error {
		for _, l := range r.lines {
			if _, err := io.WriteString(w, l+"\n"); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	for _, l := range outLines {
		key, value, _ := strings.Cut(l, "\t")
		if err := out.Emit(key, mapreduce.Text(value)); err != nil {
			return err
		}
	}
	return nil
}

// Streaming builds a job whose mapper and reducer are external commands,
// e.g.
//
//	Streaming(in, out, []string{"/bin/sh", "-c", "tr ' ' '\n' | sed 's/$/\t1/'"},
//	                  []string{"/usr/bin/awk", "-F\t", "{s[$1]+=$2} END {for (k in s) print k\"\t\"s[k]}"})
func Streaming(input, output string, mapperCmd, reducerCmd []string) *mapreduce.Job {
	return &mapreduce.Job{
		Name:        "streaming",
		NewMapper:   func() mapreduce.Mapper { return &streamingMapper{argv: mapperCmd} },
		NewReducer:  func() mapreduce.Reducer { return &streamingReducer{argv: reducerCmd} },
		DecodeValue: mapreduce.DecodeText,
		InputPaths:  []string{input},
		OutputPath:  output,
	}
}

package jobs_test

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/hdfs"
	"repro/internal/jobs"
	"repro/internal/mapreduce"
	"repro/internal/mrcluster"
	"repro/internal/serial"
	"repro/internal/sim"
	"repro/internal/vfs"
)

func runSerial(t *testing.T, fs vfs.FileSystem, job *mapreduce.Job) (*serial.Report, string) {
	t.Helper()
	rep, err := (&serial.Runner{FS: fs, Parallelism: 4}).Run(job)
	if err != nil {
		t.Fatalf("job %s: %v", job.Name, err)
	}
	out, err := serial.ReadOutput(fs, job.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	return rep, out
}

// parseKV parses "key\tvalue" output lines into a map.
func parseKV(out string) map[string]string {
	m := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line == "" {
			continue
		}
		f := strings.SplitN(line, "\t", 2)
		if len(f) == 2 {
			m[f[0]] = f[1]
		}
	}
	return m
}

func TestWordCountMatchesTruth(t *testing.T) {
	fs := vfs.NewMemFS()
	truth, _, err := datagen.Text(fs, "/in/corpus.txt", datagen.TextOpts{Lines: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, out := runSerial(t, fs, jobs.WordCount("/in", "/out", false))
	got := parseKV(out)
	if len(got) != len(truth.Counts) {
		t.Fatalf("distinct words: got %d, truth %d", len(got), len(truth.Counts))
	}
	for w, c := range truth.Counts {
		if got[w] != strconv.FormatInt(c, 10) {
			t.Fatalf("count[%s] = %s, truth %d", w, got[w], c)
		}
	}
}

func TestWordCountCombinerSameAnswer(t *testing.T) {
	fs := vfs.NewMemFS()
	if _, _, err := datagen.Text(fs, "/in/corpus.txt", datagen.TextOpts{Lines: 300, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	repPlain, outPlain := runSerial(t, fs, jobs.WordCount("/in", "/out-plain", false))
	repComb, outComb := runSerial(t, fs, jobs.WordCount("/in", "/out-comb", true))
	if outPlain != outComb {
		t.Fatal("combiner changed word counts")
	}
	if repComb.Counters.Get(mapreduce.CtrCombineInputRecords) == 0 {
		t.Fatal("combiner never ran")
	}
	// Map-side output volume must shrink.
	if repComb.Counters.Get(mapreduce.CtrSpilledRecords) >= repPlain.Counters.Get(mapreduce.CtrSpilledRecords) {
		t.Fatal("combiner did not reduce spilled records")
	}
}

func TestTopWordMatchesTruth(t *testing.T) {
	fs := vfs.NewMemFS()
	truth, _, err := datagen.Text(fs, "/in/corpus.txt", datagen.TextOpts{Lines: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, out := runSerial(t, fs, jobs.TopWord("/in", "/out"))
	got := parseKV(out)
	if len(got) != 1 {
		t.Fatalf("topword emitted %d lines: %q", len(got), out)
	}
	if got[truth.TopWord] != strconv.FormatInt(truth.TopWordCount, 10) {
		t.Fatalf("topword = %v, truth %s=%d", got, truth.TopWord, truth.TopWordCount)
	}
}

func airlineFixture(t *testing.T) (vfs.FileSystem, *datagen.AirlineTruth) {
	t.Helper()
	fs := vfs.NewMemFS()
	truth, _, err := datagen.Airline(fs, "/in/ontime.csv", datagen.AirlineOpts{Rows: 4000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	return fs, truth
}

func checkAirlineOutput(t *testing.T, out string, truth *datagen.AirlineTruth) {
	t.Helper()
	got := parseKV(out)
	if len(got) != len(truth.Counts) {
		t.Fatalf("carriers: got %d, truth %d", len(got), len(truth.Counts))
	}
	for code := range truth.Counts {
		v, err := strconv.ParseFloat(got[code], 64)
		if err != nil {
			t.Fatalf("bad avg for %s: %q", code, got[code])
		}
		if math.Abs(v-truth.Avg(code)) > 1e-9 {
			t.Fatalf("avg[%s] = %v, truth %v", code, v, truth.Avg(code))
		}
	}
}

func TestAirlineVariantsAllMatchTruth(t *testing.T) {
	builders := map[string]func(in, out string) *mapreduce.Job{
		"plain":    jobs.AirlineAvgDelayPlain,
		"combiner": jobs.AirlineAvgDelayCombiner,
		"inmapper": jobs.AirlineAvgDelayInMapper,
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			fs, truth := airlineFixture(t)
			_, out := runSerial(t, fs, build("/in", "/out"))
			checkAirlineOutput(t, out, truth)
		})
	}
}

func TestAirlineVariantTradeoffs(t *testing.T) {
	fs, _ := airlineFixture(t)
	repPlain, _ := runSerial(t, fs, jobs.AirlineAvgDelayPlain("/in", "/o1"))
	repComb, _ := runSerial(t, fs, jobs.AirlineAvgDelayCombiner("/in", "/o2"))
	repIMC, _ := runSerial(t, fs, jobs.AirlineAvgDelayInMapper("/in", "/o3"))

	spill := func(r *serial.Report) int64 { return r.Counters.Get(mapreduce.CtrSpilledRecords) }
	// Network volume: plain >> combiner >= in-mapper (per-split key cardinality bound).
	if spill(repComb) >= spill(repPlain) || spill(repIMC) >= spill(repPlain) {
		t.Fatalf("combining did not shrink map output: plain=%d comb=%d imc=%d",
			spill(repPlain), spill(repComb), spill(repIMC))
	}
	// Memory: in-mapper combining holds per-key state; plain holds none.
	if repIMC.Counters.Get(mapreduce.CtrMapperMemoryPeak) == 0 {
		t.Fatal("in-mapper combining reported no memory use")
	}
	if repPlain.Counters.Get(mapreduce.CtrMapperMemoryPeak) != 0 {
		t.Fatal("plain variant should report no task-held memory")
	}
}

func moviesFixture(t *testing.T) (vfs.FileSystem, *datagen.MovieTruth) {
	t.Helper()
	fs := vfs.NewMemFS()
	truth, _, err := datagen.Movies(fs, "/ml", datagen.MovieOpts{Movies: 60, Users: 120, Ratings: 4000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return fs, truth
}

func TestMovieGenreStatsMatchesTruth(t *testing.T) {
	for _, cached := range []bool{true, false} {
		name := "cached"
		if !cached {
			name = "naive"
		}
		t.Run(name, func(t *testing.T) {
			fs, truth := moviesFixture(t)
			job := jobs.MovieGenreStats("/ml/ratings.dat", "/ml/movies.dat", "/out", cached)
			rep, out := runSerial(t, fs, job)
			got := parseKV(out)
			for _, g := range datagen.Genres {
				want := truth.GenreCount[g]
				if want == 0 {
					continue
				}
				v, ok := got[g]
				if !ok {
					t.Fatalf("genre %s missing from output", g)
				}
				var count int64
				var avg, min, max float64
				if _, err := fmt.Sscanf(v, "count=%d avg=%f min=%g max=%g", &count, &avg, &min, &max); err != nil {
					t.Fatalf("bad stats %q: %v", v, err)
				}
				if count != want {
					t.Fatalf("genre %s count = %d, truth %d", g, count, want)
				}
				if math.Abs(avg-truth.GenreAvg(g)) > 1e-3 {
					t.Fatalf("genre %s avg = %v, truth %v", g, avg, truth.GenreAvg(g))
				}
			}
			// The access-pattern counters must expose the difference.
			opens := rep.Counters.Get(mapreduce.CtrSideFileOpens)
			if cached && opens != int64(rep.MapTasks) {
				t.Fatalf("cached variant opened side file %d times for %d tasks", opens, rep.MapTasks)
			}
			if !cached && opens <= int64(rep.MapTasks) {
				t.Fatalf("naive variant opened side file only %d times", opens)
			}
		})
	}
}

func TestNaiveSideDataReadsFarMoreBytes(t *testing.T) {
	fs, _ := moviesFixture(t)
	repC, _ := runSerial(t, fs, jobs.MovieGenreStats("/ml/ratings.dat", "/ml/movies.dat", "/oc", true))
	repN, _ := runSerial(t, fs, jobs.MovieGenreStats("/ml/ratings.dat", "/ml/movies.dat", "/on", false))
	cb := repC.Counters.Get(mapreduce.CtrSideFileBytesRead)
	nb := repN.Counters.Get(mapreduce.CtrSideFileBytesRead)
	if nb < 100*cb {
		t.Fatalf("naive side reads (%d B) should dwarf cached (%d B)", nb, cb)
	}
}

func TestMostActiveUserMatchesTruth(t *testing.T) {
	fs, truth := moviesFixture(t)
	_, out := runSerial(t, fs, jobs.MostActiveUser("/ml/ratings.dat", "/ml/movies.dat", "/out"))
	got := parseKV(out)
	if len(got) != 1 {
		t.Fatalf("most-active-user emitted %d lines: %q", len(got), out)
	}
	wantKey := strconv.Itoa(truth.TopUser)
	v, ok := got[wantKey]
	if !ok {
		t.Fatalf("winner = %v, truth user %d", got, truth.TopUser)
	}
	var ratings int64
	var fav string
	if _, err := fmt.Sscanf(v, "ratings=%d favorite=%s", &ratings, &fav); err != nil {
		t.Fatalf("bad value %q: %v", v, err)
	}
	if ratings != truth.TopUserCount {
		t.Fatalf("ratings = %d, truth %d", ratings, truth.TopUserCount)
	}
	if fav != truth.FavGenre {
		t.Fatalf("favorite = %s, truth %s", fav, truth.FavGenre)
	}
}

func TestTopAlbumMatchesTruth(t *testing.T) {
	fs := vfs.NewMemFS()
	truth, _, err := datagen.Music(fs, "/ym", datagen.MusicOpts{Songs: 120, Albums: 15, Users: 80, Ratings: 6000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	_, out := runSerial(t, fs, jobs.TopAlbum("/ym/ratings.tsv", "/ym/songs.tsv", "/out"))
	got := parseKV(out)
	if len(got) != 1 {
		t.Fatalf("top-album emitted %d lines: %q", len(got), out)
	}
	wantKey := strconv.Itoa(truth.BestAlbum)
	v, ok := got[wantKey]
	if !ok {
		t.Fatalf("winner = %v, truth album %d (avg %.2f)", got, truth.BestAlbum, truth.BestAvg)
	}
	var sum float64
	var count int64
	var avg float64
	if _, err := fmt.Sscanf(v, "sum=%g count=%d avg=%f", &sum, &count, &avg); err != nil {
		t.Fatalf("bad value %q: %v", v, err)
	}
	if math.Abs(avg-truth.BestAvg) > 1e-3 { // value renders with 4 decimals
		t.Fatalf("avg = %v, truth %v", avg, truth.BestAvg)
	}
}

func TestTraceMaxResubmissionsMatchesTruth(t *testing.T) {
	fs := vfs.NewMemFS()
	truth, _, err := datagen.Trace(fs, "/in/task_events.csv", datagen.TraceOpts{Jobs: 30, MeanTasks: 15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	_, out := runSerial(t, fs, jobs.TraceMaxResubmissions("/in", "/out"))
	jobID, resub, ok := jobs.ParseTraceAnswer(out)
	if !ok {
		t.Fatalf("unparseable answer %q", out)
	}
	if jobID != truth.MaxJob || resub != truth.MaxResub {
		t.Fatalf("answer job=%d resub=%d, truth job=%d resub=%d", jobID, resub, truth.MaxJob, truth.MaxResub)
	}
}

func TestRegistryBuildsEveryJob(t *testing.T) {
	specs := jobs.Registry()
	if len(specs) < 10 {
		t.Fatalf("registry has only %d jobs", len(specs))
	}
	for _, s := range specs {
		p := jobs.Params{Input: "/in", Output: "/out"}
		if s.NeedsSide {
			p.Side = "/side.dat"
		}
		j, err := s.Build(p)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if err := j.Validate(); err != nil {
			t.Fatalf("%s: built invalid job: %v", s.Name, err)
		}
		if s.NeedsSide {
			if _, err := s.Build(jobs.Params{Input: "/in", Output: "/out"}); err == nil {
				t.Fatalf("%s: accepted missing side file", s.Name)
			}
		}
	}
	if _, ok := jobs.Lookup("wordcount"); !ok {
		t.Fatal("lookup failed for wordcount")
	}
	if _, ok := jobs.Lookup("nope"); ok {
		t.Fatal("lookup succeeded for unknown job")
	}
}

// TestJobsRunOnCluster runs a representative subset distributed and
// checks agreement with the serial answers — the "rerun the same jar on
// HDFS" exercise of assignment 2.
func TestJobsRunOnCluster(t *testing.T) {
	eng := sim.NewEngine()
	topo := cluster.NewTopology(cluster.PaperNodeConfig(8, 1))
	dfs, err := hdfs.NewMiniDFS(eng, topo, hdfs.Options{Seed: 9, Config: hdfs.Config{BlockSize: 32 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	mc := mrcluster.NewMRCluster(dfs, mrcluster.Config{}, 10)
	client := dfs.Client(hdfs.GatewayNode)

	// Stage datasets into HDFS.
	airTruth, _, err := datagen.Airline(client, "/data/airline/ontime.csv", datagen.AirlineOpts{Rows: 3000, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	musTruth, _, err := datagen.Music(client, "/data/ym", datagen.MusicOpts{Ratings: 5000, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}

	rep, err := mc.Run(jobs.AirlineAvgDelayCombiner("/data/airline", "/out/air"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := serial.ReadOutput(client, "/out/air")
	if err != nil {
		t.Fatal(err)
	}
	checkAirlineOutput(t, out, airTruth)
	if rep.Counters.Get(mapreduce.CtrCombineInputRecords) == 0 {
		t.Fatal("combiner did not run on cluster")
	}

	if _, err := mc.Run(jobs.TopAlbum("/data/ym/ratings.tsv", "/data/ym/songs.tsv", "/out/album")); err != nil {
		t.Fatal(err)
	}
	aout, err := serial.ReadOutput(client, "/out/album")
	if err != nil {
		t.Fatal(err)
	}
	got := parseKV(aout)
	if _, ok := got[strconv.Itoa(musTruth.BestAlbum)]; !ok {
		t.Fatalf("cluster top-album = %v, truth %d", got, musTruth.BestAlbum)
	}
}

package jobs

import (
	"fmt"
	"sort"

	"repro/internal/mapreduce"
)

// Params parameterise a registry job build.
type Params struct {
	// Input is the input file or directory.
	Input string
	// Output is the output directory (must not exist).
	Output string
	// Side is the auxiliary join file for jobs that need one
	// (movies.dat for the movie jobs, songs.tsv for top-album).
	Side string
}

// Spec describes one registered course job.
type Spec struct {
	Name        string
	Description string
	NeedsSide   bool
	Build       func(p Params) (*Job, error)
}

// Job aliases the framework job type for registry consumers.
type Job = mapreduce.Job

// Registry returns the course job catalogue, sorted by name.
func Registry() []Spec {
	specs := []Spec{
		{
			Name:        "wordcount",
			Description: "count word occurrences (lecture example)",
			Build: func(p Params) (*Job, error) {
				return WordCount(p.Input, p.Output, false), nil
			},
		},
		{
			Name:        "wordcount-combiner",
			Description: "word count using the reducer as a combiner",
			Build: func(p Params) (*Job, error) {
				return WordCount(p.Input, p.Output, true), nil
			},
		},
		{
			Name:        "topword",
			Description: "word with the highest count (Fall 2012 assignment 1)",
			Build: func(p Params) (*Job, error) {
				return TopWord(p.Input, p.Output), nil
			},
		},
		{
			Name:        "airline-avg-plain",
			Description: "average delay per airline, plain key-value emission",
			Build: func(p Params) (*Job, error) {
				return AirlineAvgDelayPlain(p.Input, p.Output), nil
			},
		},
		{
			Name:        "airline-avg-combiner",
			Description: "average delay per airline, combiner + custom value class",
			Build: func(p Params) (*Job, error) {
				return AirlineAvgDelayCombiner(p.Input, p.Output), nil
			},
		},
		{
			Name:        "airline-avg-inmapper",
			Description: "average delay per airline, in-mapper combining",
			Build: func(p Params) (*Job, error) {
				return AirlineAvgDelayInMapper(p.Input, p.Output), nil
			},
		},
		{
			Name:        "movie-genre-stats",
			Description: "rating statistics per movie genre (cached side data)",
			NeedsSide:   true,
			Build: func(p Params) (*Job, error) {
				if p.Side == "" {
					return nil, fmt.Errorf("jobs: movie-genre-stats needs -side movies.dat")
				}
				return MovieGenreStats(p.Input, p.Side, p.Output, true), nil
			},
		},
		{
			Name:        "movie-genre-stats-naive",
			Description: "genre statistics re-reading the side file per record (anti-pattern)",
			NeedsSide:   true,
			Build: func(p Params) (*Job, error) {
				if p.Side == "" {
					return nil, fmt.Errorf("jobs: movie-genre-stats-naive needs -side movies.dat")
				}
				return MovieGenreStats(p.Input, p.Side, p.Output, false), nil
			},
		},
		{
			Name:        "most-active-user",
			Description: "most prolific rater and their favourite genre",
			NeedsSide:   true,
			Build: func(p Params) (*Job, error) {
				if p.Side == "" {
					return nil, fmt.Errorf("jobs: most-active-user needs -side movies.dat")
				}
				return MostActiveUser(p.Input, p.Side, p.Output), nil
			},
		},
		{
			Name:        "top-album",
			Description: "album with the highest average rating (assignment 2)",
			NeedsSide:   true,
			Build: func(p Params) (*Job, error) {
				if p.Side == "" {
					return nil, fmt.Errorf("jobs: top-album needs -side songs.tsv")
				}
				return TopAlbum(p.Input, p.Side, p.Output), nil
			},
		},
		{
			Name:        "trace-max-resubmissions",
			Description: "job with most task resubmissions in the Google trace",
			Build: func(p Params) (*Job, error) {
				return TraceMaxResubmissions(p.Input, p.Output), nil
			},
		},
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
	return specs
}

// Lookup finds a registered job by name.
func Lookup(name string) (Spec, bool) {
	for _, s := range Registry() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

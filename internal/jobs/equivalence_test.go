package jobs_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/hdfs"
	"repro/internal/jobs"
	"repro/internal/serial"
	"repro/internal/vfs"
)

// stageFixture writes the dataset a registry job needs onto fs and
// returns the job params.
func stageFixture(t *testing.T, fs vfs.FileSystem, jobName string) jobs.Params {
	t.Helper()
	p := jobs.Params{Output: "/out"}
	var err error
	switch jobName {
	case "wordcount", "wordcount-combiner", "topword":
		_, _, err = datagen.Text(fs, "/in/corpus.txt", datagen.TextOpts{Lines: 400, Seed: 77})
		p.Input = "/in"
	case "airline-avg-plain", "airline-avg-combiner", "airline-avg-inmapper":
		_, _, err = datagen.Airline(fs, "/in/ontime.csv", datagen.AirlineOpts{Rows: 2500, Seed: 77})
		p.Input = "/in"
	case "movie-genre-stats", "movie-genre-stats-naive", "most-active-user":
		_, _, err = datagen.Movies(fs, "/ml", datagen.MovieOpts{Movies: 40, Users: 80, Ratings: 2500, Seed: 77})
		p.Input = "/ml/ratings.dat"
		p.Side = "/ml/movies.dat"
	case "top-album":
		_, _, err = datagen.Music(fs, "/ym", datagen.MusicOpts{Songs: 80, Albums: 12, Users: 50, Ratings: 3000, Seed: 77})
		p.Input = "/ym/ratings.tsv"
		p.Side = "/ym/songs.tsv"
	case "trace-max-resubmissions":
		_, _, err = datagen.Trace(fs, "/in/events.csv", datagen.TraceOpts{Jobs: 15, MeanTasks: 8, Seed: 77})
		p.Input = "/in"
	default:
		t.Fatalf("no fixture for job %q", jobName)
	}
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestEveryRegistryJobSerialEqualsDistributed is the repository's central
// equivalence property, run over the whole course catalogue: for every
// job, the standalone runner and the 6-node HDFS cluster produce
// byte-identical outputs.
func TestEveryRegistryJobSerialEqualsDistributed(t *testing.T) {
	for _, spec := range jobs.Registry() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			// Standalone.
			local := vfs.NewMemFS()
			p := stageFixture(t, local, spec.Name)
			sj, err := spec.Build(p)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := (&serial.Runner{FS: local, Parallelism: 3}).Run(sj); err != nil {
				t.Fatal(err)
			}
			serialOut, err := serial.ReadOutput(local, "/out")
			if err != nil {
				t.Fatal(err)
			}

			// Distributed, same generator seed -> same input bytes.
			c, err := core.New(core.Options{Nodes: 6, Seed: 5, HDFS: hdfs.Config{BlockSize: 32 << 10}})
			if err != nil {
				t.Fatal(err)
			}
			p2 := stageFixture(t, c.FS(), spec.Name)
			dj, err := spec.Build(p2)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.Run(dj); err != nil {
				t.Fatal(err)
			}
			clusterOut, err := c.Output("/out")
			if err != nil {
				t.Fatal(err)
			}

			if serialOut != clusterOut {
				t.Fatalf("outputs differ for %s:\nserial  %d bytes\ncluster %d bytes\nserial head: %.200s\ncluster head: %.200s",
					spec.Name, len(serialOut), len(clusterOut), serialOut, clusterOut)
			}
		})
	}
}

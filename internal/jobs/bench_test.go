package jobs_test

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/jobcontrol"
	"repro/internal/jobs"
	"repro/internal/mapreduce"
	"repro/internal/serial"
	"repro/internal/vfs"
)

func BenchmarkAirlineCombinerStandalone(b *testing.B) {
	fs := vfs.NewMemFS()
	if _, _, err := datagen.Airline(fs, "/in/ontime.csv", datagen.AirlineOpts{Rows: 20000, Seed: 1}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		_ = fs.Remove("/out", true)
		b.StartTimer()
		if _, err := (&serial.Runner{FS: fs, Parallelism: 4}).Run(
			jobs.AirlineAvgDelayCombiner("/in", "/out")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTeraSortStandalone(b *testing.B) {
	fs := vfs.NewMemFS()
	if _, _, err := datagen.Sortable(fs, "/in/r.txt", datagen.SortableOpts{Rows: 20000, Seed: 1}); err != nil {
		b.Fatal(err)
	}
	job, err := jobs.TeraSort(fs, "/in", "/out", 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		_ = fs.Remove("/out", true)
		b.StartTimer()
		if _, err := (&serial.Runner{FS: fs, Parallelism: 4}).Run(job); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPageRankPipelineStandalone(b *testing.B) {
	fs := vfs.NewMemFS()
	truth, _, err := datagen.Graph(fs, "/graph.txt", datagen.GraphOpts{Nodes: 300, AvgEdges: 5, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		_ = fs.Remove("/work", true)
		_ = fs.Remove("/out", true)
		b.StartTimer()
		ctl := jobcontrol.New()
		ctl.Chain(jobs.PageRankPipeline("/graph.txt", "/work", "/out", truth.Nodes, 5, 0.85)...)
		runner := &serial.Runner{FS: fs, Parallelism: 2}
		if err := ctl.Run(func(j *mapreduce.Job) error {
			_, err := runner.Run(j)
			return err
		}, fs); err != nil {
			b.Fatal(err)
		}
	}
}

package jobs_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/hdfs"
	"repro/internal/jobs"
	"repro/internal/trace"
	"repro/internal/vfs"
)

// wordcountTraceExport runs the canonical wordcount and returns the
// trace.jsonl the JobTracker persisted beside the job history — the
// byte-stable causal-trace export.
func wordcountTraceExport(t *testing.T) []byte {
	t.Helper()
	c, err := core.New(core.Options{Nodes: 6, Seed: 42, HDFS: hdfs.Config{BlockSize: 32 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := datagen.Text(c.FS(), "/in/corpus.txt", datagen.TextOpts{Lines: 400, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(jobs.WordCount("/in", "/out", true)); err != nil {
		t.Fatal(err)
	}
	data, err := vfs.ReadFile(c.FS(), trace.Path("job_wordcount_combiner_0001"))
	if err != nil {
		t.Fatalf("trace export not persisted: %v", err)
	}
	return data
}

// TestGoldenTraceExport pins the persisted JSONL trace export byte-for-
// byte: trace/span IDs, parent links, span order and attrs all derive
// from the sim clock and registry sequence counters, so any diff means
// nondeterminism leaked into the tracing path.
func TestGoldenTraceExport(t *testing.T) {
	checkGolden(t, "golden_wordcount_trace.jsonl", wordcountTraceExport)
}

// TestTraceExportStructure decodes the export and checks the causal
// shape the waterfall and critical path rely on: one mr.job root, every
// span in the same trace, attempts under tasks, HDFS spans under
// attempts, and a shuffle span under each reduce attempt.
func TestTraceExportStructure(t *testing.T) {
	spans, err := trace.Parse(wordcountTraceExport(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("empty trace export")
	}
	for _, s := range spans {
		if s.Trace != spans[0].Trace {
			t.Fatalf("span %s in trace %q, want %q", s.Name, s.Trace, spans[0].Trace)
		}
		if s.ID == 0 {
			t.Fatalf("span %s exported without identity", s.Name)
		}
	}
	roots := trace.Build(spans)
	if len(roots) != 1 || roots[0].Span.Name != "mr.job" {
		t.Fatalf("want exactly one mr.job root, got %d roots (first %q)", len(roots), roots[0].Span.Name)
	}
	var tasks, attempts, hdfsSpans, shuffles int
	for _, taskNode := range roots[0].Children {
		if taskNode.Span.Name != "mr.task" {
			t.Fatalf("child of mr.job is %q, want mr.task", taskNode.Span.Name)
		}
		tasks++
		for _, att := range taskNode.Children {
			if att.Span.Name != "mr.map_attempt" && att.Span.Name != "mr.reduce_attempt" {
				t.Fatalf("child of mr.task is %q, want an attempt span", att.Span.Name)
			}
			attempts++
			var shuffled bool
			for _, leaf := range att.Children {
				switch leaf.Span.Name {
				case "hdfs.write_pipeline", "hdfs.read_block":
					hdfsSpans++
					if leaf.Span.Attrs["node"] == "" {
						t.Fatalf("%s under %s has no node attr", leaf.Span.Name, att.Span.Attrs["attempt"])
					}
				case "mr.shuffle":
					shuffles++
					shuffled = true
				default:
					t.Fatalf("unexpected span %q under %s", leaf.Span.Name, att.Span.Attrs["attempt"])
				}
			}
			if att.Span.Name == "mr.reduce_attempt" && att.Span.Attrs["outcome"] == "succeeded" && !shuffled {
				t.Fatalf("reduce attempt %s has no shuffle span", att.Span.Attrs["attempt"])
			}
		}
	}
	if tasks == 0 || attempts == 0 || hdfsSpans == 0 || shuffles == 0 {
		t.Fatalf("thin trace: %d tasks, %d attempts, %d hdfs spans, %d shuffles",
			tasks, attempts, hdfsSpans, shuffles)
	}
}

// slowNodeAnalysis injects a badly degraded disk on one DataNode, runs
// wordcount, and returns the rendered critical path + blame of the job's
// trace — after asserting the path bottoms out in an hdfs.write_pipeline
// span on the slow node, reached through a reduce attempt's ancestry.
// This is the paper's straggler exercise done from the trace alone.
func slowNodeAnalysis(t *testing.T) []byte {
	t.Helper()
	c, err := core.New(core.Options{Nodes: 6, Seed: 42, HDFS: hdfs.Config{BlockSize: 32 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := datagen.Text(c.FS(), "/in/corpus.txt", datagen.TextOpts{Lines: 400, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	slow := c.DFS.DataNode(3)
	slow.SetDiskSlowdown(40)
	if _, err := c.Run(jobs.WordCount("/in", "/out", true)); err != nil {
		t.Fatal(err)
	}
	spans, err := trace.Parse(mustRead(t, c, trace.Path("job_wordcount_combiner_0001")))
	if err != nil {
		t.Fatal(err)
	}
	roots := trace.Build(spans)
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	steps := trace.CriticalPath(roots[0])

	// The path must pass through a reduce attempt and end in the slow
	// node's write pipeline — cross-layer blame, not just "the job was slow".
	var sawReduce bool
	leaf := steps[len(steps)-1]
	for _, st := range steps {
		if st.Span.Name == "mr.reduce_attempt" {
			sawReduce = true
		}
	}
	if !sawReduce {
		t.Fatalf("critical path has no reduce attempt:\n%s", trace.RenderCriticalPath(steps))
	}
	if leaf.Span.Name != "hdfs.write_pipeline" || leaf.Span.Attrs["node"] != slow.Hostname() {
		t.Fatalf("critical path leaf = %s on %q, want hdfs.write_pipeline on %q:\n%s",
			leaf.Span.Name, leaf.Span.Attrs["node"], slow.Hostname(), trace.RenderCriticalPath(steps))
	}
	// The top HDFS-layer blame row must be the slow node's pipeline. (The
	// mr-layer rows above it are the job/attempt self time — scheduling
	// serialization, shuffle, sort — not storage blame.)
	blames := trace.BlameTable(steps)
	var hdfsTop *trace.Blame
	for i := range blames {
		if blames[i].Layer == "hdfs" {
			hdfsTop = &blames[i]
			break
		}
	}
	if hdfsTop == nil || hdfsTop.Kind != "hdfs.write_pipeline" || hdfsTop.Node != slow.Hostname() {
		t.Fatalf("top hdfs blame = %+v, want hdfs.write_pipeline on %q:\n%s",
			hdfsTop, slow.Hostname(), trace.RenderBlame(blames))
	}

	var out bytes.Buffer
	fmt.Fprintf(&out, "wordcount, %s disk x40 slower\n\n", slow.Hostname())
	out.WriteString(trace.RenderCriticalPath(steps))
	out.WriteByte('\n')
	out.WriteString(trace.RenderBlame(blames))
	return out.Bytes()
}

func mustRead(t *testing.T, c *core.MiniCluster, path string) []byte {
	t.Helper()
	data, err := vfs.ReadFile(c.FS(), path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return data
}

// TestGoldenTraceSlowNode pins the slow-node analysis as a text golden:
// the same injected fault must always produce the same critical path and
// the same blame attribution.
func TestGoldenTraceSlowNode(t *testing.T) {
	checkGolden(t, "golden_slow_node_analysis.txt", slowNodeAnalysis)
}

package jobs_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hdfs"
	"repro/internal/jobs"
	"repro/internal/serial"
	"repro/internal/vfs"
	"repro/internal/yarn"
)

// TestYARNModeEqualsSerial runs registry jobs on a cluster whose
// JobTracker negotiates every task container from a capacity
// ResourceManager instead of owning slots, and checks the output is
// byte-identical to the standalone runner. Scheduling machinery must
// never change answers.
func TestYARNModeEqualsSerial(t *testing.T) {
	for _, name := range []string{"wordcount", "airline-avg-combiner", "top-album"} {
		spec, ok := jobs.Lookup(name)
		if !ok {
			t.Fatalf("job %q not in registry", name)
		}
		t.Run(name, func(t *testing.T) {
			local := vfs.NewMemFS()
			p := stageFixture(t, local, name)
			sj, err := spec.Build(p)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := (&serial.Runner{FS: local, Parallelism: 3}).Run(sj); err != nil {
				t.Fatal(err)
			}
			serialOut, err := serial.ReadOutput(local, "/out")
			if err != nil {
				t.Fatal(err)
			}

			c, err := core.New(core.Options{
				Nodes: 6,
				Seed:  5,
				HDFS:  hdfs.Config{BlockSize: 32 << 10},
				YARN:  &yarn.CapacityOptions{},
			})
			if err != nil {
				t.Fatal(err)
			}
			p2 := stageFixture(t, c.FS(), name)
			dj, err := spec.Build(p2)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := c.Run(dj)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Failed {
				t.Fatalf("job failed under YARN mode: %v", rep.Err)
			}
			clusterOut, err := c.Output("/out")
			if err != nil {
				t.Fatal(err)
			}
			if serialOut != clusterOut {
				t.Fatalf("YARN-mode output differs from serial:\nserial  %d bytes\ncluster %d bytes",
					len(serialOut), len(clusterOut))
			}
			if c.RM == nil || !c.RM.AllFinished() {
				t.Fatalf("RM still has live applications after job completion")
			}
			if err := yarn.CheckLog(c.RM.EventLog().Events()); err != nil {
				t.Fatalf("scheduler event log violates invariants: %v", err)
			}
		})
	}
}

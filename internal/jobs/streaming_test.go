package jobs_test

import (
	"os/exec"
	"sort"
	"strings"
	"testing"

	"repro/internal/jobs"
	"repro/internal/serial"
	"repro/internal/vfs"
)

func requireTools(t *testing.T, tools ...string) {
	t.Helper()
	for _, tool := range tools {
		if _, err := exec.LookPath(tool); err != nil {
			t.Skipf("%s not available: %v", tool, err)
		}
	}
}

func TestStreamingWordCount(t *testing.T) {
	requireTools(t, "sh", "awk", "tr")
	fs := vfs.NewMemFS()
	if err := vfs.WriteFile(fs, "/in/f.txt", []byte("to be or not to be\nto be is to do\n")); err != nil {
		t.Fatal(err)
	}
	job := jobs.Streaming("/in", "/out",
		[]string{"sh", "-c", `tr -s ' ' '\n' | awk 'NF {print $1 "\t1"}'`},
		[]string{"awk", `-F` + "\t", `{s[$1]+=$2} END {for (k in s) print k "\t" s[k]}`},
	)
	if _, err := (&serial.Runner{FS: fs}).Run(job); err != nil {
		t.Fatal(err)
	}
	out, err := serial.ReadOutput(fs, "/out")
	if err != nil {
		t.Fatal(err)
	}
	got := parseKV(out)
	want := map[string]string{"to": "4", "be": "3", "or": "1", "not": "1", "is": "1", "do": "1"}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("streaming count[%s] = %q, want %s (all: %v)", k, got[k], v, got)
		}
	}
}

func TestStreamingIdentityPreservesRecords(t *testing.T) {
	requireTools(t, "cat")
	fs := vfs.NewMemFS()
	data := "k1\tv1\nk3\tv3\nk2\tv2\n"
	if err := vfs.WriteFile(fs, "/in/f.tsv", []byte(data)); err != nil {
		t.Fatal(err)
	}
	job := jobs.Streaming("/in", "/out", []string{"cat"}, []string{"cat"})
	if _, err := (&serial.Runner{FS: fs}).Run(job); err != nil {
		t.Fatal(err)
	}
	out, err := serial.ReadOutput(fs, "/out")
	if err != nil {
		t.Fatal(err)
	}
	inLines := strings.Split(strings.TrimSpace(data), "\n")
	sort.Strings(inLines) // framework sorts by key
	outLines := strings.Split(strings.TrimSpace(out), "\n")
	if len(inLines) != len(outLines) {
		t.Fatalf("record count changed: %v vs %v", inLines, outLines)
	}
	for i := range inLines {
		if inLines[i] != outLines[i] {
			t.Fatalf("record %d: %q vs %q", i, inLines[i], outLines[i])
		}
	}
}

func TestStreamingCommandFailureSurfaces(t *testing.T) {
	requireTools(t, "sh")
	fs := vfs.NewMemFS()
	if err := vfs.WriteFile(fs, "/in/f.txt", []byte("x\n")); err != nil {
		t.Fatal(err)
	}
	job := jobs.Streaming("/in", "/out", []string{"sh", "-c", "exit 3"}, []string{"sh", "-c", "cat"})
	if _, err := (&serial.Runner{FS: fs}).Run(job); err == nil {
		t.Fatal("failing mapper command did not fail the job")
	}
}

package jobs_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/faultinject"
	"repro/internal/faultinject/invariant"
	"repro/internal/hdfs"
	"repro/internal/jobs"
	"repro/internal/mapreduce"
	"repro/internal/mrcluster"
	"repro/internal/serial"
	"repro/internal/vfs"
)

// faultPlanFor builds the crash/restart + task-error gauntlet a job must
// sail through without changing a byte of output: one node dies early and
// comes back, a second bounces later, and every task scope of the job
// takes probabilistic errors.
func faultPlanFor(jobName string) faultinject.Plan {
	return faultinject.Plan{Seed: 77, Faults: []faultinject.Fault{
		{At: 1 * time.Second, Kind: faultinject.TaskError, Task: mrcluster.TaskFault{
			JobName: jobName, Scope: mrcluster.ScopeMap, Probability: 0.25, AfterFraction: 0.5}},
		{At: 1 * time.Second, Kind: faultinject.TaskError, Task: mrcluster.TaskFault{
			JobName: jobName, Scope: mrcluster.ScopeShuffle, Probability: 0.2, AfterFraction: 0.4}},
		{At: 1 * time.Second, Kind: faultinject.TaskError, Task: mrcluster.TaskFault{
			JobName: jobName, Scope: mrcluster.ScopeReduce, Probability: 0.2, AfterFraction: 0.6}},
		{At: 2 * time.Second, Kind: faultinject.NodeCrash, Node: 1},
		{At: 9 * time.Second, Kind: faultinject.NodeRestart, Node: 1},
		{At: 12 * time.Second, Kind: faultinject.NodeCrash, Node: 4},
		{At: 20 * time.Second, Kind: faultinject.NodeRestart, Node: 4},
	}}
}

// faultCluster builds the cluster the gauntlet runs on: fast heartbeats so
// the schedulers notice the crashes within the test's virtual horizon, and
// a deeper retry budget to absorb the injected task errors.
func faultCluster(t *testing.T) *core.MiniCluster {
	t.Helper()
	c, err := core.New(core.Options{
		Nodes: 6, Racks: 2, Seed: 5,
		HDFS: hdfs.Config{
			BlockSize:           16 << 10,
			Replication:         3,
			HeartbeatInterval:   time.Second,
			HeartbeatExpiry:     5 * time.Second,
			ReplMonitorInterval: 2 * time.Second,
		},
		MR: mrcluster.Config{
			MaxAttempts:       6,
			HeartbeatInterval: time.Second,
			TrackerExpiry:     5 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// runFaultEquivalence stages identical input standalone and on the
// cluster, runs the job serially and distributed-under-faults, and
// requires byte-equal outputs plus a clean settle.
func runFaultEquivalence(t *testing.T, stage func(fs vfs.FileSystem) error,
	build func(fs vfs.FileSystem) (*mapreduce.Job, error)) {
	t.Helper()

	local := vfs.NewMemFS()
	if err := stage(local); err != nil {
		t.Fatal(err)
	}
	sj, err := build(local)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&serial.Runner{FS: local, Parallelism: 3}).Run(sj); err != nil {
		t.Fatal(err)
	}
	want, err := serial.ReadOutput(local, "/out")
	if err != nil {
		t.Fatal(err)
	}

	c := faultCluster(t)
	if err := stage(c.FS()); err != nil {
		t.Fatal(err)
	}
	dj, err := build(c.FS())
	if err != nil {
		t.Fatal(err)
	}
	plan := faultPlanFor(dj.Name)
	in, err := faultinject.New(faultinject.Target{Engine: c.Engine, DFS: c.DFS, MR: c.MR}, plan)
	if err != nil {
		t.Fatal(err)
	}
	base := c.Engine.Now()
	in.Install()
	rep, err := c.Run(dj)
	if err != nil {
		t.Fatalf("%s failed under fault plan: %v\nlog:\n%s", dj.Name, err, in.LogString())
	}
	if err := invariant.CountersConsistent(rep); err != nil {
		t.Fatalf("%v\nlog:\n%s", err, in.LogString())
	}
	got, err := c.Output("/out")
	if err != nil {
		t.Fatal(err)
	}
	if err := invariant.OutputsEqual(want, got); err != nil {
		t.Fatalf("%s under faults: %v\nlog:\n%s", dj.Name, err, in.LogString())
	}
	c.Engine.RunUntil(base + plan.Horizon() + time.Second)
	if _, err := invariant.FsckSettled(c.DFS, 3*time.Minute); err != nil {
		t.Fatalf("%v\nlog:\n%s", err, in.LogString())
	}
}

// TestWordCountEquivalentUnderFaults: wordcount's distributed output under
// the crash/restart + task-error plan byte-equals the serial runner's.
func TestWordCountEquivalentUnderFaults(t *testing.T) {
	runFaultEquivalence(t,
		func(fs vfs.FileSystem) error {
			_, _, err := datagen.Text(fs, "/in/corpus.txt", datagen.TextOpts{Lines: 600, Seed: 77})
			return err
		},
		func(fs vfs.FileSystem) (*mapreduce.Job, error) {
			return jobs.WordCount("/in", "/out", false), nil
		})
}

// TestTeraSortEquivalentUnderFaults: the total-order sort keeps its exact
// global order (and every record) through the same fault gauntlet.
func TestTeraSortEquivalentUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("tier-2 chaos test")
	}
	runFaultEquivalence(t,
		func(fs vfs.FileSystem) error {
			_, _, err := datagen.Sortable(fs, "/in/records.txt", datagen.SortableOpts{Rows: 5000, Seed: 77})
			return err
		},
		func(fs vfs.FileSystem) (*mapreduce.Job, error) {
			return jobs.TeraSort(fs, "/in", "/out", 4)
		})
}

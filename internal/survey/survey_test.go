package survey

import (
	"math"
	"strings"
	"testing"
)

func TestTableIVSumsToRespondents(t *testing.T) {
	total := 0
	for _, r := range TableIV {
		total += r.Count
	}
	if total != Respondents {
		t.Fatalf("Table IV counts sum to %d, want %d", total, Respondents)
	}
}

func TestFitIntegerResponsesMatchesMoments(t *testing.T) {
	cases := []struct {
		mean, sd float64
		lo, hi   int
	}{
		{6.6, 1.2, 0, 10},
		{0.03, 0.2, 0, 10}, // the near-degenerate Hadoop "before" row
		{4.53, 1.16, 0, 10},
		{3.5, 0.7, 1, 4},
		{2.5, 1.1, 1, 4},
	}
	for _, c := range cases {
		xs := FitIntegerResponses(Respondents, c.mean, c.sd, c.lo, c.hi, 7)
		if len(xs) != Respondents {
			t.Fatalf("cohort size %d", len(xs))
		}
		for _, x := range xs {
			if x < c.lo || x > c.hi {
				t.Fatalf("response %d outside [%d,%d]", x, c.lo, c.hi)
			}
		}
		if dm := math.Abs(Mean(xs) - c.mean); dm > 0.06 {
			t.Fatalf("mean %.3f vs target %.3f (Δ=%.3f)", Mean(xs), c.mean, dm)
		}
		if ds := math.Abs(SampleSD(xs) - c.sd); ds > 0.15 {
			t.Fatalf("sd %.3f vs target %.3f (Δ=%.3f)", SampleSD(xs), c.sd, ds)
		}
	}
}

func TestFitDeterministic(t *testing.T) {
	a := FitIntegerResponses(Respondents, 3.1, 0.9, 1, 4, 42)
	b := FitIntegerResponses(Respondents, 3.1, 0.9, 1, 4, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different cohorts")
		}
	}
}

func TestEveryPublishedRowIsAttainable(t *testing.T) {
	// Verify the published moments are achievable with integer responses
	// on the stated scales — a consistency check on the paper's tables.
	for i, r := range TableI {
		for _, half := range []struct {
			mean, sd float64
		}{{r.BeforeMean, r.BeforeSD}, {r.AfterMean, r.AfterSD}} {
			s := Synthesize(half.mean, half.sd, 0, 10, int64(i))
			if math.Abs(s.Mean-half.mean) > 0.06 || math.Abs(s.SD-half.sd) > 0.2 {
				t.Fatalf("Table I %s: synth %.2f±%.2f vs paper %.2f±%.2f",
					r.Topic, s.Mean, s.SD, half.mean, half.sd)
			}
		}
	}
	for i, r := range append(append([]RatedRow{}, TableII...), TableIII...) {
		s := Synthesize(r.Mean, r.SD, 1, 4, int64(50+i))
		if math.Abs(s.Mean-r.Mean) > 0.06 || math.Abs(s.SD-r.SD) > 0.2 {
			t.Fatalf("%s: synth %.2f±%.2f vs paper %.2f±%.2f", r.Label, s.Mean, s.SD, r.Mean, r.SD)
		}
	}
}

func TestMeanAndSD(t *testing.T) {
	xs := []int{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean = %v", m)
	}
	want := math.Sqrt(32.0 / 7.0)
	if sd := SampleSD(xs); math.Abs(sd-want) > 1e-12 {
		t.Fatalf("sd = %v, want %v", sd, want)
	}
	if SampleSD([]int{3}) != 0 || Mean(nil) != 0 {
		t.Fatal("degenerate inputs mishandled")
	}
}

func TestRenderTables(t *testing.T) {
	t1 := RenderTableI()
	for _, want := range []string{"Hadoop MapReduce", "0.03", "4.53", "Level of Proficiency"} {
		if !strings.Contains(t1, want) {
			t.Fatalf("Table I missing %q:\n%s", want, t1)
		}
	}
	t2 := RenderTableII()
	if !strings.Contains(t2, "Set up Hadoop cluster") || !strings.Contains(t2, "2.50") {
		t.Fatalf("Table II:\n%s", t2)
	}
	t3 := RenderTableIII()
	if !strings.Contains(t3, "In-class lab") {
		t.Fatalf("Table III:\n%s", t3)
	}
	t4 := RenderTableIV()
	for _, want := range []string{"Junior", "14", "of 39 enrolled"} {
		if !strings.Contains(t4, want) {
			t.Fatalf("Table IV missing %q:\n%s", want, t4)
		}
	}
}

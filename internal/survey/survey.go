// Package survey reproduces the paper's evaluation data: the four survey
// tables from the Fall 2013 offering (n=29 respondents of 39 enrolled).
// Surveys of human subjects cannot be re-run by a systems reproduction,
// so this package takes the published summary statistics as ground truth
// and (a) records them, (b) synthesises integer response cohorts whose
// sample mean and standard deviation match the published moments, and
// (c) recomputes the tables from the synthetic cohorts — verifying that
// the published statistics are attainable with the stated scales and n.
package survey

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/sim"
)

// Cohort sizes from the paper.
const (
	Respondents = 29
	ClassSize   = 39
)

// ProficiencyRow is one row of Table I (0–10 scale, before/after).
type ProficiencyRow struct {
	Topic                string
	BeforeMean, BeforeSD float64
	AfterMean, AfterSD   float64
}

// TableI is the published "Level of Proficiency" data.
var TableI = []ProficiencyRow{
	{"Java", 6.6, 1.2, 7.3, 1.1},
	{"Linux", 5.86, 1.7, 7.1, 1.7},
	{"Networking", 4.38, 1.6, 6.29, 1.5},
	{"Hadoop MapReduce", 0.03, 0.2, 4.53, 1.16},
}

// RatedRow is one row of Tables II and III (Likert-style scales).
type RatedRow struct {
	Label string
	Mean  float64
	SD    float64
}

// TableII is the published "Time to Complete" data (scale 1–4: <30 min,
// 30 min–2 h, 2–4 h, >4 h).
var TableII = []RatedRow{
	{"First Assignment", 3.5, 0.7},
	{"Second Assignment", 3.1, 0.9},
	{"Set up Hadoop cluster", 2.5, 1.1},
}

// TableIII is the published "Helpfulness of Lectures and Tutorials" data
// (scale 1–4: not useful … very useful).
var TableIII = []RatedRow{
	{"Lecture", 3.0, 0.9},
	{"In-class lab", 3.6, 0.7},
	{"Hadoop cluster tutorial", 2.9, 0.82},
}

// CountRow is one row of Table IV.
type CountRow struct {
	Level string
	Count int
}

// TableIV is the published "Lowest level of CS course that Hadoop
// MapReduce should be introduced" counts.
var TableIV = []CountRow{
	{"Senior", 7},
	{"Junior", 14},
	{"Sophomore", 6},
	{"Freshman", 2},
}

// Mean returns the arithmetic mean.
func Mean(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += float64(x)
	}
	return s / float64(len(xs))
}

// SampleSD returns the n−1 sample standard deviation.
func SampleSD(xs []int) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := float64(x) - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// FitIntegerResponses synthesises n integer responses in [lo, hi] whose
// sample mean and SD match the targets as closely as integer data allows.
// It seeds a symmetric two-point spread at the right variance, rounds,
// then hill-climbs with single ±1 adjustments. Deterministic for a seed.
func FitIntegerResponses(n int, mean, sd float64, lo, hi int, seed int64) []int {
	rng := sim.NewRand(seed).Derive("survey")
	xs := make([]int, n)
	// Continuous seed: half +a, half −a around the mean.
	a := sd * math.Sqrt(float64(n-1)/float64(n))
	for i := range xs {
		v := mean
		if i%2 == 0 {
			v += a
		} else {
			v -= a
		}
		xs[i] = clampInt(int(math.Round(v)), lo, hi)
	}
	errOf := func() float64 {
		dm := Mean(xs) - mean
		ds := SampleSD(xs) - sd
		return dm*dm + 4*ds*ds
	}
	// Hill-climb: try ±1 moves, keep improvements.
	best := errOf()
	for pass := 0; pass < 400 && best > 1e-6; pass++ {
		improved := false
		order := rng.Shuffled(n)
		for _, i := range order {
			for _, d := range []int{1, -1} {
				nv := xs[i] + d
				if nv < lo || nv > hi {
					continue
				}
				old := xs[i]
				xs[i] = nv
				if e := errOf(); e < best {
					best = e
					improved = true
				} else {
					xs[i] = old
				}
			}
		}
		if !improved {
			break
		}
	}
	return xs
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Synthesized holds a cohort and its recomputed statistics.
type Synthesized struct {
	Responses []int
	Mean      float64
	SD        float64
}

// Synthesize fits a cohort for a published (mean, sd) on an integer scale.
func Synthesize(mean, sd float64, lo, hi int, seed int64) Synthesized {
	xs := FitIntegerResponses(Respondents, mean, sd, lo, hi, seed)
	return Synthesized{Responses: xs, Mean: Mean(xs), SD: SampleSD(xs)}
}

// RenderTableI prints Table I with published and recomputed statistics.
func RenderTableI() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: Level of Proficiency (0 to 10), n=%d\n", Respondents)
	fmt.Fprintf(&b, "%-18s %-22s %-22s\n", "Topic", "Before (paper|synth)", "After (paper|synth)")
	for i, r := range TableI {
		before := Synthesize(r.BeforeMean, r.BeforeSD, 0, 10, int64(100+i))
		after := Synthesize(r.AfterMean, r.AfterSD, 0, 10, int64(200+i))
		fmt.Fprintf(&b, "%-18s %5.2f±%-4.2f|%5.2f±%-4.2f %5.2f±%-4.2f|%5.2f±%-4.2f\n",
			r.Topic, r.BeforeMean, r.BeforeSD, before.Mean, before.SD,
			r.AfterMean, r.AfterSD, after.Mean, after.SD)
	}
	return b.String()
}

// renderRated prints Tables II/III.
func renderRated(title string, scaleNote string, rows []RatedRow, seedBase int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s), n=%d\n", title, scaleNote, Respondents)
	fmt.Fprintf(&b, "%-26s %-14s %-14s\n", "Item", "Paper", "Synthesized")
	for i, r := range rows {
		s := Synthesize(r.Mean, r.SD, 1, 4, seedBase+int64(i))
		fmt.Fprintf(&b, "%-26s %5.2f±%-6.2f %5.2f±%-6.2f\n", r.Label, r.Mean, r.SD, s.Mean, s.SD)
	}
	return b.String()
}

// RenderTableII prints Table II with published and recomputed statistics.
func RenderTableII() string {
	return renderRated("Table II: Time to Complete",
		"1: <30m, 2: 30m-2h, 3: 2h-4h, 4: >4h", TableII, 300)
}

// RenderTableIII prints Table III with published and recomputed statistics.
func RenderTableIII() string {
	return renderRated("Table III: Helpfulness of Lectures and Tutorials",
		"1: not useful ... 4: very useful", TableIII, 400)
}

// RenderTableIV prints Table IV.
func RenderTableIV() string {
	var b strings.Builder
	total := 0
	fmt.Fprintf(&b, "Table IV: Lowest level to teach Hadoop/MapReduce\n")
	fmt.Fprintf(&b, "%-12s %s\n", "Year", "Survey Counts")
	for _, r := range TableIV {
		fmt.Fprintf(&b, "%-12s %d\n", r.Level, r.Count)
		total += r.Count
	}
	fmt.Fprintf(&b, "%-12s %d (of %d enrolled)\n", "Total", total, ClassSize)
	return b.String()
}

// Package faultinject is the unified, deterministic fault-injection
// subsystem for the minihadoop stack. A Plan is a declarative, seeded
// schedule of typed faults — node crashes and restarts, silent disk
// corruption, stragglers, network partitions, heartbeat loss, task
// errors — that an Injector executes on the sim engine, so that identical
// seeds replay bit-for-bit. It replaces the fragmented per-layer chaos
// hooks (the map-only FaultSpec, ad-hoc Kill/Start loops in tests) with
// one engine any layer can consume, and pairs with the invariant
// sub-package to turn fault scenarios into reusable correctness checks.
package faultinject

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/mrcluster"
	"repro/internal/sim"
)

// Kind names a fault type.
type Kind string

// The fault taxonomy (see docs/FAULTS.md for the full semantics).
const (
	// NodeCrash kills the DataNode and TaskTracker daemons on a node.
	// Replica data stays on disk; a later NodeRestart re-verifies it.
	NodeCrash Kind = "NodeCrash"
	// NodeRestart (re)starts the daemons on a node.
	NodeRestart Kind = "NodeRestart"
	// DiskCorruptBlock silently flips bits in one stored block replica;
	// the checksum on the read path detects it.
	DiskCorruptBlock Kind = "DiskCorruptBlock"
	// SlowNode multiplies task durations on a node by Factor — the
	// straggler behind speculative execution. Factor <= 1 clears it.
	SlowNode Kind = "SlowNode"
	// NetPartition cuts a node (or, with RackScoped, a whole rack) off
	// from the rest of the data-plane network.
	NetPartition Kind = "NetPartition"
	// NetHeal restores full connectivity.
	NetHeal Kind = "NetHeal"
	// HeartbeatDrop mutes a node's heartbeats for Window while its
	// daemons keep working — the control-plane half of a partition.
	HeartbeatDrop Kind = "HeartbeatDrop"
	// TaskError arms a mrcluster.TaskFault (map, reduce or shuffle scope)
	// — the successor of the old map-only FaultSpec.
	TaskError Kind = "TaskError"
)

// AnyNode lets the injector pick the target with the plan's seeded RNG.
const AnyNode = cluster.NodeID(-1)

// Fault is one scheduled fault.
type Fault struct {
	// At is the fire time, relative to Injector.Install.
	At time.Duration
	// Kind selects the fault type.
	Kind Kind
	// Node is the target node for node-scoped kinds; AnyNode defers the
	// choice to the injector's seeded RNG at fire time.
	Node cluster.NodeID
	// RackScoped, with NetPartition, isolates the whole rack Rack
	// instead of a single node.
	RackScoped bool
	// Rack is the rack to isolate when RackScoped is set.
	Rack int
	// Factor is the SlowNode straggler multiplier.
	Factor float64
	// Window is the HeartbeatDrop mute duration.
	Window time.Duration
	// Task is the TaskError payload.
	Task mrcluster.TaskFault
}

// Plan is a seeded schedule of faults. The seed drives every random
// choice the injector makes (AnyNode resolution, corrupt-block picks), so
// a plan replays identically however often it is installed.
type Plan struct {
	Seed   int64
	Faults []Fault
}

// Sorted returns the faults in execution order (stable by At).
func (p Plan) Sorted() []Fault {
	out := append([]Fault(nil), p.Faults...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Horizon returns the fire time of the last fault (plus any trailing
// HeartbeatDrop window) — how long a scenario must run to see the whole
// plan.
func (p Plan) Horizon() time.Duration {
	var h time.Duration
	for _, f := range p.Faults {
		end := f.At
		if f.Kind == HeartbeatDrop {
			end += f.Window
		}
		if end > h {
			h = end
		}
	}
	return h
}

// Validate checks the plan for ill-formed faults.
func (p Plan) Validate() error {
	for i, f := range p.Faults {
		if f.At < 0 {
			return fmt.Errorf("faultinject: fault %d (%s) at negative time %v", i, f.Kind, f.At)
		}
		switch f.Kind {
		case NodeCrash, NodeRestart, DiskCorruptBlock, NetHeal:
		case SlowNode:
			if f.Factor < 0 {
				return fmt.Errorf("faultinject: fault %d SlowNode factor %v < 0", i, f.Factor)
			}
		case NetPartition:
			if f.RackScoped && f.Rack < 0 {
				return fmt.Errorf("faultinject: fault %d NetPartition rack %d < 0", i, f.Rack)
			}
		case HeartbeatDrop:
			if f.Window <= 0 {
				return fmt.Errorf("faultinject: fault %d HeartbeatDrop needs a positive Window", i)
			}
		case TaskError:
			if f.Task.JobName == "" {
				return fmt.Errorf("faultinject: fault %d TaskError needs Task.JobName", i)
			}
			if f.Task.Probability <= 0 {
				return fmt.Errorf("faultinject: fault %d TaskError needs Task.Probability > 0", i)
			}
		default:
			return fmt.Errorf("faultinject: fault %d has unknown kind %q", i, f.Kind)
		}
	}
	return nil
}

// PlanOpts parameterises RandomPlan.
type PlanOpts struct {
	// Nodes and Racks describe the topology the plan targets.
	Nodes int
	Racks int
	// Events is the number of faults to schedule (default 10).
	Events int
	// Horizon is the window fault times are drawn from (default 2 min).
	Horizon time.Duration
	// MaxConcurrentDown caps how many nodes the plan ever has crashed at
	// once (default 1) — set it to replication-1 to keep data readable.
	MaxConcurrentDown int
	// Kinds restricts the fault mix (default: crashes, restarts,
	// heartbeat drops and stragglers — the always-safe set).
	Kinds []Kind
	// Jobs supplies job names for TaskError faults; TaskError is only
	// generated when it is both allowed by Kinds and given a job here.
	Jobs []string
	// CrashProbability biases the mix toward NodeCrash (default 0.4).
	CrashProbability float64
}

func (o PlanOpts) withDefaults() PlanOpts {
	if o.Nodes <= 0 {
		o.Nodes = 6
	}
	if o.Racks <= 0 {
		o.Racks = 1
	}
	if o.Events <= 0 {
		o.Events = 10
	}
	if o.Horizon <= 0 {
		o.Horizon = 2 * time.Minute
	}
	if o.MaxConcurrentDown <= 0 {
		o.MaxConcurrentDown = 1
	}
	if len(o.Kinds) == 0 {
		o.Kinds = []Kind{NodeCrash, NodeRestart, HeartbeatDrop, SlowNode}
	}
	if o.CrashProbability <= 0 {
		o.CrashProbability = 0.4
	}
	return o
}

// RandomPlan generates a seeded random plan that respects the options'
// safety envelope: never more than MaxConcurrentDown nodes crashed at
// once, restarts only for crashed nodes, heals only after partitions, and
// every generated target concrete (no AnyNode), so the plan is fully
// determined by (seed, opts). The same seed and opts always return the
// same plan.
func RandomPlan(seed int64, opts PlanOpts) Plan {
	o := opts.withDefaults()
	rng := sim.NewRand(seed).Derive("faultplan")

	// Draw and sort the fire times first so fault state (what is down,
	// whether the net is partitioned) evolves in execution order.
	times := make([]time.Duration, o.Events)
	for i := range times {
		times[i] = time.Duration(rng.Int63n(int64(o.Horizon)))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

	allowed := func(k Kind) bool {
		for _, a := range o.Kinds {
			if a == k {
				return true
			}
		}
		return false
	}
	down := map[cluster.NodeID]bool{}
	downList := func() []cluster.NodeID {
		var out []cluster.NodeID
		for id := cluster.NodeID(0); int(id) < o.Nodes; id++ {
			if down[id] {
				out = append(out, id)
			}
		}
		return out
	}
	upList := func() []cluster.NodeID {
		var out []cluster.NodeID
		for id := cluster.NodeID(0); int(id) < o.Nodes; id++ {
			if !down[id] {
				out = append(out, id)
			}
		}
		return out
	}
	partitioned := false

	p := Plan{Seed: seed}
	for _, at := range times {
		f := Fault{At: at}
		switch {
		case allowed(NodeCrash) && len(down) < o.MaxConcurrentDown && rng.Bernoulli(o.CrashProbability):
			ups := upList()
			f.Kind = NodeCrash
			f.Node = ups[rng.Choice(len(ups))]
			down[f.Node] = true
		case allowed(NodeRestart) && len(down) > 0 && rng.Bernoulli(0.6):
			ds := downList()
			f.Kind = NodeRestart
			f.Node = ds[rng.Choice(len(ds))]
			delete(down, f.Node)
		case allowed(NetPartition) && !partitioned && rng.Bernoulli(0.3):
			f.Kind = NetPartition
			if o.Racks > 1 && rng.Bernoulli(0.5) {
				f.RackScoped = true
				f.Rack = rng.Choice(o.Racks)
			} else {
				f.Node = cluster.NodeID(rng.Choice(o.Nodes))
			}
			partitioned = true
		case allowed(NetHeal) && partitioned:
			f.Kind = NetHeal
			partitioned = false
		case allowed(TaskError) && len(o.Jobs) > 0 && rng.Bernoulli(0.3):
			f.Kind = TaskError
			f.Task = mrcluster.TaskFault{
				JobName:       o.Jobs[rng.Choice(len(o.Jobs))],
				Scope:         mrcluster.TaskScope(rng.Choice(3)),
				Probability:   0.2 + 0.3*rng.Float64(),
				AfterFraction: rng.Float64(),
			}
		case allowed(DiskCorruptBlock) && rng.Bernoulli(0.3):
			f.Kind = DiskCorruptBlock
			f.Node = cluster.NodeID(rng.Choice(o.Nodes))
		case allowed(HeartbeatDrop) && rng.Bernoulli(0.5):
			f.Kind = HeartbeatDrop
			f.Node = cluster.NodeID(rng.Choice(o.Nodes))
			f.Window = time.Duration(1+rng.Intn(20)) * time.Second
		case allowed(SlowNode):
			f.Kind = SlowNode
			f.Node = cluster.NodeID(rng.Choice(o.Nodes))
			f.Factor = 2 + 6*rng.Float64()
		default:
			// No Bernoulli draw fired this slot. Fall back to whatever the
			// Kinds list still permits; a slot where nothing is eligible is
			// dropped (so a plan can hold fewer than Events faults).
			switch {
			case allowed(DiskCorruptBlock):
				f.Kind = DiskCorruptBlock
				f.Node = cluster.NodeID(rng.Choice(o.Nodes))
			case allowed(HeartbeatDrop):
				f.Kind = HeartbeatDrop
				f.Node = cluster.NodeID(rng.Choice(o.Nodes))
				f.Window = time.Duration(1+rng.Intn(20)) * time.Second
			case allowed(NodeRestart) && len(down) > 0:
				ds := downList()
				f.Kind = NodeRestart
				f.Node = ds[rng.Choice(len(ds))]
				delete(down, f.Node)
			case allowed(NodeCrash) && len(down) < o.MaxConcurrentDown:
				ups := upList()
				f.Kind = NodeCrash
				f.Node = ups[rng.Choice(len(ups))]
				down[f.Node] = true
			default:
				continue
			}
		}
		p.Faults = append(p.Faults, f)
	}
	// Leave the world in a recoverable state: restart whatever is still
	// down and heal any open partition just past the horizon, so settle
	// invariants (fsck-clean-after-settle) are meaningful for every plan.
	tail := o.Horizon + time.Second
	for _, id := range downList() {
		p.Faults = append(p.Faults, Fault{At: tail, Kind: NodeRestart, Node: id})
	}
	if partitioned {
		p.Faults = append(p.Faults, Fault{At: tail, Kind: NetHeal})
	}
	return p
}

package invariant_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/faultinject/invariant"
	"repro/internal/hdfs"
	"repro/internal/mapreduce"
	"repro/internal/mrcluster"
	"repro/internal/sim"
)

func newDFS(t *testing.T, nodes int) *hdfs.MiniDFS {
	t.Helper()
	eng := sim.NewEngine()
	topo := cluster.NewTopology(cluster.PaperNodeConfig(nodes, 1))
	d, err := hdfs.NewMiniDFS(eng, topo, hdfs.Options{Seed: 21, Config: hdfs.Config{
		BlockSize:           2 << 10,
		Replication:         3,
		HeartbeatInterval:   time.Second,
		HeartbeatExpiry:     5 * time.Second,
		ReplMonitorInterval: 2 * time.Second,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestWriteTrackerRoundTripAndLossDetection(t *testing.T) {
	d := newDFS(t, 4)
	c := d.Client(hdfs.GatewayNode)
	w := invariant.NewWriteTracker()
	for i := 0; i < 3; i++ {
		if err := w.Put(c, fmt.Sprintf("/f%d", i), []byte(strings.Repeat("x", 3000+i))); err != nil {
			t.Fatal(err)
		}
	}
	if w.Len() != 3 {
		t.Fatalf("tracked %d files, want 3", w.Len())
	}
	if err := w.Check(c); err != nil {
		t.Fatalf("healthy cluster failed the check: %v", err)
	}
	// Losing every replica must be detected as a lost acked write.
	for _, dn := range d.DataNodes() {
		dn.WipeAndKill()
	}
	if err := w.Check(c); err == nil {
		t.Fatal("check passed with all replicas wiped")
	}
}

func TestFsckSettledHealsAndTimesOut(t *testing.T) {
	d := newDFS(t, 4)
	c := d.Client(hdfs.GatewayNode)
	w := invariant.NewWriteTracker()
	if err := w.Put(c, "/data", []byte(strings.Repeat("y", 8<<10))); err != nil {
		t.Fatal(err)
	}
	if err := invariant.FsckHealthy(d); err != nil {
		t.Fatal(err)
	}
	// Kill one node: the monitor re-replicates onto the remaining three.
	d.DataNode(0).Kill()
	if _, err := invariant.FsckSettled(d, 2*time.Minute); err != nil {
		t.Fatalf("did not settle after single kill: %v", err)
	}
	// Kill a second: only two nodes left for replication 3 — the deficit
	// is unfixable, so settling must time out with under-replication.
	d.DataNode(1).Kill()
	if _, err := invariant.FsckSettled(d, 30*time.Second); err == nil {
		t.Fatal("settled with only 2 live nodes and replication 3")
	}
}

func goodReport() *mrcluster.Report {
	ctr := mapreduce.NewCounters()
	ctr.Set(mapreduce.CtrLaunchedMaps, 5)
	ctr.Set(mapreduce.CtrLaunchedReduces, 2)
	ctr.Set(mapreduce.CtrDataLocalMaps, 3)
	ctr.Set(mapreduce.CtrRackLocalMaps, 1)
	ctr.Set(mapreduce.CtrRemoteMaps, 1)
	ctr.Set(mapreduce.CtrSpeculativeLaunch, 1)
	ctr.Set(mapreduce.CtrSpeculativeWon, 1)
	ctr.Set(mapreduce.CtrFailedMaps, 1)
	ctr.Set(mapreduce.CtrTaskRetries, 1)
	return &mrcluster.Report{MapTasks: 4, ReduceTasks: 2, Counters: ctr}
}

func TestCountersConsistent(t *testing.T) {
	if err := invariant.CountersConsistent(goodReport()); err != nil {
		t.Fatalf("consistent report rejected: %v", err)
	}
	breakers := []struct {
		name  string
		mutil func(*mrcluster.Report)
	}{
		{"launched < tasks", func(r *mrcluster.Report) { r.Counters.Set(mapreduce.CtrLaunchedMaps, 3) }},
		{"locality > launched", func(r *mrcluster.Report) { r.Counters.Set(mapreduce.CtrDataLocalMaps, 9) }},
		{"spec won > launched", func(r *mrcluster.Report) { r.Counters.Set(mapreduce.CtrSpeculativeWon, 2) }},
		{"retries != failures", func(r *mrcluster.Report) { r.Counters.Set(mapreduce.CtrTaskRetries, 7) }},
	}
	for _, b := range breakers {
		r := goodReport()
		b.mutil(r)
		if err := invariant.CountersConsistent(r); err == nil {
			t.Fatalf("%s: inconsistency not detected", b.name)
		}
	}
}

func TestOutputsEqual(t *testing.T) {
	if err := invariant.OutputsEqual("a\nb\n", "a\nb\n"); err != nil {
		t.Fatal(err)
	}
	if err := invariant.OutputsEqual("a\nb\n", "a\nc\n"); err == nil {
		t.Fatal("differing outputs not detected")
	}
}

// Package invariant is the checker library that turns fault scenarios
// into correctness tests. Each checker states one property the simulated
// stack must preserve under any plan that respects the safety envelope
// (≤ replication-1 concurrent crashes, partitions eventually healed):
// acked writes stay readable, fsck returns to clean after the monitor
// settles, distributed job output equals the serial runner's, and job
// counters stay arithmetically consistent.
package invariant

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"repro/internal/hdfs"
	"repro/internal/mapreduce"
	"repro/internal/mrcluster"
	"repro/internal/vfs"
)

// WriteTracker remembers every write HDFS acknowledged so the
// no-acked-write-lost invariant can be checked at any later point.
type WriteTracker struct {
	files map[string][]byte
}

// NewWriteTracker returns an empty tracker.
func NewWriteTracker() *WriteTracker {
	return &WriteTracker{files: map[string][]byte{}}
}

// Put writes data through the client and records it only if the write was
// acknowledged; an error is returned (and nothing recorded) otherwise.
func (w *WriteTracker) Put(c *hdfs.Client, path string, data []byte) error {
	if err := vfs.WriteFile(c, path, data); err != nil {
		return err
	}
	w.files[path] = append([]byte(nil), data...)
	return nil
}

// Len returns the number of acknowledged files tracked.
func (w *WriteTracker) Len() int { return len(w.files) }

// Check re-reads every acknowledged file and fails on the first that is
// unreadable or differs from the acknowledged bytes.
func (w *WriteTracker) Check(c *hdfs.Client) error {
	for _, path := range sortedKeys(w.files) {
		got, err := vfs.ReadFile(c, path)
		if err != nil {
			return fmt.Errorf("invariant: acked write %s lost: %w", path, err)
		}
		if !bytes.Equal(got, w.files[path]) {
			return fmt.Errorf("invariant: acked write %s corrupted: %d bytes read, %d acked",
				path, len(got), len(w.files[path]))
		}
	}
	return nil
}

func sortedKeys(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FsckHealthy fails if fsck reports any missing block right now.
func FsckHealthy(d *hdfs.MiniDFS) error {
	rep, err := d.Fsck()
	if err != nil {
		return err
	}
	if !rep.Healthy() {
		return fmt.Errorf("invariant: fsck CORRUPT (%d missing blocks):\n%s", rep.MissingBlocks, rep)
	}
	return nil
}

// FsckSettled advances the engine until the replication monitor has fully
// repaired the filesystem — no missing and no under-replicated blocks — or
// fails after patience of virtual time. Historical CorruptReplicas entries
// are tolerated: they record detections, and the replicas were already
// invalidated and re-replicated.
func FsckSettled(d *hdfs.MiniDFS, patience time.Duration) (*hdfs.FsckReport, error) {
	const step = 5 * time.Second
	// A just-killed node is still "alive" to the NameNode until its
	// heartbeats expire; advance past the expiry first so the verdict is
	// about the settled state, not the detection lag.
	cfg := d.NN.Config()
	d.Engine.Advance(cfg.HeartbeatExpiry + cfg.HeartbeatInterval)
	var rep *hdfs.FsckReport
	var err error
	for waited := time.Duration(0); ; waited += step {
		rep, err = d.Fsck()
		if err != nil {
			return nil, err
		}
		if rep.Healthy() && rep.UnderReplicated == 0 {
			return rep, nil
		}
		if waited >= patience {
			return rep, fmt.Errorf(
				"invariant: filesystem did not settle within %v (%d missing, %d under-replicated):\n%s",
				patience, rep.MissingBlocks, rep.UnderReplicated, rep)
		}
		d.Engine.Advance(step)
	}
}

// CountersConsistent checks the arithmetic a job report must satisfy no
// matter what faults fired. The relations are inequalities where tracker
// loss legitimately re-runs completed maps (their counters merge twice —
// exactly what real Hadoop reports do).
func CountersConsistent(r *mrcluster.Report) error {
	c := r.Counters
	launchedMaps := c.Get(mapreduce.CtrLaunchedMaps)
	launchedReds := c.Get(mapreduce.CtrLaunchedReduces)
	if launchedMaps < int64(r.MapTasks) {
		return fmt.Errorf("invariant: launched maps %d < map tasks %d", launchedMaps, r.MapTasks)
	}
	if !r.Failed && launchedReds < int64(r.ReduceTasks) {
		return fmt.Errorf("invariant: launched reduces %d < reduce tasks %d", launchedReds, r.ReduceTasks)
	}
	locality := c.Get(mapreduce.CtrDataLocalMaps) + c.Get(mapreduce.CtrRackLocalMaps) + c.Get(mapreduce.CtrRemoteMaps)
	if !r.Failed && locality < int64(r.MapTasks) {
		return fmt.Errorf("invariant: locality-counted maps %d < map tasks %d", locality, r.MapTasks)
	}
	if locality > launchedMaps {
		return fmt.Errorf("invariant: locality-counted maps %d > launched maps %d", locality, launchedMaps)
	}
	if won, spec := c.Get(mapreduce.CtrSpeculativeWon), c.Get(mapreduce.CtrSpeculativeLaunch); won > spec {
		return fmt.Errorf("invariant: speculative wins %d > speculative launches %d", won, spec)
	}
	if retries, failed := c.Get(mapreduce.CtrTaskRetries), c.Get(mapreduce.CtrFailedMaps)+c.Get(mapreduce.CtrFailedReduces); retries != failed {
		return fmt.Errorf("invariant: task retries %d != failed attempts %d", retries, failed)
	}
	return nil
}

// OutputsEqual fails unless the distributed job output byte-equals the
// serial reference — the job-output-equals-serial-runner invariant that
// must hold under every fault plan a job survives.
func OutputsEqual(serial, distributed string) error {
	if serial == distributed {
		return nil
	}
	return fmt.Errorf(
		"invariant: distributed output differs from serial reference\nserial  %d bytes: %.120q\ncluster %d bytes: %.120q",
		len(serial), serial, len(distributed), distributed)
}

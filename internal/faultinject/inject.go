package faultinject

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/mrcluster"
	"repro/internal/sim"
)

// Target is the running system a plan is injected into. MR may be nil for
// HDFS-only scenarios; MR-scoped faults (SlowNode, TaskError, the tracker
// half of crashes) then log as skipped instead of firing. DFS may be nil
// for serving-only scenarios if Topology is set (AnyNode resolution needs
// a node pool); DFS-scoped faults then log as skipped. Serving, when set,
// receives the server half of NodeCrash/NodeRestart.
type Target struct {
	Engine   *sim.Engine
	DFS      *hdfs.MiniDFS
	MR       *mrcluster.MRCluster
	Topology *cluster.Topology
	Serving  Serving
}

// Serving is the hook a region-serving tier implements so NodeCrash and
// NodeRestart reach its servers. Both report whether a server lives on
// the node (the injector logs a miss rather than failing).
type Serving interface {
	CrashServerOn(cluster.NodeID) bool
	RestartServerOn(cluster.NodeID) bool
}

// Event records one executed fault. The log is the replay fingerprint: two
// runs of the same plan against identically built targets produce
// byte-identical LogStrings.
type Event struct {
	At     sim.Time
	Kind   Kind
	Node   cluster.NodeID
	Detail string
}

func (e Event) String() string {
	if e.Node == AnyNode {
		return fmt.Sprintf("%-12v %-16s %s", e.At, e.Kind, e.Detail)
	}
	return fmt.Sprintf("%-12v %-16s node=%d %s", e.At, e.Kind, e.Node, e.Detail)
}

// Injector executes a Plan against a Target on the sim clock.
type Injector struct {
	tgt       Target
	plan      Plan
	rng       *sim.Rand
	events    []Event
	installed bool
}

// New validates the plan and builds an injector. The injector's RNG is
// derived from Plan.Seed alone, so every AnyNode resolution and
// corrupt-block pick replays identically run to run.
func New(tgt Target, plan Plan) (*Injector, error) {
	if tgt.Engine == nil || (tgt.DFS == nil && tgt.Topology == nil) {
		return nil, fmt.Errorf("faultinject: target needs Engine and one of DFS or Topology")
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{
		tgt:  tgt,
		plan: plan,
		rng:  sim.NewRand(plan.Seed).Derive("faultinject"),
	}, nil
}

// Install schedules every fault at now+At, in stable At order. The faults
// fire as the caller advances the engine (running a job, RunUntil, ...).
func (in *Injector) Install() {
	if in.installed {
		return
	}
	in.installed = true
	base := in.tgt.Engine.Now()
	for _, f := range in.plan.Sorted() {
		f := f
		in.tgt.Engine.Schedule(base+f.At, func() { in.apply(f) })
	}
}

// Events returns the executed-fault log so far.
func (in *Injector) Events() []Event { return append([]Event(nil), in.events...) }

// LogString renders the executed-fault log, one event per line — the
// byte-comparable determinism fingerprint.
func (in *Injector) LogString() string {
	var b strings.Builder
	for _, e := range in.events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func (in *Injector) logf(f Fault, node cluster.NodeID, format string, args ...any) {
	in.events = append(in.events, Event{
		At:     in.tgt.Engine.Now(),
		Kind:   f.Kind,
		Node:   node,
		Detail: fmt.Sprintf(format, args...),
	})
}

// resolveNode turns AnyNode into a concrete seeded-random target.
func (in *Injector) resolveNode(f Fault) cluster.NodeID {
	if f.Node != AnyNode {
		return f.Node
	}
	topo := in.tgt.Topology
	if in.tgt.DFS != nil {
		topo = in.tgt.DFS.Topology
	}
	nodes := topo.Nodes()
	return nodes[in.rng.Choice(len(nodes))].ID
}

func (in *Injector) apply(f Fault) {
	switch f.Kind {
	case NodeCrash:
		id := in.resolveNode(f)
		var hit []string
		if in.tgt.DFS != nil {
			in.tgt.DFS.DataNode(id).Kill()
			hit = append(hit, "datanode")
		}
		if in.tgt.MR != nil {
			in.tgt.MR.KillTaskTracker(id)
			hit = append(hit, "tasktracker")
		}
		if in.tgt.Serving != nil && in.tgt.Serving.CrashServerOn(id) {
			hit = append(hit, "regionserver")
		}
		if len(hit) == 0 {
			in.logf(f, id, "no daemons on node")
			return
		}
		in.logf(f, id, "killed %s", strings.Join(hit, "+"))
	case NodeRestart:
		id := in.resolveNode(f)
		var hit []string
		if in.tgt.DFS != nil {
			in.tgt.DFS.DataNode(id).Start()
			hit = append(hit, "datanode")
		}
		if in.tgt.MR != nil {
			in.tgt.MR.StartTaskTracker(id)
			hit = append(hit, "tasktracker")
		}
		if in.tgt.Serving != nil && in.tgt.Serving.RestartServerOn(id) {
			hit = append(hit, "regionserver")
		}
		if len(hit) == 0 {
			in.logf(f, id, "no daemons on node")
			return
		}
		in.logf(f, id, "restarted %s", strings.Join(hit, "+"))
	case DiskCorruptBlock:
		if in.tgt.DFS == nil {
			in.logf(f, AnyNode, "skipped (no DFS target)")
			return
		}
		id := in.resolveNode(f)
		dn := in.tgt.DFS.DataNode(id)
		ids := dn.BlockIDs()
		if len(ids) == 0 {
			in.logf(f, id, "no blocks to corrupt")
			return
		}
		blk := ids[in.rng.Choice(len(ids))]
		dn.CorruptBlock(blk)
		in.logf(f, id, "corrupted %v", blk)
	case SlowNode:
		id := in.resolveNode(f)
		if in.tgt.MR == nil {
			in.logf(f, id, "skipped (no MR target)")
			return
		}
		if f.Factor <= 1 {
			in.tgt.MR.SetNodeSlowdown(id, 0)
			in.logf(f, id, "slowdown cleared")
			return
		}
		in.tgt.MR.SetNodeSlowdown(id, f.Factor)
		in.logf(f, id, "slowdown x%.2f", f.Factor)
	case NetPartition:
		if in.tgt.DFS == nil {
			in.logf(f, AnyNode, "skipped (no DFS target)")
			return
		}
		if f.RackScoped {
			n := in.tgt.DFS.Net.IsolateRack(f.Rack)
			in.logf(f, AnyNode, "isolated rack %d (%d nodes)", f.Rack, n)
			return
		}
		id := in.resolveNode(f)
		in.tgt.DFS.Net.Isolate(id)
		in.logf(f, id, "isolated node")
	case NetHeal:
		if in.tgt.DFS == nil {
			in.logf(f, AnyNode, "skipped (no DFS target)")
			return
		}
		in.tgt.DFS.Net.Heal()
		in.logf(f, AnyNode, "healed network")
	case HeartbeatDrop:
		if in.tgt.DFS == nil {
			in.logf(f, AnyNode, "skipped (no DFS target)")
			return
		}
		id := in.resolveNode(f)
		in.tgt.DFS.DataNode(id).DropHeartbeatsFor(f.Window)
		detail := "muted datanode heartbeats"
		if in.tgt.MR != nil {
			in.tgt.MR.DropTrackerHeartbeatsFor(id, f.Window)
			// If the silence outlives TrackerExpiry the JobTracker declares
			// the tracker lost and kills it; a real Hadoop tracker rejoins
			// as a fresh daemon, so restart it when the window ends.
			in.tgt.Engine.After(f.Window, func() { in.tgt.MR.StartTaskTracker(id) })
			detail = "muted datanode+tracker heartbeats"
		}
		in.logf(f, id, "%s for %v", detail, f.Window)
	case TaskError:
		if in.tgt.MR == nil {
			in.logf(f, AnyNode, "skipped (no MR target)")
			return
		}
		in.tgt.MR.InjectTaskFault(f.Task)
		in.logf(f, AnyNode, "armed %s fault on %q p=%.2f", f.Task.Scope, f.Task.JobName, f.Task.Probability)
	}
}

package faultinject

import "fmt"

// Scenario binds a cluster builder, a fault plan and a workload driver so
// the same experiment can be replayed across many seeds. Build must return
// a fresh target every call (its own engine) — seeds are only comparable
// when each run starts from an identical world.
type Scenario struct {
	Name string
	// Build constructs a fresh target for one run.
	Build func(seed int64) (Target, error)
	// Plan returns the fault plan for a seed. Defaults to RandomPlan with
	// default options when nil.
	Plan func(seed int64) Plan
	// Drive runs the workload against the target (the plan is already
	// installed) and returns the first invariant violation, if any.
	Drive func(tgt Target, in *Injector) error
}

// SeedResult is the outcome of one scenario run.
type SeedResult struct {
	Seed int64
	// Log is the executed-fault log — compare across replays of the same
	// seed to prove determinism.
	Log string
	// Err is the build failure or the Drive-reported invariant violation.
	Err error
}

// Run executes the scenario once for a seed.
func (s Scenario) Run(seed int64) SeedResult {
	res := SeedResult{Seed: seed}
	tgt, err := s.Build(seed)
	if err != nil {
		res.Err = fmt.Errorf("%s seed %d: build: %w", s.Name, seed, err)
		return res
	}
	plan := RandomPlan(seed, PlanOpts{})
	if s.Plan != nil {
		plan = s.Plan(seed)
	}
	in, err := New(tgt, plan)
	if err != nil {
		res.Err = fmt.Errorf("%s seed %d: plan: %w", s.Name, seed, err)
		return res
	}
	in.Install()
	if err := s.Drive(tgt, in); err != nil {
		res.Err = fmt.Errorf("%s seed %d: %w", s.Name, seed, err)
	}
	res.Log = in.LogString()
	return res
}

// Sweep runs the scenario across seeds and returns every result; the
// caller decides whether any failure is fatal.
func (s Scenario) Sweep(seeds ...int64) []SeedResult {
	out := make([]SeedResult, 0, len(seeds))
	for _, seed := range seeds {
		out = append(out, s.Run(seed))
	}
	return out
}

// FirstError returns the first failed result of a sweep, or nil.
func FirstError(results []SeedResult) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

package faultinject_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/faultinject"
	"repro/internal/faultinject/invariant"
	"repro/internal/hdfs"
	"repro/internal/jobs"
	"repro/internal/mrcluster"
)

// mixedPlan exercises every fault kind against a running wordcount.
func mixedPlan() faultinject.Plan {
	return faultinject.Plan{Seed: 42, Faults: []faultinject.Fault{
		{At: 2 * time.Second, Kind: faultinject.NodeCrash, Node: 1},
		{At: 3 * time.Second, Kind: faultinject.TaskError, Task: mrcluster.TaskFault{
			JobName: "wordcount", Scope: mrcluster.ScopeReduce, Probability: 0.4, AfterFraction: 0.5}},
		{At: 4 * time.Second, Kind: faultinject.DiskCorruptBlock, Node: faultinject.AnyNode},
		{At: 6 * time.Second, Kind: faultinject.SlowNode, Node: 3, Factor: 3},
		{At: 8 * time.Second, Kind: faultinject.HeartbeatDrop, Node: 2, Window: 7 * time.Second},
		{At: 10 * time.Second, Kind: faultinject.NetPartition, Node: 4},
		{At: 20 * time.Second, Kind: faultinject.NetHeal},
		{At: 22 * time.Second, Kind: faultinject.NodeRestart, Node: 1},
		{At: 25 * time.Second, Kind: faultinject.SlowNode, Node: 3, Factor: 1},
	}}
}

// runMixedScenario builds a fresh 6-node cluster, stages a corpus, installs
// the mixed plan, runs wordcount through it, settles, and returns the three
// byte-comparable fingerprints: fault log, final fsck, job report.
func runMixedScenario(t *testing.T) (faultLog, fsckStr, reportStr string) {
	t.Helper()
	c, err := core.New(core.Options{
		Nodes: 6, Racks: 2, Seed: 11,
		HDFS: hdfs.Config{
			BlockSize:           8 << 10,
			Replication:         3,
			HeartbeatInterval:   time.Second,
			HeartbeatExpiry:     5 * time.Second,
			ReplMonitorInterval: 2 * time.Second,
		},
		MR: mrcluster.Config{HeartbeatInterval: time.Second, TrackerExpiry: 5 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := datagen.Text(c.FS(), "/in/corpus.txt", datagen.TextOpts{Lines: 800, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	plan := mixedPlan()
	in, err := faultinject.New(faultinject.Target{Engine: c.Engine, DFS: c.DFS, MR: c.MR}, plan)
	if err != nil {
		t.Fatal(err)
	}
	base := c.Engine.Now()
	in.Install()
	rep, err := c.Run(jobs.WordCount("/in", "/out", false))
	if err != nil {
		t.Fatalf("wordcount under mixed plan: %v", err)
	}
	// The job may outrun the plan; play out the remaining faults before
	// judging the end state.
	c.Engine.RunUntil(base + plan.Horizon() + time.Second)
	if err := invariant.CountersConsistent(rep); err != nil {
		t.Fatal(err)
	}
	fsck, err := invariant.FsckSettled(c.DFS, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	return in.LogString(), fsck.String(), rep.String()
}

// TestMixedPlanDeterministicReplay is the subsystem's acceptance check:
// two full HDFS+MapReduce runs of the same seed and plan produce
// byte-identical fault event logs, final fsck reports and job reports.
func TestMixedPlanDeterministicReplay(t *testing.T) {
	log1, fsck1, rep1 := runMixedScenario(t)
	log2, fsck2, rep2 := runMixedScenario(t)
	if log1 != log2 {
		t.Fatalf("fault logs differ across replays:\n--- run A ---\n%s--- run B ---\n%s", log1, log2)
	}
	if fsck1 != fsck2 {
		t.Fatalf("fsck reports differ across replays:\n--- run A ---\n%s--- run B ---\n%s", fsck1, fsck2)
	}
	if rep1 != rep2 {
		t.Fatalf("job reports differ across replays:\n--- run A ---\n%s--- run B ---\n%s", rep1, rep2)
	}
	// The log must show every fault actually fired.
	for _, kind := range []faultinject.Kind{
		faultinject.NodeCrash, faultinject.TaskError, faultinject.DiskCorruptBlock,
		faultinject.SlowNode, faultinject.HeartbeatDrop, faultinject.NetPartition,
		faultinject.NetHeal, faultinject.NodeRestart,
	} {
		if !strings.Contains(log1, string(kind)) {
			t.Fatalf("fault log missing %s:\n%s", kind, log1)
		}
	}
}

// TestScenarioSweepHoldsInvariants drives the scenario runner across a
// seed sweep of random safe plans: wordcount must complete and the
// filesystem settle clean for every seed.
func TestScenarioSweepHoldsInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is a tier-2 chaos test")
	}
	sc := faultinject.Scenario{
		Name: "wordcount-under-random-faults",
		Build: func(seed int64) (faultinject.Target, error) {
			c, err := core.New(core.Options{
				Nodes: 6, Racks: 2, Seed: seed,
				HDFS: hdfs.Config{
					BlockSize:           8 << 10,
					Replication:         3,
					HeartbeatInterval:   time.Second,
					HeartbeatExpiry:     5 * time.Second,
					ReplMonitorInterval: 2 * time.Second,
				},
				MR: mrcluster.Config{HeartbeatInterval: time.Second, TrackerExpiry: 5 * time.Second},
			})
			if err != nil {
				return faultinject.Target{}, err
			}
			if _, _, err := datagen.Text(c.FS(), "/in/corpus.txt", datagen.TextOpts{Lines: 400, Seed: 3}); err != nil {
				return faultinject.Target{}, err
			}
			return faultinject.Target{Engine: c.Engine, DFS: c.DFS, MR: c.MR}, nil
		},
		Plan: func(seed int64) faultinject.Plan {
			return faultinject.RandomPlan(seed, faultinject.PlanOpts{
				Nodes: 6, Racks: 2, Events: 8, MaxConcurrentDown: 2,
				Horizon: 45 * time.Second,
			})
		},
		Drive: func(tgt faultinject.Target, in *faultinject.Injector) error {
			rep, err := tgt.MR.Run(jobs.WordCount("/in", "/out", false))
			if err != nil {
				return err
			}
			if err := invariant.CountersConsistent(rep); err != nil {
				return err
			}
			_, err = invariant.FsckSettled(tgt.DFS, 5*time.Minute)
			return err
		},
	}
	if err := faultinject.FirstError(sc.Sweep(1, 2, 3, 4, 5)); err != nil {
		t.Fatal(err)
	}
}

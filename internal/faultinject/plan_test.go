package faultinject_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/hdfs"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// planModel is the reference in-memory model of the fault-plan scheduler:
// it tracks only the down-set and the partition flag, and judges whether a
// fault sequence respects the generator's safety envelope.
type planModel struct {
	nodes   int
	maxDown int
	down    map[cluster.NodeID]bool
	parted  bool
}

func newPlanModel(o faultinject.PlanOpts) *planModel {
	return &planModel{nodes: o.Nodes, maxDown: o.MaxConcurrentDown, down: map[cluster.NodeID]bool{}}
}

func (m *planModel) apply(f faultinject.Fault) error {
	inRange := func(id cluster.NodeID) error {
		if int(id) < 0 || int(id) >= m.nodes {
			return fmt.Errorf("target %d outside [0,%d)", id, m.nodes)
		}
		return nil
	}
	switch f.Kind {
	case faultinject.NodeCrash:
		if err := inRange(f.Node); err != nil {
			return err
		}
		if m.down[f.Node] {
			return fmt.Errorf("crash of already-down node %d", f.Node)
		}
		m.down[f.Node] = true
		if len(m.down) > m.maxDown {
			return fmt.Errorf("%d nodes down exceeds cap %d", len(m.down), m.maxDown)
		}
	case faultinject.NodeRestart:
		if err := inRange(f.Node); err != nil {
			return err
		}
		if !m.down[f.Node] {
			return fmt.Errorf("restart of node %d that is not down", f.Node)
		}
		delete(m.down, f.Node)
	case faultinject.NetPartition:
		if m.parted {
			return fmt.Errorf("partition while already partitioned")
		}
		if !f.RackScoped {
			if err := inRange(f.Node); err != nil {
				return err
			}
		}
		m.parted = true
	case faultinject.NetHeal:
		if !m.parted {
			return fmt.Errorf("heal with no open partition")
		}
		m.parted = false
	case faultinject.DiskCorruptBlock, faultinject.SlowNode, faultinject.HeartbeatDrop:
		if err := inRange(f.Node); err != nil {
			return err
		}
	case faultinject.TaskError:
		// No node scope.
	default:
		return fmt.Errorf("unknown kind %q", f.Kind)
	}
	return nil
}

func (m *planModel) settled() error {
	if len(m.down) > 0 {
		return fmt.Errorf("%d nodes still down at end of plan", len(m.down))
	}
	if m.parted {
		return fmt.Errorf("partition still open at end of plan")
	}
	return nil
}

// TestRandomPlanMatchesModel is the property-based test of the plan
// generator: across many seeds and option shapes, every generated plan
// must validate, replay cleanly through the reference model (respecting
// the concurrent-down cap, crash/restart pairing and partition pairing),
// and end with everything recovered.
func TestRandomPlanMatchesModel(t *testing.T) {
	shapes := []faultinject.PlanOpts{
		{},
		{Nodes: 4, Events: 25, MaxConcurrentDown: 2},
		{Nodes: 9, Racks: 3, Events: 40, MaxConcurrentDown: 2,
			Kinds: []faultinject.Kind{
				faultinject.NodeCrash, faultinject.NodeRestart, faultinject.NetPartition,
				faultinject.NetHeal, faultinject.DiskCorruptBlock, faultinject.SlowNode,
				faultinject.HeartbeatDrop, faultinject.TaskError,
			},
			Jobs: []string{"wordcount", "terasort"}},
		{Nodes: 3, Events: 60, Horizon: 10 * time.Minute, CrashProbability: 0.9},
	}
	for si, shape := range shapes {
		for seed := int64(0); seed < 50; seed++ {
			p := faultinject.RandomPlan(seed, shape)
			if err := p.Validate(); err != nil {
				t.Fatalf("shape %d seed %d: %v", si, seed, err)
			}
			norm := shape
			if norm.Nodes <= 0 {
				norm.Nodes = 6
			}
			if norm.MaxConcurrentDown <= 0 {
				norm.MaxConcurrentDown = 1
			}
			m := newPlanModel(norm)
			prev := time.Duration(-1)
			for i, f := range p.Sorted() {
				if f.At < prev {
					t.Fatalf("shape %d seed %d: fault %d out of order", si, seed, i)
				}
				prev = f.At
				if err := m.apply(f); err != nil {
					t.Fatalf("shape %d seed %d fault %d (%s at %v): %v", si, seed, i, f.Kind, f.At, err)
				}
			}
			if err := m.settled(); err != nil {
				t.Fatalf("shape %d seed %d: %v", si, seed, err)
			}
		}
	}
}

// TestRandomPlanDeterministic: the generator is a pure function of
// (seed, opts) — two calls return deep-equal plans, and different seeds
// diverge.
func TestRandomPlanDeterministic(t *testing.T) {
	opts := faultinject.PlanOpts{Nodes: 6, Racks: 2, Events: 30, MaxConcurrentDown: 2}
	for seed := int64(0); seed < 20; seed++ {
		a := faultinject.RandomPlan(seed, opts)
		b := faultinject.RandomPlan(seed, opts)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations differ:\n%v\n%v", seed, a, b)
		}
	}
	if reflect.DeepEqual(faultinject.RandomPlan(1, opts), faultinject.RandomPlan(2, opts)) {
		t.Fatal("different seeds produced identical plans")
	}
}

// buildDFSTarget assembles a fresh HDFS-only target with some data so
// every fault kind has something to act on.
func buildDFSTarget(t *testing.T, seed int64) faultinject.Target {
	t.Helper()
	eng := sim.NewEngine()
	topo := cluster.NewTopology(cluster.PaperNodeConfig(6, 2))
	dfs, err := hdfs.NewMiniDFS(eng, topo, hdfs.Options{
		Seed: seed,
		Config: hdfs.Config{
			BlockSize:           2 << 10,
			Replication:         3,
			HeartbeatInterval:   time.Second,
			HeartbeatExpiry:     5 * time.Second,
			ReplMonitorInterval: 2 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := dfs.Client(hdfs.GatewayNode)
	for i := 0; i < 4; i++ {
		data := make([]byte, 6<<10)
		for j := range data {
			data[j] = byte(i + j)
		}
		if err := vfs.WriteFile(c, fmt.Sprintf("/data/f%d", i), data); err != nil {
			t.Fatal(err)
		}
	}
	return faultinject.Target{Engine: eng, DFS: dfs}
}

// TestInjectorReplayIsDeterministic: installing the same plan on two
// independently built but identical targets yields byte-identical fault
// logs, and the executed sequence matches the plan's (At, Kind) schedule —
// the model-level view of the injector.
func TestInjectorReplayIsDeterministic(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		plan := faultinject.RandomPlan(seed, faultinject.PlanOpts{
			Nodes: 6, Racks: 2, Events: 15, MaxConcurrentDown: 2,
			Kinds: []faultinject.Kind{
				faultinject.NodeCrash, faultinject.NodeRestart, faultinject.NetPartition,
				faultinject.NetHeal, faultinject.DiskCorruptBlock, faultinject.HeartbeatDrop,
			},
		})
		var logs [2]string
		var events [2][]faultinject.Event
		for run := 0; run < 2; run++ {
			tgt := buildDFSTarget(t, 99)
			in, err := faultinject.New(tgt, plan)
			if err != nil {
				t.Fatal(err)
			}
			base := tgt.Engine.Now()
			in.Install()
			tgt.Engine.Advance(plan.Horizon() + time.Minute)
			logs[run] = in.LogString()
			evs := in.Events()
			for i := range evs {
				evs[i].At -= base
			}
			events[run] = evs
		}
		if logs[0] != logs[1] {
			t.Fatalf("seed %d: replay logs differ:\n--- run A ---\n%s--- run B ---\n%s", seed, logs[0], logs[1])
		}
		sorted := plan.Sorted()
		if len(events[0]) != len(sorted) {
			t.Fatalf("seed %d: %d events executed, plan has %d faults:\n%s",
				seed, len(events[0]), len(sorted), logs[0])
		}
		for i, f := range sorted {
			e := events[0][i]
			if e.At != f.At || e.Kind != f.Kind {
				t.Fatalf("seed %d: event %d = (%v, %s), plan says (%v, %s)",
					seed, i, e.At, e.Kind, f.At, f.Kind)
			}
		}
	}
}

package cluster

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTopologyDefaults(t *testing.T) {
	top := NewTopology(Config{})
	if top.Len() != 8 {
		t.Fatalf("default nodes = %d, want 8", top.Len())
	}
	if top.Racks() != 1 {
		t.Fatalf("default racks = %d, want 1", top.Racks())
	}
	if top.Node(0).Hostname != "node000" {
		t.Fatalf("hostname = %q", top.Node(0).Hostname)
	}
}

func TestRackAssignmentRoundRobin(t *testing.T) {
	top := NewTopology(Config{Nodes: 6, Racks: 2})
	for _, n := range top.Nodes() {
		want := int(n.ID) % 2
		if n.Rack != want {
			t.Fatalf("node %d rack = %d, want %d", n.ID, n.Rack, want)
		}
	}
	if got := top.NodesInRack(0); len(got) != 3 {
		t.Fatalf("rack 0 has %d nodes, want 3", len(got))
	}
}

func TestRacksCappedByNodes(t *testing.T) {
	top := NewTopology(Config{Nodes: 2, Racks: 10})
	if top.Racks() != 2 {
		t.Fatalf("racks = %d, want capped at 2", top.Racks())
	}
}

func TestDistance(t *testing.T) {
	top := NewTopology(Config{Nodes: 4, Racks: 2})
	if d := top.Distance(0, 0); d != 0 {
		t.Fatalf("same node distance = %d", d)
	}
	if d := top.Distance(0, 2); d != 2 { // both rack 0
		t.Fatalf("same rack distance = %d", d)
	}
	if d := top.Distance(0, 1); d != 4 { // racks 0 and 1
		t.Fatalf("cross rack distance = %d", d)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	top := NewTopology(Config{Nodes: 16, Racks: 4})
	if err := quick.Check(func(a, b uint8) bool {
		x := NodeID(int(a) % 16)
		y := NodeID(int(b) % 16)
		return top.Distance(x, y) == top.Distance(y, x)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNodeOutOfRange(t *testing.T) {
	top := NewTopology(Config{Nodes: 2})
	if top.Node(5) != nil || top.Node(-1) != nil {
		t.Fatal("out-of-range lookup returned a node")
	}
	if top.RackOf(99) != -1 {
		t.Fatal("RackOf out-of-range should be -1")
	}
}

func TestPaperNodeConfig(t *testing.T) {
	top := NewTopology(PaperNodeConfig(8, 1))
	n := top.Node(0)
	if n.Cores != 16 || n.RAMBytes != 64<<30 || n.DiskBytes != 850<<30 {
		t.Fatalf("paper node resources wrong: %+v", n)
	}
}

func TestDiskReadScalesWithBytes(t *testing.T) {
	c := DefaultCostModel()
	small := c.DiskRead(1 * MB)
	big := c.DiskRead(100 * MB)
	if big <= small {
		t.Fatal("reading more bytes should take longer")
	}
	// 120 MB/s → 100 MB in ~0.83s plus seek.
	want := 100.0 / 120.0
	got := (big - c.DiskSeek).Seconds()
	if got < want*0.99 || got > want*1.01 {
		t.Fatalf("100MB read = %.3fs, want ≈%.3fs", got, want)
	}
}

func TestTransferDistanceOrdering(t *testing.T) {
	c := DefaultCostModel()
	local := c.Transfer(0, 64*MB)
	rack := c.Transfer(2, 64*MB)
	core := c.Transfer(4, 64*MB)
	if local != 0 {
		t.Fatalf("local transfer should be free, got %v", local)
	}
	if !(rack < core) {
		t.Fatalf("rack (%v) should beat cross-rack (%v)", rack, core)
	}
}

func TestZeroBytesCostsNothingOnNetwork(t *testing.T) {
	c := DefaultCostModel()
	if d := c.Transfer(4, 0); d != 0 {
		t.Fatalf("zero-byte transfer cost %v", d)
	}
}

func TestParallelStorageContention(t *testing.T) {
	c := DefaultCostModel()
	alone := c.ParallelStorageRead(64*MB, 1)
	crowded := c.ParallelStorageRead(64*MB, 64)
	if crowded <= alone {
		t.Fatalf("64 concurrent readers (%v) should be slower than 1 (%v)", crowded, alone)
	}
}

func TestParallelStorageCappedByLink(t *testing.T) {
	c := DefaultCostModel()
	// A single reader cannot exceed its own network link even though the
	// array could serve 1200 MB/s.
	got := c.ParallelStorageRead(400*MB, 1)
	wantMin := timeFor(400*MB, c.CoreBW)
	if got < wantMin {
		t.Fatalf("single reader faster (%v) than its link allows (%v)", got, wantMin)
	}
}

func TestVirtualizedTransferIsPainful(t *testing.T) {
	c := DefaultCostModel()
	// The paper measured ~1 MB/s; 60 MB should take about a minute.
	got := c.VirtualizedTransfer(60 * MB)
	if got < 55*time.Second || got > 70*time.Second {
		t.Fatalf("60MB over virtual NIC = %v, want ≈1 minute", got)
	}
}

func TestCostMonotoneInBytes(t *testing.T) {
	c := DefaultCostModel()
	if err := quick.Check(func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return c.DiskRead(x) <= c.DiskRead(y) &&
			c.Transfer(2, x) <= c.Transfer(2, y) &&
			c.Transfer(4, x) <= c.Transfer(4, y)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCPUWorkCost(t *testing.T) {
	w := CPUWork{Startup: time.Second, PerByte: time.Nanosecond, PerRecord: time.Microsecond}
	got := w.Cost(1000, 10)
	want := time.Second + 1000*time.Nanosecond + 10*time.Microsecond
	if got != want {
		t.Fatalf("cost = %v, want %v", got, want)
	}
}

package cluster

import (
	"time"
)

// Byte-size constants used throughout the cost model.
const (
	KB int64 = 1 << 10
	MB int64 = 1 << 20
	GB int64 = 1 << 30
)

// CostModel converts byte counts and network distances into virtual time.
// Bandwidths are bytes/second. The defaults approximate the 2013-era
// hardware the paper describes: 7200 rpm HDDs (~120 MB/s sequential),
// gigabit rack links, an oversubscribed core, and — for the HPC layout —
// a parallel storage system whose aggregate bandwidth is shared by every
// concurrent reader in the machine room.
type CostModel struct {
	// DiskReadBW / DiskWriteBW are local-disk sequential bandwidths.
	DiskReadBW  int64
	DiskWriteBW int64
	// DiskSeek is charged once per disk operation.
	DiskSeek time.Duration
	// RackBW is the node link bandwidth within a rack (distance 2).
	RackBW int64
	// CoreBW is the per-flow bandwidth across racks (distance 4), already
	// discounted for oversubscription.
	CoreBW int64
	// NetLatency is charged once per network transfer.
	NetLatency time.Duration
	// ParallelStorageAggBW is the aggregate bandwidth of the HPC layout's
	// shared parallel filesystem. Per-reader bandwidth is this divided by
	// the number of concurrent readers, capped by the node link.
	ParallelStorageAggBW int64
	// VirtualizedNetBW models the crippled virtual-network path the paper
	// measured (~1 MB/s) when VMs ran inside supercomputer nodes.
	VirtualizedNetBW int64
}

// DefaultCostModel returns the calibrated teaching-cluster model.
func DefaultCostModel() CostModel {
	return CostModel{
		DiskReadBW:           120 * MB,
		DiskWriteBW:          90 * MB,
		DiskSeek:             8 * time.Millisecond,
		RackBW:               110 * MB, // ~gigabit ethernet payload rate
		CoreBW:               40 * MB,  // oversubscribed core switch
		NetLatency:           300 * time.Microsecond,
		ParallelStorageAggBW: 1200 * MB, // shared scratch array
		VirtualizedNetBW:     1 * MB,
	}
}

func timeFor(bytes, bw int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	if bw <= 0 {
		bw = 1
	}
	return time.Duration(float64(bytes) / float64(bw) * float64(time.Second))
}

// DiskRead returns the modelled time to sequentially read bytes from a
// local disk.
func (c CostModel) DiskRead(bytes int64) time.Duration {
	return c.DiskSeek + timeFor(bytes, c.DiskReadBW)
}

// DiskWrite returns the modelled time to sequentially write bytes to a
// local disk.
func (c CostModel) DiskWrite(bytes int64) time.Duration {
	return c.DiskSeek + timeFor(bytes, c.DiskWriteBW)
}

// Transfer returns the modelled time to move bytes between two nodes at
// the given Hadoop network distance (0, 2 or 4). Distance 0 is free: the
// bytes never leave the machine.
func (c CostModel) Transfer(distance int, bytes int64) time.Duration {
	switch {
	case bytes <= 0 || distance <= 0:
		return 0
	case distance <= 2:
		return c.NetLatency + timeFor(bytes, c.RackBW)
	default:
		return c.NetLatency + timeFor(bytes, c.CoreBW)
	}
}

// ParallelStorageRead returns the modelled time for one of `readers`
// concurrent clients to read bytes from the shared parallel filesystem of
// the HPC layout. Aggregate bandwidth is divided evenly among readers and
// capped by the reader's own network link.
func (c CostModel) ParallelStorageRead(bytes int64, readers int) time.Duration {
	if readers < 1 {
		readers = 1
	}
	per := c.ParallelStorageAggBW / int64(readers)
	if per > c.CoreBW {
		per = c.CoreBW
	}
	if per <= 0 {
		per = 1
	}
	return c.NetLatency + timeFor(bytes, per)
}

// VirtualizedTransfer returns the modelled time across the ~1 MB/s virtual
// NIC path of the paper's first-semester VM setup.
func (c CostModel) VirtualizedTransfer(bytes int64) time.Duration {
	return c.NetLatency + timeFor(bytes, c.VirtualizedNetBW)
}

// CPUWork models computation cost for a task: a fixed startup charge plus
// per-byte and per-record costs.
type CPUWork struct {
	Startup   time.Duration
	PerByte   time.Duration
	PerRecord time.Duration
}

// Cost returns the modelled compute time for processing the given volume.
func (w CPUWork) Cost(bytes, records int64) time.Duration {
	return w.Startup +
		time.Duration(bytes)*w.PerByte +
		time.Duration(records)*w.PerRecord
}

// DefaultMapWork approximates a lightweight text-processing map function:
// JVM-ish task startup plus parsing cost.
func DefaultMapWork() CPUWork {
	return CPUWork{Startup: 1500 * time.Millisecond, PerByte: 4 * time.Nanosecond, PerRecord: 500 * time.Nanosecond}
}

// DefaultReduceWork approximates an aggregation-style reduce function.
func DefaultReduceWork() CPUWork {
	return CPUWork{Startup: 1500 * time.Millisecond, PerByte: 3 * time.Nanosecond, PerRecord: 400 * time.Nanosecond}
}

package cluster_test

import (
	"testing"

	"repro/internal/cluster"
)

func TestNetworkIslands(t *testing.T) {
	topo := cluster.NewTopology(cluster.Config{Nodes: 6, Racks: 2})
	net := cluster.NewNetwork(topo)

	if net.Partitioned() {
		t.Fatal("fresh network reports partitioned")
	}
	if !net.Reachable(0, 5) || !net.Reachable(cluster.NodeID(-1), 3) {
		t.Fatal("healed network should connect everything")
	}

	net.Isolate(3)
	if net.Reachable(0, 3) || net.Reachable(cluster.NodeID(-1), 3) {
		t.Fatal("isolated node still reachable")
	}
	if !net.Reachable(3, 3) {
		t.Fatal("same-node transfer must always work")
	}
	if !net.Reachable(0, 1) {
		t.Fatal("majority side broken by isolating one node")
	}
	if got := net.IsolatedNodes(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("IsolatedNodes = %v", got)
	}

	// A second island cannot talk to the first.
	net.Isolate(4, 5)
	if net.Reachable(3, 4) {
		t.Fatal("separate islands can talk")
	}
	if !net.Reachable(4, 5) {
		t.Fatal("nodes isolated together should still talk to each other")
	}

	net.Heal()
	if net.Partitioned() || !net.Reachable(0, 3) {
		t.Fatal("heal did not restore connectivity")
	}
}

func TestNetworkIsolateRack(t *testing.T) {
	// 6 nodes round-robin over 2 racks: rack 0 = {0,2,4}, rack 1 = {1,3,5}.
	topo := cluster.NewTopology(cluster.Config{Nodes: 6, Racks: 2})
	net := cluster.NewNetwork(topo)
	net.IsolateRack(1)
	for _, id := range []cluster.NodeID{1, 3, 5} {
		if net.Reachable(0, id) {
			t.Fatalf("node %d in isolated rack reachable from rack 0", id)
		}
	}
	if !net.Reachable(1, 3) {
		t.Fatal("nodes within the isolated rack should reach each other")
	}
	if !net.Reachable(0, 2) {
		t.Fatal("surviving rack broken")
	}
}

// Package cluster models the physical substrate the paper's two
// architectures run on (its Figure 1): machines with CPUs, RAM and local
// disks, grouped into racks behind a core switch, plus — for the typical
// HPC layout — a separate parallel storage system reachable only across
// the interconnect. All performance numbers in the reproduction derive
// from this package's cost model rather than from wall-clock time, which
// keeps experiments deterministic and lets them be evaluated at paper
// scale (171 GB datasets) while moving only megabytes of real data.
package cluster

import (
	"fmt"
	"sort"
)

// NodeID identifies a machine in the cluster.
type NodeID int

// Node is one machine. The default resources mirror the paper's dedicated
// cluster: dual 8-core CPUs, 64 GB RAM, 850 GB of local disk.
type Node struct {
	ID       NodeID
	Hostname string
	Rack     int
	Cores    int
	RAMBytes int64
	// DiskBytes is local disk capacity; zero for diskless HPC compute nodes.
	DiskBytes int64
}

// Topology is an immutable description of the machines and their racks.
type Topology struct {
	nodes []*Node
	racks int
}

// Config describes a topology to build.
type Config struct {
	Nodes        int
	Racks        int // nodes are assigned round-robin; min 1
	CoresPerNode int
	RAMPerNode   int64
	DiskPerNode  int64
	HostPrefix   string
}

// PaperNodeConfig returns the per-node resources of the paper's dedicated
// 8-node cluster (dual 8-core CPUs, 64 GB RAM, 850 GB HDD).
func PaperNodeConfig(nodes, racks int) Config {
	return Config{
		Nodes:        nodes,
		Racks:        racks,
		CoresPerNode: 16,
		RAMPerNode:   64 << 30,
		DiskPerNode:  850 << 30,
		HostPrefix:   "node",
	}
}

// NewTopology builds a topology from cfg. Zero-valued fields get sane
// teaching-cluster defaults.
func NewTopology(cfg Config) *Topology {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 8
	}
	if cfg.Racks <= 0 {
		cfg.Racks = 1
	}
	if cfg.Racks > cfg.Nodes {
		cfg.Racks = cfg.Nodes
	}
	if cfg.CoresPerNode <= 0 {
		cfg.CoresPerNode = 16
	}
	if cfg.RAMPerNode <= 0 {
		cfg.RAMPerNode = 64 << 30
	}
	if cfg.DiskPerNode == 0 {
		cfg.DiskPerNode = 850 << 30
	}
	if cfg.HostPrefix == "" {
		cfg.HostPrefix = "node"
	}
	t := &Topology{racks: cfg.Racks}
	for i := 0; i < cfg.Nodes; i++ {
		t.nodes = append(t.nodes, &Node{
			ID:        NodeID(i),
			Hostname:  fmt.Sprintf("%s%03d", cfg.HostPrefix, i),
			Rack:      i % cfg.Racks,
			Cores:     cfg.CoresPerNode,
			RAMBytes:  cfg.RAMPerNode,
			DiskBytes: cfg.DiskPerNode,
		})
	}
	return t
}

// Nodes returns all nodes in ID order. The slice must not be mutated.
func (t *Topology) Nodes() []*Node { return t.nodes }

// Node returns the node with the given ID, or nil.
func (t *Topology) Node(id NodeID) *Node {
	if int(id) < 0 || int(id) >= len(t.nodes) {
		return nil
	}
	return t.nodes[id]
}

// Len returns the node count.
func (t *Topology) Len() int { return len(t.nodes) }

// Racks returns the number of racks.
func (t *Topology) Racks() int { return t.racks }

// RackOf returns the rack index for a node ID, or -1 if unknown.
func (t *Topology) RackOf(id NodeID) int {
	n := t.Node(id)
	if n == nil {
		return -1
	}
	return n.Rack
}

// NodesInRack returns node IDs in the given rack, sorted.
func (t *Topology) NodesInRack(rack int) []NodeID {
	var ids []NodeID
	for _, n := range t.nodes {
		if n.Rack == rack {
			ids = append(ids, n.ID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Distance returns the Hadoop-style network distance between two nodes:
// 0 same node, 2 same rack, 4 different rack.
func (t *Topology) Distance(a, b NodeID) int {
	if a == b {
		return 0
	}
	if t.RackOf(a) == t.RackOf(b) {
		return 2
	}
	return 4
}

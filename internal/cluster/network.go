package cluster

import "slices"

// Network is the mutable connectivity overlay on a Topology: the topology
// says what the wiring *is*, the network says which links currently work.
// Every data-plane transfer in the stack (HDFS reads and pipeline writes,
// re-replication copies, shuffle fetches) consults it, which is what lets
// the fault-injection subsystem cut a node or a whole rack off and watch
// the replication monitor and the JobTracker route around the hole.
//
// The model is island-based rather than per-link: each node belongs to a
// partition group, and two endpoints can talk iff they are in the same
// group. A healed network has every node in group 0. Off-cluster clients
// (negative NodeIDs — the login gateway) always sit in group 0, so an
// isolated node is also unreachable from outside. Control-plane traffic
// (heartbeats, block reports) is modelled separately via heartbeat-drop
// faults and deliberately does not consult the Network: real partitions
// rarely take the management VLAN down with the data path, and keeping
// the planes independent lets scenarios exercise them independently.
type Network struct {
	topo  *Topology
	group map[NodeID]int
	next  int
}

// NewNetwork returns a fully healed network over the topology.
func NewNetwork(t *Topology) *Network {
	return &Network{topo: t, group: map[NodeID]int{}}
}

// Reachable reports whether a data transfer between the two endpoints can
// currently proceed. Same-node transfers always succeed.
func (n *Network) Reachable(a, b NodeID) bool {
	if n == nil || a == b {
		return true
	}
	return n.groupOf(a) == n.groupOf(b)
}

func (n *Network) groupOf(id NodeID) int {
	if id < 0 {
		return 0 // off-cluster clients live with the majority
	}
	return n.group[id]
}

// Isolate cuts the given nodes off into their own island. Successive calls
// create further islands; nodes isolated together can still talk to each
// other. Returns the island's group id (for tests/logging).
func (n *Network) Isolate(nodes ...NodeID) int {
	n.next++
	for _, id := range nodes {
		if id >= 0 {
			n.group[id] = n.next
		}
	}
	return n.next
}

// IsolateRack cuts an entire rack off from the rest of the cluster —
// the classic top-of-rack switch failure.
func (n *Network) IsolateRack(rack int) int {
	return n.Isolate(n.topo.NodesInRack(rack)...)
}

// Heal restores full connectivity.
func (n *Network) Heal() {
	n.group = map[NodeID]int{}
}

// Partitioned reports whether any node is currently cut off.
func (n *Network) Partitioned() bool {
	for _, g := range n.group {
		if g != 0 {
			return true
		}
	}
	return false
}

// IsolatedNodes returns the nodes not in the majority group, sorted.
func (n *Network) IsolatedNodes() []NodeID {
	var out []NodeID
	for id, g := range n.group {
		if g != 0 {
			out = append(out, id)
		}
	}
	slices.Sort(out)
	return out
}

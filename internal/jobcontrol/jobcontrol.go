// Package jobcontrol sequences dependent MapReduce jobs, mirroring
// Hadoop's JobControl: real analyses (like the Google-trace assignment
// done properly with multiple reducers) are pipelines where one job's
// output directory is the next job's input. The controller runs jobs in
// dependency order over any runtime — the standalone runner or the
// cluster — and can clean up intermediate outputs afterwards.
package jobcontrol

import (
	"errors"
	"fmt"

	"repro/internal/mapreduce"
	"repro/internal/vfs"
)

// RunFunc executes one job to completion on some runtime.
type RunFunc func(*mapreduce.Job) error

// State tracks a node through the pipeline run.
type State int

// Node states.
const (
	Waiting State = iota
	Succeeded
	Failed
	Skipped // a dependency failed
)

// Node is one job plus its dependencies.
type Node struct {
	Job   *mapreduce.Job
	State State
	Err   error

	deps []*Node
}

// AddDepForTest appends a dependency after construction; tests use it to
// build deliberately malformed graphs.
func (n *Node) AddDepForTest(dep *Node) { n.deps = append(n.deps, dep) }

// Control is a set of jobs with dependencies.
type Control struct {
	nodes []*Node
	// Intermediate paths to delete after a fully successful run.
	intermediates []string
}

// New returns an empty controller.
func New() *Control { return &Control{} }

// Add registers a job that runs after all deps succeed.
func (c *Control) Add(job *mapreduce.Job, deps ...*Node) *Node {
	n := &Node{Job: job, deps: deps}
	c.nodes = append(c.nodes, n)
	return n
}

// AddIntermediate marks a path for deletion after a successful Run.
func (c *Control) AddIntermediate(path string) {
	c.intermediates = append(c.intermediates, path)
}

// Chain adds jobs in a linear sequence (each depends on the previous) and
// marks every output but the last as intermediate.
func (c *Control) Chain(jobs ...*mapreduce.Job) []*Node {
	var prev *Node
	var nodes []*Node
	for i, j := range jobs {
		var deps []*Node
		if prev != nil {
			deps = append(deps, prev)
		}
		prev = c.Add(j, deps...)
		nodes = append(nodes, prev)
		if i < len(jobs)-1 {
			c.AddIntermediate(j.OutputPath)
		}
	}
	return nodes
}

// ErrPipelineFailed reports at least one failed job.
var ErrPipelineFailed = errors.New("jobcontrol: pipeline failed")

// Run executes all jobs in dependency order. On success it deletes the
// registered intermediate outputs from fs (pass nil to keep them).
func (c *Control) Run(run RunFunc, fs vfs.FileSystem) error {
	order, err := c.topoOrder()
	if err != nil {
		return err
	}
	for _, n := range order {
		blocked := false
		for _, d := range n.deps {
			if d.State != Succeeded {
				blocked = true
				break
			}
		}
		if blocked {
			n.State = Skipped
			continue
		}
		if err := run(n.Job); err != nil {
			n.State = Failed
			n.Err = err
			continue
		}
		n.State = Succeeded
	}
	for _, n := range c.nodes {
		if n.State == Failed {
			return fmt.Errorf("%w: job %q: %v", ErrPipelineFailed, n.Job.Name, n.Err)
		}
		if n.State == Skipped {
			return fmt.Errorf("%w: job %q skipped (dependency failed)", ErrPipelineFailed, n.Job.Name)
		}
	}
	if fs != nil {
		for _, p := range c.intermediates {
			_ = fs.Remove(p, true)
		}
	}
	return nil
}

// topoOrder returns the nodes in dependency order, failing on cycles.
func (c *Control) topoOrder() ([]*Node, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[*Node]int{}
	var order []*Node
	var visit func(n *Node) error
	visit = func(n *Node) error {
		switch color[n] {
		case gray:
			return fmt.Errorf("jobcontrol: dependency cycle through job %q", n.Job.Name)
		case black:
			return nil
		}
		color[n] = gray
		for _, d := range n.deps {
			if err := visit(d); err != nil {
				return err
			}
		}
		color[n] = black
		order = append(order, n)
		return nil
	}
	for _, n := range c.nodes {
		if err := visit(n); err != nil {
			return nil, err
		}
	}
	return order, nil
}

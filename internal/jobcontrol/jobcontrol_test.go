package jobcontrol_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/hdfs"
	"repro/internal/jobcontrol"
	"repro/internal/jobs"
	"repro/internal/mapreduce"
	"repro/internal/serial"
	"repro/internal/vfs"
)

func TestTwoStageTracePipelineSerial(t *testing.T) {
	fs := vfs.NewMemFS()
	truth, _, err := datagen.Trace(fs, "/in/task_events.csv", datagen.TraceOpts{Jobs: 25, MeanTasks: 12, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	runner := &serial.Runner{FS: fs, Parallelism: 2}
	pipeline := jobs.TraceMaxResubmissionsPipeline("/in", "/tmp/stage1", "/out", 4)
	ctl := jobcontrol.New()
	ctl.Chain(pipeline...)
	if err := ctl.Run(func(j *mapreduce.Job) error {
		_, err := runner.Run(j)
		return err
	}, fs); err != nil {
		t.Fatal(err)
	}
	out, err := serial.ReadOutput(fs, "/out")
	if err != nil {
		t.Fatal(err)
	}
	jobID, resub, ok := jobs.ParseTraceAnswer(out)
	if !ok {
		t.Fatalf("bad answer %q", out)
	}
	if jobID != truth.MaxJob || resub != truth.MaxResub {
		t.Fatalf("pipeline answer job=%d n=%d, truth job=%d n=%d", jobID, resub, truth.MaxJob, truth.MaxResub)
	}
	// Intermediate output cleaned up.
	if vfs.Exists(fs, "/tmp/stage1") {
		t.Fatal("intermediate output not cleaned")
	}
}

func TestPipelineMatchesSingleStage(t *testing.T) {
	fs := vfs.NewMemFS()
	if _, _, err := datagen.Trace(fs, "/in/e.csv", datagen.TraceOpts{Jobs: 15, MeanTasks: 8, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	runner := &serial.Runner{FS: fs}
	if _, err := runner.Run(jobs.TraceMaxResubmissions("/in", "/out-single")); err != nil {
		t.Fatal(err)
	}
	ctl := jobcontrol.New()
	ctl.Chain(jobs.TraceMaxResubmissionsPipeline("/in", "/t1", "/out-multi", 3)...)
	if err := ctl.Run(func(j *mapreduce.Job) error {
		_, err := runner.Run(j)
		return err
	}, fs); err != nil {
		t.Fatal(err)
	}
	single, _ := serial.ReadOutput(fs, "/out-single")
	multi, _ := serial.ReadOutput(fs, "/out-multi")
	if strings.TrimSpace(single) != strings.TrimSpace(multi) {
		t.Fatalf("answers differ: single=%q multi=%q", single, multi)
	}
}

func TestPipelineOnCluster(t *testing.T) {
	c, err := core.New(core.Options{Nodes: 6, Seed: 4, HDFS: hdfs.Config{BlockSize: 64 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	truth, _, err := datagen.Trace(c.FS(), "/in/e.csv", datagen.TraceOpts{Jobs: 30, MeanTasks: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctl := jobcontrol.New()
	ctl.Chain(jobs.TraceMaxResubmissionsPipeline("/in", "/t1", "/out", 4)...)
	if err := ctl.Run(func(j *mapreduce.Job) error {
		_, err := c.Run(j)
		return err
	}, c.FS()); err != nil {
		t.Fatal(err)
	}
	out, err := c.Output("/out")
	if err != nil {
		t.Fatal(err)
	}
	jobID, resub, ok := jobs.ParseTraceAnswer(out)
	if !ok || jobID != truth.MaxJob || resub != truth.MaxResub {
		t.Fatalf("cluster pipeline answer %q, truth job=%d n=%d", out, truth.MaxJob, truth.MaxResub)
	}
}

func TestFailureSkipsDependents(t *testing.T) {
	fs := vfs.NewMemFS()
	if err := vfs.WriteFile(fs, "/in/x.txt", []byte("a b\n")); err != nil {
		t.Fatal(err)
	}
	ctl := jobcontrol.New()
	bad := jobs.WordCount("/missing-input", "/o1", false)
	good := jobs.WordCount("/in", "/o2", false)
	n1 := ctl.Add(bad)
	n2 := ctl.Add(good, n1)
	runner := &serial.Runner{FS: fs}
	err := ctl.Run(func(j *mapreduce.Job) error {
		_, err := runner.Run(j)
		return err
	}, fs)
	if !errors.Is(err, jobcontrol.ErrPipelineFailed) {
		t.Fatalf("want ErrPipelineFailed, got %v", err)
	}
	if n1.State != jobcontrol.Failed {
		t.Fatalf("n1 state = %v", n1.State)
	}
	if n2.State != jobcontrol.Skipped {
		t.Fatalf("n2 state = %v", n2.State)
	}
	if vfs.Exists(fs, "/o2") {
		t.Fatal("skipped job produced output")
	}
}

func TestIndependentJobsBothRun(t *testing.T) {
	fs := vfs.NewMemFS()
	if err := vfs.WriteFile(fs, "/in/x.txt", []byte("a b a\n")); err != nil {
		t.Fatal(err)
	}
	ctl := jobcontrol.New()
	ctl.Add(jobs.WordCount("/in", "/o1", false))
	ctl.Add(jobs.WordCount("/in", "/o2", true))
	runner := &serial.Runner{FS: fs}
	if err := ctl.Run(func(j *mapreduce.Job) error {
		_, err := runner.Run(j)
		return err
	}, fs); err != nil {
		t.Fatal(err)
	}
	if !vfs.Exists(fs, "/o1/_SUCCESS") || !vfs.Exists(fs, "/o2/_SUCCESS") {
		t.Fatal("independent jobs incomplete")
	}
}

func TestCycleDetected(t *testing.T) {
	ctl := jobcontrol.New()
	a := ctl.Add(jobs.WordCount("/in", "/o1", false))
	b := ctl.Add(jobs.WordCount("/in", "/o2", false), a)
	a.AddDepForTest(b)
	err := ctl.Run(func(j *mapreduce.Job) error { return nil }, nil)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not detected: %v", err)
	}
}

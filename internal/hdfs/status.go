package hdfs

import (
	"fmt"
	"strings"
)

// StatusPage renders the NameNode web interface (dfshealth.jsp) as text:
// cluster capacity, live/dead DataNodes and block health — the view
// students tunneled to over SSH in the paper's first semester.
func (d *MiniDFS) StatusPage() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== NameNode 'dfshealth' (virtual time %v) ===\n", d.Engine.Now())
	if d.NN.InSafeMode() {
		fmt.Fprintf(&b, "*** Safe mode is ON: waiting for block reports ***\n")
	}
	var capacity, used int64
	live, dead := 0, 0
	for _, dn := range d.datanodes {
		capacity += dn.node.DiskBytes
		used += dn.UsedBytes()
		if dn.Alive() {
			live++
		} else {
			dead++
		}
	}
	fmt.Fprintf(&b, "Configured capacity: %d B   DFS used: %d B (%.4f%%)\n",
		capacity, used, pct(used, capacity))
	fmt.Fprintf(&b, "Live nodes: %d   Dead nodes: %d   Blocks: %d\n",
		live, dead, len(d.NN.blocks))
	under, missing := 0, 0
	for _, bm := range d.NN.blocks {
		switch lr := d.NN.liveReplicas(bm); {
		case lr == 0:
			missing++
		case lr < bm.expected:
			under++
		}
	}
	fmt.Fprintf(&b, "Under-replicated blocks: %d   Missing blocks: %d\n", under, missing)
	fmt.Fprintf(&b, "\n%-10s %-6s %10s %10s %8s\n", "Node", "State", "Blocks", "Used (B)", "Rack")
	for _, dn := range d.datanodes {
		state := "dead"
		if dn.Alive() {
			state = "live"
		}
		fmt.Fprintf(&b, "%-10s %-6s %10d %10d %8d\n",
			dn.node.Hostname, state, dn.NumBlocks(), dn.UsedBytes(), dn.node.Rack)
	}
	return b.String()
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// Package hdfs is a from-scratch, teaching-fidelity implementation of the
// Hadoop Distributed File System architecture the paper's module centres
// on: a NameNode holding the namespace and block map in memory, DataNodes
// holding replicated blocks on their local disks, heartbeats and block
// reports, a replicated write pipeline, locality-aware reads, safe mode,
// a replication monitor, corruption detection via checksums, and fsck.
// All timing runs on the deterministic sim engine; all block payloads are
// real bytes, so MapReduce results computed over HDFS are exact.
package hdfs

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/vfs"
)

// BlockID names one block in the cluster.
type BlockID uint64

func (b BlockID) String() string { return fmt.Sprintf("blk_%010d", uint64(b)) }

// inode is one entry of the NameNode's in-memory namespace tree — the
// "block metadata lives in memory" box of the paper's Figure 2.
type inode struct {
	name     string
	dir      bool
	children map[string]*inode // dirs only
	blocks   []BlockID         // files only
	size     int64
	repl     int
}

// namespace is the directory tree. It is purely in-memory state owned by
// the NameNode; DataNodes never see paths, only blocks.
type namespace struct {
	root *inode
}

func newNamespace() *namespace {
	return &namespace{root: &inode{name: "", dir: true, children: map[string]*inode{}}}
}

func splitPath(path string) []string {
	p := vfs.Clean(path)
	if p == "/" {
		return nil
	}
	return strings.Split(p[1:], "/")
}

// isCleanPath reports whether path is already in vfs.Clean form:
// absolute, no empty, "." or ".." segments, no trailing slash. Every path
// the cluster generates internally already is, which lets the namespace
// walk it in place instead of allocating Clean+Split slices per lookup —
// these run once per block allocation, heartbeat-driven read and client
// open, so they sit on the NameNode's hottest path.
func isCleanPath(p string) bool {
	if len(p) == 0 || p[0] != '/' {
		return false
	}
	if p == "/" {
		return true
	}
	rest := p[1:]
	for {
		i := strings.IndexByte(rest, '/')
		seg := rest
		if i >= 0 {
			seg = rest[:i]
		}
		if seg == "" || seg == "." || seg == ".." {
			return false
		}
		if i < 0 {
			return true
		}
		rest = rest[i+1:]
	}
}

// lookup returns the inode at path, or nil.
func (ns *namespace) lookup(path string) *inode {
	p := path
	if !isCleanPath(p) {
		p = vfs.Clean(path)
	}
	cur := ns.root
	if p == "/" {
		return cur
	}
	rest := p[1:]
	for {
		i := strings.IndexByte(rest, '/')
		seg := rest
		if i >= 0 {
			seg = rest[:i]
		}
		if !cur.dir {
			return nil
		}
		next, ok := cur.children[seg]
		if !ok {
			return nil
		}
		cur = next
		if i < 0 {
			return cur
		}
		rest = rest[i+1:]
	}
}

// lookupParent returns the parent directory inode and final segment name.
func (ns *namespace) lookupParent(path string) (*inode, string) {
	p := path
	if !isCleanPath(p) {
		p = vfs.Clean(path)
	}
	if p == "/" {
		return nil, ""
	}
	i := strings.LastIndexByte(p, '/')
	dir, name := p[:i], p[i+1:]
	cur := ns.root
	if dir != "" {
		cur = ns.lookup(dir)
	}
	if cur == nil || !cur.dir {
		return nil, ""
	}
	return cur, name
}

// mkdirAll creates the directory path and parents.
func (ns *namespace) mkdirAll(path string) error {
	cur := ns.root
	for _, seg := range splitPath(path) {
		next, ok := cur.children[seg]
		if !ok {
			next = &inode{name: seg, dir: true, children: map[string]*inode{}}
			cur.children[seg] = next
		}
		if !next.dir {
			return &vfs.PathError{Op: "mkdir", Path: path, Err: vfs.ErrNotDir}
		}
		cur = next
	}
	return nil
}

// createFile adds an empty file inode; the parent must exist.
func (ns *namespace) createFile(path string, repl int) (*inode, error) {
	parent, name := ns.lookupParent(path)
	if parent == nil || name == "" {
		return nil, &vfs.PathError{Op: "create", Path: path, Err: vfs.ErrNotExist}
	}
	if _, exists := parent.children[name]; exists {
		return nil, &vfs.PathError{Op: "create", Path: path, Err: vfs.ErrExist}
	}
	f := &inode{name: name, repl: repl}
	parent.children[name] = f
	return f, nil
}

// remove deletes path; returns the block IDs freed (recursively).
func (ns *namespace) remove(path string, recursive bool) ([]BlockID, error) {
	parent, name := ns.lookupParent(path)
	if parent == nil || name == "" {
		return nil, &vfs.PathError{Op: "remove", Path: path, Err: vfs.ErrInvalid}
	}
	node, ok := parent.children[name]
	if !ok {
		return nil, &vfs.PathError{Op: "remove", Path: path, Err: vfs.ErrNotExist}
	}
	if node.dir && len(node.children) > 0 && !recursive {
		return nil, &vfs.PathError{Op: "remove", Path: path, Err: vfs.ErrNotEmpty}
	}
	var freed []BlockID
	var collect func(n *inode)
	collect = func(n *inode) {
		freed = append(freed, n.blocks...)
		for _, c := range n.children {
			collect(c)
		}
	}
	collect(node)
	delete(parent.children, name)
	return freed, nil
}

// rename moves a file or directory.
func (ns *namespace) rename(oldPath, newPath string) error {
	op, oname := ns.lookupParent(oldPath)
	if op == nil {
		return &vfs.PathError{Op: "rename", Path: oldPath, Err: vfs.ErrNotExist}
	}
	node, ok := op.children[oname]
	if !ok {
		return &vfs.PathError{Op: "rename", Path: oldPath, Err: vfs.ErrNotExist}
	}
	np, nname := ns.lookupParent(newPath)
	if np == nil || nname == "" {
		return &vfs.PathError{Op: "rename", Path: newPath, Err: vfs.ErrNotExist}
	}
	if _, exists := np.children[nname]; exists {
		return &vfs.PathError{Op: "rename", Path: newPath, Err: vfs.ErrExist}
	}
	delete(op.children, oname)
	node.name = nname
	np.children[nname] = node
	return nil
}

// list returns the children of a directory, sorted by name.
func (n *inode) list() []*inode {
	out := make([]*inode, 0, len(n.children))
	for _, c := range n.children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// walkFiles visits every file inode under n in sorted path order.
func (ns *namespace) walkFiles(n *inode, prefix string, fn func(path string, f *inode)) {
	if !n.dir {
		fn(prefix, n)
		return
	}
	for _, c := range n.list() {
		p := prefix + "/" + c.name
		if prefix == "/" {
			p = "/" + c.name
		}
		ns.walkFiles(c, p, fn)
	}
}

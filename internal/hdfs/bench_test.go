package hdfs_test

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/sim"
	"repro/internal/vfs"
)

func benchDFS(b *testing.B, nodes int, cfg hdfs.Config) *hdfs.MiniDFS {
	b.Helper()
	eng := sim.NewEngine()
	topo := cluster.NewTopology(cluster.PaperNodeConfig(nodes, 1))
	d, err := hdfs.NewMiniDFS(eng, topo, hdfs.Options{Config: cfg, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkPipelineWrite(b *testing.B) {
	d := benchDFS(b, 8, hdfs.Config{BlockSize: 1 << 20, Replication: 3})
	c := d.Client(hdfs.GatewayNode)
	data := make([]byte, 4<<20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := vfs.WriteFile(c, fmt.Sprintf("/bench/f%d", i), data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalRead(b *testing.B) {
	d := benchDFS(b, 4, hdfs.Config{BlockSize: 1 << 20, Replication: 3})
	w := d.Client(0)
	data := make([]byte, 4<<20)
	if err := vfs.WriteFile(w, "/f", data); err != nil {
		b.Fatal(err)
	}
	c := d.Client(0)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vfs.ReadFile(c, "/f"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFsckManyFiles(b *testing.B) {
	d := benchDFS(b, 8, hdfs.Config{BlockSize: 4 << 10, Replication: 3})
	c := d.Client(hdfs.GatewayNode)
	for i := 0; i < 200; i++ {
		if err := vfs.WriteFile(c, fmt.Sprintf("/data/f%03d", i), make([]byte, 10<<10)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := d.Fsck()
		if err != nil || !rep.Healthy() {
			b.Fatalf("fsck: %v", err)
		}
	}
}

func BenchmarkBlockLocations(b *testing.B) {
	d := benchDFS(b, 8, hdfs.Config{BlockSize: 64 << 10, Replication: 3})
	c := d.Client(hdfs.GatewayNode)
	if err := vfs.WriteFile(c, "/f", make([]byte, 4<<20)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.BlockLocations("/f"); err != nil {
			b.Fatal(err)
		}
	}
}

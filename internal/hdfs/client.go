package hdfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/history"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// GatewayNode is the client location for programs running off-cluster
// (e.g. a login node staging data): every transfer crosses the core.
const GatewayNode cluster.NodeID = -1

// Meter accumulates the modelled cost and locality of a client's I/O.
// The MapReduce counters for HDFS bytes read local/rack/remote come
// straight from here.
type Meter struct {
	BytesReadLocal  int64
	BytesReadRack   int64
	BytesReadRemote int64
	BytesWritten    int64
	ReadTime        time.Duration
	WriteTime       time.Duration
}

// BytesRead returns total bytes read at any distance.
func (m Meter) BytesRead() int64 {
	return m.BytesReadLocal + m.BytesReadRack + m.BytesReadRemote
}

// Reset zeroes the meter.
func (m *Meter) Reset() { *m = Meter{} }

// Client is an HDFS client bound to a location in the topology. It
// implements vfs.FileSystem, which is what lets a MapReduce jar written
// against the standalone runner rerun on HDFS unchanged.
type Client struct {
	nn   *NameNode
	eng  *sim.Engine
	topo *cluster.Topology
	cost cluster.CostModel
	net  *cluster.Network
	from cluster.NodeID

	// obs and m feed the cluster-wide observability registry (m is the
	// shared client metric bundle; both may be nil for detached clients).
	obs *obs.Registry
	m   *clientMetrics

	// User is the principal recorded in the NameNode audit log for this
	// client's operations; empty defaults to DefaultUser.
	User string

	// Meter records modelled I/O cost and locality for this client.
	Meter Meter
	// Trace, when valid, parents the client's HDFS spans (write pipelines,
	// block reads) under the caller's trace — how a reduce attempt's
	// critical path reaches into the DataNode layer. Zero value: spans
	// record flat, exactly as before tracing existed.
	Trace obs.Ctx
	// AutoAdvance, when set, advances the sim clock by each operation's
	// modelled cost — right for interactive flows (shell sessions, data
	// staging); the MapReduce runtime leaves it off and schedules task
	// durations itself.
	AutoAdvance bool
}

var _ vfs.FileSystem = (*Client)(nil)

// DefaultUser is the audit principal of clients that set no User — the
// single student account every lab runs as.
const DefaultUser = "student"

// auditEv appends a client-facing entry to the NameNode audit log:
// principal, operation, path(s), and whether the NameNode said yes.
func (c *Client) auditEv(typ string, attrs map[string]string, err error) {
	user := c.User
	if user == "" {
		user = DefaultUser
	}
	attrs["user"] = user
	if err != nil {
		attrs["result"] = "error"
	} else {
		attrs["result"] = "ok"
	}
	c.nn.audit.Append(time.Duration(c.eng.Now()), typ, attrs)
}

// Location returns the node the client runs on (GatewayNode if off-cluster).
func (c *Client) Location() cluster.NodeID { return c.from }

// NameNode exposes the cluster's NameNode (for fsck, locations, admin).
func (c *Client) NameNode() *NameNode { return c.nn }

func (c *Client) charge(read bool, d time.Duration) {
	if read {
		c.Meter.ReadTime += d
	} else {
		c.Meter.WriteTime += d
	}
	if c.AutoAdvance {
		c.eng.Advance(d)
	}
}

func (c *Client) distanceTo(id cluster.NodeID) int {
	if c.from < 0 {
		return 4
	}
	return c.topo.Distance(c.from, id)
}

// reachable reports whether the client can currently move data to/from the
// node (always true when no network overlay is installed).
func (c *Client) reachable(id cluster.NodeID) bool {
	return c.net.Reachable(c.from, id)
}

// --- writes ---

// Create opens a new file for writing with the default replication.
func (c *Client) Create(path string) (io.WriteCloser, error) {
	return c.CreateRepl(path, 0)
}

// CreateRepl opens a new file with an explicit replication factor
// (0 = cluster default).
func (c *Client) CreateRepl(path string, repl int) (io.WriteCloser, error) {
	f, err := c.nn.createFileEntry(path, repl)
	c.auditEv(history.EvAuditCreate, map[string]string{"src": vfs.Clean(path)}, err)
	if err != nil {
		return nil, err
	}
	return &hdfsWriter{c: c, f: f, path: vfs.Clean(path)}, nil
}

// hdfsWriter buffers file contents and writes the block pipeline on Close.
// (Real HDFS streams per-block; buffering whole files is fine at teaching
// scale and keeps the pipeline logic in one place.)
type hdfsWriter struct {
	c      *Client
	f      *inode
	path   string
	buf    bytes.Buffer
	closed bool
}

func (w *hdfsWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, io.ErrClosedPipe
	}
	return w.buf.Write(p)
}

func (w *hdfsWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	data := w.buf.Bytes()
	bs := w.c.nn.cfg.BlockSize
	for off := int64(0); off < int64(len(data)); off += bs {
		end := off + bs
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		if err := w.c.writeBlock(w.f, w.path, data[off:end]); err != nil {
			// Clean up the partial file so retries see a consistent tree.
			_ = w.c.nn.Delete(w.path, false)
			return &vfs.PathError{Op: "write", Path: w.path, Err: err}
		}
	}
	return w.c.nn.journalFileComplete(w.path, w.f)
}

// writeBlock runs one replicated pipeline write: client → DN1 → DN2 → DN3.
// The modelled cost is the pipeline bottleneck (slowest hop or disk),
// because hops stream concurrently.
func (c *Client) writeBlock(f *inode, path string, data []byte) error {
	id, targets, err := c.nn.allocateBlock(f, path, c.from)
	if err != nil {
		return err
	}
	var written []cluster.NodeID
	var bottleneck time.Duration
	var bottleneckNode string
	prev := c.from
	for _, t := range targets {
		dn := c.nn.datanodes[t]
		if dn == nil {
			continue
		}
		// A partitioned target is as good as a dead one: the pipeline
		// shrinks past it, exactly as it does past a failed DataNode.
		if !c.net.Reachable(prev, t) {
			continue
		}
		diskCost, err := dn.writeBlock(id, data)
		if err != nil {
			// Hadoop shrinks the pipeline past a failed node.
			continue
		}
		var hop time.Duration
		if prev < 0 {
			hop = c.cost.Transfer(4, int64(len(data)))
		} else {
			hop = c.cost.Transfer(c.topo.Distance(prev, t), int64(len(data)))
		}
		if hop > bottleneck {
			bottleneck = hop
			bottleneckNode = dn.Hostname()
		}
		if diskCost > bottleneck {
			bottleneck = diskCost
			bottleneckNode = dn.Hostname()
		}
		written = append(written, t)
		prev = t
	}
	if len(written) == 0 {
		c.nn.abandonBlock(id)
		return fmt.Errorf("hdfs: pipeline write of %v failed on all %d targets", id, len(targets))
	}
	c.nn.commitBlock(f, id, int64(len(data)), written)
	c.Meter.BytesWritten += int64(len(data))
	c.m.pipelineWrites.Inc()
	c.m.bytesWritten.Add(int64(len(data)))
	if len(written) < len(targets) {
		c.m.pipelineShrunk.Inc()
	}
	start := c.eng.Now()
	c.obs.ChildSpan(c.Trace, SpanWritePipeline, time.Duration(start), time.Duration(start)+bottleneck, map[string]string{
		"block":    fmt.Sprint(id),
		"bytes":    fmt.Sprint(len(data)),
		"replicas": fmt.Sprint(len(written)),
		"node":     bottleneckNode,
	})
	c.charge(false, bottleneck)
	return nil
}

// --- reads ---

// readBlock fetches one block choosing the closest live, healthy replica,
// retrying other replicas when a checksum fails (and reporting the corrupt
// copy to the NameNode, as DFSClient does).
func (c *Client) readBlock(id BlockID) ([]byte, error) {
	bm, ok := c.nn.blocks[id]
	if !ok {
		return nil, fmt.Errorf("hdfs: unknown block %v", id)
	}
	// Order candidate replicas by distance, then node ID for determinism.
	var cands []cluster.NodeID
	for nodeID := range bm.replicas {
		if info := c.nn.dns[nodeID]; info != nil && info.alive && !bm.corrupt[nodeID] && c.reachable(nodeID) {
			cands = append(cands, nodeID)
		}
	}
	sortNodeIDs(cands)
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && c.distanceTo(cands[j]) < c.distanceTo(cands[j-1]); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	for _, nodeID := range cands {
		dn := c.nn.datanodes[nodeID]
		if dn == nil {
			continue
		}
		data, diskCost, err := dn.readBlock(id)
		if err != nil {
			var ce *ChecksumError
			if errors.As(err, &ce) {
				c.nn.markCorrupt(id, nodeID)
			}
			c.m.readRetries.Inc()
			continue
		}
		dist := c.distanceTo(nodeID)
		total := diskCost + c.cost.Transfer(dist, int64(len(data)))
		switch {
		case dist == 0:
			c.Meter.BytesReadLocal += int64(len(data))
			c.m.readsLocal.Inc()
			c.m.bytesReadLocal.Add(int64(len(data)))
		case dist <= 2:
			c.Meter.BytesReadRack += int64(len(data))
			c.m.readsRack.Inc()
			c.m.bytesReadRack.Add(int64(len(data)))
		default:
			c.Meter.BytesReadRemote += int64(len(data))
			c.m.readsRemote.Inc()
			c.m.bytesReadRemote.Add(int64(len(data)))
		}
		c.m.readBlockTime.Observe(total)
		// Traced clients (task attempts) get a read span under their
		// attempt; untraced bulk readers stay span-free — block reads are
		// far too hot to record unconditionally.
		if c.Trace.Valid() {
			start := time.Duration(c.eng.Now())
			c.obs.ChildSpan(c.Trace, SpanReadBlock, start, start+total, map[string]string{
				"block": fmt.Sprint(id),
				"bytes": fmt.Sprint(len(data)),
				"node":  dn.Hostname(),
			})
		}
		c.charge(true, total)
		return data, nil
	}
	return nil, &vfs.PathError{Op: "read", Path: id.String(), Err: vfs.ErrCorrupt}
}

// Open reads a whole file (all blocks, nearest replicas).
func (c *Client) Open(path string) (io.ReadCloser, error) {
	f := c.nn.ns.lookup(path)
	if f == nil {
		c.auditEv(history.EvAuditOpen, map[string]string{"src": vfs.Clean(path)}, vfs.ErrNotExist)
		return nil, &vfs.PathError{Op: "open", Path: path, Err: vfs.ErrNotExist}
	}
	c.auditEv(history.EvAuditOpen, map[string]string{"src": vfs.Clean(path)}, nil)
	if f.dir {
		return nil, &vfs.PathError{Op: "open", Path: path, Err: vfs.ErrIsDir}
	}
	var buf bytes.Buffer
	for _, bid := range f.blocks {
		data, err := c.readBlock(bid)
		if err != nil {
			return nil, &vfs.PathError{Op: "open", Path: path, Err: err}
		}
		buf.Write(data)
	}
	return io.NopCloser(bytes.NewReader(buf.Bytes())), nil
}

// ReadRange reads [off, off+length) of a file, touching only the blocks
// that overlap the range — what a map task does with its split.
func (c *Client) ReadRange(path string, off, length int64) ([]byte, error) {
	f := c.nn.ns.lookup(path)
	if f == nil {
		c.auditEv(history.EvAuditOpen, map[string]string{"src": vfs.Clean(path)}, vfs.ErrNotExist)
		return nil, &vfs.PathError{Op: "read", Path: path, Err: vfs.ErrNotExist}
	}
	c.auditEv(history.EvAuditOpen, map[string]string{"src": vfs.Clean(path)}, nil)
	if f.dir {
		return nil, &vfs.PathError{Op: "read", Path: path, Err: vfs.ErrIsDir}
	}
	end := off + length
	if end > f.size {
		end = f.size
	}
	if off < 0 || off >= end {
		return nil, nil
	}
	var out []byte
	blockStart := int64(0)
	for _, bid := range f.blocks {
		bm := c.nn.blocks[bid]
		blockEnd := blockStart + bm.len
		if blockEnd > off && blockStart < end {
			data, err := c.readBlock(bid)
			if err != nil {
				return nil, &vfs.PathError{Op: "read", Path: path, Err: err}
			}
			lo, hi := int64(0), int64(len(data))
			if off > blockStart {
				lo = off - blockStart
			}
			if end < blockEnd {
				hi = end - blockStart
			}
			out = append(out, data[lo:hi]...)
		}
		blockStart = blockEnd
		if blockStart >= end {
			break
		}
	}
	return out, nil
}

// --- metadata (delegated to the NameNode) ---

// Stat implements vfs.FileSystem.
func (c *Client) Stat(path string) (vfs.FileInfo, error) { return c.nn.Stat(path) }

// List implements vfs.FileSystem.
func (c *Client) List(path string) ([]vfs.FileInfo, error) { return c.nn.List(path) }

// Mkdir implements vfs.FileSystem.
func (c *Client) Mkdir(path string) error {
	err := c.nn.MkdirAll(path)
	c.auditEv(history.EvAuditMkdir, map[string]string{"src": vfs.Clean(path)}, err)
	return err
}

// Remove implements vfs.FileSystem.
func (c *Client) Remove(path string, recursive bool) error {
	err := c.nn.Delete(path, recursive)
	c.auditEv(history.EvAuditDelete, map[string]string{
		"src":       vfs.Clean(path),
		"recursive": fmt.Sprint(recursive),
	}, err)
	return err
}

// Rename implements vfs.FileSystem.
func (c *Client) Rename(oldPath, newPath string) error {
	err := c.nn.Rename(oldPath, newPath)
	c.auditEv(history.EvAuditRename, map[string]string{
		"src": vfs.Clean(oldPath),
		"dst": vfs.Clean(newPath),
	}, err)
	return err
}

// BlockLocations exposes block layout for split computation.
func (c *Client) BlockLocations(path string) ([]BlockLocation, error) {
	return c.nn.BlockLocations(path)
}

// SetReplication changes a file's replication factor (hadoop fs -setrep).
func (c *Client) SetReplication(path string, repl int) error {
	err := c.nn.SetReplication(path, repl)
	c.auditEv(history.EvAuditSetrep, map[string]string{
		"src":  vfs.Clean(path),
		"repl": fmt.Sprint(repl),
	}, err)
	return err
}

// Fsck audits the subtree at path (hadoop fsck).
func (c *Client) Fsck(path string) (*FsckReport, error) {
	return c.nn.Fsck(path)
}

// FsckWith audits the subtree at path with -blocks/-locations detail.
func (c *Client) FsckWith(path string, opts FsckOpts) (*FsckReport, error) {
	return c.nn.FsckWith(path, opts)
}

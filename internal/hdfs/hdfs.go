package hdfs

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/history"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// MiniDFS bundles a NameNode with one DataNode per topology node, all
// running on a shared sim engine — the paper's Figure 1(b) layout, where
// storage lives on the compute nodes.
type MiniDFS struct {
	Engine   *sim.Engine
	Topology *cluster.Topology
	Cost     cluster.CostModel
	NN       *NameNode
	// Net is the mutable connectivity overlay every data-plane transfer
	// consults — the injection point for partition faults.
	Net *cluster.Network
	// Obs collects every metric and span the cluster emits; one registry
	// spans NameNode, DataNodes, clients and (when layered on top) the
	// MapReduce runtime.
	Obs *obs.Registry

	datanodes []*DataNode
	cm        *clientMetrics
}

// Options configures a MiniDFS build.
type Options struct {
	Config Config
	Seed   int64
	// Cost overrides the default cost model when non-zero-valued.
	Cost *cluster.CostModel
	// MetadataFS, when set, persists the NameNode's namespace (fsimage +
	// edit log) so RestartFromDisk can rebuild it — see journal.go.
	MetadataFS vfs.FileSystem
	// Obs, when set, receives the cluster's metrics and spans; a fresh
	// registry is created otherwise.
	Obs *obs.Registry
}

// NewMiniDFS creates and starts a cluster on the engine and topology. The
// engine is advanced just far enough for every DataNode to register and
// the NameNode to leave safe mode, so the returned cluster is ready.
func NewMiniDFS(eng *sim.Engine, topo *cluster.Topology, opts Options) (*MiniDFS, error) {
	if eng == nil || topo == nil {
		return nil, fmt.Errorf("hdfs: engine and topology are required")
	}
	cost := cluster.DefaultCostModel()
	if opts.Cost != nil {
		cost = *opts.Cost
	}
	cfg := opts.Config.withDefaults()
	rng := sim.NewRand(opts.Seed).Derive("namenode")
	net := cluster.NewNetwork(topo)
	reg := opts.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	nn := newNameNode(eng, topo, cost, cfg, rng, reg)
	nn.metaFS = opts.MetadataFS
	nn.net = net
	d := &MiniDFS{Engine: eng, Topology: topo, Cost: cost, NN: nn, Net: net, Obs: reg, cm: newClientMetrics(reg)}
	dnm := newDNMetrics(reg)
	for _, n := range topo.Nodes() {
		dn := &DataNode{
			id:     n.ID,
			node:   n,
			nn:     nn,
			eng:    eng,
			cost:   cost,
			blocks: map[BlockID]*storedBlock{},
			m:      dnm,
		}
		nn.datanodes[n.ID] = dn
		d.datanodes = append(d.datanodes, dn)
		dn.Start()
	}
	nn.start()
	// Let registrations land (empty-disk integrity scans are ~one seek).
	eng.Advance(cfg.HeartbeatInterval)
	return d, nil
}

// DataNodes returns the DataNodes in node-ID order.
func (d *MiniDFS) DataNodes() []*DataNode { return d.datanodes }

// DataNode returns the DataNode on the given node, or nil.
func (d *MiniDFS) DataNode(id cluster.NodeID) *DataNode {
	if int(id) < 0 || int(id) >= len(d.datanodes) {
		return nil
	}
	return d.datanodes[id]
}

// Client returns a client located at the given node (GatewayNode for an
// off-cluster client, e.g. the login node students staged data from).
func (d *MiniDFS) Client(from cluster.NodeID) *Client {
	return &Client{
		nn:   d.NN,
		eng:  d.Engine,
		topo: d.Topology,
		cost: d.Cost,
		net:  d.Net,
		from: from,
		obs:  d.Obs,
		m:    d.cm,
	}
}

// Fsck audits the whole filesystem.
func (d *MiniDFS) Fsck() (*FsckReport, error) { return d.NN.Fsck("/") }

// AuditLog exposes the NameNode audit log (internal/history): every
// namespace operation and block decision since startup, in sim order.
func (d *MiniDFS) AuditLog() *history.Log { return d.NN.audit }

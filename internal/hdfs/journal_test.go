package hdfs_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/sim"
	"repro/internal/vfs"
)

func newPersistentDFS(t *testing.T, nodes int) (*hdfs.MiniDFS, *vfs.MemFS) {
	t.Helper()
	meta := vfs.NewMemFS()
	eng := sim.NewEngine()
	topo := cluster.NewTopology(cluster.PaperNodeConfig(nodes, 1))
	d, err := hdfs.NewMiniDFS(eng, topo, hdfs.Options{
		Seed:       3,
		Config:     hdfs.Config{BlockSize: 1 << 10, Replication: 2, HeartbeatInterval: time.Second},
		MetadataFS: meta,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d, meta
}

func TestEditLogReplayRebuildsNamespace(t *testing.T) {
	d, _ := newPersistentDFS(t, 4)
	c := d.Client(0)
	if err := vfs.WriteFile(c, "/a/keep.txt", []byte("keep me")); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(c, "/a/drop.txt", []byte("drop me")); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove("/a/drop.txt", false); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename("/a/keep.txt", "/a/kept.txt"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetReplication("/a/kept.txt", 4); err != nil {
		t.Fatal(err)
	}
	if d.NN.EditLogRecords() == 0 {
		t.Fatal("nothing journaled")
	}
	before := treeString(t, c)

	// Cold start: namespace rebuilt purely from the edit log; replica
	// locations return via block reports.
	if err := d.NN.RestartFromDisk(); err != nil {
		t.Fatal(err)
	}
	if !d.NN.InSafeMode() {
		t.Fatal("cold start should re-enter safe mode")
	}
	d.Engine.Advance(5 * time.Second)
	if d.NN.InSafeMode() {
		t.Fatal("safe mode never exited after block reports")
	}
	if after := treeString(t, c); after != before {
		t.Fatalf("namespace diverged after replay:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	data, err := vfs.ReadFile(c, "/a/kept.txt")
	if err != nil || string(data) != "keep me" {
		t.Fatalf("data after recovery: %q err=%v", data, err)
	}
	fi, _ := c.Stat("/a/kept.txt")
	if fi.Replication != 4 {
		t.Fatalf("setrep lost in replay: %d", fi.Replication)
	}
}

func TestCheckpointTruncatesEditLog(t *testing.T) {
	d, meta := newPersistentDFS(t, 3)
	c := d.Client(0)
	for i := 0; i < 5; i++ {
		if err := vfs.WriteFile(c, fmt.Sprintf("/f%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if !vfs.Exists(meta, "/dfs/name/current/edits") {
		t.Fatal("edit log missing")
	}
	entries, err := d.NN.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if entries != 5 {
		t.Fatalf("checkpoint wrote %d entries, want 5", entries)
	}
	if vfs.Exists(meta, "/dfs/name/current/edits") {
		t.Fatal("edit log not truncated by checkpoint")
	}
	if !vfs.Exists(meta, "/dfs/name/current/fsimage") {
		t.Fatal("fsimage missing")
	}
	// Post-checkpoint edits land in a fresh log; recovery uses both.
	if err := vfs.WriteFile(c, "/later", []byte("y")); err != nil {
		t.Fatal(err)
	}
	before := treeString(t, c)
	if err := d.NN.RestartFromDisk(); err != nil {
		t.Fatal(err)
	}
	d.Engine.Advance(5 * time.Second)
	if after := treeString(t, c); after != before {
		t.Fatalf("fsimage+edits recovery diverged:\n%s\nvs\n%s", before, after)
	}
}

func TestRecoveryPropertyRandomOps(t *testing.T) {
	// Property: after any random mutation sequence, RestartFromDisk
	// reproduces the namespace exactly (same paths, sizes, replication).
	for trial := 0; trial < 3; trial++ {
		d, _ := newPersistentDFS(t, 4)
		c := d.Client(0)
		rng := rand.New(rand.NewSource(int64(400 + trial)))
		paths := []string{"/x", "/y", "/d/a", "/d/b", "/d/e/c"}
		for op := 0; op < 120; op++ {
			p := paths[rng.Intn(len(paths))]
			switch rng.Intn(5) {
			case 0, 1:
				_ = vfs.WriteFile(c, p, make([]byte, rng.Intn(4<<10)))
			case 2:
				_ = c.Remove(p, true)
			case 3:
				_ = c.Rename(p, paths[rng.Intn(len(paths))])
			case 4:
				_ = c.SetReplication(p, 1+rng.Intn(3))
			}
			if op == 60 {
				if _, err := d.NN.Checkpoint(); err != nil {
					t.Fatal(err)
				}
			}
		}
		before := treeString(t, c)
		if err := d.NN.RestartFromDisk(); err != nil {
			t.Fatal(err)
		}
		d.Engine.Advance(5 * time.Second)
		if after := treeString(t, c); after != before {
			t.Fatalf("trial %d: recovery diverged\nbefore:\n%s\nafter:\n%s", trial, before, after)
		}
	}
}

func TestCheckpointWithoutMetaFSFails(t *testing.T) {
	d := newDFS(t, 2, 1, hdfs.Config{})
	if _, err := d.NN.Checkpoint(); err == nil {
		t.Fatal("checkpoint without metadata filesystem succeeded")
	}
	if err := d.NN.RestartFromDisk(); err == nil {
		t.Fatal("recovery without metadata filesystem succeeded")
	}
}

package hdfs_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/hdfs"
	"repro/internal/vfs"
)

// TestModelBasedAgainstMemFS drives the HDFS client and a plain MemFS
// with the same random operation sequence and checks that the observable
// filesystem state (tree shape, file contents, error/success outcomes)
// never diverges — HDFS must behave exactly like a filesystem, no matter
// how the operations interleave with block machinery underneath.
func TestModelBasedAgainstMemFS(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			d := newDFS(t, 4, 2, hdfsSmallBlocks())
			sut := d.Client(0)
			model := vfs.NewMemFS()
			rng := rand.New(rand.NewSource(int64(1000 + trial)))

			paths := []string{"/a", "/b", "/dir/x", "/dir/y", "/dir/sub/z", "/c"}
			dirs := []string{"/dir", "/dir/sub", "/other"}

			for op := 0; op < 300; op++ {
				switch rng.Intn(6) {
				case 0: // write a new file
					p := paths[rng.Intn(len(paths))]
					data := make([]byte, rng.Intn(5000))
					rng.Read(data)
					errS := vfs.WriteFile(sut, p, data)
					errM := vfs.WriteFile(model, p, data)
					checkSameOutcome(t, op, "write "+p, errS, errM)
				case 1: // mkdir
					p := dirs[rng.Intn(len(dirs))]
					checkSameOutcome(t, op, "mkdir "+p, sut.Mkdir(p), model.Mkdir(p))
				case 2: // remove (sometimes recursive)
					p := append(paths, dirs...)[rng.Intn(len(paths)+len(dirs))]
					rec := rng.Intn(2) == 0
					checkSameOutcome(t, op, fmt.Sprintf("rm %s rec=%v", p, rec),
						sut.Remove(p, rec), model.Remove(p, rec))
				case 3: // rename
					a := paths[rng.Intn(len(paths))]
					b := paths[rng.Intn(len(paths))]
					checkSameOutcome(t, op, "mv "+a+" "+b, sut.Rename(a, b), model.Rename(a, b))
				case 4: // read & compare contents
					p := paths[rng.Intn(len(paths))]
					dataS, errS := vfs.ReadFile(sut, p)
					dataM, errM := vfs.ReadFile(model, p)
					checkSameOutcome(t, op, "read "+p, errS, errM)
					if errS == nil && string(dataS) != string(dataM) {
						t.Fatalf("op %d: contents of %s diverge (%d vs %d bytes)",
							op, p, len(dataS), len(dataM))
					}
				case 5: // full tree comparison
					if !sameTree(t, sut, model) {
						t.Fatalf("op %d: trees diverge", op)
					}
				}
			}
			if !sameTree(t, sut, model) {
				t.Fatal("final trees diverge")
			}
		})
	}
}

func hdfsSmallBlocks() (c hdfs.Config) {
	c.BlockSize = 512
	c.Replication = 2
	return c
}

func checkSameOutcome(t *testing.T, op int, what string, errS, errM error) {
	t.Helper()
	if (errS == nil) != (errM == nil) {
		t.Fatalf("op %d %s: hdfs err=%v, model err=%v", op, what, errS, errM)
	}
}

// sameTree compares the full file listing (paths, sizes, dir flags).
func sameTree(t *testing.T, a, b vfs.FileSystem) bool {
	t.Helper()
	return treeString(t, a) == treeString(t, b)
}

func treeString(t *testing.T, fs vfs.FileSystem) string {
	t.Helper()
	var entries []string
	var walk func(p string)
	walk = func(p string) {
		infos, err := fs.List(p)
		if err != nil {
			return
		}
		for _, fi := range infos {
			if fi.IsDir {
				entries = append(entries, fi.Path+"/")
				walk(fi.Path)
			} else {
				entries = append(entries, fmt.Sprintf("%s:%d", fi.Path, fi.Size))
			}
		}
	}
	walk("/")
	sort.Strings(entries)
	out := ""
	for _, e := range entries {
		out += e + "\n"
	}
	return out
}

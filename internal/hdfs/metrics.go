package hdfs

import "repro/internal/obs"

// Metric names emitted by the HDFS layer. The full taxonomy is
// documented in docs/OBSERVABILITY.md.
const (
	// NameNode (control plane).
	MetricNNBlocksAllocated       = "hdfs.nn.blocks_allocated"
	MetricNNReplicationsScheduled = "hdfs.nn.replications_scheduled"
	MetricNNReplicationsCompleted = "hdfs.nn.replications_completed"
	MetricNNCorruptionsDetected   = "hdfs.nn.corruptions_detected"
	MetricNNExcessReplicasDropped = "hdfs.nn.excess_replicas_dropped"
	MetricNNDataNodesDeclaredDead = "hdfs.nn.datanodes_declared_dead"
	MetricNNRegistrations         = "hdfs.nn.registrations"
	MetricNNHeartbeats            = "hdfs.nn.heartbeats"
	MetricNNBlockReports          = "hdfs.nn.block_reports"
	MetricNNEditLogRecords        = "hdfs.nn.editlog_records"
	MetricNNCheckpoints           = "hdfs.nn.checkpoints"
	MetricNNSafeMode              = "hdfs.nn.safemode"
	MetricNNSafeModeExits         = "hdfs.nn.safemode_exits"
	MetricNNSafeModeExitedAt      = "hdfs.nn.safemode_exited_at_ns"
	MetricNNHeartbeatGap          = "hdfs.nn.heartbeat_gap"

	// DataNodes (aggregate across all nodes; spans carry per-node detail).
	MetricDNHeartbeatsSent   = "hdfs.dn.heartbeats_sent"
	MetricDNBlockReportsSent = "hdfs.dn.block_reports_sent"
	MetricDNBlocksWritten    = "hdfs.dn.blocks_written"
	MetricDNBytesWritten     = "hdfs.dn.bytes_written"
	MetricDNBlocksRead       = "hdfs.dn.blocks_read"
	MetricDNBytesRead        = "hdfs.dn.bytes_read"
	MetricDNBlocksDeleted    = "hdfs.dn.blocks_deleted"
	MetricDNChecksumFailures = "hdfs.dn.checksum_failures"
	MetricDNDiskReadTime     = "hdfs.dn.disk_read_time"
	MetricDNDiskWriteTime    = "hdfs.dn.disk_write_time"

	// Clients (data plane, locality hit/miss).
	MetricClientReadsLocal      = "hdfs.client.reads_local"
	MetricClientReadsRack       = "hdfs.client.reads_rack"
	MetricClientReadsRemote     = "hdfs.client.reads_remote"
	MetricClientBytesReadLocal  = "hdfs.client.bytes_read_local"
	MetricClientBytesReadRack   = "hdfs.client.bytes_read_rack"
	MetricClientBytesReadRemote = "hdfs.client.bytes_read_remote"
	MetricClientBytesWritten    = "hdfs.client.bytes_written"
	MetricClientPipelineWrites  = "hdfs.client.pipeline_writes"
	MetricClientPipelineShrunk  = "hdfs.client.pipeline_shrunk"
	MetricClientReadRetries     = "hdfs.client.read_retries"
	MetricClientReadBlockTime   = "hdfs.client.read_block_time"

	// Span names.
	SpanSafeMode      = "hdfs.safemode"
	SpanRereplicate   = "hdfs.rereplicate"
	SpanWritePipeline = "hdfs.write_pipeline"
	SpanReadBlock     = "hdfs.read_block"
)

// nnMetrics holds the NameNode's interned metric handles so the hot
// paths never touch the registry map.
type nnMetrics struct {
	blocksAllocated       *obs.Counter
	replicationsScheduled *obs.Counter
	replicationsCompleted *obs.Counter
	corruptionsDetected   *obs.Counter
	excessReplicasDropped *obs.Counter
	datanodesDeclaredDead *obs.Counter
	registrations         *obs.Counter
	heartbeats            *obs.Counter
	blockReports          *obs.Counter
	editLogRecords        *obs.Counter
	checkpoints           *obs.Counter
	safeMode              *obs.Gauge
	safeModeExits         *obs.Counter
	safeModeExitedAt      *obs.Gauge
	heartbeatGap          *obs.Histogram
}

func newNNMetrics(r *obs.Registry) nnMetrics {
	return nnMetrics{
		blocksAllocated:       r.Counter(MetricNNBlocksAllocated),
		replicationsScheduled: r.Counter(MetricNNReplicationsScheduled),
		replicationsCompleted: r.Counter(MetricNNReplicationsCompleted),
		corruptionsDetected:   r.Counter(MetricNNCorruptionsDetected),
		excessReplicasDropped: r.Counter(MetricNNExcessReplicasDropped),
		datanodesDeclaredDead: r.Counter(MetricNNDataNodesDeclaredDead),
		registrations:         r.Counter(MetricNNRegistrations),
		heartbeats:            r.Counter(MetricNNHeartbeats),
		blockReports:          r.Counter(MetricNNBlockReports),
		editLogRecords:        r.Counter(MetricNNEditLogRecords),
		checkpoints:           r.Counter(MetricNNCheckpoints),
		safeMode:              r.Gauge(MetricNNSafeMode),
		safeModeExits:         r.Counter(MetricNNSafeModeExits),
		safeModeExitedAt:      r.Gauge(MetricNNSafeModeExitedAt),
		heartbeatGap:          r.Histogram(MetricNNHeartbeatGap),
	}
}

// dnMetrics aggregates data-plane activity across every DataNode; all
// DataNodes of a cluster share one bundle.
type dnMetrics struct {
	heartbeatsSent   *obs.Counter
	blockReportsSent *obs.Counter
	blocksWritten    *obs.Counter
	bytesWritten     *obs.Counter
	blocksRead       *obs.Counter
	bytesRead        *obs.Counter
	blocksDeleted    *obs.Counter
	checksumFailures *obs.Counter
	diskReadTime     *obs.Histogram
	diskWriteTime    *obs.Histogram
}

func newDNMetrics(r *obs.Registry) *dnMetrics {
	return &dnMetrics{
		heartbeatsSent:   r.Counter(MetricDNHeartbeatsSent),
		blockReportsSent: r.Counter(MetricDNBlockReportsSent),
		blocksWritten:    r.Counter(MetricDNBlocksWritten),
		bytesWritten:     r.Counter(MetricDNBytesWritten),
		blocksRead:       r.Counter(MetricDNBlocksRead),
		bytesRead:        r.Counter(MetricDNBytesRead),
		blocksDeleted:    r.Counter(MetricDNBlocksDeleted),
		checksumFailures: r.Counter(MetricDNChecksumFailures),
		diskReadTime:     r.Histogram(MetricDNDiskReadTime),
		diskWriteTime:    r.Histogram(MetricDNDiskWriteTime),
	}
}

// clientMetrics aggregates HDFS client activity; every client of a
// cluster shares one bundle (clients are cheap per-call values).
type clientMetrics struct {
	readsLocal      *obs.Counter
	readsRack       *obs.Counter
	readsRemote     *obs.Counter
	bytesReadLocal  *obs.Counter
	bytesReadRack   *obs.Counter
	bytesReadRemote *obs.Counter
	bytesWritten    *obs.Counter
	pipelineWrites  *obs.Counter
	pipelineShrunk  *obs.Counter
	readRetries     *obs.Counter
	readBlockTime   *obs.Histogram
}

func newClientMetrics(r *obs.Registry) *clientMetrics {
	return &clientMetrics{
		readsLocal:      r.Counter(MetricClientReadsLocal),
		readsRack:       r.Counter(MetricClientReadsRack),
		readsRemote:     r.Counter(MetricClientReadsRemote),
		bytesReadLocal:  r.Counter(MetricClientBytesReadLocal),
		bytesReadRack:   r.Counter(MetricClientBytesReadRack),
		bytesReadRemote: r.Counter(MetricClientBytesReadRemote),
		bytesWritten:    r.Counter(MetricClientBytesWritten),
		pipelineWrites:  r.Counter(MetricClientPipelineWrites),
		pipelineShrunk:  r.Counter(MetricClientPipelineShrunk),
		readRetries:     r.Counter(MetricClientReadRetries),
		readBlockTime:   r.Histogram(MetricClientReadBlockTime),
	}
}

package hdfs_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/hdfs"
	"repro/internal/vfs"
)

func TestDecommissionDrainsNode(t *testing.T) {
	cfg := hdfs.Config{
		BlockSize:           1 << 10,
		Replication:         2,
		HeartbeatInterval:   time.Second,
		ReplMonitorInterval: time.Second,
	}
	d := newDFS(t, 5, 1, cfg)
	c := d.Client(0)
	data := bytes.Repeat([]byte("drainme!"), 4000)
	if err := vfs.WriteFile(c, "/f", data); err != nil {
		t.Fatal(err)
	}
	// Pick a node actually holding replicas.
	var victim *hdfs.DataNode
	for _, dn := range d.DataNodes() {
		if dn.NumBlocks() > 0 {
			victim = dn
			break
		}
	}
	if victim == nil {
		t.Fatal("no node holds blocks")
	}
	if err := d.NN.StartDecommission(victim.ID()); err != nil {
		t.Fatal(err)
	}
	if d.NN.DecommissionComplete(victim.ID()) {
		t.Fatal("decommission complete before draining")
	}
	// The replication monitor copies the node's replicas elsewhere.
	d.Engine.Advance(2 * time.Minute)
	if !d.NN.DecommissionComplete(victim.ID()) {
		rep, _ := d.Fsck()
		t.Fatalf("drain never completed:\n%s", rep)
	}
	// Now it is safe to stop the daemon: no data loss, still healthy.
	victim.Kill()
	d.Engine.Advance(time.Minute)
	got, err := vfs.ReadFile(c, "/f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("data lost after graceful removal: err=%v", err)
	}
	rep, _ := d.Fsck()
	if !rep.Healthy() || rep.UnderReplicated != 0 {
		t.Fatalf("fsck after decommission:\n%s", rep)
	}
}

func TestDecommissionUnknownNode(t *testing.T) {
	d := newDFS(t, 2, 1, hdfs.Config{})
	if err := d.NN.StartDecommission(99); err == nil {
		t.Fatal("decommissioning an unknown node succeeded")
	}
}

func TestDecommissioningNodeGetsNoNewBlocks(t *testing.T) {
	d := newDFS(t, 4, 1, hdfs.Config{BlockSize: 512, Replication: 2})
	if err := d.NN.StartDecommission(1); err != nil {
		t.Fatal(err)
	}
	c := d.Client(1) // the writer is the draining node
	if err := vfs.WriteFile(c, "/f", make([]byte, 512*20)); err != nil {
		t.Fatal(err)
	}
	locs, _ := c.BlockLocations("/f")
	for _, loc := range locs {
		for _, n := range loc.Nodes {
			if n == 1 {
				t.Fatalf("draining node received a new replica: %v", loc)
			}
		}
	}
}

func TestBalancerEvensOutUtilization(t *testing.T) {
	// Create imbalance: write with replication 1 from one node, so that
	// node holds everything.
	d := newDFS(t, 4, 1, hdfs.Config{BlockSize: 1 << 10, Replication: 1, ReplMonitorInterval: time.Hour})
	c := d.Client(2)
	for i := 0; i < 12; i++ {
		if err := vfs.WriteFile(c, fmt.Sprintf("/f%02d", i), make([]byte, 4<<10)); err != nil {
			t.Fatal(err)
		}
	}
	before := d.UtilizationSpread()
	if before < 1 {
		t.Fatalf("expected heavy imbalance, spread = %.2f", before)
	}
	moves, err := d.Balance(0.10)
	if err != nil {
		t.Fatal(err)
	}
	if moves == 0 {
		t.Fatal("balancer moved nothing")
	}
	after := d.UtilizationSpread()
	if after >= before/2 {
		t.Fatalf("spread barely improved: %.2f -> %.2f (%d moves)", before, after, moves)
	}
	// All data still readable, fsck clean.
	for i := 0; i < 12; i++ {
		if _, err := vfs.ReadFile(c, fmt.Sprintf("/f%02d", i)); err != nil {
			t.Fatalf("file %d unreadable after balancing: %v", i, err)
		}
	}
	rep, _ := d.Fsck()
	if !rep.Healthy() {
		t.Fatalf("fsck after balance:\n%s", rep)
	}
}

func TestBalancerNoopWhenBalanced(t *testing.T) {
	d := newDFS(t, 4, 1, hdfs.Config{BlockSize: 1 << 10, Replication: 3})
	c := d.Client(hdfs.GatewayNode)
	if err := vfs.WriteFile(c, "/f", make([]byte, 12<<10)); err != nil {
		t.Fatal(err)
	}
	moves, err := d.Balance(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if moves > 2 {
		t.Fatalf("balancer over-worked a balanced cluster: %d moves", moves)
	}
}

package hdfs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/cluster"

	"repro/internal/vfs"
)

// NameNode metadata persistence, the part of HDFS the paper's Figure 2
// glosses as "block metadata lives in memory": the namespace itself is
// durable, stored as a checkpoint image (fsimage) plus an append-only
// edit log, merged periodically by the Secondary NameNode. Block
// *locations* are deliberately not persisted — they are rebuilt from
// DataNode block reports on every startup, which is exactly why the
// paper's cluster restarts took fifteen minutes.

const (
	fsimagePath = "/dfs/name/current/fsimage"
	editsPath   = "/dfs/name/current/edits"
)

// editRecord is one logged namespace mutation.
type editRecord struct {
	Op     string    `json:"op"` // mkdir, close, delete, rename, setrep
	Path   string    `json:"path"`
	Path2  string    `json:"path2,omitempty"`
	Repl   int       `json:"repl,omitempty"`
	Blocks []BlockID `json:"blocks,omitempty"`
	Lens   []int64   `json:"lens,omitempty"`
}

// imageEntry is one namespace entry in the checkpoint image.
type imageEntry struct {
	Path   string    `json:"path"`
	Dir    bool      `json:"dir"`
	Repl   int       `json:"repl,omitempty"`
	Blocks []BlockID `json:"blocks,omitempty"`
	Lens   []int64   `json:"lens,omitempty"`
}

// journal appends an edit record to the edit log (no-op without a
// metadata filesystem). A failed append is surfaced to the caller: an
// edit acked to the client but not durable would silently vanish on the
// next NameNode restart.
func (nn *NameNode) journal(rec editRecord) error {
	if nn.metaFS == nil {
		return nil
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	var existing []byte
	if vfs.Exists(nn.metaFS, editsPath) {
		// A failed read here must abort the append: rewriting the log
		// from a nil buffer would truncate every prior edit.
		existing, err = vfs.ReadFile(nn.metaFS, editsPath)
		if err != nil {
			return err
		}
		if err := nn.metaFS.Remove(editsPath, false); err != nil {
			return err
		}
	}
	if err := vfs.WriteFile(nn.metaFS, editsPath, append(existing, append(line, '\n')...)); err != nil {
		return err
	}
	nn.m.editLogRecords.Inc()
	return nil
}

// journalFileComplete records a finished file with its blocks.
func (nn *NameNode) journalFileComplete(path string, f *inode) error {
	lens := make([]int64, len(f.blocks))
	for i, bid := range f.blocks {
		if bm, ok := nn.blocks[bid]; ok {
			lens[i] = bm.len
		}
	}
	return nn.journal(editRecord{Op: "close", Path: path, Repl: f.repl, Blocks: f.blocks, Lens: lens})
}

// Checkpoint is the Secondary NameNode's job: serialise the current
// namespace as a new fsimage and truncate the edit log. Returns the
// number of namespace entries written.
func (nn *NameNode) Checkpoint() (int, error) {
	if nn.metaFS == nil {
		return 0, fmt.Errorf("hdfs: no metadata filesystem configured")
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	entries := 0
	var walk func(n *inode, prefix string) error
	walk = func(n *inode, prefix string) error {
		for _, c := range n.list() {
			p := prefix + "/" + c.name
			e := imageEntry{Path: p, Dir: c.dir, Repl: c.repl}
			if !c.dir {
				e.Blocks = c.blocks
				e.Lens = make([]int64, len(c.blocks))
				for i, bid := range c.blocks {
					if bm, ok := nn.blocks[bid]; ok {
						e.Lens[i] = bm.len
					}
				}
			}
			if err := enc.Encode(e); err != nil {
				return err
			}
			entries++
			if c.dir {
				if err := walk(c, p); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(nn.ns.root, ""); err != nil {
		return 0, err
	}
	if vfs.Exists(nn.metaFS, fsimagePath) {
		if err := nn.metaFS.Remove(fsimagePath, false); err != nil {
			return 0, err
		}
	}
	if err := vfs.WriteFile(nn.metaFS, fsimagePath, buf.Bytes()); err != nil {
		return 0, err
	}
	if vfs.Exists(nn.metaFS, editsPath) {
		if err := nn.metaFS.Remove(editsPath, false); err != nil {
			return 0, err
		}
	}
	nn.m.checkpoints.Inc()
	return entries, nil
}

// loadNamespaceFromDisk rebuilds the namespace tree and block metadata
// from fsimage + edit log. Block replica locations are NOT restored —
// they arrive via block reports, re-entering safe mode until then.
func (nn *NameNode) loadNamespaceFromDisk() error {
	if nn.metaFS == nil {
		return fmt.Errorf("hdfs: no metadata filesystem configured")
	}
	nn.ns = newNamespace()
	nn.blocks = map[BlockID]*blockMeta{}
	nn.nextBlock = 0

	addFile := func(path string, repl int, blocks []BlockID, lens []int64) error {
		dir, _ := vfs.Split(path)
		if err := nn.ns.mkdirAll(dir); err != nil {
			return err
		}
		// Replace any previous version of the file (edit replay order).
		if nn.ns.lookup(path) != nil {
			if _, err := nn.ns.remove(path, true); err != nil {
				return err
			}
		}
		f, err := nn.ns.createFile(path, repl)
		if err != nil {
			return err
		}
		for i, bid := range blocks {
			bm := &blockMeta{id: bid, expected: repl,
				replicas: map[cluster.NodeID]bool{}, corrupt: map[cluster.NodeID]bool{}}
			if i < len(lens) {
				bm.len = lens[i]
			}
			nn.blocks[bid] = bm
			f.blocks = append(f.blocks, bid)
			f.size += bm.len
			if bid > nn.nextBlock {
				nn.nextBlock = bid
			}
		}
		return nil
	}

	if vfs.Exists(nn.metaFS, fsimagePath) {
		data, err := vfs.ReadFile(nn.metaFS, fsimagePath)
		if err != nil {
			return err
		}
		sc := bufio.NewScanner(bytes.NewReader(data))
		sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
		for sc.Scan() {
			var e imageEntry
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				return fmt.Errorf("hdfs: corrupt fsimage: %w", err)
			}
			if e.Dir {
				if err := nn.ns.mkdirAll(e.Path); err != nil {
					return err
				}
			} else if err := addFile(e.Path, e.Repl, e.Blocks, e.Lens); err != nil {
				return err
			}
		}
		if err := sc.Err(); err != nil {
			return err
		}
	}
	if vfs.Exists(nn.metaFS, editsPath) {
		data, err := vfs.ReadFile(nn.metaFS, editsPath)
		if err != nil {
			return err
		}
		sc := bufio.NewScanner(bytes.NewReader(data))
		sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
		for sc.Scan() {
			var rec editRecord
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				return fmt.Errorf("hdfs: corrupt edit log: %w", err)
			}
			switch rec.Op {
			case "mkdir":
				if err := nn.ns.mkdirAll(rec.Path); err != nil {
					return err
				}
			case "close":
				if err := addFile(rec.Path, rec.Repl, rec.Blocks, rec.Lens); err != nil {
					return err
				}
			case "delete":
				freed, err := nn.ns.remove(rec.Path, true)
				if err != nil {
					continue // already gone; edits are idempotent-ish
				}
				for _, bid := range freed {
					delete(nn.blocks, bid)
				}
			case "rename":
				_ = nn.ns.rename(rec.Path, rec.Path2)
			case "setrep":
				if f := nn.ns.lookup(rec.Path); f != nil && !f.dir {
					f.repl = rec.Repl
					for _, bid := range f.blocks {
						if bm, ok := nn.blocks[bid]; ok {
							bm.expected = rec.Repl
						}
					}
				}
			}
		}
		if err := sc.Err(); err != nil {
			return err
		}
	}
	return nil
}

// RestartFromDisk models a NameNode cold start: the in-memory namespace
// is discarded and rebuilt from fsimage + edit log; replica locations are
// forgotten and the cluster re-enters safe mode until block reports
// arrive.
func (nn *NameNode) RestartFromDisk() error {
	if err := nn.loadNamespaceFromDisk(); err != nil {
		return err
	}
	nn.safeMode = true
	nn.safeModeEnteredAt = nn.eng.Now()
	nn.m.safeMode.Set(1)
	nn.dns = map[cluster.NodeID]*dnInfo{}
	nn.pendingRepl = map[BlockID]bool{}
	return nil
}

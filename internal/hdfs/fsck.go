package hdfs

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/vfs"
)

// FsckOpts selects optional detail sections, mirroring the flags of
// `hadoop fsck`: -blocks lists each file's block IDs, -locations adds
// the DataNode hosts of every live replica (and implies -blocks).
type FsckOpts struct {
	Blocks    bool
	Locations bool
}

// BlockDetail is one block row of the -blocks/-locations detail output.
type BlockDetail struct {
	Block  BlockID
	Length int64
	// Hosts are the live replica holders' hostnames, sorted; filled only
	// with FsckOpts.Locations.
	Hosts []string
}

// FileFsck is the per-file section of an fsck report.
type FileFsck struct {
	Path            string
	Size            int64
	Blocks          int
	Expected        int
	UnderReplicated int
	MissingBlocks   int
	CorruptReplicas int
	// BlockDetails is filled only when fsck ran with -blocks/-locations.
	BlockDetails []BlockDetail
}

// FsckReport mirrors the output of `hadoop fsck /` that the paper's second
// assignment had students run and record.
type FsckReport struct {
	Path                 string
	TotalFiles           int
	TotalBlocks          int
	TotalBytes           int64
	MinReplication       int
	UnderReplicated      int
	OverReplicated       int
	MissingBlocks        int
	CorruptReplicas      int
	LiveDataNodes        int
	DefaultReplication   int
	AvgReplicationFactor float64
	Files                []FileFsck
	// Opts records which detail sections the report carries.
	Opts FsckOpts
}

// Healthy reports whether the filesystem has no missing blocks (the
// condition under which HDFS refuses to serve the data at all).
func (r *FsckReport) Healthy() bool { return r.MissingBlocks == 0 }

// Status returns the HDFS-style one-word verdict.
func (r *FsckReport) Status() string {
	if r.Healthy() {
		return "HEALTHY"
	}
	return "CORRUPT"
}

// String renders the report in the familiar fsck layout.
func (r *FsckReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FSCK started for path %s\n", r.Path)
	for _, f := range r.Files {
		if r.Opts.Blocks || r.Opts.Locations {
			fmt.Fprintf(&b, "%s %d bytes, %d block(s):\n", f.Path, f.Size, f.Blocks)
			for i, bd := range f.BlockDetails {
				fmt.Fprintf(&b, "  %d. %v len=%d", i, bd.Block, bd.Length)
				if r.Opts.Locations {
					fmt.Fprintf(&b, " [%s]", strings.Join(bd.Hosts, ", "))
				}
				b.WriteByte('\n')
			}
		}
		if f.UnderReplicated > 0 || f.MissingBlocks > 0 || f.CorruptReplicas > 0 {
			fmt.Fprintf(&b, "%s %d bytes, %d block(s): ", f.Path, f.Size, f.Blocks)
			switch {
			case f.MissingBlocks > 0:
				fmt.Fprintf(&b, "MISSING %d blocks!\n", f.MissingBlocks)
			case f.UnderReplicated > 0:
				fmt.Fprintf(&b, "Under replicated (%d block(s) below target %d)\n", f.UnderReplicated, f.Expected)
			default:
				fmt.Fprintf(&b, "%d corrupt replica(s)\n", f.CorruptReplicas)
			}
		}
	}
	fmt.Fprintf(&b, " Total size:\t%d B\n", r.TotalBytes)
	fmt.Fprintf(&b, " Total files:\t%d\n", r.TotalFiles)
	fmt.Fprintf(&b, " Total blocks:\t%d\n", r.TotalBlocks)
	fmt.Fprintf(&b, " Minimally replicated blocks:\t%d\n", r.TotalBlocks-r.MissingBlocks)
	fmt.Fprintf(&b, " Under-replicated blocks:\t%d\n", r.UnderReplicated)
	fmt.Fprintf(&b, " Over-replicated blocks:\t%d\n", r.OverReplicated)
	fmt.Fprintf(&b, " Missing blocks:\t%d\n", r.MissingBlocks)
	fmt.Fprintf(&b, " Corrupt replicas:\t%d\n", r.CorruptReplicas)
	fmt.Fprintf(&b, " Default replication factor:\t%d\n", r.DefaultReplication)
	fmt.Fprintf(&b, " Average block replication:\t%.2f\n", r.AvgReplicationFactor)
	fmt.Fprintf(&b, " Number of live data-nodes:\t%d\n", r.LiveDataNodes)
	fmt.Fprintf(&b, "The filesystem under path '%s' is %s\n", r.Path, r.Status())
	return b.String()
}

// Fsck audits the subtree at path, counting replica health block by block.
func (nn *NameNode) Fsck(path string) (*FsckReport, error) {
	return nn.FsckWith(path, FsckOpts{})
}

// FsckWith audits the subtree at path with optional -blocks/-locations
// detail sections.
func (nn *NameNode) FsckWith(path string, opts FsckOpts) (*FsckReport, error) {
	if opts.Locations {
		opts.Blocks = true
	}
	start := nn.ns.lookup(path)
	if start == nil {
		return nil, &vfs.PathError{Op: "fsck", Path: path, Err: vfs.ErrNotExist}
	}
	rep := &FsckReport{
		Path:               vfs.Clean(path),
		DefaultReplication: nn.cfg.Replication,
		LiveDataNodes:      len(nn.LiveDataNodes()),
		Opts:               opts,
	}
	var replicaSum int64
	nn.ns.walkFiles(start, rep.Path, func(p string, f *inode) {
		ff := FileFsck{Path: p, Size: f.size, Blocks: len(f.blocks), Expected: f.repl}
		for _, bid := range f.blocks {
			bm, ok := nn.blocks[bid]
			if !ok {
				ff.MissingBlocks++
				if opts.Blocks {
					ff.BlockDetails = append(ff.BlockDetails, BlockDetail{Block: bid})
				}
				continue
			}
			live := nn.liveReplicas(bm)
			replicaSum += int64(live)
			switch {
			case live == 0:
				ff.MissingBlocks++
			case live < bm.expected:
				ff.UnderReplicated++
			case live > bm.expected:
				rep.OverReplicated++
			}
			ff.CorruptReplicas += len(bm.corrupt)
			if opts.Blocks {
				bd := BlockDetail{Block: bid, Length: bm.len}
				if opts.Locations {
					var holders []cluster.NodeID
					for id := range bm.replicas {
						if info := nn.dns[id]; info != nil && info.alive && !bm.corrupt[id] {
							holders = append(holders, id)
						}
					}
					sortNodeIDs(holders)
					for _, id := range holders {
						bd.Hosts = append(bd.Hosts, nn.hostname(id))
					}
				}
				ff.BlockDetails = append(ff.BlockDetails, bd)
			}
		}
		rep.TotalFiles++
		rep.TotalBlocks += len(f.blocks)
		rep.TotalBytes += f.size
		rep.UnderReplicated += ff.UnderReplicated
		rep.MissingBlocks += ff.MissingBlocks
		rep.CorruptReplicas += ff.CorruptReplicas
		rep.Files = append(rep.Files, ff)
	})
	if rep.TotalBlocks > 0 {
		rep.AvgReplicationFactor = float64(replicaSum) / float64(rep.TotalBlocks)
	}
	return rep, nil
}

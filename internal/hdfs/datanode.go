package hdfs

import (
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// DataNode stores block replicas on one machine's local disk and reports
// to the NameNode via heartbeats and block reports — the daemons the
// students crashed with leaky jobs in the paper's first semester.
type DataNode struct {
	id   cluster.NodeID
	node *cluster.Node
	nn   *NameNode
	eng  *sim.Engine
	cost cluster.CostModel

	blocks map[BlockID]*storedBlock
	used   int64
	alive  bool

	// m is the cluster-wide DataNode metric bundle (shared by all nodes).
	m *dnMetrics

	// preloadedBytes models data that sits on the node's disk without a
	// real payload in the simulation — e.g. the 171 GB Google Trace the
	// paper pre-loaded on the dedicated cluster. It only affects the
	// startup integrity-scan time and UsedBytes accounting.
	preloadedBytes int64

	hbTicker *sim.Ticker
	brTicker *sim.Ticker

	// FailNextWrites makes the next n block writes fail (fault injection).
	FailNextWrites int

	// slow multiplies modelled disk costs (fault injection: a degraded
	// spindle). 0 or 1 means a healthy disk.
	slow float64

	// muteUntil suppresses heartbeats and block reports before this
	// instant (fault injection): the daemon keeps running and serving
	// data, but the NameNode stops hearing from it.
	muteUntil sim.Time
}

type storedBlock struct {
	data []byte
	sum  uint32
}

func checksum(data []byte) uint32 { return crc32.ChecksumIEEE(data) }

// ID returns the node this DataNode runs on.
func (dn *DataNode) ID() cluster.NodeID { return dn.id }

// Hostname returns the machine hostname.
func (dn *DataNode) Hostname() string { return dn.node.Hostname }

// Alive reports whether the daemon is running.
func (dn *DataNode) Alive() bool { return dn.alive }

// UsedBytes returns the local-disk bytes consumed by replicas, including
// any preloaded (payload-free) data.
func (dn *DataNode) UsedBytes() int64 { return dn.used + dn.preloadedBytes }

// SetPreloadedBytes declares payload-free bulk data on the node's disk
// (see preloadedBytes). It lengthens restart integrity scans.
func (dn *DataNode) SetPreloadedBytes(n int64) {
	if n < 0 {
		n = 0
	}
	dn.preloadedBytes = n
}

// NumBlocks returns the replica count held locally.
func (dn *DataNode) NumBlocks() int { return len(dn.blocks) }

// BlockIDs returns the held block IDs, sorted (for deterministic reports).
func (dn *DataNode) BlockIDs() []BlockID {
	ids := make([]BlockID, 0, len(dn.blocks))
	for id := range dn.blocks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Start registers with the NameNode and begins heartbeating. If the node
// holds blocks from a previous life (a restart), it first runs the local
// integrity scan the paper describes — "it typically took at least
// fifteen minutes for all the Data Nodes to check for data integrity and
// report back to the Name Node" — whose duration scales with stored bytes.
func (dn *DataNode) Start() {
	if dn.alive {
		return
	}
	dn.alive = true
	scan := dn.integrityScanTime()
	dn.eng.After(scan, func() {
		if !dn.alive {
			return
		}
		dn.nn.register(dn)
		dn.sendBlockReport()
		dn.hbTicker = dn.eng.Every(dn.nn.cfg.HeartbeatInterval, dn.sendHeartbeat)
		dn.brTicker = dn.eng.Every(dn.nn.cfg.BlockReportInterval, dn.sendBlockReport)
	})
}

// integrityScanTime models the startup verification pass over local data.
func (dn *DataNode) integrityScanTime() time.Duration {
	total := dn.used + dn.preloadedBytes
	if total == 0 {
		return dn.cost.DiskSeek
	}
	return dn.cost.DiskRead(total)
}

// Kill stops the daemon abruptly (a crash). Replica data stays on disk —
// a later Start will re-verify and re-report it.
func (dn *DataNode) Kill() {
	if !dn.alive {
		return
	}
	dn.alive = false
	if dn.hbTicker != nil {
		dn.hbTicker.Stop()
	}
	if dn.brTicker != nil {
		dn.brTicker.Stop()
	}
}

// WipeAndKill simulates losing the machine and its disk entirely.
func (dn *DataNode) WipeAndKill() {
	dn.Kill()
	dn.blocks = map[BlockID]*storedBlock{}
	dn.used = 0
}

// DropHeartbeatsFor mutes the DataNode's control-plane traffic (heartbeats
// and block reports) for the next d of virtual time. If d outlives the
// NameNode's HeartbeatExpiry the node is declared dead and its blocks
// re-replicated; when the window ends the node's next heartbeat revives it
// and triggers an immediate block report.
func (dn *DataNode) DropHeartbeatsFor(d time.Duration) {
	until := dn.eng.Now() + d
	if until > dn.muteUntil {
		dn.muteUntil = until
	}
}

func (dn *DataNode) muted() bool { return dn.eng.Now() < dn.muteUntil }

// SetDiskSlowdown degrades (or restores, with f <= 1) the node's disk by
// multiplying modelled read/write costs — the classic straggler cause the
// tracing lab asks students to find from the trace waterfall alone.
func (dn *DataNode) SetDiskSlowdown(f float64) {
	if f < 0 {
		f = 0
	}
	dn.slow = f
}

// diskCost applies the configured slowdown to a modelled disk cost.
func (dn *DataNode) diskCost(d time.Duration) time.Duration {
	if dn.slow > 1 {
		return time.Duration(float64(d) * dn.slow)
	}
	return d
}

func (dn *DataNode) sendHeartbeat() {
	if dn.alive && !dn.muted() {
		dn.m.heartbeatsSent.Inc()
		dn.nn.heartbeat(dn.id)
	}
}

func (dn *DataNode) sendBlockReport() {
	if !dn.alive || dn.muted() {
		return
	}
	dn.m.blockReportsSent.Inc()
	dn.nn.blockReport(dn.id, dn.BlockIDs())
}

// writeBlock stores a replica locally. Returns the modelled disk cost.
func (dn *DataNode) writeBlock(id BlockID, data []byte) (time.Duration, error) {
	if !dn.alive {
		return 0, fmt.Errorf("hdfs: datanode %s is down", dn.node.Hostname)
	}
	if dn.FailNextWrites > 0 {
		dn.FailNextWrites--
		return 0, fmt.Errorf("hdfs: injected write failure on %s", dn.node.Hostname)
	}
	if dn.node.DiskBytes > 0 && dn.used+int64(len(data)) > dn.node.DiskBytes {
		return 0, fmt.Errorf("hdfs: datanode %s out of space", dn.node.Hostname)
	}
	if old, ok := dn.blocks[id]; ok {
		dn.used -= int64(len(old.data))
	}
	cp := append([]byte(nil), data...)
	dn.blocks[id] = &storedBlock{data: cp, sum: checksum(cp)}
	dn.used += int64(len(cp))
	cost := dn.diskCost(dn.cost.DiskWrite(int64(len(cp))))
	dn.m.blocksWritten.Inc()
	dn.m.bytesWritten.Add(int64(len(cp)))
	dn.m.diskWriteTime.Observe(cost)
	return cost, nil
}

// readBlock returns a replica's bytes after verifying its checksum, plus
// the modelled disk cost. A corrupted replica returns ErrChecksum.
func (dn *DataNode) readBlock(id BlockID) ([]byte, time.Duration, error) {
	if !dn.alive {
		return nil, 0, fmt.Errorf("hdfs: datanode %s is down", dn.node.Hostname)
	}
	sb, ok := dn.blocks[id]
	if !ok {
		return nil, 0, fmt.Errorf("hdfs: %v not on %s", id, dn.node.Hostname)
	}
	cost := dn.diskCost(dn.cost.DiskRead(int64(len(sb.data))))
	if checksum(sb.data) != sb.sum {
		dn.m.checksumFailures.Inc()
		return nil, cost, &ChecksumError{Block: id, Node: dn.node.Hostname}
	}
	dn.m.blocksRead.Inc()
	dn.m.bytesRead.Add(int64(len(sb.data)))
	dn.m.diskReadTime.Observe(cost)
	return sb.data, cost, nil
}

// deleteBlock removes a replica (invalidation from the NameNode).
func (dn *DataNode) deleteBlock(id BlockID) {
	if sb, ok := dn.blocks[id]; ok {
		dn.used -= int64(len(sb.data))
		delete(dn.blocks, id)
		dn.m.blocksDeleted.Inc()
	}
}

// CorruptBlock flips a byte of the stored replica without updating the
// stored checksum, simulating silent disk corruption. Reports whether the
// replica existed.
func (dn *DataNode) CorruptBlock(id BlockID) bool {
	sb, ok := dn.blocks[id]
	if !ok || len(sb.data) == 0 {
		return false
	}
	sb.data[len(sb.data)/2] ^= 0xFF
	return true
}

// ChecksumError reports a corrupt replica detected at read time.
type ChecksumError struct {
	Block BlockID
	Node  string
}

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("hdfs: checksum mismatch for %v on %s", e.Block, e.Node)
}

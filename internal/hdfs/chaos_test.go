package hdfs_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/faultinject/invariant"
	"repro/internal/hdfs"
	"repro/internal/sim"
)

// chaosDFS builds the 6-node/2-rack cluster the chaos plans run against
// and stages a handful of tracked files.
func chaosDFS(t *testing.T, seed int64) (*hdfs.MiniDFS, *invariant.WriteTracker) {
	t.Helper()
	d := newDFS(t, 6, 2, hdfs.Config{
		BlockSize:           2 << 10,
		Replication:         3,
		HeartbeatInterval:   time.Second,
		HeartbeatExpiry:     5 * time.Second,
		ReplMonitorInterval: 2 * time.Second,
	})
	c := d.Client(hdfs.GatewayNode)
	tracker := invariant.NewWriteTracker()
	rng := sim.NewRand(seed).Derive("chaos-data")
	for i := 0; i < 8; i++ {
		data := make([]byte, 1+rng.Intn(8<<10))
		rng.Read(data)
		if err := tracker.Put(c, fmt.Sprintf("/data/f%02d", i), data); err != nil {
			t.Fatal(err)
		}
	}
	return d, tracker
}

// TestChaosKillRestartInvariants subjects a cluster to a seeded random
// crash/restart plan from the faultinject harness and checks invariants
// between every fault: with at most replication-1 concurrent failures,
// every acknowledged write stays readable and no block goes missing; and
// once the plan's trailing restarts land and the monitor settles, the
// filesystem returns to full health.
func TestChaosKillRestartInvariants(t *testing.T) {
	for trial := int64(0); trial < 3; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			d, tracker := chaosDFS(t, 7000+trial)
			c := d.Client(hdfs.GatewayNode)
			plan := faultinject.RandomPlan(7000+trial, faultinject.PlanOpts{
				Nodes: 6, Racks: 2, Events: 25,
				Horizon:           90 * time.Second,
				MaxConcurrentDown: 2,
				Kinds:             []faultinject.Kind{faultinject.NodeCrash, faultinject.NodeRestart},
			})
			in, err := faultinject.New(faultinject.Target{Engine: d.Engine, DFS: d}, plan)
			if err != nil {
				t.Fatal(err)
			}
			base := d.Engine.Now()
			in.Install()
			// Advance to just past each fault and re-check the invariants.
			for i, f := range plan.Sorted() {
				d.Engine.RunUntil(base + f.At + 10*time.Millisecond)
				if err := tracker.Check(c); err != nil {
					t.Fatalf("after fault %d (%s at %v): %v\nlog:\n%s", i, f.Kind, f.At, err, in.LogString())
				}
				rep, err := d.Fsck()
				if err != nil {
					t.Fatal(err)
				}
				if rep.MissingBlocks > 0 {
					t.Fatalf("after fault %d (%s at %v): %d missing blocks:\n%s\nlog:\n%s",
						i, f.Kind, f.At, rep.MissingBlocks, rep, in.LogString())
				}
			}
			// The plan's tail restarts everything; the monitor heals all damage.
			if _, err := invariant.FsckSettled(d, 3*time.Minute); err != nil {
				t.Fatalf("%v\nlog:\n%s", err, in.LogString())
			}
			if err := tracker.Check(c); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestChaosHeartbeatDropAndCorruption widens the fault mix: heartbeat
// mutes (the NameNode wrongly declares nodes dead while they keep
// serving) and silent disk corruption (caught by read-path checksums).
// Unlike the crash-only plan, this mix can make individual blocks
// transiently unreadable — a muted node's replicas are invisible to the
// NameNode even though the data is fine — so the invariant here is
// durability, not continuous availability: once the plan ends and the
// monitor settles, fsck is clean and every acked byte reads back intact.
func TestChaosHeartbeatDropAndCorruption(t *testing.T) {
	if testing.Short() {
		t.Skip("tier-2 chaos test")
	}
	for trial := int64(0); trial < 3; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			d, tracker := chaosDFS(t, 8100+trial)
			c := d.Client(hdfs.GatewayNode)
			plan := faultinject.RandomPlan(8100+trial, faultinject.PlanOpts{
				Nodes: 6, Racks: 2, Events: 20,
				Horizon:           90 * time.Second,
				MaxConcurrentDown: 1,
				Kinds: []faultinject.Kind{
					faultinject.NodeCrash, faultinject.NodeRestart,
					faultinject.HeartbeatDrop, faultinject.DiskCorruptBlock,
				},
			})
			in, err := faultinject.New(faultinject.Target{Engine: d.Engine, DFS: d}, plan)
			if err != nil {
				t.Fatal(err)
			}
			base := d.Engine.Now()
			in.Install()
			d.Engine.RunUntil(base + plan.Horizon() + time.Second)
			if _, err := invariant.FsckSettled(d, 3*time.Minute); err != nil {
				t.Fatalf("%v\nlog:\n%s", err, in.LogString())
			}
			if err := tracker.Check(c); err != nil {
				t.Fatal(err)
			}
		})
	}
}

package hdfs_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/vfs"
)

// TestChaosKillRestartInvariants subjects a cluster to random DataNode
// kills and restarts and checks fsck invariants at every step; with at
// most replication-1 concurrent failures, data must always be readable,
// and after everything restarts and the monitor settles, the filesystem
// must return to full health.
func TestChaosKillRestartInvariants(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			const nodes = 6
			d := newDFS(t, nodes, 2, hdfs.Config{
				BlockSize:           2 << 10,
				Replication:         3,
				HeartbeatInterval:   time.Second,
				HeartbeatExpiry:     5 * time.Second,
				ReplMonitorInterval: 2 * time.Second,
			})
			c := d.Client(hdfs.GatewayNode)
			var files []string
			rng := rand.New(rand.NewSource(int64(7000 + trial)))
			for i := 0; i < 8; i++ {
				p := fmt.Sprintf("/data/f%02d", i)
				data := make([]byte, 1+rng.Intn(8<<10))
				rng.Read(data)
				if err := vfs.WriteFile(c, p, data); err != nil {
					t.Fatal(err)
				}
				files = append(files, p)
			}

			down := map[int]bool{}
			for step := 0; step < 25; step++ {
				switch rng.Intn(3) {
				case 0: // kill one node, but never exceed 2 concurrently down
					if len(down) < 2 {
						id := rng.Intn(nodes)
						if !down[id] {
							d.DataNode(cluster.NodeID(id)).Kill()
							down[id] = true
						}
					}
				case 1: // restart one downed node
					for id := range down {
						d.DataNode(cluster.NodeID(id)).Start()
						delete(down, id)
						break
					}
				case 2:
					d.Engine.Advance(time.Duration(1+rng.Intn(20)) * time.Second)
				}
				// Invariant: with ≤2 of 3 replicas lost, every file reads.
				f := files[rng.Intn(len(files))]
				if _, err := vfs.ReadFile(c, f); err != nil {
					t.Fatalf("step %d: %s unreadable with %d nodes down: %v", step, f, len(down), err)
				}
				rep, err := d.Fsck()
				if err != nil {
					t.Fatal(err)
				}
				if rep.MissingBlocks > 0 {
					t.Fatalf("step %d: missing blocks with only %d nodes down:\n%s", step, len(down), rep)
				}
			}
			// Everything back up; the monitor heals all damage.
			for id := range down {
				d.DataNode(cluster.NodeID(id)).Start()
			}
			d.Engine.Advance(2 * time.Minute)
			rep, err := d.Fsck()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Healthy() || rep.UnderReplicated != 0 {
				t.Fatalf("cluster did not heal:\n%s", rep)
			}
		})
	}
}

package hdfs

import (
	"errors"
	"fmt"
	"slices"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/history"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// ErrSafeMode is returned for mutating operations while the NameNode is in
// safe mode (during startup, until enough block reports arrive).
var ErrSafeMode = errors.New("hdfs: name node is in safe mode")

// Config holds the cluster-wide HDFS settings. Zero values take defaults
// scaled for teaching-size data (Hadoop's 64 MB blocks would leave toy
// files in a single block, hiding everything interesting).
type Config struct {
	BlockSize           int64
	Replication         int
	HeartbeatInterval   time.Duration
	HeartbeatExpiry     time.Duration
	BlockReportInterval time.Duration
	ReplMonitorInterval time.Duration
	// ReplRetryBackoff is how long the replication monitor waits before
	// re-attempting a block whose last re-replication attempt failed (no
	// live source, no eligible target, partition, checksum error). Without
	// it an unsatisfiable block — say every live node already holds a
	// replica — re-runs target selection on every monitor tick.
	ReplRetryBackoff  time.Duration
	SafeModeThreshold float64
	// RandomPlacement replaces the default writer-local/cross-rack policy
	// with uniform random target selection — the ablation showing what
	// the placement policy buys (map locality, rack fault tolerance).
	RandomPlacement bool
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.BlockSize <= 0 {
		c.BlockSize = 2 << 20
	}
	if c.Replication <= 0 {
		c.Replication = 3
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 3 * time.Second
	}
	if c.HeartbeatExpiry <= 0 {
		c.HeartbeatExpiry = 30 * time.Second
	}
	if c.BlockReportInterval <= 0 {
		c.BlockReportInterval = 10 * time.Minute
	}
	if c.ReplMonitorInterval <= 0 {
		c.ReplMonitorInterval = 3 * time.Second
	}
	if c.ReplRetryBackoff <= 0 {
		c.ReplRetryBackoff = 30 * time.Second
	}
	if c.SafeModeThreshold <= 0 {
		c.SafeModeThreshold = 0.999
	}
	return c
}

type blockMeta struct {
	id       BlockID
	len      int64
	expected int
	replicas map[cluster.NodeID]bool
	corrupt  map[cluster.NodeID]bool
}

type dnInfo struct {
	id            cluster.NodeID
	lastHeartbeat sim.Time
	alive         bool
}

// NameNode owns the namespace tree and the block map, chooses replica
// placements, monitors DataNode liveness, and drives re-replication. It
// corresponds to the single "NameNode" box of the paper's Figure 2.
type NameNode struct {
	eng  *sim.Engine
	topo *cluster.Topology
	cost cluster.CostModel
	cfg  Config
	rng  *sim.Rand

	// net is the connectivity overlay re-replication copies must respect.
	net *cluster.Network

	ns        *namespace
	blocks    map[BlockID]*blockMeta
	nextBlock BlockID

	dns       map[cluster.NodeID]*dnInfo
	datanodes map[cluster.NodeID]*DataNode // direct handles (the simulation's RPC)

	safeMode        bool
	pendingRepl     map[BlockID]bool
	replRetryAt     map[BlockID]sim.Time // failed attempts back off until here
	decommissioning map[cluster.NodeID]bool

	// metaFS, when set, persists the namespace (fsimage + edit log);
	// see journal.go.
	metaFS vfs.FileSystem

	// obs is the cluster-wide observability registry; m holds the
	// NameNode's interned metric handles (see metrics.go).
	obs *obs.Registry
	m   nnMetrics

	// audit is the NameNode audit log (internal/history): every namespace
	// operation and block decision, with principal, path and result.
	// Client-facing entries are appended by Client.auditEv; control-plane
	// decisions (re-replication, corruption, liveness) are appended here
	// as principal "hdfs".
	audit *history.Log

	// safeModeEnteredAt anchors the hdfs.safemode span emitted on exit.
	safeModeEnteredAt sim.Time
}

// EditLogRecords reports how many edit-log records have been journalled.
func (nn *NameNode) EditLogRecords() int64 { return nn.m.editLogRecords.Value() }

// Checkpoints reports how many fsimage checkpoints have been written.
func (nn *NameNode) Checkpoints() int { return int(nn.m.checkpoints.Value()) }

// ReplicationsScheduled reports how many re-replication copies the
// replication monitor has initiated.
func (nn *NameNode) ReplicationsScheduled() int64 { return nn.m.replicationsScheduled.Value() }

// CorruptionsDetected reports how many corrupt replicas readers or scans
// have surfaced.
func (nn *NameNode) CorruptionsDetected() int64 { return nn.m.corruptionsDetected.Value() }

// SafeModeExitedAt reports the sim instant of the most recent safe-mode
// exit (zero if the NameNode never left safe mode).
func (nn *NameNode) SafeModeExitedAt() sim.Time { return sim.Time(nn.m.safeModeExitedAt.Value()) }

// newNameNode constructs an unstarted NameNode.
func newNameNode(eng *sim.Engine, topo *cluster.Topology, cost cluster.CostModel, cfg Config, rng *sim.Rand, reg *obs.Registry) *NameNode {
	nn := &NameNode{
		eng:             eng,
		topo:            topo,
		cost:            cost,
		cfg:             cfg,
		rng:             rng,
		ns:              newNamespace(),
		blocks:          map[BlockID]*blockMeta{},
		dns:             map[cluster.NodeID]*dnInfo{},
		datanodes:       map[cluster.NodeID]*DataNode{},
		safeMode:        true,
		pendingRepl:     map[BlockID]bool{},
		replRetryAt:     map[BlockID]sim.Time{},
		decommissioning: map[cluster.NodeID]bool{},
		obs:             reg,
		m:               newNNMetrics(reg),
		audit:           history.NewLog(reg.Counter(history.MetricAuditEvents)),
	}
	nn.m.safeMode.Set(1)
	return nn
}

// start arms the liveness and replication monitors and the safe-mode exit
// check for an empty namespace.
func (nn *NameNode) start() {
	nn.eng.Every(nn.cfg.HeartbeatInterval, nn.checkLiveness)
	nn.eng.Every(nn.cfg.ReplMonitorInterval, nn.replicationMonitor)
	nn.maybeLeaveSafeMode()
}

// InSafeMode reports whether mutations are currently refused.
func (nn *NameNode) InSafeMode() bool { return nn.safeMode }

// Config returns the effective configuration.
func (nn *NameNode) Config() Config { return nn.cfg }

// Restart models a NameNode restart: registrations and replica maps are
// forgotten (they live only in memory); the namespace survives (fsimage).
// The cluster re-enters safe mode until block reports rebuild the map.
func (nn *NameNode) Restart() {
	nn.safeMode = true
	nn.safeModeEnteredAt = nn.eng.Now()
	nn.m.safeMode.Set(1)
	nn.dns = map[cluster.NodeID]*dnInfo{}
	nn.pendingRepl = map[BlockID]bool{}
	nn.replRetryAt = map[BlockID]sim.Time{}
	for _, bm := range nn.blocks {
		bm.replicas = map[cluster.NodeID]bool{}
		bm.corrupt = map[cluster.NodeID]bool{}
	}
}

// --- DataNode protocol ---

func (nn *NameNode) register(dn *DataNode) {
	nn.datanodes[dn.id] = dn
	nn.dns[dn.id] = &dnInfo{id: dn.id, lastHeartbeat: nn.eng.Now(), alive: true}
	nn.m.registrations.Inc()
}

func (nn *NameNode) heartbeat(id cluster.NodeID) {
	info, ok := nn.dns[id]
	if !ok {
		// Unknown node (e.g. after a NameNode restart): ask it to
		// re-register and re-report.
		if dn, have := nn.datanodes[id]; have && dn.alive {
			nn.register(dn)
			dn.sendBlockReport()
		}
		return
	}
	nn.m.heartbeats.Inc()
	nn.m.heartbeatGap.Observe(time.Duration(nn.eng.Now() - info.lastHeartbeat))
	info.lastHeartbeat = nn.eng.Now()
	if !info.alive {
		// A node returning from the dead (e.g. after a heartbeat-drop
		// window) re-reports its blocks immediately, as real HDFS asks a
		// rejoining DataNode to do — otherwise its replicas would stay
		// invisible until the next scheduled block report.
		info.alive = true
		if dn := nn.datanodes[id]; dn != nil && dn.alive {
			dn.sendBlockReport()
		}
	}
}

func (nn *NameNode) blockReport(id cluster.NodeID, held []BlockID) {
	info, ok := nn.dns[id]
	if !ok {
		return
	}
	nn.m.blockReports.Inc()
	info.lastHeartbeat = nn.eng.Now()
	heldSet := make(map[BlockID]bool, len(held))
	for _, b := range held {
		heldSet[b] = true
	}
	for bid, bm := range nn.blocks {
		if heldSet[bid] {
			bm.replicas[id] = true
		} else {
			delete(bm.replicas, id)
		}
	}
	// Blocks the DataNode holds that the namespace no longer references
	// are garbage from deleted files; tell it to drop them.
	if dn := nn.datanodes[id]; dn != nil {
		for _, bid := range held {
			if _, known := nn.blocks[bid]; !known {
				dn.deleteBlock(bid)
			}
		}
	}
	nn.maybeLeaveSafeMode()
}

// auditEv appends a control-plane audit event as principal "hdfs" —
// a decision the NameNode took on its own, not on behalf of a client.
func (nn *NameNode) auditEv(typ string, attrs map[string]string) {
	attrs["user"] = history.PrincipalNameNode
	nn.audit.Append(time.Duration(nn.eng.Now()), typ, attrs)
}

// hostname resolves a node ID for audit attrs (IDs are stable too, but
// hostnames are what students grep the log for).
func (nn *NameNode) hostname(id cluster.NodeID) string {
	if n := nn.topo.Node(id); n != nil {
		return n.Hostname
	}
	return fmt.Sprint(id)
}

func (nn *NameNode) checkLiveness() {
	now := nn.eng.Now()
	// Collect expired nodes first and process them in ID order: two nodes
	// expiring on the same tick must produce the same audit-log order on
	// every replay.
	var dead []cluster.NodeID
	for id, info := range nn.dns {
		if info.alive && now-info.lastHeartbeat > nn.cfg.HeartbeatExpiry {
			dead = append(dead, id)
		}
	}
	sortNodeIDs(dead)
	for _, id := range dead {
		nn.dns[id].alive = false
		nn.m.datanodesDeclaredDead.Inc()
		nn.auditEv(history.EvAuditDatanodeDead, map[string]string{"node": nn.hostname(id)})
		// Replicas on a dead node no longer count; the replication
		// monitor will notice the deficit on its next pass.
		for _, bm := range nn.blocks {
			delete(bm.replicas, id)
		}
	}
}

func (nn *NameNode) maybeLeaveSafeMode() {
	if !nn.safeMode {
		return
	}
	total := len(nn.blocks)
	if total == 0 {
		if len(nn.dns) > 0 || len(nn.datanodes) == 0 {
			nn.exitSafeMode()
		}
		return
	}
	reported := 0
	for _, bm := range nn.blocks {
		if nn.liveReplicas(bm) > 0 {
			reported++
		}
	}
	if float64(reported) >= nn.cfg.SafeModeThreshold*float64(total) {
		nn.exitSafeMode()
	}
}

func (nn *NameNode) exitSafeMode() {
	nn.safeMode = false
	now := nn.eng.Now()
	nn.m.safeMode.Set(0)
	nn.m.safeModeExits.Inc()
	nn.m.safeModeExitedAt.Set(int64(now))
	nn.obs.SpanCtx(nn.obs.NewTrace(time.Duration(now)), SpanSafeMode, time.Duration(nn.safeModeEnteredAt), time.Duration(now), nil)
	nn.auditEv(history.EvAuditSafemodeExit, map[string]string{"blocks": fmt.Sprint(len(nn.blocks))})
}

// liveReplicas counts confirmed replicas on live, non-draining nodes,
// excluding corrupt copies. Replicas on decommissioning nodes do not
// count toward the target, which is what drives the drain.
func (nn *NameNode) liveReplicas(bm *blockMeta) int {
	n := 0
	for id := range bm.replicas {
		if info := nn.dns[id]; info != nil && info.alive && !bm.corrupt[id] && !nn.decommissioning[id] {
			n++
		}
	}
	return n
}

// LiveDataNodes returns the IDs of registered, live DataNodes, sorted.
func (nn *NameNode) LiveDataNodes() []cluster.NodeID {
	var out []cluster.NodeID
	for id, info := range nn.dns {
		if info.alive {
			out = append(out, id)
		}
	}
	sortNodeIDs(out)
	return out
}

func sortNodeIDs(ids []cluster.NodeID) {
	slices.Sort(ids)
}

// --- placement ---

// chooseTargets implements the Hadoop default placement policy: first
// replica on the writer's node when it is a live DataNode, second replica
// on a node in a different rack, third on a different node in the second
// replica's rack, and any further replicas on random nodes.
func (nn *NameNode) chooseTargets(writer cluster.NodeID, n int, exclude map[cluster.NodeID]bool) []cluster.NodeID {
	if exclude == nil {
		exclude = map[cluster.NodeID]bool{}
	}
	var targets []cluster.NodeID
	taken := func(id cluster.NodeID) bool {
		if exclude[id] {
			return true
		}
		for _, t := range targets {
			if t == id {
				return true
			}
		}
		return false
	}
	liveIDs := nn.LiveDataNodes()
	pickWhere := func(pred func(cluster.NodeID) bool) (cluster.NodeID, bool) {
		var cands []cluster.NodeID
		for _, id := range liveIDs {
			if !taken(id) && !nn.decommissioning[id] && pred(id) {
				cands = append(cands, id)
			}
		}
		if len(cands) == 0 {
			return 0, false
		}
		return cands[nn.rng.Choice(len(cands))], true
	}
	any := func(cluster.NodeID) bool { return true }

	if nn.cfg.RandomPlacement {
		for len(targets) < n {
			id, ok := pickWhere(any)
			if !ok {
				break
			}
			targets = append(targets, id)
		}
		return targets
	}

	// Replica 1: writer-local when possible.
	if info := nn.dns[writer]; info != nil && info.alive && !taken(writer) && !nn.decommissioning[writer] {
		targets = append(targets, writer)
	} else if id, ok := pickWhere(any); ok {
		targets = append(targets, id)
	}
	// Replica 2: different rack from replica 1.
	if len(targets) >= 1 && len(targets) < n {
		r0 := nn.topo.RackOf(targets[0])
		if id, ok := pickWhere(func(id cluster.NodeID) bool { return nn.topo.RackOf(id) != r0 }); ok {
			targets = append(targets, id)
		} else if id, ok := pickWhere(any); ok { // single-rack cluster
			targets = append(targets, id)
		}
	}
	// Replica 3: same rack as replica 2.
	if len(targets) >= 2 && len(targets) < n {
		r1 := nn.topo.RackOf(targets[1])
		if id, ok := pickWhere(func(id cluster.NodeID) bool { return nn.topo.RackOf(id) == r1 }); ok {
			targets = append(targets, id)
		} else if id, ok := pickWhere(any); ok {
			targets = append(targets, id)
		}
	}
	// Remaining replicas: anywhere.
	for len(targets) < n {
		id, ok := pickWhere(any)
		if !ok {
			break
		}
		targets = append(targets, id)
	}
	return targets
}

// --- namespace operations (client-facing) ---

// MkdirAll creates a directory path.
func (nn *NameNode) MkdirAll(path string) error {
	if nn.safeMode {
		return &vfs.PathError{Op: "mkdir", Path: path, Err: ErrSafeMode}
	}
	if err := nn.ns.mkdirAll(path); err != nil {
		return err
	}
	return nn.journal(editRecord{Op: "mkdir", Path: vfs.Clean(path)})
}

// createFileEntry allocates the inode for a new file.
func (nn *NameNode) createFileEntry(path string, repl int) (*inode, error) {
	if nn.safeMode {
		return nil, &vfs.PathError{Op: "create", Path: path, Err: ErrSafeMode}
	}
	if repl <= 0 {
		repl = nn.cfg.Replication
	}
	return nn.ns.createFile(path, repl)
}

// allocateBlock assigns a new block ID and its replica targets. path is
// the file being written, carried along for the audit log.
func (nn *NameNode) allocateBlock(f *inode, path string, writer cluster.NodeID) (BlockID, []cluster.NodeID, error) {
	targets := nn.chooseTargets(writer, f.repl, nil)
	if len(targets) == 0 {
		return 0, nil, fmt.Errorf("hdfs: no live datanodes to place block (need %d)", f.repl)
	}
	nn.nextBlock++
	id := nn.nextBlock
	nn.m.blocksAllocated.Inc()
	nn.blocks[id] = &blockMeta{
		id:       id,
		expected: f.repl,
		replicas: map[cluster.NodeID]bool{},
		corrupt:  map[cluster.NodeID]bool{},
	}
	hosts := make([]string, len(targets))
	for i, t := range targets {
		hosts[i] = nn.hostname(t)
	}
	nn.auditEv(history.EvAuditBlockAllocate, map[string]string{
		"src":     path,
		"block":   fmt.Sprint(id),
		"targets": strings.Join(hosts, ","),
	})
	return id, targets, nil
}

// commitBlock records the successfully written replicas of a block and
// appends it to the file.
func (nn *NameNode) commitBlock(f *inode, id BlockID, length int64, written []cluster.NodeID) {
	bm := nn.blocks[id]
	bm.len = length
	for _, w := range written {
		bm.replicas[w] = true
	}
	f.blocks = append(f.blocks, id)
	f.size += length
}

// abandonBlock drops a block that failed to write.
func (nn *NameNode) abandonBlock(id BlockID) { delete(nn.blocks, id) }

// Delete removes a path, invalidating its blocks on all DataNodes.
func (nn *NameNode) Delete(path string, recursive bool) error {
	if nn.safeMode {
		return &vfs.PathError{Op: "remove", Path: path, Err: ErrSafeMode}
	}
	freed, err := nn.ns.remove(path, recursive)
	if err != nil {
		return err
	}
	for _, bid := range freed {
		if bm, ok := nn.blocks[bid]; ok {
			for nodeID := range bm.replicas {
				if dn := nn.datanodes[nodeID]; dn != nil && dn.alive {
					dn.deleteBlock(bid)
				}
			}
			delete(nn.blocks, bid)
		}
	}
	return nn.journal(editRecord{Op: "delete", Path: vfs.Clean(path)})
}

// Rename moves a file or directory.
func (nn *NameNode) Rename(oldPath, newPath string) error {
	if nn.safeMode {
		return &vfs.PathError{Op: "rename", Path: oldPath, Err: ErrSafeMode}
	}
	if err := nn.ns.rename(oldPath, newPath); err != nil {
		return err
	}
	return nn.journal(editRecord{Op: "rename", Path: vfs.Clean(oldPath), Path2: vfs.Clean(newPath)})
}

// SetReplication changes a file's target replication factor; the
// replication monitor converges the replica count.
func (nn *NameNode) SetReplication(path string, repl int) error {
	if nn.safeMode {
		return &vfs.PathError{Op: "setrep", Path: path, Err: ErrSafeMode}
	}
	if repl < 1 {
		return fmt.Errorf("hdfs: replication %d < 1", repl)
	}
	f := nn.ns.lookup(path)
	if f == nil {
		return &vfs.PathError{Op: "setrep", Path: path, Err: vfs.ErrNotExist}
	}
	if f.dir {
		return &vfs.PathError{Op: "setrep", Path: path, Err: vfs.ErrIsDir}
	}
	f.repl = repl
	for _, bid := range f.blocks {
		if bm, ok := nn.blocks[bid]; ok {
			bm.expected = repl
		}
	}
	return nn.journal(editRecord{Op: "setrep", Path: vfs.Clean(path), Repl: repl})
}

// Stat describes a file or directory.
func (nn *NameNode) Stat(path string) (vfs.FileInfo, error) {
	n := nn.ns.lookup(path)
	if n == nil {
		return vfs.FileInfo{}, &vfs.PathError{Op: "stat", Path: path, Err: vfs.ErrNotExist}
	}
	return vfs.FileInfo{
		Path:        vfs.Clean(path),
		Size:        n.size,
		IsDir:       n.dir,
		Replication: n.repl,
		BlockSize:   nn.cfg.BlockSize,
	}, nil
}

// List returns a directory's children.
func (nn *NameNode) List(path string) ([]vfs.FileInfo, error) {
	n := nn.ns.lookup(path)
	if n == nil {
		return nil, &vfs.PathError{Op: "list", Path: path, Err: vfs.ErrNotExist}
	}
	if !n.dir {
		return nil, &vfs.PathError{Op: "list", Path: path, Err: vfs.ErrNotDir}
	}
	p := vfs.Clean(path)
	var out []vfs.FileInfo
	for _, c := range n.list() {
		out = append(out, vfs.FileInfo{
			Path:        vfs.Join(p, c.name),
			Size:        c.size,
			IsDir:       c.dir,
			Replication: c.repl,
			BlockSize:   nn.cfg.BlockSize,
		})
	}
	return out, nil
}

// BlockLocation describes one block of a file and where its live replicas
// sit — what the JobTracker asks for when scheduling map tasks.
type BlockLocation struct {
	Block  BlockID
	Offset int64
	Length int64
	Nodes  []cluster.NodeID
	Hosts  []string
}

// BlockLocations lists the block layout of a file.
func (nn *NameNode) BlockLocations(path string) ([]BlockLocation, error) {
	f := nn.ns.lookup(path)
	if f == nil {
		return nil, &vfs.PathError{Op: "locations", Path: path, Err: vfs.ErrNotExist}
	}
	if f.dir {
		return nil, &vfs.PathError{Op: "locations", Path: path, Err: vfs.ErrIsDir}
	}
	var out []BlockLocation
	off := int64(0)
	for _, bid := range f.blocks {
		bm := nn.blocks[bid]
		loc := BlockLocation{Block: bid, Offset: off, Length: bm.len}
		for id := range bm.replicas {
			if info := nn.dns[id]; info != nil && info.alive && !bm.corrupt[id] {
				loc.Nodes = append(loc.Nodes, id)
			}
		}
		sortNodeIDs(loc.Nodes)
		for _, id := range loc.Nodes {
			loc.Hosts = append(loc.Hosts, nn.topo.Node(id).Hostname)
		}
		out = append(out, loc)
		off += bm.len
	}
	return out, nil
}

// markCorrupt records a checksum failure reported by a reader and
// invalidates the bad replica so re-replication can restore redundancy.
func (nn *NameNode) markCorrupt(id BlockID, node cluster.NodeID) {
	bm, ok := nn.blocks[id]
	if !ok {
		return
	}
	if !bm.corrupt[node] {
		bm.corrupt[node] = true
		nn.m.corruptionsDetected.Inc()
		nn.auditEv(history.EvAuditCorrupt, map[string]string{
			"block": fmt.Sprint(id),
			"node":  nn.hostname(node),
		})
	}
	delete(bm.replicas, node)
	if dn := nn.datanodes[node]; dn != nil {
		dn.deleteBlock(id)
	}
}

// --- replication monitor ---

func (nn *NameNode) replicationMonitor() {
	if nn.safeMode {
		return
	}
	ids := make([]BlockID, 0, len(nn.blocks))
	for id := range nn.blocks {
		ids = append(ids, id)
	}
	// Deterministic iteration order.
	slices.Sort(ids)
	now := nn.eng.Now()
	for _, id := range ids {
		bm := nn.blocks[id]
		live := nn.liveReplicas(bm)
		switch {
		case live == 0:
			// Missing: nothing to copy from; fsck will report it.
		case live < bm.expected && !nn.pendingRepl[id]:
			if nn.replRetryAt[id] > now {
				continue // last attempt failed; wait out the backoff
			}
			if nn.scheduleReplication(bm) {
				delete(nn.replRetryAt, id)
			} else {
				nn.replRetryAt[id] = now + nn.cfg.ReplRetryBackoff
			}
		case live > bm.expected:
			nn.dropExcessReplica(bm)
		}
	}
}

// scheduleReplication tries to start one re-replication copy for bm and
// reports whether a copy was scheduled; false sends the block into the
// monitor's retry backoff.
func (nn *NameNode) scheduleReplication(bm *blockMeta) bool {
	// Source: the lowest-id live, non-corrupt replica holder. The sorted
	// scan keeps the pick independent of map iteration order, so replays
	// of the same seed re-replicate from (and hence to) the same nodes.
	var src cluster.NodeID = -1
	holders := make([]cluster.NodeID, 0, len(bm.replicas))
	for id := range bm.replicas {
		holders = append(holders, id)
	}
	sortNodeIDs(holders)
	for _, id := range holders {
		if info := nn.dns[id]; info != nil && info.alive && !bm.corrupt[id] {
			src = id
			break
		}
	}
	if src < 0 {
		return false
	}
	exclude := map[cluster.NodeID]bool{}
	for id := range bm.replicas {
		exclude[id] = true
	}
	for id := range bm.corrupt {
		exclude[id] = true
	}
	targets := nn.chooseTargets(src, 1, exclude)
	if len(targets) == 0 {
		return false
	}
	dst := targets[0]
	srcDN, dstDN := nn.datanodes[src], nn.datanodes[dst]
	if srcDN == nil || dstDN == nil {
		return false
	}
	// The copy is a data-plane transfer: a partition between source and
	// target stalls re-replication until the network heals (or another
	// source/target pair becomes eligible on a later monitor pass).
	if !nn.net.Reachable(src, dst) {
		return false
	}
	data, readCost, err := srcDN.readBlock(bm.id)
	if err != nil {
		var ce *ChecksumError
		if errors.As(err, &ce) {
			nn.markCorrupt(bm.id, src)
		}
		return false
	}
	nn.pendingRepl[bm.id] = true
	nn.m.replicationsScheduled.Inc()
	nn.auditEv(history.EvAuditRereplicate, map[string]string{
		"block": fmt.Sprint(bm.id),
		"src":   nn.hostname(src),
		"dst":   nn.hostname(dst),
	})
	xfer := nn.cost.Transfer(nn.topo.Distance(src, dst), int64(len(data)))
	blockID := bm.id
	start := nn.eng.Now()
	// Re-replication is NameNode-initiated — no client request above it —
	// so each transfer roots its own trace; "node" blames the source disk.
	nn.obs.SpanCtx(nn.obs.NewTrace(time.Duration(start)), SpanRereplicate, time.Duration(start), time.Duration(start)+readCost+xfer, map[string]string{
		"block": fmt.Sprint(blockID),
		"src":   fmt.Sprint(src),
		"dst":   fmt.Sprint(dst),
		"node":  nn.hostname(src),
	})
	nn.eng.After(readCost+xfer, func() {
		delete(nn.pendingRepl, blockID)
		meta, ok := nn.blocks[blockID]
		if !ok {
			return // file deleted meanwhile
		}
		if !dstDN.alive {
			return
		}
		if _, err := dstDN.writeBlock(blockID, data); err != nil {
			return
		}
		meta.replicas[dst] = true
		nn.m.replicationsCompleted.Inc()
	})
	return true
}

func (nn *NameNode) dropExcessReplica(bm *blockMeta) {
	// Drop from the most-used live holder, deterministically.
	var victim cluster.NodeID = -1
	var victimUsed int64 = -1
	holders := make([]cluster.NodeID, 0, len(bm.replicas))
	for id := range bm.replicas {
		holders = append(holders, id)
	}
	sortNodeIDs(holders)
	for _, id := range holders {
		info := nn.dns[id]
		dn := nn.datanodes[id]
		if info == nil || !info.alive || dn == nil {
			continue
		}
		if dn.used > victimUsed {
			victim, victimUsed = id, dn.used
		}
	}
	if victim < 0 {
		return
	}
	delete(bm.replicas, victim)
	nn.m.excessReplicasDropped.Inc()
	nn.auditEv(history.EvAuditReplicaDrop, map[string]string{
		"block": fmt.Sprint(bm.id),
		"node":  nn.hostname(victim),
	})
	if dn := nn.datanodes[victim]; dn != nil {
		dn.deleteBlock(bm.id)
	}
}

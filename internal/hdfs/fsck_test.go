package hdfs_test

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"repro/internal/hdfs"
	"repro/internal/history"
	"repro/internal/vfs"
)

func TestFsckWithDetail(t *testing.T) {
	d := newDFS(t, 4, 1, hdfs.Config{BlockSize: 1024, Replication: 2})
	c := d.Client(0)
	if err := vfs.WriteFile(c, "/data/a", make([]byte, 2500)); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(c, "/data/b", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name        string
		path        string
		opts        hdfs.FsckOpts
		wantErr     bool
		wantDetails bool
		wantHosts   bool
	}{
		{name: "plain", path: "/data", opts: hdfs.FsckOpts{}},
		{name: "blocks", path: "/data", opts: hdfs.FsckOpts{Blocks: true}, wantDetails: true},
		{name: "locations implies blocks", path: "/data", opts: hdfs.FsckOpts{Locations: true}, wantDetails: true, wantHosts: true},
		{name: "single file", path: "/data/b", opts: hdfs.FsckOpts{Locations: true}, wantDetails: true, wantHosts: true},
		{name: "missing path", path: "/nope", opts: hdfs.FsckOpts{Blocks: true}, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := c.FsckWith(tc.path, tc.opts)
			if tc.wantErr {
				if !errors.Is(err, vfs.ErrNotExist) {
					t.Fatalf("err = %v, want not-exist", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Files) == 0 {
				t.Fatal("no files in report")
			}
			for _, f := range rep.Files {
				if !tc.wantDetails {
					if len(f.BlockDetails) != 0 {
						t.Fatalf("%s: unexpected block details", f.Path)
					}
					continue
				}
				if len(f.BlockDetails) != f.Blocks {
					t.Fatalf("%s: %d details for %d blocks", f.Path, len(f.BlockDetails), f.Blocks)
				}
				for _, bd := range f.BlockDetails {
					if tc.wantHosts {
						if len(bd.Hosts) != 2 {
							t.Fatalf("%s %v: hosts = %v, want 2", f.Path, bd.Block, bd.Hosts)
						}
						if !sort.StringsAreSorted(bd.Hosts) {
							t.Fatalf("%s %v: hosts not sorted: %v", f.Path, bd.Block, bd.Hosts)
						}
					} else if len(bd.Hosts) != 0 {
						t.Fatalf("%s %v: hosts without -locations: %v", f.Path, bd.Block, bd.Hosts)
					}
				}
			}
			out := rep.String()
			if tc.wantDetails && !strings.Contains(out, "0. blk_") {
				t.Fatalf("detail rows missing from render:\n%s", out)
			}
			if tc.wantHosts && !strings.Contains(out, "[node000") {
				t.Fatalf("host lists missing from render:\n%s", out)
			}
			if !tc.wantDetails && strings.Contains(out, "0. blk_") {
				t.Fatalf("detail rows rendered without -blocks:\n%s", out)
			}
		})
	}
}

func TestAuditLogRecordsClientOps(t *testing.T) {
	d := newDFS(t, 4, 1, hdfs.Config{BlockSize: 1024})
	c := d.Client(0)
	if err := vfs.WriteFile(c, "/a", make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := vfs.ReadFile(c, "/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open("/ghost"); err == nil {
		t.Fatal("want open error")
	}
	if err := c.Mkdir("/dir"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename("/a", "/dir/a"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetReplication("/dir/a", 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove("/dir/a", false); err != nil {
		t.Fatal(err)
	}

	byType := map[string][]history.Event{}
	for _, e := range d.AuditLog().Events() {
		byType[e.Type] = append(byType[e.Type], e)
	}
	for _, typ := range []string{
		history.EvAuditCreate, history.EvAuditOpen, history.EvAuditMkdir,
		history.EvAuditRename, history.EvAuditSetrep, history.EvAuditDelete,
		history.EvAuditBlockAllocate, history.EvAuditSafemodeExit,
	} {
		if len(byType[typ]) == 0 {
			t.Fatalf("no %s event in audit log", typ)
		}
	}
	create := byType[history.EvAuditCreate][0]
	if create.Attrs["user"] != hdfs.DefaultUser || create.Attrs["src"] != "/a" || create.Attrs["result"] != "ok" {
		t.Fatalf("create attrs: %v", create.Attrs)
	}
	var sawDenied bool
	for _, e := range byType[history.EvAuditOpen] {
		if e.Attrs["src"] == "/ghost" && e.Attrs["result"] == "error" {
			sawDenied = true
		}
	}
	if !sawDenied {
		t.Fatal("failed open not audited as result=error")
	}
	alloc := byType[history.EvAuditBlockAllocate][0]
	if alloc.Attrs["user"] != history.PrincipalNameNode || alloc.Attrs["src"] != "/a" || alloc.Attrs["targets"] == "" {
		t.Fatalf("block_allocate attrs: %v", alloc.Attrs)
	}
	// The audit counter tracks the log.
	if got := d.Obs.Counter(history.MetricAuditEvents).Value(); got != int64(d.AuditLog().Len()) {
		t.Fatalf("counter %d != log length %d", got, d.AuditLog().Len())
	}
}

package hdfs

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
)

// Decommissioning: the graceful way to remove a DataNode — the opposite
// of the crashes the paper's students inflicted. The NameNode drains the
// node by re-replicating its blocks elsewhere first; only when no block
// depends on the node alone is it safe to stop the daemon.

// StartDecommission marks a DataNode as draining: its replicas stop
// counting toward replication targets, so the replication monitor copies
// them elsewhere. Reads may still use the node while it drains.
func (nn *NameNode) StartDecommission(id cluster.NodeID) error {
	info := nn.dns[id]
	if info == nil {
		return fmt.Errorf("hdfs: node %d is not a registered datanode", id)
	}
	nn.decommissioning[id] = true
	return nil
}

// DecommissionComplete reports whether every block on the node has enough
// replicas elsewhere, i.e. the daemon can be stopped without data loss.
func (nn *NameNode) DecommissionComplete(id cluster.NodeID) bool {
	if !nn.decommissioning[id] {
		return false
	}
	for _, bm := range nn.blocks {
		if !bm.replicas[id] {
			continue
		}
		elsewhere := 0
		for rid := range bm.replicas {
			if rid == id || bm.corrupt[rid] {
				continue
			}
			if info := nn.dns[rid]; info != nil && info.alive {
				elsewhere++
			}
		}
		if elsewhere < min(bm.expected, nn.maxPlaceable(id)) {
			return false
		}
	}
	return true
}

// maxPlaceable returns how many replicas can exist excluding one node —
// bounded by the live node count, so decommissioning on tiny clusters
// completes when every other node has a copy.
func (nn *NameNode) maxPlaceable(excluding cluster.NodeID) int {
	n := 0
	for id, info := range nn.dns {
		if id != excluding && info.alive {
			n++
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Balancer: redistributes replicas from over-full DataNodes to under-full
// ones until node utilisations sit within threshold of the cluster mean —
// `hdfs balancer` at teaching scale. Returns the number of block moves.
func (d *MiniDFS) Balance(threshold float64) (int, error) {
	if threshold <= 0 {
		threshold = 0.10
	}
	moves := 0
	for pass := 0; pass < 1000; pass++ {
		var total int64
		live := 0
		for _, dn := range d.datanodes {
			if dn.Alive() {
				total += dn.used
				live++
			}
		}
		if live < 2 {
			return moves, nil
		}
		mean := float64(total) / float64(live)
		// Most-loaded live node above threshold, least-loaded below.
		var src, dst *DataNode
		for _, dn := range d.datanodes {
			if !dn.Alive() {
				continue
			}
			if float64(dn.used) > mean*(1+threshold) && (src == nil || dn.used > src.used) {
				src = dn
			}
			if float64(dn.used) < mean*(1-threshold) && (dst == nil || dn.used < dst.used) {
				dst = dn
			}
		}
		if src == nil || dst == nil {
			return moves, nil
		}
		if !d.moveOneBlock(src, dst) {
			return moves, nil
		}
		moves++
	}
	return moves, nil
}

// moveOneBlock relocates one replica from src to dst, preferring the
// largest block dst does not already hold. Returns false when no block is
// movable.
func (d *MiniDFS) moveOneBlock(src, dst *DataNode) bool {
	ids := src.BlockIDs()
	sort.Slice(ids, func(i, j int) bool {
		return int64(len(src.blocks[ids[i]].data)) > int64(len(src.blocks[ids[j]].data))
	})
	for _, id := range ids {
		bm, ok := d.NN.blocks[id]
		if !ok || bm.replicas[dst.id] || bm.corrupt[src.id] {
			continue
		}
		data, readCost, err := src.readBlock(id)
		if err != nil {
			continue
		}
		if _, err := dst.writeBlock(id, data); err != nil {
			continue
		}
		// Charge the move to the virtual clock.
		d.Engine.Advance(readCost + d.Cost.Transfer(d.Topology.Distance(src.id, dst.id), int64(len(data))))
		bm.replicas[dst.id] = true
		delete(bm.replicas, src.id)
		src.deleteBlock(id)
		return true
	}
	return false
}

// UtilizationSpread returns (maxUsed-minUsed)/mean across live DataNodes,
// the balancer's objective metric.
func (d *MiniDFS) UtilizationSpread() float64 {
	var total, minU, maxU int64
	minU = -1
	live := 0
	for _, dn := range d.datanodes {
		if !dn.Alive() {
			continue
		}
		live++
		total += dn.used
		if minU < 0 || dn.used < minU {
			minU = dn.used
		}
		if dn.used > maxU {
			maxU = dn.used
		}
	}
	if live == 0 || total == 0 {
		return 0
	}
	mean := float64(total) / float64(live)
	return float64(maxU-minU) / mean
}

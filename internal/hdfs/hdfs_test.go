package hdfs_test

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/vfs/vfstest"
)

func newDFS(t *testing.T, nodes, racks int, cfg hdfs.Config) *hdfs.MiniDFS {
	t.Helper()
	eng := sim.NewEngine()
	topo := cluster.NewTopology(cluster.PaperNodeConfig(nodes, racks))
	d, err := hdfs.NewMiniDFS(eng, topo, hdfs.Options{Config: cfg, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestClientConformance(t *testing.T) {
	vfstest.Run(t, "hdfs", func(t *testing.T) vfs.FileSystem {
		return newDFS(t, 4, 1, hdfs.Config{}).Client(0)
	})
}

func TestWriteSplitsIntoBlocks(t *testing.T) {
	d := newDFS(t, 4, 1, hdfs.Config{BlockSize: 1024, Replication: 2})
	c := d.Client(0)
	data := bytes.Repeat([]byte("x"), 2500)
	if err := vfs.WriteFile(c, "/f", data); err != nil {
		t.Fatal(err)
	}
	locs, err := c.BlockLocations("/f")
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 3 {
		t.Fatalf("blocks = %d, want 3", len(locs))
	}
	if locs[0].Length != 1024 || locs[1].Length != 1024 || locs[2].Length != 452 {
		t.Fatalf("block lengths: %d %d %d", locs[0].Length, locs[1].Length, locs[2].Length)
	}
	for i, loc := range locs {
		if len(loc.Nodes) != 2 {
			t.Fatalf("block %d has %d replicas, want 2", i, len(loc.Nodes))
		}
		if loc.Nodes[0] == loc.Nodes[1] {
			t.Fatalf("block %d replicas on same node", i)
		}
	}
	got, err := vfs.ReadFile(c, "/f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read-back mismatch: %d bytes err=%v", len(got), err)
	}
}

func TestWriterLocalPlacement(t *testing.T) {
	d := newDFS(t, 8, 2, hdfs.Config{BlockSize: 512, Replication: 3})
	c := d.Client(3)
	if err := vfs.WriteFile(c, "/f", make([]byte, 2000)); err != nil {
		t.Fatal(err)
	}
	locs, _ := c.BlockLocations("/f")
	for i, loc := range locs {
		found := false
		for _, n := range loc.Nodes {
			if n == 3 {
				found = true
			}
		}
		if !found {
			t.Fatalf("block %d has no replica on writer node: %v", i, loc.Nodes)
		}
		// Default policy: replicas must span at least two racks when
		// the cluster has them.
		racks := map[int]bool{}
		for _, n := range loc.Nodes {
			racks[d.Topology.RackOf(n)] = true
		}
		if len(racks) < 2 {
			t.Fatalf("block %d replicas confined to one rack: %v", i, loc.Nodes)
		}
	}
}

func TestGatewayWriteSpreadsReplicas(t *testing.T) {
	d := newDFS(t, 4, 1, hdfs.Config{Replication: 3})
	c := d.Client(hdfs.GatewayNode)
	if err := vfs.WriteFile(c, "/f", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	locs, _ := c.BlockLocations("/f")
	if len(locs) != 1 || len(locs[0].Nodes) != 3 {
		t.Fatalf("locations: %+v", locs)
	}
}

func TestLocalReadIsLocal(t *testing.T) {
	d := newDFS(t, 4, 1, hdfs.Config{Replication: 2})
	w := d.Client(1)
	if err := vfs.WriteFile(w, "/f", make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	r := d.Client(1)
	if _, err := vfs.ReadFile(r, "/f"); err != nil {
		t.Fatal(err)
	}
	if r.Meter.BytesReadLocal != 4096 || r.Meter.BytesReadRemote != 0 {
		t.Fatalf("meter: %+v, want all local", r.Meter)
	}
	// A client with no replica on its node reads over the network.
	far := d.Client(3)
	locs, _ := far.BlockLocations("/f")
	for _, n := range locs[0].Nodes {
		if n == 3 {
			t.Skip("replica landed on node 3 by chance")
		}
	}
	if _, err := vfs.ReadFile(far, "/f"); err != nil {
		t.Fatal(err)
	}
	if far.Meter.BytesReadLocal != 0 || far.Meter.BytesRead() != 4096 {
		t.Fatalf("far meter: %+v", far.Meter)
	}
}

func TestReadRangeMatchesFullRead(t *testing.T) {
	d := newDFS(t, 4, 1, hdfs.Config{BlockSize: 700})
	c := d.Client(0)
	rng := rand.New(rand.NewSource(5))
	data := make([]byte, 5000)
	rng.Read(data)
	if err := vfs.WriteFile(c, "/f", data); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		off := rng.Int63n(5000)
		length := rng.Int63n(2000)
		got, err := c.ReadRange("/f", off, length)
		if err != nil {
			t.Fatal(err)
		}
		end := off + length
		if end > 5000 {
			end = 5000
		}
		if !bytes.Equal(got, data[off:end]) {
			t.Fatalf("range [%d,%d) mismatch", off, end)
		}
	}
}

func TestCorruptionDetectedAndRepaired(t *testing.T) {
	d := newDFS(t, 4, 1, hdfs.Config{Replication: 3, ReplMonitorInterval: time.Second})
	c := d.Client(0)
	data := bytes.Repeat([]byte("hdfs"), 1000)
	if err := vfs.WriteFile(c, "/f", data); err != nil {
		t.Fatal(err)
	}
	locs, _ := c.BlockLocations("/f")
	victim := locs[0].Nodes[0]
	if !d.DataNode(victim).CorruptBlock(locs[0].Block) {
		t.Fatal("corrupt failed")
	}
	// Read from the victim's own node: client must fall back to another
	// replica and report the corruption.
	rc := d.Client(victim)
	got, err := vfs.ReadFile(rc, "/f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read with corrupt local replica: err=%v", err)
	}
	if d.NN.CorruptionsDetected() != 1 {
		t.Fatalf("corruptions detected = %d", d.NN.CorruptionsDetected())
	}
	// Replication monitor restores the third replica.
	d.Engine.Advance(time.Minute)
	locs, _ = c.BlockLocations("/f")
	if len(locs[0].Nodes) != 3 {
		t.Fatalf("replicas after repair = %d, want 3", len(locs[0].Nodes))
	}
	rep, _ := d.Fsck()
	if !rep.Healthy() || rep.UnderReplicated != 0 {
		t.Fatalf("fsck after repair: %s", rep)
	}
}

func TestAllReplicasCorruptFailsRead(t *testing.T) {
	d := newDFS(t, 3, 1, hdfs.Config{Replication: 2})
	c := d.Client(0)
	if err := vfs.WriteFile(c, "/f", []byte("doomed data here")); err != nil {
		t.Fatal(err)
	}
	locs, _ := c.BlockLocations("/f")
	for _, n := range locs[0].Nodes {
		d.DataNode(n).CorruptBlock(locs[0].Block)
	}
	if _, err := vfs.ReadFile(c, "/f"); !errors.Is(err, vfs.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestDataNodeDeathTriggersReReplication(t *testing.T) {
	cfg := hdfs.Config{
		Replication:         3,
		HeartbeatInterval:   time.Second,
		HeartbeatExpiry:     5 * time.Second,
		ReplMonitorInterval: time.Second,
	}
	d := newDFS(t, 6, 2, cfg)
	c := d.Client(0)
	data := bytes.Repeat([]byte("block"), 2000)
	if err := vfs.WriteFile(c, "/f", data); err != nil {
		t.Fatal(err)
	}
	locs, _ := c.BlockLocations("/f")
	victim := locs[0].Nodes[0]
	d.DataNode(victim).Kill()

	// Before expiry the NameNode still believes in the dead replicas.
	d.Engine.Advance(2 * time.Second)
	// After expiry + monitor pass + copy time, redundancy is restored.
	d.Engine.Advance(30 * time.Second)
	rep, err := d.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if rep.UnderReplicated != 0 || !rep.Healthy() {
		t.Fatalf("fsck after re-replication:\n%s", rep)
	}
	locs, _ = c.BlockLocations("/f")
	for _, loc := range locs {
		if len(loc.Nodes) != 3 {
			t.Fatalf("block %v has %d live replicas", loc.Block, len(loc.Nodes))
		}
		for _, n := range loc.Nodes {
			if n == victim {
				t.Fatalf("dead node still listed for %v", loc.Block)
			}
		}
	}
	if got, err := vfs.ReadFile(c, "/f"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("data lost after re-replication: err=%v", err)
	}
}

func TestAllHoldersDeadMeansMissing(t *testing.T) {
	cfg := hdfs.Config{
		Replication:       2,
		HeartbeatInterval: time.Second,
		HeartbeatExpiry:   3 * time.Second,
	}
	d := newDFS(t, 3, 1, cfg)
	c := d.Client(hdfs.GatewayNode)
	if err := vfs.WriteFile(c, "/f", []byte("precious")); err != nil {
		t.Fatal(err)
	}
	locs, _ := c.BlockLocations("/f")
	for _, n := range locs[0].Nodes {
		d.DataNode(n).WipeAndKill()
	}
	d.Engine.Advance(10 * time.Second)
	rep, _ := d.Fsck()
	if rep.Healthy() || rep.MissingBlocks != 1 {
		t.Fatalf("fsck should report missing block:\n%s", rep)
	}
	if rep.Status() != "CORRUPT" {
		t.Fatalf("status = %s", rep.Status())
	}
}

func TestSetReplicationConverges(t *testing.T) {
	cfg := hdfs.Config{Replication: 1, ReplMonitorInterval: time.Second}
	d := newDFS(t, 5, 1, cfg)
	c := d.Client(0)
	if err := vfs.WriteFile(c, "/f", make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := d.NN.SetReplication("/f", 4); err != nil {
		t.Fatal(err)
	}
	d.Engine.Advance(time.Minute)
	locs, _ := c.BlockLocations("/f")
	if len(locs[0].Nodes) != 4 {
		t.Fatalf("replicas = %d, want 4", len(locs[0].Nodes))
	}
	// And back down: excess replicas are invalidated.
	if err := d.NN.SetReplication("/f", 2); err != nil {
		t.Fatal(err)
	}
	d.Engine.Advance(time.Minute)
	locs, _ = c.BlockLocations("/f")
	if len(locs[0].Nodes) != 2 {
		t.Fatalf("replicas after setrep 2 = %d", len(locs[0].Nodes))
	}
}

func TestDeleteFreesDataNodeSpace(t *testing.T) {
	d := newDFS(t, 3, 1, hdfs.Config{Replication: 3})
	c := d.Client(0)
	if err := vfs.WriteFile(c, "/big", make([]byte, 10000)); err != nil {
		t.Fatal(err)
	}
	var before int64
	for _, dn := range d.DataNodes() {
		before += dn.UsedBytes()
	}
	if before != 30000 {
		t.Fatalf("bytes before delete = %d, want 30000", before)
	}
	if err := c.Remove("/big", false); err != nil {
		t.Fatal(err)
	}
	var after int64
	for _, dn := range d.DataNodes() {
		after += dn.UsedBytes()
	}
	if after != 0 {
		t.Fatalf("bytes after delete = %d", after)
	}
}

func TestNameNodeRestartSafeMode(t *testing.T) {
	cfg := hdfs.Config{Replication: 2, HeartbeatInterval: time.Second}
	d := newDFS(t, 4, 1, cfg)
	c := d.Client(0)
	if err := vfs.WriteFile(c, "/f", make([]byte, 500)); err != nil {
		t.Fatal(err)
	}
	d.NN.Restart()
	if !d.NN.InSafeMode() {
		t.Fatal("restart should enter safe mode")
	}
	// Mutations are refused in safe mode.
	if err := c.Mkdir("/newdir"); !errors.Is(err, hdfs.ErrSafeMode) {
		t.Fatalf("want ErrSafeMode, got %v", err)
	}
	if _, err := c.Create("/g"); !errors.Is(err, hdfs.ErrSafeMode) {
		t.Fatalf("create in safe mode: %v", err)
	}
	// Heartbeats trigger re-registration and block reports; safe mode exits.
	d.Engine.Advance(5 * time.Second)
	if d.NN.InSafeMode() {
		t.Fatal("safe mode did not exit after block reports")
	}
	if err := c.Mkdir("/newdir"); err != nil {
		t.Fatal(err)
	}
	// Data survived the restart.
	if data, err := vfs.ReadFile(c, "/f"); err != nil || len(data) != 500 {
		t.Fatalf("data after restart: %d bytes err=%v", len(data), err)
	}
}

func TestDataNodeRestartIntegrityScanTakesTime(t *testing.T) {
	// The paper: "it typically took at least fifteen minutes for all the
	// Data Nodes to check for data integrity and report back". Verify the
	// scan time scales with stored bytes: a DataNode holding ~100 GB at
	// 120 MB/s needs ~14 minutes before it reports back.
	cfg := hdfs.Config{Replication: 1, BlockSize: 64 << 20, HeartbeatInterval: time.Second, HeartbeatExpiry: 5 * time.Second}
	eng := sim.NewEngine()
	topo := cluster.NewTopology(cluster.PaperNodeConfig(2, 1))
	d, err := hdfs.NewMiniDFS(eng, topo, hdfs.Options{Config: cfg, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Fake bulk data cheaply: write a small block, then scale expectation
	// analytically via the DataNode's own cost model by writing many
	// blocks is too slow — instead verify the ordering property on
	// moderate data.
	c := d.Client(0)
	if err := vfs.WriteFile(c, "/bulk", make([]byte, 8<<20)); err != nil {
		t.Fatal(err)
	}
	dn := d.DataNode(0)
	if dn.UsedBytes() == 0 {
		t.Skip("no replica on node 0")
	}
	dn.Kill()
	eng.Advance(10 * time.Second)
	restartAt := eng.Now()
	dn.Start()
	// Immediately after start the node has not yet re-registered (scan in
	// progress): its replicas are still unlisted.
	eng.Advance(time.Millisecond)
	rep, _ := d.Fsck()
	if rep.Healthy() {
		t.Fatal("node should not have reported back yet")
	}
	eng.Advance(time.Minute)
	rep, _ = d.Fsck()
	if !rep.Healthy() {
		t.Fatalf("node never reported back:\n%s", rep)
	}
	if d.NN.SafeModeExitedAt() <= restartAt {
		// Safe mode was already off; fine — the assertion above covers
		// the scan delay.
		t.Log("safe mode was not re-entered (expected: only NN restarts re-enter)")
	}
}

func TestWritePipelineShrinksOnFailure(t *testing.T) {
	d := newDFS(t, 4, 1, hdfs.Config{Replication: 3, ReplMonitorInterval: time.Second})
	// Make one DataNode reject the next write: the pipeline must shrink
	// and the file still lands with the remaining replicas; the monitor
	// then restores full replication.
	d.DataNode(1).FailNextWrites = 1
	c := d.Client(1) // writer-local target is the failing node
	if err := vfs.WriteFile(c, "/f", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	locs, _ := c.BlockLocations("/f")
	if len(locs[0].Nodes) != 2 {
		t.Fatalf("replicas after shrink = %d, want 2", len(locs[0].Nodes))
	}
	d.Engine.Advance(30 * time.Second)
	locs, _ = c.BlockLocations("/f")
	if len(locs[0].Nodes) != 3 {
		t.Fatalf("monitor did not restore replication: %d", len(locs[0].Nodes))
	}
}

func TestNoDataNodesFailsWrite(t *testing.T) {
	d := newDFS(t, 2, 1, hdfs.Config{HeartbeatInterval: time.Second, HeartbeatExpiry: 2 * time.Second})
	for _, dn := range d.DataNodes() {
		dn.Kill()
	}
	d.Engine.Advance(10 * time.Second)
	c := d.Client(hdfs.GatewayNode)
	err := vfs.WriteFile(c, "/f", []byte("x"))
	if err == nil {
		t.Fatal("write with no datanodes succeeded")
	}
}

func TestStagingCostScalesWithSize(t *testing.T) {
	d := newDFS(t, 8, 1, hdfs.Config{BlockSize: 1 << 20})
	small := d.Client(hdfs.GatewayNode)
	if err := vfs.WriteFile(small, "/small", make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	big := d.Client(hdfs.GatewayNode)
	if err := vfs.WriteFile(big, "/big", make([]byte, 16<<20)); err != nil {
		t.Fatal(err)
	}
	if big.Meter.WriteTime < 10*small.Meter.WriteTime {
		t.Fatalf("16x data should cost ≈16x time: small=%v big=%v",
			small.Meter.WriteTime, big.Meter.WriteTime)
	}
}

func TestAutoAdvanceMovesClock(t *testing.T) {
	d := newDFS(t, 4, 1, hdfs.Config{})
	c := d.Client(hdfs.GatewayNode)
	c.AutoAdvance = true
	before := d.Engine.Now()
	if err := vfs.WriteFile(c, "/f", make([]byte, 4<<20)); err != nil {
		t.Fatal(err)
	}
	if d.Engine.Now() <= before {
		t.Fatal("AutoAdvance did not move the virtual clock")
	}
}

func TestFsckReportFormat(t *testing.T) {
	d := newDFS(t, 4, 1, hdfs.Config{Replication: 2})
	c := d.Client(0)
	if err := vfs.WriteFile(c, "/data/f", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	rep, err := d.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"Total blocks:\t1", "is HEALTHY", "live data-nodes:\t4"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Fatalf("fsck output missing %q:\n%s", want, s)
		}
	}
	if rep.AvgReplicationFactor != 2 {
		t.Fatalf("avg replication = %.2f", rep.AvgReplicationFactor)
	}
}

func TestBlockReportDropsStaleReplicas(t *testing.T) {
	// A DataNode that lost a block (wiped) stops being listed after its
	// next block report, even without dying.
	cfg := hdfs.Config{Replication: 2, BlockReportInterval: 5 * time.Second, ReplMonitorInterval: 100 * time.Hour}
	d := newDFS(t, 3, 1, cfg)
	c := d.Client(0)
	if err := vfs.WriteFile(c, "/f", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	locs, _ := c.BlockLocations("/f")
	holder := locs[0].Nodes[0]
	// Simulate local deletion behind the NameNode's back.
	dnBlocks := d.DataNode(holder).BlockIDs()
	for _, b := range dnBlocks {
		d.DataNode(holder).CorruptBlock(b) // make it unreadable too
	}
	d.Engine.Advance(6 * time.Second)
	// Replica still listed (corruption is only found at read).
	locs, _ = c.BlockLocations("/f")
	if len(locs[0].Nodes) != 2 {
		t.Skip("block report semantics: corrupt-but-present replicas remain listed")
	}
}

func TestDeterministicPlacement(t *testing.T) {
	run := func() []string {
		eng := sim.NewEngine()
		topo := cluster.NewTopology(cluster.PaperNodeConfig(8, 2))
		d, err := hdfs.NewMiniDFS(eng, topo, hdfs.Options{Seed: 7, Config: hdfs.Config{BlockSize: 256}})
		if err != nil {
			t.Fatal(err)
		}
		c := d.Client(0)
		if err := vfs.WriteFile(c, "/f", make([]byte, 2048)); err != nil {
			t.Fatal(err)
		}
		locs, _ := c.BlockLocations("/f")
		var out []string
		for _, l := range locs {
			out = append(out, l.Hosts...)
		}
		return out
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("placement lists differ in length: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("placement not deterministic: %v vs %v", a, b)
		}
	}
}

func TestStatusPage(t *testing.T) {
	d := newDFS(t, 4, 1, hdfs.Config{Replication: 2, HeartbeatInterval: time.Second, HeartbeatExpiry: 3 * time.Second})
	c := d.Client(0)
	if err := vfs.WriteFile(c, "/f", make([]byte, 5000)); err != nil {
		t.Fatal(err)
	}
	page := d.StatusPage()
	for _, want := range []string{"Live nodes: 4", "Dead nodes: 0", "Blocks: 1", "node000"} {
		if !strings.Contains(page, want) {
			t.Fatalf("status page missing %q:\n%s", want, page)
		}
	}
	d.DataNode(3).Kill()
	d.Engine.Advance(10 * time.Second)
	page = d.StatusPage()
	if !strings.Contains(page, "Dead nodes: 1") {
		t.Fatalf("dead node not shown:\n%s", page)
	}
}

func TestRandomPlacementIgnoresWriter(t *testing.T) {
	// With random placement, the writer's node gets a replica only by
	// chance; over many blocks the writer-local fraction must be well
	// below the ~100% of the default policy.
	count := func(random bool) int {
		d := newDFS(t, 8, 2, hdfs.Config{BlockSize: 256, Replication: 2, RandomPlacement: random})
		c := d.Client(2)
		if err := vfs.WriteFile(c, "/f", make([]byte, 256*40)); err != nil {
			t.Fatal(err)
		}
		locs, _ := c.BlockLocations("/f")
		writerLocal := 0
		for _, loc := range locs {
			for _, n := range loc.Nodes {
				if n == 2 {
					writerLocal++
				}
			}
		}
		return writerLocal
	}
	def := count(false)
	rnd := count(true)
	if def != 40 {
		t.Fatalf("default policy writer-local blocks = %d/40", def)
	}
	if rnd >= def {
		t.Fatalf("random placement writer-local blocks = %d, want < %d", rnd, def)
	}
}

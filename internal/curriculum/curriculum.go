// Package curriculum reproduces the paper's Table V: the mapping from the
// Hadoop MapReduce module's lectures and assignments to ACM/IEEE CS2013
// Parallel & Distributed Computing knowledge units and learning outcomes.
// Each outcome is additionally linked to the module of this reproduction
// that demonstrates it, making the table verifiable against the codebase.
package curriculum

import (
	"fmt"
	"strings"
)

// Outcome is one row of Table V.
type Outcome struct {
	Level         string // Familiarity, Usage, Assessment
	KnowledgeArea string
	KnowledgeUnit string
	Text          string
	// DemonstratedBy names the package/experiment in this reproduction
	// that exercises the outcome.
	DemonstratedBy string
}

// TableV is the published learning-outcome mapping, annotated with the
// reproduction artifacts.
var TableV = []Outcome{
	{
		Level:         "Familiarity",
		KnowledgeArea: "Parallel & Distributed Computing",
		KnowledgeUnit: "Parallelism Fundamentals",
		Text: "Distinguishing using computational resources for a faster answer " +
			"from managing efficient access to a shared resource",
		DemonstratedBy: "experiment FIG1 (internal/cluster: HPC vs data-local layouts)",
	},
	{
		Level:          "Familiarity",
		KnowledgeArea:  "Parallel & Distributed Computing",
		KnowledgeUnit:  "Parallel Architecture",
		Text:           "Describe the key performance challenges in different memory and distributed system topologies",
		DemonstratedBy: "internal/cluster cost model; experiment E9 (scalability sweep)",
	},
	{
		Level:          "Usage",
		KnowledgeArea:  "Parallel & Distributed Computing",
		KnowledgeUnit:  "Parallel Performance",
		Text:           "Explain performance impacts of data locality",
		DemonstratedBy: "internal/mrcluster locality scheduler; experiments FIG1, E9",
	},
	{
		Level:         "Familiarity",
		KnowledgeArea: "Information Management",
		KnowledgeUnit: "Distributed Databases",
		Text: "Explain the techniques used for data fragmentation, replication, and allocation " +
			"during the distributed database design process",
		DemonstratedBy: "internal/hdfs block placement & replication monitor; experiment E8 (fsck)",
	},
	{
		Level:          "Assessment",
		KnowledgeArea:  "Parallel & Distributed Computing",
		KnowledgeUnit:  "Parallel Algorithms, Analysis, and Programming",
		Text:           "Decompose a problem via map and reduce operations",
		DemonstratedBy: "internal/jobs (all course assignments); examples/",
	},
	{
		Level:          "Usage",
		KnowledgeArea:  "Parallel & Distributed Computing",
		KnowledgeUnit:  "Parallel Performance",
		Text:           "Observe how data distribution/layout can affect an algorithm's communication costs",
		DemonstratedBy: "experiments E2 (combiner), E3 (airline variants), E4 (side data)",
	},
}

// Render prints Table V.
func Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table V: PDC Learning Outcomes through Hadoop MapReduce lectures and assignments\n")
	for _, o := range TableV {
		fmt.Fprintf(&b, "%-12s | %-33s | %s\n", o.Level, o.KnowledgeArea, o.KnowledgeUnit)
		fmt.Fprintf(&b, "             outcome: %s\n", o.Text)
		fmt.Fprintf(&b, "             reproduced by: %s\n", o.DemonstratedBy)
	}
	return b.String()
}

// Levels returns the distinct outcome levels in table order.
func Levels() []string {
	seen := map[string]bool{}
	var out []string
	for _, o := range TableV {
		if !seen[o.Level] {
			seen[o.Level] = true
			out = append(out, o.Level)
		}
	}
	return out
}

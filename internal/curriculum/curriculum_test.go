package curriculum

import (
	"strings"
	"testing"
)

func TestTableVComplete(t *testing.T) {
	if len(TableV) != 6 {
		t.Fatalf("Table V has %d rows, paper has 6", len(TableV))
	}
	for _, o := range TableV {
		if o.Level == "" || o.KnowledgeArea == "" || o.KnowledgeUnit == "" || o.Text == "" {
			t.Fatalf("incomplete row: %+v", o)
		}
		if o.DemonstratedBy == "" {
			t.Fatalf("row %q not linked to a reproduction artifact", o.KnowledgeUnit)
		}
	}
}

func TestLevelsMatchPaper(t *testing.T) {
	levels := Levels()
	want := map[string]bool{"Familiarity": true, "Usage": true, "Assessment": true}
	if len(levels) != len(want) {
		t.Fatalf("levels = %v", levels)
	}
	for _, l := range levels {
		if !want[l] {
			t.Fatalf("unexpected level %q", l)
		}
	}
}

func TestRender(t *testing.T) {
	s := Render()
	for _, want := range []string{
		"Distributed Databases",
		"map and reduce operations",
		"data locality",
		"internal/hdfs",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("render missing %q:\n%s", want, s)
		}
	}
}

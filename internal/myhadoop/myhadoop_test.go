package myhadoop_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/jobs"
	"repro/internal/myhadoop"
	"repro/internal/serial"
	"repro/internal/sim"
	"repro/internal/vfs"
)

func newPBS(t *testing.T, nodes int, cleanup time.Duration) (*sim.Engine, *myhadoop.PBS) {
	t.Helper()
	eng := sim.NewEngine()
	topo := cluster.NewTopology(cluster.PaperNodeConfig(nodes, 1))
	return eng, myhadoop.NewPBS(eng, topo, cleanup)
}

func TestReserveProvisionRunRelease(t *testing.T) {
	eng, pbs := newPBS(t, 16, 15*time.Minute)
	res, err := pbs.Submit("alice", 8, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != myhadoop.ResRunning || len(res.Allocated) != 8 {
		t.Fatalf("reservation: state=%v nodes=%v", res.State, res.Allocated)
	}
	run, err := myhadoop.Provision(pbs, res, myhadoop.ProvisionOptions{
		HDFS: hdfs.Config{BlockSize: 16 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The private cluster works end to end.
	client := run.DFS.Client(hdfs.GatewayNode)
	if err := vfs.WriteFile(client, "/in/data.txt", []byte("alpha beta alpha\n")); err != nil {
		t.Fatal(err)
	}
	rep, err := run.MR.Run(jobs.WordCount("/in", "/out", false))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Fatal("job failed")
	}
	out, err := serial.ReadOutput(client, "/out")
	if err != nil || !strings.Contains(out, "alpha\t2") {
		t.Fatalf("output %q err=%v", out, err)
	}
	// Clean shutdown releases ports and nodes.
	run.StopDaemons()
	pbs.Release(res)
	if len(pbs.FreeNodes()) != 16 {
		t.Fatalf("free nodes after release = %d", len(pbs.FreeNodes()))
	}
	for _, n := range res.Allocated {
		if len(pbs.Daemons(n)) != 0 {
			t.Fatalf("daemons remain on node %d", n)
		}
	}
	_ = eng
}

func TestGhostDaemonsBlockNextStudent(t *testing.T) {
	_, pbs := newPBS(t, 8, time.Hour)
	// Alice provisions and exits without stopping Hadoop.
	resA, _ := pbs.Submit("alice", 8, 2*time.Hour)
	runA, err := myhadoop.Provision(pbs, resA, myhadoop.ProvisionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	runA.ExitWithoutStopping()
	pbs.Release(resA)

	// Bob gets the same nodes immediately (before the cleanup script).
	resB, _ := pbs.Submit("bob", 8, 2*time.Hour)
	if resB.State != myhadoop.ResRunning {
		t.Fatal("bob did not get nodes")
	}
	_, err = myhadoop.Provision(pbs, resB, myhadoop.ProvisionOptions{})
	var ghost *myhadoop.GhostDaemonError
	if !errors.As(err, &ghost) {
		t.Fatalf("want GhostDaemonError, got %v", err)
	}
	if ghost.Owner != "alice" {
		t.Fatalf("ghost owner = %s", ghost.Owner)
	}
}

func TestOwnGhostDaemonsAreKillable(t *testing.T) {
	_, pbs := newPBS(t, 8, time.Hour)
	resA, _ := pbs.Submit("alice", 8, 2*time.Hour)
	runA, err := myhadoop.Provision(pbs, resA, myhadoop.ProvisionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	runA.ExitWithoutStopping()
	pbs.Release(resA)
	// Alice comes back: her own orphans are terminated individually.
	resA2, _ := pbs.Submit("alice", 8, 2*time.Hour)
	if _, err := myhadoop.Provision(pbs, resA2, myhadoop.ProvisionOptions{}); err != nil {
		t.Fatalf("alice blocked by her own ghosts: %v", err)
	}
}

func TestCleanupScriptFreesPorts(t *testing.T) {
	eng, pbs := newPBS(t, 8, 15*time.Minute)
	resA, _ := pbs.Submit("alice", 8, 2*time.Hour)
	runA, err := myhadoop.Provision(pbs, resA, myhadoop.ProvisionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	runA.ExitWithoutStopping()
	pbs.Release(resA)
	// "Otherwise, the student would have to wait 15 minutes for the
	// scheduler to clean up these daemons."
	eng.Advance(16 * time.Minute)
	if pbs.OrphansKilled == 0 {
		t.Fatal("cleanup script killed nothing")
	}
	resB, _ := pbs.Submit("bob", 8, 2*time.Hour)
	if _, err := myhadoop.Provision(pbs, resB, myhadoop.ProvisionOptions{}); err != nil {
		t.Fatalf("bob still blocked after cleanup: %v", err)
	}
}

func TestWalltimeEvictionQueuesNext(t *testing.T) {
	eng, pbs := newPBS(t, 8, time.Hour)
	resA, _ := pbs.Submit("alice", 8, 30*time.Minute)
	if resA.State != myhadoop.ResRunning {
		t.Fatal("alice not running")
	}
	resB, _ := pbs.Submit("bob", 8, time.Hour)
	if resB.State != myhadoop.ResQueued {
		t.Fatal("bob should queue while alice holds all nodes")
	}
	eng.Advance(31 * time.Minute)
	if resA.State != myhadoop.ResDone {
		t.Fatal("alice not evicted at walltime")
	}
	if resB.State != myhadoop.ResRunning {
		t.Fatal("bob did not start after eviction")
	}
}

func TestOversizedReservationRejected(t *testing.T) {
	_, pbs := newPBS(t, 4, time.Hour)
	if _, err := pbs.Submit("greedy", 5, time.Hour); err == nil {
		t.Fatal("reservation larger than the machine accepted")
	}
}

func TestSubmissionScriptRender(t *testing.T) {
	s := myhadoop.DefaultScript("carol", 8, 2*time.Hour)
	text := s.Render()
	for _, want := range []string{
		"#PBS -l select=8:ncpus=16:mem=64gb",
		"walltime=02:00:00",
		"myhadoop-configure.sh",
		"hadoop fsck /",
		"hadoop fs -copyToLocal",
		"stop-all.sh",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("script missing %q:\n%s", want, text)
		}
	}
}

func TestConcurrentStudentClusters(t *testing.T) {
	// Two students provision disjoint clusters simultaneously; each sees
	// only their own files.
	_, pbs := newPBS(t, 16, time.Hour)
	resA, _ := pbs.Submit("alice", 8, time.Hour)
	resB, _ := pbs.Submit("bob", 8, time.Hour)
	runA, err := myhadoop.Provision(pbs, resA, myhadoop.ProvisionOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	runB, err := myhadoop.Provision(pbs, resB, myhadoop.ProvisionOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ca := runA.DFS.Client(hdfs.GatewayNode)
	cb := runB.DFS.Client(hdfs.GatewayNode)
	if err := vfs.WriteFile(ca, "/private.txt", []byte("alice")); err != nil {
		t.Fatal(err)
	}
	if vfs.Exists(cb, "/private.txt") {
		t.Fatal("bob can see alice's file: clusters are not isolated")
	}
}

func TestInteractiveScriptInsertsSleep(t *testing.T) {
	s := myhadoop.DefaultScript("dana", 4, time.Hour).Interactive(30 * time.Minute)
	text := s.Render()
	sleepAt := strings.Index(text, "sleep 1800")
	stopAt := strings.Index(text, "stop-all.sh")
	if sleepAt < 0 {
		t.Fatalf("no sleep inserted:\n%s", text)
	}
	if stopAt < 0 || sleepAt > stopAt {
		t.Fatalf("sleep must precede stop-all.sh:\n%s", text)
	}
	// Original script untouched (value semantics).
	if strings.Contains(myhadoop.DefaultScript("dana", 4, time.Hour).Render(), "sleep") {
		t.Fatal("DefaultScript mutated")
	}
}

func TestPreemptionOrphansDaemons(t *testing.T) {
	eng, pbs := newPBS(t, 8, 15*time.Minute)
	res, _ := pbs.Submit("earlybird", 4, 2*time.Hour)
	if _, err := myhadoop.Provision(pbs, res, myhadoop.ProvisionOptions{}); err != nil {
		t.Fatal(err)
	}
	eng.Advance(time.Minute)
	res2, _ := pbs.Submit("latecomer", 4, 2*time.Hour)
	run2, err := myhadoop.Provision(pbs, res2, myhadoop.ProvisionOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	_ = run2
	// A research job needs 6 nodes: the newest reservation is evicted
	// first, then the older one.
	evicted := pbs.Preempt(6)
	if len(evicted) != 2 {
		t.Fatalf("evicted %d reservations, want 2", len(evicted))
	}
	if evicted[0].User != "latecomer" {
		t.Fatalf("newest reservation should go first, got %s", evicted[0].User)
	}
	if len(pbs.FreeNodes()) < 6 {
		t.Fatalf("free nodes = %d", len(pbs.FreeNodes()))
	}
	// The evicted students' daemons are now ghosts on free nodes; the
	// cleanup cycle reaps them.
	eng.Advance(16 * time.Minute)
	if pbs.OrphansKilled == 0 {
		t.Fatal("preempted daemons never cleaned up")
	}
}

// Package myhadoop models the course's final computing platform: dynamic
// per-student Hadoop clusters provisioned on a shared HPC supercomputer
// through a PBS-style batch scheduler, in the manner of the San Diego
// Supercomputing Center's myHadoop scripts. It reproduces the paper's
// operational phenomena: node reservations with walltimes, daemon port
// binding, orphaned ("ghost") daemons left by students who exit without
// stopping Hadoop, the 15-minute scheduler clean-up cycle, and the rule
// that students may kill their own orphaned daemons but must wait out
// everyone else's.
package myhadoop

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// Standard Hadoop 1.x daemon ports.
const (
	PortNameNode    = 50070
	PortJobTracker  = 50030
	PortDataNode    = 50010
	PortTaskTracker = 50060
)

// Daemon is a long-running Hadoop process bound to a port on a node.
type Daemon struct {
	Kind  string // "namenode", "jobtracker", "datanode", "tasktracker"
	Port  int
	Owner string
}

type nodeState struct {
	id         cluster.NodeID
	reservedBy *Reservation
	ports      map[int]*Daemon
}

// ResState tracks a reservation through its lifecycle.
type ResState int

// Reservation states.
const (
	ResQueued ResState = iota
	ResRunning
	ResDone
)

// Reservation is one PBS job: a user holding nodes for a walltime.
type Reservation struct {
	User     string
	Nodes    int
	Walltime time.Duration

	State     ResState
	Allocated []cluster.NodeID
	StartedAt sim.Time

	expiry sim.Timer
	// StoppedCleanly records whether the user stopped their daemons
	// before the reservation ended.
	StoppedCleanly bool
}

// PBS is the batch scheduler managing the shared node pool.
type PBS struct {
	Engine *sim.Engine
	Topo   *cluster.Topology
	// CleanupInterval is how often the scheduler's clean-up script kills
	// orphaned daemons on free nodes (the paper's ~15 minutes).
	CleanupInterval time.Duration

	nodes map[cluster.NodeID]*nodeState
	queue []*Reservation

	// OrphansKilled counts ghost daemons removed by the clean-up cycle.
	OrphansKilled int
}

// NewPBS builds a scheduler over the topology and arms the cleanup cycle.
func NewPBS(eng *sim.Engine, topo *cluster.Topology, cleanup time.Duration) *PBS {
	if cleanup <= 0 {
		cleanup = 15 * time.Minute
	}
	p := &PBS{
		Engine:          eng,
		Topo:            topo,
		CleanupInterval: cleanup,
		nodes:           map[cluster.NodeID]*nodeState{},
	}
	for _, n := range topo.Nodes() {
		p.nodes[n.ID] = &nodeState{id: n.ID, ports: map[int]*Daemon{}}
	}
	eng.Every(cleanup, p.cleanupOrphans)
	return p
}

// FreeNodes returns the currently unreserved node IDs, sorted.
func (p *PBS) FreeNodes() []cluster.NodeID {
	var out []cluster.NodeID
	for id, ns := range p.nodes {
		if ns.reservedBy == nil {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Submit requests nodes for a walltime. The reservation starts
// immediately when enough nodes are free, otherwise it queues FIFO.
func (p *PBS) Submit(user string, nodes int, walltime time.Duration) (*Reservation, error) {
	if nodes <= 0 || nodes > p.Topo.Len() {
		return nil, fmt.Errorf("myhadoop: cannot reserve %d of %d nodes", nodes, p.Topo.Len())
	}
	r := &Reservation{User: user, Nodes: nodes, Walltime: walltime, State: ResQueued}
	p.queue = append(p.queue, r)
	p.tryStart()
	return r, nil
}

func (p *PBS) tryStart() {
	for len(p.queue) > 0 {
		r := p.queue[0]
		free := p.FreeNodes()
		if len(free) < r.Nodes {
			return // FIFO: head of queue blocks
		}
		p.queue = p.queue[1:]
		r.Allocated = free[:r.Nodes]
		for _, id := range r.Allocated {
			p.nodes[id].reservedBy = r
		}
		r.State = ResRunning
		r.StartedAt = p.Engine.Now()
		res := r
		r.expiry = p.Engine.After(r.Walltime, func() {
			// Walltime exceeded: the scheduler evicts the job. Daemons
			// that were not stopped become orphans on the freed nodes.
			p.release(res)
		})
	}
}

// Release ends a reservation early (the user's job script finished).
func (p *PBS) Release(r *Reservation) {
	r.expiry.Cancel()
	p.release(r)
}

func (p *PBS) release(r *Reservation) {
	if r.State != ResRunning {
		return
	}
	r.State = ResDone
	for _, id := range r.Allocated {
		if p.nodes[id].reservedBy == r {
			p.nodes[id].reservedBy = nil
		}
	}
	p.tryStart()
}

// Preempt evicts the most recently started reservations until n nodes are
// free — the supercomputer's policy the paper warns about: "their jobs can
// be preempted from the system by higher priority research jobs asking for
// more computational resources". Evicted students' daemons become orphans
// unless they had already stopped cleanly. Returns the evicted
// reservations.
func (p *PBS) Preempt(n int) []*Reservation {
	var evicted []*Reservation
	for len(p.FreeNodes()) < n {
		var victim *Reservation
		for _, ns := range p.nodes {
			r := ns.reservedBy
			if r == nil {
				continue
			}
			if victim == nil || r.StartedAt > victim.StartedAt {
				victim = r
			}
		}
		if victim == nil {
			break
		}
		victim.expiry.Cancel()
		p.release(victim)
		evicted = append(evicted, victim)
	}
	return evicted
}

// cleanupOrphans is the scheduler's periodic clean-up script: daemons on
// free nodes, and daemons owned by anyone other than a node's current
// reservation holder, are killed — the 15-minute wait of §II-B.
func (p *PBS) cleanupOrphans() {
	for _, ns := range p.nodes {
		owner := ""
		if ns.reservedBy != nil {
			owner = ns.reservedBy.User
		}
		for port, d := range ns.ports {
			if owner == "" || d.Owner != owner {
				delete(ns.ports, port)
				p.OrphansKilled++
			}
		}
	}
}

// GhostDaemonError reports a provisioning failure caused by another
// user's orphaned daemon still holding a required port.
type GhostDaemonError struct {
	Node  cluster.NodeID
	Port  int
	Owner string
}

func (e *GhostDaemonError) Error() string {
	return fmt.Sprintf("myhadoop: port %d on node %d is bound by an orphaned daemon of user %q",
		e.Port, e.Node, e.Owner)
}

// bindDaemon binds a daemon port on a node for a reservation's user.
// A port held by the same user's orphan is killed and rebound (the paper:
// "if the orphaned daemons belonged to the same student, they could be
// terminated individually"); another user's orphan is fatal.
func (p *PBS) bindDaemon(r *Reservation, node cluster.NodeID, kind string, port int) (*Daemon, error) {
	ns := p.nodes[node]
	if ns == nil || ns.reservedBy != r {
		return nil, fmt.Errorf("myhadoop: node %d is not reserved by %s", node, r.User)
	}
	if d, busy := ns.ports[port]; busy {
		if d.Owner != r.User {
			return nil, &GhostDaemonError{Node: node, Port: port, Owner: d.Owner}
		}
		delete(ns.ports, port) // kill own ghost
	}
	d := &Daemon{Kind: kind, Port: port, Owner: r.User}
	ns.ports[port] = d
	return d, nil
}

// unbindDaemon releases a port if the daemon still owns it.
func (p *PBS) unbindDaemon(node cluster.NodeID, d *Daemon) {
	ns := p.nodes[node]
	if ns != nil && ns.ports[d.Port] == d {
		delete(ns.ports, d.Port)
	}
}

// Daemons lists the daemons currently bound on a node, sorted by port.
func (p *PBS) Daemons(node cluster.NodeID) []*Daemon {
	ns := p.nodes[node]
	if ns == nil {
		return nil
	}
	out := make([]*Daemon, 0, len(ns.ports))
	for _, d := range ns.ports {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Port < out[j].Port })
	return out
}

package myhadoop

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/mrcluster"
)

// HadoopRun is one student's dynamically provisioned Hadoop cluster: a
// private HDFS + MapReduce runtime over the reserved nodes, plus the
// daemon port bindings on the shared machine. All HDFS data lives on the
// reserved nodes' local disks (the supercomputer's parallel storage had
// no file locking, so myHadoop's persistent mode was unusable — data dies
// with the reservation).
type HadoopRun struct {
	Res *Reservation
	DFS *hdfs.MiniDFS
	MR  *mrcluster.MRCluster

	pbs     *PBS
	daemons map[cluster.NodeID][]*Daemon
	stopped bool
}

// ProvisionOptions tunes the per-student cluster.
type ProvisionOptions struct {
	HDFS hdfs.Config
	MR   mrcluster.Config
	Seed int64
}

// Provision starts Hadoop daemons on a running reservation's nodes and
// returns the private cluster. It fails with *GhostDaemonError when a
// required port is still bound by another user's orphaned daemon.
func Provision(p *PBS, r *Reservation, opts ProvisionOptions) (*HadoopRun, error) {
	if r.State != ResRunning {
		return nil, fmt.Errorf("myhadoop: reservation is not running")
	}
	run := &HadoopRun{Res: r, pbs: p, daemons: map[cluster.NodeID][]*Daemon{}}
	bind := func(node cluster.NodeID, kind string, port int) error {
		d, err := p.bindDaemon(r, node, kind, port)
		if err != nil {
			return err
		}
		run.daemons[node] = append(run.daemons[node], d)
		return nil
	}
	for i, node := range r.Allocated {
		if i == 0 {
			if err := bind(node, "namenode", PortNameNode); err != nil {
				run.unbindAll()
				return nil, err
			}
			if err := bind(node, "jobtracker", PortJobTracker); err != nil {
				run.unbindAll()
				return nil, err
			}
		}
		if err := bind(node, "datanode", PortDataNode); err != nil {
			run.unbindAll()
			return nil, err
		}
		if err := bind(node, "tasktracker", PortTaskTracker); err != nil {
			run.unbindAll()
			return nil, err
		}
	}
	// The student's private cluster spans only the reserved nodes.
	subTopo := cluster.NewTopology(cluster.Config{
		Nodes:        len(r.Allocated),
		Racks:        1,
		CoresPerNode: 16,
		RAMPerNode:   64 << 30,
		DiskPerNode:  850 << 30,
		HostPrefix:   fmt.Sprintf("%s-node", r.User),
	})
	dfs, err := hdfs.NewMiniDFS(p.Engine, subTopo, hdfs.Options{Config: opts.HDFS, Seed: opts.Seed})
	if err != nil {
		run.unbindAll()
		return nil, err
	}
	run.DFS = dfs
	run.MR = mrcluster.NewMRCluster(dfs, opts.MR, opts.Seed+1)
	return run, nil
}

func (h *HadoopRun) unbindAll() {
	for node, ds := range h.daemons {
		for _, d := range ds {
			h.pbs.unbindDaemon(node, d)
		}
	}
	h.daemons = map[cluster.NodeID][]*Daemon{}
}

// StopDaemons shuts the Hadoop daemons down cleanly, releasing their
// ports — what a student *should* do before exiting.
func (h *HadoopRun) StopDaemons() {
	if h.stopped {
		return
	}
	h.stopped = true
	h.Res.StoppedCleanly = true
	h.unbindAll()
}

// ExitWithoutStopping models a student logging out (or being evicted)
// with daemons still running: the ports stay bound and the daemons become
// ghosts once the nodes are reassigned.
func (h *HadoopRun) ExitWithoutStopping() {
	h.stopped = true
	h.Res.StoppedCleanly = false
}

// SubmissionScript is the myHadoop batch script of the paper's §III-D:
// the scheduler directives plus the canonical command sequence (create
// HDFS dirs, stage data in, health check, run the job, export results).
type SubmissionScript struct {
	User     string
	Nodes    int
	Walltime time.Duration
	RAM      string
	Commands []string
}

// DefaultScript returns the script skeleton students edited — only the
// physical configuration on the #PBS lines needed changing.
func DefaultScript(user string, nodes int, walltime time.Duration) SubmissionScript {
	return SubmissionScript{
		User:     user,
		Nodes:    nodes,
		Walltime: walltime,
		RAM:      "64gb",
		Commands: []string{
			"myhadoop-configure.sh",
			"start-all.sh",
			"hadoop fs -mkdir /user/" + user,
			"hadoop fs -put $HOME/data /user/" + user + "/data",
			"hadoop fsck /",
			"hadoop jar $HOME/job.jar /user/" + user + "/data /user/" + user + "/out",
			"hadoop fs -copyToLocal /user/" + user + "/out $HOME/out",
			"stop-all.sh",
			"myhadoop-cleanup.sh",
		},
	}
}

// Interactive inserts a sleep before the shutdown commands — the paper's
// trick for turning the batch platform interactive: "the students can
// also insert a sleep command into the submission script and turn the
// dynamic Hadoop platform into an interactive platform for the duration
// of the sleep command".
func (s SubmissionScript) Interactive(d time.Duration) SubmissionScript {
	out := s
	out.Commands = nil
	for _, c := range s.Commands {
		if c == "stop-all.sh" {
			out.Commands = append(out.Commands, fmt.Sprintf("sleep %d  # interactive window", int(d.Seconds())))
		}
		out.Commands = append(out.Commands, c)
	}
	return out
}

// Render prints the script as a PBS submission file.
func (s SubmissionScript) Render() string {
	out := fmt.Sprintf(`#!/bin/bash
#PBS -N myhadoop-%s
#PBS -l select=%d:ncpus=16:mem=%s
#PBS -l walltime=%s
`, s.User, s.Nodes, s.RAM, fmtWalltime(s.Walltime))
	for _, c := range s.Commands {
		out += c + "\n"
	}
	return out
}

func fmtWalltime(d time.Duration) string {
	h := int(d.Hours())
	m := int(d.Minutes()) % 60
	return fmt.Sprintf("%02d:%02d:00", h, m)
}

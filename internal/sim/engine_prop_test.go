package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// This file checks the rewritten 4-ary, free-listed event queue against the
// engine's previous implementation — the container/heap binary heap below,
// kept verbatim as an oracle. Both engines are driven through the same
// randomized Schedule/Cancel/Every workloads and must produce identical
// fire logs: same events, same order, same virtual timestamps, same Cancel
// return values. Any divergence in tie-breaking, cancellation sweeping or
// free-list recycling shows up as a log mismatch.

// --- oracle: the old container/heap engine ---

type oracleEvent struct {
	at  Time
	seq uint64
	fn  func()
	idx int
}

type oracleHeap []*oracleEvent

func (h oracleHeap) Len() int { return len(h) }
func (h oracleHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h oracleHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *oracleHeap) Push(x any) {
	ev := x.(*oracleEvent)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *oracleHeap) Pop() any {
	old := *h
	n := len(old) - 1
	ev := old[n]
	old[n] = nil
	*h = old[:n]
	return ev
}

type oracleEngine struct {
	now   Time
	seq   uint64
	queue oracleHeap
}

func (e *oracleEngine) Now() Time { return e.now }

func (e *oracleEngine) Schedule(at Time, fn func()) *oracleEvent {
	if at < e.now {
		panic("oracle: schedule in the past")
	}
	e.seq++
	ev := &oracleEvent{at: at, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return ev
}

func (e *oracleEngine) After(d time.Duration, fn func()) *oracleEvent {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

func (ev *oracleEvent) Cancel() bool {
	if ev == nil || ev.fn == nil {
		return false
	}
	ev.fn = nil
	return true
}

func (e *oracleEngine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*oracleEvent)
		if ev.fn == nil {
			continue
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil // cleared before the call, exactly as the old engine did
		fn()
		return true
	}
	return false
}

func (e *oracleEngine) RunUntil(deadline Time) {
	for len(e.queue) > 0 {
		if e.queue[0].fn == nil {
			heap.Pop(&e.queue)
			continue
		}
		if e.queue[0].at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

func (e *oracleEngine) Run() {
	for e.Step() {
	}
}

type oracleTicker struct {
	e        *oracleEngine
	interval time.Duration
	fn       func()
	stopped  bool
	timer    *oracleEvent
}

func (e *oracleEngine) Every(interval time.Duration, fn func()) *oracleTicker {
	t := &oracleTicker{e: e, interval: interval, fn: fn}
	t.arm()
	return t
}

func (t *oracleTicker) arm() {
	t.timer = t.e.After(t.interval, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

func (t *oracleTicker) Stop() {
	t.stopped = true
	t.timer.Cancel()
}

// --- shared workload driver ---

// propEngine abstracts whichever engine the workload runs on.
type propEngine interface {
	now() Time
	after(d time.Duration, fn func()) (cancel func() bool)
	every(interval time.Duration, fn func()) (stop func())
	runUntil(deadline Time)
	run()
}

type newAdapter struct{ e *Engine }

func (a newAdapter) now() Time { return a.e.Now() }
func (a newAdapter) after(d time.Duration, fn func()) func() bool {
	tm := a.e.After(d, fn)
	return tm.Cancel
}
func (a newAdapter) every(interval time.Duration, fn func()) func() {
	tk := a.e.Every(interval, fn)
	return tk.Stop
}
func (a newAdapter) runUntil(deadline Time) { a.e.RunUntil(deadline) }
func (a newAdapter) run()                   { a.e.Run() }

type oracleAdapter struct{ e *oracleEngine }

func (a oracleAdapter) now() Time { return a.e.now }
func (a oracleAdapter) after(d time.Duration, fn func()) func() bool {
	ev := a.e.After(d, fn)
	return ev.Cancel
}
func (a oracleAdapter) every(interval time.Duration, fn func()) func() {
	tk := a.e.Every(interval, fn)
	return tk.Stop
}
func (a oracleAdapter) runUntil(deadline Time) { a.e.RunUntil(deadline) }
func (a oracleAdapter) run()                   { a.e.Run() }

// runWorkload drives e through a randomized schedule/cancel/ticker script
// derived from seed and returns the fire log. The single rng is consumed in
// callback order, so if the two engines ever diverge, the rng streams
// diverge too and the logs differ loudly rather than subtly.
func runWorkload(e propEngine, seed int64, budget int) []string {
	rng := rand.New(rand.NewSource(seed))
	var log []string
	var cancels []func() bool
	var stops []func()
	spawned := 0

	var spawn func()
	spawn = func() {
		spawned++
		id := spawned
		// Coarse delays force plenty of equal-time collisions to exercise
		// the (at, seq) tie-break.
		d := time.Duration(rng.Intn(16)) * time.Millisecond
		cancel := e.after(d, func() {
			log = append(log, fmt.Sprintf("fire %d @%v", id, e.now()))
			switch k := rng.Intn(10); {
			case k < 4 && spawned < budget:
				spawn()
				if rng.Intn(2) == 0 && spawned < budget {
					spawn()
				}
			case k < 6 && len(cancels) > 0:
				i := rng.Intn(len(cancels))
				log = append(log, fmt.Sprintf("cancel %d -> %v", i, cancels[i]()))
			case k == 6 && spawned < budget:
				tid := spawned + 1
				spawned++
				fires := 0
				var stop func()
				stop = e.every(time.Duration(1+rng.Intn(8))*time.Millisecond, func() {
					fires++
					log = append(log, fmt.Sprintf("tick %d #%d @%v", tid, fires, e.now()))
					if fires >= 4 {
						stop()
					}
				})
				stops = append(stops, stop)
			case k == 7 && len(stops) > 0:
				i := rng.Intn(len(stops))
				stops[i]()
				log = append(log, fmt.Sprintf("stop %d", i))
			}
		})
		cancels = append(cancels, cancel)
	}

	// Interleave batches of external schedules with bounded RunUntil windows
	// so events queue up across window boundaries, then drain everything.
	for phase := 0; phase < 8; phase++ {
		for i := 0; i < budget/16 && spawned < budget; i++ {
			spawn()
		}
		e.runUntil(e.now() + time.Duration(4+rng.Intn(8))*time.Millisecond)
	}
	for _, stop := range stops {
		stop()
	}
	e.run()
	log = append(log, fmt.Sprintf("end @%v spawned=%d", e.now(), spawned))
	return log
}

// TestEventQueueMatchesOracle drives the new queue and the old heap with
// identical randomized workloads — in total well over 10k scheduled events
// across the seeds — and requires byte-identical logs.
func TestEventQueueMatchesOracle(t *testing.T) {
	const budget = 1500
	for seed := int64(1); seed <= 8; seed++ {
		got := runWorkload(newAdapter{e: NewEngine()}, seed, budget)
		want := runWorkload(oracleAdapter{e: &oracleEngine{}}, seed, budget)
		if len(got) != len(want) {
			t.Fatalf("seed %d: log length %d (new) vs %d (oracle)", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: log[%d] = %q (new) vs %q (oracle)", seed, i, got[i], want[i])
			}
		}
	}
}

package sim

import (
	"testing"
	"time"
)

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.After(time.Duration(j)*time.Millisecond, func() {})
		}
		e.Run()
	}
}

func BenchmarkTickerChurn(b *testing.B) {
	e := NewEngine()
	n := 0
	e.Every(time.Second, func() { n++ })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Advance(time.Second)
	}
}

// Package sim provides a deterministic discrete-event simulation core:
// a virtual clock, an ordered event queue, recurring timers and a seeded
// random source. Every time-dependent component of the minihadoop stack
// (heartbeats, block reports, task completions, scheduler cleanup cycles)
// runs on this engine so that whole-cluster scenarios are reproducible
// bit-for-bit across runs.
package sim

import (
	"container/heap"
	"fmt"

	"time"
)

// Time is an instant on the virtual clock, expressed as the duration since
// the engine started. Durations and instants share the same representation,
// which keeps arithmetic trivial.
type Time = time.Duration

// Event is a scheduled callback. Events with equal fire times run in the
// order they were scheduled.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all simulated components are driven from the event loop.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	stopped bool
	// Processed counts events executed, useful as a progress metric and a
	// guard against runaway simulations.
	Processed uint64
	// MaxEvents aborts Run with an error when exceeded (0 = unlimited).
	MaxEvents uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.queue)
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn at the absolute virtual time at. Scheduling in the past
// (before Now) panics: it always indicates a logic error in a simulation.
func (e *Engine) Schedule(at Time, fn func()) *Timer {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	ev := &event{at: at, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return &Timer{engine: e, ev: ev}
}

// After runs fn after the virtual duration d.
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// Advance moves the clock forward by d, firing any events that fall within
// the window. It is the synchronous-caller complement to Run: interactive
// flows (a shell command, a client upload) compute a modelled cost and then
// Advance the clock by it.
func (e *Engine) Advance(d time.Duration) {
	if d < 0 {
		panic("sim: negative advance")
	}
	e.RunUntil(e.now + d)
	e.now = e.now + 0 // clock already moved by RunUntil
}

// Step executes the single next pending event, returning false when the
// queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	if ev.fn == nil { // cancelled
		return e.Step()
	}
	e.now = ev.at
	e.Processed++
	fn := ev.fn
	ev.fn = nil
	fn()
	return true
}

// RunUntil processes events until the queue is exhausted or the next event
// would fire after deadline; the clock is left at deadline (or at the last
// event time if that is later, which cannot happen).
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 && !e.stopped {
		if e.queue[0].fn == nil {
			heap.Pop(&e.queue)
			continue
		}
		if e.queue[0].at > deadline {
			break
		}
		if e.MaxEvents > 0 && e.Processed >= e.MaxEvents {
			panic(fmt.Sprintf("sim: exceeded MaxEvents=%d", e.MaxEvents))
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	e.stopped = false
}

// Run processes events until the queue drains or Stop is called. The clock
// is left at the time of the last event executed.
func (e *Engine) Run() {
	for len(e.queue) > 0 && !e.stopped {
		if e.MaxEvents > 0 && e.Processed >= e.MaxEvents {
			panic(fmt.Sprintf("sim: exceeded MaxEvents=%d", e.MaxEvents))
		}
		e.Step()
	}
	e.stopped = false
}

// Stop halts Run after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of live (non-cancelled) events in the queue.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if ev.fn != nil {
			n++
		}
	}
	return n
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	engine *Engine
	ev     *event
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled timer is a no-op. Reports whether the event was live.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.fn == nil {
		return false
	}
	t.ev.fn = nil
	return true
}

// Ticker fires fn every interval until stopped.
type Ticker struct {
	engine   *Engine
	interval time.Duration
	fn       func()
	stopped  bool
	timer    *Timer
}

// Every schedules fn to run every interval, first firing after one interval.
func (e *Engine) Every(interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: non-positive ticker interval")
	}
	t := &Ticker{engine: e, interval: interval, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.timer = t.engine.After(t.interval, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop prevents future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.timer != nil {
		t.timer.Cancel()
	}
}

// Package sim provides a deterministic discrete-event simulation core:
// a virtual clock, an ordered event queue, recurring timers and a seeded
// random source. Every time-dependent component of the minihadoop stack
// (heartbeats, block reports, task completions, scheduler cleanup cycles)
// runs on this engine so that whole-cluster scenarios are reproducible
// bit-for-bit across runs.
package sim

import (
	"fmt"

	"time"
)

// Time is an instant on the virtual clock, expressed as the duration since
// the engine started. Durations and instants share the same representation,
// which keeps arithmetic trivial.
type Time = time.Duration

// event is a scheduled callback. Events with equal fire times run in the
// order they were scheduled (seq breaks ties). Event structs are pooled:
// once popped from the queue an event goes back on the engine's free list
// and may be handed out again by a later Schedule. gen is bumped at each
// recycle so stale Timer handles (whose captured gen no longer matches)
// cannot cancel the event's next incarnation.
type event struct {
	at  Time
	seq uint64
	gen uint64
	fn  func()
}

// eventQueue is a 4-ary min-heap ordered by (at, seq). A 4-ary layout
// halves the tree depth of the binary heap it replaced, and the hand-rolled
// sift routines avoid the interface boxing and indirect calls of
// container/heap — Schedule and Step are the innermost loop of every
// simulation.
type eventQueue []*event

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q eventQueue) siftUp(i int) {
	ev := q[i]
	for i > 0 {
		p := (i - 1) / 4
		if !eventLess(ev, q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = ev
}

func (q eventQueue) siftDown(i int) {
	n := len(q)
	ev := q[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventLess(q[j], q[best]) {
				best = j
			}
		}
		if !eventLess(q[best], ev) {
			break
		}
		q[i] = q[best]
		i = best
	}
	q[i] = ev
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all simulated components are driven from the event loop.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	free    []*event // recycled event structs, see event
	stopped bool
	// Processed counts events executed, useful as a progress metric and a
	// guard against runaway simulations.
	Processed uint64
	// MaxEvents aborts Run with an error when exceeded (0 = unlimited).
	MaxEvents uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn at the absolute virtual time at. Scheduling in the past
// (before Now) panics: it always indicates a logic error in a simulation.
func (e *Engine) Schedule(at Time, fn func()) Timer {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.fn = at, e.seq, fn
	} else {
		ev = &event{at: at, seq: e.seq, fn: fn}
	}
	e.queue = append(e.queue, ev)
	e.queue.siftUp(len(e.queue) - 1)
	return Timer{ev: ev, gen: ev.gen}
}

// After runs fn after the virtual duration d.
func (e *Engine) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// pop removes and returns the earliest event without recycling it.
func (e *Engine) pop() *event {
	q := e.queue
	ev := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = nil
	e.queue = q[:n]
	if n > 0 {
		e.queue.siftDown(0)
	}
	return ev
}

// release puts a popped event on the free list. Bumping gen here — not at
// reuse — guarantees any Timer still holding the old generation sees a
// mismatch from the moment the event leaves the queue.
func (e *Engine) release(ev *event) {
	ev.fn = nil
	ev.gen++
	e.free = append(e.free, ev)
}

// Advance moves the clock forward by d, firing any events that fall within
// the window. It is the synchronous-caller complement to Run: interactive
// flows (a shell command, a client upload) compute a modelled cost and then
// Advance the clock by it.
func (e *Engine) Advance(d time.Duration) {
	if d < 0 {
		panic("sim: negative advance")
	}
	e.RunUntil(e.now + d)
}

// Step executes the single next pending event, returning false when the
// queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := e.pop()
		if ev.fn == nil { // cancelled
			e.release(ev)
			continue
		}
		e.now = ev.at
		e.Processed++
		fn := ev.fn
		e.release(ev)
		fn()
		return true
	}
	return false
}

// RunUntil processes events until the queue is exhausted or the next event
// would fire after deadline; the clock is left at deadline (or at the last
// event time if that is later, which cannot happen).
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 && !e.stopped {
		if e.queue[0].fn == nil {
			e.release(e.pop())
			continue
		}
		if e.queue[0].at > deadline {
			break
		}
		if e.MaxEvents > 0 && e.Processed >= e.MaxEvents {
			panic(fmt.Sprintf("sim: exceeded MaxEvents=%d", e.MaxEvents))
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	e.stopped = false
}

// Run processes events until the queue drains or Stop is called. The clock
// is left at the time of the last event executed.
func (e *Engine) Run() {
	for len(e.queue) > 0 && !e.stopped {
		if e.MaxEvents > 0 && e.Processed >= e.MaxEvents {
			panic(fmt.Sprintf("sim: exceeded MaxEvents=%d", e.MaxEvents))
		}
		e.Step()
	}
	e.stopped = false
}

// Stop halts Run after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of live (non-cancelled) events in the queue.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if ev.fn != nil {
			n++
		}
	}
	return n
}

// Timer is a handle to a scheduled event that can be cancelled. The zero
// Timer is valid and Cancel on it is a no-op, so callers can keep one in a
// struct field without a pointer. Because event structs are pooled, the
// handle captures the event's generation; a Timer outliving its event (it
// fired, or was cancelled and swept) can never affect the recycled struct.
type Timer struct {
	ev  *event
	gen uint64
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled timer is a no-op. Reports whether the event was live.
func (t Timer) Cancel() bool {
	if t.ev == nil || t.ev.gen != t.gen || t.ev.fn == nil {
		return false
	}
	t.ev.fn = nil
	return true
}

// Ticker fires fn every interval until stopped.
type Ticker struct {
	engine   *Engine
	interval time.Duration
	fn       func()
	stopped  bool
	timer    Timer
}

// Every schedules fn to run every interval, first firing after one interval.
func (e *Engine) Every(interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: non-positive ticker interval")
	}
	t := &Ticker{engine: e, interval: interval, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.timer = t.engine.After(t.interval, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop prevents future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	t.timer.Cancel()
}

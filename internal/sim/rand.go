package sim

import "math/rand"

// Rand wraps a seeded math/rand source with the distribution helpers the
// simulations need. Each component takes its own Rand derived from a master
// seed so that adding randomness to one component does not perturb another.
type Rand struct {
	*rand.Rand
}

// NewRand returns a deterministic random source for the given seed.
func NewRand(seed int64) *Rand {
	return &Rand{rand.New(rand.NewSource(seed))}
}

// Derive returns a new independent source whose seed is a pure function of
// the parent seed and the label, so call-site ordering does not matter.
func (r *Rand) Derive(label string) *Rand {
	h := int64(1469598103934665603) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= int64(label[i])
		h *= 1099511628211
	}
	return NewRand(h ^ r.Int63())
}

// Normal returns a normally distributed value with the given mean and
// standard deviation.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// Exponential returns an exponentially distributed value with the given mean.
func (r *Rand) Exponential(mean float64) float64 {
	return r.ExpFloat64() * mean
}

// Bernoulli reports true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// IntBetween returns a uniform integer in [lo, hi] inclusive.
func (r *Rand) IntBetween(lo, hi int) int {
	if hi < lo {
		lo, hi = hi, lo
	}
	return lo + r.Intn(hi-lo+1)
}

// Choice returns a uniformly chosen index in [0, n).
func (r *Rand) Choice(n int) int { return r.Intn(n) }

// Shuffled returns a shuffled copy of the indices [0, n).
func (r *Rand) Shuffled(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	r.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	return idx
}

// Zipf returns a generator of Zipf-distributed values in [0, n) with
// exponent s (>1 boosts skew). It mirrors rand.Zipf but with a friendlier
// constructor for the dataset generators.
func (r *Rand) Zipf(s float64, n uint64) *rand.Zipf {
	if s <= 1 {
		s = 1.0001
	}
	return rand.NewZipf(r.Rand, s, 1, n-1)
}

package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if e.Now() != 30*time.Millisecond {
		t.Fatalf("clock = %v, want 30ms", e.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of schedule order: %v", got)
		}
	}
}

func TestAfterRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	e.After(time.Second, func() {
		e.After(2*time.Second, func() { at = e.Now() })
	})
	e.Run()
	if at != 3*time.Second {
		t.Fatalf("nested After fired at %v, want 3s", at)
	}
}

func TestRunUntilLeavesClockAtDeadline(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(10*time.Second, func() { fired = true })
	e.RunUntil(5 * time.Second)
	if fired {
		t.Fatal("future event fired before deadline")
	}
	if e.Now() != 5*time.Second {
		t.Fatalf("clock = %v, want 5s", e.Now())
	}
	e.RunUntil(20 * time.Second)
	if !fired {
		t.Fatal("event never fired")
	}
	if e.Now() != 20*time.Second {
		t.Fatalf("clock = %v, want 20s", e.Now())
	}
}

func TestAdvance(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Every(time.Second, func() { n++ })
	e.Advance(10 * time.Second)
	if n != 10 {
		t.Fatalf("ticker fired %d times in 10s, want 10", n)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Advance(time.Minute)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(time.Second, func() {})
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.After(time.Second, func() { fired = true })
	if !tm.Cancel() {
		t.Fatal("first cancel reported dead timer")
	}
	if tm.Cancel() {
		t.Fatal("second cancel reported live timer")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestTickerStop(t *testing.T) {
	e := NewEngine()
	n := 0
	var tk *Ticker
	tk = e.Every(time.Second, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if n != 3 {
		t.Fatalf("ticker fired %d times, want 3", n)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending events after stop: %d", e.Pending())
	}
}

func TestStepEmptyQueue(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue reported progress")
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Every(time.Second, func() {
		n++
		if n == 5 {
			e.Stop()
		}
	})
	e.Run()
	if n != 5 {
		t.Fatalf("ran %d events after Stop, want 5", n)
	}
}

func TestClockMonotone(t *testing.T) {
	// Property: however events reschedule each other, observed times during
	// the run never decrease.
	e := NewEngine()
	r := NewRand(42)
	last := Time(0)
	ok := true
	var spawn func(depth int)
	spawn = func(depth int) {
		e.After(time.Duration(r.Intn(1000))*time.Millisecond, func() {
			if e.Now() < last {
				ok = false
			}
			last = e.Now()
			if depth > 0 {
				spawn(depth - 1)
				spawn(depth - 1)
			}
		})
	}
	spawn(6)
	e.Run()
	if !ok {
		t.Fatal("clock went backwards")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRandDeriveIndependentOfCallOrder(t *testing.T) {
	// Derive must be a pure function of (parent state, label); two parents
	// with the same seed deriving the same label get the same stream.
	a := NewRand(1).Derive("datanode")
	b := NewRand(1).Derive("datanode")
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("derived streams differ for identical seed+label")
		}
	}
	c := NewRand(1).Derive("tasktracker")
	d := NewRand(1).Derive("datanode")
	same := true
	for i := 0; i < 10; i++ {
		if c.Int63() != d.Int63() {
			same = false
		}
	}
	if same {
		t.Fatal("different labels produced identical streams")
	}
}

func TestIntBetween(t *testing.T) {
	r := NewRand(3)
	if err := quick.Check(func(lo, hi int16) bool {
		v := r.IntBetween(int(lo), int(hi))
		l, h := int(lo), int(hi)
		if h < l {
			l, h = h, l
		}
		return v >= l && v <= h
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRand(11)
	z := r.Zipf(1.2, 1000)
	counts := map[uint64]int{}
	for i := 0; i < 20000; i++ {
		counts[z.Uint64()]++
	}
	if counts[0] < counts[100] {
		t.Fatalf("zipf not skewed: rank0=%d rank100=%d", counts[0], counts[100])
	}
}

func TestShuffledIsPermutation(t *testing.T) {
	r := NewRand(5)
	idx := r.Shuffled(100)
	seen := make([]bool, 100)
	for _, v := range idx {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", idx)
		}
		seen[v] = true
	}
}

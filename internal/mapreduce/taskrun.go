package mapreduce

import (
	"fmt"
	"io"
)

// MapOutput is one map task's output: a sorted (and, if configured,
// combined) run of pairs per reduce partition.
type MapOutput struct {
	Partitions [][]Pair
}

// Bytes returns the total encoded size of the output — what the shuffle
// will move for this task.
func (m *MapOutput) Bytes() int64 {
	var n int64
	for _, part := range m.Partitions {
		for _, p := range part {
			n += p.Bytes()
		}
	}
	return n
}

// Records returns the total pair count across partitions.
func (m *MapOutput) Records() int64 {
	var n int64
	for _, part := range m.Partitions {
		n += int64(len(part))
	}
	return n
}

// ExecuteMap runs one map task over its records: Setup, Map per record,
// Close, then partition, sort and combine — spilling the sort buffer
// whenever it exceeds the job's SpillRecords bound, exactly as a full
// io.sort buffer forces a Hadoop map task to spill mid-run. Both runtimes
// call this; they differ only in how they fetch the records and where the
// output lives.
func ExecuteMap(ctx *TaskContext, job *Job, records []Record) (*MapOutput, error) {
	mapper := job.NewMapper()
	nParts := job.Reducers()
	part := job.Partitioner()

	// spills[p] holds the sorted+combined runs already flushed for
	// partition p; buffer holds unsorted pairs not yet spilled.
	spills := make([][][]Pair, nParts)
	buffer := make([][]Pair, nParts)
	buffered := 0

	spill := func() error {
		for p, pairs := range buffer {
			if len(pairs) == 0 {
				continue
			}
			SortPairs(pairs)
			combined, err := RunCombiner(ctx, job, pairs)
			if err != nil {
				return fmt.Errorf("combiner: %w", err)
			}
			spills[p] = append(spills[p], combined)
			ctx.Counters.Inc(CtrSpilledRecords, int64(len(combined)))
			buffer[p] = nil
		}
		buffered = 0
		return nil
	}

	// The per-record counters are accumulated in locals and flushed once:
	// two map-assigns per emitted pair was a measurable slice of the map
	// phase on counting jobs.
	var outRecords, outBytes int64
	emit := EmitterFunc(func(key string, value Value) error {
		p := part(key, nParts)
		if p < 0 || p >= nParts {
			return fmt.Errorf("mapreduce: partitioner returned %d for %d reducers", p, nParts)
		}
		pair := Pair{Key: key, Val: value.EncodeValue()}
		buffer[p] = append(buffer[p], pair)
		buffered++
		outRecords++
		outBytes += pair.Bytes()
		if job.SpillRecords > 0 && buffered >= job.SpillRecords {
			return spill()
		}
		return nil
	})

	if s, ok := mapper.(Setupper); ok {
		if err := s.Setup(ctx); err != nil {
			return nil, fmt.Errorf("map setup: %w", err)
		}
	}
	var inRecords, inBytes int64
	for _, rec := range records {
		inRecords++
		inBytes += int64(len(rec.Line)) + 1
		if err := mapper.Map(ctx, rec.Offset, rec.Line, emit); err != nil {
			return nil, fmt.Errorf("map record at offset %d: %w", rec.Offset, err)
		}
	}
	ctx.Counters.Inc(CtrMapInputRecords, inRecords)
	ctx.Counters.Inc(CtrMapInputBytes, inBytes)
	if c, ok := mapper.(Closer); ok {
		if err := c.Close(ctx, emit); err != nil {
			return nil, fmt.Errorf("map close: %w", err)
		}
	}
	ctx.Counters.Inc(CtrMapOutputRecords, outRecords)
	ctx.Counters.Inc(CtrMapOutputBytes, outBytes)
	if err := spill(); err != nil {
		return nil, err
	}

	// Merge the spill runs per partition; a multi-spill merge re-combines
	// so each final partition holds at most one pair per combined key.
	out := &MapOutput{Partitions: make([][]Pair, nParts)}
	for p, runs := range spills {
		switch len(runs) {
		case 0:
			out.Partitions[p] = nil
		case 1:
			out.Partitions[p] = runs[0]
		default:
			merged := MergeSortedRuns(runs)
			combined, err := RunCombiner(ctx, job, merged)
			if err != nil {
				return nil, fmt.Errorf("merge combiner: %w", err)
			}
			out.Partitions[p] = combined
		}
	}
	return out, nil
}

// ExecuteReduce runs one reduce task: merge the sorted runs fetched from
// each map task, group by key, apply the reducer (with lifecycle hooks),
// and write the output to w. When w implements RecordWriter (as the
// format-aware OutputWriter does), records flow through WriteRecord;
// otherwise text lines ("key<TAB>value\n") are written. Returns the
// logical (pre-compression) bytes emitted.
func ExecuteReduce(ctx *TaskContext, job *Job, runs [][]Pair, w io.Writer) (int64, error) {
	reducer := job.NewReducer()
	rw, structured := w.(RecordWriter)
	var written int64
	var line []byte // reused text-line scratch for the unstructured path
	var outRecords int64
	emit := EmitterFunc(func(key string, value Value) error {
		outRecords++
		s := value.String()
		written += int64(len(key) + len(s) + 2) // tab + newline
		if structured {
			return rw.WriteRecord(key, s)
		}
		line = append(line[:0], key...)
		line = append(line, '\t')
		line = append(line, s...)
		line = append(line, '\n')
		_, err := w.Write(line)
		return err
	})

	if s, ok := reducer.(Setupper); ok {
		if err := s.Setup(ctx); err != nil {
			return written, fmt.Errorf("reduce setup: %w", err)
		}
	}
	merged := MergeSortedRuns(runs)
	var inGroups, inRecords int64
	err := GroupIterateBy(merged, job.DecodeValue, job.GroupKey, func(key string, values *Values) error {
		inGroups++
		inRecords += int64(values.Len())
		return reducer.Reduce(ctx, key, values, emit)
	})
	ctx.Counters.Inc(CtrReduceInputGroups, inGroups)
	ctx.Counters.Inc(CtrReduceInputRecords, inRecords)
	if err != nil {
		return written, fmt.Errorf("reduce: %w", err)
	}
	if c, ok := reducer.(Closer); ok {
		if err := c.Close(ctx, emit); err != nil {
			return written, fmt.Errorf("reduce close: %w", err)
		}
	}
	ctx.Counters.Inc(CtrReduceOutputRecords, outRecords)
	return written, nil
}

// PartitionName returns the conventional output file name for reducer r.
func PartitionName(r int) string {
	return fmt.Sprintf("part-r-%05d", r)
}

package mapreduce

import (
	"sort"
)

// SortPairs orders pairs by key. The sort is stable so that values for a
// key arrive at the reducer in emission order, which several of the course
// jobs rely on for determinism.
func SortPairs(pairs []Pair) {
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].Key < pairs[j].Key })
}

// MergeSortedRuns merges pre-sorted runs of pairs (one per map task) into
// a single sorted slice — the reduce-side merge phase. Ties across runs
// resolve in run order, keeping the merge deterministic.
func MergeSortedRuns(runs [][]Pair) []Pair {
	total := 0
	live := make([][]Pair, 0, len(runs))
	for _, r := range runs {
		if len(r) > 0 {
			live = append(live, r)
			total += len(r)
		}
	}
	out := make([]Pair, 0, total)
	for len(live) > 0 {
		best := 0
		for i := 1; i < len(live); i++ {
			if live[i][0].Key < live[best][0].Key {
				best = i
			}
		}
		out = append(out, live[best][0])
		live[best] = live[best][1:]
		if len(live[best]) == 0 {
			live = append(live[:best], live[best+1:]...)
		}
	}
	return out
}

// Values iterates the decoded values of one reduce group. It decodes
// lazily so the raw (metered) bytes are what travelled through the
// shuffle.
type Values struct {
	decode ValueDecoder
	raw    [][]byte
	i      int
}

// NewValues builds an iterator over encoded values.
func NewValues(decode ValueDecoder, raw [][]byte) *Values {
	return &Values{decode: decode, raw: raw}
}

// Next returns the next value, or ok=false when exhausted.
func (v *Values) Next() (Value, bool, error) {
	if v.i >= len(v.raw) {
		return nil, false, nil
	}
	val, err := v.decode(v.raw[v.i])
	if err != nil {
		return nil, false, err
	}
	v.i++
	return val, true, nil
}

// Each applies fn to every remaining value.
func (v *Values) Each(fn func(Value) error) error {
	for {
		val, ok, err := v.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := fn(val); err != nil {
			return err
		}
	}
}

// Len returns the total number of values in the group.
func (v *Values) Len() int { return len(v.raw) }

// GroupIterate walks a sorted pair slice group by group, invoking fn once
// per distinct key with an iterator over that key's values.
func GroupIterate(sorted []Pair, decode ValueDecoder, fn func(key string, values *Values) error) error {
	return GroupIterateBy(sorted, decode, nil, fn)
}

// GroupIterateBy groups by groupKey(key) (identity when nil): adjacent
// pairs whose group keys match form one reduce group, with values in
// full-key sorted order — the grouping-comparator semantics behind
// secondary sort. fn receives the group's first full key.
func GroupIterateBy(sorted []Pair, decode ValueDecoder, groupKey func(string) string, fn func(key string, values *Values) error) error {
	gk := func(k string) string { return k }
	if groupKey != nil {
		gk = groupKey
	}
	i := 0
	for i < len(sorted) {
		j := i
		g := gk(sorted[i].Key)
		for j < len(sorted) && gk(sorted[j].Key) == g {
			j++
		}
		raw := make([][]byte, 0, j-i)
		for k := i; k < j; k++ {
			raw = append(raw, sorted[k].Val)
		}
		if err := fn(sorted[i].Key, NewValues(decode, raw)); err != nil {
			return err
		}
		i = j
	}
	return nil
}

// pairCollector is an Emitter that appends encoded pairs to a slice.
type pairCollector struct {
	pairs []Pair
}

func (p *pairCollector) Emit(key string, value Value) error {
	p.pairs = append(p.pairs, Pair{Key: key, Val: value.EncodeValue()})
	return nil
}

// RunCombiner applies the job's combiner to a sorted partition of map
// output, returning the (sorted) combined pairs and updating the combine
// counters. With no combiner configured it returns the input unchanged.
func RunCombiner(ctx *TaskContext, job *Job, sorted []Pair) ([]Pair, error) {
	if job.NewCombiner == nil {
		return sorted, nil
	}
	combiner := job.NewCombiner()
	col := &pairCollector{}
	err := GroupIterate(sorted, job.DecodeValue, func(key string, values *Values) error {
		ctx.Counters.Inc(CtrCombineInputRecords, int64(values.Len()))
		return combiner.Reduce(ctx, key, values, col)
	})
	if err != nil {
		return nil, err
	}
	ctx.Counters.Inc(CtrCombineOutputRecords, int64(len(col.pairs)))
	SortPairs(col.pairs)
	return col.pairs, nil
}

package mapreduce

import (
	"slices"
	"strings"
)

// keyIndex is the sort key the shuffle actually orders by: the record's
// key plus its emission index. Sorting these 24-byte headers (instead of
// swapping full Pair structs through a reflective comparator, as the old
// sort.SliceStable implementation did) keeps the hot comparison loop in
// cache and makes an unstable pattern-defeating quicksort equivalent to a
// stable sort — the index breaks every tie deterministically.
type keyIndex struct {
	key string
	i   int32
}

// SortPairs orders pairs by key. Equal keys keep their emission order so
// that values for a key arrive at the reducer deterministically, which
// several of the course jobs rely on.
//
// Two strategies produce that order. The general path sorts (key, index)
// headers. Duplicate-heavy outputs — counting jobs emit each word
// thousands of times — instead group by key first and sort only the
// distinct keys, turning an O(n log n) comparison sort into O(u log u)
// for u unique keys plus two linear passes. A small sample of the input
// picks the strategy; both yield byte-identical results.
func SortPairs(pairs []Pair) {
	n := len(pairs)
	if n < 2 {
		return
	}
	if n >= dupSampleMinLen && looksDuplicateHeavy(pairs) {
		groupSortPairs(pairs)
		return
	}
	idx := make([]keyIndex, n)
	for i, p := range pairs {
		idx[i] = keyIndex{key: p.Key, i: int32(i)}
	}
	slices.SortFunc(idx, func(a, b keyIndex) int {
		if c := strings.Compare(a.key, b.key); c != 0 {
			return c
		}
		return int(a.i) - int(b.i)
	})
	tmp := make([]Pair, n)
	for i, k := range idx {
		tmp[i] = pairs[k.i]
	}
	copy(pairs, tmp)
}

const (
	dupSampleMinLen = 512 // below this the direct sort always wins
	dupSampleSize   = 64
)

// looksDuplicateHeavy samples evenly spaced keys and reports whether the
// sample repeats keys enough to justify the grouped sort. It is only a
// performance heuristic: either answer leaves the sorted output identical.
func looksDuplicateHeavy(pairs []Pair) bool {
	seen := make(map[string]struct{}, dupSampleSize)
	step := len(pairs) / dupSampleSize
	for i := 0; i < dupSampleSize; i++ {
		seen[pairs[i*step].Key] = struct{}{}
	}
	return len(seen) <= dupSampleSize*3/4
}

// groupSortPairs is the duplicate-heavy strategy: assign each distinct
// key a group, sort the groups, then scatter the pairs into their group's
// output window in emission order.
func groupSortPairs(pairs []Pair) {
	n := len(pairs)
	gids := make([]int32, n)
	gidOf := make(map[string]int32, 64)
	var groups []keyIndex // key plus its group id
	var counts []int32
	for i, p := range pairs {
		g, ok := gidOf[p.Key]
		if !ok {
			g = int32(len(groups))
			gidOf[p.Key] = g
			groups = append(groups, keyIndex{key: p.Key, i: g})
			counts = append(counts, 0)
		}
		gids[i] = g
		counts[g]++
	}
	slices.SortFunc(groups, func(a, b keyIndex) int {
		return strings.Compare(a.key, b.key) // keys are distinct: no ties
	})
	offs := make([]int32, len(groups))
	var off int32
	for _, g := range groups {
		offs[g.i] = off
		off += counts[g.i]
	}
	tmp := make([]Pair, n)
	for i, p := range pairs {
		g := gids[i]
		tmp[offs[g]] = p
		offs[g]++
	}
	copy(pairs, tmp)
}

// mergeCursor is one run's head position inside the k-way merge heap.
type mergeCursor struct {
	run int // index into runs, the deterministic tie-breaker
	pos int
}

// MergeSortedRuns merges pre-sorted runs of pairs (one per map task) into
// a single sorted slice — the reduce-side merge phase. Ties across runs
// resolve in run order, keeping the merge deterministic. Small merges use
// a linear scan over run heads; larger fan-ins switch to a binary heap of
// cursors so the per-record cost is O(log k) comparisons instead of O(k).
func MergeSortedRuns(runs [][]Pair) []Pair {
	total := 0
	nonEmpty := 0
	for _, r := range runs {
		if len(r) > 0 {
			nonEmpty++
			total += len(r)
		}
	}
	out := make([]Pair, 0, total)
	switch nonEmpty {
	case 0:
		return out
	case 1:
		for _, r := range runs {
			if len(r) > 0 {
				return append(out, r...)
			}
		}
	}

	if nonEmpty <= 4 {
		// Cursor-based linear scan: cheap for the common 2–4 run case.
		cur := make([]mergeCursor, 0, nonEmpty)
		for i, r := range runs {
			if len(r) > 0 {
				cur = append(cur, mergeCursor{run: i})
			}
		}
		for len(cur) > 0 {
			best := 0
			for i := 1; i < len(cur); i++ {
				if runs[cur[i].run][cur[i].pos].Key < runs[cur[best].run][cur[best].pos].Key {
					best = i
				}
			}
			c := &cur[best]
			out = append(out, runs[c.run][c.pos])
			c.pos++
			if c.pos == len(runs[c.run]) {
				cur = append(cur[:best], cur[best+1:]...)
			}
		}
		return out
	}

	// Heap merge. less orders by (head key, run index); the run index keeps
	// ties in run order, matching the linear scan exactly.
	h := make([]mergeCursor, 0, nonEmpty)
	less := func(a, b mergeCursor) bool {
		ka, kb := runs[a.run][a.pos].Key, runs[b.run][b.pos].Key
		if ka != kb {
			return ka < kb
		}
		return a.run < b.run
	}
	push := func(c mergeCursor) {
		h = append(h, c)
		for i := len(h) - 1; i > 0; {
			p := (i - 1) / 2
			if !less(h[i], h[p]) {
				break
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	siftDown := func() {
		i := 0
		for {
			l := 2*i + 1
			if l >= len(h) {
				break
			}
			m := l
			if r := l + 1; r < len(h) && less(h[r], h[l]) {
				m = r
			}
			if !less(h[m], h[i]) {
				break
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	for i, r := range runs {
		if len(r) > 0 {
			push(mergeCursor{run: i})
		}
	}
	for len(h) > 0 {
		c := h[0]
		out = append(out, runs[c.run][c.pos])
		c.pos++
		if c.pos < len(runs[c.run]) {
			h[0] = c
			siftDown()
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
			siftDown()
		}
	}
	return out
}

// Values iterates the decoded values of one reduce group. It decodes
// lazily so the raw (metered) bytes are what travelled through the
// shuffle. The backing store is either an explicit [][]byte (NewValues)
// or a window of the sorted pair slice (GroupIterate), the latter so the
// group loop allocates nothing per group.
type Values struct {
	decode ValueDecoder
	raw    [][]byte
	pairs  []Pair
	i      int
}

// NewValues builds an iterator over encoded values.
func NewValues(decode ValueDecoder, raw [][]byte) *Values {
	return &Values{decode: decode, raw: raw}
}

// Next returns the next value, or ok=false when exhausted.
func (v *Values) Next() (Value, bool, error) {
	var enc []byte
	switch {
	case v.pairs != nil:
		if v.i >= len(v.pairs) {
			return nil, false, nil
		}
		enc = v.pairs[v.i].Val
	default:
		if v.i >= len(v.raw) {
			return nil, false, nil
		}
		enc = v.raw[v.i]
	}
	val, err := v.decode(enc)
	if err != nil {
		return nil, false, err
	}
	v.i++
	return val, true, nil
}

// Each applies fn to every remaining value.
func (v *Values) Each(fn func(Value) error) error {
	for {
		val, ok, err := v.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := fn(val); err != nil {
			return err
		}
	}
}

// Len returns the total number of values in the group.
func (v *Values) Len() int {
	if v.pairs != nil {
		return len(v.pairs)
	}
	return len(v.raw)
}

// GroupIterate walks a sorted pair slice group by group, invoking fn once
// per distinct key with an iterator over that key's values.
func GroupIterate(sorted []Pair, decode ValueDecoder, fn func(key string, values *Values) error) error {
	return GroupIterateBy(sorted, decode, nil, fn)
}

// GroupIterateBy groups by groupKey(key) (identity when nil): adjacent
// pairs whose group keys match form one reduce group, with values in
// full-key sorted order — the grouping-comparator semantics behind
// secondary sort. fn receives the group's first full key.
func GroupIterateBy(sorted []Pair, decode ValueDecoder, groupKey func(string) string, fn func(key string, values *Values) error) error {
	i := 0
	for i < len(sorted) {
		j := i + 1
		if groupKey == nil {
			for j < len(sorted) && sorted[j].Key == sorted[i].Key {
				j++
			}
		} else {
			g := groupKey(sorted[i].Key)
			for j < len(sorted) && groupKey(sorted[j].Key) == g {
				j++
			}
		}
		if err := fn(sorted[i].Key, &Values{decode: decode, pairs: sorted[i:j]}); err != nil {
			return err
		}
		i = j
	}
	return nil
}

// pairCollector is an Emitter that appends encoded pairs to a slice.
type pairCollector struct {
	pairs []Pair
}

func (p *pairCollector) Emit(key string, value Value) error {
	p.pairs = append(p.pairs, Pair{Key: key, Val: value.EncodeValue()})
	return nil
}

// RunCombiner applies the job's combiner to a sorted partition of map
// output, returning the (sorted) combined pairs and updating the combine
// counters. With no combiner configured it returns the input unchanged.
func RunCombiner(ctx *TaskContext, job *Job, sorted []Pair) ([]Pair, error) {
	if job.NewCombiner == nil {
		return sorted, nil
	}
	combiner := job.NewCombiner()
	col := &pairCollector{}
	var inRecords int64
	err := GroupIterate(sorted, job.DecodeValue, func(key string, values *Values) error {
		inRecords += int64(values.Len())
		return combiner.Reduce(ctx, key, values, col)
	})
	ctx.Counters.Inc(CtrCombineInputRecords, inRecords)
	if err != nil {
		return nil, err
	}
	ctx.Counters.Inc(CtrCombineOutputRecords, int64(len(col.pairs)))
	SortPairs(col.pairs)
	return col.pairs, nil
}

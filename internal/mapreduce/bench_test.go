package mapreduce

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/vfs"
)

func benchPairs(n int) []Pair {
	rng := rand.New(rand.NewSource(1))
	pairs := make([]Pair, n)
	for i := range pairs {
		pairs[i] = Pair{
			Key: fmt.Sprintf("key-%06d", rng.Intn(n/4+1)),
			Val: Int64(1).EncodeValue(),
		}
	}
	return pairs
}

func BenchmarkSortPairs(b *testing.B) {
	src := benchPairs(100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pairs := append([]Pair(nil), src...)
		SortPairs(pairs)
	}
	b.SetBytes(int64(len(src)) * 20)
}

func BenchmarkMergeSortedRuns(b *testing.B) {
	var runs [][]Pair
	for r := 0; r < 16; r++ {
		run := benchPairs(5000)
		SortPairs(run)
		runs = append(runs, run)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeSortedRuns(runs)
	}
}

func BenchmarkRecordsInRange(b *testing.B) {
	var buf strings.Builder
	for i := 0; i < 20000; i++ {
		fmt.Fprintf(&buf, "line number %d with some payload text\n", i)
	}
	data := []byte(buf.String())
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RecordsInRange(data, 0, 0, int64(len(data)))
	}
}

func BenchmarkExecuteMapWordCount(b *testing.B) {
	job := wordCountJob()
	fs := vfs.NewMemFS()
	var records []Record
	var bytes int64
	for i := 0; i < 5000; i++ {
		line := "the quick brown fox jumps over the lazy dog"
		records = append(records, Record{Offset: bytes, Line: line})
		bytes += int64(len(line)) + 1
	}
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := NewTaskContext("bench", "m0", fs, job)
		if _, err := ExecuteMap(ctx, job, records); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteMapWithCombiner(b *testing.B) {
	job := wordCountJob()
	job.NewCombiner = job.NewReducer
	fs := vfs.NewMemFS()
	var records []Record
	for i := 0; i < 5000; i++ {
		records = append(records, Record{Offset: int64(i * 45), Line: "the quick brown fox jumps over the lazy dog"})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := NewTaskContext("bench", "m0", fs, job)
		if _, err := ExecuteMap(ctx, job, records); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashPartition(b *testing.B) {
	keys := make([]string, 1000)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HashPartition(keys[i%len(keys)], 16)
	}
}

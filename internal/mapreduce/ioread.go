package mapreduce

import (
	"fmt"

	"repro/internal/iofmt"
	"repro/internal/vfs"
)

// Format-aware split reading. Both runtimes fetch input through this one
// dispatch — the serial runner over a plain filesystem, the distributed
// runtime over metered HDFS ranged reads — so a Job behaves identically
// on either, whatever container its input sits in.

// ReadStats meters one split read.
type ReadStats struct {
	// BytesRead is what was fetched from storage — the compressed form
	// for compressed inputs, the fetch window for plain text.
	BytesRead int64
	// BytesDecoded is the logical volume delivered to the mapper after
	// decompression (equal to BytesRead for plain text).
	BytesDecoded int64
	// Compressed reports whether decode CPU was spent on this split.
	Compressed bool
}

// ReadSplit reads the records of one split through a ranged reader,
// dispatching on the file's format:
//
//   - plain text: fetch the split's window and cut line records by the
//     TextInputFormat boundary rule;
//   - whole-stream compressed text (.gz, .lzs): the planner guarantees
//     the split covers the whole file — inflate it and read every line;
//   - SequenceFile (.seq): decode exactly the blocks whose sync marker
//     starts inside the split, rendering each record as a text line.
func ReadSplit(read iofmt.RangeReaderFunc, split FileSplit) ([]Record, ReadStats, error) {
	kind, codec := iofmt.DetectPath(split.Path)
	switch {
	case kind == iofmt.KindSeq:
		return readSeqSplit(read, split)
	case codec != nil:
		return readCompressedText(read, split, codec)
	default:
		return readTextSplit(read, split)
	}
}

func readTextSplit(read iofmt.RangeReaderFunc, split FileSplit) ([]Record, ReadStats, error) {
	fetchStart := split.Offset
	if fetchStart > 0 {
		fetchStart-- // look-back byte: detect a record starting exactly at Offset
	}
	fetchEnd := split.End() + DefaultMaxLineBytes
	if fetchEnd > split.FileSize {
		fetchEnd = split.FileSize
	}
	window, err := read(fetchStart, fetchEnd-fetchStart)
	if err != nil {
		return nil, ReadStats{}, err
	}
	recs := RecordsInRange(window, fetchStart, split.Offset, split.End())
	n := int64(len(window))
	return recs, ReadStats{BytesRead: n, BytesDecoded: n}, nil
}

func readCompressedText(read iofmt.RangeReaderFunc, split FileSplit, codec iofmt.Codec) ([]Record, ReadStats, error) {
	if split.Offset != 0 || split.Length != split.FileSize {
		return nil, ReadStats{}, fmt.Errorf(
			"mapreduce: %s is %s-compressed and not splittable, but got partial split %v",
			split.Path, codec.Name(), split)
	}
	data, err := read(0, split.FileSize)
	if err != nil {
		return nil, ReadStats{}, err
	}
	raw, err := codec.Decompress(data)
	if err != nil {
		return nil, ReadStats{}, fmt.Errorf("inflating %s: %w", split.Path, err)
	}
	recs := RecordsInRange(raw, 0, 0, int64(len(raw)))
	return recs, ReadStats{
		BytesRead:    int64(len(data)),
		BytesDecoded: int64(len(raw)),
		Compressed:   true,
	}, nil
}

func readSeqSplit(read iofmt.RangeReaderFunc, split FileSplit) ([]Record, ReadStats, error) {
	seqRecs, st, err := iofmt.ReadSeqSplit(read, split.FileSize, split.Offset, split.End())
	if err != nil {
		return nil, ReadStats{}, fmt.Errorf("reading %s: %w", split.Path, err)
	}
	recs := make([]Record, len(seqRecs))
	for i, r := range seqRecs {
		recs[i] = Record{Offset: r.Offset, Line: r.TextLine()}
	}
	return recs, ReadStats{
		BytesRead:    st.BytesFetched,
		BytesDecoded: st.RawBytes,
		Compressed:   st.CodecName != "none",
	}, nil
}

// FSRangeReader adapts a file on a plain filesystem to a ranged reader,
// loading the file lazily on first use.
func FSRangeReader(fs vfs.FileSystem, path string) iofmt.RangeReaderFunc {
	var file iofmt.RangeReaderFunc
	return func(off, length int64) ([]byte, error) {
		if file == nil {
			data, err := vfs.ReadFile(fs, path)
			if err != nil {
				return nil, err
			}
			file = iofmt.BytesRangeReader(data)
		}
		return file(off, length)
	}
}

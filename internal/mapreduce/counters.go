package mapreduce

import (
	"fmt"
	"sort"
	"strings"
)

// Standard counter names, mirroring the Hadoop job report the students
// read after each run ("observed through final MapReduce job report").
const (
	CtrMapInputRecords      = "MAP_INPUT_RECORDS"
	CtrMapInputBytes        = "MAP_INPUT_BYTES"
	CtrMapOutputRecords     = "MAP_OUTPUT_RECORDS"
	CtrMapOutputBytes       = "MAP_OUTPUT_BYTES"
	CtrCombineInputRecords  = "COMBINE_INPUT_RECORDS"
	CtrCombineOutputRecords = "COMBINE_OUTPUT_RECORDS"
	CtrReduceInputGroups    = "REDUCE_INPUT_GROUPS"
	CtrReduceInputRecords   = "REDUCE_INPUT_RECORDS"
	CtrReduceOutputRecords  = "REDUCE_OUTPUT_RECORDS"
	CtrShuffleBytes         = "SHUFFLE_BYTES"
	CtrSpilledRecords       = "SPILLED_RECORDS"
	// CtrInputDecodedBytes is the logical input volume after any codec
	// ran; with compressed inputs it exceeds the bytes read off storage.
	CtrInputDecodedBytes = "INPUT_DECODED_BYTES"
	// CtrOutputRawBytes is the logical reduce output before output
	// compression; the committed part files may be smaller.
	CtrOutputRawBytes = "OUTPUT_RAW_BYTES"

	CtrHDFSBytesRead     = "HDFS_BYTES_READ"
	CtrHDFSBytesWritten  = "HDFS_BYTES_WRITTEN"
	CtrFileBytesRead     = "FILE_BYTES_READ"
	CtrFileBytesWritten  = "FILE_BYTES_WRITTEN"
	CtrSideFileOpens     = "SIDE_FILE_OPENS"
	CtrSideFileBytesRead = "SIDE_FILE_BYTES_READ"

	CtrDataLocalMaps = "DATA_LOCAL_MAPS"
	CtrRackLocalMaps = "RACK_LOCAL_MAPS"
	CtrRemoteMaps    = "OTHER_LOCAL_MAPS"

	CtrLaunchedMaps       = "TOTAL_LAUNCHED_MAPS"
	CtrLaunchedReduces    = "TOTAL_LAUNCHED_REDUCES"
	CtrFailedMaps         = "FAILED_MAP_ATTEMPTS"
	CtrFailedReduces      = "FAILED_REDUCE_ATTEMPTS"
	CtrSpeculativeLaunch  = "SPECULATIVE_ATTEMPTS_LAUNCHED"
	CtrSpeculativeWon     = "SPECULATIVE_ATTEMPTS_WON"
	CtrMapperMemoryPeak   = "MAPPER_MEMORY_PEAK_BYTES"
	CtrReducerMemoryPeak  = "REDUCER_MEMORY_PEAK_BYTES"
	CtrTaskRetries        = "TASK_RETRIES"
	CtrKilledTaskAttempts = "KILLED_TASK_ATTEMPTS"
)

// Counters is a named set of int64 metrics. A Counters value is owned by a
// single task while it runs and merged into the job total afterwards, so
// no locking is needed on the hot path.
type Counters struct {
	m map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]int64)}
}

// Inc adds delta to the named counter.
func (c *Counters) Inc(name string, delta int64) {
	c.m[name] += delta
}

// Get returns the value of the named counter (zero if never set).
func (c *Counters) Get(name string) int64 { return c.m[name] }

// Set overwrites the named counter.
func (c *Counters) Set(name string, v int64) { c.m[name] = v }

// Max raises the named counter to v if v is larger (for peak metrics).
func (c *Counters) Max(name string, v int64) {
	if v > c.m[name] {
		c.m[name] = v
	}
}

// Merge adds every counter from other into c. Peak counters are merged by
// maximum; everything else by sum.
func (c *Counters) Merge(other *Counters) {
	for k, v := range other.m {
		if isPeakCounter(k) {
			c.Max(k, v)
		} else {
			c.m[k] += v
		}
	}
}

func isPeakCounter(name string) bool {
	return strings.HasSuffix(name, "_PEAK_BYTES")
}

// Names returns the counter names in sorted order.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.m))
	for k := range c.m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of the underlying map.
func (c *Counters) Snapshot() map[string]int64 {
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// String renders the counters like the tail of a Hadoop job report.
func (c *Counters) String() string {
	var b strings.Builder
	for _, name := range c.Names() {
		fmt.Fprintf(&b, "    %s=%d\n", name, c.m[name])
	}
	return b.String()
}

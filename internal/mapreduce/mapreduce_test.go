package mapreduce

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/vfs"
)

func TestValueCodecsRoundTrip(t *testing.T) {
	if err := quick.Check(func(i int64, f float64, s string) bool {
		vi, err := DecodeInt64(Int64(i).EncodeValue())
		if err != nil || vi.(Int64) != Int64(i) {
			return false
		}
		vf, err := DecodeFloat64(Float64(f).EncodeValue())
		if err != nil {
			return false
		}
		if f == f && vf.(Float64) != Float64(f) { // skip NaN identity
			return false
		}
		vs, err := DecodeText(Text(s).EncodeValue())
		return err == nil && vs.(Text) == Text(s)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeInt64BadLength(t *testing.T) {
	if _, err := DecodeInt64([]byte{1, 2}); err == nil {
		t.Fatal("short Int64 decoded")
	}
	if _, err := DecodeFloat64([]byte{1}); err == nil {
		t.Fatal("short Float64 decoded")
	}
}

func TestHashPartitionInRange(t *testing.T) {
	if err := quick.Check(func(key string, n uint8) bool {
		parts := int(n%32) + 1
		p := HashPartition(key, parts)
		return p >= 0 && p < parts
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashPartitionDeterministic(t *testing.T) {
	if HashPartition("alpha", 7) != HashPartition("alpha", 7) {
		t.Fatal("partitioner is not deterministic")
	}
}

// --- record reading ---

func linesOf(data []byte) []string {
	var out []string
	for _, l := range strings.Split(string(data), "\n") {
		out = append(out, strings.TrimSuffix(l, "\r"))
	}
	// Trailing newline produces one empty trailing element that is not a record.
	if len(out) > 0 && out[len(out)-1] == "" && len(data) > 0 && data[len(data)-1] == '\n' {
		out = out[:len(out)-1]
	}
	if len(data) == 0 {
		return nil
	}
	return out
}

func TestRecordsInRangeWholeFile(t *testing.T) {
	data := []byte("one\ntwo\nthree")
	recs := RecordsInRange(data, 0, 0, int64(len(data)))
	want := []Record{{0, "one"}, {4, "two"}, {8, "three"}}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("got %v want %v", recs, want)
	}
}

func TestRecordsInRangeCRLF(t *testing.T) {
	data := []byte("a\r\nb\r\n")
	recs := RecordsInRange(data, 0, 0, int64(len(data)))
	if len(recs) != 2 || recs[0].Line != "a" || recs[1].Line != "b" {
		t.Fatalf("CRLF records: %v", recs)
	}
}

func TestRecordsSplitBoundaryProperty(t *testing.T) {
	// Property: for any content and any split size, concatenating the
	// records of consecutive splits yields exactly the file's lines, each
	// once, in order — the fundamental TextInputFormat invariant.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		nLines := rng.Intn(20)
		var buf bytes.Buffer
		for i := 0; i < nLines; i++ {
			fmt.Fprintf(&buf, "line-%d-%s", i, strings.Repeat("x", rng.Intn(30)))
			if i < nLines-1 || rng.Intn(2) == 0 {
				buf.WriteByte('\n')
			}
		}
		data := buf.Bytes()
		if len(data) == 0 {
			continue
		}
		splitSize := int64(rng.Intn(25) + 1)
		var got []string
		for off := int64(0); off < int64(len(data)); off += splitSize {
			end := off + splitSize
			if end > int64(len(data)) {
				end = int64(len(data))
			}
			for _, r := range RecordsInRange(data, 0, off, end) {
				got = append(got, r.Line)
			}
		}
		want := linesOf(data)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d splitSize %d:\n got %q\nwant %q\ndata %q", trial, splitSize, got, want, data)
		}
	}
}

func TestRecordsInRangeWithDataWindow(t *testing.T) {
	// The distributed runtime passes a window that starts one byte before
	// the split; verify offsets stay file-absolute.
	file := []byte("aaaa\nbbbb\ncccc\n")
	off, end := int64(5), int64(10)
	window := file[off-1:]
	recs := RecordsInRange(window, off-1, off, end)
	if len(recs) != 1 || recs[0].Line != "bbbb" || recs[0].Offset != 5 {
		t.Fatalf("window records: %v", recs)
	}
}

func TestComputeSplitsCoverage(t *testing.T) {
	fs := vfs.NewMemFS()
	if err := vfs.WriteFile(fs, "/in/a.txt", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/in/b.txt", make([]byte, 45)); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/in/empty.txt", nil); err != nil {
		t.Fatal(err)
	}
	splits, err := ComputeSplits(fs, []string{"/in"}, 40)
	if err != nil {
		t.Fatal(err)
	}
	// a.txt: 40+40+20, b.txt: 40+5.
	if len(splits) != 5 {
		t.Fatalf("got %d splits: %v", len(splits), splits)
	}
	covered := map[string]int64{}
	for _, s := range splits {
		covered[s.Path] += s.Length
		if s.Length <= 0 || s.Length > 40 {
			t.Fatalf("bad split length: %v", s)
		}
	}
	if covered["/in/a.txt"] != 100 || covered["/in/b.txt"] != 45 {
		t.Fatalf("coverage: %v", covered)
	}
}

func TestReadSplitRecords(t *testing.T) {
	fs := vfs.NewMemFS()
	content := "alpha\nbeta\ngamma\ndelta\n"
	if err := vfs.WriteFile(fs, "/f.txt", []byte(content)); err != nil {
		t.Fatal(err)
	}
	splits, err := ComputeSplits(fs, []string{"/f.txt"}, 7)
	if err != nil {
		t.Fatal(err)
	}
	var all []string
	for _, s := range splits {
		recs, _, err := ReadSplitRecords(fs, s)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			all = append(all, r.Line)
		}
	}
	want := []string{"alpha", "beta", "gamma", "delta"}
	if !reflect.DeepEqual(all, want) {
		t.Fatalf("records across splits = %v", all)
	}
}

// --- sorting, merging, grouping ---

func TestSortPairsStable(t *testing.T) {
	pairs := []Pair{{"b", []byte{2}}, {"a", []byte{1}}, {"b", []byte{1}}, {"a", []byte{2}}}
	SortPairs(pairs)
	want := []Pair{{"a", []byte{1}}, {"a", []byte{2}}, {"b", []byte{2}}, {"b", []byte{1}}}
	if !reflect.DeepEqual(pairs, want) {
		t.Fatalf("got %v", pairs)
	}
}

func TestMergeSortedRunsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		var runs [][]Pair
		var all []string
		for r := 0; r < rng.Intn(5); r++ {
			var run []Pair
			for i := 0; i < rng.Intn(10); i++ {
				k := fmt.Sprintf("k%02d", rng.Intn(20))
				run = append(run, Pair{Key: k})
				all = append(all, k)
			}
			SortPairs(run)
			runs = append(runs, run)
		}
		merged := MergeSortedRuns(runs)
		if len(merged) != len(all) {
			t.Fatalf("merged %d of %d pairs", len(merged), len(all))
		}
		sort.Strings(all)
		for i, p := range merged {
			if p.Key != all[i] {
				t.Fatalf("merge out of order at %d: %s vs %s", i, p.Key, all[i])
			}
		}
	}
}

func TestGroupIterate(t *testing.T) {
	pairs := []Pair{
		{"a", Int64(1).EncodeValue()},
		{"a", Int64(2).EncodeValue()},
		{"b", Int64(3).EncodeValue()},
	}
	groups := map[string]int64{}
	err := GroupIterate(pairs, DecodeInt64, func(key string, values *Values) error {
		var sum int64
		if err := values.Each(func(v Value) error {
			sum += int64(v.(Int64))
			return nil
		}); err != nil {
			return err
		}
		groups[key] = sum
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if groups["a"] != 3 || groups["b"] != 3 || len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
}

func TestValuesLenAndExhaustion(t *testing.T) {
	v := NewValues(DecodeInt64, [][]byte{Int64(5).EncodeValue()})
	if v.Len() != 1 {
		t.Fatalf("len = %d", v.Len())
	}
	if _, ok, _ := v.Next(); !ok {
		t.Fatal("first Next failed")
	}
	if _, ok, _ := v.Next(); ok {
		t.Fatal("iterator did not exhaust")
	}
}

// --- counters ---

func TestCountersMergeSumsAndPeaks(t *testing.T) {
	a, b := NewCounters(), NewCounters()
	a.Inc(CtrMapInputRecords, 10)
	b.Inc(CtrMapInputRecords, 5)
	a.Max(CtrMapperMemoryPeak, 100)
	b.Max(CtrMapperMemoryPeak, 300)
	a.Merge(b)
	if a.Get(CtrMapInputRecords) != 15 {
		t.Fatalf("sum counter = %d", a.Get(CtrMapInputRecords))
	}
	if a.Get(CtrMapperMemoryPeak) != 300 {
		t.Fatalf("peak counter = %d", a.Get(CtrMapperMemoryPeak))
	}
}

func TestCountersMergeAdditiveProperty(t *testing.T) {
	// Property: merging task counters in any order yields the same totals.
	if err := quick.Check(func(vals []uint16) bool {
		fwd, rev := NewCounters(), NewCounters()
		for _, v := range vals {
			c := NewCounters()
			c.Inc("X", int64(v))
			fwd.Merge(c)
		}
		for i := len(vals) - 1; i >= 0; i-- {
			c := NewCounters()
			c.Inc("X", int64(vals[i]))
			rev.Merge(c)
		}
		return fwd.Get("X") == rev.Get("X")
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountersString(t *testing.T) {
	c := NewCounters()
	c.Inc("B", 2)
	c.Inc("A", 1)
	s := c.String()
	if !strings.Contains(s, "A=1") || strings.Index(s, "A=1") > strings.Index(s, "B=2") {
		t.Fatalf("counter string not sorted: %q", s)
	}
}

// --- job validation & context ---

func wordCountJob() *Job {
	return &Job{
		Name: "wc",
		NewMapper: func() Mapper {
			return MapperFunc(func(ctx *TaskContext, off int64, line string, out Emitter) error {
				for _, w := range strings.Fields(line) {
					if err := out.Emit(w, Int64(1)); err != nil {
						return err
					}
				}
				return nil
			})
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(ctx *TaskContext, key string, values *Values, out Emitter) error {
				var sum int64
				if err := values.Each(func(v Value) error { sum += int64(v.(Int64)); return nil }); err != nil {
					return err
				}
				return out.Emit(key, Int64(sum))
			})
		},
		DecodeValue: DecodeInt64,
		InputPaths:  []string{"/in"},
		OutputPath:  "/out",
	}
}

func TestJobValidate(t *testing.T) {
	j := wordCountJob()
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *j
	bad.NewMapper = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("nil mapper validated")
	}
	bad2 := *j
	bad2.OutputPath = ""
	if err := bad2.Validate(); err == nil {
		t.Fatal("empty output validated")
	}
	bad3 := *j
	bad3.NumReducers = -1
	if err := bad3.Validate(); err == nil {
		t.Fatal("negative reducers validated")
	}
}

func TestExecuteMapAndReduceEndToEnd(t *testing.T) {
	job := wordCountJob()
	fs := vfs.NewMemFS()
	ctx := NewTaskContext("wc", "m0", fs, job)
	records := []Record{{0, "the quick the"}, {14, "quick fox"}}
	out, err := ExecuteMap(ctx, job, records)
	if err != nil {
		t.Fatal(err)
	}
	if got := ctx.Counters.Get(CtrMapInputRecords); got != 2 {
		t.Fatalf("map input records = %d", got)
	}
	if got := ctx.Counters.Get(CtrMapOutputRecords); got != 5 {
		t.Fatalf("map output records = %d", got)
	}
	var buf bytes.Buffer
	rctx := NewTaskContext("wc", "r0", fs, job)
	if _, err := ExecuteReduce(rctx, job, out.Partitions, &buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{"the\t2", "quick\t2", "fox\t1"} {
		if !strings.Contains(got, want) {
			t.Fatalf("reduce output missing %q:\n%s", want, got)
		}
	}
	if rctx.Counters.Get(CtrReduceInputGroups) != 3 {
		t.Fatalf("groups = %d", rctx.Counters.Get(CtrReduceInputGroups))
	}
}

func TestCombinerPreservesTotals(t *testing.T) {
	job := wordCountJob()
	job.NewCombiner = job.NewReducer // reducer-as-combiner, as in the lecture
	fs := vfs.NewMemFS()

	records := []Record{{0, "a a a b b c"}}
	ctxC := NewTaskContext("wc", "m0", fs, job)
	outC, err := ExecuteMap(ctxC, job, records)
	if err != nil {
		t.Fatal(err)
	}

	plain := wordCountJob()
	ctxP := NewTaskContext("wc", "m0", fs, plain)
	outP, err := ExecuteMap(ctxP, plain, records)
	if err != nil {
		t.Fatal(err)
	}

	// Combiner must shrink the map output...
	if outC.Records() >= outP.Records() {
		t.Fatalf("combiner did not reduce records: %d vs %d", outC.Records(), outP.Records())
	}
	if outC.Bytes() >= outP.Bytes() {
		t.Fatalf("combiner did not reduce bytes: %d vs %d", outC.Bytes(), outP.Bytes())
	}
	// ...without changing the final answer.
	var bufC, bufP bytes.Buffer
	if _, err := ExecuteReduce(NewTaskContext("wc", "r0", fs, job), job, outC.Partitions, &bufC); err != nil {
		t.Fatal(err)
	}
	if _, err := ExecuteReduce(NewTaskContext("wc", "r0", fs, plain), plain, outP.Partitions, &bufP); err != nil {
		t.Fatal(err)
	}
	if bufC.String() != bufP.String() {
		t.Fatalf("combiner changed results:\n%s\nvs\n%s", bufC.String(), bufP.String())
	}
}

func TestSideFileAccessMetered(t *testing.T) {
	fs := vfs.NewMemFS()
	if err := vfs.WriteFile(fs, "/side/genres.dat", []byte("1::Action\n")); err != nil {
		t.Fatal(err)
	}
	job := wordCountJob()
	job.SideFiles = []string{"/side/genres.dat"}
	ctx := NewTaskContext("j", "m0", fs, job)
	for i := 0; i < 3; i++ {
		if _, err := ctx.ReadSideFile("/side/genres.dat"); err != nil {
			t.Fatal(err)
		}
	}
	if ctx.Counters.Get(CtrSideFileOpens) != 3 {
		t.Fatalf("opens = %d", ctx.Counters.Get(CtrSideFileOpens))
	}
	if ctx.Counters.Get(CtrSideFileBytesRead) != 30 {
		t.Fatalf("bytes = %d", ctx.Counters.Get(CtrSideFileBytesRead))
	}
	if _, err := ctx.ReadSideFile("/not/declared"); err == nil {
		t.Fatal("undeclared side file readable")
	}
}

func TestObserveMemoryPeak(t *testing.T) {
	fs := vfs.NewMemFS()
	ctx := NewTaskContext("j", "m0", fs, wordCountJob())
	ctx.ObserveMemory(100)
	ctx.ObserveMemory(200)
	ctx.ObserveMemory(-250)
	ctx.ObserveMemory(50)
	if peak := ctx.Counters.Get(CtrMapperMemoryPeak); peak != 300 {
		t.Fatalf("peak = %d, want 300", peak)
	}
}

func TestPartitionName(t *testing.T) {
	if PartitionName(3) != "part-r-00003" {
		t.Fatalf("name = %s", PartitionName(3))
	}
}

func TestMapperLifecycleHooks(t *testing.T) {
	type hookMapper struct {
		MapperFunc
		setup, closed *bool
	}
	// Build a mapper with Setup and Close via a struct type.
	var setup, closed bool
	job := wordCountJob()
	job.NewMapper = func() Mapper {
		return &lifecycleMapper{setup: &setup, closed: &closed}
	}
	_ = hookMapper{}
	fs := vfs.NewMemFS()
	ctx := NewTaskContext("j", "m0", fs, job)
	if _, err := ExecuteMap(ctx, job, []Record{{0, "x"}}); err != nil {
		t.Fatal(err)
	}
	if !setup || !closed {
		t.Fatalf("lifecycle hooks: setup=%v closed=%v", setup, closed)
	}
}

type lifecycleMapper struct {
	setup, closed *bool
}

func (m *lifecycleMapper) Setup(ctx *TaskContext) error { *m.setup = true; return nil }
func (m *lifecycleMapper) Map(ctx *TaskContext, off int64, line string, out Emitter) error {
	return out.Emit(line, Int64(1))
}
func (m *lifecycleMapper) Close(ctx *TaskContext, out Emitter) error {
	*m.closed = true
	return out.Emit("from-close", Int64(1))
}

func TestSpillBoundedBufferSameAnswer(t *testing.T) {
	// Property: the spill threshold must never change results — only the
	// SPILLED_RECORDS accounting and combiner effectiveness.
	fs := vfs.NewMemFS()
	records := []Record{}
	off := int64(0)
	for i := 0; i < 200; i++ {
		line := "alpha beta gamma alpha beta alpha"
		records = append(records, Record{Offset: off, Line: line})
		off += int64(len(line)) + 1
	}
	var outputs []string
	var spilled []int64
	for _, spillAt := range []int{0, 7, 100, 100000} {
		job := wordCountJob()
		job.NewCombiner = job.NewReducer
		job.SpillRecords = spillAt
		ctx := NewTaskContext("wc", "m0", fs, job)
		out, err := ExecuteMap(ctx, job, records)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		rctx := NewTaskContext("wc", "r0", fs, job)
		if _, err := ExecuteReduce(rctx, job, out.Partitions, &buf); err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, buf.String())
		spilled = append(spilled, ctx.Counters.Get(CtrSpilledRecords))
	}
	for i := 1; i < len(outputs); i++ {
		if outputs[i] != outputs[0] {
			t.Fatalf("spill threshold changed results:\n%s\nvs\n%s", outputs[i], outputs[0])
		}
	}
	// A tight buffer spills more records than an unbounded one: each spill
	// combines only its own window.
	if spilled[1] <= spilled[3] {
		t.Fatalf("tight buffer should spill more: %v", spilled)
	}
}

func TestSpillEachWindowCombined(t *testing.T) {
	// With a 1-record buffer every spill is one record; the merge-combine
	// still collapses them to one pair per key.
	fs := vfs.NewMemFS()
	job := wordCountJob()
	job.NewCombiner = job.NewReducer
	job.SpillRecords = 1
	ctx := NewTaskContext("wc", "m0", fs, job)
	out, err := ExecuteMap(ctx, job, []Record{{0, "x x x y"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Records(); got != 2 {
		t.Fatalf("final partition records = %d, want 2 (x and y)", got)
	}
}

package mapreduce

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/iofmt"
	"repro/internal/vfs"
)

// DefaultMaxLineBytes bounds how far past a split's end a reader must
// fetch to complete the split's final record.
const DefaultMaxLineBytes = 1 << 20

// Record is one text input record: the line and its byte offset in the
// file, exactly the (key, value) pair Hadoop's TextInputFormat delivers.
type Record struct {
	Offset int64
	Line   string
}

// FileSplit is a contiguous byte range of one input file assigned to one
// map task. Hosts lists hostnames holding the data locally (empty for
// non-replicated filesystems); the distributed scheduler uses it for
// locality.
type FileSplit struct {
	Path     string
	Offset   int64
	Length   int64
	FileSize int64
	Hosts    []string
}

// End returns the exclusive end offset of the split.
func (s FileSplit) End() int64 { return s.Offset + s.Length }

func (s FileSplit) String() string {
	return fmt.Sprintf("%s:%d+%d", s.Path, s.Offset, s.Length)
}

// ComputeSplits expands the input paths (files or directories) on fs and
// carves each file into splits of at most splitSize bytes. Empty files
// yield no splits. Files whose format cannot be split — whole-stream
// compressed text like .gz — become exactly one split covering the whole
// file, which is how gzipping an input silently caps a job at one map
// task.
func ComputeSplits(fs vfs.FileSystem, inputs []string, splitSize int64) ([]FileSplit, error) {
	if splitSize <= 0 {
		splitSize = DefaultSplitSize
	}
	var files []vfs.FileInfo
	for _, in := range inputs {
		err := vfs.Walk(fs, in, func(fi vfs.FileInfo) error {
			files = append(files, fi)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(files, func(i, j int) bool { return files[i].Path < files[j].Path })
	var splits []FileSplit
	for _, f := range files {
		if f.Size == 0 {
			continue
		}
		if !iofmt.SplittablePath(f.Path) {
			splits = append(splits, FileSplit{
				Path: f.Path, Offset: 0, Length: f.Size, FileSize: f.Size,
			})
			continue
		}
		for off := int64(0); off < f.Size; off += splitSize {
			length := splitSize
			if off+length > f.Size {
				length = f.Size - off
			}
			splits = append(splits, FileSplit{
				Path: f.Path, Offset: off, Length: length, FileSize: f.Size,
			})
		}
	}
	return splits, nil
}

// RecordsInRange extracts the records belonging to the split [off, end) of
// a file from data, where data holds the file bytes starting at absolute
// offset dataStart. The caller must supply data reaching at least one byte
// before off (when off > 0, to detect whether a record starts exactly at
// off) and far enough past end to complete the final record or reach EOF.
//
// Record-boundary rule (Hadoop TextInputFormat): a record belongs to the
// split containing its first byte; a split whose start lands mid-record
// skips forward to the next record; the split containing a record's start
// reads past its own end to finish that record.
func RecordsInRange(data []byte, dataStart, off, end int64) []Record {
	pos := off
	if off > 0 {
		// Start one byte early: the first newline found tells us where the
		// first record owned by this split begins.
		scanFrom := off - 1 - dataStart
		if scanFrom < 0 {
			scanFrom = 0
		}
		nl := bytes.IndexByte(data[scanFrom:], '\n')
		if nl < 0 {
			return nil // split is entirely inside one record owned by a predecessor
		}
		pos = dataStart + scanFrom + int64(nl) + 1
	}
	var out []Record
	for pos < end {
		i := pos - dataStart
		if i >= int64(len(data)) {
			break
		}
		nl := bytes.IndexByte(data[i:], '\n')
		var line []byte
		var next int64
		if nl < 0 {
			line = data[i:]
			next = dataStart + int64(len(data))
			if len(line) == 0 {
				break
			}
		} else {
			line = data[i : i+int64(nl)]
			next = pos + int64(nl) + 1
		}
		line = bytes.TrimSuffix(line, []byte{'\r'})
		out = append(out, Record{Offset: pos, Line: string(line)})
		pos = next
		if nl < 0 {
			break
		}
	}
	return out
}

// ReadSplitRecords reads the records of one split from fs, dispatching
// on the file's format (plain text, compressed text, SequenceFile) via
// ReadSplit. Returns the records and the read statistics.
func ReadSplitRecords(fs vfs.FileSystem, split FileSplit) ([]Record, ReadStats, error) {
	return ReadSplit(FSRangeReader(fs, split.Path), split)
}

// Package mapreduce implements the MapReduce programming model the course
// teaches: mappers, reducers, combiners, custom value classes (Hadoop's
// Writable pattern), partitioners, counters, and text input with splits
// that respect record boundaries. The package is runtime-agnostic — the
// same Job runs on the serial standalone runner (assignment 1) and on the
// distributed JobTracker/TaskTracker runtime over HDFS (assignment 2)
// without modification.
package mapreduce

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
)

// Value is the Writable-style value contract. Values cross the shuffle as
// encoded bytes, so custom value classes (like the airline assignment's
// sum+count pair) control their own wire size — and the framework can
// meter real shuffle bytes.
type Value interface {
	// EncodeValue serialises the value for the shuffle or output.
	EncodeValue() []byte
	// String renders the value for text output files.
	String() string
}

// ValueDecoder reconstructs a Value from its encoded form. Each Job names
// one decoder for the values its mappers emit.
type ValueDecoder func([]byte) (Value, error)

// Text is a string Value.
type Text string

func (t Text) EncodeValue() []byte { return []byte(t) }
func (t Text) String() string      { return string(t) }

// DecodeText decodes a Text value.
func DecodeText(b []byte) (Value, error) { return Text(b), nil }

// Int64 is an integer Value (Hadoop's LongWritable).
type Int64 int64

// smallInt64Enc holds the shared encodings of the smallest Int64 values.
// Counting jobs emit Int64(1) once per input token, so interning the
// encoding removes one 8-byte allocation per emitted record. The slices
// are shared: encoded values are read-only once emitted (they travel the
// shuffle and output paths untouched), which is what makes this safe.
var smallInt64Enc = func() [32][]byte {
	var encs [32][]byte
	backing := make([]byte, 8*len(encs))
	for i := range encs {
		b := backing[8*i : 8*i+8]
		binary.BigEndian.PutUint64(b, uint64(i))
		encs[i] = b
	}
	return encs
}()

func (v Int64) EncodeValue() []byte {
	if v >= 0 && int64(v) < int64(len(smallInt64Enc)) {
		return smallInt64Enc[v]
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(v))
	return buf[:]
}
func (v Int64) String() string { return strconv.FormatInt(int64(v), 10) }

// DecodeInt64 decodes an Int64 value.
func DecodeInt64(b []byte) (Value, error) {
	if len(b) != 8 {
		return nil, fmt.Errorf("mapreduce: Int64 wants 8 bytes, got %d", len(b))
	}
	return Int64(binary.BigEndian.Uint64(b)), nil
}

// Float64 is a floating-point Value (Hadoop's DoubleWritable).
type Float64 float64

func (v Float64) EncodeValue() []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], math.Float64bits(float64(v)))
	return buf[:]
}
func (v Float64) String() string { return strconv.FormatFloat(float64(v), 'g', -1, 64) }

// DecodeFloat64 decodes a Float64 value.
func DecodeFloat64(b []byte) (Value, error) {
	if len(b) != 8 {
		return nil, fmt.Errorf("mapreduce: Float64 wants 8 bytes, got %d", len(b))
	}
	return Float64(math.Float64frombits(binary.BigEndian.Uint64(b))), nil
}

// Pair is one key/value record with the value in encoded form, as it
// travels through sort and shuffle.
type Pair struct {
	Key string
	Val []byte
}

// Bytes returns the wire size of the pair, the unit the shuffle meters.
func (p Pair) Bytes() int64 { return int64(len(p.Key) + len(p.Val)) }

// PartitionFunc routes a key to one of n reducers.
type PartitionFunc func(key string, n int) int

// HashPartition is the default partitioner (FNV-1a, like Hadoop's
// HashPartitioner modulo semantics).
func HashPartition(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// Emitter receives key/value pairs from map and reduce functions.
type Emitter interface {
	Emit(key string, value Value) error
}

// EmitterFunc adapts a function to the Emitter interface.
type EmitterFunc func(key string, value Value) error

// Emit calls f.
func (f EmitterFunc) Emit(key string, value Value) error { return f(key, value) }

// Mapper processes one input record: the byte offset of the line within
// its file and the line text (Hadoop TextInputFormat semantics).
type Mapper interface {
	Map(ctx *TaskContext, offset int64, line string, out Emitter) error
}

// Reducer processes one key group. Combiners are Reducers, exactly as in
// Hadoop ("WordCount using the reducer as a combiner").
type Reducer interface {
	Reduce(ctx *TaskContext, key string, values *Values, out Emitter) error
}

// Setupper is an optional lifecycle hook run once per task before any
// records. The efficient side-data pattern from the movie assignment
// ("a Java object that reads the additional file once") lives here.
type Setupper interface {
	Setup(ctx *TaskContext) error
}

// Closer is an optional lifecycle hook run once per task after all
// records, with a live emitter. In-mapper combining flushes its in-memory
// aggregates from Close.
type Closer interface {
	Close(ctx *TaskContext, out Emitter) error
}

// MapperFunc adapts a function to Mapper.
type MapperFunc func(ctx *TaskContext, offset int64, line string, out Emitter) error

// Map calls f.
func (f MapperFunc) Map(ctx *TaskContext, offset int64, line string, out Emitter) error {
	return f(ctx, offset, line, out)
}

// ReducerFunc adapts a function to Reducer.
type ReducerFunc func(ctx *TaskContext, key string, values *Values, out Emitter) error

// Reduce calls f.
func (f ReducerFunc) Reduce(ctx *TaskContext, key string, values *Values, out Emitter) error {
	return f(ctx, key, values, out)
}

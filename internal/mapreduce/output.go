package mapreduce

import (
	"bytes"

	"repro/internal/iofmt"
)

// Output formats a Job may declare.
const (
	// OutputFormatText writes the classic "key<TAB>value" lines
	// (the default).
	OutputFormatText = "text"
	// OutputFormatSeq writes SequenceFiles whose records keep key and
	// value separate — what chained jobs read back without re-parsing,
	// and what stays splittable even when compressed.
	OutputFormatSeq = "seq"
)

// RecordWriter receives reduce output as structured records. When the
// writer handed to ExecuteReduce implements it, output flows through
// WriteRecord instead of being rendered to text lines.
type RecordWriter interface {
	WriteRecord(key, val string) error
}

// OutputStats meters one finished output part.
type OutputStats struct {
	// RawBytes is the logical output volume before compression.
	RawBytes int64
	// FileBytes is what actually lands on storage.
	FileBytes int64
}

// OutputWriter buffers one reduce partition's records and encodes them
// in the job's declared output format and codec. Both runtimes commit
// parts through it, so a format change never forks their behaviour.
type OutputWriter struct {
	codec  iofmt.Codec
	text   bytes.Buffer
	seqBuf bytes.Buffer
	seq    *iofmt.SeqWriter
}

// NewOutputWriter builds the writer for one reduce partition of job.
func NewOutputWriter(job *Job) (*OutputWriter, error) {
	codec, err := iofmt.ByName(job.OutputCodec)
	if err != nil {
		return nil, err
	}
	w := &OutputWriter{codec: codec}
	if job.outputFormat() == OutputFormatSeq {
		sw, err := iofmt.NewSeqWriter(&w.seqBuf, iofmt.SeqWriterOptions{Codec: codec})
		if err != nil {
			return nil, err
		}
		w.seq = sw
	}
	return w, nil
}

// WriteRecord adds one reduce output record.
func (w *OutputWriter) WriteRecord(key, val string) error {
	if w.seq != nil {
		return w.seq.AppendString(key, val)
	}
	w.text.Grow(len(key) + len(val) + 2)
	w.text.WriteString(key)
	w.text.WriteByte('\t')
	w.text.WriteString(val)
	w.text.WriteByte('\n')
	return nil
}

// Write satisfies io.Writer call sites; bytes land in the text buffer
// verbatim. ExecuteReduce prefers WriteRecord.
func (w *OutputWriter) Write(p []byte) (int, error) { return w.text.Write(p) }

// Finish closes the container and returns the encoded part file bytes.
func (w *OutputWriter) Finish() ([]byte, OutputStats, error) {
	if w.seq != nil {
		if err := w.seq.Close(); err != nil {
			return nil, OutputStats{}, err
		}
		return w.seqBuf.Bytes(), OutputStats{
			RawBytes:  w.seq.RawBytes,
			FileBytes: int64(w.seqBuf.Len()),
		}, nil
	}
	raw := w.text.Bytes()
	if w.codec == nil {
		n := int64(len(raw))
		return raw, OutputStats{RawBytes: n, FileBytes: n}, nil
	}
	enc, err := w.codec.Compress(raw)
	if err != nil {
		return nil, OutputStats{}, err
	}
	return enc, OutputStats{RawBytes: int64(len(raw)), FileBytes: int64(len(enc))}, nil
}

package mapreduce

import (
	"errors"
	"fmt"

	"repro/internal/iofmt"
	"repro/internal/vfs"
)

// Default tuning knobs (Hadoop 1.x era defaults, scaled for teaching).
const (
	DefaultSplitSize   = 4 << 20 // stand-alone mode split size
	DefaultNumReducers = 1
)

// Job describes one MapReduce program: the user code, the data paths and
// the tuning knobs. The same Job value is accepted by the serial runner
// and the distributed runtime.
type Job struct {
	// Name labels the job in reports.
	Name string
	// NewMapper constructs a fresh Mapper per map task (tasks may hold
	// per-task state, e.g. in-mapper combining aggregates).
	NewMapper func() Mapper
	// NewReducer constructs a fresh Reducer per reduce task.
	NewReducer func() Reducer
	// NewCombiner optionally constructs a map-side combiner. As in Hadoop,
	// it must be an associative, commutative reduction whose output type
	// equals its input type — running it zero or more times must not
	// change the final answer.
	NewCombiner func() Reducer
	// DecodeValue decodes the values the mappers (and combiner) emit.
	DecodeValue ValueDecoder
	// NumReducers is the number of reduce partitions (default 1).
	NumReducers int
	// Partition routes keys to reducers (default HashPartition).
	Partition PartitionFunc
	// GroupKey, when set, is Hadoop's grouping comparator: reduce groups
	// form over GroupKey(key) while values still arrive in full-key sort
	// order — the secondary-sort pattern. Partition must route by the
	// same group key, or a group's records scatter across reducers.
	GroupKey func(key string) string
	// InputPaths are files or directories on the job filesystem.
	InputPaths []string
	// OutputPath is a directory that must not already exist (Hadoop
	// refuses to clobber output); part-r-NNNNN files are written there.
	OutputPath string
	// OutputFormat selects the reduce-output container: "" or "text"
	// writes "key<TAB>value" lines; "seq" writes SequenceFiles whose
	// records keep key and value separate, so chained jobs read them
	// back without re-parsing and they stay splittable when compressed.
	OutputFormat string
	// OutputCodec names the iofmt codec compressing the output ("",
	// "none", "gzip", "lzs"). Text parts gain the codec's extension
	// (part-r-00000.gz); SequenceFile parts compress per block.
	OutputCodec string
	// SideFiles are auxiliary data files tasks may open through the task
	// context (the movie-genre and album join files). The framework
	// meters how tasks access them.
	SideFiles []string
	// Config carries free-form job parameters to tasks.
	Config map[string]string
	// Queue names the YARN capacity queue the job is submitted to. Only
	// the YARN-backed distributed runtime reads it; empty means the
	// cluster's default queue.
	Queue string
	// User is the submitting principal, used for capacity-queue user
	// limits in YARN mode (default: the HDFS default user).
	User string
	// SplitSize overrides the standalone-mode input split size.
	SplitSize int64
	// SpillRecords bounds the map-side sort buffer (Hadoop's io.sort.mb,
	// in records): when a task's collected output exceeds it, the buffer
	// is sorted, combined and spilled as a run, and runs are merged (and
	// re-combined) at task end. 0 means unbounded (single spill).
	SpillRecords int
}

// Validate reports configuration errors before any work starts.
func (j *Job) Validate() error {
	switch {
	case j.Name == "":
		return errors.New("mapreduce: job needs a Name")
	case j.NewMapper == nil:
		return errors.New("mapreduce: job needs a NewMapper")
	case j.NewReducer == nil:
		return errors.New("mapreduce: job needs a NewReducer")
	case j.DecodeValue == nil:
		return errors.New("mapreduce: job needs a DecodeValue")
	case len(j.InputPaths) == 0:
		return errors.New("mapreduce: job needs InputPaths")
	case j.OutputPath == "":
		return errors.New("mapreduce: job needs an OutputPath")
	case j.NumReducers < 0:
		return fmt.Errorf("mapreduce: NumReducers=%d is negative", j.NumReducers)
	}
	switch j.OutputFormat {
	case "", OutputFormatText, OutputFormatSeq:
	default:
		return fmt.Errorf("mapreduce: unknown OutputFormat %q", j.OutputFormat)
	}
	if _, err := iofmt.ByName(j.OutputCodec); err != nil {
		return fmt.Errorf("mapreduce: OutputCodec: %w", err)
	}
	return nil
}

// outputFormat returns the effective output format.
func (j *Job) outputFormat() string {
	if j.OutputFormat == "" {
		return OutputFormatText
	}
	return j.OutputFormat
}

// OutputPartName returns the file name reducer r commits under
// OutputPath, including the format and codec suffix readers key off.
func (j *Job) OutputPartName(r int) string {
	name := PartitionName(r)
	if j.outputFormat() == OutputFormatSeq {
		return name + iofmt.SeqExtension
	}
	if c, err := iofmt.ByName(j.OutputCodec); err == nil && c != nil && c.Extension() != "" {
		return name + c.Extension()
	}
	return name
}

// Reducers returns the effective reducer count.
func (j *Job) Reducers() int {
	if j.NumReducers <= 0 {
		return DefaultNumReducers
	}
	return j.NumReducers
}

// Partitioner returns the effective partition function.
func (j *Job) Partitioner() PartitionFunc {
	if j.Partition == nil {
		return HashPartition
	}
	return j.Partition
}

// EffectiveSplitSize returns the standalone split size.
func (j *Job) EffectiveSplitSize() int64 {
	if j.SplitSize <= 0 {
		return DefaultSplitSize
	}
	return j.SplitSize
}

// TaskContext is the per-task view of the framework: counters, config and
// metered access to side files. One context exists per task attempt.
type TaskContext struct {
	// JobName and TaskID identify the attempt in logs.
	JobName string
	TaskID  string
	// Counters is the attempt's private counter set.
	Counters *Counters
	// Config is the job's Config map (read-only).
	Config map[string]string

	fs        vfs.FileSystem
	sideFiles map[string]bool
	memoryNow int64
}

// NewTaskContext builds a context for one task attempt.
func NewTaskContext(jobName, taskID string, fs vfs.FileSystem, job *Job) *TaskContext {
	side := make(map[string]bool, len(job.SideFiles))
	for _, p := range job.SideFiles {
		side[vfs.Clean(p)] = true
	}
	return &TaskContext{
		JobName:   jobName,
		TaskID:    taskID,
		Counters:  NewCounters(),
		Config:    job.Config,
		fs:        fs,
		sideFiles: side,
	}
}

// ReadSideFile reads a declared side file in full, metering the access.
// Reading it from inside every Map call is the slow anti-pattern the
// assignment demonstrates; reading it once from Setup is the fast one.
func (ctx *TaskContext) ReadSideFile(path string) ([]byte, error) {
	p := vfs.Clean(path)
	if !ctx.sideFiles[p] {
		return nil, fmt.Errorf("mapreduce: %q is not a declared side file", path)
	}
	data, err := vfs.ReadFile(ctx.fs, p)
	if err != nil {
		return nil, err
	}
	ctx.Counters.Inc(CtrSideFileOpens, 1)
	ctx.Counters.Inc(CtrSideFileBytesRead, int64(len(data)))
	return data, nil
}

// ObserveMemory records a change in task-held memory (positive or
// negative) and tracks the peak, so in-mapper combining strategies can be
// compared for footprint.
func (ctx *TaskContext) ObserveMemory(deltaBytes int64) {
	ctx.memoryNow += deltaBytes
	if ctx.memoryNow < 0 {
		ctx.memoryNow = 0
	}
	ctx.Counters.Max(CtrMapperMemoryPeak, ctx.memoryNow)
}

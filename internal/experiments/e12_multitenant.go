package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/yarn"
)

// E12 replays the paper's deadline meltdown at 10x enrollment inside a
// multi-tenant cluster: a Google-trace-shaped workload of ~1,200
// applications across prod / batch / students tenants, with the 350
// student apps bunching against the deadline exactly as the 35 did in
// Fall 2012. The same workload runs twice — once through a single FIFO
// queue (the paper's cluster), once through hierarchical capacity
// queues with preemption and an elastic node pool — and the comparison
// is the experiment: fair share + preemption flatten the deadline
// queue, and autoscaling returns the idle tail of the cluster.

// E12QueueStats summarizes one tenant class in one replay.
type E12QueueStats struct {
	Queue string
	Apps  int
	P50   time.Duration
	P99   time.Duration
}

// E12RunStats is everything one scheduling-mode replay produced.
type E12RunStats struct {
	Makespan    time.Duration
	Preemptions int
	NodeHours   float64
	Queues      []E12QueueStats
}

// QueueStats returns the stats row for a tenant class.
func (s *E12RunStats) QueueStats(queue string) E12QueueStats {
	for _, q := range s.Queues {
		if q.Queue == queue {
			return q
		}
	}
	return E12QueueStats{Queue: queue}
}

// E12Result is the structured outcome of E12.
type E12Result struct {
	Apps     int
	Students int
	Nodes    int
	FIFO     E12RunStats
	Capacity E12RunStats
}

// E12Opts scales the replay; the zero value is the full experiment.
type E12Opts struct {
	// Apps / Students size the workload (default 1200 / 350; the CI
	// smoke passes hundreds instead of thousands).
	Apps     int
	Students int
}

const e12Nodes = 16

// e12CapacityQueues is the multi-tenant queue tree: prod and batch each
// guaranteed 30%, students 40% (it is their deadline), everyone elastic
// up to most of the cluster when it is idle.
func e12CapacityQueues() yarn.QueueConfig {
	return yarn.QueueConfig{
		Name: "root",
		Children: []yarn.QueueConfig{
			{Name: datagen.QueueProd, Capacity: 0.3, MaxCapacity: 0.5, UserLimitFactor: 2},
			{Name: datagen.QueueBatch, Capacity: 0.3, MaxCapacity: 1.0, UserLimitFactor: 4},
			{Name: datagen.QueueStudents, Capacity: 0.4, MaxCapacity: 0.9, UserLimitFactor: 2},
		},
	}
}

// e12Replay runs one scheduling mode over the workload and returns the
// stats plus the RM and registry (for artifact extraction).
func e12Replay(workload []datagen.TraceApp, capacityMode bool) (*E12RunStats, *yarn.ResourceManager, *obs.Registry, error) {
	eng := sim.NewEngine()
	topo := cluster.NewTopology(cluster.PaperNodeConfig(e12Nodes, 2))
	reg := obs.NewRegistry()
	opts := yarn.CapacityOptions{Obs: reg}
	if capacityMode {
		opts.Queues = e12CapacityQueues()
		opts.Preemption = yarn.PreemptionConfig{Enabled: true}
		opts.Autoscale = yarn.AutoscaleConfig{Enabled: true, MinNodes: 4}
	}
	rm, err := yarn.NewCapacityResourceManager(eng, topo, opts)
	if err != nil {
		return nil, nil, nil, err
	}

	apps := make([]*yarn.Application, len(workload))
	var submitErr error
	var window time.Duration
	for i, wa := range workload {
		if wa.Submit > window {
			window = wa.Submit
		}
		i, wa := i, wa
		eng.Schedule(sim.Time(wa.Submit), func() {
			spec := yarn.AppSpec{Name: wa.Name, User: wa.User}
			if capacityMode {
				spec.Queue = wa.Queue
			}
			for _, t := range wa.Tasks {
				spec.Tasks = append(spec.Tasks, yarn.TaskSpec{
					Resource: yarn.Resource{VCores: t.VCores, MemoryMB: t.MemoryMB},
					Duration: t.Duration,
				})
			}
			app, err := rm.Submit(spec)
			if err != nil {
				submitErr = err
				return
			}
			apps[i] = app
		})
	}

	// Drain: run out the arrival window, then advance until the last app
	// finishes (the preemption/autoscale tickers keep the event queue
	// nonempty forever, so Run() alone would not terminate).
	eng.RunUntil(sim.Time(window))
	for i := 0; i < 100000 && !rm.AllFinished(); i++ {
		eng.Advance(30 * time.Second)
	}
	if submitErr != nil {
		return nil, nil, nil, submitErr
	}
	if !rm.AllFinished() {
		return nil, nil, nil, fmt.Errorf("e12: workload did not drain")
	}

	stats := &E12RunStats{
		Preemptions: rm.Preemptions(),
		NodeHours:   rm.NodeHours(),
	}
	latencies := map[string][]time.Duration{}
	for i, app := range apps {
		if app == nil {
			return nil, nil, nil, fmt.Errorf("e12: app %s was never submitted", workload[i].Name)
		}
		if d := app.FinishedAt; time.Duration(d) > stats.Makespan {
			stats.Makespan = time.Duration(d)
		}
		// Key stats by the workload's tenant class, not the resolved
		// queue, so FIFO (where everyone lands in "default") stays
		// comparable per tenant.
		q := workload[i].Queue
		latencies[q] = append(latencies[q], app.Makespan())
	}
	for _, q := range []string{datagen.QueueProd, datagen.QueueBatch, datagen.QueueStudents} {
		ls := latencies[q]
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		stats.Queues = append(stats.Queues, E12QueueStats{
			Queue: q,
			Apps:  len(ls),
			P50:   percentileDur(ls, 0.50),
			P99:   percentileDur(ls, 0.99),
		})
	}
	return stats, rm, reg, nil
}

// percentileDur returns the q-th percentile of sorted durations
// (nearest-rank, deterministic).
func percentileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// E12Scaled runs the replay at a chosen scale (the CI smoke uses
// hundreds of apps; the registry entry uses the full default).
func E12Scaled(seed int64, o E12Opts) (*Result, error) {
	workload := datagen.TraceWorkload(datagen.TraceWorkloadOpts{
		Apps: o.Apps, Students: o.Students, Seed: seed,
	})
	students := 0
	for _, wa := range workload {
		if wa.Queue == datagen.QueueStudents {
			students++
		}
	}
	fifo, _, _, err := e12Replay(workload, false)
	if err != nil {
		return nil, err
	}
	capa, rm, _, err := e12Replay(workload, true)
	if err != nil {
		return nil, err
	}
	res := &E12Result{
		Apps:     len(workload),
		Students: students,
		Nodes:    e12Nodes,
		FIFO:     *fifo,
		Capacity: *capa,
	}

	out := &Result{
		ID:     "E12",
		Title:  fmt.Sprintf("Deadline meltdown at 10x: %d apps, %d students, FIFO vs capacity+preemption", res.Apps, res.Students),
		Header: []string{"scheduler", "tenant", "apps", "p50 latency", "p99 latency", "makespan", "preemptions", "node-hours"},
		Raw:    res,
	}
	addRows := func(name string, s *E12RunStats) {
		for i, q := range s.Queues {
			mk, pre, nh := "", "", ""
			if i == 0 {
				mk = fmtDur(s.Makespan)
				pre = fmt.Sprint(s.Preemptions)
				nh = fmt.Sprintf("%.1f", s.NodeHours)
			}
			out.Rows = append(out.Rows, []string{
				name, q.Queue, fmt.Sprint(q.Apps), fmtDur(q.P50), fmtDur(q.P99), mk, pre, nh,
			})
		}
	}
	addRows("fifo", fifo)
	addRows("capacity", capa)
	fifoP99 := fifo.QueueStats(datagen.QueueStudents).P99
	capP99 := capa.QueueStats(datagen.QueueStudents).P99
	if capP99 > 0 {
		out.Notes = append(out.Notes, fmt.Sprintf(
			"students p99: %s (fifo) -> %s (capacity): %.1fx better under deadline load",
			fmtDur(fifoP99), fmtDur(capP99), float64(fifoP99)/float64(capP99)))
	}
	out.Notes = append(out.Notes, fmt.Sprintf(
		"node-hours: %.1f (fifo, fixed %d nodes) -> %.1f (autoscaled, %d preemptions)",
		fifo.NodeHours, e12Nodes, capa.NodeHours, capa.Preemptions))
	_ = rm
	return out, nil
}

// E12Multitenant is the registry entry: the full-scale replay.
func E12Multitenant(seed int64) (*Result, error) {
	return E12Scaled(seed, E12Opts{})
}

// E12ReplayArtifacts runs the capacity-mode replay once and returns the
// byte artifacts the determinism tests compare across runs: the
// scheduler's event log (history JSONL) and the obs snapshot.
func E12ReplayArtifacts(seed int64, o E12Opts) (eventLog, obsSnap []byte, err error) {
	workload := datagen.TraceWorkload(datagen.TraceWorkloadOpts{
		Apps: o.Apps, Students: o.Students, Seed: seed,
	})
	_, rm, reg, err := e12Replay(workload, true)
	if err != nil {
		return nil, nil, err
	}
	eventLog, err = rm.EventLog().Bytes()
	if err != nil {
		return nil, nil, err
	}
	obsSnap, err = reg.SnapshotJSON()
	if err != nil {
		return nil, nil, err
	}
	return eventLog, obsSnap, nil
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/hdfs"
	"repro/internal/jobs"
	"repro/internal/mrcluster"
)

// Fig1Point is one node count's makespans under both layouts.
type Fig1Point struct {
	Nodes           int
	HadoopMakespan  time.Duration
	HPCMakespan     time.Duration
	Slowdown        float64
	LocalityPercent float64
}

// Fig1Result is the structured outcome of FIG1.
type Fig1Result struct {
	Points []Fig1Point
}

// fig1Cost narrows the shared array so that storage contention appears
// within a 16-node sweep (a full HPC machine reaches the same regime with
// thousands of readers).
func fig1Cost() cluster.CostModel {
	cm := cluster.DefaultCostModel()
	cm.CoreBW = 100 * cluster.MB
	cm.ParallelStorageAggBW = 120 * cluster.MB
	return cm
}

// fig1MRConfig trims task startup so the sweep measures I/O architecture
// rather than JVM launch time.
func fig1MRConfig() mrcluster.Config {
	cfg := expMRConfig()
	cfg.MapWork.Startup = 10 * time.Millisecond
	cfg.ReduceWork.Startup = 10 * time.Millisecond
	return cfg
}

// Fig1 reproduces Figure 1's architectural point quantitatively: the same
// WordCount over the same bytes, on (a) the typical HPC layout with
// compute separated from shared parallel storage and (b) the Hadoop
// layout with storage on the compute nodes. Locality lets (b) scale;
// (a) saturates at the storage array's aggregate bandwidth.
func Fig1(seed int64) (*Result, error) {
	res := &Fig1Result{}
	for _, nodes := range []int{1, 2, 4, 8, 16} {
		var hadoopT, hpcT time.Duration
		var locality float64
		for _, shared := range []bool{false, true} {
			cm := fig1Cost()
			mrCfg := fig1MRConfig()
			mrCfg.SharedStorage = shared
			c, err := core.New(core.Options{
				Nodes: nodes,
				Seed:  seed,
				HDFS:  hdfs.Config{BlockSize: 512 << 10, Replication: 3},
				MR:    mrCfg,
				Cost:  &cm,
			})
			if err != nil {
				return nil, err
			}
			if _, _, err := datagen.Text(c.FS(), "/in/corpus.txt",
				datagen.TextOpts{Lines: 150000, Seed: seed}); err != nil {
				return nil, err
			}
			rep, err := c.Run(jobs.WordCount("/in", "/out", true))
			if err != nil {
				return nil, err
			}
			if shared {
				hpcT = rep.Makespan()
			} else {
				hadoopT = rep.Makespan()
				locality = 100 * rep.LocalityFraction()
			}
		}
		res.Points = append(res.Points, Fig1Point{
			Nodes:           nodes,
			HadoopMakespan:  hadoopT,
			HPCMakespan:     hpcT,
			Slowdown:        float64(hpcT) / float64(hadoopT),
			LocalityPercent: locality,
		})
	}
	out := &Result{
		ID:     "FIG1",
		Title:  "WordCount makespan: Hadoop data-local layout vs HPC shared-storage layout",
		Header: []string{"nodes", "hadoop (fig 1b)", "hpc (fig 1a)", "hpc/hadoop", "data-local maps"},
		Raw:    res,
		Notes: []string{
			"same job, same bytes; only the storage architecture differs",
			"HPC reads contend for the parallel array's aggregate bandwidth, so added nodes stop helping",
		},
	}
	for _, p := range res.Points {
		out.Rows = append(out.Rows, []string{
			fmt.Sprintf("%d", p.Nodes),
			fmtDur(p.HadoopMakespan),
			fmtDur(p.HPCMakespan),
			fmt.Sprintf("%.2fx", p.Slowdown),
			fmt.Sprintf("%.0f%%", p.LocalityPercent),
		})
	}
	return out, nil
}

// Fig2 regenerates the paper's component-relationship diagram from a live
// cluster carrying real files.
func Fig2(seed int64) (*Result, error) {
	c, err := core.New(core.Options{
		Nodes: 4,
		Seed:  seed,
		HDFS:  hdfs.Config{BlockSize: 1 << 20, Replication: 3},
		MR:    mrcluster.Config{},
	})
	if err != nil {
		return nil, err
	}
	if _, _, err := datagen.Text(c.FS(), "/user/student/input/file01.txt",
		datagen.TextOpts{Lines: 30000, Seed: seed}); err != nil {
		return nil, err
	}
	if _, _, err := datagen.Airline(c.FS(), "/user/student/input/file02.csv",
		datagen.AirlineOpts{Rows: 8000, Seed: seed}); err != nil {
		return nil, err
	}
	return &Result{
		ID:    "FIG2",
		Title: "Component topology rendered from live cluster state",
		Text:  c.RenderTopology(),
		Raw:   c,
	}, nil
}

// Package experiments regenerates every table and figure of the paper,
// plus one experiment per quantitative claim in its narrative (the
// DESIGN.md experiment index). Each experiment is deterministic, runs on
// the virtual clock, and returns both a rendered artifact and structured
// results that the benchmark harness asserts on.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/mrcluster"
)

// Result is one regenerated artifact: a table (Header/Rows), free text,
// or both, plus structured data for assertions.
type Result struct {
	ID    string
	Title string

	Header []string
	Rows   [][]string
	Notes  []string
	Text   string

	// Raw holds the experiment-specific result struct.
	Raw any
}

// String renders the artifact.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	if r.Text != "" {
		b.WriteString(r.Text)
		if !strings.HasSuffix(r.Text, "\n") {
			b.WriteByte('\n')
		}
	}
	if len(r.Header) > 0 {
		widths := make([]int, len(r.Header))
		for i, h := range r.Header {
			widths[i] = len(h)
		}
		for _, row := range r.Rows {
			for i, cell := range row {
				if i < len(widths) && len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		line := func(cells []string) {
			for i, c := range cells {
				if i > 0 {
					b.WriteString("  ")
				}
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			}
			b.WriteByte('\n')
		}
		line(r.Header)
		for i, w := range widths {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat("-", w))
		}
		b.WriteByte('\n')
		for _, row := range r.Rows {
			line(row)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Spec names a runnable experiment.
type Spec struct {
	ID    string
	Title string
	Run   func(seed int64) (*Result, error)
}

// Registry returns all experiments in presentation order.
func Registry() []Spec {
	return []Spec{
		{"FIG1", "Architecture comparison: HPC shared storage vs Hadoop data locality", Fig1},
		{"FIG2", "HDFS/MapReduce component topology from live cluster state", Fig2},
		{"T1", "Table I: Level of Proficiency", Table1},
		{"T2", "Table II: Time to Complete", Table2},
		{"T3", "Table III: Helpfulness of Lectures and Tutorials", Table3},
		{"T4", "Table IV: Lowest level to teach Hadoop MapReduce", Table4},
		{"T5", "Table V: PDC learning outcomes", Table5},
		{"E1", "Fall 2012 deadline meltdown and recovery", E1Meltdown},
		{"E2", "Combiner trade-off: map time vs shuffle volume", E2Combiner},
		{"E3", "Three airline-delay implementations", E3Airline},
		{"E4", "Side-data access patterns: naive vs cached", E4SideData},
		{"E5", "Same jar, standalone vs HDFS cluster", E5SerialVsCluster},
		{"E6", "Ghost daemons vs scheduler cleanup interval", E6GhostDaemons},
		{"E7", "Data staging time at paper scale", E7Staging},
		{"E8", "HDFS shell session: replication, failure, recovery", E8FsckRecovery},
		{"E9", "Scalability and speculative-execution ablation", E9Scalability},
		{"E10", "File formats and compression: splittable vs whole-stream", E10Formats},
		{"E11", "Job history & audit: reconstructing a run from its event logs", E11History},
		{"E12", "Multi-tenant YARN: deadline meltdown at 10x, FIFO vs capacity+preemption", E12Multitenant},
		{"E13", "Online serving: YCSB mixes on region servers, cache tier, crash recovery", E13Serving},
	}
}

// Lookup finds an experiment by ID (case-insensitive).
func Lookup(id string) (Spec, bool) {
	for _, s := range Registry() {
		if strings.EqualFold(s.ID, id) {
			return s, true
		}
	}
	return Spec{}, false
}

// expMRConfig is the calibrated runtime config for scaled-down data: task
// startup trimmed so that per-byte and per-record effects (the ones the
// experiments measure) are visible at megabyte scale.
func expMRConfig() mrcluster.Config {
	return mrcluster.Config{
		MapWork:     cluster.CPUWork{Startup: 100 * time.Millisecond, PerByte: 10, PerRecord: 1000},
		ReduceWork:  cluster.CPUWork{Startup: 100 * time.Millisecond, PerByte: 8, PerRecord: 800},
		CombineWork: cluster.CPUWork{PerRecord: 150},
	}
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

func fmtMB(b int64) string {
	return fmt.Sprintf("%.2f MB", float64(b)/(1<<20))
}
